package experiment

import (
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
)

// TestExp10ParityPanel runs a miniature Exp10 grid and checks the report's
// own acceptance criterion: within the engine-parity panel, each scheme's
// Proc-engine and SM-engine rows must be identical in every column except
// the engine name.
func TestExp10ParityPanel(t *testing.T) {
	base := Config{Seed: 3, NumObjects: 400, Days: 0.02}
	rep := exp10(base, []float64{0.1}, [][2]int{{8, 2}})

	if len(rep.Tables) != 3 {
		t.Fatalf("exp10 produced %d tables, want 3", len(rep.Tables))
	}
	parity := rep.Tables[0]
	if len(parity.Rows) != 6 {
		t.Fatalf("parity panel has %d rows, want 6 (3 schemes x 2 engines)", len(parity.Rows))
	}
	for i := 0; i < len(parity.Rows); i += 2 {
		proc, sm := parity.Rows[i], parity.Rows[i+1]
		if proc[0] != sm[0] {
			t.Fatalf("rows %d/%d pair different schemes: %q vs %q", i, i+1, proc[0], sm[0])
		}
		if proc[1] != string(EngineProcs) || sm[1] != string(EngineSM) {
			t.Fatalf("parity rows mislabeled: %q, %q", proc[1], sm[1])
		}
		if !reflect.DeepEqual(proc[2:], sm[2:]) {
			t.Fatalf("engines disagree for scheme %s:\nproc: %v\nsm:   %v", proc[0], proc, sm)
		}
	}
}

// TestExp10ParallelInvariance pins the determinism guarantee for the new
// coherence schemes: identical rendered tables with 1 worker and with 8.
func TestExp10ParallelInvariance(t *testing.T) {
	base := Config{Seed: 4, NumObjects: 400, Days: 0.02}
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	s := exp10(base, []float64{0, 0.2}, [][2]int{{8, 2}})
	SetDefaultWorkers(8)
	p := exp10(base, []float64{0, 0.2}, [][2]int{{8, 2}})
	if s.String() != p.String() {
		t.Fatalf("Exp10 tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestIRBroadcastMissedUnderBursts is the missed-report edge case: a
// Gilbert–Elliott outage regime whose mean bad period (400 s) exceeds the
// IR window (default 5 x 60 s) makes clients miss enough consecutive
// reports that incremental reconciliation becomes unsound, forcing whole-
// cache revalidation. Both engines must agree, and the forced-revalidation
// path must actually fire.
func TestIRBroadcastMissedUnderBursts(t *testing.T) {
	cfg := Config{
		Seed: 9, Days: 0.2, NumClients: 6,
		Granularity: core.ObjectCaching, UpdateProb: 0.5,
		Coherence:     coherence.IRBroadcastStrategy,
		BurstFraction: 0.3, MeanBadSeconds: 400,
	}
	assertEngineTwin(t, cfg)
	res := RunFleet(cfg)
	if res.IRReports == 0 {
		t.Fatal("no invalidation reports were broadcast")
	}
	if res.IRReportBytes == 0 {
		t.Fatal("reports were broadcast but no air bytes accounted")
	}
	if res.IRMissed == 0 {
		t.Fatal("burst outages dropped no report receptions — the edge case did not occur")
	}
	if res.ForcedRevals == 0 {
		t.Fatal("reports were missed past the IR window but no cache was force-revalidated")
	}
}

// TestCooperativeAccounting sanity-checks the peer-hit bookkeeping on a
// plain run: cooperation must serve some reads from peers, every peer-
// served read must also be counted as a query hit source (RecordAccess),
// and disabling cooperation must zero the counters.
func TestCooperativeAccounting(t *testing.T) {
	cfg := Config{
		Seed: 5, Days: 0.1, NumClients: 8,
		Granularity: core.HybridCaching, UpdateProb: 0.2,
		CoopPeers: 3,
	}
	res := RunFleet(cfg)
	if res.PeerHits == 0 {
		t.Fatal("cooperative run served no reads from peers")
	}
	if res.PeerMisses == 0 {
		t.Fatal("cooperative run had no fall-through reads; scenario too easy to be a test")
	}
	off := cfg
	off.CoopPeers = 0
	resOff := RunFleet(off)
	if resOff.PeerHits != 0 || resOff.PeerMisses != 0 {
		t.Fatalf("cooperation disabled but counters nonzero: hits=%d misses=%d",
			resOff.PeerHits, resOff.PeerMisses)
	}
}
