package experiment

import (
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

// exp11DefaultDays is the size-sweep horizon when the base config leaves
// Days unset: a quarter day gives each client ~200 queries — enough
// buffer-miss traffic to populate the persistent tier at every database
// size without letting the 1M-object runs dominate exp-all wall clock.
const exp11DefaultDays = 0.25

// exp11QuickDays is the -quick horizon, sized for the CI smoke.
const exp11QuickDays = 0.05

// exp11Scheme is one coherence regime in the at-scale comparison: the
// paper's lazy lease baseline and broadcast invalidation reports.
type exp11Scheme struct {
	name  string
	apply func(*Config)
}

func exp11Schemes() []exp11Scheme {
	return []exp11Scheme{
		{"lease", func(c *Config) {}},
		{"irb", func(c *Config) { c.Coherence = coherence.IRBroadcastStrategy }},
	}
}

// Exp11 — beyond the paper: database size x server buffer with a real
// persistent tier behind the buffer pool. The paper fixes the database at
// 2000 objects and the server buffer at 25%; this experiment scales the
// database to 1M objects while holding buffer pressure constant via
// WithBufferRatio-style ratios, and stages every buffer miss through the
// log-structured storage engine (internal/storage). Two panels:
//
//  1. size x buffer ratio under lazy leases — how hit ratio, response
//     time, and server disk traffic move as the database outgrows both
//     the client caches and the server buffer;
//  2. coherence at scale — leases vs broadcast invalidation reports
//     across database sizes at a fixed 5% buffer.
//
// Simulated timing still charges the modeled disk constants, so every
// table is byte-deterministic across machines, sync modes, and -parallel
// widths; the tier's wall-clock latencies and on-disk footprint are real
// measurements and ride along as report notes, outside the table hashes.
// Without a base StorageDSN the sweep stages through a throwaway
// file:...?sync=none tier under the system temp directory.
func Exp11(base Config) *Report {
	if base.Days == 0 {
		base.Days = exp11DefaultDays
	}
	return exp11(base,
		[]int{10_000, 100_000, 1_000_000},
		[]float64{0.01, 0.05, 0.25},
		exp11Schemes(), true)
}

// Exp11Quick runs a sparser grid (two small sizes, two ratios, leases
// only) for time-constrained sweeps and the CI smoke. Quick mode never
// opens a file tier — the grids exist to be fast and hermetic — so the
// tier columns read "-"; `mcsim exp 11 -quick -storage ...` is rejected
// as a conflict before it gets here.
func Exp11Quick(base Config) *Report {
	if base.Days == 0 {
		base.Days = exp11QuickDays
	}
	base.StorageDSN = ""
	return exp11(base,
		[]int{2000, 10_000},
		[]float64{0.05, 0.25},
		exp11Schemes()[:1], false)
}

func exp11(base Config, sizes []int, ratios []float64, schemes []exp11Scheme, withTier bool) *Report {
	rep := &Report{Name: "exp11"}

	// One tier root serves the whole sweep: Run gives every config its own
	// cold subdirectory keyed by label and seed, so parallel runs never
	// share a log. A caller-supplied DSN (mcsim exp 11 -storage ...) is
	// kept — and kept on disk; the auto temp tier is torn down after.
	tierDSN := base.StorageDSN
	if withTier && tierDSN == "" {
		dir, err := os.MkdirTemp("", "mcsim-exp11-")
		if err != nil {
			panic(fmt.Sprintf("experiment: exp11 tier: %v", err))
		}
		defer os.RemoveAll(dir)
		tierDSN = "file:" + dir + "?sync=none"
	}
	if !withTier {
		tierDSN = ""
	}

	prep := func(c *Config) {
		c.Granularity = core.HybridCaching
		c.QueryKind = workload.Associative
		if c.UpdateProb == 0 {
			c.UpdateProb = 0.1
		}
		c.StorageDSN = tierDSN
	}
	tierCell := func(res Result, v uint64) string {
		if res.StorageTier.DSN == "" {
			return "-"
		}
		return fmt.Sprint(v)
	}
	note := func(res Result) {
		t := res.StorageTier
		if t.DSN == "" {
			return
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: storage get p50/p99 %.3g/%.3g ms, put p50/p99 %.3g/%.3g ms over %d gets, %d puts; %d keys, %d bytes on disk (measured)",
			res.Config, t.GetP50ms, t.GetP99ms, t.PutP50ms, t.PutP99ms,
			t.Gets, t.Puts, t.Keys, t.DiskBytes))
	}

	// Panel 1: size x buffer ratio under the lease baseline. The ratio
	// holds buffer pressure constant as the database scales, so the rows
	// isolate what sheer size does to locality.
	tblS := NewTable(
		"Experiment #11 — database size x server buffer ratio (HC, lease)",
		"objects", "buf %", "hit %", "resp (s)", "err %", "srv buf hit %",
		"disk reads", "tier gets", "tier puts")
	rep.Tables = append(rep.Tables, tblS)
	var b batch
	for _, size := range sizes {
		for _, ratio := range ratios {
			size, ratio := size, ratio
			cfg := merge(base, func(c *Config) {
				prep(c)
				c.Label = fmt.Sprintf("exp11/size=%d/buf=%g", size, ratio)
				c.NumObjects = size
				c.ServerBufferRatio = ratio
			})
			b.add(cfg, func(res Result) {
				tblS.Add(fmt.Sprint(size), pct(ratio), pct(res.HitRatio),
					secs(res.MeanResponse), pct(res.ErrorRate),
					pct(res.Server.BufferHitRatio), fmt.Sprint(res.Server.DiskReads),
					tierCell(res, res.StorageTier.Gets), tierCell(res, res.StorageTier.Puts))
				note(res)
			})
		}
	}

	// Panel 2: coherence at scale, 5% buffer. Broadcast IR names updated
	// items on the downlink; at large sizes the report traffic competes
	// with the misses the small buffer already amplifies.
	if len(schemes) > 1 {
		const ratio = 0.05
		tblC := NewTable(
			"Experiment #11 — coherence across database sizes (HC, 5% buffer)",
			"scheme", "objects", "hit %", "resp (s)", "err %", "srv buf hit %", "disk reads")
		rep.Tables = append(rep.Tables, tblC)
		for _, sch := range schemes {
			for _, size := range sizes {
				sch, size := sch, size
				cfg := merge(base, func(c *Config) {
					prep(c)
					sch.apply(c)
					c.Label = fmt.Sprintf("exp11/%s/size=%d", sch.name, size)
					c.NumObjects = size
					c.ServerBufferRatio = ratio
				})
				b.add(cfg, func(res Result) {
					tblC.Add(sch.name, fmt.Sprint(size), pct(res.HitRatio),
						secs(res.MeanResponse), pct(res.ErrorRate),
						pct(res.Server.BufferHitRatio), fmt.Sprint(res.Server.DiskReads))
					note(res)
				})
			}
		}
	}

	b.collect(rep)
	return rep
}
