// file.go is the persistent Store backend: the in-memory engine of
// memory.go with a write-through persistence tier on internal/storage's
// log-structured engine, so a mccached restart recovers the origin's
// version counters, the lease estimators' write histories, and every
// session's cached leases (docs/STORAGE.md).
//
// Persistence is per-record write-through, not transactional: each origin
// write and each granted lease lands in the log as its own durable record
// (group-committed), and recovery replays whatever subset survived a
// crash. Leases are judged on the wall clock anchored at the store's
// FIRST boot (the epoch persisted in the meta record), so a lease granted
// before a restart keeps expiring through the downtime — restart never
// extends validity.
//
// The log carries five record families, all JSON-valued:
//
//	m:config          store identity: schema config + boot epoch
//	v:<oid>           origin version counters (object + per-attribute)
//	sa:<oid>:<attr>   attribute-grain write-stream estimator state
//	so:<oid>          object-grain write-stream estimator state
//	e:<cid>:<oid>:<a> one session's cached lease for one unit (a=255: object)
//
// Cache entries persist until overwritten or invalidated; an entry evicted
// by the replacement policy stays in the log and may become resident again
// after a restart (recovery re-installs entries through the normal
// byte-budgeted insert path, so capacity still binds).
package serve

import (
	"encoding/json"
	"fmt"
	"net/url"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fileMeta is the persisted store identity: the schema-shaping
// configuration (a reopen with different values would mis-key every
// record) and the wall-clock epoch of the first boot.
type fileMeta struct {
	Granularity string  `json:"granularity"`
	Policy      string  `json:"policy"`
	NumObjects  int     `json:"num_objects"`
	RelSeed     uint64  `json:"rel_seed"`
	Beta        float64 `json:"beta"`
	FixedLease  float64 `json:"fixed_lease_s"`
	EpochUnixNS int64   `json:"epoch_unix_ns"`
}

// fileVersions is the persisted per-object origin state.
type fileVersions struct {
	Version uint64                `json:"version"`
	Attrs   [oodb.NumAttrs]uint64 `json:"attrs"`
}

// File is the persistent Store: every read-path call delegates to the
// embedded in-memory engine; mutations additionally write through to the
// log before returning.
type File struct {
	*Memory
	log *storage.Store
	dsn string
}

const metaKey = "m:config"

// openFileDSN is the registered factory for "file:<path>?sync=<mode>".
func openFileDSN(dsn string, cfg Config) (Store, error) {
	rest, ok := cutScheme(dsn)
	if !ok || rest == "" {
		return nil, fmt.Errorf("%w: file backend needs a path (file:/path/cache.db?sync=group)", ErrBadRequest)
	}
	path, query, _ := strings.Cut(rest, "?")
	if path == "" {
		return nil, fmt.Errorf("%w: file backend needs a path", ErrBadRequest)
	}
	mode := storage.SyncGroup
	if query != "" {
		vals, err := url.ParseQuery(query)
		if err != nil {
			return nil, fmt.Errorf("%w: bad file DSN query %q: %v", ErrBadRequest, query, err)
		}
		for k := range vals {
			if k != "sync" {
				return nil, fmt.Errorf("%w: unknown file DSN parameter %q (want sync)", ErrBadRequest, k)
			}
		}
		if mode, err = storage.ParseSyncMode(vals.Get("sync")); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	return NewFile(path, mode, cfg)
}

// NewFile opens (or recovers) a persistent store rooted at path. A fresh
// path initializes the log with the configuration's identity; an existing
// one must have been created with the same granularity, policy, database
// size, relationship seed, and lease parameters, and is replayed into the
// in-memory engine before the store accepts requests.
func NewFile(path string, mode storage.SyncMode, cfg Config) (*File, error) {
	log, err := storage.Open(storage.Options{Path: path, Sync: mode})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	f, err := newFileOver(log, cfg)
	if err != nil {
		log.Close()
		return nil, err
	}
	f.dsn = fmt.Sprintf("file:%s?sync=%s", path, mode)
	return f, nil
}

func newFileOver(log *storage.Store, cfg Config) (*File, error) {
	// Load or initialize the identity record; the epoch anchors the wall
	// clock across restarts so leases expire through downtime.
	raw, found, err := log.Get(metaKey)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var meta fileMeta
	if found {
		if err := json.Unmarshal(raw, &meta); err != nil {
			return nil, fmt.Errorf("%w: corrupt meta record: %v", ErrBadRequest, err)
		}
	} else {
		meta.EpochUnixNS = time.Now().UnixNano()
	}
	if cfg.Clock == nil {
		epoch := meta.EpochUnixNS
		cfg.Clock = func() float64 {
			return float64(time.Now().UnixNano()-epoch) / 1e9
		}
	}
	m, err := NewMemory(cfg)
	if err != nil {
		return nil, err
	}
	effective := fileMeta{
		Granularity: m.gran.String(),
		Policy:      m.policy,
		NumObjects:  m.org.db.NumObjects(),
		RelSeed:     cfg.RelSeed,
		Beta:        m.org.attrEst.Beta(),
		FixedLease:  m.fixed,
		EpochUnixNS: meta.EpochUnixNS,
	}
	if found && meta != effective {
		return nil, fmt.Errorf("%w: store was created as %+v, reopened as %+v",
			ErrBadRequest, meta, effective)
	}
	f := &File{Memory: m, log: log}
	if found {
		if err := f.recover(); err != nil {
			return nil, err
		}
	} else {
		if err := f.putJSON(metaKey, effective); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// recover replays the persisted records into the in-memory engine: origin
// versions, estimator write streams, then session leases (sorted by key so
// replacement state rebuilds deterministically for a given log).
func (f *File) recover() error {
	type kv struct {
		key string
		val []byte
	}
	var entries []kv
	now := f.clock()
	err := f.log.Scan("", func(key string, val []byte) bool {
		entries = append(entries, kv{key, append([]byte(nil), val...)})
		return true
	})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	batches := make(map[int][]core.BatchEntry)
	var clients []int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.key, "v:"):
			oid, ok := parseOID(e.key[len("v:"):])
			var fv fileVersions
			if !ok || json.Unmarshal(e.val, &fv) != nil || !f.org.db.ValidOID(oid) {
				return fmt.Errorf("%w: bad version record %q", ErrBadRequest, e.key)
			}
			f.org.db.RestoreVersions(oid, fv.Version, fv.Attrs)
		case strings.HasPrefix(e.key, "sa:"), strings.HasPrefix(e.key, "so:"):
			var it oodb.Item
			var ok bool
			est := f.org.objEst
			if strings.HasPrefix(e.key, "sa:") {
				est = f.org.attrEst
				it, ok = parseItemKey(e.key[len("sa:"):])
			} else {
				var oid oodb.OID
				if oid, ok = parseOID(e.key[len("so:"):]); ok {
					it = oodb.ObjectItem(oid)
				}
			}
			var st stats.InterArrivalState
			if !ok || json.Unmarshal(e.val, &st) != nil {
				return fmt.Errorf("%w: bad stream record %q", ErrBadRequest, e.key)
			}
			est.RestoreStream(it, st)
		case strings.HasPrefix(e.key, "e:"):
			cidStr, itemStr, ok := strings.Cut(e.key[len("e:"):], ":")
			cid, cerr := strconv.Atoi(cidStr)
			it, iok := parseItemKey(itemStr)
			var entry core.Entry
			if !ok || cerr != nil || !iok || json.Unmarshal(e.val, &entry) != nil {
				return fmt.Errorf("%w: bad entry record %q", ErrBadRequest, e.key)
			}
			if _, seen := batches[cid]; !seen {
				clients = append(clients, cid)
			}
			batches[cid] = append(batches[cid], core.BatchEntry{Item: it, Entry: entry})
		}
	}
	for _, cid := range clients {
		s := f.session(cid)
		s.mu.Lock()
		s.cache.InsertBatch(batches[cid], now)
		s.mu.Unlock()
	}
	return nil
}

// putJSON writes one JSON-valued record to the log.
func (f *File) putJSON(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := f.log.Put(key, raw); err != nil {
		return fmt.Errorf("serve: persist %s: %w", key, err)
	}
	return nil
}

// itemKey renders a cache unit as a log-key fragment: "<oid>:<attr>",
// with the WholeObject sentinel (255) for object units.
func itemKey(it oodb.Item) string {
	return strconv.FormatUint(uint64(it.OID), 10) + ":" + strconv.FormatUint(uint64(it.Attr), 10)
}

func parseItemKey(s string) (oodb.Item, bool) {
	oidStr, attrStr, ok := strings.Cut(s, ":")
	if !ok {
		return oodb.Item{}, false
	}
	oid, err1 := strconv.ParseUint(oidStr, 10, 32)
	attr, err2 := strconv.ParseUint(attrStr, 10, 8)
	if err1 != nil || err2 != nil {
		return oodb.Item{}, false
	}
	return oodb.Item{OID: oodb.OID(oid), Attr: oodb.AttrID(attr)}, true
}

func parseOID(s string) (oodb.OID, bool) {
	oid, err := strconv.ParseUint(s, 10, 32)
	return oodb.OID(oid), err == nil
}

func entryKey(clientID int, it oodb.Item) string {
	return "e:" + strconv.Itoa(clientID) + ":" + itemKey(it)
}

// persistEntry writes through one granted lease.
func (f *File) persistEntry(clientID int, it oodb.Item, e core.Entry) error {
	return f.putJSON(entryKey(clientID, it), e)
}

// Read implements Store: delegate, then write through any installed copy.
func (f *File) Read(clientID int, oid oodb.OID, attr oodb.AttrID, mode ReadMode) (ReadResult, error) {
	res, err := f.Memory.Read(clientID, oid, attr, mode)
	if err != nil || !res.FromOrigin {
		return res, err
	}
	entry := core.Entry{Version: res.Version, ExpiresAt: res.ExpiresAt, FetchedAt: res.Now}
	if perr := f.persistEntry(clientID, res.Item, entry); perr != nil {
		return res, perr
	}
	return res, nil
}

// Fetch implements Store: delegate, then write through the installed batch.
func (f *File) Fetch(clientID int, reads []workload.ReadOp) ([]FetchedItem, error) {
	now := f.clock()
	out, err := f.Memory.Fetch(clientID, reads)
	if err != nil {
		return out, err
	}
	for _, fi := range out {
		entry := core.Entry{Version: fi.Version, ExpiresAt: fi.ExpiresAt, FetchedAt: now}
		if perr := f.persistEntry(clientID, fi.Item, entry); perr != nil {
			return out, perr
		}
	}
	return out, nil
}

// Write implements Store: delegate, then write through the origin's new
// version counters and the touched estimator streams. Snapshots are taken
// under the origin lock after the write, so concurrent writers each
// persist a state at least as new as their own write.
func (f *File) Write(oid oodb.OID, attrs []oodb.AttrID) (uint64, error) {
	version, err := f.Memory.Write(oid, attrs)
	if err != nil {
		return version, err
	}

	f.org.mu.Lock()
	fv := fileVersions{Version: f.org.db.ObjectVersion(oid), Attrs: f.org.db.AttrVersions(oid)}
	type streamRec struct {
		key string
		st  stats.InterArrivalState
	}
	recs := make([]streamRec, 0, len(attrs)+1)
	for _, a := range attrs {
		it := oodb.AttrItem(oid, a)
		if st, ok := f.org.attrEst.StreamState(it); ok {
			recs = append(recs, streamRec{"sa:" + itemKey(it), st})
		}
	}
	if st, ok := f.org.objEst.StreamState(oodb.ObjectItem(oid)); ok {
		recs = append(recs, streamRec{"so:" + strconv.FormatUint(uint64(oid), 10), st})
	}
	f.org.mu.Unlock()

	if perr := f.putJSON("v:"+strconv.FormatUint(uint64(oid), 10), fv); perr != nil {
		return version, perr
	}
	for _, r := range recs {
		if perr := f.putJSON(r.key, r.st); perr != nil {
			return version, perr
		}
	}
	return version, nil
}

// Invalidate implements Store: delegate, then drop the persisted leases.
func (f *File) Invalidate(clientID int, oid oodb.OID, attr oodb.AttrID) (int, error) {
	removed, err := f.Memory.Invalidate(clientID, oid, attr)
	if err != nil {
		return removed, err
	}
	units, err := f.units(oid, attr)
	if err != nil {
		return removed, err
	}
	var clients []int
	if clientID < 0 {
		f.mu.RLock()
		for cid := range f.sessions {
			clients = append(clients, cid)
		}
		f.mu.RUnlock()
	} else {
		clients = []int{clientID}
	}
	for _, cid := range clients {
		for _, it := range units {
			if derr := f.log.Delete(entryKey(cid, it)); derr != nil {
				return removed, fmt.Errorf("serve: persist invalidate: %w", derr)
			}
		}
	}
	return removed, nil
}

// Renew implements Store: delegate, then write through the refreshed lease.
func (f *File) Renew(clientID int, oid oodb.OID, attr oodb.AttrID) (LeaseInfo, error) {
	info, err := f.Memory.Renew(clientID, oid, attr)
	if err != nil || !info.Cached {
		return info, err
	}
	it := core.CoverItem(f.gran, oid, attr)
	entry := core.Entry{Version: info.Version, ExpiresAt: info.ExpiresAt, FetchedAt: info.Now}
	if perr := f.persistEntry(clientID, it, entry); perr != nil {
		return info, perr
	}
	return info, nil
}

// Stats implements Store, adding the persistent tier's identity.
func (f *File) Stats() Stats {
	st := f.Memory.Stats()
	st.Backend = "file"
	st.DSN = redactDSN(f.dsn)
	st.DiskBytes = f.log.DiskBytes()
	return st
}

// redactDSN strips a file DSN's directory prefix, keeping only the final
// path element: stats consumers learn which store served the run, not the
// server's filesystem layout.
func redactDSN(dsn string) string {
	rest, ok := cutScheme(dsn)
	if !ok {
		return dsn
	}
	path, query, hasQuery := strings.Cut(rest, "?")
	red := "…/" + filepath.Base(path)
	if hasQuery {
		red += "?" + query
	}
	return "file:" + red
}

// Register implements Store: the serve.* gauges plus the storage engine's
// instruments (storage.* latency histograms and size gauges).
func (f *File) Register(reg *obs.Registry) {
	f.Memory.Register(reg)
	f.log.Register(reg)
}

// Storage exposes the underlying engine (stats endpoints, tests).
func (f *File) Storage() *storage.Store { return f.log }

// Close flushes and closes the persistence tier. The store must not be
// used afterwards.
func (f *File) Close() error { return f.log.Close() }
