package coherence_test

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/oodb"
)

// The adaptive refresh-time estimate: frequent writes shorten the lease,
// and β trades staleness tolerance against refresh traffic.
func Example() {
	it := oodb.AttrItem(42, 0)
	// Writes observed at the server every ~100s, with some jitter.
	for _, beta := range []float64{-1, 0, 1} {
		e := coherence.NewRefreshEstimator(beta)
		for _, t := range []float64{0, 90, 200, 290, 400} {
			e.ObserveWrite(it, t)
		}
		fmt.Printf("beta=%+g: RT = %.0fs\n", beta, e.RefreshTime(it, 500))
	}
	// Output:
	// beta=-1: RT = 90s
	// beta=+0: RT = 100s
	// beta=+1: RT = 110s
}

// The perfect-knowledge oracle: a read is an error once any write lands on
// the base item after the copy was fetched.
func ExampleOracle() {
	db := oodb.New(oodb.Config{NumObjects: 10})
	oracle := coherence.NewOracle(db)

	it := oodb.AttrItem(3, 1)
	fetched := oracle.CurrentVersion(it) // client caches the copy here
	fmt.Println("error before write:", oracle.IsError(it, fetched))
	db.Write(3, 1)
	fmt.Println("error after write:", oracle.IsError(it, fetched))
	// Output:
	// error before write: false
	// error after write: true
}
