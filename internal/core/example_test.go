package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/replacement"
)

// A client storage cache: insert an attribute item with a lease, hit it
// while valid, observe it go stale after the lease expires.
func Example() {
	cache := core.NewCache(400*core.ItemCost(oodb.ObjectItem(0)), replacement.NewEWMA(0.5))

	item := oodb.AttrItem(17, 2) // attribute 2 of object 17
	entry := core.Entry{Version: 9, ExpiresAt: 100, FetchedAt: 0}
	cache.Insert(item, entry, 0)

	if e, state := cache.Lookup(item, 50); state == core.Hit {
		fmt.Printf("t=50: %v (version %d)\n", state, e.Version)
	}
	_, state := cache.Lookup(item, 150)
	fmt.Printf("t=150: %v\n", state)
	// Output:
	// t=50: hit (version 9)
	// t=150: stale
}

// CoverItem maps an attribute read to the caching unit of each
// granularity.
func ExampleCoverItem() {
	fmt.Println(core.CoverItem(core.ObjectCaching, 5, 3))
	fmt.Println(core.CoverItem(core.AttributeCaching, 5, 3))
	// Output:
	// obj(5)
	// attr(5.3)
}
