package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/oodb"
	"repro/internal/rng"
)

func TestSkewedHeatSetSizes(t *testing.T) {
	h := NewSkewedHeat(2000, 1).(*skewedHeat)
	if len(h.hot) != 400 {
		t.Fatalf("hot set size %d, want 400 (20%% of 2000)", len(h.hot))
	}
	if len(h.cold) != 1600 {
		t.Fatalf("cold set size %d, want 1600", len(h.cold))
	}
	for _, oid := range h.hot {
		if int(oid) >= 2000 {
			t.Fatalf("hot oid %d out of range", oid)
		}
	}
}

func TestSkewedHeat8020(t *testing.T) {
	h := NewSkewedHeat(2000, 1)
	hs := h.(*skewedHeat)
	r := rng.New(2)
	hotAccesses, total := 0, 0
	for q := 0; q < 2000; q++ {
		for _, oid := range h.Pick(r, 20, uint64(q)) {
			if hs.isHot[oid] {
				hotAccesses++
			}
			total++
		}
	}
	frac := float64(hotAccesses) / float64(total)
	if math.Abs(frac-HotAccessProb) > 0.02 {
		t.Fatalf("hot access fraction %v, want ~0.8", frac)
	}
}

func TestSkewedHeatDistinctPicks(t *testing.T) {
	h := NewSkewedHeat(100, 3)
	r := rng.New(4)
	for q := 0; q < 100; q++ {
		picks := h.Pick(r, 20, uint64(q))
		seen := map[oodb.OID]bool{}
		for _, oid := range picks {
			if seen[oid] {
				t.Fatalf("duplicate oid %d in query", oid)
			}
			seen[oid] = true
		}
	}
}

func TestSkewedHeatDifferentSeedsDifferentHotSets(t *testing.T) {
	a := NewSkewedHeat(2000, 1).(*skewedHeat)
	b := NewSkewedHeat(2000, 2).(*skewedHeat)
	same := 0
	for _, oid := range a.hot {
		if b.isHot[oid] {
			same++
		}
	}
	// Random 20% overlap expectation is ~80 of 400; identical sets would
	// be 400.
	if same > 200 {
		t.Fatalf("hot sets overlap too much: %d of %d", same, len(a.hot))
	}
}

func TestChangingSkewedHeatEpochs(t *testing.T) {
	m := NewChangingSkewedHeat(2000, 7, 500)
	csh := m.(*changingSkewedHeat)
	r := rng.New(5)

	m.Pick(r, 5, 0)
	epoch0 := csh.cur
	m.Pick(r, 5, 499)
	if csh.cur != epoch0 {
		t.Fatal("hot set changed within an epoch")
	}
	m.Pick(r, 5, 500)
	if csh.cur == epoch0 {
		t.Fatal("hot set did not change at epoch boundary")
	}
	// Hot sets across epochs must differ.
	overlap := 0
	for _, oid := range epoch0.hot {
		if csh.cur.isHot[oid] {
			overlap++
		}
	}
	if overlap > 200 {
		t.Fatalf("epoch hot sets overlap too much: %d", overlap)
	}
}

func TestChangingSkewedHeatName(t *testing.T) {
	if n := NewChangingSkewedHeat(100, 1, 300).Name(); n != "csh-300" {
		t.Fatalf("Name = %q", n)
	}
}

func newTestCyclic() HeatModel {
	return NewCyclicHeat(CyclicConfig{
		NumObjects: 100, LoopObjects: 40, LoopPerQuery: 4, Burst: 2, Seed: 6,
	})
}

func TestCyclicHeatBurstRepeats(t *testing.T) {
	m := newTestCyclic()
	r := rng.New(6)
	// Queries 0 and 1 share a loop window (burst=2); query 2 advances it.
	q0 := m.Pick(r, 10, 0)[:4]
	q1 := m.Pick(r, 10, 1)[:4]
	q2 := m.Pick(r, 10, 2)[:4]
	for i := range q0 {
		if q0[i] != q1[i] {
			t.Fatalf("burst window changed within burst: %v vs %v", q0, q1)
		}
	}
	same := 0
	for i := range q0 {
		if q0[i] == q2[i] {
			same++
		}
	}
	if same == len(q0) {
		t.Fatal("loop window did not advance after burst")
	}
}

func TestCyclicHeatPeriodRevisit(t *testing.T) {
	m := newTestCyclic().(*cyclicHeat)
	// Period = (40/4)*2 = 20 queries: query 20 sees query 0's loop window.
	if m.Period() != 20 {
		t.Fatalf("Period = %d, want 20", m.Period())
	}
	r := rng.New(7)
	q0 := m.Pick(r, 10, 0)[:4]
	q20 := m.Pick(r, 10, 20)[:4]
	for i := range q0 {
		if q0[i] != q20[i] {
			t.Fatalf("loop did not revisit at the period: %v vs %v", q0, q20)
		}
	}
}

func TestCyclicHeatNoiseDisjointFromLoop(t *testing.T) {
	m := newTestCyclic().(*cyclicHeat)
	inLoop := map[oodb.OID]bool{}
	for _, oid := range m.loop {
		inLoop[oid] = true
	}
	r := rng.New(8)
	for q := uint64(0); q < 50; q++ {
		picks := m.Pick(r, 10, q)
		for _, oid := range picks[4:] {
			if inLoop[oid] {
				t.Fatalf("noise draw %d came from the loop pool", oid)
			}
		}
	}
}

func TestHeatValidation(t *testing.T) {
	cases := []func(){
		func() { NewSkewedHeat(1, 0) },
		func() { NewChangingSkewedHeat(100, 0, 0) },
		func() { NewCyclicHeat(CyclicConfig{NumObjects: 4}) },
		func() { NewCyclicHeat(CyclicConfig{NumObjects: 100, LoopPerQuery: 0}) },
		func() { NewCyclicHeat(CyclicConfig{NumObjects: 100, LoopObjects: 100, LoopPerQuery: 1}) },
		func() { NewCyclicHeat(CyclicConfig{NumObjects: 100, LoopObjects: 2, LoopPerQuery: 5}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func newTestGen(kind Kind) *QueryGen {
	db := oodb.New(oodb.Config{NumObjects: 200, RelSeed: 1})
	return NewQueryGen(QueryGenConfig{
		Kind: kind,
		Heat: NewSkewedHeat(200, 1),
		DB:   db,
	})
}

func TestAssociativeQueryShape(t *testing.T) {
	g := newTestGen(Associative)
	r := rng.New(8)
	q := g.Next(r)
	if len(q.Objects) != DefaultSelectivity {
		t.Fatalf("selected %d objects, want %d", len(q.Objects), DefaultSelectivity)
	}
	if len(q.Reads) != DefaultSelectivity*DefaultAttrsPerObject {
		t.Fatalf("%d reads, want %d", len(q.Reads), DefaultSelectivity*DefaultAttrsPerObject)
	}
	for _, rd := range q.Reads {
		if rd.Attr >= oodb.NumPrimAttrs {
			t.Fatalf("read on non-primitive attribute %d", rd.Attr)
		}
	}
	if q.Kind != Associative || q.Index != 0 {
		t.Fatalf("query metadata: %+v", q)
	}
	if g.Next(r).Index != 1 {
		t.Fatal("query index not increasing")
	}
}

func TestNavigationalQueryDoublesSelectivity(t *testing.T) {
	g := newTestGen(Navigational)
	r := rng.New(9)
	q := g.Next(r)
	if len(q.Reads) != 2*DefaultSelectivity*DefaultAttrsPerObject {
		t.Fatalf("%d reads, want %d", len(q.Reads), 2*DefaultSelectivity*DefaultAttrsPerObject)
	}
	// NQ touches roughly twice the distinct objects of AQ ("doubles the
	// selectivity"); relationship targets may collide with selections so
	// allow slack.
	if d := q.DistinctObjects(); d < DefaultSelectivity+10 {
		t.Fatalf("distinct objects %d, want > %d", d, DefaultSelectivity+10)
	}
}

func TestQueryAttrsDistinctPerObject(t *testing.T) {
	g := newTestGen(Associative)
	r := rng.New(10)
	for i := 0; i < 50; i++ {
		q := g.Next(r)
		perObj := map[oodb.OID]map[oodb.AttrID]bool{}
		for _, rd := range q.Reads {
			if perObj[rd.OID] == nil {
				perObj[rd.OID] = map[oodb.AttrID]bool{}
			}
			if perObj[rd.OID][rd.Attr] {
				t.Fatalf("duplicate attr %d on object %d", rd.Attr, rd.OID)
			}
			perObj[rd.OID][rd.Attr] = true
		}
	}
}

func TestAttrDistributionSkewed(t *testing.T) {
	g := newTestGen(Associative)
	r := rng.New(11)
	counts := make([]int, oodb.NumPrimAttrs)
	for i := 0; i < 500; i++ {
		for _, rd := range g.Next(r).Reads {
			counts[rd.Attr]++
		}
	}
	if counts[0] <= counts[oodb.NumPrimAttrs-1] {
		t.Fatalf("attribute 0 (%d) not hotter than attribute 8 (%d)",
			counts[0], counts[oodb.NumPrimAttrs-1])
	}
	for a, c := range counts {
		if c == 0 {
			t.Fatalf("attribute %d never accessed (must be non-zero probability)", a)
		}
	}
}

func TestQueryGenValidation(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 100})
	heat := NewSkewedHeat(100, 1)
	cases := []QueryGenConfig{
		{DB: db},                                // no heat
		{Heat: heat},                            // no db
		{Heat: heat, DB: db, AttrsPerObj: 1000}, // too many attrs
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewQueryGen(cfg)
		}()
	}
}

func TestKindString(t *testing.T) {
	if Associative.String() != "AQ" || Navigational.String() != "NQ" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(0.01)
	r := rng.New(12)
	now, n := 0.0, 20000
	for i := 0; i < n; i++ {
		now = p.Next(r, now)
	}
	rate := float64(n) / now
	if math.Abs(rate-0.01)/0.01 > 0.03 {
		t.Fatalf("empirical rate %v, want ~0.01", rate)
	}
}

func TestPoissonMonotone(t *testing.T) {
	p := NewPoisson(1)
	r := rng.New(13)
	now := 0.0
	for i := 0; i < 1000; i++ {
		next := p.Next(r, now)
		if next <= now {
			t.Fatalf("arrival did not advance: %v -> %v", now, next)
		}
		now = next
	}
}

func TestDefaultBurstyProfile(t *testing.T) {
	segs := DefaultBurstySegments()
	if got := MeanDailyRate(segs); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("mean daily rate %v, want 0.01", got)
	}
	// 80% of arrivals in the two bursts.
	burstMass := (0.037*3 + 0.027*3) * SecondsPerHour
	totalMass := MeanDailyRate(segs) * SecondsPerDay
	if frac := burstMass / totalMass; math.Abs(frac-0.8) > 1e-9 {
		t.Fatalf("burst fraction %v, want 0.8", frac)
	}
}

func TestBurstyArrivalsClusterInBursts(t *testing.T) {
	b := NewDefaultBursty()
	r := rng.New(14)
	now := 0.0
	inBurst, total := 0, 0
	for now < 10*SecondsPerDay {
		now = b.Next(r, now)
		if now >= 10*SecondsPerDay {
			break
		}
		tod := math.Mod(now, SecondsPerDay) / SecondsPerHour
		if (tod >= 7 && tod < 10) || (tod >= 16 && tod < 19) {
			inBurst++
		}
		total++
	}
	frac := float64(inBurst) / float64(total)
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("burst arrival fraction %v, want ~0.8 (n=%d)", frac, total)
	}
	// Average rate should still be ~0.01.
	rate := float64(total) / (10 * SecondsPerDay)
	if math.Abs(rate-0.01)/0.01 > 0.1 {
		t.Fatalf("empirical bursty rate %v, want ~0.01", rate)
	}
}

func TestBurstyMonotone(t *testing.T) {
	b := NewDefaultBursty()
	r := rng.New(15)
	now := 12 * SecondsPerHour // start mid-day
	for i := 0; i < 2000; i++ {
		next := b.Next(r, now)
		if next <= now {
			t.Fatalf("arrival did not advance at %v", now)
		}
		now = next
	}
}

func TestBurstyValidation(t *testing.T) {
	cases := [][]Segment{
		nil,
		{{0, 12, 0.01}},                 // doesn't reach 24
		{{0, 12, 0.01}, {13, 24, 0.01}}, // gap
		{{0, 12, 0.01}, {12, 24, 0}},    // zero rate
		{{0, 0, 0.01}, {0, 24, 0.01}},   // empty segment
		{{1, 12, 0.01}, {12, 24, 0.01}}, // doesn't start at 0
		{{0, 25, 0.01}},                 // beyond 24
	}
	for i, segs := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewBursty(segs)
		}()
	}
}

func TestArrivalNames(t *testing.T) {
	if NewPoisson(1).Name() != "poisson" || NewDefaultBursty().Name() != "bursty" {
		t.Fatal("arrival names wrong")
	}
}

func TestBuildSchedules(t *testing.T) {
	cfg := DisconnectConfig{
		NumClients: 10, DisconnectedClients: 3,
		DurationHours: 5, Days: 4, Seed: 1,
	}
	scheds := BuildSchedules(cfg)
	if len(scheds) != 10 {
		t.Fatalf("%d schedules", len(scheds))
	}
	for c := 0; c < 3; c++ {
		outages := scheds[c].Outages()
		if len(outages) != 4 {
			t.Fatalf("client %d has %d outages, want 4", c, len(outages))
		}
		for day, o := range outages {
			if o.End-o.Start != 5*SecondsPerHour {
				t.Fatalf("outage duration %v", o.End-o.Start)
			}
			dayStart := float64(day) * SecondsPerDay
			if o.Start < dayStart || o.End > dayStart+SecondsPerDay {
				t.Fatalf("outage %v not within day %d", o, day)
			}
		}
	}
	for c := 3; c < 10; c++ {
		if len(scheds[c].Outages()) != 0 {
			t.Fatalf("connected client %d has outages", c)
		}
	}
}

func TestBuildSchedulesZeroDuration(t *testing.T) {
	scheds := BuildSchedules(DisconnectConfig{
		NumClients: 2, DisconnectedClients: 2, DurationHours: 0, Days: 3, Seed: 1,
	})
	for _, s := range scheds {
		if len(s.Outages()) != 0 {
			t.Fatal("zero-duration config produced outages")
		}
	}
}

func TestBuildSchedulesValidation(t *testing.T) {
	cases := []DisconnectConfig{
		{NumClients: 0},
		{NumClients: 2, DisconnectedClients: 3},
		{NumClients: 2, DisconnectedClients: -1},
		{NumClients: 2, DurationHours: 25},
		{NumClients: 2, Days: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			BuildSchedules(cfg)
		}()
	}
}

// Property: every heat model always returns n distinct valid OIDs.
func TestQuickHeatDistinctValid(t *testing.T) {
	models := []HeatModel{
		NewSkewedHeat(100, 1),
		NewChangingSkewedHeat(100, 2, 50),
		NewCyclicHeat(CyclicConfig{NumObjects: 100, LoopObjects: 25, LoopPerQuery: 5, Seed: 3}),
	}
	for _, m := range models {
		m := m
		f := func(seed uint64, qi uint16, nRaw uint8) bool {
			n := int(nRaw)%20 + 1
			r := rng.New(seed)
			picks := m.Pick(r, n, uint64(qi))
			if len(picks) > n {
				return false
			}
			seen := map[oodb.OID]bool{}
			for _, oid := range picks {
				if int(oid) >= 100 || seen[oid] {
					return false
				}
				seen[oid] = true
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// Property: bursty arrivals strictly advance from any starting time.
func TestQuickBurstyAdvances(t *testing.T) {
	b := NewDefaultBursty()
	f := func(seed uint64, startRaw uint32) bool {
		r := rng.New(seed)
		now := float64(startRaw % 200000)
		next := b.Next(r, now)
		return next > now && !math.IsInf(next, 0) && !math.IsNaN(next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPoolDeterministic(t *testing.T) {
	a := SharedPool(1000, 7, 100)
	b := SharedPool(1000, 7, 100)
	if len(a) != 100 {
		t.Fatalf("pool size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SharedPool not deterministic")
		}
	}
	seen := map[oodb.OID]bool{}
	for _, oid := range a {
		if int(oid) >= 1000 || seen[oid] {
			t.Fatalf("invalid pool member %d", oid)
		}
		seen[oid] = true
	}
}

func TestSharedPoolValidation(t *testing.T) {
	for _, bad := range []struct{ n, k int }{{10, 0}, {10, 10}, {10, 20}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SharedPool(%d,%d) did not panic", bad.n, bad.k)
				}
			}()
			SharedPool(bad.n, 1, bad.k)
		}()
	}
}

func TestSharedSkewedHeatDrawsFromPool(t *testing.T) {
	const n, poolSize = 1000, 50
	pool := SharedPool(n, 3, poolSize)
	inPool := map[oodb.OID]bool{}
	for _, oid := range pool {
		inPool[oid] = true
	}
	h := NewSharedSkewedHeat(n, 3, 99, poolSize, 0.6)
	r := rng.New(4)
	shared, total := 0, 0
	for q := 0; q < 1000; q++ {
		for _, oid := range h.Pick(r, 10, uint64(q)) {
			if inPool[oid] {
				shared++
			}
			total++
		}
	}
	frac := float64(shared) / float64(total)
	// Share prob 0.6 plus occasional private draws landing in the pool.
	if frac < 0.55 || frac > 0.75 {
		t.Fatalf("shared fraction %.3f, want ~0.6", frac)
	}
	if h.Name() != "shared-sh" {
		t.Fatalf("Name = %q", h.Name())
	}
}

func TestSharedSkewedHeatPoolsMatchAcrossClients(t *testing.T) {
	// Same seed, different clientSeed: identical shared pool, different
	// private hot sets.
	a := NewSharedSkewedHeat(1000, 3, 1, 50, 0.5).(*sharedSkewedHeat)
	b := NewSharedSkewedHeat(1000, 3, 2, 50, 0.5).(*sharedSkewedHeat)
	for i := range a.shared {
		if a.shared[i] != b.shared[i] {
			t.Fatal("shared pools differ across clients")
		}
	}
	overlap := 0
	for _, oid := range a.private.hot {
		if b.private.isHot[oid] {
			overlap++
		}
	}
	if overlap == len(a.private.hot) {
		t.Fatal("private hot sets identical across clients")
	}
}

func TestSharedSkewedHeatValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shareProb did not panic")
		}
	}()
	NewSharedSkewedHeat(100, 1, 2, 10, 1.5)
}
