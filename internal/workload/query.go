package workload

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
)

// Kind distinguishes the two query types of §4.
type Kind int

const (
	// Associative queries (AQ) access Q_a primitive attributes of each
	// selected object.
	Associative Kind = iota
	// Navigational queries (NQ) additionally traverse one inter-object
	// relationship per selected object and access Q_a attributes of the
	// related object, doubling the effective selectivity.
	Navigational
)

// String renders the kind as the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case Associative:
		return "AQ"
	case Navigational:
		return "NQ"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Defaults for query shape (§4; Table 1's Q_a column is garbled in the
// source text — see DESIGN.md for the substitution rationale).
const (
	// DefaultSelectivity is 1% of the 2000-object database: 20 objects.
	DefaultSelectivity = 20
	// DefaultAttrsPerObject is Q_a, the primitive attributes accessed per
	// selected object.
	DefaultAttrsPerObject = 3
	// DefaultAttrTheta skews the per-attribute access distribution
	// ("uniform skewed ... all attributes have a non-zero access
	// probability"): weights 1/rank^theta over the 9 primitive attributes.
	DefaultAttrTheta = 1.0
)

// ReadOp is one attribute access performed by a query.
type ReadOp struct {
	OID  oodb.OID
	Attr oodb.AttrID
}

// Query is one client query: the selected objects and the flattened list
// of attribute reads (including reads on navigated objects for NQ).
type Query struct {
	Index   uint64
	Kind    Kind
	Objects []oodb.OID // objects selected by the predicate
	Reads   []ReadOp   // attribute accesses, in evaluation order
}

// QueryGen produces the stream of queries a client issues.
type QueryGen struct {
	kind        Kind
	heat        HeatModel
	db          *oodb.Database
	attrDist    *rng.Discrete
	selectivity int
	attrsPerObj int
	count       uint64
	attrScratch []oodb.AttrID // reused by pickAttrs; consumed before the next call
}

// QueryGenConfig parameterizes a generator; zero values select defaults.
type QueryGenConfig struct {
	Kind          Kind
	Heat          HeatModel
	DB            *oodb.Database
	Selectivity   int     // objects per query (default DefaultSelectivity)
	AttrsPerObj   int     // Q_a (default DefaultAttrsPerObject)
	AttrSkewTheta float64 // default DefaultAttrTheta
}

// NewQueryGen builds a generator. Heat and DB are required.
func NewQueryGen(cfg QueryGenConfig) *QueryGen {
	if cfg.Heat == nil {
		panic("workload: QueryGen requires a heat model")
	}
	if cfg.DB == nil {
		panic("workload: QueryGen requires a database")
	}
	sel := cfg.Selectivity
	if sel <= 0 {
		sel = DefaultSelectivity
	}
	qa := cfg.AttrsPerObj
	if qa <= 0 {
		qa = DefaultAttrsPerObject
	}
	if qa > oodb.NumPrimAttrs {
		panic(fmt.Sprintf("workload: AttrsPerObj %d exceeds %d primitive attributes",
			qa, oodb.NumPrimAttrs))
	}
	theta := cfg.AttrSkewTheta
	if theta == 0 {
		theta = DefaultAttrTheta
	}
	return &QueryGen{
		kind:        cfg.Kind,
		heat:        cfg.Heat,
		db:          cfg.DB,
		attrDist:    rng.NewDiscrete(rng.ZipfWeights(oodb.NumPrimAttrs, theta)),
		selectivity: sel,
		attrsPerObj: qa,
	}
}

// Kind returns the generator's query type.
func (g *QueryGen) Kind() Kind { return g.kind }

// HeatName returns the underlying heat model name.
func (g *QueryGen) HeatName() string { return g.heat.Name() }

// Count returns the number of queries generated so far.
func (g *QueryGen) Count() uint64 { return g.count }

// Next generates the next query using the client's stream r.
func (g *QueryGen) Next(r *rng.Stream) Query {
	var q Query
	g.NextInto(r, &q)
	return q
}

// NextInto generates the next query into q, reusing q's Objects and Reads
// backing storage. The random draws are identical to Next's.
func (g *QueryGen) NextInto(r *rng.Stream, q *Query) {
	q.Index = g.count
	q.Kind = g.kind
	g.count++
	q.Objects = g.heat.PickInto(r, g.selectivity, q.Index, q.Objects)
	q.Reads = q.Reads[:0]
	for _, oid := range q.Objects {
		for _, attr := range g.pickAttrs(r) {
			q.Reads = append(q.Reads, ReadOp{OID: oid, Attr: attr})
		}
		if g.kind == Navigational {
			// Traverse one relationship (Q_r = 1) and access Q_a
			// attributes of the related object.
			rel := r.Intn(oodb.NumRelAttrs)
			target := g.db.Relationship(oid, rel)
			for _, attr := range g.pickAttrs(r) {
				q.Reads = append(q.Reads, ReadOp{OID: target, Attr: attr})
			}
		}
	}
}

// pickAttrs draws Q_a distinct primitive attributes from the skewed
// distribution. The returned slice aliases the generator's scratch buffer
// and is only valid until the next call.
func (g *QueryGen) pickAttrs(r *rng.Stream) []oodb.AttrID {
	if g.attrScratch == nil {
		g.attrScratch = make([]oodb.AttrID, 0, g.attrsPerObj)
	}
	out := g.attrScratch[:0]
	var seen [oodb.NumPrimAttrs]bool
	for len(out) < g.attrsPerObj {
		a := oodb.AttrID(g.attrDist.Draw(r))
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	g.attrScratch = out
	return out
}

// DistinctObjects returns the number of distinct objects a query touches
// (selected plus navigated).
func (q *Query) DistinctObjects() int {
	seen := make(map[oodb.OID]bool)
	for _, rd := range q.Reads {
		seen[rd.OID] = true
	}
	return len(seen)
}
