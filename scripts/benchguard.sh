#!/usr/bin/env bash
# benchguard.sh — CI gate against hot-path regressions.
#
# Two gate passes, each re-running a benchmark class and comparing every
# bench against the ns_per_op recorded in its committed baseline JSON:
#
#   kernel   the steady-state per-event benchmarks (the KernelHoldLoop
#            class: tight hold loops and resource contention on both
#            execution engines)            vs BENCH_kernel.json
#   storage  the persistence engine (point reads, group-committed
#            inserts, cold-start recovery) vs BENCH_storage.json
#
# A bench running more than REGRESSION_FACTOR (default 2.0) times slower
# than its committed baseline fails the build.
#
# The factor is deliberately loose: CI machines differ from the machine
# that recorded the baseline, the kernel benches are single-digit
# microseconds, and the storage benches are fsync-bound (disk-speed
# sensitive). The gate exists to catch accidental O(n) work or
# allocation on the per-event path — 10x-class regressions — not 20%
# drift. Benches without a committed baseline are reported and skipped,
# so adding a benchmark does not require updating the JSON in the same
# commit; a missing baseline file skips its whole pass the same way.
#
# Environment knobs:
#   REGRESSION_FACTOR  failure threshold vs baseline   (default 2.0)
#   BENCH_TIME         go -benchtime for the kernel pass  (default 200x)
#   BENCH_STORAGE_TIME go -benchtime for the storage pass (default 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${REGRESSION_FACTOR:-2.0}"
BENCH_TIME="${BENCH_TIME:-200x}"
BENCH_STORAGE_TIME="${BENCH_STORAGE_TIME:-100x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# guard BASELINE REGEX PKG BENCHTIME — one gate pass: re-run the benches
# matching REGEX in PKG and hold each to FACTOR times its entry in
# BASELINE.
guard() {
    local baseline="$1" regex="$2" pkg="$3" benchtime="$4"
    if [ ! -f "$baseline" ]; then
        echo "benchguard: $baseline missing; run scripts/bench.sh first (pass skipped)" >&2
        return 0
    fi
    go test -run '^$' -bench "$regex" -benchtime "$benchtime" "$pkg" | tee "$raw"

    awk -v factor="$FACTOR" -v baseline="$baseline" '
    # Pass 1: committed baselines — lines like {"name": "KernelHoldLoop", ..., "ns_per_op": 560.5, ...}
    FILENAME == baseline && /"name"/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0;   sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        base[name] = ns + 0
        next
    }
    # Pass 2: fresh run — "BenchmarkKernelHoldLoop-8   200   571.2 ns/op ..."
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        fresh = $3 + 0
        checked++
        if (!(name in base)) {
            printf("benchguard: %-45s %12.1f ns/op  (no baseline, skipped)\n", name, fresh)
            next
        }
        ratio = base[name] > 0 ? fresh / base[name] : 0
        verdict = ratio > factor ? "FAIL" : "ok"
        printf("benchguard: %-45s %12.1f ns/op  baseline %12.1f  ratio %.2fx  %s\n",
               name, fresh, base[name], ratio, verdict)
        if (ratio > factor) failures++
    }
    END {
        if (checked == 0) { print "benchguard: no benchmarks ran" > "/dev/stderr"; exit 1 }
        if (failures > 0) {
            printf("benchguard: %d benchmark(s) regressed beyond %.1fx of %s\n",
                   failures, factor, baseline) > "/dev/stderr"
            exit 1
        }
        printf("benchguard: %d benchmark(s) within %.1fx of committed baselines\n", checked, factor)
    }' "$baseline" "$raw"
}

guard BENCH_kernel.json \
    '^BenchmarkKernel(StateMachine)?(HoldLoop|ResourceContention|ManyMachines)$' \
    ./internal/sim "$BENCH_TIME"
guard BENCH_storage.json \
    '^BenchmarkStorage(Get|Insert|Recover)$' \
    ./internal/storage "$BENCH_STORAGE_TIME"
