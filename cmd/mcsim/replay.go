package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
	"repro/internal/report"
)

// readManifest loads a report manifest from path — either the manifest.json
// itself or the report directory holding it — and returns the manifest plus
// the directory the other artifacts (report.md, trace.csv) live in.
func readManifest(path string) (report.Manifest, string, error) {
	var man report.Manifest
	info, err := os.Stat(path)
	if err != nil {
		return man, "", err
	}
	file, dir := path, filepath.Dir(path)
	if info.IsDir() {
		dir, file = path, filepath.Join(path, "manifest.json")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return man, "", err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, "", fmt.Errorf("%s: %w", file, err)
	}
	return man, dir, nil
}

// manifestBase reconstructs the sweep base config an experiment manifest's
// run was launched with: exactly the fields the exp flag surface sets,
// taken from the archived representative config. Those fields are either
// experiment-invariant or already defaulted — and defaulting is idempotent,
// so feeding the defaulted values back reproduces the identical grid.
func manifestBase(man report.Manifest) experiment.Config {
	c := man.Config
	return experiment.Config{
		Seed:           man.Seed,
		Days:           c.Days,
		NumClients:     c.NumClients,
		NumObjects:     c.NumObjects,
		LossRate:       c.LossRate,
		CorruptRate:    c.CorruptRate,
		BurstFraction:  c.BurstFraction,
		MeanBadSeconds: c.MeanBadSeconds,
		RetryMax:       c.RetryMax,
		RetryBackoff:   c.RetryBackoff,
	}
}

// quickFromManifest reports whether the archived sweep used the -quick
// grids. Manifests written before the Quick field are recognized by the
// recorded reproduce command.
func quickFromManifest(man report.Manifest) bool {
	return man.Quick || strings.Contains(man.Command, " -quick")
}

// replayManifest re-executes the simulation an archived manifest records
// (mcsim run -config). A run manifest reruns its single configuration; an
// experiment manifest reruns the sweep and verifies the regenerated tables
// hash to the archived digests. With reportDir set, the rerun also writes
// fresh report artifacts there.
func replayManifest(man report.Manifest, reportDir string) error {
	fmt.Printf("replaying %s: %s\n", man.Experiment, man.Command)
	if !strings.HasPrefix(man.Experiment, "exp") {
		return executeRun(man.Config, runOpts{replicas: 1, reportDir: reportDir})
	}
	which := strings.TrimPrefix(man.Experiment, "exp")
	rep, err := runExperimentsRep(which, manifestBase(man), quickFromManifest(man), reportDir)
	if err != nil {
		return err
	}
	if err := compareTables(man.Tables, rep); err != nil {
		return err
	}
	fmt.Printf("replay reproduced all %d archived table hashes\n", len(man.Tables))
	return nil
}

// verifyManifest checks that an archived report still reproduces
// (mcsim report -verify). Experiment manifests rerun the sweep and compare
// table hashes; run manifests regenerate the whole report into a scratch
// directory and demand byte-identical report.md.
func verifyManifest(dir string, man report.Manifest) error {
	if strings.HasPrefix(man.Experiment, "exp") {
		rep, err := runExperimentsRep(strings.TrimPrefix(man.Experiment, "exp"),
			manifestBase(man), quickFromManifest(man), "")
		if err != nil {
			return err
		}
		if err := compareTables(man.Tables, rep); err != nil {
			return err
		}
		fmt.Printf("verified: all %d archived table hashes reproduce\n", len(man.Tables))
		return nil
	}

	tmp, err := os.MkdirTemp("", "mcsim-verify-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if _, err := instrumentedReport(tmp, man.Experiment, man.Command, nil,
		man.Config, man.Quick); err != nil {
		return err
	}
	want, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		return err
	}
	got, err := os.ReadFile(filepath.Join(tmp, "report.md"))
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("report.md does not reproduce byte-for-byte (config or code drift since the archive)")
	}
	fmt.Println("verified: report.md reproduces byte-for-byte")
	return nil
}

// compareTables checks the regenerated tables of rep against the archived
// title + SHA-256 pairs, in order.
func compareTables(want []report.TableHash, rep *experiment.Report) error {
	var got []*experiment.Table
	if rep != nil {
		got = rep.Tables
	}
	if len(got) != len(want) {
		return fmt.Errorf("replay produced %d tables, manifest records %d", len(got), len(want))
	}
	for i, w := range want {
		sum := fmt.Sprintf("%x", sha256.Sum256([]byte(got[i].String())))
		if got[i].Title != w.Title {
			return fmt.Errorf("table %d is %q, manifest records %q", i, got[i].Title, w.Title)
		}
		if sum != w.SHA256 {
			return fmt.Errorf("table %q does not reproduce: got sha256 %s, manifest records %s",
				w.Title, shortHash(sum), shortHash(w.SHA256))
		}
	}
	return nil
}
