package sim

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestMM1AgainstTheory validates the kernel's process/resource semantics
// against closed-form queueing theory: an M/M/1 queue with arrival rate λ
// and service rate μ has expected waiting time (in queue)
// Wq = λ/(μ(μ−λ)) and server utilization ρ = λ/μ. If the event ordering,
// FCFS hand-off, or clock arithmetic were wrong, these would not match.
func TestMM1AgainstTheory(t *testing.T) {
	const (
		lambda = 0.8
		mu     = 1.0
		n      = 200000
	)
	k := NewKernel()
	res := NewResource(k, "server", 1)
	arrivals := rng.New(42)
	services := rng.New(43)

	var totalWait float64
	var completed int

	k.Spawn("generator", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Hold(arrivals.Exp(lambda))
			service := services.Exp(mu)
			k.Spawn("job", func(j *Proc) {
				start := j.Now()
				res.Acquire(j)
				totalWait += j.Now() - start
				j.Hold(service)
				res.Release()
				completed++
			})
		}
	})
	k.RunAll()

	if completed != n {
		t.Fatalf("completed %d of %d jobs", completed, n)
	}
	rho := lambda / mu
	wantWq := lambda / (mu * (mu - lambda))
	gotWq := totalWait / float64(n)
	if math.Abs(gotWq-wantWq)/wantWq > 0.05 {
		t.Errorf("mean queue wait %.3f, theory %.3f (±5%%)", gotWq, wantWq)
	}
	if gotRho := res.Utilization(); math.Abs(gotRho-rho)/rho > 0.02 {
		t.Errorf("utilization %.3f, theory %.3f (±2%%)", gotRho, rho)
	}
}

// TestMD1AgainstTheory does the same for deterministic service (M/D/1):
// Wq = ρ/(2μ(1−ρ)) — half the M/M/1 wait.
func TestMD1AgainstTheory(t *testing.T) {
	const (
		lambda = 0.8
		mu     = 1.0
		n      = 200000
	)
	k := NewKernel()
	res := NewResource(k, "server", 1)
	arrivals := rng.New(7)

	var totalWait float64
	k.Spawn("generator", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Hold(arrivals.Exp(lambda))
			k.Spawn("job", func(j *Proc) {
				start := j.Now()
				res.Acquire(j)
				totalWait += j.Now() - start
				j.Hold(1 / mu)
				res.Release()
			})
		}
	})
	k.RunAll()

	rho := lambda / mu
	wantWq := rho / (2 * mu * (1 - rho))
	gotWq := totalWait / float64(n)
	if math.Abs(gotWq-wantWq)/wantWq > 0.05 {
		t.Errorf("M/D/1 mean queue wait %.3f, theory %.3f (±5%%)", gotWq, wantWq)
	}
}
