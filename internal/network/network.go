// Package network models the wireless communication substrate of §4: two
// dedicated point-to-point channels of 19.2 Kbps shared by all mobile
// clients — one upstream (queries) and one downstream (results) — plus the
// message-size accounting (11-byte header with IP address and CRC) and the
// client disconnection schedules used by Experiment #6.
package network

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/sim"
)

// Bandwidth and framing constants from §4 of the paper.
const (
	// WirelessBandwidthBps is the wireless channel bandwidth: 19.2 Kbps.
	WirelessBandwidthBps = 19200.0
	// DiskBandwidthBps models a fast SCSI disk: 40 Mbps.
	DiskBandwidthBps = 40e6
	// MemoryBandwidthBps models main memory: 100 Mbps.
	MemoryBandwidthBps = 100e6
	// HeaderSize is the per-message header: IP address + CRC (11 bytes).
	HeaderSize = 11
	// OIDSize is the wire size of an object identifier.
	OIDSize = 4
	// AttrRefSize is the wire size of an attribute reference within a
	// request or reply entry.
	AttrRefSize = 1
	// RefreshTimeSize is the wire size of the refresh-time estimate the
	// server attaches to every returned item (§3.2).
	RefreshTimeSize = 4
	// QueryDescSize is the wire size of the query descriptor (predicate,
	// projection, and query-type bits).
	QueryDescSize = 16
)

// Radio energy model. §2 of the paper motivates small-granularity caching
// with battery life ("caching a page will result in wasting of energy");
// these constants quantify it using era-typical wireless-modem draw
// (~1.9 W transmitting, ~1.5 W receiving) at the 19.2 Kbps channel rate.
const (
	// TxPowerWatts / RxPowerWatts are the radio's power draw while
	// transmitting and receiving.
	TxPowerWatts = 1.9
	RxPowerWatts = 1.5
)

// TxEnergy returns the Joules a client spends transmitting `bytes` at the
// wireless rate.
func TxEnergy(bytes int) float64 {
	return TxPowerWatts * float64(bytes) * 8 / WirelessBandwidthBps
}

// RxEnergy returns the Joules a client spends receiving `bytes` at the
// wireless rate.
func RxEnergy(bytes int) float64 {
	return RxPowerWatts * float64(bytes) * 8 / WirelessBandwidthBps
}

// Channel is a shared FCFS wireless link. Transfer time is message size
// divided by bandwidth; contention queues behind the sim.Resource.
type Channel struct {
	res       *sim.Resource
	bandwidth float64 // bits per second
	bytesSent uint64
	messages  uint64
}

// NewChannel creates a channel with the given bandwidth in bits/second.
func NewChannel(k *sim.Kernel, name string, bandwidthBps float64) *Channel {
	if bandwidthBps <= 0 {
		panic("network: channel bandwidth must be positive")
	}
	return &Channel{
		res:       sim.NewResource(k, name, 1),
		bandwidth: bandwidthBps,
	}
}

// TransferTime returns the seconds needed to ship `bytes` at this
// channel's bandwidth (excluding queueing).
func (c *Channel) TransferTime(bytes int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative message size %d", bytes))
	}
	return float64(bytes) * 8 / c.bandwidth
}

// Send occupies the channel for the transfer duration of a message of the
// given size, queueing FCFS behind other senders.
func (c *Channel) Send(p *sim.Proc, bytes int) {
	c.res.Use(p, c.TransferTime(bytes))
	c.bytesSent += uint64(bytes)
	c.messages++
}

// SendDeferred queues for the channel and, once at the head of the queue,
// calls sizeFn with the time spent waiting to learn the message size —
// then transfers it. It implements the paper's timeout heuristic (§5.3):
// a reply that has queued too long can be shrunk (prefetched items shed)
// at the moment delivery begins.
func (c *Channel) SendDeferred(p *sim.Proc, sizeFn func(waited float64) int) {
	start := p.Now()
	c.res.Acquire(p)
	bytes := sizeFn(p.Now() - start)
	p.Hold(c.TransferTime(bytes))
	c.res.Release()
	c.bytesSent += uint64(bytes)
	c.messages++
}

// Register wires the channel into an observability registry under the
// given series prefix: cumulative busy fraction (the report differences
// consecutive samples into windowed busy/idle utilization), instantaneous
// queue depth, and cumulative bytes/messages. No-op when reg is disabled.
func (c *Channel) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".utilization", c.Utilization)
	reg.Gauge(prefix+".queue", func() float64 { return float64(c.res.QueueLen()) })
	reg.Gauge(prefix+".bytes", func() float64 { return float64(c.bytesSent) })
	reg.Gauge(prefix+".messages", func() float64 { return float64(c.messages) })
}

// Utilization reports the time-average busy fraction of the channel.
func (c *Channel) Utilization() float64 { return c.res.Utilization() }

// MeanWait reports the average queueing delay per message.
func (c *Channel) MeanWait() float64 { return c.res.MeanWait() }

// BytesSent reports the cumulative payload shipped.
func (c *Channel) BytesSent() uint64 { return c.bytesSent }

// Messages reports the number of messages sent.
func (c *Channel) Messages() uint64 { return c.messages }

// RequestSize returns the wire size of an upstream query message carrying
// an existent list of n entries (each an (OID, attr) pair the client has
// already satisfied locally, §3.1.2).
func RequestSize(existentEntries int) int {
	if existentEntries < 0 {
		panic("network: negative existent list length")
	}
	return HeaderSize + QueryDescSize + existentEntries*(OIDSize+AttrRefSize)
}

// ReplyEntrySize returns the wire size of one reply entry for the given
// item: identifier, attribute reference, refresh-time estimate, and the
// payload (a whole object or a single attribute value).
func ReplyEntrySize(it oodb.Item) int {
	return OIDSize + AttrRefSize + RefreshTimeSize + it.Size()
}

// ReplySize returns the wire size of a downstream reply carrying the given
// items. An empty reply still costs a header (the "no further results"
// frame).
func ReplySize(items []oodb.Item) int {
	size := HeaderSize
	for _, it := range items {
		size += ReplyEntrySize(it)
	}
	return size
}

// Outage is a half-open disconnection interval [Start, End).
type Outage struct {
	Start, End float64
}

// Schedule is a per-client disconnection schedule: the client is
// unreachable during any of its outages. Outages must be added in
// non-overlapping ascending order (BuildOutages does this).
type Schedule struct {
	outages []Outage
}

// AddOutage appends a disconnection window. It panics on malformed or
// out-of-order windows.
func (s *Schedule) AddOutage(o Outage) {
	if o.End <= o.Start {
		panic(fmt.Sprintf("network: outage end %v <= start %v", o.End, o.Start))
	}
	if n := len(s.outages); n > 0 && o.Start < s.outages[n-1].End {
		panic("network: outages must be non-overlapping and ascending")
	}
	s.outages = append(s.outages, o)
}

// Connected reports whether the client is reachable at time t.
func (s *Schedule) Connected(t float64) bool {
	// Binary search for the first outage ending after t.
	i := sort.Search(len(s.outages), func(i int) bool { return s.outages[i].End > t })
	return i == len(s.outages) || t < s.outages[i].Start
}

// NextReconnect returns the end of the outage covering t, or t itself if
// connected.
func (s *Schedule) NextReconnect(t float64) float64 {
	i := sort.Search(len(s.outages), func(i int) bool { return s.outages[i].End > t })
	if i < len(s.outages) && t >= s.outages[i].Start {
		return s.outages[i].End
	}
	return t
}

// DisconnectedTime returns the total outage duration within [0, horizon).
func (s *Schedule) DisconnectedTime(horizon float64) float64 {
	total := 0.0
	for _, o := range s.outages {
		start, end := o.Start, o.End
		if start >= horizon {
			break
		}
		if end > horizon {
			end = horizon
		}
		total += end - start
	}
	return total
}

// Outages returns a copy of the schedule's windows.
func (s *Schedule) Outages() []Outage {
	return append([]Outage(nil), s.outages...)
}
