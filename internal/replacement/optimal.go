package replacement

import (
	"container/heap"

	"repro/internal/oodb"
)

// OptimalHits computes Belady's MIN (the clairvoyant "optimal" policy the
// paper's related work cites from [5]) over an item reference sequence
// with a capacity of `capacity` equally-sized items: on a miss with a full
// cache, evict the resident item whose next reference is farthest in the
// future. It returns the hit and miss counts — the offline upper bound any
// online replacement policy is chasing.
//
// The implementation is O(n log n): next-use indices are precomputed and
// victims selected through a lazily-validated max-heap.
func OptimalHits(seq []oodb.Item, capacity int) (hits, misses int) {
	if capacity < 1 {
		panic("replacement: OptimalHits requires capacity >= 1")
	}
	n := len(seq)
	// nextUse[i] = index of the next reference to seq[i] after i (n if none).
	nextUse := make([]int, n)
	lastSeen := make(map[oodb.Item]int, capacity)
	for i := n - 1; i >= 0; i-- {
		if j, ok := lastSeen[seq[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = n
		}
		lastSeen[seq[i]] = i
	}

	resident := make(map[oodb.Item]int, capacity) // item -> its current next use
	h := &nextUseHeap{}
	for i, it := range seq {
		if _, ok := resident[it]; ok {
			hits++
			resident[it] = nextUse[i]
			heap.Push(h, nextUseEntry{item: it, next: nextUse[i]})
			continue
		}
		misses++
		if len(resident) == capacity {
			// Pop until the head reflects a live (item, next) pair.
			for {
				top := (*h)[0]
				cur, ok := resident[top.item]
				if ok && cur == top.next {
					break
				}
				heap.Pop(h)
			}
			victim := heap.Pop(h).(nextUseEntry)
			delete(resident, victim.item)
		}
		resident[it] = nextUse[i]
		heap.Push(h, nextUseEntry{item: it, next: nextUse[i]})
	}
	return hits, misses
}

// OptimalHitRatio returns hits/len(seq) for Belady's MIN (0 for an empty
// sequence).
func OptimalHitRatio(seq []oodb.Item, capacity int) float64 {
	if len(seq) == 0 {
		return 0
	}
	hits, _ := OptimalHits(seq, capacity)
	return float64(hits) / float64(len(seq))
}

// ReplayHits runs an online policy over the same reference model used by
// OptimalHits — an item-count cache fed one reference at a time — so a
// policy's raw ranking quality can be compared against the clairvoyant
// bound without the full simulator. Timestamps advance one unit per
// reference.
func ReplayHits(p Policy, seq []oodb.Item, capacity int) (hits, misses int) {
	if capacity < 1 {
		panic("replacement: ReplayHits requires capacity >= 1")
	}
	resident := make(map[oodb.Item]bool, capacity)
	for i, it := range seq {
		now := float64(i)
		if resident[it] {
			hits++
			p.OnAccess(it, now)
			continue
		}
		misses++
		if len(resident) == capacity {
			v, ok := p.Victim(now)
			if !ok {
				panic("replacement: policy offered no victim at capacity")
			}
			p.Remove(v)
			delete(resident, v)
		}
		p.OnInsert(it, now)
		resident[it] = true
	}
	return hits, misses
}

// nextUseEntry pairs an item with the reference index of its next use.
type nextUseEntry struct {
	item oodb.Item
	next int
}

// nextUseHeap is a max-heap on next-use distance with lazy deletion.
type nextUseHeap []nextUseEntry

func (h nextUseHeap) Len() int            { return len(h) }
func (h nextUseHeap) Less(i, j int) bool  { return h[i].next > h[j].next }
func (h nextUseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nextUseHeap) Push(x interface{}) { *h = append(*h, x.(nextUseEntry)) }
func (h *nextUseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
