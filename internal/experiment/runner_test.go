package experiment

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

// tinyCfg is the smallest config that still exercises the full stack; the
// runner tests execute dozens of them.
func tinyCfg() Config {
	return Config{
		Seed:        1,
		NumObjects:  200,
		NumClients:  2,
		Days:        0.05,
		Granularity: core.HybridCaching,
		QueryKind:   workload.Associative,
		Heat:        SkewedHeat,
		UpdateProb:  0.1,
	}
}

// stripConfig returns res with the echoed Config zeroed: Defaults sets
// PrefetchKappa to NaN, which is never equal to itself under DeepEqual.
// Every measurement field is preserved.
func stripConfig(res Result) Result {
	res.Config = Config{}
	return res
}

func stripConfigs(in []Result) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = stripConfig(r)
	}
	return out
}

func TestRunBatchMatchesSerial(t *testing.T) {
	var cfgs []Config
	for i := 0; i < 6; i++ {
		cfg := tinyCfg()
		cfg.Seed = uint64(i + 1)
		cfg.Granularity = core.Granularities()[i%4]
		cfgs = append(cfgs, cfg)
	}
	serial := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		serial[i] = Run(cfg)
	}
	for _, workers := range []int{1, 2, 8} {
		got := Runner{Workers: workers}.RunBatch(cfgs)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Config.Label != serial[i].Config.Label ||
				got[i].Config.Seed != serial[i].Config.Seed {
				t.Fatalf("workers=%d: result %d out of submission order", workers, i)
			}
			if !reflect.DeepEqual(stripConfig(got[i]), stripConfig(serial[i])) {
				t.Fatalf("workers=%d: result %d differs from serial:\n%+v\n%+v",
					workers, i, got[i], serial[i])
			}
		}
	}
}

func TestRunBatchEmptyAndOversizedPool(t *testing.T) {
	if got := (Runner{Workers: 8}).RunBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	// More workers than configs must not deadlock or drop results.
	got := Runner{Workers: 16}.RunBatch([]Config{tinyCfg()})
	if len(got) != 1 || got[0].QueriesIssued == 0 {
		t.Fatalf("oversized pool: %+v", got)
	}
}

func TestRunBatchPanicPropagates(t *testing.T) {
	cfgs := []Config{tinyCfg(), tinyCfg(), tinyCfg()}
	cfgs[1].Policy = "no-such-policy"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bad policy spec did not panic through RunBatch")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "run 1") || !strings.Contains(msg, "no-such-policy") {
			t.Fatalf("panic message lacks failing config: %v", msg)
		}
	}()
	Runner{Workers: 4}.RunBatch(cfgs)
}

// TestParallelSerialEquivalenceExp1 is the sweep-level guarantee: Exp1 at
// bench scale produces identical Result slices and identical rendered
// tables with 1 worker and with 8.
func TestParallelSerialEquivalenceExp1(t *testing.T) {
	base := tinyCfg()
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	serial := Exp1(base)

	SetDefaultWorkers(8)
	parallel := Exp1(base)

	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result count: serial %d, parallel %d",
			len(serial.Results), len(parallel.Results))
	}
	if !reflect.DeepEqual(stripConfigs(serial.Results), stripConfigs(parallel.Results)) {
		t.Fatal("Exp1 results differ between workers=1 and workers=8")
	}
	if serial.String() != parallel.String() {
		t.Fatalf("rendered tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestParallelSerialEquivalenceReplicate: same guarantee for Replicate.
func TestParallelSerialEquivalenceReplicate(t *testing.T) {
	cfg := tinyCfg()
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	serial := Replicate(cfg, 6)

	SetDefaultWorkers(8)
	parallel := Replicate(cfg, 6)

	if !reflect.DeepEqual(stripConfigs(serial.Results), stripConfigs(parallel.Results)) {
		t.Fatal("Replicate results differ between workers=1 and workers=8")
	}
	if serial.String() != parallel.String() {
		t.Fatalf("replicate summaries differ:\n%s\n%s", serial, parallel)
	}
}

// TestNoGoroutineLeakPerConfig runs one simulation from every config
// family of the evaluation and checks the goroutine count returns to
// baseline after Run (which ends with Kernel.Drain) — no process goroutine
// may outlive its run.
func TestNoGoroutineLeakPerConfig(t *testing.T) {
	mutations := map[string]func(*Config){
		"default":      func(c *Config) {},
		"nc":           func(c *Config) { c.Granularity = core.NoCache },
		"ac":           func(c *Config) { c.Granularity = core.AttributeCaching },
		"oc":           func(c *Config) { c.Granularity = core.ObjectCaching },
		"nq":           func(c *Config) { c.QueryKind = workload.Navigational },
		"csh":          func(c *Config) { c.Heat = ChangingSkewedHeat },
		"cyclic":       func(c *Config) { c.Heat = CyclicHeat },
		"bursty":       func(c *Config) { c.Arrival = BurstyArrival },
		"fixed-lease":  func(c *Config) { c.Coherence = coherence.FixedLeaseStrategy; c.FixedLease = 60 },
		"invalidation": func(c *Config) { c.Coherence = coherence.InvalidationReportStrategy },
		"disconnect":   func(c *Config) { c.DisconnectedClients = 1; c.DisconnectHours = 1 },
		"shed":         func(c *Config) { c.ShedThreshold = 2 },
		"broadcast": func(c *Config) {
			c.SharedHotObjects = 20
			c.BroadcastAttrs = 2
		},
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cfg := tinyCfg()
			mut(&cfg)
			res := Run(cfg)
			if res.QueriesIssued == 0 {
				t.Fatal("no queries issued")
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: baseline %d, now %d",
						baseline, runtime.NumGoroutine())
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}
