// Package core implements the paper's primary contribution: the mobile
// caching mechanism (§3) — the client-side cache table over database items,
// the three caching granularities (attribute, object, hybrid), lease-based
// validity from the coherence estimator, and pluggable replacement.
//
// In the paper the cache table is realized as a mini OODB at the client: a
// Remote class hierarchy of local surrogates (one per cached server object,
// holding R.oid and R.host) and a Cache hierarchy holding cached attribute
// values, with attribute access encapsulated in methods. The machinery is
// an implementation vehicle for the OODB setting; its observable behaviour
// is exactly "which (object, attribute) items are cached, with what
// version, valid until when" — which Cache reproduces with a keyed table
// (see DESIGN.md, substitutions).
package core

import "fmt"

// Granularity selects the caching unit (§3.1).
type Granularity int

const (
	// NoCache disables storage caching (the paper's base case NC): only
	// the small LRU memory buffer at the client retains data.
	NoCache Granularity = iota
	// AttributeCaching caches individual attributes of individual objects
	// (AC): the server returns only the attributes the query requested.
	AttributeCaching
	// ObjectCaching caches whole objects (OC): the server pushes all
	// attributes of every qualified object.
	ObjectCaching
	// HybridCaching caches attributes, but the server additionally
	// prefetches attributes of qualified objects whose access probability
	// clears the prefetching threshold (HC).
	HybridCaching
)

// String renders the paper's abbreviation (nc/ac/oc/hc).
func (g Granularity) String() string {
	switch g {
	case NoCache:
		return "nc"
	case AttributeCaching:
		return "ac"
	case ObjectCaching:
		return "oc"
	case HybridCaching:
		return "hc"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// Valid reports whether g is one of the defined granularities.
func (g Granularity) Valid() bool {
	return g >= NoCache && g <= HybridCaching
}

// UsesAttributeItems reports whether the granularity caches attribute-level
// items (AC and HC) rather than whole objects.
func (g Granularity) UsesAttributeItems() bool {
	return g == AttributeCaching || g == HybridCaching
}

// ParseGranularity parses "nc", "ac", "oc", or "hc" (case-sensitive).
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "nc":
		return NoCache, nil
	case "ac":
		return AttributeCaching, nil
	case "oc":
		return ObjectCaching, nil
	case "hc":
		return HybridCaching, nil
	}
	return 0, fmt.Errorf("core: unknown granularity %q (want nc|ac|oc|hc)", s)
}

// Granularities lists all four in presentation order.
func Granularities() []Granularity {
	return []Granularity{NoCache, AttributeCaching, ObjectCaching, HybridCaching}
}
