package network

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/oodb"
	"repro/internal/sim"
)

func TestTransferTime(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "down", WirelessBandwidthBps)
	// 2400 bytes at 19.2kbps = 1 second.
	if tt := c.TransferTime(2400); math.Abs(tt-1) > 1e-12 {
		t.Fatalf("TransferTime(2400) = %v, want 1", tt)
	}
	if tt := c.TransferTime(0); tt != 0 {
		t.Fatalf("TransferTime(0) = %v", tt)
	}
}

func TestObjectTransferIsSlow(t *testing.T) {
	// The core premise of the paper: shipping a 1KB object over wireless
	// takes ~0.43s while reading it from local disk takes ~0.2ms.
	k := sim.NewKernel()
	wireless := NewChannel(k, "w", WirelessBandwidthBps)
	disk := NewChannel(k, "d", DiskBandwidthBps)
	ratio := wireless.TransferTime(oodb.ObjectSize) / disk.TransferTime(oodb.ObjectSize)
	if ratio < 1000 {
		t.Fatalf("wireless/disk ratio = %v, want > 1000", ratio)
	}
}

func TestChannelQueueing(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "down", 8) // 1 byte per second
	var done []float64
	for i := 0; i < 3; i++ {
		k.Spawn("sender", func(p *sim.Proc) {
			c.Send(p, 10)
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	want := []float64{10, 20, 30}
	for i, w := range want {
		if math.Abs(done[i]-w) > 1e-9 {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if c.Messages() != 3 || c.BytesSent() != 30 {
		t.Fatalf("Messages=%d BytesSent=%d", c.Messages(), c.BytesSent())
	}
	if u := c.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1", u)
	}
	if w := c.MeanWait(); math.Abs(w-10) > 1e-9 { // waits 0,10,20 -> mean 10
		t.Fatalf("MeanWait = %v, want 10", w)
	}
}

func TestNewChannelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChannel with 0 bandwidth did not panic")
		}
	}()
	NewChannel(sim.NewKernel(), "bad", 0)
}

func TestNegativeSizePanics(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "x", 100)
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	c.TransferTime(-1)
}

func TestRequestSize(t *testing.T) {
	if s := RequestSize(0); s != HeaderSize+QueryDescSize {
		t.Fatalf("RequestSize(0) = %d", s)
	}
	if s := RequestSize(4); s != HeaderSize+QueryDescSize+4*5 {
		t.Fatalf("RequestSize(4) = %d", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative existent list did not panic")
		}
	}()
	RequestSize(-1)
}

func TestReplySize(t *testing.T) {
	if s := ReplySize(nil); s != HeaderSize {
		t.Fatalf("empty reply = %d, want header only", s)
	}
	objEntry := ReplyEntrySize(oodb.ObjectItem(1))
	attrEntry := ReplyEntrySize(oodb.AttrItem(1, 0))
	if objEntry-attrEntry != oodb.ObjectSize-oodb.AttrSize {
		t.Fatalf("entry overheads differ: obj=%d attr=%d", objEntry, attrEntry)
	}
	items := []oodb.Item{oodb.ObjectItem(1), oodb.AttrItem(2, 3)}
	if s := ReplySize(items); s != HeaderSize+objEntry+attrEntry {
		t.Fatalf("ReplySize = %d", s)
	}
}

func TestObjectReplyLargerThanAttrReply(t *testing.T) {
	// OC ships whole objects; AC ships a few attributes. The size gap is
	// what produces OC's "blind prefetching" response-time penalty.
	oc := ReplySize([]oodb.Item{oodb.ObjectItem(1)})
	ac := ReplySize([]oodb.Item{
		oodb.AttrItem(1, 0), oodb.AttrItem(1, 1), oodb.AttrItem(1, 2),
	})
	if oc <= ac {
		t.Fatalf("OC reply %d <= AC reply %d", oc, ac)
	}
}

func TestScheduleConnected(t *testing.T) {
	var s Schedule
	if !s.Connected(100) {
		t.Fatal("empty schedule should always be connected")
	}
	s.AddOutage(Outage{Start: 10, End: 20})
	s.AddOutage(Outage{Start: 30, End: 40})
	cases := []struct {
		t    float64
		want bool
	}{
		{0, true}, {9.99, true}, {10, false}, {15, false}, {19.99, false},
		{20, true}, {25, true}, {30, false}, {39.99, false}, {40, true},
	}
	for _, c := range cases {
		if got := s.Connected(c.t); got != c.want {
			t.Fatalf("Connected(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNextReconnect(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 10, End: 20})
	if r := s.NextReconnect(5); r != 5 {
		t.Fatalf("NextReconnect while connected = %v", r)
	}
	if r := s.NextReconnect(15); r != 20 {
		t.Fatalf("NextReconnect mid-outage = %v", r)
	}
}

func TestDisconnectedTime(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 10, End: 20})
	s.AddOutage(Outage{Start: 50, End: 70})
	if d := s.DisconnectedTime(100); d != 30 {
		t.Fatalf("DisconnectedTime(100) = %v", d)
	}
	if d := s.DisconnectedTime(60); d != 20 {
		t.Fatalf("DisconnectedTime(60) = %v (truncation)", d)
	}
	if d := s.DisconnectedTime(5); d != 0 {
		t.Fatalf("DisconnectedTime(5) = %v", d)
	}
}

func TestAddOutageValidation(t *testing.T) {
	bad := []func(s *Schedule){
		func(s *Schedule) { s.AddOutage(Outage{Start: 10, End: 10}) },
		func(s *Schedule) { s.AddOutage(Outage{Start: 10, End: 5}) },
		func(s *Schedule) {
			s.AddOutage(Outage{Start: 10, End: 20})
			s.AddOutage(Outage{Start: 15, End: 30}) // overlap
		},
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			var s Schedule
			fn(&s)
		}()
	}
}

// Adjacent windows (End == next Start) are legal: the schedule is a union
// of half-open intervals, so the junction instant belongs to the second
// outage and the client never flickers to connected in between.
func TestAdjacentOutagesStayDisconnected(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 10, End: 20})
	s.AddOutage(Outage{Start: 20, End: 30})
	for _, at := range []float64{10, 15, 20, 25, 29.999} {
		if s.Connected(at) {
			t.Fatalf("Connected(%v) across adjacent outages", at)
		}
	}
	if !s.Connected(30) {
		t.Fatal("Connected(30) should hold at the union's end")
	}
	if r := s.NextReconnect(15); r != 20 {
		// NextReconnect reports the covering outage's end, not the
		// union's: the caller re-checks and waits again — equivalent
		// behaviour, simpler invariant.
		t.Fatalf("NextReconnect(15) = %v, want 20", r)
	}
	if r := s.NextReconnect(20); r != 30 {
		t.Fatalf("NextReconnect(20) = %v, want 30", r)
	}
}

// An outage starting at t = 0 must disconnect the client from the first
// instant of the simulation.
func TestOutageAtTimeZero(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 0, End: 5})
	if s.Connected(0) {
		t.Fatal("Connected(0) inside an outage starting at 0")
	}
	if r := s.NextReconnect(0); r != 5 {
		t.Fatalf("NextReconnect(0) = %v, want 5", r)
	}
	if d := s.DisconnectedTime(5); d != 5 {
		t.Fatalf("DisconnectedTime(5) = %v, want 5", d)
	}
}

// DisconnectedTime horizon edge cases: a horizon exactly at an outage's
// boundaries, and one that bisects it.
func TestDisconnectedTimeBoundaries(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 10, End: 20})
	cases := []struct{ horizon, want float64 }{
		{10, 0},  // ends exactly where the outage starts
		{20, 10}, // ends exactly where the outage ends
		{15, 5},  // bisects the outage
	}
	for _, c := range cases {
		if d := s.DisconnectedTime(c.horizon); d != c.want {
			t.Fatalf("DisconnectedTime(%v) = %v, want %v", c.horizon, d, c.want)
		}
	}
}

func TestOutagesCopy(t *testing.T) {
	var s Schedule
	s.AddOutage(Outage{Start: 1, End: 2})
	out := s.Outages()
	out[0].Start = 99
	if !s.Connected(0.5) {
		t.Fatal("mutating the copy affected the schedule")
	}
}

// Property: Connected and DisconnectedTime are consistent — integrating
// Connected over a grid approximates DisconnectedTime.
func TestQuickScheduleConsistency(t *testing.T) {
	f := func(gaps []uint8) bool {
		var s Schedule
		now := 0.0
		for _, g := range gaps {
			start := now + float64(g%16)
			end := start + float64(g%7) + 1
			s.AddOutage(Outage{Start: start, End: end})
			now = end
		}
		horizon := now + 10
		const step = 0.5
		measured := 0.0
		for t := 0.0; t < horizon; t += step {
			if !s.Connected(t) {
				measured += step
			}
		}
		want := s.DisconnectedTime(horizon)
		return math.Abs(measured-want) <= step*float64(len(gaps)*2+2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSendDeferredNoWaitKeepsSize(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "down", 8) // 1 byte/sec
	var gotWait float64 = -1
	k.Spawn("p", func(p *sim.Proc) {
		c.SendDeferred(p, func(waited float64) int {
			gotWait = waited
			return 10
		})
	})
	k.RunAll()
	if gotWait != 0 {
		t.Fatalf("waited = %v, want 0 on an idle channel", gotWait)
	}
	if c.BytesSent() != 10 || c.Messages() != 1 {
		t.Fatalf("accounting: %d bytes, %d msgs", c.BytesSent(), c.Messages())
	}
	if k.Now() != 10 {
		t.Fatalf("transfer took %v, want 10s", k.Now())
	}
}

func TestSendDeferredReportsQueueWait(t *testing.T) {
	k := sim.NewKernel()
	c := NewChannel(k, "down", 8)
	var waits []float64
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			c.SendDeferred(p, func(waited float64) int {
				waits = append(waits, waited)
				return 10 // 10s transfer each
			})
		})
	}
	k.RunAll()
	want := []float64{0, 10, 20}
	for i, w := range want {
		if math.Abs(waits[i]-w) > 1e-9 {
			t.Fatalf("waits = %v, want %v", waits, want)
		}
	}
}

func TestSendDeferredShrinksTransfer(t *testing.T) {
	// The size function can shrink the message based on the wait; the
	// shorter transfer must be what occupies the channel.
	k := sim.NewKernel()
	c := NewChannel(k, "down", 8)
	var done []float64
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			c.SendDeferred(p, func(waited float64) int {
				if waited > 5 {
					return 2 // shed: 2s transfer
				}
				return 10
			})
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	if math.Abs(done[0]-10) > 1e-9 || math.Abs(done[1]-12) > 1e-9 {
		t.Fatalf("completion times %v, want [10 12]", done)
	}
	if c.BytesSent() != 12 {
		t.Fatalf("BytesSent = %d, want 12", c.BytesSent())
	}
}

func TestEnergyModel(t *testing.T) {
	// Transmitting 2400 bytes takes 1s at 19.2kbps: 1.9 J.
	if e := TxEnergy(2400); math.Abs(e-1.9) > 1e-9 {
		t.Fatalf("TxEnergy(2400) = %v, want 1.9", e)
	}
	if e := RxEnergy(2400); math.Abs(e-1.5) > 1e-9 {
		t.Fatalf("RxEnergy(2400) = %v, want 1.5", e)
	}
	if TxEnergy(0) != 0 || RxEnergy(0) != 0 {
		t.Fatal("zero bytes should cost zero energy")
	}
	// A whole object costs more to receive than a few attributes: the
	// energy argument for fine granularity (§2).
	obj := RxEnergy(ReplySize([]oodb.Item{oodb.ObjectItem(1)}))
	attrs := RxEnergy(ReplySize([]oodb.Item{
		oodb.AttrItem(1, 0), oodb.AttrItem(1, 1), oodb.AttrItem(1, 2),
	}))
	if obj <= attrs {
		t.Fatalf("object energy %v <= 3-attribute energy %v", obj, attrs)
	}
}
