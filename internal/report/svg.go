package report

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Chart geometry: fixed so report bytes never depend on environment.
const (
	chartWidth   = 720
	chartHeight  = 220
	marginLeft   = 56
	marginRight  = 12
	marginTop    = 24
	marginBottom = 32
)

// palette is the line-color cycle. Colors are fixed hex strings; series
// beyond the palette wrap around.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// chartLine is one named series to draw.
type chartLine struct {
	name string
	s    *obs.Series
}

// fnum renders a float with the report-wide %.6g format — the single
// formatting used for every numeric label so output is byte-deterministic.
func fnum(v float64) string {
	return fmt.Sprintf("%.6g", v)
}

// svgChart renders one fixed-size line chart with y gridlines, hour-scaled
// x labels, and a legend. Series may have different lengths (a chart can
// mix raw and windowed series); empty lines are skipped.
func svgChart(title, yLabel string, lines []chartLine) string {
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)

	// Data extent across all lines.
	var tMax float64
	yMin, yMax := 0.0, 0.0
	any := false
	for _, ln := range lines {
		if ln.s == nil {
			continue
		}
		for i := range ln.s.T {
			if ln.s.T[i] > tMax {
				tMax = ln.s.T[i]
			}
			if !any || ln.s.V[i] < yMin {
				yMin = ln.s.V[i]
			}
			if !any || ln.s.V[i] > yMax {
				yMax = ln.s.V[i]
			}
			any = true
		}
	}
	if !any {
		return ""
	}
	if yMin > 0 {
		yMin = 0 // anchor ratio/rate charts at zero
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if tMax == 0 {
		tMax = 1
	}
	xOf := func(t float64) float64 { return marginLeft + t/tMax*plotW }
	yOf := func(v float64) float64 {
		return marginTop + (1-(v-yMin)/(yMax-yMin))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		chartWidth, chartHeight, chartWidth, chartHeight)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`, chartWidth, chartHeight)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="%d" y="14" font-family="monospace" font-size="12" fill="#333">%s</text>`,
		marginLeft, xmlEscape(title))
	b.WriteString("\n")

	// Horizontal gridlines with y labels at 5 levels.
	for i := 0; i <= 4; i++ {
		v := yMin + (yMax-yMin)*float64(i)/4
		y := yOf(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd" stroke-width="1"/>`,
			marginLeft, y, chartWidth-marginRight, y)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="monospace" font-size="9" fill="#666" text-anchor="end">%s</text>`,
			marginLeft-4, y+3, fnum(v))
		b.WriteString("\n")
	}
	// X labels: start, midpoint, end, in virtual hours.
	for i := 0; i <= 2; i++ {
		t := tMax * float64(i) / 2
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="monospace" font-size="9" fill="#666" text-anchor="middle">%sh</text>`,
			xOf(t), chartHeight-marginBottom+14, fnum(t/3600))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="9" fill="#666">%s</text>`,
		marginLeft, chartHeight-6, xmlEscape(yLabel))
	b.WriteString("\n")

	// Polylines and legend.
	legendX := marginLeft + 8
	drawn := 0
	for _, ln := range lines {
		if ln.s == nil || len(ln.s.T) == 0 {
			continue
		}
		color := palette[drawn%len(palette)]
		var pts strings.Builder
		for i := range ln.s.T {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", xOf(ln.s.T[i]), yOf(ln.s.V[i]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
			color, pts.String())
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="9" fill="%s">%s</text>`,
			legendX, marginTop+10+12*drawn, color, xmlEscape(ln.name))
		b.WriteString("\n")
		drawn++
	}
	b.WriteString("</svg>")
	return b.String()
}

// xmlEscape escapes the characters XML text nodes cannot hold verbatim.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
