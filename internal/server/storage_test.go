package server

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/sim"
)

// fakeTier records the staging traffic the server sends to its persistent
// tier and can inject failures.
type fakeTier struct {
	data map[string][]byte
	fail error
	gets int
	puts int
}

func (f *fakeTier) Get(key string) ([]byte, bool, error) {
	if f.fail != nil {
		return nil, false, f.fail
	}
	f.gets++
	v, ok := f.data[key]
	return v, ok, nil
}

func (f *fakeTier) Put(key string, value []byte) error {
	if f.fail != nil {
		return f.fail
	}
	f.puts++
	cp := make([]byte, len(value))
	copy(cp, value)
	f.data[key] = cp
	return nil
}

// TestStorageTierStaging: a buffer miss materializes the object in the
// tier on first touch (put) and finds it there once re-staged after
// eviction (get), with the counters surfacing in Stats.
func TestStorageTierStaging(t *testing.T) {
	tier := &fakeTier{data: map[string][]byte{}}
	k, s := newTestServer(t, Config{BufferObjects: 1, Storage: tier})
	run(k, func(p *sim.Proc) {
		// Alternate two objects through a one-object buffer: every access
		// is a buffer miss, so each object is staged twice.
		for i := 0; i < 2; i++ {
			for _, oid := range []int{1, 2} {
				s.Process(p, Request{
					ClientID:    1,
					Granularity: core.ObjectCaching,
					Accesses:    reads(oid),
					Need:        reads(oid),
				})
			}
		}
	})
	st := s.Stats()
	if st.StoragePuts != 2 {
		t.Fatalf("StoragePuts = %d, want 2 (one materialization per object)", st.StoragePuts)
	}
	if st.StorageGets != 2 {
		t.Fatalf("StorageGets = %d, want 2 (one tier hit per re-staging)", st.StorageGets)
	}
	if st.StorageErrors != 0 {
		t.Fatalf("StorageErrors = %d, want 0", st.StorageErrors)
	}
	if len(tier.data) != 2 {
		t.Fatalf("tier holds %d keys, want 2", len(tier.data))
	}
	for _, key := range []string{"o:1", "o:2"} {
		v, ok := tier.data[key]
		if !ok {
			t.Fatalf("tier missing key %q (have %v)", key, tier.data)
		}
		if len(v) != oodb.ObjectSize {
			t.Fatalf("tier payload for %q is %dB, want %d", key, len(v), oodb.ObjectSize)
		}
	}
}

// TestStorageTierPayloadDeterministic: the staged payload is a pure
// function of the OID, so any two runs (or servers) materialize identical
// tier contents.
func TestStorageTierPayloadDeterministic(t *testing.T) {
	payload := func() []byte {
		tier := &fakeTier{data: map[string][]byte{}}
		k, s := newTestServer(t, Config{BufferObjects: 1, Storage: tier})
		run(k, func(p *sim.Proc) {
			s.Process(p, Request{
				ClientID: 1, Granularity: core.ObjectCaching,
				Accesses: reads(7), Need: reads(7),
			})
		})
		return tier.data["o:7"]
	}
	a, b := payload(), payload()
	if len(a) == 0 || string(a) != string(b) {
		t.Fatalf("tier payload not deterministic: %d vs %d bytes", len(a), len(b))
	}
}

// TestStorageTierErrorsCounted: tier failures degrade to the modeled disk
// only — the request still completes — and are counted, not propagated.
func TestStorageTierErrorsCounted(t *testing.T) {
	tier := &fakeTier{data: map[string][]byte{}, fail: errors.New("disk full")}
	k, s := newTestServer(t, Config{BufferObjects: 1, Storage: tier})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			ClientID: 1, Granularity: core.ObjectCaching,
			Accesses: reads(3), Need: reads(3),
		})
	})
	if len(reply.Items) != 1 {
		t.Fatalf("request failed under tier error: %+v", reply)
	}
	st := s.Stats()
	if st.StorageErrors != 1 || st.StoragePuts != 0 || st.StorageGets != 0 {
		t.Fatalf("error accounting off: %+v", st)
	}
}

// TestNoStorageTierByDefault: without a configured tier the server stats
// stay silent, preserving the paper-exact serving path.
func TestNoStorageTierByDefault(t *testing.T) {
	k, s := newTestServer(t, Config{})
	run(k, func(p *sim.Proc) {
		s.Process(p, Request{
			ClientID: 1, Granularity: core.ObjectCaching,
			Accesses: reads(1), Need: reads(1),
		})
	})
	st := s.Stats()
	if st.StorageGets != 0 || st.StoragePuts != 0 || st.StorageErrors != 0 {
		t.Fatalf("tier counters moved without a tier: %+v", st)
	}
}
