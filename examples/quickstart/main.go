// Quickstart: run one simulated day of the mobile caching system with the
// paper's defaults (hybrid caching, EWMA-0.5 replacement, lease-based
// coherence) and print the three §5 metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	cfg := experiment.Config{
		Label:       "quickstart",
		Seed:        42,
		Days:        1,
		Granularity: core.HybridCaching,
		Policy:      "ewma-0.5",
		QueryKind:   workload.Associative,
		Heat:        experiment.SkewedHeat,
		UpdateProb:  0.1,
	}

	fmt.Println("simulating 1 day: 10 mobile clients, 2000-object OODB,")
	fmt.Println("two 19.2 Kbps wireless channels, hybrid caching, EWMA-0.5...")
	res := experiment.Run(cfg)

	fmt.Printf("\n  cache hit ratio  %6.1f%%\n", 100*res.HitRatio)
	fmt.Printf("  response time    %6.3f s\n", res.MeanResponse)
	fmt.Printf("  error rate       %6.2f%%\n", 100*res.ErrorRate)
	fmt.Printf("  queries          %d\n", res.QueriesIssued)
	fmt.Printf("  downlink load    %5.1f%%\n", 100*res.DownlinkUtilization)

	// The headline of the paper: storage caching versus no caching.
	nc := cfg
	nc.Label = "quickstart-nc"
	nc.Granularity = core.NoCache
	base := experiment.Run(nc)
	fmt.Printf("\nwithout storage caching (NC): hit %.1f%%, response %.3fs —\n",
		100*base.HitRatio, base.MeanResponse)
	fmt.Printf("mobile caching cuts response time by %.1fx.\n",
		base.MeanResponse/res.MeanResponse)
}
