package experiment

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/client"
	"repro/internal/coherence"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/server"
)

// registerObservables wires one run's entities into cfg.Obs. Series are
// registered in a fixed order — channels, fault models, server, pooled
// client aggregates, then per-client detail — so manifests and reports are
// byte-stable across runs of the same config.
//
// The aggregate gauges recompute the pooled metrics each sampler tick by
// merging every client's accumulator, exactly as the end-of-run Result
// does; sampled over virtual time they become the convergence curves
// (hit-ratio warm-up, error-rate settling) a report plots.
func registerObservables(cfg Config, srv *server.Server, up, down *network.Channel,
	upFaults, downFaults *network.FaultModel, program *broadcast.Program,
	clients []*client.Client, ms []*metrics.Client) {

	reg := cfg.Obs
	up.Register(reg, "uplink")
	down.Register(reg, "downlink")
	upFaults.Register(reg, "uplink.faults")
	downFaults.Register(reg, "downlink.faults")
	if program != nil {
		program.Register(reg, "broadcast")
		reg.Gauge("broadcast.air_reads", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.BroadcastReads())
			}
			return total
		})
	}
	srv.Register(reg)

	pooled := func() metrics.Aggregate {
		var a metrics.Aggregate
		for _, m := range ms {
			a.Merge(m)
		}
		return a
	}
	reg.Gauge("clients.hit_ratio", func() float64 { a := pooled(); return a.HitRatio() })
	reg.Gauge("clients.error_rate", func() float64 { a := pooled(); return a.ErrorRate() })
	reg.Gauge("clients.mean_response_s", func() float64 { a := pooled(); return a.MeanResponse() })
	reg.Gauge("clients.queries", func() float64 { a := pooled(); return float64(a.Issued) })
	reg.Gauge("clients.retries", func() float64 { a := pooled(); return float64(a.Retries) })
	reg.Gauge("clients.timeouts", func() float64 { a := pooled(); return float64(a.Timeouts) })
	reg.Gauge("clients.degraded_reads", func() float64 { a := pooled(); return float64(a.Degraded) })

	// Cache health pooled across the cell (clients share one policy per
	// run, so this is the "occupancy and eviction rate per policy" view).
	reg.Gauge("clients.cache_bytes", func() float64 {
		var total float64
		for _, cl := range clients {
			if st := cl.Store(); st != nil {
				total += float64(st.UsedBytes())
			}
		}
		return total
	})
	reg.Gauge("clients.cache_occupancy", func() float64 {
		var used, capa float64
		for _, cl := range clients {
			if st := cl.Store(); st != nil {
				used += float64(st.UsedBytes())
				capa += float64(st.CapacityBytes())
			}
		}
		if capa == 0 {
			return 0
		}
		return used / capa
	})
	reg.Gauge("clients.evictions", func() float64 {
		var total float64
		for _, cl := range clients {
			if st := cl.Store(); st != nil {
				total += float64(st.Evictions())
			}
		}
		return total
	})
	reg.Gauge("clients.energy_j", func() float64 {
		var total float64
		for _, cl := range clients {
			total += cl.RadioEnergy()
		}
		return total
	})
	if cfg.Coherence == coherence.IRBroadcastStrategy {
		reg.Gauge("clients.ir_reports", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.IRBReports())
			}
			return total
		})
		reg.Gauge("clients.ir_missed", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.IRBMissed())
			}
			return total
		})
		reg.Gauge("clients.forced_reval", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.ForcedRevalidations())
			}
			return total
		})
	}
	if cfg.CoopPeers > 0 {
		reg.Gauge("clients.peer_hits", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.PeerHits())
			}
			return total
		})
		reg.Gauge("clients.peer_misses", func() float64 {
			var total float64
			for _, cl := range clients {
				total += float64(cl.PeerMisses())
			}
			return total
		})
	}

	// Per-client detail: convergence and cache series for each mobile host
	// (client.N.* and client.N.metrics.*).
	for i, cl := range clients {
		cl.Register(reg, fmt.Sprintf("client.%d", i))
		ms[i].Register(reg, fmt.Sprintf("client.%d.metrics", i))
	}
}
