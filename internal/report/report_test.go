package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenInput runs one small instrumented simulation (fixed seed, faulty
// channels so every chart family renders) and assembles the generator
// input exactly as cmd/mcsim does.
func goldenInput() Input {
	cfg := experiment.Config{
		Label:       "golden",
		Seed:        7,
		NumObjects:  200,
		NumClients:  2,
		Days:        0.02,
		Granularity: core.HybridCaching,
		QueryKind:   workload.Associative,
		UpdateProb:  0.1,
		LossRate:    0.05,
	}
	col := &trace.Collector{}
	cfg.Tracer = col
	cfg.Obs = obs.New(60)
	res := experiment.Run(cfg)

	tbl := experiment.NewTable("Exp0: golden fixture", "scheme", "hit", "resp")
	tbl.Addf("HC", res.HitRatio, res.MeanResponse)
	rep := &experiment.Report{Name: "golden", Results: []experiment.Result{res}, Tables: []*experiment.Table{tbl}}

	man := NewManifest("golden", "mcsim -exp 1 -report out/", res.Config, rep, cfg.Obs)
	return Input{Manifest: man, Rep: rep, Result: res, Reg: cfg.Obs, Trace: col}
}

// TestMarkdownGolden pins the report generator's exact output bytes for a
// fixed seed. Regenerate with `go test ./internal/report -update` after an
// intentional format change.
func TestMarkdownGolden(t *testing.T) {
	got := Markdown(goldenInput())
	golden := filepath.Join("testdata", "report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report bytes diverge from golden (len %d vs %d); run with -update if the change is intentional",
			len(got), len(want))
	}
}

// TestMarkdownReproducible is the determinism contract end to end: two
// independent instrumented runs of the same seed yield identical bytes.
func TestMarkdownReproducible(t *testing.T) {
	a := Markdown(goldenInput())
	b := Markdown(goldenInput())
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different report bytes")
	}
	for _, want := range []string{
		"## Timelines", "<svg", "Channel utilization", "Hit-ratio convergence",
		"Eviction rate", "Loss and retries", "## Refresh-time distribution",
	} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if n := strings.Count(string(a), "<svg"); n < 3 {
		t.Fatalf("report has %d SVG timelines, want >= 3", n)
	}
}

// TestWriteFiles checks the on-disk artifact set: manifest.json (valid
// JSON, environment stamped), report.md (equal to Markdown), trace.csv
// (header plus one row per record).
func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	in := goldenInput()
	if err := Write(dir, in); err != nil {
		t.Fatal(err)
	}

	mj, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(mj, &man); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if man.GoVersion == "" || man.GitRevision == "" || man.Seed != 7 {
		t.Fatalf("manifest incomplete: %+v", man)
	}
	if len(man.Tables) != 1 || len(man.Tables[0].SHA256) != 64 {
		t.Fatalf("table hashes malformed: %+v", man.Tables)
	}
	if len(man.Series) == 0 || man.Samples == 0 {
		t.Fatalf("series listing missing: %+v", man)
	}

	md, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md, Markdown(in)) {
		t.Fatal("report.md differs from Markdown output")
	}

	tc, err := os.ReadFile(filepath.Join(dir, "trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(tc), "\n")
	if lines != in.Trace.Len()+1 {
		t.Fatalf("trace.csv has %d lines, want %d records + header", lines, in.Trace.Len())
	}
	if man.TraceRows != in.Trace.Len() {
		t.Fatalf("manifest trace_rows %d, want %d", man.TraceRows, in.Trace.Len())
	}
}
