package oodb

import "fmt"

// WholeObject is the AttrID sentinel meaning "the entire object" — the
// caching unit under object granularity (OC). Attribute and hybrid caching
// use concrete attribute ids instead.
const WholeObject AttrID = 0xFF

// Item names a cacheable database item: either a whole object or a single
// attribute of an object, matching the paper's two caching units.
type Item struct {
	OID  OID
	Attr AttrID
}

// ObjectItem returns the whole-object item for oid.
func ObjectItem(oid OID) Item { return Item{OID: oid, Attr: WholeObject} }

// AttrItem returns the single-attribute item for (oid, attr).
func AttrItem(oid OID, attr AttrID) Item { return Item{OID: oid, Attr: attr} }

// IsObject reports whether the item is a whole object.
func (it Item) IsObject() bool { return it.Attr == WholeObject }

// Size returns the item's payload size in bytes (ObjectSize for whole
// objects, AttrSize for attributes).
func (it Item) Size() int {
	if it.IsObject() {
		return ObjectSize
	}
	return AttrSize
}

// String renders the item for logs and test failures.
func (it Item) String() string {
	if it.IsObject() {
		return fmt.Sprintf("obj(%d)", it.OID)
	}
	return fmt.Sprintf("attr(%d.%d)", it.OID, it.Attr)
}
