// Fleet: scale the paper's 10-client cell out to a metropolitan fleet
// (Experiment #8 and docs/API.md). One thousand clients share a single
// 19.2 Kbps downlink pair in the paper's topology; the fleet engine
// shards them across cells, each owning a partition of the database, its
// own channel pair, and a contact server that relays cross-partition
// reads over a wired backbone.
//
// The example shows the two headline effects:
//
//   - sharding relieves the saturated downlink (response time collapses
//     as cells are added while the workload stays identical);
//
//   - the contact servers' relay cache absorbs repeated remote reads,
//     cutting backbone traffic without touching client behaviour.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	const clients = 100

	fmt.Printf("%d clients, HC granularity, EWMA-0.5, 0.25 simulated days\n\n", clients)
	fmt.Printf("%5s  %8s  %10s  %8s  %12s\n",
		"cells", "hit %", "resp (s)", "err %", "backbone MB")
	for _, cells := range []int{1, 2, 4, 8} {
		sc, err := experiment.New(
			experiment.WithLabel(fmt.Sprintf("fleet/cells=%d", cells)),
			experiment.WithSeed(11),
			experiment.WithHorizonDays(0.25),
			experiment.WithFleet(clients, cells),
		)
		if err != nil {
			log.Fatal(err)
		}
		res := sc.Run()
		fmt.Printf("%5d  %8.1f  %10.3f  %8.2f  %12.2f\n",
			cells, 100*res.HitRatio, res.MeanResponse,
			100*res.ErrorRate, float64(res.BackboneBytes)/1e6)
	}
	fmt.Println("\none cell is the paper's system: every query queues behind one")
	fmt.Println("19.2 Kbps downlink. Cells shard clients AND spectrum; the database")
	fmt.Println("partition moves the contention to the (fast) wired backbone.")

	fmt.Println("\n== relay cache on the widest fleet ==")
	fmt.Printf("%10s  %12s  %12s\n", "relay objs", "backbone MB", "relay hit %")
	for _, relay := range []int{0, 200} {
		sc, err := experiment.New(
			experiment.WithLabel(fmt.Sprintf("fleet/relay=%d", relay)),
			experiment.WithSeed(11),
			experiment.WithHorizonDays(0.25),
			experiment.WithFleet(clients, 8),
			experiment.WithRelayCache(relay),
		)
		if err != nil {
			log.Fatal(err)
		}
		res := sc.Run()
		hit := "-"
		if probes := res.RelayHits + res.RelayMisses; probes > 0 {
			hit = fmt.Sprintf("%.1f", 100*float64(res.RelayHits)/float64(probes))
		}
		fmt.Printf("%10d  %12.2f  %12s\n", relay, float64(res.BackboneBytes)/1e6, hit)
	}

	// Invalid combinations fail fast with named errors — no silent
	// zero-value patching:
	_, err := experiment.New(experiment.WithFleet(4, 8))
	fmt.Printf("\nWithFleet(4, 8): %v\n", err)
}
