package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// smallCfg is a scaled-down config for integration tests: same ratios as
// Table 1 (20% storage, 25% server buffer) over a smaller population and a
// shorter horizon, so the whole suite stays fast.
func smallCfg() Config {
	return Config{
		Seed:        1,
		NumObjects:  400,
		NumClients:  4,
		Days:        0.25,
		Granularity: core.HybridCaching,
		QueryKind:   workload.Associative,
		Heat:        SkewedHeat,
		UpdateProb:  0.1,
	}
}

func TestSmokeRun(t *testing.T) {
	res := Run(smallCfg())
	if res.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	if res.HitRatio <= 0 || res.HitRatio >= 1 {
		t.Fatalf("hit ratio %v out of (0,1)", res.HitRatio)
	}
	if res.MeanResponse <= 0 {
		t.Fatalf("mean response %v", res.MeanResponse)
	}
	t.Logf("result: hit=%.1f%% resp=%.3fs err=%.2f%% queries=%d upUtil=%.2f downUtil=%.2f",
		100*res.HitRatio, res.MeanResponse, 100*res.ErrorRate,
		res.QueriesIssued, res.UplinkUtilization, res.DownlinkUtilization)
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(smallCfg())
	b := Run(smallCfg())
	if a.HitRatio != b.HitRatio || a.MeanResponse != b.MeanResponse ||
		a.ErrorRate != b.ErrorRate || a.QueriesIssued != b.QueriesIssued {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
	cfg := smallCfg()
	cfg.Seed = 2
	c := Run(cfg)
	if c.HitRatio == a.HitRatio && c.QueriesIssued == a.QueriesIssued {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}
