package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramLinear(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(x)
	}
	want := []uint64{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Count() != 5 || h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatalf("counts: %d/%d/%d", h.Count(), h.Underflow(), h.Overflow())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(1, 2, 2)
	h.Add(0.5)
	h.Add(2) // hi is exclusive
	h.Add(1e9)
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bounds = %v..%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bucket did not panic")
		}
	}()
	h.BucketBounds(5)
}

func TestLogHistogram(t *testing.T) {
	// Decades 0.01..100 in 4 buckets: one per decade.
	h := NewLogHistogram(0.01, 100, 4)
	for _, x := range []float64{0.02, 0.5, 5, 50} {
		h.Add(x)
	}
	for i := 0; i < 4; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	lo, hi := h.BucketBounds(1)
	if lo < 0.099 || lo > 0.101 || hi < 0.99 || hi > 1.01 {
		t.Fatalf("log bounds = %v..%v, want ~0.1..1", lo, hi)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewLogHistogram(0.1, 100, 6)
	h.Add(0.01) // underflow
	for i := 0; i < 10; i++ {
		h.Add(1.5)
	}
	h.Add(50)
	h.Add(1000) // overflow
	var buf bytes.Buffer
	h.Render(&buf, 20)
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if !strings.Contains(out, "< 0.1") || !strings.Contains(out, ">= 100") {
		t.Fatalf("out-of-range rows missing:\n%s", out)
	}
	// The modal bucket gets the full-width bar.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("modal bar not full width:\n%s", out)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	NewHistogram(0, 1, 3).Render(&buf, 10)
	if buf.Len() != 0 {
		t.Fatalf("empty histogram rendered %q", buf.String())
	}
}

func TestHistogramValidation(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 0, 3) },
		func() { NewHistogram(0, 1, 0) },
		func() { NewLogHistogram(0, 1, 3) },
		func() { NewLogHistogram(2, 1, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: every in-range observation lands in the bucket whose bounds
// contain it, and bucket counts sum to Count minus under/overflow.
func TestQuickHistogramConsistency(t *testing.T) {
	f := func(raw []uint16, logScale bool) bool {
		var h *Histogram
		if logScale {
			h = NewLogHistogram(1, 1000, 7)
		} else {
			h = NewHistogram(1, 1000, 7)
		}
		for _, v := range raw {
			h.Add(float64(v))
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Bucket(i)
			lo, hi := h.BucketBounds(i)
			if hi <= lo {
				return false
			}
		}
		return sum+h.Underflow()+h.Overflow() == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
