package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

// openTest opens a store rooted in t's temp dir with small segments so
// rotation and compaction trigger inside tests.
func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "db")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 4 << 10
	}
	if opts.GroupWindow == 0 {
		opts.GroupWindow = 1 // effectively immediate
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("b", []byte("beta")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || string(v) != "alpha" {
		t.Fatalf("Get(a) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("nope"); ok {
		t.Fatal("Get(nope) reported presence")
	}
	// Overwrite wins.
	if err := s.Put("a", []byte("alpha2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, _, _ := s.Get("a"); string(v) != "alpha2" {
		t.Fatalf("after overwrite Get(a) = %q", v)
	}
	// Delete hides the key.
	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("Get(a) after Delete reported presence")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	s, err := Open(Options{Path: dir, SegmentBytes: 2 << 10, GroupWindow: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make(map[string]string)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i%50) // overwrites exercise index repointing
		v := fmt.Sprintf("val-%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	if err := s.Delete("key-007"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "key-007")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("recovered %d keys, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := s2.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
	if st := s2.Stats(); st.RecoveredRecords == 0 {
		t.Fatal("Stats.RecoveredRecords = 0 after replay")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	s, err := Open(Options{Path: dir, GroupWindow: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: append half of a valid record — a crash mid-append.
	rec := encodeRecord("k-torn", []byte("never-committed"), false)
	seg := filepath.Join(dir, "seg-00000000.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(rec[:len(rec)-5]); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	s2, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("recovered %d keys, want 10", s2.Len())
	}
	if _, ok, _ := s2.Get("k-torn"); ok {
		t.Fatal("torn record surfaced after recovery")
	}
	if st := s2.Stats(); st.TruncatedBytes != int64(len(rec)-5) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(rec)-5)
	}
	// Writes after truncation land cleanly where the tear was cut.
	if err := s2.Put("after", []byte("tear")); err != nil {
		t.Fatalf("Put after truncation: %v", err)
	}
	if v, ok, _ := s2.Get("after"); !ok || string(v) != "tear" {
		t.Fatalf("Get(after) = %q, %v", v, ok)
	}
}

func TestCorruptionMidLogRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	s, err := Open(Options{Path: dir, SegmentBytes: 512, GroupWindow: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), make([]byte, 100)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if s.Stats().Segments < 2 {
		t.Fatalf("want multiple segments, got %d", s.Stats().Segments)
	}
	s.Close()

	// Flip a byte in the middle of the first (non-final) segment.
	seg := filepath.Join(dir, "seg-00000000.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}

	if _, err := Open(Options{Path: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

// TestFsyncFault injects fsync failures and verifies the writer hears
// about them — a Put must never report success when its sync failed.
func TestFsyncFault(t *testing.T) {
	fail := false
	var mu sync.Mutex
	opts := Options{
		Path:        filepath.Join(t.TempDir(), "db"),
		GroupWindow: 1,
		Fsync: func(f *os.File) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return errors.New("injected fsync fault")
			}
			return f.Sync()
		},
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Put("ok", []byte("v")); err != nil {
		t.Fatalf("Put before fault: %v", err)
	}
	mu.Lock()
	fail = true
	mu.Unlock()
	if err := s.Put("doomed", []byte("v")); err == nil {
		t.Fatal("Put returned nil during fsync fault")
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	if err := s.Put("recovered", []byte("v")); err != nil {
		t.Fatalf("Put after fault cleared: %v", err)
	}
}

func TestCompaction(t *testing.T) {
	s := openTest(t, Options{
		SegmentBytes:    1 << 10,
		CompactGarbage:  -1, // manual Compact only
		CompactMinBytes: 1,
	})
	// Many overwrites of a small key set → most sealed bytes are garbage.
	for i := 0; i < 400; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%8), make([]byte, 64)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Delete("k0"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("want several segments before compaction, got %d", before.Segments)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction did not shrink the log: %d → %d bytes",
			before.DiskBytes, after.DiskBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	for i := 1; i < 8; i++ {
		if v, ok, err := s.Get(fmt.Sprintf("k%d", i)); err != nil || !ok || len(v) != 64 {
			t.Fatalf("Get(k%d) after compaction = %d bytes, %v, %v", i, len(v), ok, err)
		}
	}
	if _, ok, _ := s.Get("k0"); ok {
		t.Fatal("deleted key resurrected by compaction")
	}

	// The compacted log must replay cleanly.
	path := s.opts.Path
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 7 {
		t.Fatalf("recovered %d keys after compaction, want 7", s2.Len())
	}
}

func TestAutoCompaction(t *testing.T) {
	s := openTest(t, Options{
		SegmentBytes:    1 << 10,
		CompactGarbage:  0.5,
		CompactMinBytes: 1 << 10,
	})
	for i := 0; i < 2000; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%4), make([]byte, 64)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s.compactWG.Wait()
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("auto-compaction never fired: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if _, ok, err := s.Get(fmt.Sprintf("k%d", i)); err != nil || !ok {
			t.Fatalf("Get(k%d) after auto-compaction: %v, %v", i, ok, err)
		}
	}
}

func TestScan(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("e:%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Put("v:0", []byte("other")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	seen := map[string]bool{}
	if err := s.Scan("e:", func(k string, v []byte) bool {
		seen[k] = true
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != 5 {
		t.Fatalf("Scan visited %d keys, want 5: %v", len(seen), seen)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := openTest(t, Options{SegmentBytes: 8 << 10, GroupWindow: 1})
	var wg sync.WaitGroup
	const writers, rounds = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if err := s.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if i%20 == 19 {
					if err := s.Compact(); err != nil {
						t.Errorf("Compact: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*10 {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*10)
	}
}

func TestRegisterAndLatency(t *testing.T) {
	s := openTest(t, Options{})
	reg := obs.New(1)
	s.Register(reg)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, _, err := s.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	_, _, putP50, _ := s.LatencySummary()
	if putP50 <= 0 {
		t.Fatalf("put p50 = %g, want > 0", putP50)
	}
	// Nil registry is the free disabled state.
	var none *obs.Registry
	s2 := openTest(t, Options{})
	s2.Register(none)
	if err := s2.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put unregistered: %v", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"": SyncGroup, "group": SyncGroup, "always": SyncAlways, "none": SyncNone,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncMode("bogus"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ParseSyncMode(bogus) = %v, want ErrBadOptions", err)
	}
}

func TestClosedOps(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
