// Package experiment assembles complete simulations from the substrate
// packages and reproduces the paper's six experiments (§5): each Exp*
// function regenerates the rows/series of the corresponding figure.
package experiment

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/broadcast"
	"repro/internal/client"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// HeatKind selects a heat model family.
type HeatKind int

const (
	// SkewedHeat is the paper's SH pattern.
	SkewedHeat HeatKind = iota
	// ChangingSkewedHeat is CSH with a configurable change rate.
	ChangingSkewedHeat
	// CyclicHeat is the LRU-k style cyclic pattern of Experiment #4.
	CyclicHeat
)

// ArrivalKind selects the query arrival process.
type ArrivalKind int

const (
	// PoissonArrival is homogeneous Poisson at Rate.
	PoissonArrival ArrivalKind = iota
	// BurstyArrival is the vehicle-traffic daily profile.
	BurstyArrival
)

// Engine selects the execution engine for the client population. Both
// engines produce byte-identical results (enforced by the differential
// tests in engine_test.go); they differ only in mechanics and cost: procs
// suspend a goroutine per client at every wait, the state-machine engine
// re-enters a callback from the event heap with no goroutine, no channel
// rendezvous, and no per-resume allocation — the difference between
// thousands and millions of feasible clients.
type Engine string

const (
	// EngineProcs runs each client as a goroutine-backed sim.Proc — the
	// original engine and the default.
	EngineProcs Engine = "procs"
	// EngineSM runs each client as an inline state machine (sim.Machine)
	// scheduled directly on the kernel's event heap.
	EngineSM Engine = "sm"
)

// Config fully describes one simulation run. The zero value is completed by
// Defaults to the paper's Table 1 settings.
type Config struct {
	Label string
	Seed  uint64

	// Engine selects how clients execute: EngineProcs (default) or
	// EngineSM. Genuinely concurrent actors — server disk queues, channels,
	// the invalidation broadcaster, fault models — are engine-independent.
	Engine Engine

	// Population and horizon.
	NumObjects int
	NumClients int
	Days       float64
	WarmupDays float64

	// Caching.
	Granularity         core.Granularity
	Policy              string // replacement spec, e.g. "ewma-0.5"
	StorageObjects      int    // client storage cache (objects' worth of bytes)
	MemBufferObjects    int    // client memory buffer
	ServerBufferObjects int    // server memory buffer

	// ServerBufferRatio sizes the server buffer as a fraction of the
	// database (0 < r <= 1) when ServerBufferObjects is unset — the
	// Experiment #11 axis. Zero keeps the paper's 25% default.
	ServerBufferRatio float64

	// StorageDSN, when non-empty, attaches a persistent disk tier behind
	// the server buffer pool: "file:<dir>[?sync=group|always|none]"
	// (internal/storage). Each run owns a per-run subdirectory under the
	// DSN path, wiped at open, so sweeps at any -parallel width never
	// share a log and reruns always start cold. The tier never perturbs
	// simulated results (see server.StorageTier); its measured facts land
	// in Result.StorageTier.
	StorageDSN string

	// Coherence.
	Beta float64

	// Workload.
	QueryKind      workload.Kind
	Heat           HeatKind
	CSHChangeEvery int // CSH change rate in queries
	CyclicLoop     int // cyclic loop pool size (objects)
	CyclicBurst    int // consecutive queries per loop window
	Arrival        ArrivalKind
	PoissonRate    float64
	Selectivity    int
	AttrsPerObj    int
	AttrSkewTheta  float64 // attribute access skew (0 = uniform)
	UpdateProb     float64

	// Hybrid caching prefetch threshold position (mu + kappa*sigma).
	// NaN selects the server default.
	PrefetchKappa float64

	// ShedThreshold enables the timeout heuristic of §5.3 when positive:
	// replies queued at the downlink longer than this many seconds drop
	// their prefetched items before delivery.
	ShedThreshold float64

	// Coherence selects the coherence strategy (default: the paper's
	// leases). ReportInterval is the broadcast period for the
	// invalidation-report baselines (default coherence.DefaultReportInterval).
	Coherence      coherence.Strategy
	ReportInterval float64
	FixedLease     float64
	// IRWindow is the trailing update window each IR-over-broadcast report
	// covers, in seconds (IRBroadcastStrategy only; default five report
	// periods). Must be at least one ReportInterval or consecutive reports
	// leave coverage holes.
	IRWindow float64

	// CoopPeers > 0 enables cooperative client caching: on a connected
	// local miss a client scans up to this many cell peers for valid
	// cached copies — one probe/reply exchange on the cell channels —
	// before paying the server round trip.
	CoopPeers int

	// Tracer receives one record per completed query across all clients
	// (nil = no tracing). Excluded from run manifests: it is live state,
	// not configuration.
	Tracer trace.Tracer `json:"-"`

	// Obs, when non-nil, instruments the run: every entity (channels,
	// fault models, server, clients) registers its gauges and the
	// registry's sampler is attached over the run horizon. Nil (the
	// default) is the zero-cost disabled state. Like Tracer, a registry is
	// shared mutable state, so instrumented batches run serial; and like
	// Tracer it is excluded from run manifests.
	Obs *obs.Registry `json:"-"`

	// SharedHotObjects > 0 gives every client a common interest pool of
	// that many objects, drawn with probability SharedHotProb (default
	// 0.5); the rest of the traffic follows the private SH pattern. This
	// models the multi-client commonality that motivates broadcast
	// dissemination (§1).
	SharedHotObjects int
	SharedHotProb    float64
	// BroadcastAttrs > 0 additionally airs the shared pool's top-N
	// attribute items on a dedicated broadcast channel; clients answer
	// covered reads from the air. Requires SharedHotObjects > 0 and an
	// attribute-granularity scheme (AC/HC).
	BroadcastAttrs int

	// Disconnection (Experiment #6).
	DisconnectedClients int
	DisconnectHours     float64

	// Unreliable channels (Experiment #7, DESIGN.md §9). All zero means a
	// perfect channel: no fault model is built and the simulation is
	// byte-identical to one run before the reliability layer existed.
	LossRate       float64 // Bernoulli per-frame loss probability (Good state)
	CorruptRate    float64 // per-frame corruption probability (CRC-detected)
	BurstFraction  float64 // stationary Bad-state fraction of the Gilbert–Elliott chain
	MeanBadSeconds float64 // mean Bad-state sojourn (default network.DefaultMeanBadSeconds)
	BadLossProb    float64 // loss probability in the Bad state (default 1)

	// Reliability layer (client-side); meaningful only with faults enabled.
	RetryMax          int     // retransmissions per request (default client.DefaultMaxRetries; <0 disables)
	RetryBackoff      float64 // base backoff seconds (default client.DefaultBackoffBase)
	RetryTimeoutSlack float64 // timeout multiplier (default client.DefaultTimeoutSlack)

	// Fleet scale-out (fleet.go). Cells > 1 shards the run across that many
	// cells: each cell owns a range partition of the database (via
	// internal/federation), its own wireless channel pair, and a slice of
	// the client fleet; cross-cell reads travel a fixed backbone. Cells <= 1
	// is the paper's single-cell system, byte-identical to Run.
	Cells int
	// RelayObjects > 0 gives every contact server a lease-respecting relay
	// cache of that many remote objects (federation.Config.RelayCacheObjects).
	RelayObjects int
	// Backbone link parameters; zero selects the federation defaults
	// (10 Mbps, 5 ms).
	BackboneBandwidthBps float64
	BackboneLatency      float64
}

// FaultConfig assembles the network-layer fault model parameters. The root
// seed is mixed so fault draws never perturb any other consumer's stream.
func (c Config) FaultConfig() network.FaultConfig {
	return network.FaultConfig{
		LossProb:       c.LossRate,
		CorruptProb:    c.CorruptRate,
		BurstFraction:  c.BurstFraction,
		MeanBadSeconds: c.MeanBadSeconds,
		BadLossProb:    c.BadLossProb,
		Seed:           rng.Derive(c.Seed, 0xfa017).Uint64(),
	}
}

// ratioBuffer is the server buffer size a ratio derives for an n-object
// database: rounded to the nearest object, never below one.
func ratioBuffer(ratio float64, n int) int {
	b := int(ratio*float64(n) + 0.5)
	if b < 1 {
		b = 1
	}
	return b
}

// Defaults returns cfg with every unset field filled from Table 1.
func Defaults(cfg Config) Config {
	if cfg.Engine == "" {
		cfg.Engine = EngineProcs
	}
	if cfg.NumObjects == 0 {
		cfg.NumObjects = oodb.DefaultNumObjects
	}
	if cfg.NumClients == 0 {
		cfg.NumClients = 10
	}
	if cfg.Days == 0 {
		cfg.Days = 4
	}
	if cfg.Policy == "" {
		cfg.Policy = "ewma-0.5"
	}
	if cfg.StorageObjects == 0 {
		// 20% of the database.
		cfg.StorageObjects = cfg.NumObjects / 5
	}
	if cfg.MemBufferObjects == 0 {
		cfg.MemBufferObjects = client.DefaultMemBufferObjects
	}
	if cfg.ServerBufferObjects == 0 {
		if cfg.ServerBufferRatio > 0 {
			cfg.ServerBufferObjects = ratioBuffer(cfg.ServerBufferRatio, cfg.NumObjects)
		} else {
			// 25% of the database.
			cfg.ServerBufferObjects = cfg.NumObjects / 4
		}
	}
	if cfg.CSHChangeEvery == 0 {
		cfg.CSHChangeEvery = 500
	}
	if cfg.CyclicLoop == 0 {
		// The loop pool must (a) fit inside the 20% storage cache with
		// room for noise churn and (b) revisit much faster than the noise
		// pool recurs, so the loop is genuinely the hot set: 7.5% of the
		// database (150 objects at the paper's 2000).
		cfg.CyclicLoop = cfg.NumObjects * 3 / 40
	}
	if cfg.CyclicBurst == 0 {
		cfg.CyclicBurst = 2
	}
	if cfg.PoissonRate == 0 {
		cfg.PoissonRate = workload.DefaultPoissonRate
	}
	if cfg.Selectivity == 0 {
		cfg.Selectivity = workload.DefaultSelectivity
	}
	if cfg.AttrsPerObj == 0 {
		cfg.AttrsPerObj = workload.DefaultAttrsPerObject
	}
	if cfg.AttrSkewTheta == 0 {
		cfg.AttrSkewTheta = workload.DefaultAttrTheta
	}
	if cfg.PrefetchKappa == 0 {
		cfg.PrefetchKappa = math.NaN()
	}
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = coherence.DefaultReportInterval
	}
	if cfg.IRWindow == 0 {
		// Keep the default window/period ratio when the period is tuned.
		cfg.IRWindow = cfg.ReportInterval * (coherence.DefaultIRWindow / coherence.DefaultReportInterval)
	}
	if cfg.SharedHotObjects > 0 && cfg.SharedHotProb == 0 {
		cfg.SharedHotProb = 0.5
	}
	if cfg.BroadcastAttrs > 0 && cfg.SharedHotObjects == 0 {
		panic("experiment: BroadcastAttrs requires SharedHotObjects")
	}
	return cfg
}

// Horizon returns the simulated duration in seconds.
func (c Config) Horizon() float64 { return c.Days * workload.SecondsPerDay }

// String renders a compact run identifier.
func (c Config) String() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("%s/%s/%s/U=%.2g", c.Granularity, c.Policy, c.QueryKind, c.UpdateProb)
}

// Result carries the measurements of one run.
type Result struct {
	Config Config

	HitRatio     float64
	MeanResponse float64
	ErrorRate    float64

	QueriesIssued uint64
	QueriesLocal  uint64
	QueriesRemote uint64
	Unavailable   uint64

	UplinkUtilization   float64
	DownlinkUtilization float64
	DownlinkMeanWait    float64
	ItemsShed           uint64 // prefetched items dropped by the timeout heuristic
	CacheDrops          uint64 // whole-cache discards after missed invalidation reports
	BroadcastReads      uint64 // reads answered from the broadcast channel

	// Reliability-layer measurements (zero on perfect channels).
	// AccessErrorRate is the fraction of reads not served correctly:
	// coherence violations plus unavailable reads — the metric Experiment
	// #7 sweeps against the frame-loss rate.
	AccessErrorRate float64
	Retries         uint64 // retransmissions issued across all clients
	Timeouts        uint64 // request attempts that ended in a timeout
	DegradedReads   uint64 // reads served from stale copies after retry exhaustion
	FramesLost      uint64 // frames dropped by the channel fault models
	FramesCorrupted uint64 // frames rejected by the receiver CRC

	// HourlyResponse / HourlyQueries profile mean response time and load
	// by hour of the simulated day (Bursty analysis).
	HourlyResponse [24]float64
	HourlyQueries  [24]uint64

	// RadioEnergyPerQuery is the mean Joules a client's radio spent per
	// query (transmit + receive).
	RadioEnergyPerQuery float64

	Server server.Stats

	// StorageTier carries the persistent disk tier's end-of-run facts
	// (zero when Config.StorageDSN was unset).
	StorageTier TierStats

	PerClient []PerClient

	// Events counts the simulation events executed (summed across all cell
	// kernels in a fleet run) — the numerator of wall-clock throughput.
	Events uint64

	// Fleet measurements (zero on single-cell runs): cumulative backbone
	// traffic between server nodes and the contact servers' relay-cache
	// effectiveness, summed across cells.
	BackboneBytes    uint64
	BackboneMessages uint64
	RelayHits        uint64
	RelayMisses      uint64
	RelayedReads     uint64

	// IR-over-broadcast measurements (IRBroadcastStrategy only; summed
	// across cells in a fleet run).
	IRReports     uint64 // reports pushed on the dedicated broadcast channel
	IRReportBytes uint64 // cumulative report wire bytes
	IRMissed      uint64 // report frames clients lost to channel faults
	ForcedRevals  uint64 // whole-cache lease voids after unrecoverable report gaps

	// Cooperative-lookup measurements (CoopPeers > 0 only).
	PeerHits   uint64 // reads served from a peer's cache
	PeerMisses uint64 // connected local misses that still went to the server
}

// TierStats is the persistent storage tier's end-of-run snapshot. Gets,
// Puts, and Errors are deterministic workload facts (every run starts on
// a cold tier, so the same config reproduces the same counts at any
// -parallel width); Keys, DiskBytes, and the wall-clock latency quantiles
// are measured disk facts — manifest and stderr material, never
// deterministic-table material.
type TierStats struct {
	DSN    string
	Gets   uint64 // buffer misses served by an existing tier record
	Puts   uint64 // objects materialized on first touch
	Errors uint64 // tier I/O failures (run continued on the model)

	Keys      int
	DiskBytes int64

	GetP50ms, GetP99ms float64
	PutP50ms, PutP99ms float64
}

// PerClient is a per-client measurement snapshot.
type PerClient struct {
	HitRatio     float64
	ErrorRate    float64
	MeanResponse float64
	Queries      uint64
}

// Run executes one simulation and returns its measurements. Runs are
// deterministic in (Config, Seed).
func Run(cfg Config) Result {
	cfg = Defaults(cfg)
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{
		NumObjects: cfg.NumObjects,
		RelSeed:    rng.Derive(cfg.Seed, 0xdb).Uint64(),
	})
	store := openStorageTier(cfg)
	srvCfg := server.Config{
		Kernel:        k,
		DB:            db,
		BufferObjects: cfg.ServerBufferObjects,
		Beta:          cfg.Beta,
		UpdateProb:    cfg.UpdateProb,
		PrefetchKappa: cfg.PrefetchKappa,
		Seed:          cfg.Seed,
	}
	if store != nil {
		srvCfg.Storage = store
	}
	srv := server.New(srvCfg)
	up := network.NewChannel(k, "uplink", network.WirelessBandwidthBps)
	down := network.NewChannel(k, "downlink", network.WirelessBandwidthBps)

	// Fault injection (Experiment #7): one model per channel direction,
	// shared by all clients — burst outages hit everyone sending through
	// the cell at once. NewFaultModel returns nil when disabled.
	faultCfg := cfg.FaultConfig()
	upFaults := network.NewFaultModel(faultCfg, 1)
	downFaults := network.NewFaultModel(faultCfg, 2)

	schedules := workload.BuildSchedules(workload.DisconnectConfig{
		NumClients:          cfg.NumClients,
		DisconnectedClients: cfg.DisconnectedClients,
		DurationHours:       cfg.DisconnectHours,
		Days:                int(math.Ceil(cfg.Days)),
		Seed:                cfg.Seed,
	})

	policyFactory, err := replacement.Parse(cfg.Policy)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}

	var program *broadcast.Program
	if cfg.BroadcastAttrs > 0 {
		pool := workload.SharedPool(cfg.NumObjects, cfg.Seed, cfg.SharedHotObjects)
		program = broadcast.New(
			broadcast.HotAttrItems(pool, cfg.BroadcastAttrs),
			network.WirelessBandwidthBps, 0)
	}

	clients, clientMetrics := buildClients(clientEnv{
		kernel:     k,
		cfg:        cfg,
		db:         db,
		backend:    srv,
		up:         up,
		down:       down,
		upFaults:   upFaults,
		downFaults: downFaults,
		schedules:  schedules,
		program:    program,
		policy:     policyFactory,
	}, 0, cfg.NumClients)

	if cfg.Coherence == coherence.InvalidationReportStrategy {
		startBroadcaster(k, cfg, srv, down, clients, schedules)
	}
	var irb *irbState
	if cfg.Coherence == coherence.IRBroadcastStrategy {
		window := broadcast.NewUpdateWindow(cfg.IRWindow)
		srv.SetWriteObserver(window.Observe)
		irCh := network.NewChannel(k, "ir-broadcast", network.WirelessBandwidthBps)
		irFaults := network.NewFaultModel(faultCfg, 3)
		irb = startIRBBroadcaster(k, cfg, window, irCh, irFaults, clients, schedules)
	}

	// Observability (obs.go): wire every entity into the registry and
	// attach its virtual-time sampler before the first event fires, so all
	// series start at t = 0.
	if cfg.Obs.Enabled() {
		registerObservables(cfg, srv, up, down, upFaults, downFaults, program, clients, clientMetrics)
		if store != nil {
			store.Register(cfg.Obs)
		}
		cfg.Obs.Attach(k, cfg.Horizon())
	} else if store != nil {
		// Uninstrumented runs still measure tier latencies: a private
		// registry (never attached, never sampled) hosts the histograms,
		// so each run's LatencySummary works at any -parallel width
		// without forcing the batch serial the way a shared cfg.Obs would.
		store.Register(obs.New(0))
	}

	k.RunAll()
	k.Drain()

	var agg metrics.Aggregate
	var shed, drops, bcastReads uint64
	var irMissed, forcedReval, peerHits, peerMisses uint64
	var energy float64
	perClient := make([]PerClient, len(clientMetrics))
	for i, m := range clientMetrics {
		agg.Merge(m)
		shed += clients[i].ShedItems()
		drops += clients[i].CacheDrops()
		bcastReads += clients[i].BroadcastReads()
		irMissed += clients[i].IRBMissed()
		forcedReval += clients[i].ForcedRevalidations()
		peerHits += clients[i].PeerHits()
		peerMisses += clients[i].PeerMisses()
		energy += clients[i].RadioEnergy()
		issued, _, _, _ := m.Queries()
		perClient[i] = PerClient{
			HitRatio:     m.HitRatio(),
			ErrorRate:    m.ErrorRate(),
			MeanResponse: m.MeanResponse(),
			Queries:      issued,
		}
	}
	hourlyMean, hourlyCount := agg.HourlyResponse()
	energyPerQuery := 0.0
	if agg.Issued > 0 {
		energyPerQuery = energy / float64(agg.Issued)
	}
	accessErr := 0.0
	if agg.Hits.Denom > 0 {
		accessErr = float64(agg.Errs.Num+agg.Unavail) / float64(agg.Hits.Denom)
	}
	upStats, downStats := upFaults.Stats(), downFaults.Stats()
	var irReports, irBytes uint64
	if irb != nil {
		irReports, irBytes = irb.reports, irb.reportBytes
	}
	srvStats := srv.Stats()
	var tier TierStats
	if store != nil {
		es := store.Stats()
		g50, g99, p50, p99 := store.LatencySummary()
		tier = TierStats{
			DSN:  cfg.StorageDSN,
			Gets: srvStats.StorageGets, Puts: srvStats.StoragePuts, Errors: srvStats.StorageErrors,
			Keys: es.Keys, DiskBytes: es.DiskBytes,
			GetP50ms: g50, GetP99ms: g99, PutP50ms: p50, PutP99ms: p99,
		}
		if err := store.Close(); err != nil {
			panic(fmt.Sprintf("experiment: storage tier close: %v", err))
		}
	}
	return Result{
		Config:              cfg,
		Events:              k.Steps(),
		HitRatio:            agg.HitRatio(),
		MeanResponse:        agg.MeanResponse(),
		ErrorRate:           agg.ErrorRate(),
		QueriesIssued:       agg.Issued,
		QueriesLocal:        agg.Local,
		QueriesRemote:       agg.Remote,
		Unavailable:         agg.Unavail,
		UplinkUtilization:   up.Utilization(),
		DownlinkUtilization: down.Utilization(),
		DownlinkMeanWait:    down.MeanWait(),
		ItemsShed:           shed,
		CacheDrops:          drops,
		BroadcastReads:      bcastReads,
		AccessErrorRate:     accessErr,
		Retries:             agg.Retries,
		Timeouts:            agg.Timeouts,
		DegradedReads:       agg.Degraded,
		FramesLost:          upStats.Lost + downStats.Lost,
		FramesCorrupted:     upStats.Corrupted + downStats.Corrupted,
		HourlyResponse:      hourlyMean,
		HourlyQueries:       hourlyCount,
		RadioEnergyPerQuery: energyPerQuery,
		Server:              srvStats,
		StorageTier:         tier,
		PerClient:           perClient,
		IRReports:           irReports,
		IRReportBytes:       irBytes,
		IRMissed:            irMissed,
		ForcedRevals:        forcedReval,
		PeerHits:            peerHits,
		PeerMisses:          peerMisses,
	}
}

// openStorageTier opens the run's persistent tier, or nil when no DSN is
// configured. Every run gets its own cold subdirectory under the DSN
// path — keyed by label and seed, wiped before open — so sweep runs at
// any -parallel width never share a log, and a rerun of the same config
// reproduces the same deterministic tier counters. Errors panic: Run's
// contract is that Scenario validation already rejected a bad DSN
// (ErrBadSpec from experiment.New).
func openStorageTier(cfg Config) *storage.Store {
	if cfg.StorageDSN == "" {
		return nil
	}
	opts, err := storage.ParseDSN(cfg.StorageDSN)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	opts.Path = filepath.Join(opts.Path, tierRunDir(cfg))
	if err := os.RemoveAll(opts.Path); err != nil {
		panic(fmt.Sprintf("experiment: storage tier: %v", err))
	}
	st, err := storage.Open(opts)
	if err != nil {
		panic(fmt.Sprintf("experiment: storage tier: %v", err))
	}
	return st
}

// tierRunDir renders the per-run tier subdirectory from the run identity,
// restricted to filename-safe characters.
func tierRunDir(cfg Config) string {
	name := fmt.Sprintf("%s-seed%d", cfg.String(), cfg.Seed)
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// clientEnv bundles the substrate one group of clients attaches to: the
// kernel, the backend serving their queries (a single server in Run, a
// federation contact server in a fleet cell), the cell's channel pair and
// fault models, and the run-wide schedules, broadcast program, and policy
// factory.
type clientEnv struct {
	kernel     *sim.Kernel
	cfg        Config
	db         *oodb.Database
	backend    client.Backend
	up, down   *network.Channel
	upFaults   *network.FaultModel
	downFaults *network.FaultModel
	schedules  []*network.Schedule
	program    *broadcast.Program
	policy     func() replacement.Policy
}

// buildClients constructs and starts the mobile clients with global IDs in
// [lo, hi). Clients keep their fleet-global ID in every RNG derivation and
// schedule lookup, so a client's private streams do not depend on how the
// fleet is sliced into cells.
func buildClients(env clientEnv, lo, hi int) ([]*client.Client, []*metrics.Client) {
	cfg := env.cfg
	clients := make([]*client.Client, 0, hi-lo)
	clientMetrics := make([]*metrics.Client, 0, hi-lo)
	for i := lo; i < hi; i++ {
		// The workload substreams come from the shared twin constructor so
		// live replay (internal/serve) sees the exact same draws.
		w := NewClientWorkload(cfg, env.db, i)
		gen, arrival := w.Gen, w.Arrival
		m := &metrics.Client{Warmup: cfg.WarmupDays * workload.SecondsPerDay}
		clientMetrics = append(clientMetrics, m)

		var pol replacement.Policy
		if cfg.Granularity != core.NoCache {
			pol = env.policy()
		}
		cl := client.New(client.Config{
			ID:               i,
			Kernel:           env.kernel,
			Server:           env.backend,
			Up:               env.up,
			Down:             env.down,
			Granularity:      cfg.Granularity,
			Policy:           pol,
			StorageBytes:     cfg.StorageObjects * core.ItemCost(oodb.ObjectItem(0)),
			MemBufferObjects: cfg.MemBufferObjects,
			Gen:              gen,
			Arrival:          arrival,
			Schedule:         env.schedules[i],
			Metrics:          m,
			Seed:             rng.Derive(cfg.Seed, 0xc0+uint64(i)).Uint64(),
			Horizon:          cfg.Horizon(),
			ShedThreshold:    cfg.ShedThreshold,
			Coherence:        cfg.Coherence,
			FixedLease:       cfg.FixedLease,
			IRWindow:         cfg.IRWindow,
			Tracer:           cfg.Tracer,
			Broadcast:        env.program,
			UpFaults:         env.upFaults,
			DownFaults:       env.downFaults,
			Retry: client.RetryConfig{
				MaxRetries:   cfg.RetryMax,
				BackoffBase:  cfg.RetryBackoff,
				TimeoutSlack: cfg.RetryTimeoutSlack,
			},
		})
		clients = append(clients, cl)
		switch cfg.Engine {
		case EngineSM:
			cl.StartMachine()
		case EngineProcs, "":
			cl.Start()
		default:
			panic(fmt.Sprintf("experiment: unknown engine %q", cfg.Engine))
		}
	}
	// Cooperative lookup scopes to the cell: a client's peer group is
	// exactly the clients sharing its channel pair.
	if cfg.CoopPeers > 0 {
		for _, cl := range clients {
			cl.SetPeers(clients, cfg.CoopPeers)
		}
	}
	return clients, clientMetrics
}

// startBroadcaster spawns the invalidation-report broadcast process: every
// ReportInterval seconds the server pushes a report over the shared
// downlink (header plus one item reference per update since the previous
// report) and every *connected* client applies it; disconnected clients
// miss it and will drop their caches on the next report they do receive.
func startBroadcaster(k *sim.Kernel, cfg Config, srv *server.Server,
	down *network.Channel, clients []*client.Client, schedules []*network.Schedule) {

	horizon := cfg.Horizon()
	k.Spawn("ir-broadcast", func(p *sim.Proc) {
		var seq, lastUpdates uint64
		for {
			p.Hold(cfg.ReportInterval)
			if p.Now() > horizon {
				return
			}
			seq++
			updates := srv.Stats().UpdatesApplied
			delta := int(updates - lastUpdates)
			lastUpdates = updates
			size := network.HeaderSize + delta*(network.OIDSize+network.AttrRefSize)
			down.Send(p, size)
			now := p.Now()
			for i, cl := range clients {
				if schedules[i].Connected(now) {
					cl.ApplyInvalidationReport(now, seq)
				}
			}
		}
	})
}

// irbState carries an IR-over-broadcast broadcaster's run totals for the
// Result merge.
type irbState struct {
	reports     uint64
	reportBytes uint64
}

// startIRBBroadcaster spawns the IR-over-broadcast process for one cell:
// every ReportInterval seconds it assembles the report naming the items
// written during the trailing IRWindow (fed by the server's write
// observer), pays for its airtime on the dedicated broadcast channel, and
// delivers it to every connected client in the cell. Reception is judged
// per client against the channel's fault model in client order — a lost
// or corrupted frame becomes MissIRBroadcast, the forced-revalidation
// trigger. Disconnected clients simply have their radios off. All draws
// happen inside the kernel process, so delivery outcomes are independent
// of the execution engine and of -parallel.
func startIRBBroadcaster(k *sim.Kernel, cfg Config, window *broadcast.UpdateWindow,
	ch *network.Channel, faults *network.FaultModel,
	clients []*client.Client, schedules []*network.Schedule) *irbState {

	st := &irbState{}
	horizon := cfg.Horizon()
	k.Spawn("irb-broadcast", func(p *sim.Proc) {
		for {
			p.Hold(cfg.ReportInterval)
			if p.Now() > horizon {
				return
			}
			items := window.Report(p.Now())
			size := broadcast.ReportBytes(len(items))
			ch.Send(p, size)
			st.reports++
			st.reportBytes += uint64(size)
			now := p.Now()
			for i, cl := range clients {
				if !schedules[i].Connected(now) {
					continue
				}
				outcome := network.FrameDelivered
				if faults != nil {
					outcome = faults.Transmit(now)
				}
				switch outcome {
				case network.FrameDelivered:
					cl.ApplyIRBroadcast(now, items, size)
				case network.FrameCorrupted:
					// Received in full, rejected by the CRC: energy spent.
					cl.MissIRBroadcast(now, cfg.ReportInterval, size)
				default: // FrameLost
					cl.MissIRBroadcast(now, cfg.ReportInterval, 0)
				}
			}
		}
	})
	return st
}

// buildHeat instantiates the per-client heat model; each client gets its
// own hot set ("we ensure that the hot objects of each client are not
// identical", §4).
func buildHeat(cfg Config, clientID int) workload.HeatModel {
	seed := rng.Derive(cfg.Seed, 0x8ea7000+uint64(clientID)).Uint64()
	if cfg.SharedHotObjects > 0 {
		return workload.NewSharedSkewedHeat(cfg.NumObjects, cfg.Seed, seed,
			cfg.SharedHotObjects, cfg.SharedHotProb)
	}
	switch cfg.Heat {
	case SkewedHeat:
		return workload.NewSkewedHeat(cfg.NumObjects, seed)
	case ChangingSkewedHeat:
		return workload.NewChangingSkewedHeat(cfg.NumObjects, seed, cfg.CSHChangeEvery)
	case CyclicHeat:
		return workload.NewCyclicHeat(workload.CyclicConfig{
			NumObjects:   cfg.NumObjects,
			LoopObjects:  cfg.CyclicLoop,
			LoopPerQuery: max(1, cfg.Selectivity/4),
			Burst:        cfg.CyclicBurst,
			Seed:         seed,
		})
	default:
		panic(fmt.Sprintf("experiment: unknown heat kind %d", cfg.Heat))
	}
}

// HeatName renders the heat configuration for table headers.
func (c Config) HeatName() string {
	switch c.Heat {
	case SkewedHeat:
		return "SH"
	case ChangingSkewedHeat:
		return fmt.Sprintf("CSH-%d", c.CSHChangeEvery)
	case CyclicHeat:
		return "cyclic"
	default:
		return "?"
	}
}

// ArrivalName renders the arrival configuration for table headers.
func (c Config) ArrivalName() string {
	if c.Arrival == BurstyArrival {
		return "Bursty"
	}
	return "Poisson"
}
