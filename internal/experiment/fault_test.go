package experiment

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// Tests for the unreliable-channel model (Experiment #7): seeded
// determinism of faulted runs, invariance of the perfect-channel path, and
// the qualitative loss-sensitivity shape the experiment demonstrates.

// faultCfg is shapeCfg with a lossy channel.
func faultCfg(loss float64) Config {
	cfg := shapeCfg()
	cfg.Granularity = core.HybridCaching
	cfg.UpdateProb = 0.1
	cfg.LossRate = loss
	return cfg
}

// Two runs with identical seeds and identical loss/burst settings must be
// identical in every measurement — the per-run half of the byte-identical
// tables guarantee.
func TestFaultedRunDeterminism(t *testing.T) {
	cfg := faultCfg(0.15)
	cfg.BurstFraction = 0.2
	a, b := Run(cfg), Run(cfg)
	// Compare the rendered form: the guarantee is about reproducible
	// tables, and DeepEqual would trip over NaN placeholders (e.g. empty
	// warmup hours) that render identically.
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("identical faulted configs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.FramesLost == 0 {
		t.Fatal("loss 0.15 + bursts produced no lost frames")
	}
}

// And the table-level half: a faulted sweep renders byte-identically on
// repeated runs, at any worker count.
func TestExp7TablesDeterministic(t *testing.T) {
	base := shapeCfg()
	base.Days = 0.25
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	serial := Exp7Quick(base).String()
	SetDefaultWorkers(4)
	parallel := Exp7Quick(base).String()
	if serial != parallel {
		t.Fatalf("Exp7 tables differ between serial and parallel runs:\n%s\nvs\n%s",
			serial, parallel)
	}
}

// With the fault model disabled the reliability layer must be completely
// inert: no retries, no timeouts, no lost frames, no degraded reads.
func TestPerfectChannelHasNoFaultActivity(t *testing.T) {
	res := Run(faultCfg(0))
	if res.FramesLost != 0 || res.FramesCorrupted != 0 || res.Retries != 0 ||
		res.Timeouts != 0 || res.DegradedReads != 0 {
		t.Fatalf("perfect channel recorded fault activity: %+v", res)
	}
	// AccessErrorRate still reflects coherence errors (+ any unavailable
	// reads), so it must agree with the components it is defined over.
	if res.AccessErrorRate < res.ErrorRate-1e-9 {
		t.Fatalf("AccessErrorRate %v < ErrorRate %v", res.AccessErrorRate, res.ErrorRate)
	}
}

// Frame loss must cost something: retries fire, and response time rises
// with the loss rate.
func TestLossSlowsResponses(t *testing.T) {
	clean := Run(faultCfg(0))
	lossy := Run(faultCfg(0.2))
	if lossy.Retries == 0 || lossy.FramesLost == 0 {
		t.Fatalf("loss 0.2 produced no retries/lost frames: %+v", lossy)
	}
	if lossy.MeanResponse <= clean.MeanResponse {
		t.Fatalf("response time did not rise under loss: %.3f vs %.3f",
			lossy.MeanResponse, clean.MeanResponse)
	}
}

// The Experiment #7 headline: NC's access-error rate explodes with loss
// (nothing to fall back on → unavailable reads), while a cached
// granularity degrades much more slowly in relative terms.
func TestShapeAccessErrorsUnderLoss(t *testing.T) {
	run := func(g core.Granularity, loss float64) Result {
		cfg := faultCfg(loss)
		cfg.Granularity = g
		return Run(cfg)
	}
	ncClean := run(core.NoCache, 0)
	ncLossy := run(core.NoCache, 0.3)
	hcClean := run(core.HybridCaching, 0)
	hcLossy := run(core.HybridCaching, 0.3)

	if ncLossy.AccessErrorRate <= ncClean.AccessErrorRate {
		t.Fatalf("NC access errors did not rise with loss: %.4f vs %.4f",
			ncLossy.AccessErrorRate, ncClean.AccessErrorRate)
	}
	ncJump := ncLossy.AccessErrorRate - ncClean.AccessErrorRate
	hcJump := hcLossy.AccessErrorRate - hcClean.AccessErrorRate
	if hcJump >= ncJump {
		t.Fatalf("HC degraded faster than NC under loss: ΔHC=%.4f ΔNC=%.4f",
			hcJump, ncJump)
	}
}

// Retry exhaustion must fall back to stale cached copies where they exist:
// with a cache and heavy loss, degraded reads appear.
func TestDegradedServingUnderHeavyLoss(t *testing.T) {
	cfg := faultCfg(0.05)
	// Long bursts overwhelm the backoff schedule and exhaust retries.
	cfg.BurstFraction = 0.3
	cfg.MeanBadSeconds = 60
	res := Run(cfg)
	if res.Timeouts == 0 {
		t.Fatalf("burst outages produced no timeouts: %+v", res)
	}
	if res.DegradedReads == 0 {
		t.Fatalf("retry exhaustion with a warm cache served no degraded reads: %+v", res)
	}
}
