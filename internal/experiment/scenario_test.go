package experiment

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestScenarioDefaults(t *testing.T) {
	sc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config()
	if cfg.NumClients != 10 || cfg.Days != 4 || cfg.Policy != "ewma-0.5" ||
		cfg.NumObjects != 2000 || cfg.StorageObjects != 400 {
		t.Fatalf("scenario defaults diverge from Table 1: %+v", cfg)
	}
	if !math.IsNaN(cfg.PrefetchKappa) {
		t.Fatal("unset PrefetchKappa must default to the NaN sentinel")
	}
}

// TestScenarioCoherenceNames: WithCoherence accepts strategy names as well
// as enum values, and the broadcast-IR strategy composes with fleets (only
// the legacy point-to-point IR scheme is cell-bound).
func TestScenarioCoherenceNames(t *testing.T) {
	sc, err := New(
		WithCoherence("irb"),
		WithFleet(100, 4),
		WithIRWindow(600),
		WithCooperative(3),
		WithGranularity(core.HybridCaching),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config()
	if cfg.Coherence != coherence.IRBroadcastStrategy || cfg.IRWindow != 600 ||
		cfg.CoopPeers != 3 {
		t.Fatalf("named coherence options not applied: %+v", cfg)
	}
	for name, want := range map[string]coherence.Strategy{
		"lease": coherence.LeaseStrategy,
		"fixed": coherence.FixedLeaseStrategy,
		"ir":    coherence.InvalidationReportStrategy,
		"irb":   coherence.IRBroadcastStrategy,
	} {
		sc, err := New(WithCoherence(name))
		if err != nil {
			t.Fatalf("WithCoherence(%q): %v", name, err)
		}
		if got := sc.Config().Coherence; got != want {
			t.Fatalf("WithCoherence(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestScenarioOptionsApply(t *testing.T) {
	sc, err := New(
		WithLabel("opts"),
		WithSeed(7),
		WithFleet(100, 4),
		WithObjects(800),
		WithHorizonDays(0.5),
		WithGranularity(core.AttributeCaching),
		WithPolicy("lru-3"),
		WithQueryKind(workload.Navigational),
		WithHeat(ChangingSkewedHeat),
		WithCSHChangeEvery(300),
		WithArrival(BurstyArrival),
		WithUpdateProb(0.3),
		WithCoherence(coherence.FixedLeaseStrategy),
		WithFixedLease(60),
		WithLoss(0.1),
		WithRetry(5, 2),
		WithRelayCache(50),
		WithBackbone(1e6, 0.01),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config()
	if cfg.NumClients != 100 || cfg.Cells != 4 || cfg.NumObjects != 800 ||
		cfg.Granularity != core.AttributeCaching || cfg.Policy != "lru-3" ||
		cfg.QueryKind != workload.Navigational || cfg.Heat != ChangingSkewedHeat ||
		cfg.CSHChangeEvery != 300 || cfg.Arrival != BurstyArrival ||
		cfg.UpdateProb != 0.3 || cfg.Coherence != coherence.FixedLeaseStrategy ||
		cfg.FixedLease != 60 || cfg.LossRate != 0.1 || cfg.RetryMax != 5 ||
		cfg.RelayObjects != 50 || cfg.BackboneBandwidthBps != 1e6 {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

// TestScenarioValidationErrors pins the named-error contract: every
// rejected option combination wraps exactly the sentinel a caller would
// branch on with errors.Is.
func TestScenarioValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"negative horizon", []Option{WithHorizonDays(-1)}, ErrOutOfRange},
		{"zero clients", []Option{WithClients(0)}, ErrOutOfRange},
		{"probability above 1", []Option{WithUpdateProb(1.5)}, ErrOutOfRange},
		{"loss above 1", []Option{WithLoss(2)}, ErrOutOfRange},
		{"unknown granularity", []Option{WithGranularity(core.Granularity(99))}, ErrOutOfRange},
		{"unknown heat", []Option{WithHeat(HeatKind(42))}, ErrOutOfRange},
		{"unknown coherence", []Option{WithCoherence(coherence.Strategy(9))}, ErrOutOfRange},
		{"unknown coherence name", []Option{WithCoherence("gossip")}, ErrOutOfRange},
		{"zero ir window", []Option{WithIRWindow(0)}, ErrOutOfRange},
		{"negative cooperation", []Option{WithCooperative(-1)}, ErrOutOfRange},
		{"ir window under report interval", []Option{
			WithCoherence("irb"), WithReportInterval(60), WithIRWindow(30)}, ErrConflict},
		{"cooperation without caching", []Option{
			WithGranularity(core.NoCache), WithCooperative(3)}, ErrConflict},
		{"bad policy spec", []Option{WithPolicy("no-such-policy")}, ErrBadSpec},
		{"more cells than clients", []Option{WithFleet(4, 8)}, ErrConflict},
		{"cells exceed default fleet", []Option{WithCells(64)}, ErrConflict},
		{"clients contradict fleet", []Option{WithFleet(100, 4), WithClients(50)}, ErrConflict},
		{"broadcast without shared pool", []Option{WithBroadcastAttrs(2)}, ErrConflict},
		{"ir on a fleet", []Option{
			WithFleet(100, 4), WithCoherence(coherence.InvalidationReportStrategy)}, ErrConflict},
		{"disconnect more than fleet", []Option{WithDisconnection(20, 1)}, ErrConflict},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.opts...)
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("error %v does not wrap %v", err, c.want)
			}
		})
	}
}

// TestScenarioRunMatchesConfigRun: the Scenario front door adds validation
// and dispatch only — a single-cell scenario's Result is byte-identical to
// the compatibility shim's.
func TestScenarioRunMatchesConfigRun(t *testing.T) {
	sc, err := New(
		WithSeed(1),
		WithObjects(400),
		WithClients(4),
		WithHorizonDays(0.05),
		WithGranularity(core.HybridCaching),
		WithUpdateProb(0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Run()
	want := Run(Config{
		Seed: 1, NumObjects: 400, NumClients: 4, Days: 0.05,
		Granularity: core.HybridCaching, UpdateProb: 0.1,
	})
	if !reflect.DeepEqual(stripConfig(got), stripConfig(want)) {
		t.Fatalf("scenario run diverged from Run:\n%+v\nvs\n%+v", got, want)
	}
}

func TestScenarioWithConfigBridge(t *testing.T) {
	base := Config{Seed: 3, NumClients: 8, Cells: 2, NumObjects: 400, Days: 0.05}
	sc, err := New(WithConfig(base), WithUpdateProb(0.2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config()
	if cfg.Cells != 2 || cfg.UpdateProb != 0.2 {
		t.Fatalf("bridge lost fields: %+v", cfg)
	}
	// The bridge still validates: a manifest asking for more cells than
	// clients must be rejected, not run.
	if _, err := New(WithConfig(Config{NumClients: 2, Cells: 4})); !errors.Is(err, ErrConflict) {
		t.Fatalf("invalid bridged config accepted: %v", err)
	}
}
