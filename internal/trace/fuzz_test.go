package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the trace parser never panics and either returns
// records or a descriptive error on arbitrary input.
func FuzzReadCSV(f *testing.F) {
	f.Add("")
	f.Add(strings.Join(CSVHeader, ",") + "\n")
	f.Add(strings.Join(CSVHeader, ",") + "\n1,2,3.0,4.0,1.0,5,6,7,8,9,true,false,10,11\n")
	f.Add("garbage\nmore,garbage")
	f.Add(strings.Join(CSVHeader, ",") + "\n1,2,NaN,inf,x,,,,,,maybe,false,10\n")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := ReadCSV(strings.NewReader(input))
		if err == nil {
			// Whatever parsed must summarize without panicking.
			_ = Analyze(records)
		}
	})
}
