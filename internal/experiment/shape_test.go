package experiment

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

// These integration tests assert the *qualitative* findings of the paper's
// evaluation (§5) at reduced scale: who wins, in which direction metrics
// move, and where the granularities separate. Absolute values differ from
// the paper; orderings must not.

// shapeCfg keeps the paper's ratios (20% storage, 25% server buffer) over
// a smaller population and horizon.
func shapeCfg() Config {
	return Config{
		Seed:       7,
		NumObjects: 500,
		NumClients: 5,
		Days:       0.5,
		QueryKind:  workload.Associative,
		Heat:       SkewedHeat,
	}
}

func runG(t *testing.T, g core.Granularity, mut func(*Config)) Result {
	t.Helper()
	cfg := shapeCfg()
	cfg.Granularity = g
	cfg.UpdateProb = 0.1
	if mut != nil {
		mut(&cfg)
	}
	return Run(cfg)
}

// Figure 2: the base case (NC) performs much worse than any storage
// caching scheme on both metrics.
func TestShapeNCWorst(t *testing.T) {
	nc := runG(t, core.NoCache, nil)
	for _, g := range []core.Granularity{core.AttributeCaching, core.ObjectCaching, core.HybridCaching} {
		res := runG(t, g, nil)
		if res.HitRatio <= nc.HitRatio {
			t.Errorf("%v hit ratio %.3f <= NC %.3f", g, res.HitRatio, nc.HitRatio)
		}
		if res.MeanResponse >= nc.MeanResponse {
			t.Errorf("%v response %.3f >= NC %.3f", g, res.MeanResponse, nc.MeanResponse)
		}
	}
}

// Figure 2: OC yields higher hit ratios than AC but higher response times
// too (blind prefetching over the slow wireless link).
func TestShapeOCAnomaly(t *testing.T) {
	ac := runG(t, core.AttributeCaching, nil)
	oc := runG(t, core.ObjectCaching, nil)
	if oc.HitRatio <= ac.HitRatio {
		t.Errorf("OC hit %.3f <= AC hit %.3f", oc.HitRatio, ac.HitRatio)
	}
	if oc.MeanResponse <= ac.MeanResponse {
		t.Errorf("OC response %.3f <= AC response %.3f (blind prefetch penalty missing)",
			oc.MeanResponse, ac.MeanResponse)
	}
}

// Figure 2: HC achieves hit ratios close to OC at response times close to
// AC — concretely, HC must beat AC on hits and beat OC on response.
func TestShapeHCBestOfBoth(t *testing.T) {
	ac := runG(t, core.AttributeCaching, nil)
	oc := runG(t, core.ObjectCaching, nil)
	hc := runG(t, core.HybridCaching, nil)
	if hc.HitRatio <= ac.HitRatio {
		t.Errorf("HC hit %.3f <= AC hit %.3f", hc.HitRatio, ac.HitRatio)
	}
	if hc.MeanResponse >= oc.MeanResponse {
		t.Errorf("HC response %.3f >= OC response %.3f", hc.MeanResponse, oc.MeanResponse)
	}
}

// Figure 2: the changing hot set (CSH) lowers hit ratios relative to SH.
func TestShapeCSHLowersHits(t *testing.T) {
	sh := runG(t, core.HybridCaching, nil)
	csh := runG(t, core.HybridCaching, func(c *Config) {
		c.Heat = ChangingSkewedHeat
		c.CSHChangeEvery = 300
	})
	if csh.HitRatio >= sh.HitRatio {
		t.Errorf("CSH hit %.3f >= SH hit %.3f", csh.HitRatio, sh.HitRatio)
	}
}

// Figure 3 (read-only, one client): Mean and EWMA capture more of the hot
// set than LRU on the stable SH pattern.
func TestShapeMeanEWMABestOnSH(t *testing.T) {
	run := func(pol string) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.NumClients = 1
		cfg.UpdateProb = 0
		cfg.Policy = pol
		cfg.Days = 1
		return Run(cfg)
	}
	lru := run("lru")
	mean := run("mean")
	ewma := run("ewma-0.5")
	if mean.HitRatio <= lru.HitRatio {
		t.Errorf("Mean hit %.3f <= LRU hit %.3f on SH", mean.HitRatio, lru.HitRatio)
	}
	if ewma.HitRatio <= lru.HitRatio {
		t.Errorf("EWMA hit %.3f <= LRU hit %.3f on SH", ewma.HitRatio, lru.HitRatio)
	}
}

// Figure 3 (CSH): Mean collapses when the hot set changes; EWMA adapts and
// stays ahead of Mean.
func TestShapeMeanCollapsesOnCSH(t *testing.T) {
	// Mean's failure mode needs enough hot-set epochs for its full-history
	// score to go stale: ~2 simulated days at one change per 150 queries
	// gives a dozen epochs.
	run := func(pol string) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.NumClients = 1
		cfg.UpdateProb = 0
		cfg.Heat = ChangingSkewedHeat
		cfg.CSHChangeEvery = 150
		cfg.Policy = pol
		cfg.Days = 2
		return Run(cfg)
	}
	mean := run("mean")
	ewma := run("ewma-0.5")
	if ewma.HitRatio <= mean.HitRatio {
		t.Errorf("EWMA hit %.3f <= Mean hit %.3f on CSH", ewma.HitRatio, mean.HitRatio)
	}
}

// Figure 4: write operations lower hit ratios relative to the read-only
// best case.
func TestShapeWritesLowerHits(t *testing.T) {
	run := func(u float64) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.UpdateProb = u
		return Run(cfg)
	}
	readOnly := run(0)
	writes := run(0.3)
	if writes.HitRatio >= readOnly.HitRatio {
		t.Errorf("hit ratio with U=0.3 (%.3f) >= read-only (%.3f)",
			writes.HitRatio, readOnly.HitRatio)
	}
}

// Figure 7: error rates grow with update probability U.
func TestShapeErrorsGrowWithU(t *testing.T) {
	var last float64 = -1
	for _, u := range []float64{0.1, 0.5} {
		res := runG(t, core.HybridCaching, func(c *Config) { c.UpdateProb = u })
		if res.ErrorRate <= last {
			t.Errorf("error rate at U=%g (%.4f) not above previous (%.4f)",
				u, res.ErrorRate, last)
		}
		last = res.ErrorRate
	}
}

// Figure 7: larger beta raises hit ratios and error rates together (longer
// leases serve more — and staler — local reads).
func TestShapeBetaTradeoff(t *testing.T) {
	run := func(beta float64) Result {
		return runG(t, core.HybridCaching, func(c *Config) {
			c.Beta = beta
			c.UpdateProb = 0.3
		})
	}
	lo := run(-1)
	hi := run(1)
	if hi.HitRatio <= lo.HitRatio {
		t.Errorf("beta=1 hit %.3f <= beta=-1 hit %.3f", hi.HitRatio, lo.HitRatio)
	}
	if hi.ErrorRate <= lo.ErrorRate {
		t.Errorf("beta=1 err %.4f <= beta=-1 err %.4f", hi.ErrorRate, lo.ErrorRate)
	}
}

// Figure 7: OC's whole-object invalidation produces more errors than the
// attribute-level granularities.
func TestShapeOCErrorsHighest(t *testing.T) {
	mut := func(c *Config) { c.UpdateProb = 0.3 }
	ac := runG(t, core.AttributeCaching, mut)
	oc := runG(t, core.ObjectCaching, mut)
	hc := runG(t, core.HybridCaching, mut)
	if oc.ErrorRate <= ac.ErrorRate {
		t.Errorf("OC err %.4f <= AC err %.4f", oc.ErrorRate, ac.ErrorRate)
	}
	if oc.ErrorRate <= hc.ErrorRate {
		t.Errorf("OC err %.4f <= HC err %.4f", oc.ErrorRate, hc.ErrorRate)
	}
}

// Figure 8: error rates grow with disconnection duration, and total errors
// grow with the number of disconnected clients.
func TestShapeDisconnectionErrors(t *testing.T) {
	run := func(v int, d float64) Result {
		return runG(t, core.HybridCaching, func(c *Config) {
			c.DisconnectedClients = v
			c.DisconnectHours = d
			c.UpdateProb = 0.3
		})
	}
	short := run(3, 1)
	long := run(3, 10)
	if long.ErrorRate <= short.ErrorRate {
		t.Errorf("D=10h err %.4f <= D=1h err %.4f", long.ErrorRate, short.ErrorRate)
	}
	few := run(1, 5)
	many := run(4, 5)
	if many.ErrorRate <= few.ErrorRate {
		t.Errorf("V=4 err %.4f <= V=1 err %.4f", many.ErrorRate, few.ErrorRate)
	}
}

// Disconnection also makes reads unavailable — never under full
// connectivity.
func TestShapeUnavailability(t *testing.T) {
	conn := runG(t, core.AttributeCaching, nil)
	if conn.Unavailable != 0 {
		t.Errorf("connected run had %d unavailable reads", conn.Unavailable)
	}
	disc := runG(t, core.AttributeCaching, func(c *Config) {
		c.DisconnectedClients = 3
		c.DisconnectHours = 8
	})
	if disc.Unavailable == 0 {
		t.Error("disconnected run had no unavailable reads")
	}
}

// Figure 6 (cyclic pattern, full scale): LRU-3 best, LRU worst, EWMA close
// to LRU-3 and above LRD. This needs the paper's full population and a
// 1-day horizon, so it is skipped under -short.
func TestShapeCyclicOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run; skipped with -short")
	}
	run := func(pol string) Result {
		return Run(Config{
			Seed:        7,
			Granularity: core.HybridCaching,
			QueryKind:   workload.Associative,
			Heat:        CyclicHeat,
			UpdateProb:  0.1,
			Policy:      pol,
			Days:        1,
		})
	}
	lru := run("lru")
	lru3 := run("lru-3")
	lrd := run("lrd")
	ewma := run("ewma-0.5")
	if !(lru3.HitRatio > ewma.HitRatio && ewma.HitRatio > lrd.HitRatio && lrd.HitRatio > lru.HitRatio) {
		t.Errorf("cyclic ordering violated: lru-3=%.3f ewma=%.3f lrd=%.3f lru=%.3f",
			lru3.HitRatio, ewma.HitRatio, lrd.HitRatio, lru.HitRatio)
	}
	// The paper's headline: LRU-3 outperforms LRU by ~21% relative.
	if lru3.HitRatio < 1.1*lru.HitRatio {
		t.Errorf("LRU-3 advantage too small: %.3f vs %.3f", lru3.HitRatio, lru.HitRatio)
	}
}

// Experiment machinery: reports carry one table per figure panel and
// non-empty rows.
func TestReportsWellFormed(t *testing.T) {
	base := shapeCfg()
	base.Days = 0.1
	base.NumClients = 2
	rep := Exp4Cyclic(base)
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("exp4-cyclic tables malformed: %+v", rep.Tables)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if Table1().String() == "" {
		t.Fatal("empty Table 1")
	}
}

func TestExp6QuickGrid(t *testing.T) {
	base := shapeCfg()
	base.Days = 0.1
	base.NumClients = 2
	rep := exp6(base, []float64{1, 5}, []int{1, 2})
	// 3 granularities x (2x2) runs + 4 tables (3 panels + panel d).
	if len(rep.Results) != 12 {
		t.Fatalf("%d results, want 12", len(rep.Results))
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("%d tables, want 4", len(rep.Tables))
	}
}

// The timeout heuristic (§5.3): under Bursty NQ load the downlink
// backlogs; enabling shedding drops prefetched items and improves
// response times at some hit-ratio cost.
func TestShapeTimeoutHeuristic(t *testing.T) {
	run := func(threshold float64) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.QueryKind = workload.Navigational
		cfg.Arrival = BurstyArrival
		cfg.UpdateProb = 0.1
		cfg.ShedThreshold = threshold
		cfg.Days = 1
		return Run(cfg)
	}
	off := run(0)
	on := run(5)
	if off.ItemsShed != 0 {
		t.Fatalf("heuristic disabled but %d items shed", off.ItemsShed)
	}
	if on.ItemsShed == 0 {
		t.Fatal("heuristic enabled but nothing shed under bursty NQ load")
	}
	if on.MeanResponse >= off.MeanResponse {
		t.Errorf("shedding did not improve response: %.3f vs %.3f",
			on.MeanResponse, off.MeanResponse)
	}
}

// Coherence strategies (§2's argument for pull-based leases): the
// invalidation-report baseline achieves lower error rates while everyone
// is connected (staleness bounded by the report interval), but a client
// that misses reports must drop its cache, so under disconnection leases
// keep far more reads answerable.
func TestShapeLeaseVsInvalidationReport(t *testing.T) {
	run := func(strategy coherence.Strategy, disconnected int) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.UpdateProb = 0.3
		cfg.Coherence = strategy
		cfg.DisconnectedClients = disconnected
		cfg.DisconnectHours = 6
		return Run(cfg)
	}
	// Connected: IR bounds staleness tighter than leases.
	leaseConn := run(coherence.LeaseStrategy, 0)
	irConn := run(coherence.InvalidationReportStrategy, 0)
	if irConn.ErrorRate >= leaseConn.ErrorRate {
		t.Errorf("connected: IR err %.4f >= lease err %.4f",
			irConn.ErrorRate, leaseConn.ErrorRate)
	}
	if irConn.CacheDrops != 0 {
		t.Errorf("connected IR run dropped caches %d times", irConn.CacheDrops)
	}
	// Disconnected: IR clients miss reports and must discard their caches;
	// lease clients never do. The dropped caches cost extra round trips.
	leaseDisc := run(coherence.LeaseStrategy, 4)
	irDisc := run(coherence.InvalidationReportStrategy, 4)
	if leaseDisc.CacheDrops != 0 {
		t.Errorf("lease coherence dropped caches %d times", leaseDisc.CacheDrops)
	}
	if irDisc.CacheDrops == 0 {
		t.Error("disconnected IR clients never dropped their caches")
	}
}

// All experiment generators produce well-formed reports at micro scale.
func TestAllExperimentGenerators(t *testing.T) {
	base := Config{
		Seed:       3,
		NumObjects: 200,
		NumClients: 2,
		Days:       0.05,
	}
	cases := []struct {
		name   string
		run    func() *Report
		tables int
		rows   int // rows per table
	}{
		{"exp1", func() *Report { return Exp1(base) }, 8, 4},
		{"exp2", func() *Report { return Exp2(base) }, 4, 6},
		{"exp3", func() *Report { return Exp3(base) }, 8, 6},
		{"exp4", func() *Report { return Exp4(base) }, 3, 4},
		{"exp4-cyclic", func() *Report { return Exp4Cyclic(base) }, 1, 4},
		{"exp5", func() *Report { return Exp5(base) }, 3, 9},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rep := c.run()
			if len(rep.Tables) != c.tables {
				t.Fatalf("%d tables, want %d", len(rep.Tables), c.tables)
			}
			for _, tbl := range rep.Tables {
				if len(tbl.Rows) != c.rows {
					t.Fatalf("table %q has %d rows, want %d", tbl.Title, len(tbl.Rows), c.rows)
				}
				if tbl.Title == "" || len(tbl.Header) == 0 {
					t.Fatalf("table missing title/header")
				}
			}
			for _, res := range rep.Results {
				if res.QueriesIssued == 0 {
					t.Fatalf("run %s issued no queries", res.Config)
				}
			}
			if rep.String() == "" {
				t.Fatal("empty report text")
			}
		})
	}
}

// Hourly profile: Bursty runs concentrate load in the burst hours.
func TestHourlyProfileBursty(t *testing.T) {
	cfg := shapeCfg()
	cfg.Granularity = core.HybridCaching
	cfg.Arrival = BurstyArrival
	cfg.Days = 1
	res := Run(cfg)
	burst := res.HourlyQueries[8] // inside 07:00-10:00
	quiet := res.HourlyQueries[3] // overnight
	if burst <= 5*quiet {
		t.Fatalf("burst hour %d queries vs quiet %d — no clustering", burst, quiet)
	}
	var total uint64
	for _, n := range res.HourlyQueries {
		total += n
	}
	if total != res.QueriesIssued {
		t.Fatalf("hourly counts %d != issued %d", total, res.QueriesIssued)
	}
}

// Energy (§2's motivation): OC's blind prefetching costs more radio energy
// per query than AC; HC sits in between; NC is the most expensive of all
// (it ships whole objects with almost no cache to absorb them).
func TestShapeEnergyByGranularity(t *testing.T) {
	energy := map[core.Granularity]float64{}
	for _, g := range core.Granularities() {
		energy[g] = runG(t, g, nil).RadioEnergyPerQuery
	}
	if energy[core.ObjectCaching] <= energy[core.AttributeCaching] {
		t.Errorf("OC energy %.3f <= AC energy %.3f", energy[core.ObjectCaching], energy[core.AttributeCaching])
	}
	if !(energy[core.HybridCaching] > energy[core.AttributeCaching] &&
		energy[core.HybridCaching] < energy[core.ObjectCaching]) {
		t.Errorf("HC energy %.3f not between AC %.3f and OC %.3f",
			energy[core.HybridCaching], energy[core.AttributeCaching], energy[core.ObjectCaching])
	}
	if energy[core.NoCache] <= energy[core.ObjectCaching] {
		t.Errorf("NC energy %.3f <= OC energy %.3f", energy[core.NoCache], energy[core.ObjectCaching])
	}
}

// Broadcast dissemination (§1's framing): with a shared interest pool on
// the air, covered reads move off the point-to-point channels — downlink
// load drops and common-item reads no longer depend on the pull path.
func TestShapeBroadcastOffloadsDownlink(t *testing.T) {
	run := func(broadcastAttrs int) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.UpdateProb = 0.1
		cfg.SharedHotObjects = 50
		cfg.SharedHotProb = 0.6
		cfg.BroadcastAttrs = broadcastAttrs
		return Run(cfg)
	}
	off := run(0)
	on := run(3)
	if off.BroadcastReads != 0 {
		t.Fatalf("broadcast disabled but %d reads from the air", off.BroadcastReads)
	}
	if on.BroadcastReads == 0 {
		t.Fatal("broadcast enabled but no reads from the air")
	}
	if on.DownlinkUtilization >= off.DownlinkUtilization {
		t.Errorf("downlink not offloaded: %.3f vs %.3f",
			on.DownlinkUtilization, off.DownlinkUtilization)
	}
}

// Replication: independent seeds agree closely — the paper's "very tight
// confidence intervals" observation — and the aggregation is correct.
func TestReplicateTightCIs(t *testing.T) {
	cfg := shapeCfg()
	cfg.Granularity = core.HybridCaching
	cfg.UpdateProb = 0.1
	rep := Replicate(cfg, 4)
	if rep.Replicas != 4 || len(rep.Results) != 4 {
		t.Fatalf("replicas = %d/%d", rep.Replicas, len(rep.Results))
	}
	if rep.HitRatio.Count() != 4 {
		t.Fatal("metrics not aggregated")
	}
	// 15% relative half-width is generous; the observed spread is ~2-3%.
	if !rep.TightCIs(0.15) {
		t.Errorf("CIs not tight: %s", rep)
	}
	// Seeds genuinely differ.
	if rep.Results[0].HitRatio == rep.Results[1].HitRatio {
		t.Error("different seeds produced identical hit ratios")
	}
	if rep.String() == "" {
		t.Error("empty String")
	}
}

func TestReplicateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replicate(cfg, 0) did not panic")
		}
	}()
	Replicate(shapeCfg(), 0)
}

// Belady headroom: the clairvoyant bound dominates every measured hit
// ratio for the same configuration and sits below 100%.
func TestShapeOptimalBoundDominates(t *testing.T) {
	cfg := shapeCfg()
	cfg.Granularity = core.HybridCaching
	cfg.UpdateProb = 0 // the bound ignores coherence; compare read-only
	bound := OptimalBound(cfg)
	if bound <= 0 || bound >= 1 {
		t.Fatalf("bound = %v", bound)
	}
	for _, pol := range []string{"lru", "ewma-0.5", "mean", "mru"} {
		run := cfg
		run.Policy = pol
		res := Run(run)
		if res.HitRatio > bound {
			t.Errorf("%s hit %.3f exceeds clairvoyant bound %.3f", pol, res.HitRatio, bound)
		}
	}
}

func TestOptimalBoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OptimalBound under NC did not panic")
		}
	}()
	cfg := shapeCfg()
	cfg.Granularity = core.NoCache
	OptimalBound(cfg)
}

// The invalidation-report broadcaster charges the shared downlink for its
// reports: with updates flowing, IR runs ship strictly more downlink
// messages than lease runs of the same workload.
func TestIRBroadcasterUsesDownlink(t *testing.T) {
	run := func(strategy coherence.Strategy) Result {
		cfg := shapeCfg()
		cfg.Granularity = core.HybridCaching
		cfg.UpdateProb = 0.3
		cfg.Coherence = strategy
		cfg.ReportInterval = 120
		return Run(cfg)
	}
	lease := run(coherence.LeaseStrategy)
	ir := run(coherence.InvalidationReportStrategy)
	// Same query load; the reports are extra downlink traffic. Utilization
	// may shift either way (IR clients refetch less), so compare message
	// counts via the server-side stats proxy: total queries are equal, so
	// any large downlink delta comes from reports.
	if ir.QueriesIssued == 0 || lease.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	if ir.CacheDrops != 0 {
		t.Fatalf("connected IR run dropped caches %d times", ir.CacheDrops)
	}
	if ir.ErrorRate >= lease.ErrorRate {
		t.Errorf("IR err %.4f >= lease err %.4f with 120s reports", ir.ErrorRate, lease.ErrorRate)
	}
}
