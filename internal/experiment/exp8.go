package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// exp8DefaultDays is the fleet sweep's horizon when the base config leaves
// Days unset: a quarter day keeps the 1,000-client points tractable while
// still pushing every cache well past warm-up.
const exp8DefaultDays = 0.25

// Exp8 — beyond the paper: fleet scaling (ROADMAP north star). Three
// panels, all on the fleet engine (RunFleet):
//
//  1. fleet size × cell count at the paper's best configuration (HC,
//     EWMA-0.5, SH, U=0.1) — how error rate, response time, backbone
//     traffic, and event volume move as one cell's 10 clients become a
//     partitioned 1,000-client fleet;
//  2. caching granularity at full fleet scale (largest fleet, most cells)
//     — whether Figure 2's ordering survives partitioning;
//  3. the contact servers' relay cache on and off — what cell-local
//     caching of remote partitions saves in backbone bytes.
//
// Fleet runs execute sequentially; each one spreads its cells over the
// worker pool, and the cell-order merge keeps every table byte-identical
// at any -parallel. Wall-clock throughput (events/sec) is intentionally
// not a table column — it is environment fact, reported by mcsim from the
// deterministic Result.Events and the measured wall time.
func Exp8(base Config) *Report {
	return exp8(base,
		[]int{10, 100, 1000},
		[]int{1, 2, 4, 8},
		true)
}

// Exp8Quick runs a sparser fleet grid (100 clients, 4 cells at most, no
// relay panel) for time-constrained sweeps and the CI smoke.
func Exp8Quick(base Config) *Report {
	return exp8(base,
		[]int{10, 100},
		[]int{1, 4},
		false)
}

func exp8(base Config, fleets, cellCounts []int, relayPanel bool) *Report {
	rep := &Report{Name: "exp8"}
	if base.Days == 0 {
		base.Days = exp8DefaultDays
	}
	prep := func(c *Config) {
		c.Granularity = core.HybridCaching
		c.QueryKind = workload.Associative
		if c.UpdateProb == 0 {
			c.UpdateProb = 0.1
		}
	}
	run := func(cfg Config) Result {
		res := RunFleet(cfg)
		rep.Results = append(rep.Results, res)
		return res
	}
	mb := func(bytes uint64) string { return fmt.Sprintf("%.4g", float64(bytes)/1e6) }
	millions := func(n uint64) string { return fmt.Sprintf("%.4g", float64(n)/1e6) }

	// Panel 1: fleet size × cell count.
	tbl := NewTable("Experiment #8 — fleet scaling (HC, EWMA-0.5, SH)",
		"clients", "cells", "hit %", "resp (s)", "err %", "backbone MB", "events (M)")
	rep.Tables = append(rep.Tables, tbl)
	for _, fleet := range fleets {
		for _, cells := range cellCounts {
			if cells > fleet {
				continue
			}
			fleet, cells := fleet, cells
			cfg := merge(base, func(c *Config) {
				prep(c)
				c.Label = fmt.Sprintf("exp8/fleet=%d/cells=%d", fleet, cells)
				c.NumClients = fleet
				c.Cells = cells
			})
			res := run(cfg)
			tbl.Add(fmt.Sprint(fleet), fmt.Sprint(cells),
				pct(res.HitRatio), secs(res.MeanResponse), pct(res.ErrorRate),
				mb(res.BackboneBytes), millions(res.Events))
		}
	}

	// Panel 2: granularity at full fleet scale.
	maxFleet := fleets[len(fleets)-1]
	maxCells := cellCounts[len(cellCounts)-1]
	tblG := NewTable(
		fmt.Sprintf("Experiment #8 — granularity at fleet scale (%d clients, %d cells)",
			maxFleet, maxCells),
		"g", "hit %", "resp (s)", "err %", "backbone MB")
	rep.Tables = append(rep.Tables, tblG)
	for _, g := range core.Granularities() {
		g := g
		cfg := merge(base, func(c *Config) {
			prep(c)
			c.Label = fmt.Sprintf("exp8/%s/fleet=%d/cells=%d", g, maxFleet, maxCells)
			c.Granularity = g
			c.NumClients = maxFleet
			c.Cells = maxCells
		})
		res := run(cfg)
		tblG.Add(g.String(), pct(res.HitRatio), secs(res.MeanResponse),
			pct(res.ErrorRate), mb(res.BackboneBytes))
	}

	// Panel 3: the contact servers' relay cache on and off.
	if relayPanel {
		tblR := NewTable(
			fmt.Sprintf("Experiment #8 — relay cache (%d clients, %d cells, HC)",
				maxFleet, maxCells),
			"relay objs", "resp (s)", "backbone MB", "relay hit %")
		rep.Tables = append(rep.Tables, tblR)
		for _, relay := range []int{0, 200} {
			relay := relay
			cfg := merge(base, func(c *Config) {
				prep(c)
				c.Label = fmt.Sprintf("exp8/relay=%d", relay)
				c.NumClients = maxFleet
				c.Cells = maxCells
				c.RelayObjects = relay
			})
			res := run(cfg)
			hitPct := "-"
			if probes := res.RelayHits + res.RelayMisses; probes > 0 {
				hitPct = pct(float64(res.RelayHits) / float64(probes))
			}
			tblR.Add(fmt.Sprint(relay), secs(res.MeanResponse),
				mb(res.BackboneBytes), hitPct)
		}
	}
	return rep
}
