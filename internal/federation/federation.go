// Package federation implements the first extension the paper's
// conclusion sketches (§6): "a mobile client might request items from
// multiple servers, possibly under different cells ... the contact server
// for a client might have to request and even cache items from other
// remote servers on behalf of the client."
//
// The database is range-partitioned across M server nodes. Every mobile
// client talks (over its cell's wireless channels) only to its cell's
// *contact server*; reads that land on another node's partition are
// relayed over a fixed backbone network, and the contact server can keep a
// lease-respecting *relay cache* of remote items so repeated remote reads
// are served within the cell.
package federation

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Backbone defaults: a fixed inter-server network is orders of magnitude
// faster than the 19.2 Kbps wireless links but not free.
const (
	// DefaultBackboneBandwidthBps is the inter-server link bandwidth.
	DefaultBackboneBandwidthBps = 10e6
	// DefaultBackboneLatency is the per-message propagation delay in
	// seconds between two server nodes.
	DefaultBackboneLatency = 0.005
)

// Config parameterizes a federation of database servers.
type Config struct {
	Kernel *sim.Kernel
	// DB is the global object space; ownership is range-partitioned
	// across NumServers nodes.
	DB         *oodb.Database
	NumServers int
	// Per-node server parameters (see server.Config). BufferObjects is
	// per node; zero derives 25% of the node's partition.
	BufferObjects int
	Beta          float64
	UpdateProb    float64
	PrefetchKappa float64
	Seed          uint64
	// RelayCacheObjects enables the contact servers' relay caches when
	// positive: each node may cache that many objects' worth of remote
	// items (with the owners' leases).
	RelayCacheObjects int
	// Backbone link parameters; zero selects the defaults above.
	BackboneBandwidthBps float64
	BackboneLatency      float64
}

// Cluster is a set of federated server nodes over one partitioned
// database.
type Cluster struct {
	kernel   *sim.Kernel
	db       *oodb.Database
	nodes    []*node
	latency  float64
	oracle   *coherence.Oracle
	relayCap int
}

// node is one server plus its backbone links and optional relay cache.
type node struct {
	id    int
	srv   *server.Server
	links []*network.Channel // links[j]: node -> node j (nil for self)
	relay *core.Cache        // nil when relay caching is disabled

	relayHits   uint64
	relayMisses uint64
	relayed     uint64 // reads forwarded to remote owners
}

// New builds a cluster. Each node gets its own disk, memory buffer,
// refresh estimators, and attribute-heat tracking (via server.New over the
// shared object space); backbone links are dedicated per ordered node
// pair.
func New(cfg Config) *Cluster {
	if cfg.Kernel == nil || cfg.DB == nil {
		panic("federation: Config requires Kernel and DB")
	}
	if cfg.NumServers < 1 {
		panic("federation: NumServers must be >= 1")
	}
	bw := cfg.BackboneBandwidthBps
	if bw == 0 {
		bw = DefaultBackboneBandwidthBps
	}
	lat := cfg.BackboneLatency
	if lat == 0 {
		lat = DefaultBackboneLatency
	}
	bufObjs := cfg.BufferObjects
	if bufObjs == 0 {
		bufObjs = cfg.DB.NumObjects() / cfg.NumServers / 4
		if bufObjs < 1 {
			bufObjs = 1
		}
	}
	c := &Cluster{
		kernel:   cfg.Kernel,
		db:       cfg.DB,
		latency:  lat,
		oracle:   coherence.NewOracle(cfg.DB),
		relayCap: cfg.RelayCacheObjects,
	}
	for i := 0; i < cfg.NumServers; i++ {
		n := &node{
			id: i,
			srv: server.New(server.Config{
				Kernel:        cfg.Kernel,
				DB:            cfg.DB,
				BufferObjects: bufObjs,
				Beta:          cfg.Beta,
				UpdateProb:    cfg.UpdateProb,
				PrefetchKappa: cfg.PrefetchKappa,
				Seed:          cfg.Seed + uint64(i)*0x9e37,
			}),
			links: make([]*network.Channel, cfg.NumServers),
		}
		if cfg.RelayCacheObjects > 0 {
			n.relay = core.NewCache(
				cfg.RelayCacheObjects*core.ItemCost(oodb.ObjectItem(0)),
				replacement.NewLRU())
		}
		c.nodes = append(c.nodes, n)
	}
	for i := range c.nodes {
		for j := range c.nodes {
			if i == j {
				continue
			}
			c.nodes[i].links[j] = network.NewChannel(cfg.Kernel,
				fmt.Sprintf("backbone-%d-%d", i, j), bw)
		}
	}
	return c
}

// NumServers returns the cluster size.
func (c *Cluster) NumServers() int { return len(c.nodes) }

// Owner returns the node owning oid (range partition).
func (c *Cluster) Owner(oid oodb.OID) int {
	return int(oid) * len(c.nodes) / c.db.NumObjects()
}

// Node exposes node i's underlying server (diagnostics and tests).
func (c *Cluster) Node(i int) *server.Server { return c.nodes[i].srv }

// Contact returns the contact-server backend for cell i; mobile clients in
// that cell plug it into client.Config.Server.
func (c *Cluster) Contact(i int) *ContactServer {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("federation: no cell %d in a %d-node cluster", i, len(c.nodes)))
	}
	return &ContactServer{cluster: c, home: c.nodes[i]}
}

// RelayStats reports node i's relay-cache effectiveness.
func (c *Cluster) RelayStats(i int) (hits, misses, relayedReads uint64) {
	n := c.nodes[i]
	return n.relayHits, n.relayMisses, n.relayed
}

// BackboneTraffic sums the payload shipped over every inter-node backbone
// link: total bytes and messages, both directions.
func (c *Cluster) BackboneTraffic() (bytes, messages uint64) {
	for _, n := range c.nodes {
		for _, link := range n.links {
			if link == nil {
				continue
			}
			bytes += link.BytesSent()
			messages += link.Messages()
		}
	}
	return bytes, messages
}

// RelayTotals sums the relay-cache counters across every node: cell-local
// hits, misses, and reads forwarded to remote owners.
func (c *Cluster) RelayTotals() (hits, misses, relayedReads uint64) {
	for _, n := range c.nodes {
		hits += n.relayHits
		misses += n.relayMisses
		relayedReads += n.relayed
	}
	return hits, misses, relayedReads
}

// Register wires the cluster's backbone and relay caches into an
// observability registry under the given series prefix: cumulative
// backbone bytes/messages, the mean utilization across all inter-node
// links, and the pooled relay-cache counters. No-op when reg is disabled;
// the relay/backbone hot paths carry no instrument calls, so a
// disabled-registry cluster is cost-free.
func (c *Cluster) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".bytes", func() float64 {
		b, _ := c.BackboneTraffic()
		return float64(b)
	})
	reg.Gauge(prefix+".messages", func() float64 {
		_, m := c.BackboneTraffic()
		return float64(m)
	})
	reg.Gauge(prefix+".utilization", func() float64 {
		var sum float64
		var links int
		for _, n := range c.nodes {
			for _, link := range n.links {
				if link == nil {
					continue
				}
				sum += link.Utilization()
				links++
			}
		}
		if links == 0 {
			return 0
		}
		return sum / float64(links)
	})
	reg.Gauge(prefix+".relay_hits", func() float64 {
		h, _, _ := c.RelayTotals()
		return float64(h)
	})
	reg.Gauge(prefix+".relay_misses", func() float64 {
		_, m, _ := c.RelayTotals()
		return float64(m)
	})
	reg.Gauge(prefix+".relayed_reads", func() float64 {
		_, _, r := c.RelayTotals()
		return float64(r)
	})
}

// ContactServer is the client-facing backend of one cell: it serves its
// own partition directly and relays (or relay-caches) the rest.
type ContactServer struct {
	cluster *Cluster
	home    *node
}

var _ interface {
	Process(p *sim.Proc, req server.Request) server.Reply
	Oracle() *coherence.Oracle
	NewCall() server.RequestCall
} = (*ContactServer)(nil)

// Oracle exposes the global perfect-knowledge oracle.
func (cs *ContactServer) Oracle() *coherence.Oracle { return cs.cluster.oracle }

// Process serves one client request: the home partition locally, remote
// partitions through the relay cache and backbone.
func (cs *ContactServer) Process(p *sim.Proc, req server.Request) server.Reply {
	c := cs.cluster
	if len(c.nodes) == 1 {
		return cs.home.srv.Process(p, req)
	}

	// Split the request by owning node.
	type part struct {
		accesses []workload.ReadOp
		need     []workload.ReadOp
	}
	parts := make([]part, len(c.nodes))
	for _, rd := range req.Accesses {
		o := c.Owner(rd.OID)
		parts[o].accesses = append(parts[o].accesses, rd)
	}
	for _, rd := range req.Need {
		o := c.Owner(rd.OID)
		parts[o].need = append(parts[o].need, rd)
	}

	var out server.Reply

	// Home partition: evaluated exactly as the single-server system.
	homeReq := req
	homeReq.Accesses = parts[cs.home.id].accesses
	homeReq.Need = parts[cs.home.id].need
	if len(homeReq.Accesses) > 0 || len(homeReq.Need) > 0 {
		rep := cs.home.srv.Process(p, homeReq)
		out.Items = append(out.Items, rep.Items...)
	}

	// Remote partitions, in node order (determinism).
	for o := range parts {
		if o == cs.home.id {
			continue
		}
		pt := parts[o]
		if len(pt.accesses) == 0 && len(pt.need) == 0 {
			continue
		}
		out.Items = append(out.Items, cs.processRemote(p, req, o, pt.accesses, pt.need)...)
	}
	return out
}

// processRemote serves the portion of a request owned by remote node o.
func (cs *ContactServer) processRemote(p *sim.Proc, req server.Request, o int,
	accesses, need []workload.ReadOp) []server.ReplyItem {

	c := cs.cluster
	home, remote := cs.home, c.nodes[o]
	now := p.Now()

	// Relay cache: serve valid remote copies from the cell, forwarding
	// only the rest. Prefetch decisions stay with the owner, so the relay
	// only answers exact reads.
	var served []server.ReplyItem
	forward := need
	if home.relay != nil {
		forward = need[:0:0]
		for _, rd := range need {
			it := core.CoverItem(req.Granularity, rd.OID, rd.Attr)
			if e, st := home.relay.Lookup(it, now); st == core.Hit {
				home.relayHits++
				served = append(served, server.ReplyItem{
					Item:    it,
					Version: e.Version,
					Refresh: e.ExpiresAt - now,
				})
				continue
			}
			home.relayMisses++
			forward = append(forward, rd)
		}
	}

	// The owner must still see every access for its update model and heat
	// tracking, even when the relay answered the reads.
	home.relayed += uint64(len(forward))
	link, back := home.links[o], remote.links[cs.home.id]

	// Relay request over the backbone.
	p.Hold(c.latency)
	link.Send(p, network.RequestSize(len(accesses)-len(forward)))
	remoteReq := req
	remoteReq.Accesses = accesses
	remoteReq.Need = forward
	rep := remote.srv.Process(p, remoteReq)
	p.Hold(c.latency)
	back.Send(p, rep.WireSize())

	// Fill the relay cache with what came back (leases included).
	if home.relay != nil && len(rep.Items) > 0 {
		batch := make([]core.BatchEntry, 0, len(rep.Items))
		for _, item := range rep.Items {
			batch = append(batch, core.BatchEntry{
				Item: item.Item,
				Entry: core.Entry{
					Version:   item.Version,
					ExpiresAt: p.Now() + item.Refresh,
					FetchedAt: p.Now(),
				},
			})
		}
		home.relay.InsertBatch(batch, p.Now())
	}
	return append(served, rep.Items...)
}
