// compact.go is the garbage collector of the segment log: superseded and
// tombstoned records accumulate in sealed segments until a merge rewrites
// the live ones into a single merge segment and deletes the rest.
//
// Correctness hinges on recovery order: segments replay in ID order and
// later records win. The merge output takes the *lowest* sealed segment's
// ID, so every record written after the snapshot (they all live in the
// active segment, whose ID is higher) still supersedes the merged copies
// on replay. Keys updated or deleted mid-merge are detected at swap time
// by comparing index entries, so the merge never resurrects stale data.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// maybeCompact kicks background compaction when sealed garbage crosses the
// configured thresholds. Single-flight: at most one compactor runs.
func (s *Store) maybeCompact() {
	if s.opts.CompactGarbage < 0 {
		return
	}
	s.mu.Lock()
	garbage := s.sealedBytes - s.sealedLive
	trigger := !s.compacting && !s.closed &&
		garbage >= s.opts.CompactMinBytes &&
		s.sealedBytes > 0 &&
		float64(garbage) >= s.opts.CompactGarbage*float64(s.sealedBytes)
	if trigger {
		s.compacting = true
		s.compactWG.Add(1)
	}
	s.mu.Unlock()
	if trigger {
		go func() {
			defer s.compactWG.Done()
			s.compact()
			s.mu.Lock()
			s.compacting = false
			s.mu.Unlock()
		}()
	}
}

// Compact synchronously merges all sealed segments, rewriting live records
// and deleting superseded ones. Safe to call concurrently with reads and
// writes; concurrent updates simply make the merged copy garbage for the
// next round.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.compacting {
		s.mu.Unlock()
		s.compactWG.Wait()
		return nil
	}
	s.compacting = true
	s.compactWG.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
		s.compactWG.Done()
	}()
	return s.compact()
}

// mergeItem is one record the compactor carries from a sealed segment to
// the merge output.
type mergeItem struct {
	key   string
	old   indexEntry
	moved indexEntry
}

// compact performs one merge pass. See the file comment for the ordering
// argument.
func (s *Store) compact() error {
	// Snapshot: sealed segment set and the live entries residing in it.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	activeID := s.active.id
	sealed := make(map[int]*segment)
	minID := activeID
	for id, seg := range s.segs {
		if id != activeID {
			sealed[id] = seg
			if id < minID {
				minID = id
			}
		}
	}
	var items []mergeItem
	for key, e := range s.index {
		if _, ok := sealed[e.seg]; ok {
			items = append(items, mergeItem{key: key, old: e})
		}
	}
	s.mu.Unlock()
	if len(sealed) == 0 {
		return nil
	}

	// Rewrite live records into a temp file. Sealed records are immutable
	// and their read handles stay open (Close waits on compactWG), so
	// reading without the lock is safe.
	var mergePath string
	var mergeSize int64
	if len(items) > 0 {
		tmp, err := os.CreateTemp(s.opts.Path, "merge-*.tmp")
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		mergePath = tmp.Name()
		var off int64
		ok := false
		defer func() {
			if !ok {
				os.Remove(mergePath)
			}
		}()
		for i := range items {
			it := &items[i]
			buf := make([]byte, it.old.size)
			if _, err := sealed[it.old.seg].r.ReadAt(buf, it.old.off); err != nil {
				tmp.Close()
				return fmt.Errorf("storage: %w", err)
			}
			if _, _, _, err := decodeRecord(buf); err != nil {
				tmp.Close()
				return err
			}
			if _, err := tmp.Write(buf); err != nil {
				tmp.Close()
				return fmt.Errorf("storage: %w", err)
			}
			it.moved = indexEntry{seg: minID, off: off, size: it.old.size,
				keyLen: it.old.keyLen, valLen: it.old.valLen}
			off += it.old.size
		}
		if s.opts.Sync != SyncNone {
			if err := s.opts.Fsync(tmp); err != nil {
				tmp.Close()
				return fmt.Errorf("storage: fsync: %w", err)
			}
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		mergeSize = off
		ok = true
	}

	// Swap: under the write lock, retire the sealed files and install the
	// merge segment. Entries that changed since the snapshot keep their
	// newer location; their merged copies become garbage for next time.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if mergePath != "" {
			os.Remove(mergePath)
		}
		return ErrClosed
	}
	for id, seg := range sealed {
		if seg.r != nil {
			seg.r.Close()
		}
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		delete(s.segs, id)
	}
	if mergePath != "" {
		dst := s.segPath(minID)
		if err := os.Rename(mergePath, dst); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		r, err := os.Open(dst)
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		s.segs[minID] = &segment{id: minID, path: dst, r: r, size: mergeSize}
		for _, it := range items {
			if cur, okc := s.index[it.key]; okc && cur == it.old {
				s.index[it.key] = it.moved
			}
		}
	}
	if err := s.syncDirLocked(); err != nil {
		return err
	}
	s.recomputeSealed()
	s.compactions++
	return nil
}

// syncDirLocked fsyncs the storage directory so segment creation and
// removal are durable (skipped under SyncNone). Caller holds mu.
func (s *Store) syncDirLocked() error {
	if s.opts.Sync == SyncNone {
		return nil
	}
	d, err := os.Open(s.opts.Path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// RemoveAll deletes the store's directory tree — test and tooling helper
// for resetting a path between runs. The store must be closed.
func RemoveAll(path string) error {
	if path == "" || path == string(filepath.Separator) {
		return fmt.Errorf("%w: refusing to remove %q", ErrBadOptions, path)
	}
	return os.RemoveAll(path)
}
