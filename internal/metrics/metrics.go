// Package metrics collects the three performance metrics of §5 — average
// cache hit ratio, average response time, and error rate — plus supporting
// counters, per client and aggregated across clients.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/stats"
)

// hoursPerDay buckets the time-of-day profile.
const hoursPerDay = 24

// secondsPerHour converts simulation time to day buckets.
const secondsPerHour = 3600.0

// Client accumulates one mobile client's measurements. Observations before
// the warm-up horizon are discarded so steady-state numbers are not skewed
// by the initially cold cache (set Warmup to 0 to keep everything, as the
// paper's 4-day averages effectively do).
type Client struct {
	Warmup float64

	hits    stats.Ratio // local accesses satisfied by an unexpired item
	errors  stats.Ratio // reads that violated coherence (oracle-checked)
	resp    stats.Welford
	respRaw stats.Summary

	queriesIssued       uint64
	queriesLocal        uint64 // fully served from cache
	queriesRemote       uint64 // required a round trip
	queriesDisconnected uint64 // issued while disconnected
	readsUnavailable    uint64 // reads unsatisfiable during disconnection

	// Reliability-layer counters (unreliable channels, DESIGN.md §9).
	retries       uint64 // retransmissions issued
	timeouts      uint64 // request attempts that ended in a timeout
	degradedReads uint64 // reads served from stale copies after retry exhaustion

	hourly [hoursPerDay]stats.Welford // response times by hour of day
}

// RecordAccess records one attribute read: hit says whether it was served
// by a locally valid (unexpired) item.
func (c *Client) RecordAccess(now float64, hit bool) {
	if now < c.Warmup {
		return
	}
	c.hits.Add(hit)
}

// RecordError records whether a read violated coherence. Every read gets a
// call so the error denominator is total reads, matching §5's "percentage
// of read errors the clients encountered".
func (c *Client) RecordError(now float64, isError bool) {
	if now < c.Warmup {
		return
	}
	c.errors.Add(isError)
}

// RecordUnavailable counts a read that could not be satisfied at all
// (disconnected, not cached).
func (c *Client) RecordUnavailable(now float64) {
	if now < c.Warmup {
		return
	}
	c.readsUnavailable++
}

// RecordRetry counts one retransmission issued by the reliability layer.
func (c *Client) RecordRetry(now float64) {
	if now < c.Warmup {
		return
	}
	c.retries++
}

// RecordTimeout counts one request attempt that ended in a timeout.
func (c *Client) RecordTimeout(now float64) {
	if now < c.Warmup {
		return
	}
	c.timeouts++
}

// RecordDegraded counts one read served from a stale cached copy after the
// reliability layer exhausted its retries.
func (c *Client) RecordDegraded(now float64) {
	if now < c.Warmup {
		return
	}
	c.degradedReads++
}

// RecordQuery records one completed query.
func (c *Client) RecordQuery(issuedAt, completedAt float64, remote, disconnected bool) {
	if issuedAt < c.Warmup {
		return
	}
	c.queriesIssued++
	if remote {
		c.queriesRemote++
	} else {
		c.queriesLocal++
	}
	if disconnected {
		c.queriesDisconnected++
	}
	rt := completedAt - issuedAt
	c.resp.Add(rt)
	c.respRaw.Add(rt)
	hour := int(math.Mod(issuedAt/secondsPerHour, hoursPerDay))
	if hour >= 0 && hour < hoursPerDay {
		c.hourly[hour].Add(rt)
	}
}

// HourlyResponse returns the mean response time and query count for each
// hour of the simulated day — the profile that exposes the Bursty
// pattern's downlink backlog.
func (c *Client) HourlyResponse() (mean [24]float64, count [24]uint64) {
	for h := range c.hourly {
		mean[h] = c.hourly[h].Mean()
		count[h] = c.hourly[h].Count()
	}
	return mean, count
}

// HitRatio returns the fraction of reads served by locally valid items.
func (c *Client) HitRatio() float64 { return c.hits.Value() }

// ErrorRate returns the fraction of reads that violated coherence.
func (c *Client) ErrorRate() float64 { return c.errors.Value() }

// MeanResponse returns the mean query response time in seconds.
func (c *Client) MeanResponse() float64 { return c.resp.Mean() }

// ResponseSummary exposes the full response-time distribution.
func (c *Client) ResponseSummary() *stats.Summary { return &c.respRaw }

// Queries returns (issued, local, remote, disconnected) query counts.
func (c *Client) Queries() (issued, local, remote, disconnected uint64) {
	return c.queriesIssued, c.queriesLocal, c.queriesRemote, c.queriesDisconnected
}

// Unavailable returns the number of unsatisfiable reads.
func (c *Client) Unavailable() uint64 { return c.readsUnavailable }

// Retries returns the retransmissions issued by the reliability layer.
func (c *Client) Retries() uint64 { return c.retries }

// Timeouts returns the request attempts that ended in a timeout.
func (c *Client) Timeouts() uint64 { return c.timeouts }

// DegradedReads returns the reads served from stale copies after retry
// exhaustion.
func (c *Client) DegradedReads() uint64 { return c.degradedReads }

// Accesses returns the total number of recorded reads.
func (c *Client) Accesses() uint64 { return c.hits.Denom }

// Errors returns the absolute number of erroneous reads.
func (c *Client) Errors() uint64 { return c.errors.Num }

// Register wires the client's running metrics into an observability
// registry under the given series prefix. Sampled over virtual time these
// become the convergence curves a report plots: the hit ratio climbing as
// the cache warms, the error rate settling, the reliability-layer counters
// accumulating. No-op on a disabled registry.
func (c *Client) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".hit_ratio", c.HitRatio)
	reg.Gauge(prefix+".error_rate", c.ErrorRate)
	reg.Gauge(prefix+".mean_response_s", c.MeanResponse)
	reg.Gauge(prefix+".accesses", func() float64 { return float64(c.Accesses()) })
	reg.Gauge(prefix+".retries", func() float64 { return float64(c.retries) })
	reg.Gauge(prefix+".timeouts", func() float64 { return float64(c.timeouts) })
	reg.Gauge(prefix+".degraded_reads", func() float64 { return float64(c.degradedReads) })
}

// Aggregate is the across-clients average the paper reports.
type Aggregate struct {
	Hits    stats.Ratio
	Errs    stats.Ratio
	Resp    stats.Welford
	Issued  uint64
	Local   uint64
	Remote  uint64
	Unavail uint64

	Retries  uint64
	Timeouts uint64
	Degraded uint64

	hourly [hoursPerDay]stats.Welford
}

// Merge folds one client's measurements into the aggregate.
func (a *Aggregate) Merge(c *Client) {
	a.Hits.Merge(c.hits)
	a.Errs.Merge(c.errors)
	a.Resp.Merge(&c.resp)
	a.Issued += c.queriesIssued
	a.Local += c.queriesLocal
	a.Remote += c.queriesRemote
	a.Unavail += c.readsUnavailable
	a.Retries += c.retries
	a.Timeouts += c.timeouts
	a.Degraded += c.degradedReads
	for h := range c.hourly {
		a.hourly[h].Merge(&c.hourly[h])
	}
}

// HourlyResponse returns the pooled mean response time and query count per
// hour of day.
func (a *Aggregate) HourlyResponse() (mean [24]float64, count [24]uint64) {
	for h := range a.hourly {
		mean[h] = a.hourly[h].Mean()
		count[h] = a.hourly[h].Count()
	}
	return mean, count
}

// HitRatio returns the pooled hit ratio across clients.
func (a *Aggregate) HitRatio() float64 { return a.Hits.Value() }

// ErrorRate returns the pooled error rate across clients.
func (a *Aggregate) ErrorRate() float64 { return a.Errs.Value() }

// MeanResponse returns the pooled mean response time.
func (a *Aggregate) MeanResponse() float64 { return a.Resp.Mean() }

// String formats the aggregate as a table-ready fragment.
func (a *Aggregate) String() string {
	return fmt.Sprintf("hit=%.1f%% resp=%.3fs err=%.2f%% queries=%d",
		100*a.HitRatio(), a.MeanResponse(), 100*a.ErrorRate(), a.Issued)
}
