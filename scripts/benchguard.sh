#!/usr/bin/env bash
# benchguard.sh — CI gate against kernel hot-path regressions.
#
# Re-runs the steady-state per-event kernel benchmarks (the KernelHoldLoop
# class: tight hold loops and resource contention on both execution
# engines) and compares each against the ns_per_op recorded in the
# committed BENCH_kernel.json. A bench running more than REGRESSION_FACTOR
# (default 2.0) times slower than its committed baseline fails the build.
#
# The factor is deliberately loose: CI machines differ from the machine
# that recorded the baseline, and these benches are single-digit
# microseconds. The gate exists to catch accidental O(n) work or
# allocation on the per-event path — 10x-class regressions — not 20%
# drift. Benches without a committed baseline are reported and skipped, so
# adding a benchmark does not require updating the JSON in the same
# commit.
#
# Environment knobs:
#   REGRESSION_FACTOR  failure threshold vs baseline   (default 2.0)
#   BENCH_TIME         go -benchtime                   (default 200x)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_kernel.json"
FACTOR="${REGRESSION_FACTOR:-2.0}"
BENCH_TIME="${BENCH_TIME:-200x}"
GUARD='^BenchmarkKernel(StateMachine)?(HoldLoop|ResourceContention|ManyMachines)$'

[ -f "$BASELINE" ] || { echo "benchguard: $BASELINE missing; run scripts/bench.sh first" >&2; exit 1; }

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$GUARD" -benchtime "$BENCH_TIME" ./internal/sim | tee "$raw"

awk -v factor="$FACTOR" -v baseline="$BASELINE" '
# Pass 1: committed baselines — lines like {"name": "KernelHoldLoop", ..., "ns_per_op": 560.5, ...}
FILENAME == baseline && /"name"/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    ns = $0;   sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
    base[name] = ns + 0
    next
}
# Pass 2: fresh run — "BenchmarkKernelHoldLoop-8   200   571.2 ns/op ..."
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    fresh = $3 + 0
    checked++
    if (!(name in base)) {
        printf("benchguard: %-45s %12.1f ns/op  (no baseline, skipped)\n", name, fresh)
        next
    }
    ratio = base[name] > 0 ? fresh / base[name] : 0
    verdict = ratio > factor ? "FAIL" : "ok"
    printf("benchguard: %-45s %12.1f ns/op  baseline %12.1f  ratio %.2fx  %s\n",
           name, fresh, base[name], ratio, verdict)
    if (ratio > factor) failures++
}
END {
    if (checked == 0) { print "benchguard: no benchmarks ran" > "/dev/stderr"; exit 1 }
    if (failures > 0) {
        printf("benchguard: %d benchmark(s) regressed beyond %.1fx of %s\n",
               failures, factor, baseline) > "/dev/stderr"
        exit 1
    }
    printf("benchguard: %d benchmark(s) within %.1fx of committed baselines\n", checked, factor)
}' "$BASELINE" "$raw"
