package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-bucket frequency count with optional logarithmic
// bucket edges — log buckets suit response times, whose interesting
// structure spans milliseconds (cache hits) to minutes (downlink backlog).
type Histogram struct {
	lo, hi  float64
	log     bool
	buckets []uint64
	under   uint64
	over    uint64
	count   uint64
}

// NewHistogram returns a linear histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("stats: histogram needs n >= 1 and hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, n)}
}

// NewLogHistogram returns a histogram over [lo, hi) with n
// logarithmically spaced buckets; lo must be positive.
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo || lo <= 0 {
		panic("stats: log histogram needs n >= 1 and hi > lo > 0")
	}
	return &Histogram{lo: lo, hi: hi, log: true, buckets: make([]uint64, n)}
}

// Add counts one observation. Values outside [lo, hi) land in the
// under/overflow counters.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		h.buckets[h.bucketOf(x)]++
	}
}

func (h *Histogram) bucketOf(x float64) int {
	n := len(h.buckets)
	var frac float64
	if h.log {
		frac = math.Log(x/h.lo) / math.Log(h.hi/h.lo)
	} else {
		frac = (x - h.lo) / (h.hi - h.lo)
	}
	i := int(frac * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// BucketBounds returns the [lo, hi) edges of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	n := len(h.buckets)
	if i < 0 || i >= n {
		panic("stats: bucket index out of range")
	}
	edge := func(k int) float64 {
		frac := float64(k) / float64(n)
		if h.log {
			return h.lo * math.Pow(h.hi/h.lo, frac)
		}
		return h.lo + frac*(h.hi-h.lo)
	}
	return edge(i), edge(i + 1)
}

// Count returns the total number of observations (including out of range).
func (h *Histogram) Count() uint64 { return h.count }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() uint64 { return h.under }

// Overflow returns the count of observations at or above hi.
func (h *Histogram) Overflow() uint64 { return h.over }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Render writes an ASCII bar chart, one line per bucket, bars scaled to
// width characters at the modal bucket. Empty edge buckets are trimmed.
func (h *Histogram) Render(w io.Writer, width int) {
	if width < 1 {
		width = 40
	}
	var max uint64
	first, last := -1, -1
	for i, c := range h.buckets {
		if c > max {
			max = c
		}
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if h.under > 0 {
		fmt.Fprintf(w, "%14s  %7d\n", fmt.Sprintf("< %.3g", h.lo), h.under)
	}
	if first >= 0 {
		for i := first; i <= last; i++ {
			lo, hi := h.BucketBounds(i)
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", int(float64(width)*float64(h.buckets[i])/float64(max)))
			}
			fmt.Fprintf(w, "%6.3g-%-7.3g  %7d %s\n", lo, hi, h.buckets[i], bar)
		}
	}
	if h.over > 0 {
		fmt.Fprintf(w, "%14s  %7d\n", fmt.Sprintf(">= %.3g", h.hi), h.over)
	}
}
