package replacement

// Optimized conventional policies (LRU, LRU-k, LRD, FIFO, CLOCK, Random,
// MRU) on the indexed victim-selection engine in indexed.go. Scoring
// formulas live in states.go, shared with the scanCore reference
// implementations in reference.go; the differential tests require both to
// emit bit-identical victim sequences.

import (
	"fmt"
	"math"

	"repro/internal/oodb"
	"repro/internal/rng"
)

// ---------------------------------------------------------------- LRU ----

// lru evicts the item with the oldest last access (LRU-1 in the paper).
// Single class, key = last access time: the heap root is the stalest item
// and badness (now − last) is exact in the key, so the search rarely
// descends past the root's equal-key ties.
type lru struct {
	victimCore[lruState]
}

// NewLRU returns the least-recently-used policy.
func NewLRU() Policy {
	p := &lru{}
	p.t = newSlotTable[lruState]()
	p.classes = []classHeap{{sc: lruScorer{p}}}
	return p
}

// NewLRUFactory returns a Factory for NewLRU.
func NewLRUFactory() Factory { return func() Policy { return NewLRU() } }

type lruScorer struct{ p *lru }

func (sc lruScorer) bound(key, now float64) float64 { return now - key }
func (sc lruScorer) cutoff(now, best float64) float64 {
	return padCutoff(now-best, now, best)
}
func (sc lruScorer) eval(slot int32, now float64) float64 {
	return lruBadness(&sc.p.t.states[slot], now)
}

func (p *lru) Name() string { return "lru" }

func (p *lru) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.touch(slot, now)
		return
	}
	slot, _ := p.t.add(it, lruState{last: now})
	p.grow()
	p.classes[0].heap.push(slot, now)
}

func (p *lru) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.touch(slot, now)
}

func (p *lru) touch(slot int32, now float64) {
	p.t.states[slot].last = now
	p.classes[0].heap.update(slot, now)
}

func (p *lru) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *lru) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *lru) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *lru) Len() int { return p.t.len() }

// -------------------------------------------------------------- LRU-k ----

// lruK implements LRU-k [O'Neil et al., SIGMOD'93]: the victim is the item
// with the maximum backward k-distance, i.e. the oldest k-th most recent
// uncorrelated reference. Items with fewer than k references have infinite
// backward k-distance and are preferred victims, tie-broken by oldest last
// access.
//
// Two refinements from the original algorithm are essential under cache
// pressure and are implemented here:
//
//   - Retained Information: reference history survives eviction (here
//     unbounded — simulated populations are small), so a hot item is
//     recognized immediately on re-insertion instead of restarting at one
//     reference.
//   - Correlated Reference Period: references within crp seconds collapse
//     into one, and an item accessed within the last crp seconds is
//     protected from eviction — otherwise every item fetched by the
//     current query would be a prime (infinite-distance) victim for the
//     same query's later insertions.
//
// Indexing: two class heaps over the same slots. Items with fewer than k
// references ("infinite" class, badness ≈ +inf) are keyed by last access;
// items with a full ring ("finite" class) are keyed by the k-th last
// access. Both keys give bit-exact bounds. CRP protection is a property of
// `now`, not the key, so it is handled at evaluation time: a protected
// item's exact badness (≈ −inf) simply loses to any candidate, while the
// class bound still upper-bounds it, keeping the pruning sound.
type lruK struct {
	victimCore[int32] // slot state = index into arena
	k       int
	crp     float64
	arena   []lruKState
	history map[oodb.Item]int32 // retained information: item -> arena index
}

// NewLRUK returns the LRU-k policy with the default correlated reference
// period. It panics if k < 1.
func NewLRUK(k int) Policy { return NewLRUKCRP(k, DefaultCorrelatedPeriod) }

// NewLRUKCRP returns LRU-k with an explicit correlated reference period
// (0 disables reference collapsing and eviction protection).
func NewLRUKCRP(k int, crp float64) Policy {
	if k < 1 {
		panic("replacement: LRU-k requires k >= 1")
	}
	if crp < 0 {
		panic("replacement: LRU-k correlated period must be >= 0")
	}
	p := &lruK{k: k, crp: crp, history: make(map[oodb.Item]int32)}
	p.t = newSlotTable[int32]()
	p.classes = []classHeap{
		{sc: lruKInfScorer{p}}, // < k references, keyed by last access
		{sc: lruKFinScorer{p}}, // full ring, keyed by k-th last access
	}
	return p
}

// NewLRUKFactory returns a Factory for NewLRUK(k).
func NewLRUKFactory(k int) Factory { return func() Policy { return NewLRUK(k) } }

type lruKInfScorer struct{ p *lruK }

func (sc lruKInfScorer) bound(key, now float64) float64 { return lruKInf + (now - key) }
func (sc lruKInfScorer) cutoff(now, best float64) float64 {
	// padCutoff's |best| term covers the cancellation error of
	// lruKInf - best (~1e12 magnitudes → ~milliseconds of slack).
	return padCutoff(now+(lruKInf-best), now, best)
}
func (sc lruKInfScorer) eval(slot int32, now float64) float64 {
	return lruKBadness(&sc.p.arena[sc.p.t.states[slot]], sc.p.crp, now)
}

type lruKFinScorer struct{ p *lruK }

func (sc lruKFinScorer) bound(key, now float64) float64 { return now - key }
func (sc lruKFinScorer) cutoff(now, best float64) float64 {
	return padCutoff(now-best, now, best)
}
func (sc lruKFinScorer) eval(slot int32, now float64) float64 {
	return lruKBadness(&sc.p.arena[sc.p.t.states[slot]], sc.p.crp, now)
}

func (p *lruK) Name() string { return fmt.Sprintf("lru-%d", p.k) }

// sync re-keys a slot after its state recorded an access, moving it to the
// finite class once its ring fills (rings never empty, so the reverse
// transition cannot happen).
func (p *lruK) sync(slot int32) {
	s := &p.arena[p.t.states[slot]]
	if kth, ok := s.ring.kth(); ok {
		p.classes[0].heap.remove(slot)
		p.classes[1].heap.update(slot, kth)
	} else {
		p.classes[0].heap.update(slot, s.last)
	}
}

func (p *lruK) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.arena[p.t.states[slot]].record(p.crp, now)
		p.sync(slot)
		return
	}
	idx, ok := p.history[it]
	if !ok {
		idx = int32(len(p.arena))
		p.arena = append(p.arena, lruKState{ring: makeAccessRing(p.k)})
		p.history[it] = idx
	}
	s := &p.arena[idx]
	s.record(p.crp, now)
	slot, _ := p.t.add(it, idx)
	p.grow()
	if kth, full := s.ring.kth(); full {
		p.classes[1].heap.push(slot, kth)
	} else {
		p.classes[0].heap.push(slot, s.last)
	}
}

func (p *lruK) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.arena[p.t.states[slot]].record(p.crp, now)
	p.sync(slot)
}

func (p *lruK) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *lruK) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *lruK) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot) // history keeps the arena state (retained info)
	}
}
func (p *lruK) Len() int { return p.t.len() }

// ---------------------------------------------------------------- LRD ----

// lrd implements least-reference-density with periodic aging: the victim
// has the minimum time-decayed reference count, where counts are halved
// every interval seconds (applied lazily) — Experiment #2's "the reference
// count of each database item is divided by 2 every 1000 seconds". The
// halving is the aging: an item's decayed count converges to a constant
// multiple of its access rate, and the count of an abandoned item decays
// geometrically, which is what lets LRD adapt to hot-spot changes faster
// than LRU (Figure 5) while adapting slower than EWMA.
//
// Indexing: single class keyed in the log domain,
// key = log2(refs) + lastAged/interval, which is invariant under lazy
// aging (refs /= 2 and lastAged += interval cancel), so eval-time aging
// never touches the heap. The bound maps back with continuous decay —
// −exp2(key − now/interval) — which lower-bounds the stepwise-halved count
// (floor(x) ≤ x), padded for the log/exp round trip.
type lrd struct {
	victimCore[lrdState]
	interval float64
}

// NewLRD returns the LRD policy with the given aging interval.
func NewLRD(interval float64) Policy {
	if interval <= 0 {
		panic("replacement: LRD interval must be positive")
	}
	p := &lrd{interval: interval}
	p.t = newSlotTable[lrdState]()
	p.classes = []classHeap{{sc: lrdScorer{p}}}
	return p
}

// NewLRDFactory returns a Factory for NewLRD(interval).
func NewLRDFactory(interval float64) Factory { return func() Policy { return NewLRD(interval) } }

type lrdScorer struct{ p *lrd }

func (sc lrdScorer) bound(key, now float64) float64 {
	e := math.Exp2(key - now/sc.p.interval)
	// Padding: ~1e-12 relative error from the log2/÷/exp2 round trip and
	// subnormal crumbs from deep halving, with a 1000x safety margin.
	return -e + (1e-9 + 1e-9*e)
}
func (sc lrdScorer) cutoff(now, best float64) float64 {
	// bound >= best ⟺ e·(1-1e-9) <= 1e-9 - best ⟺ key <= log2(rhs) + now/I.
	// LRD badness is -refs <= 0, so the engine only passes best <= 0; there
	// rhs >= 1e-9 and threshold slots have e >= 1e-9, keeping the log-domain
	// inversion well-conditioned (positive best would hit catastrophic
	// cancellation in 1e-9 - best, but nothing can score above 0 to set it).
	if best > 0 {
		return math.Inf(-1)
	}
	rhs := (1e-9 - best) / (1 - 1e-9)
	return padCutoff(math.Log2(rhs)+now/sc.p.interval, now/sc.p.interval, best)
}
func (sc lrdScorer) eval(slot int32, now float64) float64 {
	return lrdBadness(&sc.p.t.states[slot], sc.p.interval, now)
}

func (p *lrd) keyOf(s *lrdState) float64 {
	return math.Log2(s.refs) + s.lastAged/p.interval
}

func (p *lrd) Name() string { return "lrd" }

func (p *lrd) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.bump(slot, now)
		return
	}
	slot, _ := p.t.add(it, lrdState{refs: 1, enter: now, lastAged: now})
	p.grow()
	p.classes[0].heap.push(slot, p.keyOf(&p.t.states[slot]))
}

func (p *lrd) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.bump(slot, now)
}

func (p *lrd) bump(slot int32, now float64) {
	s := &p.t.states[slot]
	s.age(now, p.interval)
	s.refs++
	p.classes[0].heap.update(slot, p.keyOf(s))
}

func (p *lrd) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *lrd) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *lrd) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *lrd) Len() int { return p.t.len() }

// --------------------------------------------------------------- FIFO ----

// fifo evicts in insertion order, ignoring accesses. Single class keyed by
// the insertion sequence number: the heap root is always the victim.
type fifo struct {
	victimCore[fifoState]
	n uint64
}

// NewFIFO returns the first-in-first-out baseline.
func NewFIFO() Policy {
	p := &fifo{}
	p.t = newSlotTable[fifoState]()
	p.classes = []classHeap{{sc: fifoScorer{p}}}
	return p
}

// NewFIFOFactory returns a Factory for NewFIFO.
func NewFIFOFactory() Factory { return func() Policy { return NewFIFO() } }

type fifoScorer struct{ p *fifo }

func (sc fifoScorer) bound(key, now float64) float64 { return -key }
func (sc fifoScorer) cutoff(now, best float64) float64 {
	return padCutoff(-best, now, best)
}
func (sc fifoScorer) eval(slot int32, now float64) float64 {
	return fifoBadness(&sc.p.t.states[slot])
}

func (p *fifo) Name() string { return "fifo" }

func (p *fifo) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.t.lookup(it); ok {
		return
	}
	p.n++
	slot, _ := p.t.add(it, fifoState{seq: p.n})
	p.grow()
	p.classes[0].heap.push(slot, float64(p.n))
}

func (p *fifo) OnAccess(it oodb.Item, now float64) {
	_, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
}

func (p *fifo) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *fifo) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *fifo) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *fifo) Len() int { return p.t.len() }

// -------------------------------------------------------------- CLOCK ----

// clock implements the second-chance approximation of LRU: items sit on a
// circular list with a referenced bit; the hand clears bits until it finds
// an unreferenced item. Reference bits live in a flat slice parallel to
// items (swap-moved on removal) instead of a map.
type clock struct {
	items []oodb.Item
	index map[oodb.Item]int
	ref   []bool
	stamp []uint64 // per-position selection stamp for Victims' wrap guard
	hand  int
	gen   uint64
}

// NewClock returns the CLOCK (second chance) baseline.
func NewClock() Policy {
	return &clock{index: make(map[oodb.Item]int)}
}

// NewClockFactory returns a Factory for NewClock.
func NewClockFactory() Factory { return func() Policy { return NewClock() } }

func (p *clock) Name() string { return "clock" }

func (p *clock) OnInsert(it oodb.Item, now float64) {
	if i, ok := p.index[it]; ok {
		p.ref[i] = true
		return
	}
	p.index[it] = len(p.items)
	p.items = append(p.items, it)
	p.ref = append(p.ref, true)
	p.stamp = append(p.stamp, 0)
}

func (p *clock) OnAccess(it oodb.Item, now float64) {
	i, ok := p.index[it]
	mustTracked(p.Name(), ok, it)
	p.ref[i] = true
}

func (p *clock) Victim(now float64) (oodb.Item, bool) {
	if len(p.items) == 0 {
		return oodb.Item{}, false
	}
	// Each pass either clears a set bit (finitely many) or returns, so at
	// most len(items)+1 iterations run; the historical 2n+1 fallback was
	// unreachable and is gone. The hand stays on the victim (the caller's
	// Remove compacts the slot).
	for {
		if p.hand >= len(p.items) {
			p.hand = 0
		}
		if p.ref[p.hand] {
			p.ref[p.hand] = false
			p.hand++
			continue
		}
		return p.items[p.hand], true
	}
}

// Victims collects up to n victims in one continuous hand rotation rather
// than n restarted sweeps. Each victim is re-marked referenced so the
// rotation passes over it (callers evict the returned items anyway); a
// position stamp detects the wrap where every remaining item was already
// selected this call, which is where the n-sweep version's seen-set broke.
func (p *clock) Victims(now float64, n int) []oodb.Item {
	if n > len(p.items) {
		n = len(p.items)
	}
	if n <= 0 {
		return nil
	}
	p.gen++
	out := make([]oodb.Item, 0, n)
	for len(out) < n {
		if p.hand >= len(p.items) {
			p.hand = 0
		}
		if p.ref[p.hand] {
			p.ref[p.hand] = false
			p.hand++
			continue
		}
		if p.stamp[p.hand] == p.gen {
			break // wrapped onto an item already selected this call
		}
		p.stamp[p.hand] = p.gen
		out = append(out, p.items[p.hand])
		p.ref[p.hand] = true
		p.hand++
	}
	return out
}

func (p *clock) Remove(it oodb.Item) {
	i, ok := p.index[it]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.ref[i] = p.ref[last]
	p.stamp[i] = p.stamp[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	p.ref = p.ref[:last]
	p.stamp = p.stamp[:last]
	delete(p.index, it)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *clock) Len() int { return len(p.items) }

// ------------------------------------------------------------- Random ----

// random evicts a uniformly random resident item.
type random struct {
	items []oodb.Item
	index map[oodb.Item]int
	rnd   *rng.Stream
}

// NewRandom returns the random-replacement baseline using the given stream.
func NewRandom(rnd *rng.Stream) Policy {
	if rnd == nil {
		panic("replacement: NewRandom requires a stream")
	}
	return &random{index: make(map[oodb.Item]int), rnd: rnd}
}

func (p *random) Name() string { return "random" }

func (p *random) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.index[it]; ok {
		return
	}
	p.index[it] = len(p.items)
	p.items = append(p.items, it)
}

func (p *random) OnAccess(it oodb.Item, now float64) {
	_, ok := p.index[it]
	mustTracked(p.Name(), ok, it)
}

func (p *random) Victim(now float64) (oodb.Item, bool) {
	if len(p.items) == 0 {
		return oodb.Item{}, false
	}
	return p.items[p.rnd.Intn(len(p.items))], true
}

func (p *random) Victims(now float64, n int) []oodb.Item {
	if n > len(p.items) {
		n = len(p.items)
	}
	if n <= 0 {
		return nil
	}
	idx := p.rnd.Sample(len(p.items), n)
	out := make([]oodb.Item, n)
	for i, j := range idx {
		out[i] = p.items[j]
	}
	return out
}

func (p *random) Remove(it oodb.Item) {
	i, ok := p.index[it]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	delete(p.index, it)
}

func (p *random) Len() int { return len(p.items) }

// ---------------------------------------------------------------- MRU ----

// mru evicts the item with the *newest* last access — the classical
// most-recently-used policy from the replacement literature [5] surveys.
// It is pessimal on recency-friendly workloads but competitive on loops,
// making it a useful contrast on the cyclic pattern of Experiment #4.
// Single class, key = −last, so the heap root is the newest item.
type mru struct {
	victimCore[lruState]
}

// NewMRU returns the most-recently-used policy.
func NewMRU() Policy {
	p := &mru{}
	p.t = newSlotTable[lruState]()
	p.classes = []classHeap{{sc: mruScorer{p}}}
	return p
}

// NewMRUFactory returns a Factory for NewMRU.
func NewMRUFactory() Factory { return func() Policy { return NewMRU() } }

type mruScorer struct{ p *mru }

func (sc mruScorer) bound(key, now float64) float64 { return -key - now }
func (sc mruScorer) cutoff(now, best float64) float64 {
	return padCutoff(-best-now, now, best)
}
func (sc mruScorer) eval(slot int32, now float64) float64 {
	return mruBadness(&sc.p.t.states[slot], now)
}

func (p *mru) Name() string { return "mru" }

func (p *mru) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.touch(slot, now)
		return
	}
	slot, _ := p.t.add(it, lruState{last: now})
	p.grow()
	p.classes[0].heap.push(slot, -now)
}

func (p *mru) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.touch(slot, now)
}

func (p *mru) touch(slot int32, now float64) {
	p.t.states[slot].last = now
	p.classes[0].heap.update(slot, -now)
}

func (p *mru) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *mru) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *mru) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *mru) Len() int { return p.t.len() }
