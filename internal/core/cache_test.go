package core

import (
	"testing"
	"testing/quick"

	"repro/internal/oodb"
	"repro/internal/replacement"
)

func obj(i int) oodb.Item          { return oodb.ObjectItem(oodb.OID(i)) }
func attr(i int, a int) oodb.Item  { return oodb.AttrItem(oodb.OID(i), oodb.AttrID(a)) }
func fresh(now float64) Entry      { return NoExpiryEntry(0, now) }
func leased(until float64) Entry   { return Entry{ExpiresAt: until} }
func objCost() int                 { return ItemCost(oodb.ObjectItem(0)) }
func attrCost() int                { return ItemCost(oodb.AttrItem(0, 0)) }
func newObjCache(nObjs int) *Cache { return NewCache(nObjs*objCost(), replacement.NewLRU()) }

func TestGranularityStrings(t *testing.T) {
	want := map[Granularity]string{
		NoCache: "nc", AttributeCaching: "ac", ObjectCaching: "oc", HybridCaching: "hc",
	}
	for g, s := range want {
		if g.String() != s {
			t.Fatalf("%d.String() = %q, want %q", g, g.String(), s)
		}
		parsed, err := ParseGranularity(s)
		if err != nil || parsed != g {
			t.Fatalf("ParseGranularity(%q) = %v, %v", s, parsed, err)
		}
		if !g.Valid() {
			t.Fatalf("%v not Valid()", g)
		}
	}
	if _, err := ParseGranularity("xx"); err == nil {
		t.Fatal("ParseGranularity accepted junk")
	}
	if Granularity(9).Valid() {
		t.Fatal("Granularity(9) Valid()")
	}
	if len(Granularities()) != 4 {
		t.Fatal("Granularities() wrong length")
	}
}

func TestUsesAttributeItems(t *testing.T) {
	if NoCache.UsesAttributeItems() || ObjectCaching.UsesAttributeItems() {
		t.Fatal("NC/OC should use object items")
	}
	if !AttributeCaching.UsesAttributeItems() || !HybridCaching.UsesAttributeItems() {
		t.Fatal("AC/HC should use attribute items")
	}
}

func TestCoverItem(t *testing.T) {
	if it := CoverItem(ObjectCaching, 5, 3); it != obj(5) {
		t.Fatalf("OC cover = %v", it)
	}
	if it := CoverItem(AttributeCaching, 5, 3); it != attr(5, 3) {
		t.Fatalf("AC cover = %v", it)
	}
	if it := CoverItem(HybridCaching, 5, 3); it != attr(5, 3) {
		t.Fatalf("HC cover = %v", it)
	}
	if it := CoverItem(NoCache, 5, 3); it != obj(5) {
		t.Fatalf("NC cover = %v", it)
	}
}

func TestLookupStates(t *testing.T) {
	c := newObjCache(2)
	if _, st := c.Lookup(obj(1), 0); st != Miss {
		t.Fatalf("state = %v, want miss", st)
	}
	c.Insert(obj(1), leased(100), 0)
	if e, st := c.Lookup(obj(1), 50); st != Hit || e == nil {
		t.Fatalf("state = %v, want hit", st)
	}
	if _, st := c.Lookup(obj(1), 100); st != Stale {
		t.Fatalf("state at expiry = %v, want stale", st)
	}
	if _, st := c.Lookup(obj(1), 150); st != Stale {
		t.Fatalf("state past expiry = %v, want stale", st)
	}
}

func TestLookupStateString(t *testing.T) {
	if Miss.String() != "miss" || Stale.String() != "stale" || Hit.String() != "hit" {
		t.Fatal("LookupState strings")
	}
	if LookupState(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	c := newObjCache(2)
	c.Insert(obj(1), fresh(0), 0)
	c.Insert(obj(2), fresh(1), 1)
	c.Lookup(obj(1), 2) // promote 1
	evicted := c.Insert(obj(3), fresh(3), 3)
	if len(evicted) != 1 || evicted[0] != obj(2) {
		t.Fatalf("evicted = %v, want [obj(2)]", evicted)
	}
	if c.Len() != 2 || c.Contains(obj(2)) {
		t.Fatal("resident set wrong after eviction")
	}
	if c.Evictions() != 1 || c.Insertions() != 3 {
		t.Fatalf("counters: ev=%d ins=%d", c.Evictions(), c.Insertions())
	}
}

func TestByteBudgetMixedSizes(t *testing.T) {
	// A budget of 6 attribute entries fits exactly 6 before evicting.
	c := NewCache(6*attrCost(), replacement.NewLRU())
	for i := 0; i < 6; i++ {
		if ev := c.Insert(attr(i, 0), fresh(float64(i)), float64(i)); len(ev) > 0 {
			t.Fatalf("unexpected eviction at %d: %v", i, ev)
		}
	}
	if ev := c.Insert(attr(6, 0), fresh(6), 6); len(ev) != 1 {
		t.Fatalf("7th insert evicted %v, want one victim", ev)
	}
	if c.UsedBytes() > c.CapacityBytes() {
		t.Fatal("over budget")
	}
}

func TestAttrItemsPackTighter(t *testing.T) {
	budget := 2 * objCost()
	co := NewCache(budget, replacement.NewLRU())
	ca := NewCache(budget, replacement.NewLRU())
	now := 0.0
	for i := 0; ; i++ {
		if ev := co.Insert(obj(i), fresh(now), now); len(ev) > 0 {
			break
		}
		now++
	}
	objCount := co.Len()
	for i := 0; ; i++ {
		if ev := ca.Insert(attr(i, 0), fresh(now), now); len(ev) > 0 {
			break
		}
		now++
	}
	attrCount := ca.Len()
	if attrCount <= 5*objCount {
		t.Fatalf("attribute items should pack much tighter: %d vs %d", attrCount, objCount)
	}
}

func TestRefreshUpdatesInPlace(t *testing.T) {
	c := newObjCache(2)
	c.Insert(obj(1), Entry{Version: 1, ExpiresAt: 10}, 0)
	ins := c.Insertions()
	c.Insert(obj(1), Entry{Version: 5, ExpiresAt: 99}, 5)
	if c.Insertions() != ins {
		t.Fatal("refresh counted as insertion")
	}
	e, _ := c.Peek(obj(1))
	if e.Version != 5 || e.ExpiresAt != 99 {
		t.Fatalf("entry not refreshed: %+v", e)
	}
	if c.Len() != 1 {
		t.Fatal("refresh duplicated entry")
	}
}

func TestOversizeItemRejected(t *testing.T) {
	c := NewCache(attrCost(), replacement.NewLRU())
	c.Insert(attr(1, 0), fresh(0), 0)
	if ev := c.Insert(obj(2), fresh(1), 1); len(ev) != 0 {
		t.Fatalf("oversize insert evicted %v", ev)
	}
	if c.Contains(obj(2)) {
		t.Fatal("oversize item cached")
	}
	if !c.Contains(attr(1, 0)) {
		t.Fatal("resident item lost on rejected insert")
	}
}

func TestRemove(t *testing.T) {
	c := newObjCache(2)
	c.Insert(obj(1), fresh(0), 0)
	used := c.UsedBytes()
	if !c.Remove(obj(1)) {
		t.Fatal("Remove resident returned false")
	}
	if c.Remove(obj(1)) {
		t.Fatal("Remove absent returned true")
	}
	if c.UsedBytes() != used-objCost() {
		t.Fatal("bytes not released")
	}
}

func TestValidFraction(t *testing.T) {
	c := newObjCache(4)
	if c.ValidFraction(0) != 0 {
		t.Fatal("empty cache ValidFraction != 0")
	}
	c.Insert(obj(1), leased(10), 0)
	c.Insert(obj(2), leased(100), 0)
	if f := c.ValidFraction(50); f != 0.5 {
		t.Fatalf("ValidFraction = %v, want 0.5", f)
	}
}

func TestEntryValidAt(t *testing.T) {
	e := leased(10)
	if !e.ValidAt(9.99) || e.ValidAt(10) || e.ValidAt(11) {
		t.Fatal("ValidAt boundary wrong")
	}
	if ne := NoExpiryEntry(3, 1); !ne.ValidAt(1e300) || ne.Version != 3 || ne.FetchedAt != 1 {
		t.Fatal("NoExpiryEntry wrong")
	}
}

func TestNewCacheValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero capacity did not panic")
			}
		}()
		NewCache(0, replacement.NewLRU())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil policy did not panic")
			}
		}()
		NewCache(100, nil)
	}()
}

func TestPolicyName(t *testing.T) {
	c := NewCache(100, replacement.NewEWMA(0.5))
	if c.PolicyName() != "ewma-0.5" {
		t.Fatalf("PolicyName = %q", c.PolicyName())
	}
}

// Property: under arbitrary insert/lookup/remove streams with any policy,
// the cache never exceeds its byte budget, Len matches residency, and the
// policy tracks exactly the resident items.
func TestQuickCacheInvariants(t *testing.T) {
	factories := []replacement.Factory{
		replacement.NewLRUFactory(),
		replacement.NewEWMAFactory(0.5),
		replacement.NewMeanFactory(),
		replacement.NewLRUKFactory(2),
		replacement.NewFIFOFactory(),
	}
	for _, factory := range factories {
		factory := factory
		f := func(ops []uint16) bool {
			policy := factory()
			c := NewCache(5*objCost(), policy)
			resident := map[oodb.Item]bool{}
			now := 0.0
			for _, op := range ops {
				now += 1
				var it oodb.Item
				if op%2 == 0 {
					it = obj(int(op) % 7)
				} else {
					it = attr(int(op)%7, int(op/2)%9)
				}
				switch (op / 16) % 3 {
				case 0:
					evicted := c.Insert(it, leased(now+float64(op%50)), now)
					resident[it] = true
					for _, v := range evicted {
						delete(resident, v)
					}
				case 1:
					_, st := c.Lookup(it, now)
					if (st != Miss) != resident[it] {
						return false
					}
				case 2:
					if c.Remove(it) != resident[it] {
						return false
					}
					delete(resident, it)
				}
				if c.UsedBytes() > c.CapacityBytes() {
					return false
				}
				if c.Len() != len(resident) || policy.Len() != len(resident) {
					return false
				}
				bytes := 0
				for it := range resident {
					if !c.Contains(it) {
						return false
					}
					bytes += ItemCost(it)
				}
				if bytes != c.UsedBytes() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", factory().Name(), err)
		}
	}
}

// Property: the eviction victim is never the item just inserted unless the
// budget forces it (single-slot cache).
func TestQuickInsertedItemResident(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCache(3*objCost(), replacement.NewLRU())
		now := 0.0
		for _, op := range ops {
			now++
			it := obj(int(op) % 10)
			c.Insert(it, fresh(now), now)
			if !c.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchBasic(t *testing.T) {
	c := newObjCache(3)
	batch := []BatchEntry{
		{Item: obj(1), Entry: leased(100)},
		{Item: obj(2), Entry: leased(200)},
	}
	if ev := c.InsertBatch(batch, 0); len(ev) != 0 {
		t.Fatalf("unexpected evictions %v", ev)
	}
	if c.Len() != 2 || !c.Contains(obj(1)) || !c.Contains(obj(2)) {
		t.Fatal("batch not cached")
	}
	if e, _ := c.Peek(obj(2)); e.ExpiresAt != 200 {
		t.Fatal("entry metadata lost")
	}
}

func TestInsertBatchEvictsForWholeBatch(t *testing.T) {
	c := newObjCache(3)
	c.Insert(obj(1), fresh(0), 0)
	c.Insert(obj(2), fresh(1), 1)
	c.Insert(obj(3), fresh(2), 2)
	// Batch of 2 into a full 3-slot cache: evict the 2 oldest.
	ev := c.InsertBatch([]BatchEntry{
		{Item: obj(4), Entry: fresh(10)},
		{Item: obj(5), Entry: fresh(10)},
	}, 10)
	if len(ev) != 2 || ev[0] != obj(1) || ev[1] != obj(2) {
		t.Fatalf("evicted %v, want [obj(1) obj(2)]", ev)
	}
	if c.UsedBytes() > c.CapacityBytes() || c.Len() != 3 {
		t.Fatalf("len=%d used=%d", c.Len(), c.UsedBytes())
	}
}

func TestInsertBatchDuplicatesAndResidents(t *testing.T) {
	c := newObjCache(4)
	c.Insert(obj(1), Entry{Version: 1, ExpiresAt: 10}, 0)
	ev := c.InsertBatch([]BatchEntry{
		{Item: obj(1), Entry: Entry{Version: 2, ExpiresAt: 99}}, // resident: refresh
		{Item: obj(2), Entry: fresh(1)},
		{Item: obj(2), Entry: fresh(1)}, // duplicate within batch
	}, 1)
	if len(ev) != 0 {
		t.Fatalf("unexpected evictions %v", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if e, _ := c.Peek(obj(1)); e.Version != 2 || e.ExpiresAt != 99 {
		t.Fatal("resident entry not refreshed by batch")
	}
}

func TestInsertBatchOversizeSkipped(t *testing.T) {
	c := NewCache(attrCost(), replacement.NewLRU())
	ev := c.InsertBatch([]BatchEntry{
		{Item: obj(1), Entry: fresh(0)},     // larger than the cache
		{Item: attr(2, 0), Entry: fresh(0)}, // fits
	}, 0)
	if len(ev) != 0 {
		t.Fatalf("evictions %v", ev)
	}
	if c.Contains(obj(1)) || !c.Contains(attr(2, 0)) {
		t.Fatal("oversize handling wrong in batch")
	}
}

func TestForEach(t *testing.T) {
	c := newObjCache(4)
	c.Insert(obj(1), leased(10), 0)
	c.Insert(obj(2), leased(20), 0)
	seen := map[oodb.Item]float64{}
	c.ForEach(func(it oodb.Item, e *Entry) bool {
		seen[it] = e.ExpiresAt
		return true
	})
	if len(seen) != 2 || seen[obj(1)] != 10 || seen[obj(2)] != 20 {
		t.Fatalf("ForEach saw %v", seen)
	}
	// Early stop.
	visits := 0
	c.ForEach(func(oodb.Item, *Entry) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("ForEach ignored stop: %d visits", visits)
	}
}

func TestClear(t *testing.T) {
	c := newObjCache(4)
	c.Insert(obj(1), fresh(0), 0)
	c.Insert(obj(2), fresh(0), 0)
	c.Clear()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("after Clear: len=%d used=%d", c.Len(), c.UsedBytes())
	}
	// Still fully usable, and the policy state was reset too.
	if ev := c.Insert(obj(3), fresh(1), 1); len(ev) != 0 {
		t.Fatalf("insert after Clear evicted %v", ev)
	}
	if !c.Contains(obj(3)) {
		t.Fatal("insert after Clear failed")
	}
}

// Property: InsertBatch and sequential Inserts reach the same resident-set
// size and byte usage for identical inputs (the victim *sets* may differ in
// edge cases, but accounting must agree).
func TestQuickInsertBatchAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewCache(6*objCost(), replacement.NewLRU())
		b := NewCache(6*objCost(), replacement.NewLRU())
		now := 0.0
		var batch []BatchEntry
		for _, op := range ops {
			now++
			it := obj(int(op) % 10)
			batch = append(batch, BatchEntry{Item: it, Entry: fresh(now)})
			a.Insert(it, fresh(now), now)
		}
		b.InsertBatch(batch, now)
		if b.UsedBytes() > b.CapacityBytes() {
			return false
		}
		return a.Len() == b.Len() && a.UsedBytes() == b.UsedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
