// Package replacement implements the cache replacement policies evaluated
// in §3.3 and §5 of the paper.
//
// The paper's proposed policies score each cached item by statistics over
// its access inter-arrival durations — Mean, Window(W), and EWMA(α) — and
// replace the item with the *highest* mean arrival duration (i.e. the
// coldest item). They are compared against the conventional LRU, LRU-k and
// LRD policies. FIFO, Random and CLOCK are included as additional classical
// baselines from the surveyed literature ([5] in the paper).
//
// Scoring note: a duration-based score only changes when an item is
// accessed, so an item that is never touched again would keep its hot
// historical score forever. Following the natural reading of §3.3, eviction
// therefore evaluates an *effective* duration that folds in the still-open
// interval (now − last access): an abandoned item's effective inter-arrival
// duration grows without bound and it eventually becomes the victim. The
// weight of history still differs exactly as the paper describes — the Mean
// scheme drags its full history (and adapts poorly to hot-spot changes),
// Window forgets after W accesses, and EWMA decays geometrically.
//
// Determinism: victim selection scans items in a deterministic order and
// breaks ties by scan position, so simulations replay identically.
package replacement

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
)

// Policy ranks the items resident in a client's storage cache and selects
// eviction victims. Implementations are not safe for concurrent use; the
// simulator runs one process at a time.
type Policy interface {
	// Name identifies the policy (e.g. "ewma-0.5") in tables and logs.
	Name() string
	// OnInsert registers a newly cached item; now is the insertion time,
	// which also counts as the item's first access. Calling OnInsert on an
	// already-tracked item records an access instead.
	OnInsert(it oodb.Item, now float64)
	// OnAccess records a cache hit on a resident item.
	OnAccess(it oodb.Item, now float64)
	// Victim returns the item that should be evicted next, without
	// removing it. ok is false when no items are tracked.
	Victim(now float64) (it oodb.Item, ok bool)
	// Victims returns up to n eviction candidates ordered worst-first,
	// without removing them. A single call costs one scan, so callers that
	// must free room for a whole batch of insertions should prefer it over
	// n calls to Victim.
	Victims(now float64, n int) []oodb.Item
	// Remove forgets an item (eviction or invalidation).
	Remove(it oodb.Item)
	// Len returns the number of tracked items.
	Len() int
}

// Factory builds a fresh policy instance; each simulated client owns one.
type Factory func() Policy

// scanCore is the shared skeleton for policies that pick victims by
// maximizing a per-item "badness" score over a deterministic scan. Item
// state lives in a slice parallel to the item list so the scan performs no
// map lookups.
type scanCore[S any] struct {
	items  []oodb.Item
	states []*S
	index  map[oodb.Item]int
	// badness scores an item for eviction at time now (higher = evict
	// sooner). It must not mutate shared state other than lazily aging s.
	badness func(s *S, now float64) float64
}

func newScanCore[S any](badness func(s *S, now float64) float64) scanCore[S] {
	return scanCore[S]{index: make(map[oodb.Item]int), badness: badness}
}

// get returns the state for a tracked item.
func (c *scanCore[S]) get(it oodb.Item) (*S, bool) {
	i, ok := c.index[it]
	if !ok {
		return nil, false
	}
	return c.states[i], true
}

// add tracks a new item with the given state; returns false if already
// tracked.
func (c *scanCore[S]) add(it oodb.Item, s *S) bool {
	if _, ok := c.index[it]; ok {
		return false
	}
	c.index[it] = len(c.items)
	c.items = append(c.items, it)
	c.states = append(c.states, s)
	return true
}

// remove untracks an item (swap with last slot).
func (c *scanCore[S]) remove(it oodb.Item) bool {
	i, ok := c.index[it]
	if !ok {
		return false
	}
	last := len(c.items) - 1
	c.items[i] = c.items[last]
	c.states[i] = c.states[last]
	c.index[c.items[i]] = i
	c.items = c.items[:last]
	c.states[last] = nil
	c.states = c.states[:last]
	delete(c.index, it)
	return true
}

func (c *scanCore[S]) len() int { return len(c.items) }

// victim returns the single worst item.
func (c *scanCore[S]) victim(now float64) (oodb.Item, bool) {
	if len(c.items) == 0 {
		return oodb.Item{}, false
	}
	best := 0
	bestScore := c.badness(c.states[0], now)
	for i := 1; i < len(c.items); i++ {
		if s := c.badness(c.states[i], now); s > bestScore {
			best, bestScore = i, s
		}
	}
	return c.items[best], true
}

// victims returns up to n items ordered worst-first using a single scan
// with a size-n selection heap (min-heap on badness so the heap root is the
// weakest of the current top-n).
func (c *scanCore[S]) victims(now float64, n int) []oodb.Item {
	if n <= 0 || len(c.items) == 0 {
		return nil
	}
	if n == 1 {
		it, _ := c.victim(now)
		return []oodb.Item{it}
	}
	if n > len(c.items) {
		n = len(c.items)
	}
	type cand struct {
		idx   int
		score float64
	}
	heap := make([]cand, 0, n)
	// less(i,j) for the min-heap: heap[i] weaker than heap[j]; ties keep
	// later scan positions weaker so the final ordering is deterministic.
	less := func(a, b cand) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		return a.idx > b.idx
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				return
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	for i := range c.items {
		sc := cand{idx: i, score: c.badness(c.states[i], now)}
		if len(heap) < n {
			heap = append(heap, sc)
			siftUp(len(heap) - 1)
			continue
		}
		if less(heap[0], sc) {
			heap[0] = sc
			siftDown(0)
		}
	}
	// Extract in increasing weakness, then reverse to worst-first.
	out := make([]oodb.Item, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = c.items[heap[0].idx]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}

func mustTracked(name string, ok bool, it oodb.Item) {
	if !ok {
		panic(fmt.Sprintf("replacement/%s: operation on untracked item %v", name, it))
	}
}

// Parse builds a Factory from a policy spec string as used by the CLI and
// experiment configs: "lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5",
// "fifo", "clock", "random:seed".
func Parse(spec string) (Factory, error) {
	var (
		k    int
		w    int
		a    float64
		seed uint64
	)
	switch {
	case spec == "lru":
		return NewLRUFactory(), nil
	case spec == "lrd":
		return NewLRDFactory(DefaultLRDInterval), nil
	case spec == "mean":
		return NewMeanFactory(), nil
	case spec == "fifo":
		return NewFIFOFactory(), nil
	case spec == "clock":
		return NewClockFactory(), nil
	case spec == "mru":
		return NewMRUFactory(), nil
	case scan1(spec, "lru-%d", &k) && k >= 1:
		return NewLRUKFactory(k), nil
	case scan1(spec, "win-%d", &w) && w >= 1:
		return NewWindowFactory(w), nil
	case scan1(spec, "ewma-%g", &a) && a >= 0 && a < 1:
		return NewEWMAFactory(a), nil
	case scan1(spec, "random:%d", &seed):
		return NewRandomFactory(seed), nil
	}
	return nil, fmt.Errorf("replacement: unknown policy spec %q", spec)
}

func scan1(s, format string, v interface{}) bool {
	n, err := fmt.Sscanf(s, format, v)
	return err == nil && n == 1
}

// NewRandomFactory returns a factory for the Random baseline. Each policy
// instance derives its own stream so clients evict independently.
func NewRandomFactory(seed uint64) Factory {
	var id uint64
	return func() Policy {
		id++
		return NewRandom(rng.Derive(seed, id))
	}
}
