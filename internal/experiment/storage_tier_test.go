package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func tierConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Seed: 1, NumObjects: 400, NumClients: 4, Days: 0.05,
		Granularity: core.HybridCaching, UpdateProb: 0.1,
		ServerBufferRatio: 0.05,
		StorageDSN:        "file:" + t.TempDir() + "?sync=none",
	}
}

// TestRunWithStorageTier: a DSN-configured run stages buffer misses
// through a real on-disk tier and reports the traffic in TierStats; the
// simulated measurements are byte-identical to the same run without a
// tier (the tier is a measured side effect, not a model change).
func TestRunWithStorageTier(t *testing.T) {
	cfg := tierConfig(t)
	res := Run(cfg)
	tier := res.StorageTier
	if tier.DSN != cfg.StorageDSN {
		t.Fatalf("TierStats.DSN = %q, want %q", tier.DSN, cfg.StorageDSN)
	}
	if tier.Puts == 0 {
		t.Fatal("no objects materialized in the tier")
	}
	if tier.Errors != 0 {
		t.Fatalf("tier errors: %d", tier.Errors)
	}
	if tier.Keys != int(tier.Puts) {
		t.Fatalf("tier keys %d != puts %d (cold per-run directory must start empty)",
			tier.Keys, tier.Puts)
	}
	if tier.DiskBytes <= 0 {
		t.Fatalf("DiskBytes = %d, want > 0", tier.DiskBytes)
	}
	if tier.PutP50ms <= 0 || tier.PutP99ms < tier.PutP50ms {
		t.Fatalf("put latency summary inconsistent: p50 %g, p99 %g",
			tier.PutP50ms, tier.PutP99ms)
	}

	// The same config without the tier must produce identical simulated
	// measurements — only TierStats and the server staging counters differ.
	plain := cfg
	plain.StorageDSN = ""
	want := Run(plain)
	got := res
	got.StorageTier = TierStats{}
	got.Server.StorageGets, got.Server.StoragePuts, got.Server.StorageErrors = 0, 0, 0
	if !reflect.DeepEqual(stripConfig(got), stripConfig(want)) {
		t.Fatalf("storage tier perturbed simulated results:\n%+v\nvs\n%+v", got, want)
	}
}

// TestRunWithStorageTierDeterministic: rerunning the same config hits the
// same tier counters — the per-run directory is wiped before open, so a
// replay never sees a warm tier.
func TestRunWithStorageTierDeterministic(t *testing.T) {
	cfg := tierConfig(t)
	a, b := Run(cfg).StorageTier, Run(cfg).StorageTier
	if a.Gets != b.Gets || a.Puts != b.Puts || a.Keys != b.Keys || a.DiskBytes != b.DiskBytes {
		t.Fatalf("tier counters diverged across reruns:\n%+v\nvs\n%+v", a, b)
	}
}

// TestBufferRatioSizesBuffer: ServerBufferRatio scales the buffer with
// the database; an explicit ServerBufferObjects still wins.
func TestBufferRatioSizesBuffer(t *testing.T) {
	cfg := Defaults(Config{NumObjects: 1000, ServerBufferRatio: 0.05})
	if cfg.ServerBufferObjects != 50 {
		t.Fatalf("ServerBufferObjects = %d, want 50", cfg.ServerBufferObjects)
	}
	cfg = Defaults(Config{NumObjects: 1000, ServerBufferObjects: 10, ServerBufferRatio: 0.05})
	if cfg.ServerBufferObjects != 10 {
		t.Fatalf("explicit buffer overridden: %d", cfg.ServerBufferObjects)
	}
	cfg = Defaults(Config{NumObjects: 1000})
	if cfg.ServerBufferObjects != 250 {
		t.Fatalf("default buffer = %d, want 25%% of the database", cfg.ServerBufferObjects)
	}
}

// TestStorageScenarioOptions pins the new option surface: values applied,
// conflicts and ranges named.
func TestStorageScenarioOptions(t *testing.T) {
	sc, err := New(
		WithDatabaseSize(5000),
		WithBufferRatio(0.1),
		WithStorage("file:/tmp/tier?sync=none"),
		WithClientCache(100, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config()
	if cfg.NumObjects != 5000 || cfg.ServerBufferRatio != 0.1 ||
		cfg.StorageDSN != "file:/tmp/tier?sync=none" ||
		cfg.StorageObjects != 100 || cfg.MemBufferObjects != 10 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if cfg.ServerBufferObjects != 500 {
		t.Fatalf("ratio not folded into the buffer: %d", cfg.ServerBufferObjects)
	}

	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"zero size", []Option{WithDatabaseSize(0)}, ErrOutOfRange},
		{"ratio above 1", []Option{WithBufferRatio(1.5)}, ErrOutOfRange},
		{"zero ratio", []Option{WithBufferRatio(0)}, ErrOutOfRange},
		{"bad DSN", []Option{WithStorage("redis:/d")}, ErrBadSpec},
		{"size contradicts objects", []Option{
			WithObjects(100), WithDatabaseSize(200)}, ErrConflict},
		{"objects contradict size", []Option{
			WithDatabaseSize(200), WithObjects(100)}, ErrConflict},
		{"ratio after explicit buffer", []Option{
			WithServerBuffer(50), WithBufferRatio(0.1)}, ErrConflict},
		{"explicit buffer after ratio", []Option{
			WithBufferRatio(0.1), WithServerBuffer(50)}, ErrConflict},
		{"storage on a fleet", []Option{
			WithFleet(100, 4), WithStorage("file:/tmp/tier")}, ErrConflict},
		{"bridged ratio conflict", []Option{
			WithConfig(Config{ServerBufferRatio: 0.1, ServerBufferObjects: 50})}, ErrConflict},
		{"bridged bad DSN", []Option{
			WithConfig(Config{StorageDSN: "file:"})}, ErrBadSpec},
		{"bridged ratio out of range", []Option{
			WithConfig(Config{ServerBufferRatio: 2})}, ErrOutOfRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.opts...)
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("error %v does not wrap %v", err, c.want)
			}
		})
	}

	// Same size twice is not a conflict, in either spelling.
	if _, err := New(WithObjects(100), WithDatabaseSize(100)); err != nil {
		t.Fatalf("agreeing sizes rejected: %v", err)
	}

	// A replayed manifest records the resolved config: the ratio next to
	// the exact buffer it derived. The round trip must validate.
	resolved := Defaults(Config{NumObjects: 1000, ServerBufferRatio: 0.05})
	if _, err := New(WithConfig(resolved)); err != nil {
		t.Fatalf("resolved ratio+buffer round trip rejected: %v", err)
	}
}

// TestExp11QuickShape: the quick grid runs without a tier (hermetic CI
// smoke) and renders the full panel with tier columns dashed out.
func TestExp11QuickShape(t *testing.T) {
	rep := Exp11Quick(Config{Seed: 1, NumClients: 2, Days: 0.02})
	if len(rep.Tables) != 1 {
		t.Fatalf("quick grid has %d tables, want 1", len(rep.Tables))
	}
	if got := len(rep.Tables[0].Rows); got != 4 {
		t.Fatalf("quick grid has %d rows, want 4 (2 sizes x 2 ratios)", got)
	}
	for _, row := range rep.Tables[0].Rows {
		if row[len(row)-1] != "-" || row[len(row)-2] != "-" {
			t.Fatalf("quick grid row has live tier columns: %v", row)
		}
	}
	if len(rep.Notes) != 0 {
		t.Fatalf("quick grid emitted measured notes: %v", rep.Notes)
	}
	if !strings.Contains(rep.String(), "database size x server buffer") {
		t.Fatalf("table title missing: %s", rep.String())
	}
}
