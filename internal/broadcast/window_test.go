package broadcast

import (
	"testing"

	"repro/internal/network"
	"repro/internal/oodb"
)

func TestUpdateWindowValidation(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewUpdateWindow(%g) did not panic", w)
				}
			}()
			NewUpdateWindow(w)
		}()
	}
}

// A report names exactly the distinct items written inside the trailing
// window, sorted canonically regardless of write order.
func TestUpdateWindowReport(t *testing.T) {
	w := NewUpdateWindow(100)
	w.Observe(oodb.AttrItem(5, 1), 10)
	w.Observe(oodb.AttrItem(2, 3), 20)
	w.Observe(oodb.AttrItem(5, 1), 30) // duplicate write, reported once
	w.Observe(oodb.AttrItem(2, 0), 40)

	got := w.Report(50)
	want := []oodb.Item{oodb.AttrItem(2, 0), oodb.AttrItem(2, 3), oodb.AttrItem(5, 1)}
	if len(got) != len(want) {
		t.Fatalf("report = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if w.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 (all events still in window)", w.Pending())
	}
}

// Events at or before now − window fall out; an exactly-boundary event is
// excluded (the window is half-open: (now−W, now]).
func TestUpdateWindowTrims(t *testing.T) {
	w := NewUpdateWindow(50)
	w.Observe(oodb.AttrItem(1, 0), 10)
	w.Observe(oodb.AttrItem(2, 0), 60)
	// At now=60 the cutoff is 10: the write at exactly the boundary is
	// already outside the half-open window.
	if got := w.Report(60); len(got) != 1 || got[0] != (oodb.AttrItem(2, 0)) {
		t.Fatalf("report at 60 = %v, want only the write at 60", got)
	}
	// At now=110 the cutoff is 60: the boundary write falls out too.
	if got := w.Report(110); len(got) != 0 {
		t.Fatalf("report at 110 = %v, want empty", got)
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending = %d after full trim", w.Pending())
	}
	// The log keeps accepting writes after a full reset.
	w.Observe(oodb.AttrItem(3, 2), 120)
	if got := w.Report(130); len(got) != 1 || got[0] != (oodb.AttrItem(3, 2)) {
		t.Fatalf("report after reset = %v", got)
	}
}

func TestReportBytes(t *testing.T) {
	if got := ReportBytes(0); got != network.HeaderSize {
		t.Fatalf("ReportBytes(0) = %d, want bare header %d", got, network.HeaderSize)
	}
	per := network.OIDSize + network.AttrRefSize
	if got := ReportBytes(7); got != network.HeaderSize+7*per {
		t.Fatalf("ReportBytes(7) = %d, want %d", got, network.HeaderSize+7*per)
	}
}
