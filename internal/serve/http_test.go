package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oodb"
)

func newTestHandler(t *testing.T, gran core.Granularity) (http.Handler, Store) {
	t.Helper()
	st, err := Open("memory", Config{Granularity: gran, NumObjects: 200, FixedLease: 60})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return NewHandler(st, HTTPConfig{}), st
}

func postJSON(t *testing.T, client *http.Client, url string, body, dst any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPEndpointRoundTrips(t *testing.T) {
	handler, _ := newTestHandler(t, core.AttributeCaching)
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := ts.Client()

	// Miss, then serve, then hit.
	var read ReadResponse
	postJSON(t, c, ts.URL+"/v1/read", ReadRequest{Client: 0, OID: 5, Attr: 2}, &read)
	if read.State != "miss" || !read.FromOrigin {
		t.Fatalf("first read %+v; want served miss", read)
	}
	postJSON(t, c, ts.URL+"/v1/read", ReadRequest{Client: 0, OID: 5, Attr: 2}, &read)
	if read.State != "hit" {
		t.Fatalf("second read %+v; want hit", read)
	}

	// Write bumps the version; the resident copy becomes an erroneous hit.
	var write WriteResponse
	postJSON(t, c, ts.URL+"/v1/write", WriteRequest{OID: 5, Attrs: []uint8{2}}, &write)
	if write.Version == 0 {
		t.Fatalf("write response %+v; want nonzero version", write)
	}
	postJSON(t, c, ts.URL+"/v1/read", ReadRequest{Client: 0, OID: 5, Attr: 2, Mode: "probe"}, &read)
	if read.State != "hit" || !read.Error {
		t.Fatalf("post-write probe %+v; want erroneous hit", read)
	}

	// Fetch installs fresh copies (dedup on the wire).
	var fetch FetchResponse
	postJSON(t, c, ts.URL+"/v1/fetch", FetchRequest{
		Client: 0,
		Reads:  []WireRead{{OID: 5, Attr: 2}, {OID: 5, Attr: 2}, {OID: 6, Attr: 0}},
	}, &fetch)
	if len(fetch.Items) != 2 {
		t.Fatalf("fetch installed %d items; want 2 after dedup", len(fetch.Items))
	}

	// Lease inspection sees the refreshed copy.
	var lease LeaseResponse
	resp, err := c.Get(fmt.Sprintf("%s/v1/lease?client=0&oid=5&attr=2", ts.URL))
	if err != nil {
		t.Fatalf("GET lease: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatalf("decode lease: %v", err)
	}
	resp.Body.Close()
	if !lease.Cached || !lease.Valid || lease.Version != write.Version {
		t.Fatalf("lease %+v; want valid at version %d", lease, write.Version)
	}

	// Renew refreshes in place.
	var renewed LeaseResponse
	postJSON(t, c, ts.URL+"/v1/renew", InvalidateRequest{Client: 0, OID: 5, Attr: 2}, &renewed)
	if !renewed.Cached || !renewed.Valid {
		t.Fatalf("renew %+v; want valid lease", renewed)
	}

	// Invalidate drops the whole object across sessions.
	var inv InvalidateResponse
	postJSON(t, c, ts.URL+"/v1/invalidate", InvalidateRequest{Client: -1, OID: 5, Attr: 255}, &inv)
	if inv.Removed == 0 {
		t.Fatalf("invalidate removed %d; want > 0", inv.Removed)
	}
	postJSON(t, c, ts.URL+"/v1/read", ReadRequest{Client: 0, OID: 5, Attr: 2, Mode: "probe"}, &read)
	if read.State != "miss" {
		t.Fatalf("post-invalidate probe %+v; want miss", read)
	}

	// Stats and health.
	resp, err = c.Get(ts.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stats: %v (%v)", err, resp.Status)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if stats.Backend != "memory" || stats.Reads == 0 {
		t.Fatalf("stats %+v; want memory backend with reads recorded", stats)
	}
	resp, err = c.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET healthz: %v (%v)", err, resp.Status)
	}
	resp.Body.Close()
}

func TestHTTPBadRequests(t *testing.T) {
	handler, _ := newTestHandler(t, core.ObjectCaching)
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := ts.Client()

	cases := []struct {
		name string
		do   func() *http.Response
	}{
		{"bad JSON", func() *http.Response {
			resp, err := c.Post(ts.URL+"/v1/read", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"unknown field", func() *http.Response {
			resp, err := c.Post(ts.URL+"/v1/read", "application/json", bytes.NewReader([]byte(`{"clientid":3}`)))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"bad mode", func() *http.Response {
			return postJSON(t, c, ts.URL+"/v1/read", ReadRequest{OID: 1, Mode: "psychic"}, nil)
		}},
		{"oid out of range", func() *http.Response {
			return postJSON(t, c, ts.URL+"/v1/read", ReadRequest{OID: 1 << 20}, nil)
		}},
		{"empty write", func() *http.Response {
			return postJSON(t, c, ts.URL+"/v1/write", WriteRequest{OID: 1}, nil)
		}},
		{"bad lease params", func() *http.Response {
			resp, err := c.Get(ts.URL + "/v1/lease?client=zero&oid=1&attr=0")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d; want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPConcurrentReadInvalidate drives the transport end to end from
// concurrent goroutines — the -race companion to the store-level test.
func TestHTTPConcurrentReadInvalidate(t *testing.T) {
	handler, _ := newTestHandler(t, core.AttributeCaching)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	const workers, iters = 6, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ts.Client()
			for i := 0; i < iters; i++ {
				var resp *http.Response
				if w%3 == 0 {
					resp = postJSON(t, c, ts.URL+"/v1/invalidate",
						InvalidateRequest{Client: -1, OID: 42, Attr: 255}, nil)
				} else {
					resp = postJSON(t, c, ts.URL+"/v1/read",
						ReadRequest{Client: w, OID: 42, Attr: uint8(i % 12)}, nil)
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// slowStore delays reads so shutdown tests can hold a request in flight.
type slowStore struct {
	Store
	delay time.Duration
}

func (s slowStore) Read(clientID int, oid oodb.OID, attr oodb.AttrID, mode ReadMode) (ReadResult, error) {
	time.Sleep(s.delay)
	return s.Store.Read(clientID, oid, attr, mode)
}

// TestShutdownDrainsInFlight boots a real Service on a loopback port, parks
// a slow request in flight, and verifies graceful shutdown completes it
// while refusing new connections afterwards.
func TestShutdownDrainsInFlight(t *testing.T) {
	st, err := Open("memory", Config{Granularity: core.ObjectCaching, NumObjects: 100, FixedLease: 60})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	svc := NewService("127.0.0.1:0", NewHandler(slowStore{Store: st, delay: 150 * time.Millisecond}, HTTPConfig{}))
	addr, err := svc.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- svc.Serve() }()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/read", "application/json",
			bytes.NewReader([]byte(`{"client":0,"oid":1,"attr":0}`)))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // request is now sleeping in slowStore

	if err := svc.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request finished with %d; want 200 (drained, not dropped)", status)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown; want nil", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestHandlerRegistersLatency exercises the instrumented path.
func TestHandlerRegistersLatency(t *testing.T) {
	st, err := Open("memory", Config{Granularity: core.ObjectCaching, NumObjects: 100})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	reg := obs.New(0.001) // sample every millisecond of wall time at scale 1
	handler := NewHandler(st, HTTPConfig{Reg: reg})
	st.Register(reg)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/read", ReadRequest{Client: 0, OID: 1, Attr: 0}, nil)

	ticker := AttachWallClock(reg, 1, InfiniteHorizon)
	time.Sleep(20 * time.Millisecond)
	ticker.Stop()
	if _, v := reg.Series("serve.reads").Last(); v < 1 {
		t.Fatalf("serve.reads sampled %v; want >= 1", v)
	}
	if reg.Series("serve.http_latency_s") != nil {
		t.Fatal("histograms must not be sampled as series")
	}
	if got := reg.Histograms(); len(got) == 0 {
		t.Fatal("latency histogram not registered")
	}
}
