#!/usr/bin/env bash
# livesmoke.sh — loopback live-replay smoke: build mccached and mcload, boot
# the service on an ephemeral loopback port, replay the quick scenario
# against it, and verify the report artifacts landed. A second leg reruns
# the replay against the persistent file backend, restarts the service, and
# verifies the recovered store still holds the replay's sessions and cache
# state. CI runs this after the unit suites; run it locally as
# `scripts/livesmoke.sh [outdir]`.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-liveout}"
seed=7
workdir="$(mktemp -d)"
server_pid=""

cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/mccached" ./cmd/mccached
go build -o "$workdir/mcload" ./cmd/mcload

# boot BACKEND — start mccached on port 0 with the shared replay config
# and wait for the kernel-assigned address to land in -addr-file. The
# service flags must mirror the replay's config: same seed, objects,
# granularity (mcload -quick replays 400 objects under AC).
boot() {
    : > "$workdir/addr"
    "$workdir/mccached" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
        -seed "$seed" -objects 400 -granularity ac -backend "$1" &
    server_pid=$!
    for _ in $(seq 1 50); do
        [ -s "$workdir/addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { echo "livesmoke: mccached died" >&2; exit 1; }
        sleep 0.1
    done
    [ -s "$workdir/addr" ] || { echo "livesmoke: no bound address after 5s" >&2; exit 1; }
    addr="$(cat "$workdir/addr")"
}

# stop — drain the running service; a clean SIGTERM shutdown closes the
# store, so a persistent backend leaves no torn tail for the next boot.
stop() {
    kill -TERM "$server_pid"
    wait "$server_pid" || { echo "livesmoke: mccached exited dirty" >&2; exit 1; }
    server_pid=""
}

# ---- leg 1: in-memory backend, report artifacts -------------------------

boot memory
"$workdir/mcload" -url "http://$addr" -quick -seed "$seed" -speedup 1500 \
    -compare -report "$outdir"

for f in manifest.json report.md; do
    [ -s "$outdir/$f" ] || { echo "livesmoke: missing $outdir/$f" >&2; exit 1; }
done
grep -q '"live": true' "$outdir/manifest.json" \
    || { echo "livesmoke: manifest not flagged live" >&2; exit 1; }
stop

# ---- leg 2: file backend, replay, restart, verify warm state ------------

dsn="file:$workdir/cache.db?sync=group"
boot "$dsn"
"$workdir/mcload" -url "http://$addr" -quick -seed "$seed" -speedup 1500
before="$(curl -sf "http://$addr/v1/stats")"
stop

boot "$dsn"
after="$(curl -sf "http://$addr/v1/stats")"
stop

for snap in "$before" "$after"; do
    jq -e '.backend == "file" and .disk_bytes > 0' <<<"$snap" >/dev/null \
        || { echo "livesmoke: stats not reporting the file backend: $snap" >&2; exit 1; }
done
jq -e '.sessions > 0 and .cache_items > 0' <<<"$before" >/dev/null \
    || { echo "livesmoke: replay left no state to recover: $before" >&2; exit 1; }
for field in sessions cache_items cache_bytes; do
    b="$(jq ".$field" <<<"$before")"
    a="$(jq ".$field" <<<"$after")"
    [ "$b" = "$a" ] || { echo "livesmoke: $field not recovered: $b before restart, $a after" >&2; exit 1; }
done

echo "livesmoke: OK (report in $outdir; persistent restart recovered state)"
