package experiment

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

// exp10DefaultDays is the coherence head-to-head horizon when the base
// config leaves Days unset: half a simulated day gives each client a few
// hundred queries and the broadcast-IR channel several hundred report
// periods, enough for forced-revalidation and peer-hit rates to settle
// without exp-all-scale wall clock.
const exp10DefaultDays = 0.5

// exp10QuickDays is the -quick horizon, sized for the CI smoke.
const exp10QuickDays = 0.05

// exp10Scheme is one coherence regime under comparison: the paper's lazy
// lease baseline (the control column), server-push invalidation reports
// over a broadcast downlink, and cooperative peer caching on top of
// leases.
type exp10Scheme struct {
	name  string
	apply func(*Config)
}

func exp10Schemes() []exp10Scheme {
	return []exp10Scheme{
		{"lease", func(c *Config) {}},
		{"irb", func(c *Config) { c.Coherence = coherence.IRBroadcastStrategy }},
		{"coop", func(c *Config) { c.CoopPeers = 3 }},
	}
}

// Exp10 — beyond the paper: coherence schemes head-to-head (lazy leases vs
// broadcast invalidation reports vs cooperative caching). Three panels:
//
//  1. engine parity under 10% frame loss — every scheme run on the Proc
//     engine and the SM engine, printed as adjacent rows that must be
//     identical (the TestEngineLockstep guarantee made visible);
//  2. scheme x frame-loss sweep on a single cell. Lost report frames
//     force broadcast-IR clients to revalidate whole caches; lost probe
//     or reply frames make cooperative lookups fall back to the server —
//     the loss axis is where the schemes differentiate;
//  3. scheme x fleet size on the SM engine, with the IR air traffic and
//     peer-hit rate the schemes buy their coherence with.
//
// The lease rows are the paper's baseline control: every panel reads as
// "what does each push/peer scheme add over §3.2 leases".
func Exp10(base Config) *Report {
	if base.Days == 0 {
		base.Days = exp10DefaultDays
	}
	return exp10(base,
		[]float64{0, 0.05, 0.1, 0.2, 0.3},
		[][2]int{{100, 4}, {400, 8}})
}

// Exp10Quick runs a sparser grid (three loss points, one small fleet) for
// time-constrained sweeps and the CI smoke.
func Exp10Quick(base Config) *Report {
	if base.Days == 0 {
		base.Days = exp10QuickDays
	}
	return exp10(base,
		[]float64{0, 0.1, 0.3},
		[][2]int{{40, 4}})
}

func exp10(base Config, losses []float64, fleets [][2]int) *Report {
	rep := &Report{Name: "exp10"}
	prep := func(c *Config) {
		c.Granularity = core.HybridCaching
		c.QueryKind = workload.Associative
		if c.UpdateProb == 0 {
			c.UpdateProb = 0.1
		}
	}
	run := func(cfg Config) Result {
		res := RunFleet(cfg)
		rep.Results = append(rep.Results, res)
		return res
	}
	mb := func(bytes uint64) string { return fmt.Sprintf("%.4g", float64(bytes)/1e6) }
	revals := func(res Result) string {
		if res.Config.Coherence != coherence.IRBroadcastStrategy {
			return "-"
		}
		return fmt.Sprint(res.ForcedRevals)
	}
	peerPct := func(res Result) string {
		probes := res.PeerHits + res.PeerMisses
		if probes == 0 {
			return "-"
		}
		return pct(float64(res.PeerHits) / float64(probes))
	}

	// Panel 1: engine parity per scheme under loss. Identical row pairs are
	// the acceptance criterion: both engines walk the same kernel heap with
	// the same draws, including the IR reception and peer-exchange faults.
	const parityLoss = 0.1
	tblP := NewTable(
		fmt.Sprintf("Experiment #10 — engine parity per scheme (HC, loss=%g)", parityLoss),
		"scheme", "engine", "hit %", "resp (s)", "err %", "revals", "peer hit %")
	rep.Tables = append(rep.Tables, tblP)
	for _, sch := range exp10Schemes() {
		for _, engine := range []Engine{EngineProcs, EngineSM} {
			cfg := merge(base, func(c *Config) {
				prep(c)
				sch.apply(c)
				c.Label = fmt.Sprintf("exp10/parity/%s/engine=%s", sch.name, engine)
				c.LossRate = parityLoss
				c.Engine = engine
			})
			res := run(cfg)
			tblP.Add(sch.name, string(engine), pct(res.HitRatio), secs(res.MeanResponse),
				pct(res.ErrorRate), revals(res), peerPct(res))
		}
	}

	// Panel 2: scheme x frame loss, single cell.
	tblL := NewTable(
		"Experiment #10 — coherence schemes under frame loss (HC, single cell)",
		"scheme", "loss %", "hit %", "resp (s)", "err %", "access err %", "revals", "peer hit %")
	rep.Tables = append(rep.Tables, tblL)
	for _, sch := range exp10Schemes() {
		for _, loss := range losses {
			loss := loss
			cfg := merge(base, func(c *Config) {
				prep(c)
				sch.apply(c)
				c.Label = fmt.Sprintf("exp10/%s/loss=%g", sch.name, loss)
				c.LossRate = loss
			})
			res := run(cfg)
			tblL.Add(sch.name, pct(loss), pct(res.HitRatio), secs(res.MeanResponse),
				pct(res.ErrorRate), pct(res.AccessErrorRate), revals(res), peerPct(res))
		}
	}

	// Panel 3: scheme x fleet size on the SM engine. Broadcast IR runs one
	// report channel per cell; cooperation scans cell-local peers only.
	tblF := NewTable(
		"Experiment #10 — coherence schemes across fleet sizes (HC, SM engine)",
		"scheme", "clients x cells", "hit %", "resp (s)", "err %", "IR MB", "peer hit %")
	rep.Tables = append(rep.Tables, tblF)
	for _, sch := range exp10Schemes() {
		for _, fl := range fleets {
			clientsN, cells := fl[0], fl[1]
			cfg := merge(base, func(c *Config) {
				prep(c)
				sch.apply(c)
				c.Label = fmt.Sprintf("exp10/%s/fleet=%dx%d", sch.name, clientsN, cells)
				c.NumClients = clientsN
				c.Cells = cells
				c.Engine = EngineSM
			})
			res := run(cfg)
			irMB := "-"
			if res.Config.Coherence == coherence.IRBroadcastStrategy {
				irMB = mb(res.IRReportBytes)
			}
			tblF.Add(sch.name, fmt.Sprintf("%dx%d", clientsN, cells),
				pct(res.HitRatio), secs(res.MeanResponse), pct(res.ErrorRate),
				irMB, peerPct(res))
		}
	}
	return rep
}
