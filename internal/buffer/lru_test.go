package buffer

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	l := NewLRU[int, string](2)
	l.Put(1, "a")
	l.Put(2, "b")
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if l.Len() != 2 || l.Capacity() != 2 {
		t.Fatalf("Len=%d Cap=%d", l.Len(), l.Capacity())
	}
}

func TestEvictionOrder(t *testing.T) {
	l := NewLRU[int, int](3)
	l.Put(1, 0)
	l.Put(2, 0)
	l.Put(3, 0)
	l.Get(1) // promote 1; LRU order now 2,3,1
	k, _, ev := l.Put(4, 0)
	if !ev || k != 2 {
		t.Fatalf("evicted %v (ev=%v), want 2", k, ev)
	}
	if l.Contains(2) {
		t.Fatal("evicted key still present")
	}
}

func TestUpdateDoesNotEvict(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 10)
	l.Put(2, 20)
	_, _, ev := l.Put(1, 11) // update in place
	if ev {
		t.Fatal("update caused eviction")
	}
	if v, _ := l.Peek(1); v != 11 {
		t.Fatalf("value not updated: %d", v)
	}
	// 1 is now MRU; inserting 3 evicts 2.
	k, _, ev := l.Put(3, 30)
	if !ev || k != 2 {
		t.Fatalf("evicted %v, want 2", k)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 0)
	l.Put(2, 0)
	l.Peek(1)
	k, _, _ := l.Put(3, 0)
	if k != 1 {
		t.Fatalf("evicted %v, want 1 (Peek must not promote)", k)
	}
}

func TestRemove(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 0)
	if !l.Remove(1) {
		t.Fatal("Remove existing returned false")
	}
	if l.Remove(1) {
		t.Fatal("Remove missing returned true")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Removed key must not come back as an eviction victim.
	l.Put(2, 0)
	l.Put(3, 0)
	k, _, ev := l.Put(4, 0)
	if !ev || k != 2 {
		t.Fatalf("evicted %v, want 2", k)
	}
}

func TestOldestNewestKeys(t *testing.T) {
	l := NewLRU[int, int](3)
	if _, ok := l.Oldest(); ok {
		t.Fatal("Oldest on empty")
	}
	if _, ok := l.Newest(); ok {
		t.Fatal("Newest on empty")
	}
	l.Put(1, 0)
	l.Put(2, 0)
	l.Put(3, 0)
	if k, _ := l.Oldest(); k != 1 {
		t.Fatalf("Oldest = %v", k)
	}
	if k, _ := l.Newest(); k != 3 {
		t.Fatalf("Newest = %v", k)
	}
	if !reflect.DeepEqual(l.Keys(), []int{3, 2, 1}) {
		t.Fatalf("Keys = %v", l.Keys())
	}
}

func TestHitCounters(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 0)
	l.Get(1)
	l.Get(2)
	if l.Hits() != 1 || l.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", l.Hits(), l.Misses())
	}
	if l.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v", l.HitRatio())
	}
}

func TestHitRatioEmpty(t *testing.T) {
	l := NewLRU[int, int](1)
	if l.HitRatio() != 0 {
		t.Fatal("HitRatio on untouched cache")
	}
}

func TestClear(t *testing.T) {
	l := NewLRU[int, int](2)
	l.Put(1, 0)
	l.Put(2, 0)
	l.Clear()
	if l.Len() != 0 {
		t.Fatalf("Len after Clear = %d", l.Len())
	}
	if l.Contains(1) {
		t.Fatal("entry survived Clear")
	}
	// Cache still usable after Clear.
	l.Put(5, 0)
	if !l.Contains(5) {
		t.Fatal("Put after Clear failed")
	}
}

func TestCapacityOne(t *testing.T) {
	l := NewLRU[int, int](1)
	l.Put(1, 0)
	k, _, ev := l.Put(2, 0)
	if !ev || k != 1 {
		t.Fatalf("evicted %v", k)
	}
	if !l.Contains(2) || l.Contains(1) {
		t.Fatal("wrong resident set")
	}
}

func TestNewLRUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRU(0) did not panic")
		}
	}()
	NewLRU[int, int](0)
}

// naiveLRU is a reference model for property testing.
type naiveLRU struct {
	cap  int
	keys []int // most recent first
}

func (n *naiveLRU) touch(k int) bool {
	for i, key := range n.keys {
		if key == k {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.keys = append([]int{k}, n.keys...)
			return true
		}
	}
	return false
}

func (n *naiveLRU) put(k int) (evicted int, ok bool) {
	if n.touch(k) {
		return 0, false
	}
	n.keys = append([]int{k}, n.keys...)
	if len(n.keys) > n.cap {
		v := n.keys[len(n.keys)-1]
		n.keys = n.keys[:len(n.keys)-1]
		return v, true
	}
	return 0, false
}

// Property: LRU matches a naive reference model under arbitrary op streams,
// and never exceeds capacity.
func TestQuickLRUMatchesModel(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw)%5 + 1
		l := NewLRU[int, int](capacity)
		model := &naiveLRU{cap: capacity}
		for _, op := range ops {
			key := int(op) % 8
			switch (op / 8) % 3 {
			case 0: // put
				gotK, _, gotEv := l.Put(key, key)
				wantK, wantEv := model.put(key)
				if gotEv != wantEv || (gotEv && gotK != wantK) {
					return false
				}
			case 1: // get
				_, got := l.Get(key)
				want := model.touch(key)
				if got != want {
					return false
				}
			case 2: // contains (no promotion)
				got := l.Contains(key)
				want := false
				for _, k := range model.keys {
					if k == key {
						want = true
					}
				}
				if got != want {
					return false
				}
			}
			if l.Len() > capacity || l.Len() != len(model.keys) {
				return false
			}
			if !reflect.DeepEqual(l.Keys(), append([]int{}, model.keys...)) &&
				!(len(l.Keys()) == 0 && len(model.keys) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	l := NewLRU[int, int](500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Put(i%2000, i)
		l.Get((i * 7) % 2000)
	}
}
