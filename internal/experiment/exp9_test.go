package experiment

import (
	"reflect"
	"testing"
)

// TestExp9ParityPanel runs a miniature Exp9 grid and checks the report's
// own acceptance criterion: the engine-parity panel's two rows must be
// identical in every column except the engine name.
func TestExp9ParityPanel(t *testing.T) {
	base := Config{Seed: 3, NumObjects: 400, Days: 0.02}
	rep := exp9(base, []int{8, 16}, 2)

	if len(rep.Tables) != 2 {
		t.Fatalf("exp9 produced %d tables, want 2", len(rep.Tables))
	}
	parity := rep.Tables[0]
	if len(parity.Rows) != 2 {
		t.Fatalf("parity panel has %d rows, want 2", len(parity.Rows))
	}
	proc, sm := parity.Rows[0], parity.Rows[1]
	if proc[0] != string(EngineProcs) || sm[0] != string(EngineSM) {
		t.Fatalf("parity rows mislabeled: %q, %q", proc[0], sm[0])
	}
	if !reflect.DeepEqual(proc[1:], sm[1:]) {
		t.Fatalf("engines disagree in the parity panel:\nproc: %v\nsm:   %v", proc, sm)
	}
	if len(rep.Tables[1].Rows) != 2 {
		t.Fatalf("fleet panel has %d rows, want 2", len(rep.Tables[1].Rows))
	}
}

// TestExp9ParallelInvariance extends the Exp8 guarantee to the SM engine:
// identical rendered tables with 1 worker and with 8.
func TestExp9ParallelInvariance(t *testing.T) {
	base := Config{Seed: 4, NumObjects: 400, Days: 0.02}
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	s := exp9(base, []int{8, 16}, 2)
	SetDefaultWorkers(8)
	p := exp9(base, []int{8, 16}, 2)
	if s.String() != p.String() {
		t.Fatalf("Exp9 tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}
