// Command mcsim regenerates the paper's experiments or runs a single
// custom simulation of the mobile caching system.
//
// Regenerate a figure (the experiment numbers match §5 of the paper):
//
//	mcsim -exp 1          # Figure 2: caching granularity
//	mcsim -exp 2          # Figure 3: replacement policies, best case
//	mcsim -exp 3          # Figure 4: replacement policies, realistic
//	mcsim -exp 4          # Figures 5+6: CSH change rates and cyclic
//	mcsim -exp 5          # Figure 7: coherence (beta x U)
//	mcsim -exp 6          # Figure 8: disconnection (D x V)
//	mcsim -exp 7          # beyond the paper: unreliable channels (loss x G x coherence)
//	mcsim -exp table1     # Table 1: parameter settings
//	mcsim -exp all        # everything
//
// Add -quick for a reduced-scale pass (shorter horizon, sparser grids).
// Sweeps execute on a worker pool, one independent simulation per CPU by
// default; -parallel N overrides the pool size (-parallel 1 forces the old
// serial behaviour — tables are identical either way).
//
// Run one custom configuration:
//
//	mcsim -run -granularity hc -policy ewma-0.5 -kind NQ -heat csh \
//	      -arrival bursty -update 0.3 -beta 1 -days 2
//
// Simulate unreliable channels (deterministic fault injection + client
// retry/backoff; see DESIGN.md §9):
//
//	mcsim -run -granularity hc -loss 0.1 -retry 3          # 10% frame loss
//	mcsim -run -granularity ac -loss 0.05 -burst 0.2       # plus burst outages
//
// Generate a self-contained run report (docs/OBSERVABILITY.md): manifest,
// Markdown with inline SVG timelines, and a per-query trace. With -exp the
// sweep runs first and one representative configuration is re-run
// instrumented; with -run the single run itself is instrumented:
//
//	mcsim -exp 1 -report out/       # tables + instrumented Exp1 run
//	mcsim -run -loss 0.1 -report out/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "experiment to regenerate: 1..7, table1, or all")
		quick    = flag.Bool("quick", false, "reduced-scale pass (1 simulated day, sparser grids)")
		runOne   = flag.Bool("run", false, "run a single custom configuration")
		parallel = flag.Int("parallel", 0, "concurrent simulation runs for sweeps and -replicas (0 = one per CPU)")

		days    = flag.Float64("days", 0, "simulated days (0 = experiment default)")
		seed    = flag.Uint64("seed", 1, "root random seed")
		clients = flag.Int("clients", 0, "number of mobile clients (0 = default)")
		objects = flag.Int("objects", 0, "database objects (0 = default 2000)")

		granularity = flag.String("granularity", "hc", "caching granularity: nc|ac|oc|hc")
		policy      = flag.String("policy", "ewma-0.5", "replacement policy spec")
		kind        = flag.String("kind", "AQ", "query kind: AQ|NQ")
		heat        = flag.String("heat", "sh", "heat pattern: sh|csh|cyclic")
		changeRate  = flag.Int("change", 500, "CSH hot-set change rate in queries")
		arrival     = flag.String("arrival", "poisson", "arrival pattern: poisson|bursty")
		update      = flag.Float64("update", 0.1, "update probability U")
		beta        = flag.Float64("beta", 0, "coherence staleness tolerance beta")
		coherenceS  = flag.String("coherence", "lease", "coherence strategy: lease|fixed|ir")
		fixedLease  = flag.Float64("lease", 0, "fixed-lease duration in seconds (with -coherence fixed)")
		shed        = flag.Float64("shed", 0, "timeout-heuristic threshold in seconds (0 = off)")
		disconnect  = flag.Int("disconnected", 0, "number of disconnected clients V")
		duration    = flag.Float64("hours", 0, "disconnection duration D in hours")
		traceFile   = flag.String("trace", "", "write a per-query CSV trace to this file (-run only)")
		replicas    = flag.Int("replicas", 1, "independent replications with consecutive seeds (-run only)")
		sharedHot   = flag.Int("shared", 0, "shared interest pool size in objects (0 = none)")
		shareProb   = flag.Float64("shareprob", 0, "probability a pick comes from the shared pool")
		bcastAttrs  = flag.Int("broadcast", 0, "broadcast the shared pool's top-N attrs (requires -shared)")

		lossRate   = flag.Float64("loss", 0, "per-frame loss probability on each channel (0 = perfect)")
		corrupt    = flag.Float64("corrupt", 0, "per-frame corruption probability (CRC-detected at receiver)")
		burst      = flag.Float64("burst", 0, "fraction of time in burst outage (Gilbert-Elliott bad state)")
		burstLen   = flag.Float64("burstlen", 0, "mean burst-outage length in seconds (0 = default 10)")
		retryMax   = flag.Int("retry", 0, "max retransmissions per request (0 = default 3, negative = none)")
		backoff    = flag.Float64("backoff", 0, "base retry backoff in seconds (0 = default 1)")

		reportDir = flag.String("report", "", "write manifest.json, report.md and trace.csv into this directory")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	experiment.SetDefaultWorkers(*parallel)

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	// Note: fatal() exits without running deferred calls, so profiles are
	// only written on successful runs.
	defer stopProfiling()

	switch {
	case *runOne:
		cfg, err := buildConfig(*granularity, *policy, *kind, *heat, *arrival,
			*changeRate, *update, *beta, *disconnect, *duration, *days, *seed, *clients, *objects)
		if err != nil {
			fatal(err)
		}
		cfg.ShedThreshold = *shed
		cfg.FixedLease = *fixedLease
		cfg.SharedHotObjects = *sharedHot
		cfg.SharedHotProb = *shareProb
		cfg.BroadcastAttrs = *bcastAttrs
		applyFaultFlags(&cfg, *lossRate, *corrupt, *burst, *burstLen, *retryMax, *backoff)
		switch *coherenceS {
		case "lease":
			cfg.Coherence = coherence.LeaseStrategy
		case "fixed":
			cfg.Coherence = coherence.FixedLeaseStrategy
		case "ir":
			cfg.Coherence = coherence.InvalidationReportStrategy
		default:
			fatal(fmt.Errorf("unknown coherence strategy %q (want lease|fixed|ir)", *coherenceS))
		}
		if *traceFile != "" {
			if *reportDir != "" {
				fatal(fmt.Errorf("-report writes its own trace.csv; drop -trace"))
			}
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			tracer := trace.NewCSV(f)
			cfg.Tracer = tracer
			defer func() {
				if err := tracer.Flush(); err != nil {
					fatal(err)
				}
			}()
		}
		if *replicas > 1 {
			rep := experiment.Replicate(cfg, *replicas)
			fmt.Println(rep)
			if *reportDir != "" {
				// Instrument the base seed's run; the replication summary
				// stays on stdout (it spans seeds, so it has no single
				// manifest).
				if _, err := instrumentedReport(*reportDir, "run",
					runCommand(cfg), nil, cfg); err != nil {
					fatal(err)
				}
				fmt.Printf("report written to %s\n", *reportDir)
			}
			return
		}
		if *reportDir != "" {
			res, err := instrumentedReport(*reportDir, "run", runCommand(cfg), nil, cfg)
			if err != nil {
				fatal(err)
			}
			printResult(res)
			fmt.Printf("report written to %s\n", *reportDir)
			return
		}
		res := experiment.Run(cfg)
		printResult(res)
	case *expFlag != "":
		base := experiment.Config{Seed: *seed, Days: *days, NumClients: *clients, NumObjects: *objects}
		applyFaultFlags(&base, *lossRate, *corrupt, *burst, *burstLen, *retryMax, *backoff)
		if *quick && base.Days == 0 {
			base.Days = 1
		}
		if err := runExperiments(*expFlag, base, *quick, *reportDir); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}

// applyFaultFlags threads the unreliable-channel flags into a config. For
// -exp sweeps they become the base every run inherits (Exp7 overrides the
// loss/burst knobs it sweeps); all-zero flags leave the config untouched,
// preserving the byte-identical perfect-channel tables.
func applyFaultFlags(cfg *experiment.Config, loss, corrupt, burst, burstLen float64,
	retryMax int, backoff float64) {

	cfg.LossRate = loss
	cfg.CorruptRate = corrupt
	cfg.BurstFraction = burst
	cfg.MeanBadSeconds = burstLen
	cfg.RetryMax = retryMax
	cfg.RetryBackoff = backoff
}

func buildConfig(gran, policy, kind, heat, arrival string, changeRate int,
	update, beta float64, disconnect int, hours, days float64,
	seed uint64, clients, objects int) (experiment.Config, error) {

	cfg := experiment.Config{
		Seed:                seed,
		Days:                days,
		NumClients:          clients,
		NumObjects:          objects,
		Policy:              policy,
		CSHChangeEvery:      changeRate,
		UpdateProb:          update,
		Beta:                beta,
		DisconnectedClients: disconnect,
		DisconnectHours:     hours,
	}
	g, err := core.ParseGranularity(gran)
	if err != nil {
		return cfg, err
	}
	cfg.Granularity = g

	switch strings.ToUpper(kind) {
	case "AQ":
		cfg.QueryKind = workload.Associative
	case "NQ":
		cfg.QueryKind = workload.Navigational
	default:
		return cfg, fmt.Errorf("unknown query kind %q (want AQ|NQ)", kind)
	}
	switch heat {
	case "sh":
		cfg.Heat = experiment.SkewedHeat
	case "csh":
		cfg.Heat = experiment.ChangingSkewedHeat
	case "cyclic":
		cfg.Heat = experiment.CyclicHeat
	default:
		return cfg, fmt.Errorf("unknown heat %q (want sh|csh|cyclic)", heat)
	}
	switch arrival {
	case "poisson":
		cfg.Arrival = experiment.PoissonArrival
	case "bursty":
		cfg.Arrival = experiment.BurstyArrival
	default:
		return cfg, fmt.Errorf("unknown arrival %q (want poisson|bursty)", arrival)
	}
	return cfg, nil
}

func printResult(res experiment.Result) {
	fmt.Printf("config: %s  heat=%s arrivals=%s beta=%g U=%g V=%d D=%gh\n",
		res.Config, res.Config.HeatName(), res.Config.ArrivalName(),
		res.Config.Beta, res.Config.UpdateProb,
		res.Config.DisconnectedClients, res.Config.DisconnectHours)
	fmt.Printf("hit ratio      %6.2f%%\n", 100*res.HitRatio)
	fmt.Printf("response time  %6.3fs\n", res.MeanResponse)
	fmt.Printf("error rate     %6.2f%%\n", 100*res.ErrorRate)
	fmt.Printf("queries        %d (local %d, remote %d)\n",
		res.QueriesIssued, res.QueriesLocal, res.QueriesRemote)
	fmt.Printf("unavailable    %d reads\n", res.Unavailable)
	fmt.Printf("channels       up %.1f%%, down %.1f%% utilized; down wait %.3fs\n",
		100*res.UplinkUtilization, 100*res.DownlinkUtilization, res.DownlinkMeanWait)
	fmt.Printf("server         %d queries, %d disk reads, buffer hit %.1f%%, %d updates\n",
		res.Server.QueriesServed, res.Server.DiskReads,
		100*res.Server.BufferHitRatio, res.Server.UpdatesApplied)
	fmt.Printf("radio energy   %.3f J/query\n", res.RadioEnergyPerQuery)
	if res.BroadcastReads > 0 {
		fmt.Printf("air reads      %d (broadcast channel)\n", res.BroadcastReads)
	}
	if res.ItemsShed > 0 {
		fmt.Printf("shed items     %d (timeout heuristic)\n", res.ItemsShed)
	}
	if res.CacheDrops > 0 {
		fmt.Printf("cache drops    %d (missed invalidation reports)\n", res.CacheDrops)
	}
	if res.FramesLost > 0 || res.FramesCorrupted > 0 || res.Retries > 0 {
		fmt.Printf("channel faults %d frames lost, %d corrupted\n",
			res.FramesLost, res.FramesCorrupted)
		fmt.Printf("reliability    %d retries, %d timeouts, %d degraded reads; access errors %.2f%%\n",
			res.Retries, res.Timeouts, res.DegradedReads, 100*res.AccessErrorRate)
	}
}

// expCatalog summarizes every -exp key in selection order; the unknown
// -experiment error prints it so a typo teaches the valid range.
var expCatalog = []struct{ key, summary string }{
	{"1", "Figure 2: caching granularity (NC/AC/OC/HC)"},
	{"2", "Figure 3: replacement policies, best case"},
	{"3", "Figure 4: replacement policies, realistic workloads"},
	{"4", "Figures 5+6: CSH change rates and cyclic access"},
	{"5", "Figure 7: coherence (beta x U)"},
	{"6", "Figure 8: disconnected operation (D x V)"},
	{"7", "beyond the paper: unreliable channels (loss x burst x coherence)"},
	{"table1", "Table 1: parameter settings"},
	{"all", "every experiment above"},
}

// unknownExperiment builds the error for an unrecognized -exp value: the
// valid range plus one line per experiment.
func unknownExperiment(which string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "unknown experiment %q (want 1..7, table1, all); valid experiments:", which)
	for _, e := range expCatalog {
		fmt.Fprintf(&b, "\n  %-6s  %s", e.key, e.summary)
	}
	return fmt.Errorf("%s", b.String())
}

// runExperiments regenerates the requested experiment(s). With a non-empty
// reportDir, the first experiment's first configuration is re-run
// instrumented after the sweep and the report artifacts are written there.
func runExperiments(which string, base experiment.Config, quick bool, reportDir string) error {
	type job struct {
		name string
		run  func() fmt.Stringer
	}
	var jobs []job
	add := func(name string, run func() fmt.Stringer) {
		jobs = append(jobs, job{name, run})
	}
	wantAll := which == "all"
	want := func(n string) bool { return wantAll || which == n }

	if want("table1") {
		add("Table 1", func() fmt.Stringer { return experiment.Table1() })
	}
	if want("1") {
		add("Experiment #1 (Figure 2)", func() fmt.Stringer { return experiment.Exp1(base) })
	}
	if want("2") {
		add("Experiment #2 (Figure 3)", func() fmt.Stringer { return experiment.Exp2(base) })
	}
	if want("3") {
		add("Experiment #3 (Figure 4)", func() fmt.Stringer { return experiment.Exp3(base) })
	}
	if want("4") {
		add("Experiment #4 (Figure 5)", func() fmt.Stringer { return experiment.Exp4(base) })
		add("Experiment #4 (Figure 6)", func() fmt.Stringer { return experiment.Exp4Cyclic(base) })
	}
	if want("5") {
		add("Experiment #5 (Figure 7)", func() fmt.Stringer { return experiment.Exp5(base) })
	}
	if want("6") {
		if quick {
			add("Experiment #6 (Figure 8, quick grid)", func() fmt.Stringer { return experiment.Exp6Quick(base) })
		} else {
			add("Experiment #6 (Figure 8)", func() fmt.Stringer { return experiment.Exp6(base) })
		}
	}
	if want("7") {
		if quick {
			add("Experiment #7 (unreliable channels, quick grid)", func() fmt.Stringer { return experiment.Exp7Quick(base) })
		} else {
			add("Experiment #7 (unreliable channels)", func() fmt.Stringer { return experiment.Exp7(base) })
		}
	}
	if len(jobs) == 0 {
		return unknownExperiment(which)
	}
	var firstRep *experiment.Report
	for _, j := range jobs {
		start := time.Now()
		fmt.Printf("=== %s ===\n", j.name)
		out := j.run()
		fmt.Println(out.String())
		fmt.Printf("(%s in %.1fs)\n\n", j.name, time.Since(start).Seconds())
		if r, ok := out.(*experiment.Report); ok && firstRep == nil && len(r.Results) > 0 {
			firstRep = r
		}
	}
	if reportDir != "" {
		if firstRep == nil {
			return fmt.Errorf("-report needs a simulation to instrument (table1 runs none)")
		}
		cfg := firstRep.Results[0].Config
		// The literal "<dir>" keeps report bytes independent of where the
		// artifacts landed: same seed, same bytes, any output directory.
		command := fmt.Sprintf("mcsim -exp %s -seed %d", which, base.Seed)
		if quick {
			command += " -quick"
		}
		command += " -report <dir>"
		if _, err := instrumentedReport(reportDir, "exp"+which, command, firstRep, cfg); err != nil {
			return err
		}
		fmt.Printf("report: instrumented %s re-run written to %s\n", cfg, reportDir)
	}
	return nil
}

// runCommand renders the reproduce command for a -run report. The manifest
// config is the authoritative parameter record; the command names the
// flags a rerun usually needs. "<dir>" stands in for the output directory
// so report bytes never depend on where the artifacts landed.
func runCommand(cfg experiment.Config) string {
	return fmt.Sprintf("mcsim -run -granularity %s -policy %s -seed %d -report <dir> (full parameters: manifest config)",
		cfg.Granularity, cfg.Policy, cfg.Seed)
}

// instrumentedReport runs cfg with an obs registry and a trace collector
// attached and writes manifest.json, report.md and trace.csv into dir.
// rep (optional) supplies the sweep tables the report embeds and hashes.
func instrumentedReport(dir, expName, command string, rep *experiment.Report,
	cfg experiment.Config) (experiment.Result, error) {

	col := &trace.Collector{}
	cfg.Tracer = col
	cfg.Obs = obs.New(0)
	start := time.Now()
	res := experiment.Run(cfg)
	man := report.NewManifest(expName, command, res.Config, rep, cfg.Obs)
	man.WallSeconds = time.Since(start).Seconds()
	err := report.Write(dir, report.Input{
		Manifest: man,
		Rep:      rep,
		Result:   res,
		Reg:      cfg.Obs,
		Trace:    col,
	})
	return res, err
}
