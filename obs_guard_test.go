package repro

import (
	"reflect"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/experiment"
	"repro/internal/federation"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/sim"
)

// obsDisabledHotPath performs every instrument operation the simulation's
// hot path can make against a disabled (nil) registry: the Enabled gate
// experiment.Run checks before wiring, plus the counter/histogram calls
// that sit inside the server's per-query loop. This is the exact shape of
// the overhead an uninstrumented run pays.
func obsDisabledHotPath(reg *obs.Registry, c *obs.Counter, h *obs.Histogram) {
	if reg.Enabled() {
		panic("nil registry reported enabled")
	}
	c.Inc()
	c.Add(3)
	h.Observe(0.25)
}

// TestObsDisabledAddsNoAllocs is the macro half of the zero-cost
// contract (the micro half, per-instrument, lives in internal/obs): with
// cfg.Obs unset, the observability layer must contribute zero
// allocations per operation to the simulation hot path.
func TestObsDisabledAddsNoAllocs(t *testing.T) {
	var reg *obs.Registry // cfg.Obs zero value: observability off
	c := reg.Counter("guard.counter")
	h := reg.Histogram("guard.histogram", 1e-3, 1e3)
	if allocs := testing.AllocsPerRun(1000, func() {
		obsDisabledHotPath(reg, c, h)
	}); allocs != 0 {
		t.Fatalf("disabled observability path allocates %v allocs/op, want 0", allocs)
	}
}

// TestObsDisabledMatchesAbsent pins the stronger property behind the
// benchmark guard: a run with a nil registry is not merely cheap but
// bit-identical to one that never heard of observability, because Run
// skips registration and sampler attachment entirely.
func TestObsDisabledMatchesAbsent(t *testing.T) {
	cfg := experiment.Config{Seed: 5, Days: 0.01, NumClients: 2, NumObjects: 200}
	plain := experiment.Run(cfg)
	cfg.Obs = nil // explicit, for the reader: the zero value is "off"
	again := experiment.Run(cfg)
	// Blank the echoed Config: its unset PrefetchKappa is NaN, which is
	// never DeepEqual to itself.
	plain.Config, again.Config = experiment.Config{}, experiment.Config{}
	if !reflect.DeepEqual(plain, again) {
		t.Fatalf("nil-registry run diverged from plain run:\n%+v\nvs\n%+v", plain, again)
	}
}

// TestObsDisabledRegistrationIsFree extends the guard to every subsystem
// that exposes a Register hook — channels, the federation backbone, and
// the broadcast program: registering against a disabled (nil) registry
// must allocate nothing and register nothing.
func TestObsDisabledRegistrationIsFree(t *testing.T) {
	var reg *obs.Registry
	k := sim.NewKernel()
	ch := network.NewChannel(k, "guard", network.WirelessBandwidthBps)
	cluster := federation.New(federation.Config{
		Kernel:     k,
		DB:         oodb.New(oodb.Config{NumObjects: 40, RelSeed: 1}),
		NumServers: 2,
	})
	program := broadcast.New([]oodb.Item{oodb.ObjectItem(1)},
		network.WirelessBandwidthBps, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		ch.Register(reg, "guard")
		cluster.Register(reg, "backbone")
		program.Register(reg, "broadcast")
	}); allocs != 0 {
		t.Fatalf("disabled registration allocates %v allocs/op, want 0", allocs)
	}
	if names := reg.SeriesNames(); len(names) != 0 {
		t.Fatalf("nil registry accumulated series: %v", names)
	}
}

// BenchmarkObsDisabledHotPath reports the per-operation cost of the
// disabled observability path; run with -benchmem, the allocs/op column
// must read 0 (TestObsDisabledAddsNoAllocs enforces it).
func BenchmarkObsDisabledHotPath(b *testing.B) {
	var reg *obs.Registry
	c := reg.Counter("guard.counter")
	h := reg.Histogram("guard.histogram", 1e-3, 1e3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obsDisabledHotPath(reg, c, h)
	}
}
