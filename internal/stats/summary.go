package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary collects raw observations for offline summarization: percentiles,
// min/max, and confidence intervals. The experiment harness uses it for
// response-time distributions; the online estimators in stats.go are used
// inside the simulation where memory per item matters.
type Summary struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Summary) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.xs) }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample (Bessel-corrected) standard deviation.
func (s *Summary) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. Returns 0 when empty.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	s.ensureSorted()
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// CI95 returns the half-width of a 95% confidence interval on the mean
// using the normal approximation (the paper reports "very tight confidence
// intervals"; we expose them so EXPERIMENTS.md can verify the same).
func (s *Summary) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(n))
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// String formats the summary for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.Count(), s.Mean(), s.Std(), s.Percentile(50), s.Percentile(95), s.Max())
}

// Ratio is a hit/miss style counter pair with a convenience percentage.
type Ratio struct {
	Num   uint64
	Denom uint64
}

// AddHit increments both numerator and denominator.
func (r *Ratio) AddHit() { r.Num++; r.Denom++ }

// AddMiss increments the denominator only.
func (r *Ratio) AddMiss() { r.Denom++ }

// Add increments the denominator, and the numerator when hit is true.
func (r *Ratio) Add(hit bool) {
	if hit {
		r.Num++
	}
	r.Denom++
}

// Value returns Num/Denom (0 when empty).
func (r *Ratio) Value() float64 {
	if r.Denom == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Denom)
}

// Percent returns the ratio as a percentage.
func (r *Ratio) Percent() float64 { return 100 * r.Value() }

// Merge adds another ratio's counts.
func (r *Ratio) Merge(o Ratio) {
	r.Num += o.Num
	r.Denom += o.Denom
}
