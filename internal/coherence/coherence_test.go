package coherence

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/oodb"
)

func attr(oid int, a int) oodb.Item { return oodb.AttrItem(oodb.OID(oid), oodb.AttrID(a)) }

func TestRefreshTimeNoWrites(t *testing.T) {
	e := NewRefreshEstimator(0)
	// Never written in 100s: provisional lease of another 100s.
	if rt := e.RefreshTime(attr(1, 0), 100); rt != 100 {
		t.Fatalf("RT with no writes = %v, want 100", rt)
	}
	if exp := e.ExpiresAt(attr(1, 0), 100); exp != 200 {
		t.Fatalf("ExpiresAt = %v, want 200", exp)
	}
}

func TestRefreshTimeSingleWrite(t *testing.T) {
	e := NewRefreshEstimator(0)
	e.ObserveWrite(attr(1, 0), 10)
	// One write = zero inter-arrival durations: provisional lease is the
	// time elapsed since that write.
	if rt := e.RefreshTime(attr(1, 0), 40); rt != 30 {
		t.Fatalf("RT with one write = %v, want 30", rt)
	}
	if rt := e.RefreshTime(attr(1, 0), 10); rt != 0 {
		t.Fatalf("RT at the write instant = %v, want 0", rt)
	}
	if e.WriteCount(attr(1, 0)) != 1 {
		t.Fatalf("WriteCount = %d", e.WriteCount(attr(1, 0)))
	}
}

func TestRefreshTimeFormula(t *testing.T) {
	it := attr(1, 0)
	// Writes at 0, 10, 30: durations 10, 20 -> mean 15, std 5.
	for _, beta := range []float64{-1, 0, 1, 2} {
		e := NewRefreshEstimator(beta)
		e.ObserveWrite(it, 0)
		e.ObserveWrite(it, 10)
		e.ObserveWrite(it, 30)
		want := 15 + beta*5
		if got := e.RefreshTime(it, 100); math.Abs(got-want) > 1e-9 {
			t.Fatalf("beta=%v: RT = %v, want %v", beta, got, want)
		}
		if exp := e.ExpiresAt(it, 100); math.Abs(exp-(100+want)) > 1e-9 {
			t.Fatalf("beta=%v: ExpiresAt = %v", beta, exp)
		}
	}
}

func TestRefreshTimeClampedNonNegative(t *testing.T) {
	e := NewRefreshEstimator(-10)
	it := attr(2, 3)
	e.ObserveWrite(it, 0)
	e.ObserveWrite(it, 10)
	e.ObserveWrite(it, 30)
	if rt := e.RefreshTime(it, 50); rt != 0 {
		t.Fatalf("RT = %v, want 0 (clamped)", rt)
	}
	if exp := e.ExpiresAt(it, 50); exp != 50 {
		t.Fatalf("ExpiresAt = %v, want 50", exp)
	}
}

func TestBetaMonotonicity(t *testing.T) {
	// Larger beta must never shorten the lease (given positive std).
	rts := make([]float64, 0, 3)
	for _, beta := range []float64{-1, 0, 1} {
		e := NewRefreshEstimator(beta)
		it := attr(1, 1)
		e.ObserveWrite(it, 0)
		e.ObserveWrite(it, 5)
		e.ObserveWrite(it, 20)
		rts = append(rts, e.RefreshTime(it, 100))
	}
	if !(rts[0] < rts[1] && rts[1] < rts[2]) {
		t.Fatalf("RT not monotone in beta: %v", rts)
	}
}

func TestFrequentWritesShorterLease(t *testing.T) {
	e := NewRefreshEstimator(0)
	hot, cold := attr(1, 0), attr(2, 0)
	for i := 0; i < 10; i++ {
		e.ObserveWrite(hot, float64(i))       // every 1s
		e.ObserveWrite(cold, float64(i*1000)) // every 1000s
	}
	if e.RefreshTime(hot, 1e5) >= e.RefreshTime(cold, 1e5) {
		t.Fatalf("hot RT %v >= cold RT %v", e.RefreshTime(hot, 1e5), e.RefreshTime(cold, 1e5))
	}
}

func TestPerItemIsolation(t *testing.T) {
	e := NewRefreshEstimator(0)
	e.ObserveWrite(attr(1, 0), 0)
	e.ObserveWrite(attr(1, 0), 10)
	// Untouched items behave as never-written (provisional lease = now).
	if e.RefreshTime(attr(1, 1), 500) != 500 {
		t.Fatal("write stream leaked across attributes")
	}
	if e.RefreshTime(attr(2, 0), 500) != 500 {
		t.Fatal("write stream leaked across objects")
	}
	if e.TrackedItems() != 1 {
		t.Fatalf("TrackedItems = %d", e.TrackedItems())
	}
}

func TestOracleObjectVsAttributeGranularity(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 10})
	o := NewOracle(db)

	objIt := oodb.ObjectItem(5)
	attrA := attr(5, 0)
	attrB := attr(5, 1)

	vObj := o.CurrentVersion(objIt)
	vA := o.CurrentVersion(attrA)

	// A write on attribute 1 of object 5...
	db.Write(5, 1)

	// ...makes an object-granularity read an error (OC behaviour),
	if !o.IsError(objIt, vObj) {
		t.Fatal("object-granularity read after foreign-attribute write should error")
	}
	// ...but an attribute-0 read is NOT an error (AC/HC behaviour).
	if o.IsError(attrA, vA) {
		t.Fatal("attribute-granularity read of untouched attribute should not error")
	}
	// And a read of the written attribute (fetched before) is an error.
	if !o.IsError(attrB, 0) {
		t.Fatal("read of written attribute should error")
	}
}

func TestOracleFreshFetchIsClean(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 10})
	o := NewOracle(db)
	db.Write(3, 0)
	db.Write(3, 0)
	it := attr(3, 0)
	v := o.CurrentVersion(it)
	if o.IsError(it, v) {
		t.Fatal("read at current version flagged as error")
	}
	db.Write(3, 0)
	if !o.IsError(it, v) {
		t.Fatal("read after subsequent write not flagged")
	}
}

func TestNewOracleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOracle(nil) did not panic")
		}
	}()
	NewOracle(nil)
}

// Property: RefreshTime is always non-negative and equals mean+beta*std of
// the recorded durations when at least one duration exists.
func TestQuickRefreshTimeNonNegative(t *testing.T) {
	f := func(gaps []uint8, betaRaw int8) bool {
		beta := float64(betaRaw) / 32
		e := NewRefreshEstimator(beta)
		it := attr(0, 0)
		now := 0.0
		for _, g := range gaps {
			now += float64(g)
			e.ObserveWrite(it, now)
		}
		rt := e.RefreshTime(it, now+1)
		return rt >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IsError is monotone — once a read is an error it stays an error
// as more writes land.
func TestQuickErrorMonotone(t *testing.T) {
	f := func(writes uint8) bool {
		db := oodb.New(oodb.Config{NumObjects: 4})
		o := NewOracle(db)
		it := attr(1, 2)
		v := o.CurrentVersion(it)
		wasError := false
		for i := 0; i < int(writes)%20; i++ {
			db.Write(1, 2)
			e := o.IsError(it, v)
			if wasError && !e {
				return false
			}
			wasError = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParse covers the flag-facing name table, including every alias and
// the rejection of unknown names.
func TestParse(t *testing.T) {
	cases := []struct {
		name string
		want Strategy
		ok   bool
	}{
		{"lease", LeaseStrategy, true},
		{"ir", InvalidationReportStrategy, true},
		{"invalidation-report", InvalidationReportStrategy, true},
		{"fixed", FixedLeaseStrategy, true},
		{"fixed-lease", FixedLeaseStrategy, true},
		{"irb", IRBroadcastStrategy, true},
		{"ir-broadcast", IRBroadcastStrategy, true},
		{"", 0, false},
		{"LEASE", 0, false},
		{"broadcast", 0, false},
	}
	for _, tc := range cases {
		got, ok := Parse(tc.name)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Parse(%q) = %v, %v; want %v, %v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
	for _, s := range []Strategy{LeaseStrategy, InvalidationReportStrategy,
		FixedLeaseStrategy, IRBroadcastStrategy} {
		if got, ok := Parse(s.String()); !ok || got != s {
			t.Errorf("Parse(%q) does not round-trip %v", s.String(), s)
		}
	}
}
