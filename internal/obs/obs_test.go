package obs

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	if c := r.Counter("x"); c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	if h := r.Histogram("x", 1, 10); h != nil {
		t.Fatal("nil registry returned a live histogram")
	}
	r.Gauge("x", func() float64 { return 1 })
	if got := r.Series("x"); got != nil {
		t.Fatal("nil registry holds series")
	}
	if r.SeriesNames() != nil || r.AllSeries() != nil || r.Histograms() != nil {
		t.Fatal("nil registry listings non-empty")
	}
	if r.Samples() != 0 || r.Interval() != 0 {
		t.Fatal("nil registry counters non-zero")
	}
	// Attach on nil must not schedule anything.
	k := sim.NewKernel()
	r.Attach(k, 100)
	if k.RunAll() != 0 {
		t.Fatal("nil Attach scheduled events")
	}
}

// TestNilInstrumentsZeroAlloc is the micro half of the disabled-path
// guarantee: every instrument operation compiled into the simulator's hot
// paths must be free (and allocation-free) when observability is off. The
// root package's guard test asserts the same end to end.
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var c *Counter
	var h *Histogram
	var s *Series
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		_ = c.Value()
		h.Observe(1.5)
		_ = h.Quantile(0.5)
		_ = h.Mean()
		_, _ = s.Last()
	})
	if allocs != 0 {
		t.Fatalf("nil instrument ops allocated %v allocs/op, want 0", allocs)
	}
}

func TestCounterAndLookup(t *testing.T) {
	r := New(1)
	c := r.Counter("evictions")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %g, want 5", c.Value())
	}
	if again := r.Counter("evictions"); again != c {
		t.Fatal("re-registering a counter by name must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestHistogramQuantiles(t *testing.T) {
	r := New(1)
	h := r.Histogram("rt", 0.001, 1000)
	if again := r.Histogram("rt", 1, 2); again != h {
		t.Fatal("re-registering a histogram by name must return the same instrument")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100) // 0 .. 9.99
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-4.995) > 1e-9 {
		t.Fatalf("mean %g, want 4.995", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 4 || p50 > 6.5 {
		t.Fatalf("p50 = %g, want ~5 within bucket resolution", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 9 || p99 > 12 {
		t.Fatalf("p99 = %g, want ~9.9 within bucket resolution", p99)
	}
	if q := h.Quantile(0); q < 0.001 {
		t.Fatalf("q0 = %g below lo", q)
	}
	// Overflow and underflow land on the range edges.
	h2 := r.Histogram("edge", 1, 10)
	h2.Observe(0)
	h2.Observe(100)
	if h2.Quantile(0) != 1 || h2.Quantile(1) != 10 {
		t.Fatalf("edge quantiles = %g, %g", h2.Quantile(0), h2.Quantile(1))
	}
}

func TestSamplerOnVirtualTime(t *testing.T) {
	k := sim.NewKernel()
	r := New(10)
	v := 0.0
	r.Gauge("g", func() float64 { return v })
	c := r.Counter("c")

	// A process that bumps the observed state between ticks.
	k.Spawn("mutator", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Hold(10)
			v = p.Now()
			c.Add(1)
		}
	})
	r.Attach(k, 100)
	k.RunAll()
	k.Drain()

	g := r.Series("g")
	cs := r.Series("c")
	if g == nil || cs == nil {
		t.Fatal("series missing")
	}
	// Ticks at 0,10,...,100 → 11 samples.
	if len(g.T) != 11 || r.Samples() != 11 {
		t.Fatalf("samples = %d (series %d), want 11", r.Samples(), len(g.T))
	}
	if g.T[0] != 0 || g.T[10] != 100 {
		t.Fatalf("tick times = %v", g.T)
	}
	// Same-time ordering: the mutator holds to t then the sampler tick at t
	// runs after it (the mutator's resume was scheduled first), so the
	// sample at t=10 already sees v=10.
	if g.V[1] != 10 {
		t.Fatalf("gauge at t=10 sampled %g", g.V[1])
	}
	if tl, vl := cs.Last(); tl != 100 || vl != 10 {
		t.Fatalf("counter series last = (%g, %g), want (100, 10)", tl, vl)
	}
	if got := r.SeriesNames(); !reflect.DeepEqual(got, []string{"c", "g"}) {
		t.Fatalf("names = %v", got)
	}
}

// TestSamplerDoesNotOutliveHorizon pins the no-clock-extension contract:
// the last tick lands at or before the horizon, so sampling cannot stretch
// the final kernel time of a run whose own events reach the horizon.
func TestSamplerDoesNotOutliveHorizon(t *testing.T) {
	k := sim.NewKernel()
	r := New(30)
	r.Gauge("g", func() float64 { return 0 })
	r.Attach(k, 100) // ticks at 0, 30, 60, 90 — not 120
	end := k.RunAll()
	if end != 90 {
		t.Fatalf("final clock %g, want 90", end)
	}
	if r.Samples() != 4 {
		t.Fatalf("samples %d, want 4", r.Samples())
	}
}

func TestAttachDerivesInterval(t *testing.T) {
	k := sim.NewKernel()
	r := New(0)
	r.Gauge("g", func() float64 { return 1 })
	r.Attach(k, 480)
	if r.Interval() != 2 { // 480 / DefaultSamplePoints
		t.Fatalf("derived interval %g, want 2", r.Interval())
	}
	k.RunAll()
	if r.Samples() != DefaultSamplePoints+1 {
		t.Fatalf("samples %d, want %d", r.Samples(), DefaultSamplePoints+1)
	}
}
