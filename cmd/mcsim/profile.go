package main

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiling wires up the optional profiling sinks: a CPU profile
// written for the whole run, a heap profile captured at exit, and a live
// net/http/pprof endpoint. The returned stop function finalizes the
// profiles; it is a no-op when no sink was requested. Runs that abort via
// fatal() skip the stop function, so profiles are only complete on
// successful exits.
func startProfiling(cpuFile, memFile, addr string) (stop func(), err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if addr != "" {
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mcsim: pprof server:", err)
			}
		}()
	}
	return func() {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if memFile != "" {
			out, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcsim: memprofile:", err)
				return
			}
			defer out.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(out); err != nil {
				fmt.Fprintln(os.Stderr, "mcsim: memprofile:", err)
			}
		}
	}, nil
}
