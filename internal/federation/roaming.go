package federation

import (
	"fmt"
	"sort"

	"repro/internal/coherence"
	"repro/internal/server"
	"repro/internal/sim"
)

// MobilitySchedule maps virtual time to the cell a client is attached to:
// the "possibly under different cells" half of the paper's §6 extension. A
// client's contact server changes as it moves; its cache travels with it,
// so items fetched in one cell keep serving reads in the next — but reads
// that were cell-local before a move may become relayed after it.
type MobilitySchedule struct {
	// handoffs[i] is the time at which the client enters cells[i+1];
	// before handoffs[0] the client is in cells[0].
	cells    []int
	handoffs []float64
}

// NewMobilitySchedule builds a schedule from the initial cell and a list
// of (time, cell) handoffs in ascending time order.
func NewMobilitySchedule(initial int, handoffTimes []float64, cells []int) *MobilitySchedule {
	if len(handoffTimes) != len(cells) {
		panic("federation: handoff times and cells must align")
	}
	for i := 1; i < len(handoffTimes); i++ {
		if handoffTimes[i] <= handoffTimes[i-1] {
			panic("federation: handoff times must be strictly ascending")
		}
	}
	return &MobilitySchedule{
		cells:    append([]int{initial}, cells...),
		handoffs: append([]float64(nil), handoffTimes...),
	}
}

// StaticCell returns a schedule that never moves.
func StaticCell(cell int) *MobilitySchedule {
	return &MobilitySchedule{cells: []int{cell}}
}

// CellAt returns the client's cell at time t.
func (m *MobilitySchedule) CellAt(t float64) int {
	// First handoff time strictly greater than t determines the segment.
	i := sort.SearchFloat64s(m.handoffs, t)
	// handoffs[i-1] <= t < handoffs[i]; at the exact handoff instant the
	// client is already in the new cell (SearchFloat64s returns the first
	// index with handoffs[i] >= t; adjust for equality).
	for i < len(m.handoffs) && m.handoffs[i] <= t {
		i++
	}
	return m.cells[i]
}

// Handoffs returns the number of scheduled cell changes.
func (m *MobilitySchedule) Handoffs() int { return len(m.handoffs) }

// Roamer is a client backend that routes each request through the contact
// server of whatever cell the client occupies at that moment.
type Roamer struct {
	cluster  *Cluster
	mobility *MobilitySchedule
	served   map[int]uint64 // requests handled per cell
}

// NewRoamer builds a roaming backend over the cluster.
func (c *Cluster) NewRoamer(m *MobilitySchedule) *Roamer {
	if m == nil {
		panic("federation: NewRoamer requires a mobility schedule")
	}
	for _, cell := range m.cells {
		if cell < 0 || cell >= len(c.nodes) {
			panic(fmt.Sprintf("federation: mobility schedule references cell %d of %d",
				cell, len(c.nodes)))
		}
	}
	return &Roamer{cluster: c, mobility: m, served: make(map[int]uint64)}
}

// Oracle exposes the global perfect-knowledge oracle.
func (r *Roamer) Oracle() *coherence.Oracle { return r.cluster.oracle }

// Process routes the request via the current cell's contact server.
func (r *Roamer) Process(p *sim.Proc, req server.Request) server.Reply {
	cell := r.mobility.CellAt(p.Now())
	r.served[cell]++
	return r.cluster.Contact(cell).Process(p, req)
}

// ServedByCell reports how many requests each cell's contact server
// handled for this client.
func (r *Roamer) ServedByCell() map[int]uint64 {
	out := make(map[int]uint64, len(r.served))
	for k, v := range r.served {
		out[k] = v
	}
	return out
}
