package federation

import (
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newCluster(t *testing.T, servers, relayObjects int) (*sim.Kernel, *oodb.Database, *Cluster) {
	t.Helper()
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: 100, RelSeed: 1})
	c := New(Config{
		Kernel:            k,
		DB:                db,
		NumServers:        servers,
		Seed:              3,
		RelayCacheObjects: relayObjects,
	})
	return k, db, c
}

func exec(k *sim.Kernel, fn func(p *sim.Proc)) {
	k.Spawn("test", fn)
	k.RunAll()
}

func readsOn(oids ...int) []workload.ReadOp {
	var out []workload.ReadOp
	for _, oid := range oids {
		out = append(out, workload.ReadOp{OID: oodb.OID(oid), Attr: 0})
	}
	return out
}

func TestOwnerPartition(t *testing.T) {
	_, _, c := newCluster(t, 4, 0)
	if c.NumServers() != 4 {
		t.Fatalf("NumServers = %d", c.NumServers())
	}
	counts := make([]int, 4)
	for oid := 0; oid < 100; oid++ {
		o := c.Owner(oodb.OID(oid))
		if o < 0 || o >= 4 {
			t.Fatalf("Owner(%d) = %d", oid, o)
		}
		counts[o]++
	}
	for i, n := range counts {
		if n != 25 {
			t.Fatalf("partition %d holds %d objects, want 25", i, n)
		}
	}
	// Range partition: contiguous.
	if c.Owner(0) != 0 || c.Owner(24) != 0 || c.Owner(25) != 1 || c.Owner(99) != 3 {
		t.Fatal("range partition boundaries wrong")
	}
}

func TestSingleNodeDelegates(t *testing.T) {
	k, _, c := newCluster(t, 1, 0)
	cs := c.Contact(0)
	var rep server.Reply
	exec(k, func(p *sim.Proc) {
		rep = cs.Process(p, server.Request{
			Granularity: core.AttributeCaching,
			Accesses:    readsOn(1, 2),
			Need:        readsOn(1, 2),
		})
	})
	if len(rep.Items) != 2 {
		t.Fatalf("reply items = %d", len(rep.Items))
	}
}

func TestRemoteReadsAreRelayed(t *testing.T) {
	k, _, c := newCluster(t, 4, 0)
	cs := c.Contact(0)
	var rep server.Reply
	exec(k, func(p *sim.Proc) {
		// OIDs 1 (home) and 80 (node 3).
		rep = cs.Process(p, server.Request{
			Granularity: core.AttributeCaching,
			Accesses:    readsOn(1, 80),
			Need:        readsOn(1, 80),
		})
	})
	if len(rep.Items) != 2 {
		t.Fatalf("reply items = %d, want 2", len(rep.Items))
	}
	if c.Node(0).Stats().QueriesServed != 1 || c.Node(3).Stats().QueriesServed != 1 {
		t.Fatal("home and owner nodes should each have served one request")
	}
	if c.Node(1).Stats().QueriesServed != 0 {
		t.Fatal("uninvolved node served a request")
	}
	_, _, relayed := c.RelayStats(0)
	if relayed != 1 {
		t.Fatalf("relayed reads = %d, want 1", relayed)
	}
}

func TestRemoteCostsBackboneTime(t *testing.T) {
	run := func(oid int) float64 {
		k, _, c := newCluster(t, 4, 0)
		cs := c.Contact(0)
		var elapsed float64
		exec(k, func(p *sim.Proc) {
			start := p.Now()
			cs.Process(p, server.Request{
				Granularity: core.AttributeCaching,
				Accesses:    readsOn(oid),
				Need:        readsOn(oid),
			})
			elapsed = p.Now() - start
		})
		return elapsed
	}
	local := run(1)
	remote := run(80)
	if remote <= local {
		t.Fatalf("remote read (%v) not slower than local (%v)", remote, local)
	}
	if remote < 2*DefaultBackboneLatency {
		t.Fatalf("remote read %v cheaper than two backbone latencies", remote)
	}
}

func TestRelayCacheServesRepeats(t *testing.T) {
	k, _, c := newCluster(t, 2, 10)
	cs := c.Contact(0)
	req := server.Request{
		Granularity: core.AttributeCaching,
		Accesses:    readsOn(90),
		Need:        readsOn(90),
	}
	var first, second float64
	exec(k, func(p *sim.Proc) {
		start := p.Now()
		cs.Process(p, req)
		first = p.Now() - start
		start = p.Now()
		rep := cs.Process(p, req)
		second = p.Now() - start
		if len(rep.Items) != 1 {
			t.Errorf("second reply items = %d", len(rep.Items))
		}
	})
	hits, misses, _ := c.RelayStats(0)
	if hits != 1 || misses != 1 {
		t.Fatalf("relay hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if second >= first {
		t.Fatalf("relay-cached read (%v) not faster than cold (%v)", second, first)
	}
	// The owner still saw both requests (update model/heat), but the
	// second shipped nothing.
	if got := c.Node(1).Stats().QueriesServed; got != 2 {
		t.Fatalf("owner served %d requests, want 2", got)
	}
}

func TestRelayCacheRespectsLeases(t *testing.T) {
	k, db, c := newCluster(t, 2, 10)
	// Give object 90's attribute 0 a write history so leases are short.
	cs := c.Contact(0)
	exec(k, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			db.Write(90, 0)
			c.Node(1).Process(p, server.Request{
				Granularity: core.AttributeCaching,
				Accesses:    readsOn(90),
			})
			p.Hold(10)
		}
		// Prime the relay cache.
		cs.Process(p, server.Request{
			Granularity: core.AttributeCaching,
			Accesses:    readsOn(90),
			Need:        readsOn(90),
		})
		// Far past the ~10s lease, the relay must refetch, not serve stale.
		p.Hold(1000)
		cs.Process(p, server.Request{
			Granularity: core.AttributeCaching,
			Accesses:    readsOn(90),
			Need:        readsOn(90),
		})
	})
	hits, _, _ := c.RelayStats(0)
	if hits != 0 {
		t.Fatalf("relay served %d stale hits", hits)
	}
}

func TestValidation(t *testing.T) {
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: 10})
	cases := []func(){
		func() { New(Config{DB: db, NumServers: 2}) },
		func() { New(Config{Kernel: k, NumServers: 2}) },
		func() { New(Config{Kernel: k, DB: db, NumServers: 0}) },
		func() { New(Config{Kernel: k, DB: db, NumServers: 2}).Contact(5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestUpdatesApplyAtOwner(t *testing.T) {
	k, db, c := newCluster(t, 2, 0)
	// Rebuild with updates on.
	k = sim.NewKernel()
	db = oodb.New(oodb.Config{NumObjects: 100, RelSeed: 1})
	c = New(Config{Kernel: k, DB: db, NumServers: 2, Seed: 3, UpdateProb: 1})
	cs := c.Contact(0)
	exec(k, func(p *sim.Proc) {
		cs.Process(p, server.Request{
			Granularity: core.AttributeCaching,
			Accesses:    readsOn(1, 90),
			Need:        readsOn(1, 90),
		})
	})
	if db.AttrVersion(1, 0) != 1 || db.AttrVersion(90, 0) != 1 {
		t.Fatalf("updates not applied at both partitions: v1=%d v90=%d",
			db.AttrVersion(1, 0), db.AttrVersion(90, 0))
	}
	if c.Node(0).Stats().UpdatesApplied != 1 || c.Node(1).Stats().UpdatesApplied != 1 {
		t.Fatal("update accounting not split across owners")
	}
}
