// http.go is the HTTP/JSON transport over a Store: the endpoint catalog
// documented in docs/SERVING.md, per-endpoint timeouts, and a Service
// wrapper with graceful shutdown. Handlers are thin — every cache decision
// lives in the Store so other transports can reuse it unchanged.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// Default HTTP timeouts; override via HTTPConfig.
const (
	// DefaultOpTimeout bounds one cache operation end to end.
	DefaultOpTimeout = 5 * time.Second
	// DefaultAdminTimeout bounds the stats/lease inspection endpoints,
	// which aggregate across sessions.
	DefaultAdminTimeout = 10 * time.Second
	// DefaultDrainTimeout bounds graceful shutdown: in-flight requests get
	// this long to complete before the listener is torn down hard.
	DefaultDrainTimeout = 5 * time.Second
)

// HTTPConfig tunes the transport wrapper.
type HTTPConfig struct {
	// OpTimeout bounds the read/fetch/write/invalidate/renew endpoints
	// (DefaultOpTimeout when zero).
	OpTimeout time.Duration
	// AdminTimeout bounds /v1/stats and /v1/lease (DefaultAdminTimeout
	// when zero).
	AdminTimeout time.Duration
	// Reg, when enabled, receives an HTTP request-latency histogram
	// (serve.http_latency_s).
	Reg *obs.Registry
}

// ReadRequest is the body of POST /v1/read.
type ReadRequest struct {
	// Client identifies the cache session.
	Client int `json:"client"`
	// OID / Attr are the read coordinates (attribute index, pre-cover).
	OID  uint32 `json:"oid"`
	Attr uint8  `json:"attr"`
	// Mode is "serve" (default: fetch-on-miss) or "probe" (classify only).
	Mode string `json:"mode,omitempty"`
}

// ReadResponse is the body of a /v1/read reply.
type ReadResponse struct {
	// State is "hit", "stale", or "miss" — the probe classification.
	State string `json:"state"`
	// OID / Attr name the cache unit served (Attr 255 = whole object).
	OID  uint32 `json:"oid"`
	Attr uint8  `json:"attr"`
	// Version / ExpiresAt describe the served copy (zero on probe miss).
	Version   uint64  `json:"version"`
	ExpiresAt float64 `json:"expires_at"`
	// Error marks a hit served from a copy the origin has overwritten.
	Error bool `json:"error"`
	// FromOrigin marks a serve-mode origin fetch.
	FromOrigin bool `json:"from_origin,omitempty"`
	// Now is the store clock at the read.
	Now float64 `json:"now"`
}

// WireRead is one (oid, attr) coordinate in a fetch request.
type WireRead struct {
	// OID / Attr are the read coordinates.
	OID  uint32 `json:"oid"`
	Attr uint8  `json:"attr"`
}

// FetchRequest is the body of POST /v1/fetch.
type FetchRequest struct {
	// Client identifies the cache session.
	Client int `json:"client"`
	// Reads are the coordinates to cover and install.
	Reads []WireRead `json:"reads"`
}

// FetchedWire is one installed unit in a fetch reply.
type FetchedWire struct {
	// OID / Attr name the installed unit (Attr 255 = whole object).
	OID  uint32 `json:"oid"`
	Attr uint8  `json:"attr"`
	// Version / ExpiresAt echo the granted lease.
	Version   uint64  `json:"version"`
	ExpiresAt float64 `json:"expires_at"`
}

// FetchResponse is the body of a /v1/fetch reply.
type FetchResponse struct {
	// Items lists the installed units in first-seen dedup order.
	Items []FetchedWire `json:"items"`
	// Now is the store clock at the fetch.
	Now float64 `json:"now"`
}

// WriteRequest is the body of POST /v1/write: one update event.
type WriteRequest struct {
	// OID is the written object.
	OID uint32 `json:"oid"`
	// Attrs are the attributes modified by this event.
	Attrs []uint8 `json:"attrs"`
}

// WriteResponse is the body of a /v1/write reply.
type WriteResponse struct {
	// Version is the object's version after the event.
	Version uint64 `json:"version"`
	// Now is the store clock at the write.
	Now float64 `json:"now"`
}

// InvalidateRequest is the body of POST /v1/invalidate.
type InvalidateRequest struct {
	// Client selects the session; negative = every session.
	Client int `json:"client"`
	// OID / Attr select the unit; Attr 255 = every unit of the object.
	OID  uint32 `json:"oid"`
	Attr uint8  `json:"attr"`
}

// InvalidateResponse is the body of an /v1/invalidate reply.
type InvalidateResponse struct {
	// Removed counts cache entries dropped.
	Removed int `json:"removed"`
}

// LeaseResponse is the body of /v1/lease and /v1/renew replies.
type LeaseResponse struct {
	// Cached / Valid report residency and lease state.
	Cached bool `json:"cached"`
	Valid  bool `json:"valid"`
	// Version / ExpiresAt / Remaining describe the lease when cached.
	Version   uint64  `json:"version"`
	ExpiresAt float64 `json:"expires_at"`
	Remaining float64 `json:"remaining_s"`
	// Now is the store clock at the observation.
	Now float64 `json:"now"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	// Error is a human-readable description.
	Error string `json:"error"`
}

// NewHandler builds the HTTP endpoint catalog over st. Mutating endpoints
// are bounded by OpTimeout, inspection endpoints by AdminTimeout; every
// reply is JSON.
func NewHandler(st Store, hc HTTPConfig) http.Handler {
	if hc.OpTimeout == 0 {
		hc.OpTimeout = DefaultOpTimeout
	}
	if hc.AdminTimeout == 0 {
		hc.AdminTimeout = DefaultAdminTimeout
	}
	var latency *obs.Histogram
	if hc.Reg.Enabled() {
		latency = hc.Reg.Histogram("serve.http_latency_s", 1e-6, 10)
	}

	mux := http.NewServeMux()
	op := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, http.TimeoutHandler(h, hc.OpTimeout, timeoutBody))
	}
	admin := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, http.TimeoutHandler(h, hc.AdminTimeout, timeoutBody))
	}

	op("POST /v1/read", func(w http.ResponseWriter, r *http.Request) {
		var req ReadRequest
		if !decode(w, r, &req) {
			return
		}
		mode, err := ParseReadMode(req.Mode)
		if err != nil {
			writeErr(w, err)
			return
		}
		res, err := st.Read(req.Client, oodb.OID(req.OID), oodb.AttrID(req.Attr), mode)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ReadResponse{
			State:      res.State.String(),
			OID:        uint32(res.Item.OID),
			Attr:       uint8(res.Item.Attr),
			Version:    res.Version,
			ExpiresAt:  res.ExpiresAt,
			Error:      res.Error,
			FromOrigin: res.FromOrigin,
			Now:        res.Now,
		})
	})

	op("POST /v1/fetch", func(w http.ResponseWriter, r *http.Request) {
		var req FetchRequest
		if !decode(w, r, &req) {
			return
		}
		reads := make([]workload.ReadOp, len(req.Reads))
		for i, rd := range req.Reads {
			reads[i] = workload.ReadOp{OID: oodb.OID(rd.OID), Attr: oodb.AttrID(rd.Attr)}
		}
		items, err := st.Fetch(req.Client, reads)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp := FetchResponse{Items: make([]FetchedWire, len(items)), Now: st.Now()}
		for i, it := range items {
			resp.Items[i] = FetchedWire{
				OID:       uint32(it.Item.OID),
				Attr:      uint8(it.Item.Attr),
				Version:   it.Version,
				ExpiresAt: it.ExpiresAt,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})

	op("POST /v1/write", func(w http.ResponseWriter, r *http.Request) {
		var req WriteRequest
		if !decode(w, r, &req) {
			return
		}
		attrs := make([]oodb.AttrID, len(req.Attrs))
		for i, a := range req.Attrs {
			attrs[i] = oodb.AttrID(a)
		}
		version, err := st.Write(oodb.OID(req.OID), attrs)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, WriteResponse{Version: version, Now: st.Now()})
	})

	op("POST /v1/invalidate", func(w http.ResponseWriter, r *http.Request) {
		var req InvalidateRequest
		if !decode(w, r, &req) {
			return
		}
		removed, err := st.Invalidate(req.Client, oodb.OID(req.OID), oodb.AttrID(req.Attr))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, InvalidateResponse{Removed: removed})
	})

	op("POST /v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req InvalidateRequest
		if !decode(w, r, &req) {
			return
		}
		info, err := st.Renew(req.Client, oodb.OID(req.OID), oodb.AttrID(req.Attr))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, leaseResponse(info))
	})

	admin("GET /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		client, err1 := strconv.Atoi(q.Get("client"))
		oid, err2 := strconv.ParseUint(q.Get("oid"), 10, 32)
		attr, err3 := strconv.ParseUint(q.Get("attr"), 10, 8)
		if err1 != nil || err2 != nil || err3 != nil {
			writeErr(w, fmt.Errorf("%w: lease wants integer client, oid, attr query params", ErrBadRequest))
			return
		}
		info, err := st.Lease(client, oodb.OID(oid), oodb.AttrID(attr))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, leaseResponse(info))
	})

	admin("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, st.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	if latency == nil {
		return mux
	}
	// Histograms are single-writer in the simulator; concurrent HTTP
	// handlers need the Observe serialized.
	var latMu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		mux.ServeHTTP(w, r)
		latMu.Lock()
		latency.Observe(time.Since(t0).Seconds())
		latMu.Unlock()
	})
}

// timeoutBody is the JSON body http.TimeoutHandler serves on expiry.
const timeoutBody = `{"error":"serve: request timed out"}`

// leaseResponse converts a LeaseInfo to its wire form.
func leaseResponse(info LeaseInfo) LeaseResponse {
	return LeaseResponse{
		Cached:    info.Cached,
		Valid:     info.Valid,
		Version:   info.Version,
		ExpiresAt: info.ExpiresAt,
		Remaining: info.Remaining,
		Now:       info.Now,
	}
}

// decode parses a JSON body, replying 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad JSON body: " + err.Error()})
		return false
	}
	return true
}

// writeErr maps store errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrBadRequest) || errors.Is(err, ErrUnsupported) {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeJSON renders one JSON reply.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// Service runs a Store behind an HTTP listener with graceful shutdown: an
// explicit Listen step (so callers learn the bound address before traffic),
// Serve to block, and Shutdown to drain in-flight requests.
type Service struct {
	srv *http.Server
	ln  net.Listener
}

// NewService wraps handler in an HTTP server for addr (host:port; port 0
// picks a free one at Listen).
func NewService(addr string, handler http.Handler) *Service {
	return &Service{srv: &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}}
}

// Listen binds the listener and returns the bound address.
func (s *Service) Listen() (string, error) {
	ln, err := net.Listen("tcp", s.srv.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Listen).
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve blocks serving the listener (Listen first). It returns nil after
// Shutdown, like http.Server.
func (s *Service) Serve() error {
	if s.ln == nil {
		if _, err := s.Listen(); err != nil {
			return err
		}
	}
	if err := s.srv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains in-flight requests for up to drain, then tears the
// server down. A zero drain selects DefaultDrainTimeout.
func (s *Service) Shutdown(drain time.Duration) error {
	if drain == 0 {
		drain = DefaultDrainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
