package workload

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/rng"
)

// DisconnectConfig parameterizes Experiment #6's disconnection model:
// V of the clients suffer one outage of D hours per simulated day, at a
// seeded random start time within each day. The paper sweeps D over 1..10
// hours and V over {1, 3, 5, 7, 9} of 10 clients; it does not state the
// outage periodicity, so we use one outage per day (see DESIGN.md).
type DisconnectConfig struct {
	NumClients          int
	DisconnectedClients int     // V: how many clients experience outages
	DurationHours       float64 // D: outage length
	Days                int     // simulation horizon in days
	Seed                uint64
}

// BuildSchedules returns one network.Schedule per client (index-aligned);
// clients beyond the first DisconnectedClients get empty (always-connected)
// schedules.
func BuildSchedules(cfg DisconnectConfig) []*network.Schedule {
	if cfg.NumClients <= 0 {
		panic("workload: NumClients must be positive")
	}
	if cfg.DisconnectedClients < 0 || cfg.DisconnectedClients > cfg.NumClients {
		panic(fmt.Sprintf("workload: DisconnectedClients %d out of [0,%d]",
			cfg.DisconnectedClients, cfg.NumClients))
	}
	if cfg.DurationHours < 0 || cfg.DurationHours > 24 {
		panic("workload: DurationHours must be in [0,24]")
	}
	if cfg.Days < 0 {
		panic("workload: Days must be non-negative")
	}
	schedules := make([]*network.Schedule, cfg.NumClients)
	for i := range schedules {
		schedules[i] = &network.Schedule{}
	}
	if cfg.DurationHours == 0 {
		return schedules
	}
	durSec := cfg.DurationHours * SecondsPerHour
	for c := 0; c < cfg.DisconnectedClients; c++ {
		r := rng.Derive(cfg.Seed, 0xd15c0+uint64(c))
		for day := 0; day < cfg.Days; day++ {
			dayStart := float64(day) * SecondsPerDay
			latest := SecondsPerDay - durSec
			start := dayStart + r.Uniform(0, latest)
			schedules[c].AddOutage(network.Outage{Start: start, End: start + durSec})
		}
	}
	return schedules
}
