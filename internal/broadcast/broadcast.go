// Package broadcast implements the push-based dissemination substrate the
// paper's introduction frames as the complement of its point-to-point
// design (§1): "items of interest to most mobile clients should be
// broadcast from a database server to multiple clients while items of
// interest to single client should be disseminated over dedicated
// channels on demand."
//
// A Program is a flat broadcast disk: a fixed list of database items
// cycled periodically over a dedicated broadcast channel. The schedule is
// strictly periodic, so a client needing item x does not tune in
// continuously — it computes x's next slot and wakes exactly then,
// spending receive energy only on the slots it consumes. A copy picked up
// from the air is valid for one cycle (the next revolution would refresh
// it), which gives broadcast items a natural lease.
package broadcast

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
)

// Program is a periodic flat broadcast schedule.
type Program struct {
	items   []oodb.Item
	slotOf  map[oodb.Item]int
	slotDur float64 // airtime per item, seconds
	cycle   float64 // full revolution, seconds
	start   float64 // first revolution begins here
}

// New builds a program broadcasting the given items in order over a
// channel of the given bandwidth, starting at virtual time start. Each
// slot carries one item framed like a downlink reply entry.
func New(items []oodb.Item, bandwidthBps, start float64) *Program {
	if len(items) == 0 {
		panic("broadcast: a program needs at least one item")
	}
	if bandwidthBps <= 0 {
		panic("broadcast: bandwidth must be positive")
	}
	if start < 0 {
		panic("broadcast: start must be non-negative")
	}
	p := &Program{
		items:  append([]oodb.Item(nil), items...),
		slotOf: make(map[oodb.Item]int, len(items)),
		start:  start,
	}
	// Slots are fixed-width at the size of the largest item so the
	// schedule stays strictly periodic (simple flat disk).
	maxBytes := 0
	for i, it := range p.items {
		if _, dup := p.slotOf[it]; dup {
			panic(fmt.Sprintf("broadcast: duplicate item %v in program", it))
		}
		p.slotOf[it] = i
		if b := network.ReplyEntrySize(it); b > maxBytes {
			maxBytes = b
		}
	}
	p.slotDur = float64(maxBytes+network.HeaderSize) * 8 / bandwidthBps
	p.cycle = p.slotDur * float64(len(p.items))
	return p
}

// Covers reports whether the program carries item.
func (p *Program) Covers(it oodb.Item) bool {
	_, ok := p.slotOf[it]
	return ok
}

// Len returns the number of items in one revolution.
func (p *Program) Len() int { return len(p.items) }

// Cycle returns the revolution period in seconds — also the validity lease
// of a copy picked off the air.
func (p *Program) Cycle() float64 { return p.cycle }

// SlotBytes returns the wire size of one slot.
func (p *Program) SlotBytes() int {
	return int(p.slotDur * network.WirelessBandwidthBps / 8)
}

// NextDelivery returns the absolute time at which the next complete
// transmission of item finishes, for a client that starts listening at
// `now`: the end of the earliest slot whose *start* is at or after now
// (a partially missed slot cannot be decoded). It panics if the program
// does not cover item.
func (p *Program) NextDelivery(it oodb.Item, now float64) float64 {
	slot, ok := p.slotOf[it]
	if !ok {
		panic(fmt.Sprintf("broadcast: item %v not in program", it))
	}
	// Slot ends in revolution k: e_k = start + (slot+1)*slotDur + k*cycle;
	// catchable iff its start e_k - slotDur >= now. The epsilon absorbs
	// floating-point drift when a client tunes in exactly at a slot
	// boundary (e.g. right after consuming the previous slot).
	const eps = 1e-9
	e0 := p.start + float64(slot+1)*p.slotDur
	k := math.Ceil((now - (e0 - p.slotDur) - eps) / p.cycle)
	if k < 0 {
		k = 0
	}
	return e0 + k*p.cycle
}

// MeanWait returns the expected waiting time for a uniformly random item
// request (half a revolution plus one slot) — used for capacity planning
// and sanity tests.
func (p *Program) MeanWait() float64 { return p.cycle/2 + p.slotDur }

// Register wires the air channel's program shape into an observability
// registry under the given series prefix: items per revolution, cycle
// period (the natural lease), slot size, and expected tune-in wait. The
// values are static for a flat disk, so the series double as manifest
// facts; consumption counters (reads answered from the air) live with the
// clients that tune in. No-op when reg is disabled.
func (p *Program) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".items", func() float64 { return float64(p.Len()) })
	reg.Gauge(prefix+".cycle_s", p.Cycle)
	reg.Gauge(prefix+".slot_bytes", func() float64 { return float64(p.SlotBytes()) })
	reg.Gauge(prefix+".mean_wait_s", p.MeanWait)
}

// UpdateWindow accumulates a server's write stream for the windowed
// IR-over-broadcast coherence scheme: each invalidation report at time T
// carries the distinct items written during the trailing window (T−W, T].
// The log is a chronological queue trimmed on every report, so memory is
// bounded by the write rate times the window, not by the run length.
type UpdateWindow struct {
	window float64
	events []updateEvent // chronological; head trimmed on Report
	head   int
	seen   map[oodb.Item]struct{} // scratch for per-report dedup
	items  []oodb.Item            // scratch for the returned report
}

type updateEvent struct {
	at   float64
	item oodb.Item
}

// NewUpdateWindow returns a log covering a trailing window of the given
// length in simulated seconds.
func NewUpdateWindow(window float64) *UpdateWindow {
	if window <= 0 {
		panic("broadcast: update window must be positive")
	}
	return &UpdateWindow{window: window, seen: make(map[oodb.Item]struct{})}
}

// Window returns the trailing window length in seconds.
func (w *UpdateWindow) Window() float64 { return w.window }

// Observe appends a write of item at virtual time now. Observations must
// arrive in non-decreasing time order.
func (w *UpdateWindow) Observe(it oodb.Item, now float64) {
	w.events = append(w.events, updateEvent{at: now, item: it})
}

// Report returns the distinct items written in (now−window, now], in
// canonical (OID, Attr) order so report contents are independent of
// observation interleaving. Events that fell out of the window are
// discarded; the returned slice is reused by the next call.
func (w *UpdateWindow) Report(now float64) []oodb.Item {
	cutoff := now - w.window
	for w.head < len(w.events) && w.events[w.head].at <= cutoff {
		w.events[w.head] = updateEvent{}
		w.head++
	}
	if w.head == len(w.events) {
		w.events = w.events[:0]
		w.head = 0
	}
	w.items = w.items[:0]
	for _, ev := range w.events[w.head:] {
		if _, dup := w.seen[ev.item]; dup {
			continue
		}
		w.seen[ev.item] = struct{}{}
		w.items = append(w.items, ev.item)
	}
	for it := range w.seen {
		delete(w.seen, it)
	}
	sort.Slice(w.items, func(i, j int) bool {
		a, b := w.items[i], w.items[j]
		if a.OID != b.OID {
			return a.OID < b.OID
		}
		return a.Attr < b.Attr
	})
	return w.items
}

// Pending returns the number of logged events still inside the window as
// of the last Report call (plus any observed since) — a sizing aid for
// tests and observability.
func (w *UpdateWindow) Pending() int { return len(w.events) - w.head }

// ReportBytes returns the wire size of an invalidation report naming n
// items: one frame header plus an (OID, attribute-ref) pair per item —
// the same framing the point-to-point invalidation reports use.
func ReportBytes(n int) int {
	return network.HeaderSize + n*(network.OIDSize+network.AttrRefSize)
}

// HotAttrItems is a helper for assembling programs: the cross product of
// the given objects with the first nAttrs primitive attributes (the
// hottest ranks under the workload's skewed attribute distribution).
func HotAttrItems(objects []oodb.OID, nAttrs int) []oodb.Item {
	if nAttrs < 1 || nAttrs > oodb.NumPrimAttrs {
		panic("broadcast: nAttrs out of range")
	}
	items := make([]oodb.Item, 0, len(objects)*nAttrs)
	for _, oid := range objects {
		for a := 0; a < nAttrs; a++ {
			items = append(items, oodb.AttrItem(oid, oodb.AttrID(a)))
		}
	}
	return items
}
