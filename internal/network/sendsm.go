package network

import "repro/internal/sim"

// This file is the state-machine face of Channel: SendStep and
// SendDeferredStep are Send and SendDeferred re-expressed as resumable
// calls for clients running on the sim.Machine engine. Each performs the
// exact schedule calls of its Proc twin in the same order (acquire, hold
// for the transfer time, release, then the byte/message accounting), so a
// simulation is byte-identical whichever face drives the channel.

// SendState holds the progress of one resumable channel send. The zero
// value is ready to use; a completed send resets it so the same state can
// drive the next transfer. Callers embed one per concurrently-outstanding
// send (a client has at most one).
type SendState struct {
	pc    uint8
	bytes int
	start float64
}

const (
	sendAcquire uint8 = iota // next: acquire the channel
	sendHold                 // acquired; next: hold the transfer time
	sendDone                 // transfer done; next: release and account
)

// SendStep advances a fixed-size send on machine m. It returns true when
// the message has been fully delivered; false means the machine is waiting
// (queued for the channel or mid-transfer) and must call SendStep again
// from the Step that its wake triggers.
func (c *Channel) SendStep(m *sim.Machine, st *SendState, bytes int) bool {
	for {
		switch st.pc {
		case sendAcquire:
			st.bytes = bytes
			st.pc = sendHold
			if !c.res.AcquireCall(m) {
				return false
			}
		case sendHold:
			st.pc = sendDone
			m.Hold(c.TransferTime(st.bytes))
			return false
		case sendDone:
			c.res.Release()
			c.bytesSent += uint64(st.bytes)
			c.messages++
			st.pc = sendAcquire
			return true
		}
	}
}

// SendDeferredStep advances a deferred-size send on machine m: sizeFn is
// called with the queueing delay once the channel is acquired — the
// timeout-heuristic hook of SendDeferred — and the transfer is then paid
// at that size. Returns true when delivered; false while waiting.
func (c *Channel) SendDeferredStep(m *sim.Machine, st *SendState, sizeFn func(waited float64) int) bool {
	for {
		switch st.pc {
		case sendAcquire:
			st.start = m.Now()
			st.pc = sendHold
			if !c.res.AcquireCall(m) {
				return false
			}
		case sendHold:
			st.bytes = sizeFn(m.Now() - st.start)
			st.pc = sendDone
			m.Hold(c.TransferTime(st.bytes))
			return false
		case sendDone:
			c.res.Release()
			c.bytesSent += uint64(st.bytes)
			c.messages++
			st.pc = sendAcquire
			return true
		}
	}
}
