package sim

import "testing"

// Kernel micro-benchmarks. Each iteration dispatches a fixed number of
// events so ns/op and allocs/op read directly as per-event costs scaled by
// the constant below. Run with -benchmem to see allocs/event:
//
//	go test -bench=Kernel -benchmem ./internal/sim
const benchEvents = 1024

// BenchmarkKernelTimerWheel measures the pure future-event-list cost: one
// callback event scheduled and dispatched per loop turn, no process
// handoffs. This isolates heap push/pop and event storage.
func BenchmarkKernelTimerWheel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < benchEvents {
				k.After(1, tick)
			}
		}
		k.After(1, tick)
		k.RunAll()
	}
}

// BenchmarkKernelTimerFanout schedules a full wave of timers up front and
// drains them: worst-case heap depth, still no handoffs.
func BenchmarkKernelTimerFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		n := 0
		for j := 0; j < benchEvents; j++ {
			k.After(float64(j%97), func() { n++ })
		}
		k.RunAll()
		if n != benchEvents {
			b.Fatalf("n = %d", n)
		}
	}
}

// BenchmarkKernelHoldHandoff measures the full process-resume cost: one
// goroutine handoff (kernel -> proc -> kernel) per event.
func BenchmarkKernelHoldHandoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < benchEvents; j++ {
				p.Hold(1)
			}
		})
		k.RunAll()
	}
}

// BenchmarkKernelManyProcs interleaves many short-lived processes — the
// spawn/terminate path plus same-time FIFO ordering pressure.
func BenchmarkKernelManyProcs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 64; j++ {
			k.SpawnAt(float64(j%7), "p", func(p *Proc) {
				for h := 0; h < 16; h++ {
					p.Hold(1)
				}
			})
		}
		k.RunAll()
	}
}

// BenchmarkKernelResourceContention is the simulation's dominant pattern:
// processes contending FCFS for a capacity-1 facility (the wireless
// channel), with queueing statistics accruing.
func BenchmarkKernelResourceFCFS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		r := NewResource(k, "chan", 1)
		for j := 0; j < 32; j++ {
			k.SpawnAt(float64(j), "p", func(p *Proc) {
				for h := 0; h < 8; h++ {
					r.Use(p, 0.5)
					p.Hold(0.1)
				}
			})
		}
		k.RunAll()
	}
}

// BenchmarkKernelDrain measures Run-to-horizon plus Drain of suspended
// processes — the per-run teardown cost the experiment sweep pays.
func BenchmarkKernelDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 64; j++ {
			k.Spawn("p", func(p *Proc) {
				for {
					p.Hold(1)
				}
			})
		}
		k.Run(50)
		k.Drain()
	}
}
