package experiment

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestObsRunIsDeterministic pins the reproducibility contract behind run
// manifests: two instrumented runs of the same (Config, Seed) produce
// byte-identical sampled series and identical Results.
func TestObsRunIsDeterministic(t *testing.T) {
	run := func() (*obs.Registry, Result) {
		cfg := tinyCfg()
		cfg.LossRate = 0.05 // exercise the fault-model gauges too
		cfg.Obs = obs.New(0)
		return cfg.Obs, Run(cfg)
	}
	regA, resA := run()
	regB, resB := run()

	if !reflect.DeepEqual(stripConfig(resA), stripConfig(resB)) {
		t.Fatalf("instrumented runs diverge:\n%+v\n%+v", resA, resB)
	}
	namesA, namesB := regA.SeriesNames(), regB.SeriesNames()
	if !reflect.DeepEqual(namesA, namesB) {
		t.Fatalf("series names diverge: %v vs %v", namesA, namesB)
	}
	if len(namesA) == 0 {
		t.Fatal("no series registered")
	}
	for _, name := range namesA {
		if !reflect.DeepEqual(regA.Series(name), regB.Series(name)) {
			t.Fatalf("series %s diverges between identical runs", name)
		}
	}
}

// TestObsDoesNotPerturbOutcomes checks that attaching a registry leaves
// every event outcome of the run untouched: same queries, same hits, same
// errors, same frame fates. (The final kernel clock may be rounded up to
// the last sampler tick, so time-averaged utilizations are compared with a
// tolerance rather than exactly.)
func TestObsDoesNotPerturbOutcomes(t *testing.T) {
	cfg := tinyCfg()
	cfg.LossRate = 0.05
	plain := Run(cfg)

	cfg.Obs = obs.New(0)
	instr := Run(cfg)

	type outcomes struct {
		HitRatio, MeanResponse, ErrorRate, AccessErrorRate float64
		Issued, Local, Remote, Unavail                     uint64
		Retries, Timeouts, Degraded                        uint64
		Lost, Corrupted                                    uint64
		ServerQueries, DiskReads, Updates                  uint64
	}
	snap := func(r Result) outcomes {
		return outcomes{
			HitRatio: r.HitRatio, MeanResponse: r.MeanResponse,
			ErrorRate: r.ErrorRate, AccessErrorRate: r.AccessErrorRate,
			Issued: r.QueriesIssued, Local: r.QueriesLocal,
			Remote: r.QueriesRemote, Unavail: r.Unavailable,
			Retries: r.Retries, Timeouts: r.Timeouts, Degraded: r.DegradedReads,
			Lost: r.FramesLost, Corrupted: r.FramesCorrupted,
			ServerQueries: r.Server.QueriesServed, DiskReads: r.Server.DiskReads,
			Updates: r.Server.UpdatesApplied,
		}
	}
	if got, want := snap(instr), snap(plain); got != want {
		t.Fatalf("instrumentation changed run outcomes:\nwith obs: %+v\nwithout:  %+v", got, want)
	}
	if math.Abs(instr.UplinkUtilization-plain.UplinkUtilization) > 0.01 ||
		math.Abs(instr.DownlinkUtilization-plain.DownlinkUtilization) > 0.01 {
		t.Fatalf("utilizations drifted: %v/%v vs %v/%v",
			instr.UplinkUtilization, instr.DownlinkUtilization,
			plain.UplinkUtilization, plain.DownlinkUtilization)
	}

	// The instrumented run actually collected something useful.
	if cfg.Obs.Samples() == 0 {
		t.Fatal("no samples collected")
	}
	for _, name := range []string{
		"uplink.utilization", "downlink.utilization",
		"clients.hit_ratio", "clients.error_rate",
		"clients.cache_occupancy", "clients.evictions",
		"server.buffer_hit_ratio", "uplink.faults.frames_lost",
	} {
		s := cfg.Obs.Series(name)
		if s == nil || len(s.T) != cfg.Obs.Samples() {
			t.Fatalf("series %s missing or short", name)
		}
	}
	// The last tick fires at or before the horizon, so a handful of query
	// completions can postdate it: the final sample tracks the end-of-run
	// pooled hit ratio closely but not to the last read.
	if _, v := cfg.Obs.Series("clients.hit_ratio").Last(); math.Abs(v-plain.HitRatio) > 0.02 {
		t.Fatalf("final sampled hit ratio %v far from Result %v", v, plain.HitRatio)
	}
	// The shipped-RT histogram saw every reply item.
	var rt *obs.Histogram
	for _, h := range cfg.Obs.Histograms() {
		if h.HistogramName() == "server.refresh_time_s" {
			rt = h
		}
	}
	if rt.Count() == 0 {
		t.Fatal("refresh-time histogram empty")
	}
}

// TestRunBatchObsForcesSerial mirrors the Tracer rule: a batch holding an
// instrumented config must not run concurrently (a registry is shared
// mutable state).
func TestRunBatchObsForcesSerial(t *testing.T) {
	cfgs := []Config{tinyCfg(), tinyCfg(), tinyCfg()}
	cfgs[1].Obs = obs.New(0)
	// Concurrent execution with a shared registry would be caught by the
	// race detector; beyond that, serial execution is observable through
	// deterministic sampling: repeat the batch and require identical series.
	resA := Runner{Workers: 8}.RunBatch(cfgs)
	seriesA := cfgs[1].Obs.AllSeries()
	cfgs[1].Obs = obs.New(0)
	resB := Runner{Workers: 8}.RunBatch(cfgs)
	if !reflect.DeepEqual(stripConfigs(resA), stripConfigs(resB)) {
		t.Fatal("instrumented batch results nondeterministic")
	}
	if !reflect.DeepEqual(seriesA, cfgs[1].Obs.AllSeries()) {
		t.Fatal("instrumented batch series nondeterministic")
	}
}
