// Package stats provides the online statistical estimators the caching
// mechanism is built on.
//
// The paper's two adaptive components both reduce to statistics over
// inter-arrival durations:
//
//   - cache coherence estimates a refresh time RT = d̄ + β·s from the mean
//     and standard deviation of write inter-arrivals (Welford);
//   - cache replacement scores items by the mean (Mean scheme), windowed
//     mean (Window scheme), or exponentially weighted moving average
//     (EWMA scheme) of access inter-arrivals.
//
// All estimators here are O(1) or O(W) space and update in O(1) time,
// matching the constraints §3.3 of the paper puts on a resource-limited
// mobile client.
package stats

import "math"

// Welford is a numerically stable online estimator of mean and variance
// (Welford's algorithm). The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance (0 for <2 samples).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Reset discards all observations.
func (w *Welford) Reset() { *w = Welford{} }

// Merge combines another estimator's observations into w (parallel-merge
// form of Welford); used to aggregate per-client response time statistics.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// EWMA is an exponentially weighted moving average with retention weight
// alpha in [0, 1): S <- alpha*S + (1-alpha)*x. With alpha = 0.5 the history
// halves in weight on every new observation — the paper's EWMA-0.5, chosen
// to mirror LRD's "divide the reference count by 2".
type EWMA struct {
	alpha float64
	value float64
	n     uint64
}

// NewEWMA returns an estimator with the given retention weight.
// It panics unless 0 <= alpha < 1.
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha >= 1 {
		panic("stats: EWMA alpha must be in [0,1)")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation. The first observation initializes the
// average directly.
func (e *EWMA) Add(x float64) {
	if e.n == 0 {
		e.value = x
	} else {
		e.value = e.alpha*e.value + (1-e.alpha)*x
	}
	e.n++
}

// Value returns the current average (0 when empty).
func (e *EWMA) Value() float64 { return e.value }

// Count returns the number of observations.
func (e *EWMA) Count() uint64 { return e.n }

// Alpha returns the retention weight.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Blend returns the average as if x had been added, without mutating the
// estimator. Replacement uses this to fold the still-open interval
// (now − last access) into an eviction score.
func (e *EWMA) Blend(x float64) float64 {
	if e.n == 0 {
		return x
	}
	return e.alpha*e.value + (1-e.alpha)*x
}

// Window is a fixed-size sliding window of the most recent observations
// with an O(1) running mean — the paper's Window scheme bookkeeping.
type Window struct {
	buf  []float64
	head int
	n    int
	sum  float64
}

// NewWindow returns a window of the given size. It panics if size <= 0.
func NewWindow(size int) *Window {
	w := MakeWindow(size)
	return &w
}

// MakeWindow returns a window of the given size by value, for callers that
// embed windows in slices or pools instead of holding per-window pointers.
// It panics if size <= 0.
func MakeWindow(size int) Window {
	if size <= 0 {
		panic("stats: Window size must be positive")
	}
	return Window{buf: make([]float64, size)}
}

// Reset discards all observations but keeps the backing buffer, so a pooled
// window can be reused without reallocating.
func (w *Window) Reset() {
	w.head, w.n, w.sum = 0, 0, 0
}

// Add pushes one observation, evicting the oldest if the window is full.
func (w *Window) Add(x float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
	} else {
		w.n++
	}
	w.buf[w.head] = x
	w.sum += x
	w.head = (w.head + 1) % len(w.buf)
}

// Mean returns the mean of the retained observations (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Count returns the number of retained observations.
func (w *Window) Count() int { return w.n }

// Size returns the window capacity.
func (w *Window) Size() int { return len(w.buf) }

// Oldest returns the oldest retained observation (0 when empty).
func (w *Window) Oldest() float64 {
	if w.n == 0 {
		return 0
	}
	if w.n < len(w.buf) {
		// Buffer not yet wrapped: the oldest sample sits at slot 0.
		return w.buf[(w.head-w.n+len(w.buf))%len(w.buf)]
	}
	return w.buf[w.head]
}

// BlendMean returns the windowed mean as if x had been added, without
// mutating the window.
func (w *Window) BlendMean(x float64) float64 {
	if w.n == 0 {
		return x
	}
	sum, n := w.sum+x, w.n+1
	if w.n == len(w.buf) {
		sum -= w.buf[w.head] // x would push the oldest sample out
		n--
	}
	return sum / float64(n)
}

// InterArrival tracks durations between consecutive event timestamps and
// feeds them to a Welford estimator. It backs the refresh-time estimator:
// the server records one InterArrival per database item's write stream.
type InterArrival struct {
	last    float64
	hasLast bool
	W       Welford
}

// Observe records an event at time t. The first event only establishes the
// reference point; subsequent events add (t − previous) as a duration.
func (ia *InterArrival) Observe(t float64) {
	if ia.hasLast {
		d := t - ia.last
		if d < 0 {
			d = 0
		}
		ia.W.Add(d)
	}
	ia.last = t
	ia.hasLast = true
}

// Count returns the number of recorded durations (events − 1).
func (ia *InterArrival) Count() uint64 { return ia.W.Count() }

// Mean returns the mean inter-arrival duration.
func (ia *InterArrival) Mean() float64 { return ia.W.Mean() }

// Std returns the population standard deviation of the durations.
func (ia *InterArrival) Std() float64 { return ia.W.Std() }

// Last returns the timestamp of the most recent event and whether one has
// been observed.
func (ia *InterArrival) Last() (float64, bool) { return ia.last, ia.hasLast }

// InterArrivalState is the full serializable state of an InterArrival
// estimator — what a persistent tier must carry to rebuild a write stream
// across restarts (exported fields so callers can marshal it directly).
type InterArrivalState struct {
	Last    float64 `json:"last"`
	HasLast bool    `json:"has_last"`
	N       uint64  `json:"n"`
	Mean    float64 `json:"mean"`
	M2      float64 `json:"m2"`
}

// State snapshots the estimator.
func (ia *InterArrival) State() InterArrivalState {
	return InterArrivalState{
		Last: ia.last, HasLast: ia.hasLast,
		N: ia.W.n, Mean: ia.W.mean, M2: ia.W.m2,
	}
}

// Restore overwrites the estimator with a previously snapshotted state.
func (ia *InterArrival) Restore(st InterArrivalState) {
	ia.last, ia.hasLast = st.Last, st.HasLast
	ia.W = Welford{n: st.N, mean: st.Mean, m2: st.M2}
}
