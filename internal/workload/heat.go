// Package workload generates the paper's simulated workloads (§4): heat
// distributions over database objects (SH, CSH, cyclic), associative and
// navigational queries, Poisson and Bursty query arrival processes, the
// per-access update probability, and the disconnection schedules of
// Experiment #6.
package workload

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
)

// HotFraction and HotAccessProb encode the 80/20 rule of the skewed heat
// pattern: 20% of the objects absorb 80% of the accesses.
const (
	HotFraction   = 0.20
	HotAccessProb = 0.80
)

// HeatModel selects which objects a query touches. Implementations are
// deterministic functions of (seed, query index), so replays are exact.
type HeatModel interface {
	// Name identifies the model in tables ("sh", "csh-500", "cyclic").
	Name() string
	// Pick returns n distinct object ids accessed by query queryIndex.
	Pick(r *rng.Stream, n int, queryIndex uint64) []oodb.OID
	// PickInto is Pick appending into buf[:0] (which may be nil). The
	// random draws are identical to Pick's; only the backing storage of
	// the result differs.
	PickInto(r *rng.Stream, n int, queryIndex uint64, buf []oodb.OID) []oodb.OID
}

// skewedHeat implements the SH pattern: a fixed random 20% hot set receives
// 80% of accesses. Each client instantiates its own model (with its own
// seed) so hot sets differ across clients, as §4 requires.
type skewedHeat struct {
	numObjects int
	hot        []oodb.OID        // hot set, selection order
	isHot      map[oodb.OID]bool // membership
	cold       []oodb.OID        // complement
}

// NewSkewedHeat builds an SH model over numObjects objects using seed to
// pick the hot set.
func NewSkewedHeat(numObjects int, seed uint64) HeatModel {
	return newSkewed(numObjects, rng.Derive(seed, 0x5ea7))
}

func newSkewed(numObjects int, r *rng.Stream) *skewedHeat {
	if numObjects < 2 {
		panic("workload: heat model needs at least 2 objects")
	}
	h := &skewedHeat{numObjects: numObjects, isHot: make(map[oodb.OID]bool)}
	hotCount := int(float64(numObjects)*HotFraction + 0.5)
	if hotCount < 1 {
		hotCount = 1
	}
	for _, idx := range r.Sample(numObjects, hotCount) {
		oid := oodb.OID(idx)
		h.hot = append(h.hot, oid)
		h.isHot[oid] = true
	}
	for i := 0; i < numObjects; i++ {
		if !h.isHot[oodb.OID(i)] {
			h.cold = append(h.cold, oodb.OID(i))
		}
	}
	return h
}

func (h *skewedHeat) Name() string { return "sh" }

func (h *skewedHeat) Pick(r *rng.Stream, n int, qi uint64) []oodb.OID {
	return h.PickInto(r, n, qi, nil)
}

func (h *skewedHeat) PickInto(r *rng.Stream, n int, _ uint64, buf []oodb.OID) []oodb.OID {
	return pickSkewed(r, n, h.hot, h.cold, buf)
}

// pickSkewed draws n distinct OIDs, each independently from the hot set
// with probability HotAccessProb, uniform within its set, appending into
// buf[:0]. Dedup is a linear scan over the (small) result, which consumes
// no randomness, so the draw sequence matches the original map-based
// implementation exactly.
func pickSkewed(r *rng.Stream, n int, hot, cold, buf []oodb.OID) []oodb.OID {
	if n > len(hot)+len(cold) {
		panic(fmt.Sprintf("workload: query selectivity %d exceeds population %d",
			n, len(hot)+len(cold)))
	}
	out := buf[:0]
	for len(out) < n {
		oid := pickOneSkewed(r, hot, cold)
		if !containsOID(out, oid) {
			out = append(out, oid)
		}
	}
	return out
}

// pickOneSkewed performs a single skewed draw (one Bool, one Intn).
func pickOneSkewed(r *rng.Stream, hot, cold []oodb.OID) oodb.OID {
	var pool []oodb.OID
	if r.Bool(HotAccessProb) && len(hot) > 0 {
		pool = hot
	} else {
		pool = cold
	}
	if len(pool) == 0 {
		pool = hot
	}
	return pool[r.Intn(len(pool))]
}

func containsOID(s []oodb.OID, oid oodb.OID) bool {
	for _, v := range s {
		if v == oid {
			return true
		}
	}
	return false
}

// changingSkewedHeat implements the CSH pattern: the 20% hot set is
// re-selected every ChangeEvery queries. Hot sets per epoch are derived
// deterministically from the seed, so the whole trajectory replays.
type changingSkewedHeat struct {
	numObjects  int
	seed        uint64
	changeEvery uint64
	epoch       uint64
	cur         *skewedHeat
}

// NewChangingSkewedHeat builds a CSH model whose hot set is reshuffled
// every changeEvery queries (the paper's A_C parameter: 300, 500, 700).
func NewChangingSkewedHeat(numObjects int, seed uint64, changeEvery int) HeatModel {
	if changeEvery < 1 {
		panic("workload: CSH change rate must be >= 1 query")
	}
	m := &changingSkewedHeat{
		numObjects:  numObjects,
		seed:        seed,
		changeEvery: uint64(changeEvery),
	}
	m.cur = m.buildEpoch(0)
	return m
}

func (m *changingSkewedHeat) buildEpoch(epoch uint64) *skewedHeat {
	return newSkewed(m.numObjects, rng.Derive(m.seed, 0xc5b0000+epoch))
}

func (m *changingSkewedHeat) Name() string {
	return fmt.Sprintf("csh-%d", m.changeEvery)
}

func (m *changingSkewedHeat) Pick(r *rng.Stream, n int, queryIndex uint64) []oodb.OID {
	return m.PickInto(r, n, queryIndex, nil)
}

func (m *changingSkewedHeat) PickInto(r *rng.Stream, n int, queryIndex uint64, buf []oodb.OID) []oodb.OID {
	if epoch := queryIndex / m.changeEvery; epoch != m.epoch {
		m.epoch = epoch
		m.cur = m.buildEpoch(epoch)
	}
	return m.cur.PickInto(r, n, queryIndex, buf)
}

// CyclicConfig parameterizes the cyclic access pattern of the LRU-k
// evaluation ([14] in the paper): a *loop pool* of objects is revisited at
// a fixed period — each query reads a window of the loop, the window
// lingers for Burst consecutive queries (a burst of correlated references)
// and then advances — while the rest of each query draws one-touch noise
// from the remaining objects. Items therefore recur after a predictable
// interval longer than a recency horizon polluted by the noise: LRU keeps
// the useless noise and drops the loop; LRU-k and the duration-score
// policies discriminate by reference history (Figure 6).
type CyclicConfig struct {
	// NumObjects is the database population.
	NumObjects int
	// LoopObjects is the loop pool size (default NumObjects/4).
	LoopObjects int
	// LoopPerQuery is how many loop objects each query reads (default 1/4
	// of the query selectivity, set by the caller; must be >= 1).
	LoopPerQuery int
	// Burst is how many consecutive queries see the same loop window
	// (default 3).
	Burst int
	// Seed shuffles which objects form the loop pool.
	Seed uint64
}

type cyclicHeat struct {
	loop         []oodb.OID
	noise        []oodb.OID
	loopPerQuery int
	burst        uint64
	// Scratch for SampleInto; a heat model belongs to one client, so the
	// buffers are never used concurrently.
	sampleIdx []int
	sampleOut []int
}

// NewCyclicHeat builds the cyclic pattern.
func NewCyclicHeat(cfg CyclicConfig) HeatModel {
	if cfg.NumObjects < 8 {
		panic("workload: cyclic heat needs at least 8 objects")
	}
	if cfg.LoopObjects == 0 {
		cfg.LoopObjects = cfg.NumObjects / 4
	}
	if cfg.Burst == 0 {
		cfg.Burst = 3
	}
	if cfg.LoopPerQuery < 1 {
		panic("workload: LoopPerQuery must be >= 1")
	}
	if cfg.LoopObjects < cfg.LoopPerQuery || cfg.LoopObjects >= cfg.NumObjects {
		panic("workload: LoopObjects out of range")
	}
	r := rng.Derive(cfg.Seed, 0xcc11c)
	perm := r.Perm(cfg.NumObjects)
	h := &cyclicHeat{
		loopPerQuery: cfg.LoopPerQuery,
		burst:        uint64(cfg.Burst),
	}
	for i, idx := range perm {
		if i < cfg.LoopObjects {
			h.loop = append(h.loop, oodb.OID(idx))
		} else {
			h.noise = append(h.noise, oodb.OID(idx))
		}
	}
	h.sampleIdx = make([]int, len(h.noise))
	return h
}

func (m *cyclicHeat) Name() string { return "cyclic" }

// Period returns the loop revisit period in queries.
func (m *cyclicHeat) Period() uint64 {
	return uint64(len(m.loop)/m.loopPerQuery) * m.burst
}

func (m *cyclicHeat) Pick(r *rng.Stream, n int, queryIndex uint64) []oodb.OID {
	return m.PickInto(r, n, queryIndex, nil)
}

func (m *cyclicHeat) PickInto(r *rng.Stream, n int, queryIndex uint64, buf []oodb.OID) []oodb.OID {
	out := buf[:0]
	// Loop window: advances every Burst queries, wraps around the pool.
	k := m.loopPerQuery
	if k > n {
		k = n
	}
	start := int(queryIndex/m.burst) * m.loopPerQuery % len(m.loop)
	for i := 0; i < k; i++ {
		out = append(out, m.loop[(start+i)%len(m.loop)])
	}
	// Noise: distinct uniform draws from the non-loop pool.
	rest := n - len(out)
	if rest > len(m.noise) {
		rest = len(m.noise)
	}
	m.sampleOut = r.SampleInto(len(m.noise), rest, m.sampleIdx, m.sampleOut)
	for _, j := range m.sampleOut {
		out = append(out, m.noise[j])
	}
	return out
}

// sharedSkewedHeat models common interest across clients (§1 of the paper:
// "items of interest to most mobile clients should be broadcast"): with
// probability shareProb a pick comes from a *shared pool* that is
// identical for every client; otherwise from the client's private SH
// model over the remaining objects.
type sharedSkewedHeat struct {
	shared    []oodb.OID
	shareProb float64
	private   *skewedHeat
}

// SharedPool returns the common pool derived from (numObjects, seed,
// poolSize): the same set for every client with the same arguments.
func SharedPool(numObjects int, seed uint64, poolSize int) []oodb.OID {
	if poolSize < 1 || poolSize >= numObjects {
		panic("workload: shared pool size out of range")
	}
	r := rng.Derive(seed, 0x58a7ed)
	idx := r.Sample(numObjects, poolSize)
	out := make([]oodb.OID, poolSize)
	for i, j := range idx {
		out[i] = oodb.OID(j)
	}
	return out
}

// NewSharedSkewedHeat builds a heat model where all clients share a common
// pool (drawn with probability shareProb, uniform within the pool) and
// otherwise follow a private 80/20 pattern. seed selects the shared pool;
// clientSeed differentiates the private hot sets.
func NewSharedSkewedHeat(numObjects int, seed, clientSeed uint64,
	poolSize int, shareProb float64) HeatModel {
	if shareProb < 0 || shareProb > 1 {
		panic("workload: shareProb out of [0,1]")
	}
	return &sharedSkewedHeat{
		shared:    SharedPool(numObjects, seed, poolSize),
		shareProb: shareProb,
		private:   newSkewed(numObjects, rng.Derive(clientSeed, 0x5ea7)),
	}
}

func (h *sharedSkewedHeat) Name() string { return "shared-sh" }

func (h *sharedSkewedHeat) Pick(r *rng.Stream, n int, qi uint64) []oodb.OID {
	return h.PickInto(r, n, qi, nil)
}

func (h *sharedSkewedHeat) PickInto(r *rng.Stream, n int, _ uint64, buf []oodb.OID) []oodb.OID {
	out := buf[:0]
	for len(out) < n {
		var oid oodb.OID
		if r.Bool(h.shareProb) {
			oid = h.shared[r.Intn(len(h.shared))]
		} else {
			oid = pickOneSkewed(r, h.private.hot, h.private.cold)
		}
		if !containsOID(out, oid) {
			out = append(out, oid)
		}
	}
	return out
}
