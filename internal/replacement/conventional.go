package replacement

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
)

// ---------------------------------------------------------------- LRU ----

type lruState struct {
	last float64
}

// lru evicts the item with the oldest last access (LRU-1 in the paper).
type lru struct {
	core scanCore[lruState]
}

// NewLRU returns the least-recently-used policy.
func NewLRU() Policy {
	p := &lru{}
	p.core = newScanCore(func(s *lruState, now float64) float64 {
		return now - s.last
	})
	return p
}

// NewLRUFactory returns a Factory for NewLRU.
func NewLRUFactory() Factory { return func() Policy { return NewLRU() } }

func (p *lru) Name() string { return "lru" }

func (p *lru) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.last = now
		return
	}
	p.core.add(it, &lruState{last: now})
}

func (p *lru) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.last = now
}

func (p *lru) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *lru) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *lru) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *lru) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- LRU-k ----

// accessRing keeps the last k access times.
type accessRing struct {
	times []float64
	head  int
	n     int
}

func newAccessRing(k int) *accessRing { return &accessRing{times: make([]float64, k)} }

func (r *accessRing) push(t float64) {
	r.times[r.head] = t
	r.head = (r.head + 1) % len(r.times)
	if r.n < len(r.times) {
		r.n++
	}
}

// kth returns the k-th most recent access time and whether k accesses exist.
func (r *accessRing) kth() (float64, bool) {
	if r.n < len(r.times) {
		return 0, false
	}
	return r.times[r.head], true // head points at the oldest retained time
}

// last returns the most recent access time.
func (r *accessRing) last() float64 {
	idx := (r.head - 1 + len(r.times)) % len(r.times)
	return r.times[idx]
}

// DefaultCorrelatedPeriod is the default Correlated Reference Period for
// LRU-k, in simulated seconds: references closer together than this are
// treated as one reference (a single query burst), and items referenced
// within the period are not eviction candidates. Two mean query
// inter-arrival times (2 × 1/0.01 s) covers intra-burst re-references.
const DefaultCorrelatedPeriod = 200.0

// lruKState is an item's reference history: the ring holds uncorrelated
// reference times; last tracks the most recent (possibly correlated)
// access for CRP decisions.
type lruKState struct {
	ring *accessRing
	last float64
}

// lruK implements LRU-k [O'Neil et al., SIGMOD'93]: the victim is the item
// with the maximum backward k-distance, i.e. the oldest k-th most recent
// uncorrelated reference. Items with fewer than k references have infinite
// backward k-distance and are preferred victims, tie-broken by oldest last
// access.
//
// Two refinements from the original algorithm are essential under cache
// pressure and are implemented here:
//
//   - Retained Information: reference history survives eviction (here
//     unbounded — simulated populations are small), so a hot item is
//     recognized immediately on re-insertion instead of restarting at one
//     reference.
//   - Correlated Reference Period: references within crp seconds collapse
//     into one, and an item accessed within the last crp seconds is
//     protected from eviction — otherwise every item fetched by the
//     current query would be a prime (infinite-distance) victim for the
//     same query's later insertions.
type lruK struct {
	k       int
	crp     float64
	core    scanCore[lruKState]
	history map[oodb.Item]*lruKState
}

// NewLRUK returns the LRU-k policy with the default correlated reference
// period. It panics if k < 1.
func NewLRUK(k int) Policy { return NewLRUKCRP(k, DefaultCorrelatedPeriod) }

// NewLRUKCRP returns LRU-k with an explicit correlated reference period
// (0 disables reference collapsing and eviction protection).
func NewLRUKCRP(k int, crp float64) Policy {
	if k < 1 {
		panic("replacement: LRU-k requires k >= 1")
	}
	if crp < 0 {
		panic("replacement: LRU-k correlated period must be >= 0")
	}
	p := &lruK{k: k, crp: crp, history: make(map[oodb.Item]*lruKState)}
	p.core = newScanCore(func(s *lruKState, now float64) float64 {
		// The class separator must dominate any finite backward distance
		// while leaving float64 precision for the staleness tie-breaks
		// added to it (ulp(1e12) ~ 1e-4 s; 1e18 would swallow them).
		const inf = 1e12
		if p.crp > 0 && now-s.last < p.crp {
			// Correlated period: protected. Orders behind every candidate;
			// among protected items the stalest goes first if eviction is
			// unavoidable.
			return -inf + (now - s.last)
		}
		if kth, ok := s.ring.kth(); ok {
			return now - kth
		}
		// Infinite backward k-distance: dominates any finite distance;
		// ordered among themselves by last access.
		return inf + (now - s.last)
	})
	return p
}

// NewLRUKFactory returns a Factory for NewLRUK(k).
func NewLRUKFactory(k int) Factory { return func() Policy { return NewLRUK(k) } }

func (p *lruK) Name() string { return fmt.Sprintf("lru-%d", p.k) }

// record applies one access with reference collapsing.
func (p *lruK) record(s *lruKState, now float64) {
	if s.ring.n == 0 || now-s.last >= p.crp {
		s.ring.push(now)
	}
	s.last = now
}

func (p *lruK) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		p.record(s, now)
		return
	}
	s, ok := p.history[it]
	if !ok {
		s = &lruKState{ring: newAccessRing(p.k)}
		p.history[it] = s
	}
	p.record(s, now)
	p.core.add(it, s)
}

func (p *lruK) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	p.record(s, now)
}

func (p *lruK) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *lruK) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *lruK) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *lruK) Len() int                               { return p.core.len() }

// ---------------------------------------------------------------- LRD ----

// DefaultLRDInterval is the reference-count aging period used in
// Experiment #2: "the reference count of each database item is divided by 2
// every 1000 seconds".
const DefaultLRDInterval = 1000.0

type lrdState struct {
	refs     float64
	enter    float64 // first-access time
	lastAged float64
}

func (s *lrdState) age(now, interval float64) {
	for now-s.lastAged >= interval {
		s.refs /= 2
		s.lastAged += interval
	}
}

// lrd implements least-reference-density with periodic aging: the victim
// has the minimum time-decayed reference count, where counts are halved
// every interval seconds (applied lazily) — Experiment #2's "the reference
// count of each database item is divided by 2 every 1000 seconds". The
// halving is the aging: an item's decayed count converges to a constant
// multiple of its access rate, and the count of an abandoned item decays
// geometrically, which is what lets LRD adapt to hot-spot changes faster
// than LRU (Figure 5) while adapting slower than EWMA.
type lrd struct {
	interval float64
	core     scanCore[lrdState]
}

// NewLRD returns the LRD policy with the given aging interval.
func NewLRD(interval float64) Policy {
	if interval <= 0 {
		panic("replacement: LRD interval must be positive")
	}
	p := &lrd{interval: interval}
	p.core = newScanCore(func(s *lrdState, now float64) float64 {
		s.age(now, p.interval)
		return -s.refs // min decayed density == max badness
	})
	return p
}

// NewLRDFactory returns a Factory for NewLRD(interval).
func NewLRDFactory(interval float64) Factory { return func() Policy { return NewLRD(interval) } }

func (p *lrd) Name() string { return "lrd" }

func (p *lrd) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.age(now, p.interval)
		s.refs++
		return
	}
	p.core.add(it, &lrdState{refs: 1, enter: now, lastAged: now})
}

func (p *lrd) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.age(now, p.interval)
	s.refs++
}

func (p *lrd) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *lrd) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *lrd) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *lrd) Len() int                               { return p.core.len() }

// --------------------------------------------------------------- FIFO ----

type fifoState struct {
	seq uint64
}

// fifo evicts in insertion order, ignoring accesses.
type fifo struct {
	core scanCore[fifoState]
	n    uint64
}

// NewFIFO returns the first-in-first-out baseline.
func NewFIFO() Policy {
	p := &fifo{}
	p.core = newScanCore(func(s *fifoState, _ float64) float64 {
		return -float64(s.seq)
	})
	return p
}

// NewFIFOFactory returns a Factory for NewFIFO.
func NewFIFOFactory() Factory { return func() Policy { return NewFIFO() } }

func (p *fifo) Name() string { return "fifo" }

func (p *fifo) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.core.get(it); ok {
		return
	}
	p.n++
	p.core.add(it, &fifoState{seq: p.n})
}

func (p *fifo) OnAccess(it oodb.Item, now float64) {
	_, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
}

func (p *fifo) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *fifo) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *fifo) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *fifo) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- CLOCK ----

// clock implements the second-chance approximation of LRU: items sit on a
// circular list with a referenced bit; the hand clears bits until it finds
// an unreferenced item.
type clock struct {
	items []oodb.Item
	index map[oodb.Item]int
	ref   map[oodb.Item]bool
	hand  int
}

// NewClock returns the CLOCK (second chance) baseline.
func NewClock() Policy {
	return &clock{index: make(map[oodb.Item]int), ref: make(map[oodb.Item]bool)}
}

// NewClockFactory returns a Factory for NewClock.
func NewClockFactory() Factory { return func() Policy { return NewClock() } }

func (p *clock) Name() string { return "clock" }

func (p *clock) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.index[it]; ok {
		p.ref[it] = true
		return
	}
	p.index[it] = len(p.items)
	p.items = append(p.items, it)
	p.ref[it] = true
}

func (p *clock) OnAccess(it oodb.Item, now float64) {
	_, ok := p.index[it]
	mustTracked(p.Name(), ok, it)
	p.ref[it] = true
}

func (p *clock) Victim(now float64) (oodb.Item, bool) {
	if len(p.items) == 0 {
		return oodb.Item{}, false
	}
	for sweep := 0; sweep < 2*len(p.items)+1; sweep++ {
		if p.hand >= len(p.items) {
			p.hand = 0
		}
		it := p.items[p.hand]
		if p.ref[it] {
			p.ref[it] = false
			p.hand++
			continue
		}
		return it, true
	}
	// All bits were set and cleared twice: fall back to the hand position.
	if p.hand >= len(p.items) {
		p.hand = 0
	}
	return p.items[p.hand], true
}

func (p *clock) Victims(now float64, n int) []oodb.Item {
	if n > len(p.items) {
		n = len(p.items)
	}
	var out []oodb.Item
	seen := make(map[oodb.Item]bool, n)
	for len(out) < n {
		it, ok := p.Victim(now)
		if !ok || seen[it] {
			break
		}
		seen[it] = true
		out = append(out, it)
		// Mark it referenced so the next sweep passes over it; callers
		// evict (Remove) the returned items anyway, which clears state.
		p.ref[it] = true
		p.hand++
	}
	return out
}

func (p *clock) Remove(it oodb.Item) {
	i, ok := p.index[it]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	delete(p.index, it)
	delete(p.ref, it)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *clock) Len() int { return len(p.items) }

// ------------------------------------------------------------- Random ----

// random evicts a uniformly random resident item.
type random struct {
	items []oodb.Item
	index map[oodb.Item]int
	rnd   *rng.Stream
}

// NewRandom returns the random-replacement baseline using the given stream.
func NewRandom(rnd *rng.Stream) Policy {
	if rnd == nil {
		panic("replacement: NewRandom requires a stream")
	}
	return &random{index: make(map[oodb.Item]int), rnd: rnd}
}

func (p *random) Name() string { return "random" }

func (p *random) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.index[it]; ok {
		return
	}
	p.index[it] = len(p.items)
	p.items = append(p.items, it)
}

func (p *random) OnAccess(it oodb.Item, now float64) {
	_, ok := p.index[it]
	mustTracked(p.Name(), ok, it)
}

func (p *random) Victim(now float64) (oodb.Item, bool) {
	if len(p.items) == 0 {
		return oodb.Item{}, false
	}
	return p.items[p.rnd.Intn(len(p.items))], true
}

func (p *random) Victims(now float64, n int) []oodb.Item {
	if n > len(p.items) {
		n = len(p.items)
	}
	if n <= 0 {
		return nil
	}
	idx := p.rnd.Sample(len(p.items), n)
	out := make([]oodb.Item, n)
	for i, j := range idx {
		out[i] = p.items[j]
	}
	return out
}

func (p *random) Remove(it oodb.Item) {
	i, ok := p.index[it]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	delete(p.index, it)
}

func (p *random) Len() int { return len(p.items) }

// ---------------------------------------------------------------- MRU ----

// mru evicts the item with the *newest* last access — the classical
// most-recently-used policy from the replacement literature [5] surveys.
// It is pessimal on recency-friendly workloads but competitive on loops,
// making it a useful contrast on the cyclic pattern of Experiment #4.
type mru struct {
	core scanCore[lruState]
}

// NewMRU returns the most-recently-used policy.
func NewMRU() Policy {
	p := &mru{}
	p.core = newScanCore(func(s *lruState, now float64) float64 {
		return s.last - now // newest access == maximum badness
	})
	return p
}

// NewMRUFactory returns a Factory for NewMRU.
func NewMRUFactory() Factory { return func() Policy { return NewMRU() } }

func (p *mru) Name() string { return "mru" }

func (p *mru) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.last = now
		return
	}
	p.core.add(it, &lruState{last: now})
}

func (p *mru) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.last = now
}

func (p *mru) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *mru) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *mru) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *mru) Len() int                               { return p.core.len() }
