package core

import (
	"fmt"
	"math"

	"repro/internal/oodb"
	"repro/internal/replacement"
)

// EntryOverhead is the per-item bookkeeping cost in the storage cache, in
// bytes: the paper's cache table keeps a local surrogate (R.oid, R.host),
// the cached value slot, the lease expiry, and the version stamp for every
// cached item. Fine-grained (attribute) caching pays this once per
// attribute, whole-object caching once per object — the classic metadata
// tax on fine granularity that §2 of the paper alludes to.
const EntryOverhead = 48

// ItemCost returns the storage budget consumed by caching an item: its
// payload plus the per-entry bookkeeping overhead.
func ItemCost(it oodb.Item) int { return it.Size() + EntryOverhead }

// Entry is the metadata a client keeps per cached item: the server-side
// version captured at fetch time (consumed by the error oracle) and the
// absolute lease expiry derived from the server's refresh-time estimate.
type Entry struct {
	Version   uint64
	ExpiresAt float64
	FetchedAt float64
}

// ValidAt reports whether the lease is still running at time t.
func (e Entry) ValidAt(t float64) bool { return t < e.ExpiresAt }

// LookupState classifies the outcome of a cache probe.
type LookupState int

const (
	// Miss: the item is not resident.
	Miss LookupState = iota
	// Stale: the item is resident but its lease has expired; a connected
	// client must refresh it, a disconnected one may still read it
	// (§3.2, §5.6).
	Stale
	// Hit: the item is resident with a running lease.
	Hit
)

// String renders the state for logs and tests.
func (s LookupState) String() string {
	switch s {
	case Miss:
		return "miss"
	case Stale:
		return "stale"
	case Hit:
		return "hit"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Cache is the client's storage cache: a byte-budgeted table of database
// items ranked by a replacement policy. The paper sizes it at 20% of the
// database (400 objects × 1024 B); attribute items consume AttrSize bytes
// so AC/HC fit many more entries than OC.
type Cache struct {
	capacityBytes int
	usedBytes     int
	entries       map[oodb.Item]*Entry
	policy        replacement.Policy

	insertions uint64
	evictions  uint64
	rejected   uint64
}

// NewCache builds a storage cache with the given byte capacity and policy.
func NewCache(capacityBytes int, policy replacement.Policy) *Cache {
	if capacityBytes <= 0 {
		panic("core: cache capacity must be positive")
	}
	if policy == nil {
		panic("core: cache requires a replacement policy")
	}
	return &Cache{
		capacityBytes: capacityBytes,
		entries:       make(map[oodb.Item]*Entry),
		policy:        policy,
	}
}

// Lookup probes the cache for item at time now. Resident items — valid or
// stale — are recorded as accesses with the replacement policy, since the
// access probability the policy estimates does not depend on lease state.
// The returned entry is live cache state; callers must not retain it across
// mutations.
func (c *Cache) Lookup(it oodb.Item, now float64) (*Entry, LookupState) {
	e, ok := c.entries[it]
	if !ok {
		return nil, Miss
	}
	c.policy.OnAccess(it, now)
	if !e.ValidAt(now) {
		return e, Stale
	}
	return e, Hit
}

// Peek returns the entry without touching replacement state.
func (c *Cache) Peek(it oodb.Item) (*Entry, bool) {
	e, ok := c.entries[it]
	return e, ok
}

// Contains reports residency without touching replacement state.
func (c *Cache) Contains(it oodb.Item) bool {
	_, ok := c.entries[it]
	return ok
}

// Insert caches (or refreshes) item with the given metadata, evicting
// victims as needed to respect the byte budget. It returns the evicted
// items. Items larger than the whole cache are rejected (never cached).
//
// A refresh of a resident item only updates its metadata: the access was
// already recorded by the Lookup that discovered the miss/staleness, and a
// server-initiated prefetch of an already-resident item is not a client
// access at all.
func (c *Cache) Insert(it oodb.Item, e Entry, now float64) []oodb.Item {
	if old, ok := c.entries[it]; ok {
		*old = e
		return nil
	}
	size := ItemCost(it)
	if size > c.capacityBytes {
		c.rejected++
		return nil
	}
	var evicted []oodb.Item
	for c.usedBytes+size > c.capacityBytes {
		victim, ok := c.policy.Victim(now)
		if !ok {
			panic("core: cache over budget with no victim available")
		}
		c.removeResident(victim)
		c.evictions++
		evicted = append(evicted, victim)
	}
	stored := e
	c.entries[it] = &stored
	c.usedBytes += size
	c.policy.OnInsert(it, now)
	c.insertions++
	return evicted
}

// BatchEntry pairs an item with its metadata for InsertBatch.
type BatchEntry struct {
	Item  oodb.Item
	Entry Entry
}

// InsertBatch caches a whole reply's items at once. It frees room for the
// batch with bulk victim selection (one policy scan yields many victims)
// before inserting, which is what keeps large replies (OC objects, HC
// prefetch sets) affordable; the set of evicted items matches what repeated
// single Inserts would have chosen at the same instant. Returns all evicted
// items.
func (c *Cache) InsertBatch(batch []BatchEntry, now float64) []oodb.Item {
	// Bytes the batch will add: new, cacheable, de-duplicated items only.
	incoming := 0
	seen := make(map[oodb.Item]bool, len(batch))
	for _, b := range batch {
		if seen[b.Item] || c.Contains(b.Item) || ItemCost(b.Item) > c.capacityBytes {
			continue
		}
		seen[b.Item] = true
		incoming += ItemCost(b.Item)
	}
	var evicted []oodb.Item
	for c.usedBytes+incoming > c.capacityBytes {
		over := c.usedBytes + incoming - c.capacityBytes
		want := over/oodb.AttrSize + 1
		if want > 1024 {
			want = 1024
		}
		victims := c.policy.Victims(now, want)
		if len(victims) == 0 {
			// The batch alone exceeds the whole cache: nothing left to
			// bulk-evict. The per-item phase below will evict earlier
			// batch items as later ones insert.
			break
		}
		progress := false
		for _, v := range victims {
			if c.usedBytes+incoming <= c.capacityBytes {
				break
			}
			c.removeResident(v)
			c.evictions++
			evicted = append(evicted, v)
			progress = true
		}
		if !progress {
			panic("core: bulk eviction made no progress")
		}
	}
	// Insert; Insert itself copes with any residual corner cases (e.g. a
	// batch item that was just selected as a victim).
	for _, b := range batch {
		evicted = append(evicted, c.Insert(b.Item, b.Entry, now)...)
	}
	return evicted
}

// Remove drops item from the cache (explicit invalidation), reporting
// whether it was resident.
func (c *Cache) Remove(it oodb.Item) bool {
	if _, ok := c.entries[it]; !ok {
		return false
	}
	c.removeResident(it)
	return true
}

func (c *Cache) removeResident(it oodb.Item) {
	if _, ok := c.entries[it]; !ok {
		panic(fmt.Sprintf("core: removing non-resident item %v", it))
	}
	delete(c.entries, it)
	c.usedBytes -= ItemCost(it)
	c.policy.Remove(it)
}

// ForEach visits every resident item in unspecified order; fn returning
// false stops the iteration. fn must not mutate the cache; collect items
// first and mutate afterwards.
func (c *Cache) ForEach(fn func(it oodb.Item, e *Entry) bool) {
	for it, e := range c.entries {
		if !fn(it, e) {
			return
		}
	}
}

// Clear drops every resident item (e.g. a client discarding a cache it can
// no longer trust after missing invalidation reports). Eviction counters
// are not advanced; replacement state is fully reset.
func (c *Cache) Clear() {
	for it := range c.entries {
		c.policy.Remove(it)
		delete(c.entries, it)
	}
	c.usedBytes = 0
}

// Len returns the number of resident items.
func (c *Cache) Len() int { return len(c.entries) }

// UsedBytes returns the occupied byte budget.
func (c *Cache) UsedBytes() int { return c.usedBytes }

// CapacityBytes returns the byte budget.
func (c *Cache) CapacityBytes() int { return c.capacityBytes }

// Insertions returns the number of distinct item insertions.
func (c *Cache) Insertions() uint64 { return c.insertions }

// Evictions returns the number of evictions performed.
func (c *Cache) Evictions() uint64 { return c.evictions }

// PolicyName returns the replacement policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// ValidFraction returns the fraction of resident items whose lease is still
// running at time now (diagnostic for coherence experiments).
func (c *Cache) ValidFraction(now float64) float64 {
	if len(c.entries) == 0 {
		return 0
	}
	valid := 0
	for _, e := range c.entries {
		if e.ValidAt(now) {
			valid++
		}
	}
	return float64(valid) / float64(len(c.entries))
}

// CoverItem maps a single attribute read to the cache item that would
// satisfy it under granularity g: the whole object under OC (and NC's
// memory buffer), the attribute itself under AC/HC.
func CoverItem(g Granularity, oid oodb.OID, attr oodb.AttrID) oodb.Item {
	if g.UsesAttributeItems() {
		return oodb.AttrItem(oid, attr)
	}
	return oodb.ObjectItem(oid)
}

// NoExpiryEntry builds an Entry that never expires, for tests and for
// read-only workloads where the server reports no write history.
func NoExpiryEntry(version uint64, now float64) Entry {
	return Entry{Version: version, ExpiresAt: math.MaxFloat64, FetchedAt: now}
}
