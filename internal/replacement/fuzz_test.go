package replacement

import (
	"testing"

	"repro/internal/oodb"
)

// FuzzParse checks Parse never panics and that accepted specs produce
// policies whose Name round-trips through Parse again.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"lru", "lru-3", "lru-0", "lrd", "mean", "win-10", "win-x",
		"ewma-0.5", "ewma-1.5", "fifo", "clock", "random:7", "", "lfu",
		"ewma--1", "win-99999", "lru-999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		factory, err := Parse(spec)
		if err != nil {
			return
		}
		p := factory()
		if p == nil {
			t.Fatalf("Parse(%q) returned nil policy", spec)
		}
		name := p.Name()
		if name == "random" {
			return // random's spec embeds a seed the name drops
		}
		if _, err := Parse(name); err != nil {
			t.Fatalf("Name %q of accepted spec %q does not re-parse: %v", name, spec, err)
		}
	})
}

// FuzzDifferentialTrace replays a byte-encoded operation trace against an
// indexed policy and its retained scanCore reference twin in lockstep,
// requiring identical victim choices throughout. Each byte encodes one
// operation on a small item universe; time advances by the low bits so the
// fuzzer can produce exact ties (zero gaps) as well as long idle spans.
func FuzzDifferentialTrace(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(1, []byte{0x00, 0x41, 0x82, 0xc3, 0x04, 0x45})
	f.Add(3, []byte{0x10, 0x10, 0x10, 0x10, 0xf0, 0xf1}) // repeated same-time hits
	f.Add(5, []byte{0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xc8})
	f.Add(7, []byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8})
	f.Add(9, []byte{0x20, 0x60, 0xa0, 0xe0, 0x21, 0x61, 0xa1, 0xe1, 0x22})
	f.Add(11, []byte{0x33, 0x77, 0xbb, 0xff, 0x00, 0x44, 0x88, 0xcc})
	f.Add(13, []byte{0x0f, 0x4f, 0x8f, 0xcf, 0x1f, 0x5f, 0x9f, 0xdf})
	f.Fuzz(func(t *testing.T, specIdx int, trace []byte) {
		if specIdx < 0 {
			specIdx = -specIdx
		}
		spec := differentialSpecs[specIdx%len(differentialSpecs)]
		factory, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		opt := factory()
		ref, err := newReferencePolicy(spec)
		if err != nil {
			t.Fatalf("newReferencePolicy(%q): %v", spec, err)
		}
		const universe = 12
		now := 0.0
		resident := make(map[oodb.Item]bool)
		for _, b := range trace {
			it := oodb.ObjectItem(oodb.OID(int(b>>2) % universe))
			now += float64(b & 0x03) // 0 keeps time still: exact ties
			switch op := b >> 6; op {
			case 0:
				opt.OnInsert(it, now)
				ref.OnInsert(it, now)
				resident[it] = true
			case 1:
				// OnAccess and Remove require tracked items; fold the
				// untracked case into an insert so every byte does work.
				if !resident[it] {
					opt.OnInsert(it, now)
					ref.OnInsert(it, now)
					resident[it] = true
					break
				}
				opt.OnAccess(it, now)
				ref.OnAccess(it, now)
			case 2:
				if !resident[it] {
					break
				}
				opt.Remove(it)
				ref.Remove(it)
				delete(resident, it)
			case 3:
				vo, oko := opt.Victim(now)
				vr, okr := ref.Victim(now)
				if oko != okr || vo != vr {
					t.Fatalf("%s: victim mismatch at t=%v: opt=(%v,%v) ref=(%v,%v)",
						spec, now, vo, oko, vr, okr)
				}
				if oko {
					opt.Remove(vo)
					ref.Remove(vr)
					delete(resident, vo)
				}
			}
			if opt.Len() != ref.Len() {
				t.Fatalf("%s: length mismatch: opt=%d ref=%d", spec, opt.Len(), ref.Len())
			}
		}
		// Drain both caches, comparing the full eviction order.
		for opt.Len() > 0 {
			vo, _ := opt.Victim(now)
			vr, _ := ref.Victim(now)
			if vo != vr {
				t.Fatalf("%s: drain mismatch at t=%v: opt=%v ref=%v", spec, now, vo, vr)
			}
			opt.Remove(vo)
			ref.Remove(vr)
			now += 1.0
		}
	})
}
