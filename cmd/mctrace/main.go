// Command mctrace summarizes a per-query CSV trace produced by
// `mcsim -run -trace file.csv`: run-level metrics, response-time
// percentiles, and per-client / per-hour breakdowns.
//
//	mcsim -run -granularity hc -arrival bursty -days 1 -trace run.csv
//	mctrace run.csv
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: mctrace <trace.csv>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
	trace.Analyze(records).WriteReport(os.Stdout)
}
