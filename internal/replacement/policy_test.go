package replacement

import (
	"testing"
	"testing/quick"

	"repro/internal/oodb"
	"repro/internal/rng"
)

func obj(i int) oodb.Item { return oodb.ObjectItem(oodb.OID(i)) }

func allPolicies() []Policy {
	return []Policy{
		NewLRU(), NewLRUK(3), NewLRD(1000), NewMean(),
		NewWindow(10), NewEWMA(0.5), NewFIFO(), NewClock(),
		NewMRU(), NewRandom(rng.New(1)),
	}
}

func TestEmptyVictim(t *testing.T) {
	for _, p := range allPolicies() {
		if _, ok := p.Victim(0); ok {
			t.Errorf("%s: Victim on empty returned ok", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", p.Name(), p.Len())
		}
	}
}

func TestInsertRemoveLen(t *testing.T) {
	for _, p := range allPolicies() {
		p.OnInsert(obj(1), 0)
		p.OnInsert(obj(2), 1)
		if p.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", p.Name(), p.Len())
		}
		p.Remove(obj(1))
		if p.Len() != 1 {
			t.Errorf("%s: Len after Remove = %d, want 1", p.Name(), p.Len())
		}
		p.Remove(obj(1)) // idempotent
		if p.Len() != 1 {
			t.Errorf("%s: double Remove changed Len", p.Name())
		}
		v, ok := p.Victim(2)
		if !ok || v != obj(2) {
			t.Errorf("%s: Victim = %v,%v, want obj(2)", p.Name(), v, ok)
		}
	}
}

func TestReinsertIsAccess(t *testing.T) {
	// OnInsert on an already-tracked item must not duplicate it.
	for _, p := range allPolicies() {
		p.OnInsert(obj(1), 0)
		p.OnInsert(obj(1), 5)
		if p.Len() != 1 {
			t.Errorf("%s: reinsert duplicated item, Len=%d", p.Name(), p.Len())
		}
	}
}

func TestAccessUntrackedPanics(t *testing.T) {
	for _, p := range allPolicies() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: OnAccess on untracked item did not panic", p.Name())
				}
			}()
			p.OnAccess(obj(99), 0)
		}()
	}
}

func TestLRUVictim(t *testing.T) {
	p := NewLRU()
	p.OnInsert(obj(1), 0)
	p.OnInsert(obj(2), 1)
	p.OnInsert(obj(3), 2)
	p.OnAccess(obj(1), 3) // 1 becomes MRU; LRU order: 2,3,1
	v, _ := p.Victim(4)
	if v != obj(2) {
		t.Fatalf("LRU victim = %v, want obj(2)", v)
	}
}

func TestLRUKPrefersShortHistory(t *testing.T) {
	p := NewLRUKCRP(2, 0)
	// obj(1): accesses at 0,1,2 -> 2nd most recent = 1
	p.OnInsert(obj(1), 0)
	p.OnAccess(obj(1), 1)
	p.OnAccess(obj(1), 2)
	// obj(2): single access at 3 -> infinite backward 2-distance
	p.OnInsert(obj(2), 3)
	v, _ := p.Victim(4)
	if v != obj(2) {
		t.Fatalf("LRU-2 victim = %v, want obj(2) (infinite k-distance)", v)
	}
}

func TestLRUKUsesKthAccess(t *testing.T) {
	p := NewLRUKCRP(2, 0)
	// Both have >= 2 accesses. obj(1) kth (2nd last) = 0; obj(2) kth = 5.
	p.OnInsert(obj(1), 0)
	p.OnAccess(obj(1), 10) // recent last access, but old 2nd-last
	p.OnInsert(obj(2), 5)
	p.OnAccess(obj(2), 6)
	v, _ := p.Victim(11)
	if v != obj(1) {
		t.Fatalf("LRU-2 victim = %v, want obj(1)", v)
	}
	// Plain LRU would instead evict obj(2) (older last access).
	q := NewLRU()
	q.OnInsert(obj(1), 0)
	q.OnAccess(obj(1), 10)
	q.OnInsert(obj(2), 5)
	q.OnAccess(obj(2), 6)
	vq, _ := q.Victim(11)
	if vq != obj(2) {
		t.Fatalf("LRU victim = %v, want obj(2)", vq)
	}
}

func TestLRUKInfiniteTieBreak(t *testing.T) {
	p := NewLRUKCRP(3, 0)
	p.OnInsert(obj(1), 0) // last access 0
	p.OnInsert(obj(2), 5) // last access 5
	v, _ := p.Victim(6)
	if v != obj(1) {
		t.Fatalf("victim = %v, want obj(1) (older last access)", v)
	}
}

func TestLRUKValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewLRUK(0) did not panic")
			}
		}()
		NewLRUK(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative CRP did not panic")
			}
		}()
		NewLRUKCRP(2, -1)
	}()
}

func TestLRUKCorrelatedReferencesCollapse(t *testing.T) {
	p := NewLRUKCRP(2, 100).(*lruK)
	p.OnInsert(obj(1), 0)
	p.OnAccess(obj(1), 10) // correlated: within 100s of the last access
	s := &p.arena[p.history[obj(1)]]
	if s.ring.n != 1 {
		t.Fatalf("correlated access pushed a reference: n=%d", s.ring.n)
	}
	p.OnAccess(obj(1), 200) // uncorrelated
	if s.ring.n != 2 {
		t.Fatalf("uncorrelated access not recorded: n=%d", s.ring.n)
	}
}

func TestLRUKCRPProtectsRecent(t *testing.T) {
	p := NewLRUKCRP(2, 100)
	p.OnInsert(obj(1), 0)   // singleton, but old (unprotected at t=500)
	p.OnInsert(obj(2), 450) // singleton, recent (protected at t=500)
	v, _ := p.Victim(500)
	if v != obj(1) {
		t.Fatalf("victim = %v, want the unprotected obj(1)", v)
	}
}

func TestLRUKRetainedHistory(t *testing.T) {
	p := NewLRUKCRP(2, 0)
	// obj(1) earns two references, is evicted, and returns: its k-distance
	// must be finite immediately (retained history).
	p.OnInsert(obj(1), 0)
	p.OnAccess(obj(1), 10)
	p.Remove(obj(1))
	p.OnInsert(obj(1), 20)
	p.OnInsert(obj(2), 21) // fresh singleton: infinite distance
	v, _ := p.Victim(30)
	if v != obj(2) {
		t.Fatalf("victim = %v, want obj(2) (obj(1) has retained history)", v)
	}
}

func TestLRDPrefersLowDensity(t *testing.T) {
	p := NewLRD(1000)
	p.OnInsert(obj(1), 0)
	for i := 1; i <= 9; i++ {
		p.OnAccess(obj(1), float64(i)) // 10 refs by t=9
	}
	p.OnInsert(obj(2), 0) // 1 ref over the same age
	v, _ := p.Victim(10)
	if v != obj(2) {
		t.Fatalf("LRD victim = %v, want obj(2)", v)
	}
}

func TestLRDAgingHalvesCounts(t *testing.T) {
	p := NewLRD(100)
	// obj(1): heavily referenced early, then idle.
	p.OnInsert(obj(1), 0)
	for i := 0; i < 63; i++ {
		p.OnAccess(obj(1), 1)
	}
	// obj(2): two recent references.
	p.OnInsert(obj(2), 0)
	p.OnAccess(obj(2), 990)
	// By t=1000, obj(1)'s 64 refs have been halved 10 times -> 0.0625;
	// density 0.0625/1000 < obj(2)'s ~0.002.
	v, _ := p.Victim(1000)
	if v != obj(1) {
		t.Fatalf("LRD victim after aging = %v, want obj(1)", v)
	}
}

func TestLRDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRD(0) did not panic")
		}
	}()
	NewLRD(0)
}

func TestMeanScore(t *testing.T) {
	p := NewMean()
	// obj(1): regular accesses every 1s -> mean 1.
	p.OnInsert(obj(1), 0)
	for i := 1; i <= 5; i++ {
		p.OnAccess(obj(1), float64(i))
	}
	// obj(2): accesses every 10s -> mean 10.
	p.OnInsert(obj(2), 0)
	p.OnAccess(obj(2), 10)
	v, _ := p.Victim(11)
	if v != obj(2) {
		t.Fatalf("Mean victim = %v, want obj(2)", v)
	}
}

func TestMeanDragsHistory(t *testing.T) {
	// After a hot->cold transition, Mean keeps the stale-hot item longer
	// than EWMA does: the defining difference in Experiment #2.
	build := func(p Policy) {
		p.OnInsert(obj(1), 0)
		for i := 1; i <= 100; i++ {
			p.OnAccess(obj(1), float64(i)) // hot: d=1 x100
		}
		p.OnInsert(obj(2), 100)
		p.OnAccess(obj(2), 140) // newcomer with one 40s gap
	}
	m := NewMean()
	build(m)
	e := NewEWMA(0.5)
	build(e)
	// At t=150: obj(1) idle for 50s.
	vm, _ := m.Victim(150)
	ve, _ := e.Victim(150)
	if vm != obj(2) {
		t.Fatalf("Mean victim = %v, want obj(2) (history drag)", vm)
	}
	if ve != obj(1) {
		t.Fatalf("EWMA victim = %v, want obj(1) (fast adaptation)", ve)
	}
}

func TestWindowForgets(t *testing.T) {
	p := NewWindow(2)
	// obj(1): long-ago dense accesses, then idle.
	p.OnInsert(obj(1), 0)
	p.OnAccess(obj(1), 1)
	p.OnAccess(obj(1), 2)
	// obj(2): steady 5s cadence.
	p.OnInsert(obj(2), 0)
	p.OnAccess(obj(2), 5)
	p.OnAccess(obj(2), 10)
	// At t=30, obj(1)'s window blends in a 28s open interval -> colder.
	v, _ := p.Victim(30)
	if v != obj(1) {
		t.Fatalf("Window victim = %v, want obj(1)", v)
	}
}

func TestWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestEWMAValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEWMA(1) did not panic")
		}
	}()
	NewEWMA(1)
}

func TestFIFOIgnoresAccesses(t *testing.T) {
	p := NewFIFO()
	p.OnInsert(obj(1), 0)
	p.OnInsert(obj(2), 1)
	p.OnAccess(obj(1), 100) // must not save obj(1)
	v, _ := p.Victim(101)
	if v != obj(1) {
		t.Fatalf("FIFO victim = %v, want obj(1)", v)
	}
}

func TestClockSecondChance(t *testing.T) {
	p := NewClock()
	p.OnInsert(obj(1), 0)
	p.OnInsert(obj(2), 0)
	p.OnInsert(obj(3), 0)
	// First victim pass clears all bits then wraps to obj(1).
	v, ok := p.Victim(1)
	if !ok || v != obj(1) {
		t.Fatalf("first victim = %v, want obj(1)", v)
	}
	p.Remove(v)
	// Re-reference obj(2): it gets a second chance; obj(3) goes next.
	p.OnAccess(obj(2), 2)
	v2, _ := p.Victim(3)
	if v2 != obj(2) && v2 != obj(3) {
		t.Fatalf("second victim = %v", v2)
	}
	// Whichever it returned, it must not be referenced since the sweep:
	// after clearing, a referenced obj(2) should survive one extra pass.
	if v2 == obj(2) {
		t.Fatalf("CLOCK evicted recently referenced obj(2)")
	}
}

func TestRandomVictimIsResident(t *testing.T) {
	p := NewRandom(rng.New(7))
	for i := 0; i < 10; i++ {
		p.OnInsert(obj(i), 0)
	}
	seen := map[oodb.Item]bool{}
	for i := 0; i < 200; i++ {
		v, ok := p.Victim(1)
		if !ok {
			t.Fatal("Victim failed")
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Fatalf("random victims not spread: %d distinct", len(seen))
	}
}

func TestRandomValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandom(nil) did not panic")
		}
	}()
	NewRandom(nil)
}

func TestParse(t *testing.T) {
	good := []struct{ spec, name string }{
		{"lru", "lru"},
		{"lru-3", "lru-3"},
		{"lrd", "lrd"},
		{"mean", "mean"},
		{"win-10", "win-10"},
		{"ewma-0.5", "ewma-0.5"},
		{"fifo", "fifo"},
		{"clock", "clock"},
		{"mru", "mru"},
		{"random:42", "random"},
	}
	for _, c := range good {
		f, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := f().Name(); got != c.name {
			t.Fatalf("Parse(%q).Name() = %q, want %q", c.spec, got, c.name)
		}
	}
	for _, bad := range []string{"", "lfu", "lru-0", "win-0", "ewma-1.5", "ewma-2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]bool{
		"lru": true, "lru-3": true, "lrd": true, "mean": true,
		"win-10": true, "ewma-0.5": true, "fifo": true, "clock": true,
		"mru": true, "random": true,
	}
	for _, p := range allPolicies() {
		if !want[p.Name()] {
			t.Errorf("unexpected policy name %q", p.Name())
		}
	}
}

// Property: for every policy, under arbitrary op sequences, (a) Len matches
// a reference set, (b) Victim returns a resident item, (c) Remove(victim)
// then Victim never returns the removed item.
func TestQuickPolicyInvariants(t *testing.T) {
	factories := []Factory{
		NewLRUFactory(), NewLRUKFactory(2), NewLRDFactory(100),
		NewMeanFactory(), NewWindowFactory(3), NewEWMAFactory(0.5),
		NewFIFOFactory(), NewClockFactory(), NewRandomFactory(99),
	}
	for _, factory := range factories {
		factory := factory
		f := func(ops []uint8) bool {
			p := factory()
			resident := map[oodb.Item]bool{}
			now := 0.0
			for _, op := range ops {
				now += float64(op%5) + 0.5
				it := obj(int(op) % 6)
				switch (op / 6) % 3 {
				case 0:
					p.OnInsert(it, now)
					resident[it] = true
				case 1:
					if resident[it] {
						p.OnAccess(it, now)
					}
				case 2:
					p.Remove(it)
					delete(resident, it)
				}
				if p.Len() != len(resident) {
					return false
				}
				if v, ok := p.Victim(now); ok != (len(resident) > 0) {
					return false
				} else if ok && !resident[v] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", factory().Name(), err)
		}
	}
}

func BenchmarkPolicyUpdate(b *testing.B) {
	for _, factory := range []Factory{
		NewLRUFactory(), NewLRUKFactory(3), NewLRDFactory(1000),
		NewMeanFactory(), NewWindowFactory(10), NewEWMAFactory(0.5),
	} {
		p := factory()
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < 400; i++ {
				p.OnInsert(obj(i), float64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.OnAccess(obj(i%400), float64(400+i))
			}
		})
	}
}

func BenchmarkPolicyVictim(b *testing.B) {
	for _, factory := range []Factory{
		NewLRUFactory(), NewLRUKFactory(3), NewLRDFactory(1000),
		NewMeanFactory(), NewWindowFactory(10), NewEWMAFactory(0.5),
	} {
		p := factory()
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < 400; i++ {
				p.OnInsert(obj(i), float64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Victim(float64(401 + i))
			}
		})
	}
}

func TestVictimsWorstFirst(t *testing.T) {
	// For every scan-based policy, Victims(n) must list candidates in the
	// exact order repeated Victim+Remove would evict them (distinct access
	// times, so no ties).
	factories := []Factory{
		NewLRUFactory(), func() Policy { return NewLRUKCRP(2, 0) },
		// A long LRD interval keeps reference counts un-decayed (and
		// therefore distinct) over this test's timeline.
		NewLRDFactory(1e9), NewMeanFactory(), NewWindowFactory(3),
		NewEWMAFactory(0.5), NewFIFOFactory(),
	}
	for _, factory := range factories {
		p := factory()
		q := factory()
		now := 0.0
		for i := 0; i < 12; i++ {
			at := float64(i) * 50000
			p.OnInsert(obj(i), at)
			q.OnInsert(obj(i), at)
			// Give item i exactly i extra accesses with an item-specific
			// inter-access gap, so every policy's score is unique (no
			// tie-break ambiguity): distinct counts, distinct last-access
			// times, and distinct mean durations.
			gap := 300 * float64(i+1)
			for j := 0; j < i; j++ {
				ta := at + gap*float64(j+1)
				p.OnAccess(obj(i), ta)
				q.OnAccess(obj(i), ta)
			}
			now = at + gap*float64(i) + 1
		}
		now += 10000
		batch := p.Victims(now, 5)
		if len(batch) != 5 {
			t.Fatalf("%s: Victims returned %d items", p.Name(), len(batch))
		}
		for i, want := range batch {
			got, ok := q.Victim(now)
			if !ok {
				t.Fatalf("%s: reference Victim failed at %d", q.Name(), i)
			}
			if got != want {
				t.Fatalf("%s: victim %d = %v, reference %v", p.Name(), i, want, got)
			}
			q.Remove(got)
		}
	}
}

func TestVictimsClamping(t *testing.T) {
	for _, p := range allPolicies() {
		p.OnInsert(obj(1), 0)
		p.OnInsert(obj(2), 1)
		if vs := p.Victims(10, 99); len(vs) != 2 {
			t.Errorf("%s: Victims(99) on 2 items = %d", p.Name(), len(vs))
		}
		if vs := p.Victims(10, 0); len(vs) != 0 {
			t.Errorf("%s: Victims(0) = %d items", p.Name(), len(vs))
		}
		if vs := p.Victims(10, 1); len(vs) != 1 {
			t.Errorf("%s: Victims(1) = %d items", p.Name(), len(vs))
		}
	}
}

func TestVictimsDistinct(t *testing.T) {
	for _, p := range allPolicies() {
		for i := 0; i < 20; i++ {
			p.OnInsert(obj(i), float64(i))
		}
		vs := p.Victims(100, 10)
		seen := map[oodb.Item]bool{}
		for _, v := range vs {
			if seen[v] {
				t.Errorf("%s: duplicate victim %v", p.Name(), v)
			}
			seen[v] = true
		}
	}
}

func TestVictimsEmpty(t *testing.T) {
	for _, p := range allPolicies() {
		if vs := p.Victims(0, 4); len(vs) != 0 {
			t.Errorf("%s: Victims on empty = %v", p.Name(), vs)
		}
	}
}

func TestMRUEvictsNewest(t *testing.T) {
	p := NewMRU()
	p.OnInsert(obj(1), 0)
	p.OnInsert(obj(2), 5)
	p.OnAccess(obj(1), 10) // obj(1) is now the most recently used
	v, _ := p.Victim(11)
	if v != obj(1) {
		t.Fatalf("MRU victim = %v, want obj(1)", v)
	}
}
