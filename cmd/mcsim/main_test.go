package main

import (
	"bytes"
	"errors"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/workload"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig("hc", "ewma-0.5", "AQ", "sh", "poisson",
		500, 0.1, 0, 0, 0, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Granularity != core.HybridCaching {
		t.Fatalf("granularity %v", cfg.Granularity)
	}
	if cfg.QueryKind != workload.Associative {
		t.Fatalf("kind %v", cfg.QueryKind)
	}
	if cfg.Heat != experiment.SkewedHeat || cfg.Arrival != experiment.PoissonArrival {
		t.Fatal("heat/arrival defaults wrong")
	}
}

func TestBuildConfigVariants(t *testing.T) {
	cfg, err := buildConfig("oc", "lru-3", "nq", "cyclic", "bursty",
		300, 0.3, 1, 4, 5, 2, 9, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Granularity != core.ObjectCaching ||
		cfg.QueryKind != workload.Navigational ||
		cfg.Heat != experiment.CyclicHeat ||
		cfg.Arrival != experiment.BurstyArrival {
		t.Fatalf("config variants wrong: %+v", cfg)
	}
	if cfg.DisconnectedClients != 4 || cfg.DisconnectHours != 5 {
		t.Fatal("disconnection params lost")
	}
	if cfg.Days != 2 || cfg.Seed != 9 || cfg.NumClients != 5 || cfg.NumObjects != 500 {
		t.Fatal("scale params lost")
	}
	csh, err := buildConfig("ac", "mean", "AQ", "csh", "poisson",
		700, 0, 0, 0, 0, 0, 1, 0, 0)
	if err != nil || csh.Heat != experiment.ChangingSkewedHeat || csh.CSHChangeEvery != 700 {
		t.Fatalf("csh parse: %+v, %v", csh, err)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct{ gran, kind, heat, arrival string }{
		{"xx", "AQ", "sh", "poisson"},
		{"hc", "ZZ", "sh", "poisson"},
		{"hc", "AQ", "warm", "poisson"},
		{"hc", "AQ", "sh", "uniform"},
	}
	for i, c := range cases {
		_, err := buildConfig(c.gran, "lru", c.kind, c.heat, c.arrival,
			500, 0, 0, 0, 0, 0, 1, 0, 0)
		if err == nil {
			t.Fatalf("case %d accepted invalid input", i)
		}
	}
}

func TestRunExperimentsUnknown(t *testing.T) {
	err := runExperiments("banana", experiment.Config{}, false, "")
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
	// The error teaches the valid range: every catalog key with its
	// one-line summary.
	msg := err.Error()
	if !strings.Contains(msg, "want 1..11, table1, all") {
		t.Fatalf("error lacks valid range: %v", msg)
	}
	for _, e := range expCatalog {
		if !strings.Contains(msg, e.summary) {
			t.Fatalf("error lacks %q summary: %v", e.key, msg)
		}
	}
}

func TestRunExperimentsTable1(t *testing.T) {
	if err := runExperiments("table1", experiment.Config{}, false, ""); err != nil {
		t.Fatal(err)
	}
	// table1 runs no simulation, so there is nothing to instrument.
	err := runExperiments("table1", experiment.Config{}, false, t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "-report") {
		t.Fatalf("table1 with -report: err = %v", err)
	}
}

// TestRunExperimentsReport is the acceptance path end to end: a tiny Exp1
// sweep with -report produces manifest.json, report.md with at least three
// SVG timelines, and trace.csv — and a rerun with the same seed reproduces
// report.md byte for byte.
func TestRunExperimentsReport(t *testing.T) {
	base := experiment.Config{Seed: 3, Days: 0.02, NumClients: 2, NumObjects: 200}
	run := func() (string, []byte) {
		dir := t.TempDir()
		if err := runExperiments("1", base, false, dir); err != nil {
			t.Fatal(err)
		}
		md, err := os.ReadFile(filepath.Join(dir, "report.md"))
		if err != nil {
			t.Fatal(err)
		}
		return dir, md
	}
	dir, md := run()

	if n := strings.Count(string(md), "<svg"); n < 3 {
		t.Fatalf("report has %d SVG timelines, want >= 3", n)
	}
	var man report.Manifest
	mj, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mj, &man); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	if man.Experiment != "exp1" || man.Seed != 3 || len(man.Tables) == 0 ||
		!strings.Contains(man.Command, "exp 1") {
		t.Fatalf("manifest incomplete: %+v", man)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.csv")); err != nil {
		t.Fatalf("trace.csv missing: %v", err)
	}

	_, md2 := run()
	if !bytes.Equal(md, md2) {
		t.Fatal("same seed produced different report.md bytes")
	}
}

func TestQuickStorageConflict(t *testing.T) {
	if err := checkQuickStorage(true, "file:/tmp/tier"); !errors.Is(err, experiment.ErrConflict) {
		t.Fatalf("quick + storage = %v, want ErrConflict", err)
	}
	if err := checkQuickStorage(true, ""); err != nil {
		t.Fatalf("quick without storage rejected: %v", err)
	}
	if err := checkQuickStorage(false, "file:/tmp/tier"); err != nil {
		t.Fatalf("storage without quick rejected: %v", err)
	}
}

func TestDBSizeFlagAliasesObjects(t *testing.T) {
	o := simOpts{dbsize: 5000}
	n, err := o.resolveObjects()
	if err != nil || n != 5000 {
		t.Fatalf("resolveObjects = %d, %v", n, err)
	}
	o = simOpts{dbsize: 5000, objects: 5000}
	if n, err = o.resolveObjects(); err != nil || n != 5000 {
		t.Fatalf("agreeing sizes: %d, %v", n, err)
	}
	o = simOpts{dbsize: 5000, objects: 100}
	if _, err = o.resolveObjects(); !errors.Is(err, experiment.ErrConflict) {
		t.Fatalf("disagreeing sizes = %v, want ErrConflict", err)
	}
}

func TestStorageFlagsReachConfig(t *testing.T) {
	o := simOpts{
		granularity: "hc", policy: "ewma-0.5", kind: "AQ", heat: "sh",
		arrival: "poisson", coherenceS: "lease", seed: 1,
		dbsize: 5000, bufratio: 0.05, storage: "file:/tmp/tier?sync=none",
	}
	cfg, err := o.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumObjects != 5000 || cfg.ServerBufferRatio != 0.05 ||
		cfg.StorageDSN != "file:/tmp/tier?sync=none" {
		t.Fatalf("storage flags lost: %+v", cfg)
	}
	base, err := o.expBase()
	if err != nil {
		t.Fatal(err)
	}
	if base.NumObjects != 5000 || base.ServerBufferRatio != 0.05 ||
		base.StorageDSN != "file:/tmp/tier?sync=none" {
		t.Fatalf("exp base lost storage flags: %+v", base)
	}
}
