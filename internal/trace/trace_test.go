package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sample() QueryRecord {
	return QueryRecord{
		ClientID: 3, Index: 7, IssuedAt: 100, CompletedAt: 102.5,
		Reads: 60, Hits: 40, Stale: 2, Unavailable: 1, Errors: 3,
		Remote: true, Disconnected: false,
		RequestBytes: 27, ReplyBytes: 512,
	}
}

func TestResponseTime(t *testing.T) {
	if rt := sample().ResponseTime(); rt != 2.5 {
		t.Fatalf("ResponseTime = %v", rt)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Query(sample())
	c.Query(sample())
	if c.Len() != 2 || len(c.Records) != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Records[0].ClientID != 3 {
		t.Fatal("record mangled")
	}
}

func TestNop(t *testing.T) {
	Nop{}.Query(sample()) // must not panic
}

func TestCSVTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewCSV(&buf)
	tr.Query(sample())
	tr.Query(sample())
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 records
		t.Fatalf("%d rows", len(rows))
	}
	if len(rows[0]) != len(CSVHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(CSVHeader))
	}
	if rows[1][0] != "3" || rows[1][5] != "60" || rows[1][10] != "true" {
		t.Fatalf("row content: %v", rows[1])
	}
	if !strings.Contains(rows[1][4], "2.5") {
		t.Fatalf("response column: %q", rows[1][4])
	}
}

func TestCSVTracerWriterError(t *testing.T) {
	tr := NewCSV(failingWriter{})
	tr.Query(sample())
	if err := tr.Flush(); err == nil {
		t.Fatal("expected error from failing writer")
	}
	// Further records are dropped without panicking.
	tr.Query(sample())
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errBoom
}

var errBoom = &csvError{"boom"}

type csvError struct{ s string }

func (e *csvError) Error() string { return e.s }

func TestRoundTripCSV(t *testing.T) {
	var buf bytes.Buffer
	tr := NewCSV(&buf)
	recs := []QueryRecord{sample(), {ClientID: 1, Index: 2, IssuedAt: 7200,
		CompletedAt: 7201, Reads: 10, Hits: 10}}
	for _, r := range recs {
		tr.Query(r)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d records", len(parsed))
	}
	if parsed[0] != recs[0] || parsed[1] != recs[1] {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", parsed, recs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	head := strings.Join(CSVHeader, ",")
	if _, err := ReadCSV(strings.NewReader(head + "\n1,2,x,4,5,6,7,8,9,10,true,false,1,2\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	recs, err := ReadCSV(strings.NewReader(""))
	if err != nil || recs != nil {
		t.Fatalf("empty input: %v, %v", recs, err)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []QueryRecord{
		{ClientID: 0, IssuedAt: 0, CompletedAt: 2, Reads: 10, Hits: 5, Errors: 1, Remote: true, RequestBytes: 100, ReplyBytes: 400},
		{ClientID: 0, IssuedAt: 3600, CompletedAt: 3601, Reads: 10, Hits: 10},
		{ClientID: 1, IssuedAt: 10, CompletedAt: 16, Reads: 10, Hits: 0, Unavailable: 2, Stale: 1, Disconnected: true},
	}
	a := Analyze(recs)
	if a.Queries != 3 || a.Reads != 30 || a.Hits != 15 || a.Remote != 1 {
		t.Fatalf("counts: %+v", a)
	}
	if a.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v", a.HitRatio())
	}
	if a.ErrorRate() != 1.0/30 {
		t.Fatalf("ErrorRate = %v", a.ErrorRate())
	}
	if a.Response.Mean() != 3 {
		t.Fatalf("mean response = %v", a.Response.Mean())
	}
	if len(a.PerClient) != 2 || a.PerClient[0].Count() != 2 {
		t.Fatal("per-client breakdown wrong")
	}
	if a.PerHour[0].Count() != 2 || a.PerHour[1].Count() != 1 {
		t.Fatal("per-hour breakdown wrong")
	}
	if a.RequestBytes != 100 || a.ReplyBytes != 400 {
		t.Fatal("wire accounting wrong")
	}
	var report bytes.Buffer
	a.WriteReport(&report)
	if !strings.Contains(report.String(), "per client") {
		t.Fatal("report missing sections")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.HitRatio() != 0 || a.ErrorRate() != 0 || a.Queries != 0 {
		t.Fatal("empty analysis not zero")
	}
}
