package metrics

import (
	"math"
	"testing"
)

func TestClientBasics(t *testing.T) {
	var c Client
	c.RecordAccess(10, true)
	c.RecordAccess(11, true)
	c.RecordAccess(12, false)
	if hr := c.HitRatio(); math.Abs(hr-2.0/3) > 1e-12 {
		t.Fatalf("HitRatio = %v", hr)
	}
	if c.Accesses() != 3 {
		t.Fatalf("Accesses = %d", c.Accesses())
	}
	c.RecordError(10, false)
	c.RecordError(11, true)
	if er := c.ErrorRate(); er != 0.5 {
		t.Fatalf("ErrorRate = %v", er)
	}
	if c.Errors() != 1 {
		t.Fatalf("Errors = %d", c.Errors())
	}
}

func TestClientQueries(t *testing.T) {
	var c Client
	c.RecordQuery(0, 2, true, false)
	c.RecordQuery(10, 11, false, true)
	if mr := c.MeanResponse(); math.Abs(mr-1.5) > 1e-12 {
		t.Fatalf("MeanResponse = %v", mr)
	}
	issued, local, remote, disc := c.Queries()
	if issued != 2 || local != 1 || remote != 1 || disc != 1 {
		t.Fatalf("Queries = %d,%d,%d,%d", issued, local, remote, disc)
	}
	if c.ResponseSummary().Count() != 2 {
		t.Fatal("summary not populated")
	}
}

func TestWarmupDiscards(t *testing.T) {
	c := Client{Warmup: 100}
	c.RecordAccess(50, true)
	c.RecordError(50, true)
	c.RecordQuery(50, 60, true, false)
	c.RecordUnavailable(50)
	if c.Accesses() != 0 || c.Errors() != 0 || c.Unavailable() != 0 {
		t.Fatal("pre-warmup observations recorded")
	}
	issued, _, _, _ := c.Queries()
	if issued != 0 {
		t.Fatal("pre-warmup query recorded")
	}
	c.RecordAccess(100, true)
	if c.Accesses() != 1 {
		t.Fatal("post-warmup observation dropped")
	}
	// A query issued pre-warmup but completing after is discarded too.
	c.RecordQuery(99, 200, true, false)
	issued, _, _, _ = c.Queries()
	if issued != 0 {
		t.Fatal("straddling query recorded")
	}
}

func TestUnavailable(t *testing.T) {
	var c Client
	c.RecordUnavailable(1)
	c.RecordUnavailable(2)
	if c.Unavailable() != 2 {
		t.Fatalf("Unavailable = %d", c.Unavailable())
	}
}

func TestAggregateMerge(t *testing.T) {
	var a Aggregate
	var c1, c2 Client
	c1.RecordAccess(0, true)
	c1.RecordAccess(0, true)
	c1.RecordError(0, false)
	c1.RecordError(0, false)
	c1.RecordQuery(0, 1, true, false)
	c2.RecordAccess(0, false)
	c2.RecordAccess(0, false)
	c2.RecordError(0, true)
	c2.RecordError(0, true)
	c2.RecordQuery(0, 3, false, false)
	c2.RecordUnavailable(0)
	a.Merge(&c1)
	a.Merge(&c2)
	if hr := a.HitRatio(); hr != 0.5 {
		t.Fatalf("aggregate HitRatio = %v", hr)
	}
	if er := a.ErrorRate(); er != 0.5 {
		t.Fatalf("aggregate ErrorRate = %v", er)
	}
	if mr := a.MeanResponse(); mr != 2 {
		t.Fatalf("aggregate MeanResponse = %v", mr)
	}
	if a.Issued != 2 || a.Local != 1 || a.Remote != 1 || a.Unavail != 1 {
		t.Fatalf("aggregate counters wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEmptyAggregates(t *testing.T) {
	var a Aggregate
	if a.HitRatio() != 0 || a.ErrorRate() != 0 || a.MeanResponse() != 0 {
		t.Fatal("empty aggregate not zero")
	}
	var c Client
	if c.HitRatio() != 0 || c.ErrorRate() != 0 || c.MeanResponse() != 0 {
		t.Fatal("empty client not zero")
	}
}

func TestHourlyResponseBuckets(t *testing.T) {
	var c Client
	c.RecordQuery(0, 2, true, false)          // hour 0, rt 2
	c.RecordQuery(3600, 3604, true, false)    // hour 1, rt 4
	c.RecordQuery(90000, 90001, false, false) // next day 01:00, rt 1
	mean, count := c.HourlyResponse()
	if count[0] != 1 || mean[0] != 2 {
		t.Fatalf("hour 0: mean=%v count=%d", mean[0], count[0])
	}
	if count[1] != 2 || mean[1] != 2.5 {
		t.Fatalf("hour 1: mean=%v count=%d (day wrap)", mean[1], count[1])
	}
	for h := 2; h < 24; h++ {
		if count[h] != 0 {
			t.Fatalf("hour %d unexpectedly populated", h)
		}
	}
}

func TestAggregateHourly(t *testing.T) {
	var a Aggregate
	var c1, c2 Client
	c1.RecordQuery(0, 10, true, false)
	c2.RecordQuery(100, 120, true, false)
	a.Merge(&c1)
	a.Merge(&c2)
	mean, count := a.HourlyResponse()
	if count[0] != 2 || mean[0] != 15 {
		t.Fatalf("aggregate hour 0: mean=%v count=%d", mean[0], count[0])
	}
}
