// Command mcload replays simulator workloads against a live mccached over
// real sockets — the load-generator half of the live serving twin
// (docs/SERVING.md). It derives the exact per-client query streams the
// simulator would run (same seeds, same heat distributions, same arrival
// schedules), paces them under time compression, and measures live
// hit/stale/error ratios that can be diffed against the simulated tables.
//
// Replay two simulated days at 600x compression (about 4.8 real minutes):
//
//	mcload -url http://127.0.0.1:7070 -days 2 -clients 10 -update 0.1
//
// A quick smoke replay, with a report directory and an in-process
// simulator run of the identical config for comparison:
//
//	mcload -url http://127.0.0.1:7070 -quick -compare -report out/
//
// The report directory receives the same manifest.json / report.md pair
// mcsim writes (flagged "live" in the manifest); -compare appends a
// sim-vs-live diff table to stdout. The service must have been booted with
// the same -seed, -objects, -granularity, -policy, -beta and -lease values
// (see docs/SERVING.md for the validation workflow).
//
// An optional leading "load" subcommand is accepted (mcload load -url ...),
// mirroring mcsim's subcommand surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/workload"
)

// loadOpts binds the load-generator flags. The workload surface mirrors
// mcsim run so a config can be stated identically on both sides of a diff.
type loadOpts struct {
	url     string
	speedup float64
	quick   bool

	days    float64
	warmup  float64
	seed    uint64
	clients int
	objects int

	granularity string
	policy      string
	kind        string
	heat        string
	arrival     string
	update      float64
	beta        float64
	lease       float64

	compare   bool
	reportDir string
	sample    float64
}

// register declares the flags on fs.
func (o *loadOpts) register(fs *flag.FlagSet) {
	fs.StringVar(&o.url, "url", "http://127.0.0.1:7070", "base URL of the running mccached")
	fs.Float64Var(&o.speedup, "speedup", serve.DefaultSpeedup, "time compression: virtual seconds per real second")
	fs.BoolVar(&o.quick, "quick", false, "short smoke replay (0.06 days, 4 clients, ~4s of wall time)")

	fs.Float64Var(&o.days, "days", 0, "virtual days to replay (0 = default 4)")
	fs.Float64Var(&o.warmup, "warmup", 0, "virtual days of warm-up excluded from ratios")
	fs.Uint64Var(&o.seed, "seed", 1, "root random seed (must match the service's -seed)")
	fs.IntVar(&o.clients, "clients", 0, "number of replayed clients (0 = default 10)")
	fs.IntVar(&o.objects, "objects", 0, "database objects (0 = default 2000; must match the service)")

	fs.StringVar(&o.granularity, "granularity", "ac", "caching granularity: ac|oc (must match the service)")
	fs.StringVar(&o.policy, "policy", "ewma-0.5", "replacement policy (for -compare and the report)")
	fs.StringVar(&o.kind, "kind", "AQ", "query kind: AQ|NQ")
	fs.StringVar(&o.heat, "heat", "sh", "heat pattern: sh|csh|cyclic")
	fs.StringVar(&o.arrival, "arrival", "poisson", "arrival pattern: poisson|bursty")
	fs.Float64Var(&o.update, "update", 0.1, "update probability U")
	fs.Float64Var(&o.beta, "beta", 0, "coherence staleness tolerance beta (for -compare)")
	fs.Float64Var(&o.lease, "lease", 0, "fixed lease in seconds (selects fixed-lease coherence, like the service's -lease)")

	fs.BoolVar(&o.compare, "compare", false, "also run the simulator in-process and print a sim-vs-live diff")
	fs.StringVar(&o.reportDir, "report", "", "write manifest.json and report.md into this directory")
	fs.Float64Var(&o.sample, "sample", 0, "sample live gauges every this many virtual seconds (0 = auto with -report)")
}

// config assembles the experiment.Config the flags describe.
func (o *loadOpts) config() (experiment.Config, error) {
	cfg := experiment.Config{
		Seed:       o.seed,
		Days:       o.days,
		WarmupDays: o.warmup,
		NumClients: o.clients,
		NumObjects: o.objects,
		Policy:     o.policy,
		UpdateProb: o.update,
		Beta:       o.beta,
		FixedLease: o.lease,
	}
	if o.quick {
		if cfg.Days == 0 {
			cfg.Days = 0.06
		}
		if cfg.WarmupDays == 0 {
			cfg.WarmupDays = 0.01
		}
		if cfg.NumClients == 0 {
			cfg.NumClients = 4
		}
		if cfg.NumObjects == 0 {
			cfg.NumObjects = 400
		}
	}
	g, err := core.ParseGranularity(o.granularity)
	if err != nil {
		return cfg, err
	}
	cfg.Granularity = g
	switch strings.ToUpper(o.kind) {
	case "AQ":
		cfg.QueryKind = workload.Associative
	case "NQ":
		cfg.QueryKind = workload.Navigational
	default:
		return cfg, fmt.Errorf("unknown query kind %q (want AQ|NQ)", o.kind)
	}
	switch o.heat {
	case "sh":
		cfg.Heat = experiment.SkewedHeat
	case "csh":
		cfg.Heat = experiment.ChangingSkewedHeat
	case "cyclic":
		cfg.Heat = experiment.CyclicHeat
	default:
		return cfg, fmt.Errorf("unknown heat %q (want sh|csh|cyclic)", o.heat)
	}
	switch o.arrival {
	case "poisson":
		cfg.Arrival = experiment.PoissonArrival
	case "bursty":
		cfg.Arrival = experiment.BurstyArrival
	default:
		return cfg, fmt.Errorf("unknown arrival %q (want poisson|bursty)", o.arrival)
	}
	if o.lease > 0 {
		cfg.Coherence = coherence.FixedLeaseStrategy
	}
	return cfg, nil
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "load" {
		args = args[1:]
	}
	os.Exit(run(args))
}

// run is main minus os.Exit, so tests can drive the flag surface.
func run(args []string) int {
	var o loadOpts
	fs := flag.NewFlagSet("mcload", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcload [load] [flags]")
		fs.PrintDefaults()
	}
	o.register(fs)
	fs.Parse(args)

	cfg, err := o.config()
	if err != nil {
		return fail(err)
	}
	cfg = experiment.Defaults(cfg)

	var reg *obs.Registry
	if o.sample > 0 {
		reg = obs.New(o.sample)
	} else if o.reportDir != "" {
		reg = obs.New(0) // Attach derives an interval from the horizon
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "mcload: replaying %s days x %d clients against %s at %gx\n",
		fnum(cfg.Days), cfg.NumClients, o.url, o.speedup)
	live, err := serve.Replay(ctx, serve.ReplayConfig{
		BaseURL: o.url,
		Config:  cfg,
		Speedup: o.speedup,
		Reg:     reg,
	})
	if err != nil {
		return fail(err)
	}
	printLive(live)

	if o.compare {
		sim := experiment.Run(cfg)
		printDiff(sim, live)
	}

	if o.reportDir != "" {
		m := report.NewManifest("live", command(o), cfg, nil, reg)
		m.Live = true
		m.WallSeconds = live.WallSeconds
		if err := report.Write(o.reportDir, report.Input{
			Manifest: m,
			Result:   live.Result(),
			Reg:      reg,
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "mcload: report written to %s\n", o.reportDir)
	}
	return 0
}

// command reconstructs a reproduce command for the manifest.
func command(o loadOpts) string {
	var b strings.Builder
	b.WriteString("mcload -url " + o.url)
	fmt.Fprintf(&b, " -seed %d -speedup %g", o.seed, o.speedup)
	if o.quick {
		b.WriteString(" -quick")
	}
	if o.days > 0 {
		fmt.Fprintf(&b, " -days %g", o.days)
	}
	if o.clients > 0 {
		fmt.Fprintf(&b, " -clients %d", o.clients)
	}
	fmt.Fprintf(&b, " -granularity %s -update %g", o.granularity, o.update)
	return b.String()
}

// printLive renders the replay measurements like mcsim's printResult.
func printLive(lr serve.LiveResult) {
	fmt.Printf("live replay    %s days at %gx (%.1fs wall, max lag %.1f virtual s)\n",
		fnum(lr.Config.Days), lr.Speedup, lr.WallSeconds, lr.MaxLagVirtual)
	fmt.Printf("hit ratio      %6.2f%%\n", 100*lr.HitRatio)
	fmt.Printf("stale rate     %6.2f%%\n", 100*lr.StaleRate)
	fmt.Printf("error rate     %6.2f%%\n", 100*lr.ErrorRate)
	fmt.Printf("mean RT        %.4fs wall per query\n", lr.MeanRT)
	fmt.Printf("queries        %d (local %d, remote %d)\n", lr.Queries, lr.QueriesLocal, lr.QueriesRemote)
	fmt.Printf("reads          %d (%d hits, %d stale, %d errors)\n", lr.Reads, lr.Hits, lr.Stales, lr.Errors)
	fmt.Printf("updates        %d events over %d HTTP calls\n", lr.Writes, lr.HTTPCalls)
	if lr.Backend != "" {
		fmt.Printf("backend        %s (%s", lr.Backend, lr.BackendDSN)
		if lr.DiskBytes > 0 {
			fmt.Printf(", %d bytes on disk", lr.DiskBytes)
		}
		fmt.Printf(")\n")
	}
}

// printDiff renders the sim-vs-live comparison table.
func printDiff(sim experiment.Result, live serve.LiveResult) {
	fmt.Printf("\nsim vs live (same seed, same workload draws)\n")
	fmt.Printf("%-14s %10s %10s %10s\n", "metric", "simulated", "live", "diff")
	row := func(name string, s, l float64) {
		fmt.Printf("%-14s %10.4f %10.4f %+10.4f\n", name, s, l, l-s)
	}
	row("hit ratio", sim.HitRatio, live.HitRatio)
	row("error rate", sim.ErrorRate, live.ErrorRate)
	fmt.Printf("%-14s %10d %10d %+10d\n", "queries", sim.QueriesIssued, live.Queries,
		int64(live.Queries)-int64(sim.QueriesIssued))
	fmt.Printf("%-14s %10.4f %10.4f      (n/a)\n", "mean RT s", sim.MeanResponse, live.MeanRT)
	fmt.Printf("note: simulated RT is channel-bound virtual time; live RT is wall-clock HTTP time.\n")
}

func fnum(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "mcload:", err)
	return 1
}
