// Coherence: the three strategies side by side — the paper's adaptive
// per-item leases (§3.2), the original fixed-duration Leases scheme [7],
// and the broadcast invalidation reports [2] that §2 argues cannot survive
// disconnection.
//
// The run sweeps the fixed lease length to show §2's point that no single
// duration works ("it is difficult to determine an appropriate refresh
// duration"), then disconnects some clients to show the invalidation
// reports' failure mode (cache drops after missed reports).
//
//	go run ./examples/coherence
package main

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	base := experiment.Config{
		Seed:        21,
		Days:        1,
		Granularity: core.HybridCaching,
		Policy:      "ewma-0.5",
		QueryKind:   workload.Associative,
		Heat:        experiment.SkewedHeat,
		UpdateProb:  0.3, // write-heavy enough for coherence to matter
	}

	fmt.Println("== picking a lease duration (all clients connected, U=0.3) ==")
	fmt.Printf("%-16s  %8s  %8s\n", "strategy", "hit %", "err %")
	show := func(name string, cfg experiment.Config) experiment.Result {
		res := experiment.Run(cfg)
		fmt.Printf("%-16s  %8.1f  %8.2f\n", name, 100*res.HitRatio, 100*res.ErrorRate)
		return res
	}
	adaptive := base
	show("adaptive RT", adaptive)
	for _, lease := range []float64{60, 600, 6000} {
		cfg := base
		cfg.Coherence = coherence.FixedLeaseStrategy
		cfg.FixedLease = lease
		show(fmt.Sprintf("fixed %gs", lease), cfg)
	}
	fmt.Println("\nshort fixed leases kill the hit ratio; long ones leak errors.")
	fmt.Println("the adaptive estimate tracks each item's own write rate.")

	fmt.Println("\n== disconnection (4 of 10 clients offline 6h/day) ==")
	fmt.Printf("%-20s  %8s  %8s  %12s\n", "strategy", "hit %", "err %", "cache drops")
	for _, c := range []struct {
		name  string
		strat coherence.Strategy
	}{
		{"adaptive leases", coherence.LeaseStrategy},
		{"invalidation rpts", coherence.InvalidationReportStrategy},
	} {
		cfg := base
		cfg.Coherence = c.strat
		cfg.DisconnectedClients = 4
		cfg.DisconnectHours = 6
		res := experiment.Run(cfg)
		fmt.Printf("%-20s  %8.1f  %8.2f  %12d\n",
			c.name, 100*res.HitRatio, 100*res.ErrorRate, res.CacheDrops)
	}
	fmt.Println("\na client that misses reports cannot trust anything it cached —")
	fmt.Println("leases need no channel at all, which is why the paper pulls.")
}
