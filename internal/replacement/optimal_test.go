package replacement

import (
	"testing"
	"testing/quick"

	"repro/internal/oodb"
	"repro/internal/rng"
)

func seqOf(ids ...int) []oodb.Item {
	out := make([]oodb.Item, len(ids))
	for i, id := range ids {
		out[i] = obj(id)
	}
	return out
}

func TestOptimalKnownSequence(t *testing.T) {
	// Classic textbook example: 1 2 3 4 1 2 5 1 2 3 4 5 with capacity 3
	// gives 7 misses (5 hits) under Belady's MIN.
	seq := seqOf(1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5)
	hits, misses := OptimalHits(seq, 3)
	if hits != 5 || misses != 7 {
		t.Fatalf("hits/misses = %d/%d, want 5/7", hits, misses)
	}
}

func TestOptimalAllFit(t *testing.T) {
	seq := seqOf(1, 2, 3, 1, 2, 3, 1, 2, 3)
	hits, misses := OptimalHits(seq, 3)
	if misses != 3 || hits != 6 {
		t.Fatalf("hits/misses = %d/%d (only cold misses expected)", hits, misses)
	}
}

func TestOptimalLoopBeatsLRUHorizon(t *testing.T) {
	// A loop of 4 items with capacity 3: LRU gets zero hits, MIN keeps a
	// stable subset and hits on it.
	var seq []oodb.Item
	for rev := 0; rev < 20; rev++ {
		for i := 0; i < 4; i++ {
			seq = append(seq, obj(i))
		}
	}
	optHits, _ := OptimalHits(seq, 3)
	lruHits, _ := ReplayHits(NewLRU(), seq, 3)
	if lruHits != 0 {
		t.Fatalf("LRU on a loop of capacity+1 items got %d hits", lruHits)
	}
	if optHits == 0 {
		t.Fatal("MIN got no hits on a loop")
	}
	// MRU shines on loops — it should land between LRU and MIN.
	mruHits, _ := ReplayHits(NewMRU(), seq, 3)
	if mruHits <= lruHits {
		t.Fatalf("MRU (%d) not above LRU (%d) on a loop", mruHits, lruHits)
	}
	if mruHits > optHits {
		t.Fatalf("MRU (%d) beat the clairvoyant bound (%d)", mruHits, optHits)
	}
}

func TestOptimalHitRatio(t *testing.T) {
	if r := OptimalHitRatio(nil, 3); r != 0 {
		t.Fatalf("empty ratio %v", r)
	}
	seq := seqOf(1, 1, 1, 1)
	if r := OptimalHitRatio(seq, 1); r != 0.75 {
		t.Fatalf("ratio %v, want 0.75", r)
	}
}

func TestOptimalValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("OptimalHits capacity 0 did not panic")
			}
		}()
		OptimalHits(seqOf(1), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ReplayHits capacity 0 did not panic")
			}
		}()
		ReplayHits(NewLRU(), seqOf(1), 0)
	}()
}

// Property: no online policy ever beats Belady's MIN, and hit+miss counts
// always sum to the sequence length.
func TestQuickOptimalDominates(t *testing.T) {
	factories := []Factory{
		NewLRUFactory(), NewLRUKFactory(2), NewMeanFactory(),
		NewEWMAFactory(0.5), NewFIFOFactory(), NewMRUFactory(),
		NewLRDFactory(1000), NewWindowFactory(4),
	}
	f := func(seed uint64, capRaw, lenRaw uint8) bool {
		capacity := int(capRaw)%6 + 1
		length := int(lenRaw)%120 + 10
		r := rng.New(seed)
		seq := make([]oodb.Item, length)
		for i := range seq {
			seq[i] = obj(r.Intn(12))
		}
		optHits, optMisses := OptimalHits(seq, capacity)
		if optHits+optMisses != length {
			return false
		}
		for _, factory := range factories {
			hits, misses := ReplayHits(factory(), seq, capacity)
			if hits+misses != length {
				return false
			}
			if hits > optHits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimal(b *testing.B) {
	r := rng.New(1)
	seq := make([]oodb.Item, 100000)
	for i := range seq {
		seq[i] = obj(r.Intn(2000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalHits(seq, 400)
	}
}
