package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/coherence"
)

// fleetCfg is the smallest config that exercises cross-cell relaying.
func fleetCfg() Config {
	cfg := smallCfg()
	cfg.NumClients = 8
	cfg.Cells = 4
	return cfg
}

// TestFleetOneCellMatchesRun pins the shard-count invariance floor: a
// 1-cell fleet is not merely similar to the single-server system, it IS
// the single-server system, byte for byte.
func TestFleetOneCellMatchesRun(t *testing.T) {
	cfg := smallCfg()
	want := Run(cfg)
	cfg.Cells = 1
	got := RunFleet(cfg)
	want.Config, got.Config = Config{}, Config{}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("1-cell fleet diverged from Run:\n%+v\nvs\n%+v", got, want)
	}
}

func TestFleetRunShape(t *testing.T) {
	res := RunFleet(fleetCfg())
	if res.QueriesIssued == 0 || res.Events == 0 {
		t.Fatalf("fleet produced no work: %+v", res)
	}
	if len(res.PerClient) != 8 {
		t.Fatalf("per-client rows %d, want 8", len(res.PerClient))
	}
	if res.BackboneBytes == 0 || res.BackboneMessages == 0 {
		t.Fatal("4 cells over a partitioned database must exchange backbone traffic")
	}
	if res.Server.QueriesServed == 0 || res.Server.BufferHitRatio < 0 ||
		res.Server.BufferHitRatio > 1 {
		t.Fatalf("merged server stats malformed: %+v", res.Server)
	}
}

// TestFleetParallelInvariance is the tentpole determinism guarantee:
// identical Results (and identical Exp8 tables) with 1 worker and with 8.
func TestFleetParallelInvariance(t *testing.T) {
	cfg := fleetCfg()
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	serial := RunFleet(cfg)

	SetDefaultWorkers(8)
	parallel := RunFleet(cfg)

	serial.Config, parallel.Config = Config{}, Config{}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("fleet results differ between workers=1 and workers=8")
	}

	base := Config{Seed: 2, NumObjects: 400, Days: 0.02}
	SetDefaultWorkers(1)
	s := exp8(base, []int{4, 8}, []int{1, 2}, false)
	SetDefaultWorkers(8)
	p := exp8(base, []int{4, 8}, []int{1, 2}, false)
	if s.String() != p.String() {
		t.Fatalf("Exp8 tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := RunFleet(fleetCfg())
	b := RunFleet(fleetCfg())
	a.Config, b.Config = Config{}, Config{}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fleet config produced different results")
	}
}

// TestFleetRelayCacheCutsBackbone: enabling the contact servers' relay
// cache must not change what the clients asked for, and it must strictly
// reduce backbone traffic under repeated remote reads.
func TestFleetRelayCacheCutsBackbone(t *testing.T) {
	cfg := fleetCfg()
	off := RunFleet(cfg)
	cfg.RelayObjects = 100
	on := RunFleet(cfg)
	if on.RelayHits == 0 {
		t.Fatal("relay cache saw no hits")
	}
	if on.BackboneBytes >= off.BackboneBytes {
		t.Fatalf("relay cache did not cut backbone bytes: %d -> %d",
			off.BackboneBytes, on.BackboneBytes)
	}
	if off.RelayHits != 0 || off.RelayMisses != 0 {
		t.Fatalf("relay counters nonzero with relaying disabled: %+v", off)
	}
}

func TestFleetValidationPanics(t *testing.T) {
	mustPanic := func(name, fragment string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, fragment) {
					t.Fatalf("panic %v lacks %q", r, fragment)
				}
			}()
			RunFleet(cfg)
		})
	}
	ir := fleetCfg()
	ir.Coherence = coherence.InvalidationReportStrategy
	mustPanic("invalidation reports", "not supported", ir)

	tiny := fleetCfg()
	tiny.NumClients = 2
	mustPanic("more cells than clients", "cannot populate", tiny)
}
