// ATIS: the paper's motivating Advanced Traveler Information System (§3.1)
// — tourists on wireless portables querying accommodation data — built
// directly against the library's lower-level API (kernel, server, channels,
// clients) rather than the experiment harness, to show how the pieces
// compose.
//
// A group of tourists repeatedly queries "places to stay with vacancies";
// hotels update their vacancy attribute as rooms are booked. The example
// compares the three caching granularities on that workload.
//
//	go run ./examples/atis
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	numHotels   = 1200 // Places-to-Stay objects at the server
	numTourists = 6
	simDays     = 1.0
	bookingProb = 0.25 // vacancy updates are frequent in high season
)

func main() {
	fmt.Printf("ATIS: %d tourists querying %d hotels over shared 19.2 Kbps channels\n",
		numTourists, numHotels)
	fmt.Printf("vacancy update probability %.2f, %g simulated day(s)\n\n",
		bookingProb, simDays)

	fmt.Printf("%-12s  %8s  %10s  %8s  %12s\n",
		"granularity", "hit %", "resp (s)", "err %", "bytes down")
	for _, g := range []core.Granularity{
		core.NoCache, core.AttributeCaching, core.ObjectCaching, core.HybridCaching,
	} {
		hit, resp, errRate, bytes := runATIS(g)
		fmt.Printf("%-12s  %8.1f  %10.3f  %8.2f  %12d\n",
			g, 100*hit, resp, 100*errRate, bytes)
	}
	fmt.Println("\nHybrid caching keeps the hit ratio of object caching at the")
	fmt.Println("response time of attribute caching — Figure 2 of the paper.")
}

// runATIS assembles one simulation by hand and returns its headline
// numbers plus downlink traffic.
func runATIS(g core.Granularity) (hit, resp, errRate float64, downBytes uint64) {
	const seed = 7
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: numHotels, RelSeed: seed})
	srv := server.New(server.Config{
		Kernel:     k,
		DB:         db,
		UpdateProb: bookingProb,
		Seed:       seed,
	})
	up := network.NewChannel(k, "uplink", network.WirelessBandwidthBps)
	down := network.NewChannel(k, "downlink", network.WirelessBandwidthBps)

	horizon := simDays * workload.SecondsPerDay
	clientMetrics := make([]*metrics.Client, numTourists)
	for i := 0; i < numTourists; i++ {
		// Each tourist has their own neighbourhood of favourite hotels
		// (per-client skewed heat) and queries name/city/vacancy-style
		// attribute subsets of the qualifying hotels.
		heat := workload.NewSkewedHeat(numHotels, rng.Derive(seed, uint64(i)).Uint64())
		gen := workload.NewQueryGen(workload.QueryGenConfig{
			Kind:        workload.Associative,
			Heat:        heat,
			DB:          db,
			Selectivity: 12, // hotels matching "vacancy > 0" per query
			AttrsPerObj: 3,  // name, city, vacancy
		})
		m := &metrics.Client{}
		clientMetrics[i] = m

		var pol replacement.Policy
		if g != core.NoCache {
			pol = replacement.NewEWMA(replacement.DefaultEWMAAlpha)
		}
		tourist := client.New(client.Config{
			ID:          i,
			Kernel:      k,
			Server:      srv,
			Up:          up,
			Down:        down,
			Granularity: g,
			Policy:      pol,
			// A portable's storage cache: room for 15% of the database.
			StorageBytes: numHotels * core.ItemCost(oodb.ObjectItem(0)) * 15 / 100,
			Gen:          gen,
			Arrival:      workload.NewPoisson(0.02), // eager tourists
			Metrics:      m,
			Seed:         rng.Derive(seed, 100+uint64(i)).Uint64(),
			Horizon:      horizon,
		})
		tourist.Start()
	}

	k.RunAll()
	k.Drain()

	var agg metrics.Aggregate
	for _, m := range clientMetrics {
		agg.Merge(m)
	}
	return agg.HitRatio(), agg.MeanResponse(), agg.ErrorRate(), down.BytesSent()
}
