package replacement_test

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/replacement"
)

// The EWMA scheme (the paper's recommendation) adapts to a hot-set change:
// an item that stops being accessed ages out even though its historical
// score was hot.
func Example() {
	p := replacement.NewEWMA(0.5)

	hot := oodb.ObjectItem(1)
	newcomer := oodb.ObjectItem(2)

	// `hot` is accessed every 10s for a while...
	p.OnInsert(hot, 0)
	for t := 10.0; t <= 100; t += 10 {
		p.OnAccess(hot, t)
	}
	// ...then the workload shifts to `newcomer`.
	p.OnInsert(newcomer, 110)
	for t := 120.0; t <= 200; t += 10 {
		p.OnAccess(newcomer, t)
	}

	victim, _ := p.Victim(210)
	fmt.Println("evict:", victim)
	// Output:
	// evict: obj(1)
}

// Parse builds policies from the spec strings used by the CLI and the
// experiment configs.
func ExampleParse() {
	for _, spec := range []string{"lru", "lru-3", "ewma-0.5", "win-10"} {
		factory, err := replacement.Parse(spec)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(factory().Name())
	}
	// Output:
	// lru
	// lru-3
	// ewma-0.5
	// win-10
}
