package workload_test

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Generate a client's query stream: skewed heat over the database, three
// attributes per selected object, Poisson arrivals.
func Example() {
	db := oodb.New(oodb.Config{NumObjects: 500, RelSeed: 1})
	gen := workload.NewQueryGen(workload.QueryGenConfig{
		Kind:        workload.Associative,
		Heat:        workload.NewSkewedHeat(500, 7),
		DB:          db,
		Selectivity: 4,
	})
	arrival := workload.NewPoisson(0.01)
	r := rng.New(9)

	now := 0.0
	for i := 0; i < 2; i++ {
		now = arrival.Next(r, now)
		q := gen.Next(r)
		fmt.Printf("query %d: %d objects, %d attribute reads\n",
			q.Index, len(q.Objects), len(q.Reads))
	}
	// Output:
	// query 0: 4 objects, 12 attribute reads
	// query 1: 4 objects, 12 attribute reads
}

// The Bursty arrival pattern averages the Poisson rate over a day but
// concentrates 80% of it in the two commute windows.
func ExampleNewDefaultBursty() {
	fmt.Printf("mean daily rate: %.3g/s\n",
		workload.MeanDailyRate(workload.DefaultBurstySegments()))
	// Output:
	// mean daily rate: 0.01/s
}
