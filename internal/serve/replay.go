// replay.go is the load-generator engine behind cmd/mcload: it replays an
// experiment.Scenario workload — the exact per-client RNG substreams,
// hot/cold heat distributions, and arrival schedules the simulator would
// run — over real sockets against a live mccached, under time compression,
// and measures the same hit/stale/error ratios the simulator reports. The
// request flow per query mirrors the simulated client: probe every read,
// apply the update model only if the query goes remote, then fetch the
// needed items fresh (docs/SERVING.md walks through the correspondence).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DefaultSpeedup is the default time-compression factor: virtual seconds
// replayed per real second. Lease dynamics are scale-invariant under
// compression — write inter-arrivals and access gaps shrink by the same
// factor, so the valid-at-access relation is preserved — as long as HTTP
// round trips stay well under the compressed arrival gaps.
const DefaultSpeedup = 600

// ValidateLive reports whether cfg describes a workload the live layer can
// replay faithfully: a single always-connected cell on perfect channels,
// lease (or fixed-lease) coherence, and a durable cache granularity.
// Everything else — broadcast schemes, cooperative caching, disconnection,
// channel faults — needs simulator machinery with no live counterpart yet.
func ValidateLive(cfg experiment.Config) error {
	switch cfg.Granularity {
	case core.AttributeCaching, core.ObjectCaching:
	default:
		return fmt.Errorf("%w: live replay supports granularity ac|oc", ErrUnsupported)
	}
	switch cfg.Coherence {
	case coherence.LeaseStrategy, coherence.FixedLeaseStrategy:
	default:
		return fmt.Errorf("%w: live replay supports -coherence lease|fixed", ErrUnsupported)
	}
	if cfg.Cells > 1 {
		return fmt.Errorf("%w: live replay is single-cell", ErrUnsupported)
	}
	if cfg.DisconnectedClients > 0 {
		return fmt.Errorf("%w: live replay has no disconnection windows", ErrUnsupported)
	}
	if cfg.LossRate != 0 || cfg.CorruptRate != 0 || cfg.BurstFraction != 0 {
		return fmt.Errorf("%w: live replay runs on real sockets, not the fault models", ErrUnsupported)
	}
	if cfg.CoopPeers > 0 || cfg.BroadcastAttrs > 0 || cfg.ShedThreshold > 0 {
		return fmt.Errorf("%w: cooperative/broadcast/shedding have no live counterpart", ErrUnsupported)
	}
	return nil
}

// StoreConfig maps a (defaulted) simulation config onto the live store: the
// same granularity, policy, cache budgets, lease parameters, and — through
// experiment.NewDatabase — the same relationship topology, so a service
// booted from the same seed agrees with every replayed client on where
// navigational queries lead.
func StoreConfig(cfg experiment.Config) (Config, error) {
	cfg = experiment.Defaults(cfg)
	if err := ValidateLive(cfg); err != nil {
		return Config{}, err
	}
	sc := Config{
		Granularity:      cfg.Granularity,
		Policy:           cfg.Policy,
		NumObjects:       cfg.NumObjects,
		StorageObjects:   cfg.StorageObjects,
		MemBufferObjects: cfg.MemBufferObjects,
		Beta:             cfg.Beta,
		DB:               experiment.NewDatabase(cfg),
	}
	if cfg.Coherence == coherence.FixedLeaseStrategy {
		sc.FixedLease = cfg.FixedLease
		if sc.FixedLease == 0 {
			sc.FixedLease = coherence.DefaultFixedLease
		}
	}
	return sc, nil
}

// ReplayConfig parameterizes one live replay.
type ReplayConfig struct {
	// BaseURL is the running mccached, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Config is the scenario to replay (defaulted internally; must pass
	// ValidateLive).
	Config experiment.Config
	// Speedup is the time-compression factor in virtual seconds per real
	// second (DefaultSpeedup when zero).
	Speedup float64
	// HTTPClient overrides the transport (tests); nil builds one with
	// per-client keep-alive connections.
	HTTPClient *http.Client
	// Reg, when enabled, samples live clients.hit_ratio /
	// clients.error_rate series on the compressed virtual timeline, so
	// report charts align with the simulator's.
	Reg *obs.Registry
}

// LiveResult carries the measurements of one replay. Ratios are computed
// after the warm-up cutoff, like the simulator's Result.
type LiveResult struct {
	// Config is the defaulted scenario that was replayed.
	Config experiment.Config
	// Speedup echoes the compression factor used.
	Speedup float64
	// WallSeconds is the real time the replay took.
	WallSeconds float64

	// HitRatio / StaleRate / ErrorRate are post-warmup read ratios; the
	// stale rate counts probes that found an expired resident copy (all
	// refetched — the live layer is always connected).
	HitRatio  float64
	StaleRate float64
	ErrorRate float64
	// MeanRT is the mean wall-clock HTTP service time per query, in real
	// seconds (probe + write + fetch round trips; excludes pacing waits).
	// Not comparable in magnitude to the simulator's channel-bound
	// response times — see docs/SERVING.md.
	MeanRT float64

	// Queries / QueriesLocal / QueriesRemote count post-warmup queries and
	// whether they needed the origin.
	Queries       uint64
	QueriesLocal  uint64
	QueriesRemote uint64
	// Reads / Hits / Stales / Errors are post-warmup read counts.
	Reads  uint64
	Hits   uint64
	Stales uint64
	Errors uint64
	// Writes counts update events applied (post-warmup).
	Writes uint64
	// HTTPCalls counts requests issued (whole run, warm-up included).
	HTTPCalls uint64
	// MaxLagVirtual is the worst scheduling lag in virtual seconds: how
	// far behind its arrival schedule a client fell (HTTP latency and GC
	// both show up here). Large lags distort lease dynamics; keep the
	// speedup low enough that this stays small against arrival gaps.
	MaxLagVirtual float64

	// Backend / BackendDSN / DiskBytes identify the tier that served the
	// run, snapshotted from GET /v1/stats after the replay: livesmoke and
	// -compare artifacts assert against these when exercising the
	// persistent backend.
	Backend    string
	BackendDSN string
	DiskBytes  int64
}

// Result converts the live measurements into the simulator's Result shape,
// so report.Write renders the same headline tables for both sides of a
// sim-vs-live diff.
func (lr LiveResult) Result() experiment.Result {
	return experiment.Result{
		Config:        lr.Config,
		HitRatio:      lr.HitRatio,
		MeanResponse:  lr.MeanRT,
		ErrorRate:     lr.ErrorRate,
		QueriesIssued: lr.Queries,
		QueriesLocal:  lr.QueriesLocal,
		QueriesRemote: lr.QueriesRemote,
	}
}

// liveAggregate is the shared live-counter block the obs gauges read.
type liveAggregate struct {
	reads, hits, errors uint64
}

// Replay runs the workload against a live service and blocks until the
// horizon (or ctx) is reached. One goroutine per client; each paces its
// arrival schedule at Speedup and replays its queries in order.
func Replay(ctx context.Context, rc ReplayConfig) (LiveResult, error) {
	cfg := experiment.Defaults(rc.Config)
	if err := ValidateLive(cfg); err != nil {
		return LiveResult{}, err
	}
	if rc.BaseURL == "" {
		return LiveResult{}, fmt.Errorf("%w: replay needs a base URL", ErrBadRequest)
	}
	speedup := rc.Speedup
	if speedup <= 0 {
		speedup = DefaultSpeedup
	}
	httpc := rc.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.NumClients + 2,
			MaxIdleConnsPerHost: cfg.NumClients + 2,
		}}
	}

	db := experiment.NewDatabase(cfg)
	horizon := cfg.Horizon()
	warmup := cfg.WarmupDays * workload.SecondsPerDay

	var agg liveAggregate
	var httpCalls uint64
	if rc.Reg.Enabled() {
		rc.Reg.Gauge("clients.hit_ratio", func() float64 {
			reads := atomic.LoadUint64(&agg.reads)
			if reads == 0 {
				return 0
			}
			return float64(atomic.LoadUint64(&agg.hits)) / float64(reads)
		})
		rc.Reg.Gauge("clients.error_rate", func() float64 {
			reads := atomic.LoadUint64(&agg.reads)
			if reads == 0 {
				return 0
			}
			return float64(atomic.LoadUint64(&agg.errors)) / float64(reads)
		})
		rc.Reg.Gauge("clients.accesses", func() float64 {
			return float64(atomic.LoadUint64(&agg.reads))
		})
	}
	ticker := AttachWallClock(rc.Reg, speedup, horizon)
	defer ticker.Stop()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type clientOutcome struct {
		m      *metrics.Client
		rt     stats.Welford
		stales uint64
		writes uint64
		remote uint64
		local  uint64
		maxLag float64
		err    error
	}
	outcomes := make([]clientOutcome, cfg.NumClients)
	start := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < cfg.NumClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := &outcomes[id]
			out.m = &metrics.Client{Warmup: warmup}
			out.err = replayClient(ctx, replayEnv{
				cfg: cfg, db: db, id: id,
				baseURL: rc.BaseURL, httpc: httpc,
				speedup: speedup, horizon: horizon, warmup: warmup,
				start: start, agg: &agg, httpCalls: &httpCalls,
			}, out.m, &out.rt, &out.stales, &out.writes, &out.remote, &out.local, &out.maxLag)
			if out.err != nil {
				cancel() // one failing client aborts the replay
			}
		}(i)
	}
	wg.Wait()

	lr := LiveResult{Config: cfg, Speedup: speedup, WallSeconds: time.Since(start).Seconds()}
	var pooled metrics.Aggregate
	var rt stats.Welford
	for i := range outcomes {
		out := &outcomes[i]
		if out.err != nil && ctx.Err() == nil {
			return lr, out.err
		}
		if out.err != nil {
			return lr, fmt.Errorf("serve: replay client %d: %w", i, out.err)
		}
		pooled.Merge(out.m)
		rt.Merge(&out.rt)
		lr.Stales += out.stales
		lr.Writes += out.writes
		lr.QueriesRemote += out.remote
		lr.QueriesLocal += out.local
		if out.maxLag > lr.MaxLagVirtual {
			lr.MaxLagVirtual = out.maxLag
		}
	}
	lr.HitRatio = pooled.HitRatio()
	lr.ErrorRate = pooled.ErrorRate()
	lr.MeanRT = rt.Mean()
	lr.Queries = pooled.Issued
	lr.Reads = pooled.Hits.Denom
	lr.Hits = pooled.Hits.Num
	lr.Errors = pooled.Errs.Num
	lr.HTTPCalls = atomic.LoadUint64(&httpCalls)
	if lr.Reads > 0 {
		lr.StaleRate = float64(lr.Stales) / float64(lr.Reads)
	}
	// Identify the tier that served the run. Advisory: a service that
	// vanished right after the replay leaves the identity fields empty
	// rather than failing a finished measurement.
	if st, err := fetchStats(httpc, rc.BaseURL); err == nil {
		lr.Backend = st.Backend
		lr.BackendDSN = st.DSN
		lr.DiskBytes = st.DiskBytes
	}
	return lr, nil
}

// fetchStats retrieves the service's stats snapshot.
func fetchStats(httpc *http.Client, baseURL string) (Stats, error) {
	var st Stats
	resp, err := httpc.Get(baseURL + "/v1/stats")
	if err != nil {
		return st, fmt.Errorf("serve: /v1/stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("serve: /v1/stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("serve: decode /v1/stats: %w", err)
	}
	return st, nil
}

// replayEnv bundles the immutable per-client replay context.
type replayEnv struct {
	cfg       experiment.Config
	db        *oodb.Database
	id        int
	baseURL   string
	httpc     *http.Client
	speedup   float64
	horizon   float64
	warmup    float64
	start     time.Time
	agg       *liveAggregate
	httpCalls *uint64
}

// replayClient runs one client's open-loop query stream to the horizon,
// mirroring the simulated client loop: arrival draw, pacing wait, query
// draw, probe reads, update model, fetch needs.
func replayClient(ctx context.Context, env replayEnv, m *metrics.Client,
	rt *stats.Welford, stales, writes, remote, local *uint64, maxLag *float64) error {

	w := experiment.NewClientWorkload(env.cfg, env.db, env.id)
	var q workload.Query
	need := make([]workload.ReadOp, 0, 64)
	scheduled := 0.0
	for {
		scheduled = w.Arrival.Next(w.Stream, scheduled)
		if scheduled >= env.horizon {
			return nil
		}
		if err := paceUntil(ctx, env.start, scheduled/env.speedup); err != nil {
			return err
		}
		if lag := time.Since(env.start).Seconds()*env.speedup - scheduled; lag > *maxLag {
			*maxLag = lag
		}
		w.Gen.NextInto(w.Stream, &q)

		measured := scheduled >= env.warmup
		t0 := time.Now()
		need = need[:0]
		for _, rd := range q.Reads {
			var resp ReadResponse
			if err := env.post("/v1/read", ReadRequest{
				Client: env.id, OID: uint32(rd.OID), Attr: uint8(rd.Attr), Mode: "probe",
			}, &resp); err != nil {
				return err
			}
			if resp.State == core.Hit.String() {
				m.RecordAccess(scheduled, true)
				m.RecordError(scheduled, resp.Error)
				atomic.AddUint64(&env.agg.reads, 1)
				atomic.AddUint64(&env.agg.hits, 1)
				if resp.Error {
					atomic.AddUint64(&env.agg.errors, 1)
				}
				continue
			}
			if resp.State == core.Stale.String() && measured {
				*stales++
			}
			need = append(need, rd)
		}

		if len(need) > 0 {
			// The simulated server flips the update coin per distinct
			// accessed object only when a request reaches it; all
			// attributes the query read on an updated object are written
			// as one event.
			if env.cfg.UpdateProb > 0 {
				if err := env.applyUpdates(&q, w, measured, writes); err != nil {
					return err
				}
			}
			var fresh FetchResponse
			if err := env.post("/v1/fetch", fetchRequest(env.id, need), &fresh); err != nil {
				return err
			}
			for range need {
				m.RecordAccess(scheduled, false)
				m.RecordError(scheduled, false)
				atomic.AddUint64(&env.agg.reads, 1)
			}
			if measured {
				*remote++
			}
		} else if measured {
			*local++
		}

		elapsed := time.Since(t0).Seconds()
		m.RecordQuery(scheduled, scheduled+elapsed, len(need) > 0, false)
		if measured {
			rt.Add(elapsed)
		}
	}
}

// applyUpdates mirrors the simulated server's update model for one query:
// distinct accessed objects in first-seen order, a U-probability coin each,
// and one write event covering the attributes the query read on that
// object. The coin stream is the client's private update substream — same
// distribution as the simulator's shared server stream, different sequence
// (see experiment.ClientWorkload).
func (env replayEnv) applyUpdates(q *workload.Query, w experiment.ClientWorkload,
	measured bool, writes *uint64) error {

	seen := make(map[oodb.OID]struct{}, len(q.Reads))
	for _, rd := range q.Reads {
		if _, dup := seen[rd.OID]; dup {
			continue
		}
		seen[rd.OID] = struct{}{}
		if !w.UpdateStream.Bool(env.cfg.UpdateProb) {
			continue
		}
		var attrSeen uint16
		attrs := make([]uint8, 0, 4)
		for _, rd2 := range q.Reads {
			if rd2.OID != rd.OID {
				continue
			}
			bit := uint16(1) << rd2.Attr
			if attrSeen&bit != 0 {
				continue
			}
			attrSeen |= bit
			attrs = append(attrs, uint8(rd2.Attr))
		}
		var resp WriteResponse
		if err := env.post("/v1/write", WriteRequest{OID: uint32(rd.OID), Attrs: attrs}, &resp); err != nil {
			return err
		}
		if measured {
			*writes++
		}
	}
	return nil
}

// fetchRequest converts a need list to its wire form.
func fetchRequest(client int, need []workload.ReadOp) FetchRequest {
	req := FetchRequest{Client: client, Reads: make([]WireRead, len(need))}
	for i, rd := range need {
		req.Reads[i] = WireRead{OID: uint32(rd.OID), Attr: uint8(rd.Attr)}
	}
	return req
}

// post issues one JSON round trip against the service.
func (env replayEnv) post(path string, body, dst any) error {
	atomic.AddUint64(env.httpCalls, 1)
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("serve: encode %s: %w", path, err)
	}
	req, err := http.NewRequest(http.MethodPost, env.baseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("serve: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := env.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("serve: decode %s: %w", path, err)
	}
	return nil
}

// paceUntil sleeps until the replay's real-time deadline for a virtual
// timestamp, honoring ctx cancellation.
func paceUntil(ctx context.Context, start time.Time, realOffset float64) error {
	deadline := start.Add(time.Duration(realOffset * float64(time.Second)))
	wait := time.Until(deadline)
	if wait <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
