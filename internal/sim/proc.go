package sim

// errKilled is the sentinel panic value used by Kernel.Drain to unwind a
// suspended process.
type killedError struct{}

func (killedError) Error() string { return "sim: process killed" }

var errKilled = killedError{}

// Proc is a simulated process. A Proc's body runs in its own goroutine but
// the kernel guarantees only one process executes at a time, so bodies may
// freely read and write shared simulation state without locking.
type Proc struct {
	kernel  *Kernel
	name    string
	body    func(*Proc)
	seq     uint64 // spawn order; Drain kills in this order
	resume  chan struct{}
	started bool
	done    bool
	killed  bool
}

// run is the goroutine entry point: execute the body, recover a kill
// unwind, then hand control back to the kernel.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedError); !ok {
				panic(r) // real bug: propagate
			}
		}
		p.done = true
		delete(p.kernel.live, p)
		p.kernel.yield <- struct{}{}
	}()
	p.body(p)
}

// yield suspends the process until the kernel resumes it.
func (p *Proc) yield() {
	p.kernel.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.kernel }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.kernel.now }

// Hold advances virtual time by d seconds for this process, letting other
// events run meanwhile. Negative durations are treated as zero.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		d = 0
	}
	p.kernel.schedule(p.kernel.now+d, p, nil)
	p.yield()
}

// HoldUntil suspends the process until absolute virtual time t (no-op if t
// is in the past).
func (p *Proc) HoldUntil(t float64) {
	if t <= p.kernel.now {
		return
	}
	p.kernel.schedule(t, p, nil)
	p.yield()
}
