package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Arrival is a query inter-arrival process. Next returns the absolute time
// of the next query given the current time.
type Arrival interface {
	Name() string
	Next(r *rng.Stream, now float64) float64
}

// DefaultPoissonRate is the paper's mean query arrival rate per client:
// 0.01 queries/second.
const DefaultPoissonRate = 0.01

// poisson is a homogeneous Poisson arrival process.
type poisson struct {
	rate float64
}

// NewPoisson returns a Poisson process with the given rate (arrivals/sec).
func NewPoisson(rate float64) Arrival {
	if rate <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	return &poisson{rate: rate}
}

func (p *poisson) Name() string { return "poisson" }

func (p *poisson) Next(r *rng.Stream, now float64) float64 {
	return now + r.Exp(p.rate)
}

// Segment is one piece of a daily piecewise-constant rate profile.
// Hours are in [0, 24]; segments must tile the day.
type Segment struct {
	StartHour, EndHour float64
	Rate               float64 // arrivals per second during the segment
}

// bursty is a non-homogeneous Poisson process with a daily
// piecewise-constant rate profile, sampled by hazard integration (exact,
// no thinning rejection loop).
type bursty struct {
	segs []Segment
}

// SecondsPerHour and SecondsPerDay convert the paper's clock-time schedule.
const (
	SecondsPerHour = 3600.0
	SecondsPerDay  = 24 * SecondsPerHour
)

// DefaultBurstySegments is the paper's vehicle-traffic pattern: 80% of the
// day's queries cluster in a morning commute burst (07:00–10:00, rate
// 0.037) and an evening rush burst (16:00–19:00, rate 0.027); working hours
// (10:00–16:00) run at 0.005 and the remaining off hours at 0.0015. The
// daily average matches the Poisson rate of 0.01 (the text of the paper is
// garbled for the last segment; see DESIGN.md).
func DefaultBurstySegments() []Segment {
	return []Segment{
		{0, 7, 0.0015},
		{7, 10, 0.037},
		{10, 16, 0.005},
		{16, 19, 0.027},
		{19, 24, 0.0015},
	}
}

// NewBursty returns a non-homogeneous Poisson process over the given daily
// segments. Segments must be contiguous from hour 0 to hour 24 with
// positive rates.
func NewBursty(segs []Segment) Arrival {
	if len(segs) == 0 {
		panic("workload: Bursty requires segments")
	}
	expect := 0.0
	for _, s := range segs {
		if s.StartHour != expect {
			panic(fmt.Sprintf("workload: segment starts at %v, want %v", s.StartHour, expect))
		}
		if s.EndHour <= s.StartHour {
			panic("workload: empty segment")
		}
		if s.Rate <= 0 {
			panic("workload: segment rate must be positive")
		}
		expect = s.EndHour
	}
	if expect != 24 {
		panic(fmt.Sprintf("workload: segments end at hour %v, want 24", expect))
	}
	return &bursty{segs: append([]Segment(nil), segs...)}
}

// NewDefaultBursty returns the paper's Bursty arrival pattern.
func NewDefaultBursty() Arrival { return NewBursty(DefaultBurstySegments()) }

func (b *bursty) Name() string { return "bursty" }

// rateAt returns the arrival rate at time-of-day tod seconds.
func (b *bursty) rateAt(tod float64) float64 {
	h := tod / SecondsPerHour
	for _, s := range b.segs {
		if h < s.EndHour {
			return s.Rate
		}
	}
	return b.segs[len(b.segs)-1].Rate
}

// segmentEnd returns the absolute time at which the segment containing t
// ends.
func (b *bursty) segmentEnd(t float64) float64 {
	day := math.Floor(t / SecondsPerDay)
	tod := t - day*SecondsPerDay
	h := tod / SecondsPerHour
	for _, s := range b.segs {
		if h < s.EndHour {
			return day*SecondsPerDay + s.EndHour*SecondsPerHour
		}
	}
	return (day + 1) * SecondsPerDay
}

func (b *bursty) Next(r *rng.Stream, now float64) float64 {
	// Draw a unit-exponential hazard target and integrate the
	// piecewise-constant rate forward until it is consumed.
	hazard := r.Exp(1)
	t := now
	for {
		day := math.Floor(t / SecondsPerDay)
		tod := t - day*SecondsPerDay
		rate := b.rateAt(tod)
		end := b.segmentEnd(t)
		span := end - t
		if consumed := rate * span; consumed < hazard {
			hazard -= consumed
			t = end
			continue
		}
		return t + hazard/rate
	}
}

// MeanDailyRate returns the time-averaged arrival rate over a day.
func MeanDailyRate(segs []Segment) float64 {
	total := 0.0
	for _, s := range segs {
		total += s.Rate * (s.EndHour - s.StartHour) * SecondsPerHour
	}
	return total / SecondsPerDay
}
