package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestHoldAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at float64
	k.Spawn("p", func(p *Proc) {
		p.Hold(5)
		at = p.Now()
	})
	k.RunAll()
	if at != 5 {
		t.Fatalf("time after Hold(5) = %v, want 5", at)
	}
	if k.Now() != 5 {
		t.Fatalf("kernel Now() = %v, want 5", k.Now())
	}
}

func TestNegativeHoldIsZero(t *testing.T) {
	k := NewKernel()
	var at float64
	k.Spawn("p", func(p *Proc) {
		p.Hold(-3)
		at = p.Now()
	})
	k.RunAll()
	if at != 0 {
		t.Fatalf("time after Hold(-3) = %v, want 0", at)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Spawn("a", func(p *Proc) {
		p.Hold(3)
		order = append(order, 3)
	})
	k.Spawn("b", func(p *Proc) {
		p.Hold(1)
		order = append(order, 1)
		p.Hold(1)
		order = append(order, 2)
	})
	k.RunAll()
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events scheduled for the same instant must fire in schedule order.
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Hold(10)
			order = append(order, name)
		})
	}
	k.RunAll()
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	k := NewKernel()
	reached := false
	k.Spawn("p", func(p *Proc) {
		p.Hold(100)
		reached = true
	})
	end := k.Run(50)
	if end != 50 {
		t.Fatalf("Run(50) returned %v", end)
	}
	if reached {
		t.Fatal("event beyond horizon was dispatched")
	}
	k.Drain()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Drain = %d", k.LiveProcs())
	}
}

func TestRunResume(t *testing.T) {
	// Run can be called again to continue past a checkpoint.
	k := NewKernel()
	var times []float64
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Hold(10)
			times = append(times, p.Now())
		}
	})
	k.Run(15)
	if len(times) != 1 {
		t.Fatalf("after Run(15): %v", times)
	}
	k.Run(100)
	if !reflect.DeepEqual(times, []float64{10, 20, 30}) {
		t.Fatalf("times = %v", times)
	}
}

func TestAfterCallback(t *testing.T) {
	k := NewKernel()
	var fired []float64
	k.After(5, func() { fired = append(fired, k.Now()) })
	k.After(2, func() { fired = append(fired, k.Now()) })
	k.RunAll()
	if !reflect.DeepEqual(fired, []float64{2, 5}) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestAtClampsToNow(t *testing.T) {
	k := NewKernel()
	var at float64 = -1
	k.After(10, func() {
		k.At(3, func() { at = k.Now() }) // 3 is in the past at this point
	})
	k.RunAll()
	if at != 10 {
		t.Fatalf("At in the past fired at %v, want 10", at)
	}
}

func TestSpawnAtDelayedStart(t *testing.T) {
	k := NewKernel()
	var started float64 = -1
	k.SpawnAt(42, "late", func(p *Proc) { started = p.Now() })
	k.RunAll()
	if started != 42 {
		t.Fatalf("late proc started at %v, want 42", started)
	}
}

func TestHoldUntil(t *testing.T) {
	k := NewKernel()
	var a, b float64
	k.Spawn("p", func(p *Proc) {
		p.HoldUntil(7)
		a = p.Now()
		p.HoldUntil(3) // past: no-op
		b = p.Now()
	})
	k.RunAll()
	if a != 7 || b != 7 {
		t.Fatalf("a=%v b=%v, want 7,7", a, b)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.schedule(5, nil, func() {})
	})
	k.RunAll()
}

func TestDrainKillsSuspendedProcs(t *testing.T) {
	k := NewKernel()
	cleanup := false
	k.Spawn("p", func(p *Proc) {
		defer func() { cleanup = true }()
		p.Hold(1e9)
	})
	k.Run(10)
	k.Drain()
	if !cleanup {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Drain", k.LiveProcs())
	}
}

func TestDrainUnstartedProc(t *testing.T) {
	k := NewKernel()
	ran := false
	k.SpawnAt(100, "never", func(p *Proc) { ran = true })
	k.Run(10)
	k.Drain()
	if ran {
		t.Fatal("unstarted proc body ran")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", k.LiveProcs())
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel()
	var childTime float64 = -1
	k.Spawn("parent", func(p *Proc) {
		p.Hold(5)
		k.Spawn("child", func(c *Proc) {
			c.Hold(2)
			childTime = c.Now()
		})
		p.Hold(10)
	})
	k.RunAll()
	if childTime != 7 {
		t.Fatalf("child finished at %v, want 7", childTime)
	}
}

func TestManyProcsInterleave(t *testing.T) {
	k := NewKernel()
	const n = 100
	count := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Hold(float64(i % 7))
			count++
		})
	}
	k.RunAll()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestStepsCounter(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Hold(1)
		p.Hold(1)
	})
	k.RunAll()
	if k.Steps() < 3 { // spawn event + 2 holds
		t.Fatalf("Steps() = %d, want >= 3", k.Steps())
	}
}

func TestRunAllInfinity(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Hold(math.MaxFloat64 / 2) })
	end := k.RunAll()
	if end != math.MaxFloat64/2 {
		t.Fatalf("end = %v", end)
	}
}

// Property: clock is monotone non-decreasing across arbitrary hold patterns.
func TestQuickClockMonotone(t *testing.T) {
	f := func(holds []uint16) bool {
		k := NewKernel()
		ok := true
		last := -1.0
		for i, h := range holds {
			d := float64(h % 100)
			i := i
			k.SpawnAt(float64(i%5), "p", func(p *Proc) {
				p.Hold(d)
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			})
		}
		k.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedSameTimeOrdering(t *testing.T) {
	// Procs, After callbacks, and At callbacks scheduled for the same
	// instant fire in schedule order, regardless of kind.
	k := NewKernel()
	var order []string
	k.After(5, func() { order = append(order, "after") })
	k.SpawnAt(5, "proc", func(p *Proc) { order = append(order, "proc") })
	k.At(5, func() { order = append(order, "at") })
	k.RunAll()
	want := []string{"after", "proc", "at"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCallbackSchedulesProc(t *testing.T) {
	// A kernel-context callback can spawn processes and schedule further
	// callbacks.
	k := NewKernel()
	var at float64 = -1
	k.After(2, func() {
		k.Spawn("child", func(p *Proc) {
			p.Hold(3)
			at = p.Now()
		})
	})
	k.RunAll()
	if at != 5 {
		t.Fatalf("child finished at %v, want 5", at)
	}
}

func TestManyProcsStress(t *testing.T) {
	// A few thousand interleaving processes with resources: exercises the
	// hand-off discipline at scale.
	k := NewKernel()
	r := NewResource(k, "shared", 3)
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		k.SpawnAt(float64(i%17), "p", func(p *Proc) {
			r.Use(p, float64(i%5)+0.1)
			done++
		})
	}
	k.RunAll()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", k.LiveProcs())
	}
}

func TestDrainKillOrderIsSpawnOrder(t *testing.T) {
	// Drain must kill suspended processes in spawn order, not map order, so
	// kill-unwind side effects (deferred cleanup, resource releases) are
	// reproducible run to run.
	for trial := 0; trial < 20; trial++ {
		k := NewKernel()
		var killed []int
		for i := 0; i < 50; i++ {
			k.Spawn("p", func(p *Proc) {
				defer func() { killed = append(killed, i) }()
				p.Hold(1e9)
			})
		}
		k.Run(10)
		k.Drain()
		if len(killed) != 50 {
			t.Fatalf("trial %d: killed %d procs, want 50", trial, len(killed))
		}
		for i, got := range killed {
			if got != i {
				t.Fatalf("trial %d: kill order %v, want spawn order", trial, killed)
			}
		}
	}
}

func TestDrainRetainsHeapCapacity(t *testing.T) {
	// The event free-list: Drain empties the future event list but keeps
	// the backing array for kernels reused across Run calls.
	k := NewKernel()
	for i := 0; i < 100; i++ {
		k.After(float64(i)+1e6, func() {})
	}
	before := cap(k.events)
	k.Drain()
	if len(k.events) != 0 {
		t.Fatalf("events after Drain = %d, want 0", len(k.events))
	}
	if cap(k.events) != before {
		t.Fatalf("heap capacity %d after Drain, want %d retained", cap(k.events), before)
	}
}

func TestHeapOrderRandomized(t *testing.T) {
	// The inlined binary heap must dispatch in exact (at, seq) order for
	// adversarial schedules, same as container/heap did.
	f := func(times []uint16) bool {
		k := NewKernel()
		var got []float64
		for _, raw := range times {
			at := float64(raw % 256)
			k.After(at, func() { got = append(got, at) })
		}
		k.RunAll()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNoGoroutineLeakAfterDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		k := NewKernel()
		r := NewResource(k, "chan", 1)
		for i := 0; i < 100; i++ {
			k.SpawnAt(float64(i%13), "p", func(p *Proc) {
				for {
					r.Use(p, 1)
					p.Hold(0.5)
				}
			})
		}
		k.Run(200)
		k.Drain()
	}
	waitForGoroutines(t, baseline)
}

// waitForGoroutines polls until the goroutine count drops back to at most
// baseline (process goroutines unwind asynchronously after Drain returns).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck above baseline %d (now %d):\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}
