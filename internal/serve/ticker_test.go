package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWallTickerNowScales(t *testing.T) {
	tk := NewWallTicker(100)
	time.Sleep(10 * time.Millisecond)
	if now := tk.Now(); now < 0.5 {
		t.Fatalf("Now() = %v after 10ms at scale 100; want >= 0.5 ticker-seconds", now)
	}
	tk.Stop()
}

func TestWallTickerAfterFiresAndReschedules(t *testing.T) {
	tk := NewWallTicker(1000) // 1000 ticker-seconds per real second
	var mu sync.Mutex
	fired := 0
	var tick func()
	tick = func() {
		mu.Lock()
		fired++
		n := fired
		mu.Unlock()
		if n < 3 {
			tk.After(1, tick) // reschedule from inside the callback
		}
	}
	tk.After(1, tick) // 1 ticker-second = 1ms real
	deadline := time.After(time.Second)
	for {
		mu.Lock()
		n := fired
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("fired %d times within 1s; want 3", n)
		case <-time.After(time.Millisecond):
		}
	}
	tk.Stop()
}

func TestWallTickerStopPreventsCallbacks(t *testing.T) {
	tk := NewWallTicker(1)
	var mu sync.Mutex
	fired := false
	tk.After(0.005, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	tk.Stop()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired {
		t.Fatal("callback ran after Stop")
	}
	tk.After(0.001, func() { t.Error("After on a stopped ticker scheduled a callback") })
	time.Sleep(10 * time.Millisecond)
}

func TestAttachWallClockSamplesRegistry(t *testing.T) {
	reg := obs.New(0.002) // one sample per 2ms at scale 1
	var n int64
	reg.Gauge("test.gauge", func() float64 { n++; return float64(n) })
	tk := AttachWallClock(reg, 1, InfiniteHorizon)
	time.Sleep(25 * time.Millisecond)
	tk.Stop()
	if _, v := reg.Series("test.gauge").Last(); v < 2 {
		t.Fatalf("gauge sampled %v times; want repeated sampling", v)
	}
	// Disabled registry: AttachWallClock must still return a usable ticker.
	tk2 := AttachWallClock(nil, 1, InfiniteHorizon)
	if tk2.Now() < 0 {
		t.Fatal("ticker clock went backwards")
	}
	tk2.Stop()
}
