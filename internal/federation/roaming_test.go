package federation

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sim"
)

func TestMobilityCellAt(t *testing.T) {
	m := NewMobilitySchedule(0, []float64{100, 250}, []int{2, 1})
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {99.9, 0}, {100, 2}, {200, 2}, {249.9, 2}, {250, 1}, {1e9, 1},
	}
	for _, c := range cases {
		if got := m.CellAt(c.t); got != c.want {
			t.Fatalf("CellAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if m.Handoffs() != 2 {
		t.Fatalf("Handoffs = %d", m.Handoffs())
	}
}

func TestStaticCell(t *testing.T) {
	m := StaticCell(3)
	if m.CellAt(0) != 3 || m.CellAt(1e9) != 3 || m.Handoffs() != 0 {
		t.Fatal("StaticCell moves")
	}
}

func TestMobilityValidation(t *testing.T) {
	cases := []func(){
		func() { NewMobilitySchedule(0, []float64{1}, nil) },
		func() { NewMobilitySchedule(0, []float64{5, 5}, []int{1, 2}) },
		func() { NewMobilitySchedule(0, []float64{5, 4}, []int{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRoamerRoutesByTime(t *testing.T) {
	k, _, c := newCluster(t, 2, 0)
	roamer := c.NewRoamer(NewMobilitySchedule(0, []float64{1000}, []int{1}))
	req := server.Request{
		Granularity: core.AttributeCaching,
		Accesses:    readsOn(1), // owned by node 0
		Need:        readsOn(1),
	}
	exec(k, func(p *sim.Proc) {
		roamer.Process(p, req) // t≈0: cell 0, local read
		p.HoldUntil(2000)
		roamer.Process(p, req) // t=2000: cell 1, relayed read
	})
	served := roamer.ServedByCell()
	if served[0] != 1 || served[1] != 1 {
		t.Fatalf("ServedByCell = %v", served)
	}
	// After the handoff, node 0's data is remote: node 1 relays to it, so
	// node 0 served both sub-requests, node 1 one.
	if got := c.Node(0).Stats().QueriesServed; got != 2 {
		t.Fatalf("node 0 served %d, want 2", got)
	}
}

func TestRoamerHandoffChangesCost(t *testing.T) {
	// Reads of node-0 data are cheap from cell 0 and pay backbone time
	// from cell 1.
	k, _, c := newCluster(t, 2, 0)
	roamer := c.NewRoamer(NewMobilitySchedule(0, []float64{1000}, []int{1}))
	req := server.Request{
		Granularity: core.AttributeCaching,
		Accesses:    readsOn(2),
		Need:        readsOn(2),
	}
	var before, after float64
	exec(k, func(p *sim.Proc) {
		start := p.Now()
		roamer.Process(p, req)
		before = p.Now() - start
		p.HoldUntil(5000)
		start = p.Now()
		roamer.Process(p, req)
		after = p.Now() - start
	})
	if after <= before {
		t.Fatalf("post-handoff read (%v) not slower than home read (%v)", after, before)
	}
}

func TestRoamerValidation(t *testing.T) {
	_, _, c := newCluster(t, 2, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil schedule did not panic")
			}
		}()
		c.NewRoamer(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range cell did not panic")
			}
		}()
		c.NewRoamer(StaticCell(7))
	}()
}

// Property: CellAt is piecewise-constant and consistent with the handoff
// list for arbitrary ascending schedules.
func TestQuickMobilityConsistent(t *testing.T) {
	f := func(gapsRaw []uint8, cellsRaw []uint8) bool {
		n := len(gapsRaw)
		if len(cellsRaw) < n {
			n = len(cellsRaw)
		}
		if n > 8 {
			n = 8
		}
		times := make([]float64, n)
		cells := make([]int, n)
		tcur := 0.0
		for i := 0; i < n; i++ {
			tcur += float64(gapsRaw[i]) + 1
			times[i] = tcur
			cells[i] = int(cellsRaw[i]) % 4
		}
		m := NewMobilitySchedule(0, times, cells)
		// Before the first handoff.
		if n > 0 && m.CellAt(times[0]-0.5) != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if m.CellAt(times[i]) != cells[i] {
				return false
			}
			probe := times[i] + 0.5
			if i+1 < n && probe >= times[i+1] {
				continue
			}
			if m.CellAt(probe) != cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
