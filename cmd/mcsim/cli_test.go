package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/report"
)

// parseSimOpts runs one argument list through the shared flag surface.
func parseSimOpts(t *testing.T, args ...string) simOpts {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var o simOpts
	o.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSimOptsDefaultsMatchLegacy(t *testing.T) {
	o := parseSimOpts(t)
	cfg, err := o.config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := buildConfig("hc", "ewma-0.5", "AQ", "sh", "poisson",
		500, 0.1, 0, 0, 0, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want.Coherence = coherence.LeaseStrategy
	if cfg != want {
		t.Fatalf("flag defaults diverge from the legacy surface:\n%+v\nvs\n%+v", cfg, want)
	}
}

func TestSimOptsFleetFlags(t *testing.T) {
	o := parseSimOpts(t,
		"-clients", "100", "-cells", "4", "-relay", "50",
		"-backbone-bps", "2e6", "-backbone-lat", "0.01",
		"-granularity", "oc", "-coherence", "fixed", "-lease", "30")
	cfg, err := o.config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumClients != 100 || cfg.Cells != 4 || cfg.RelayObjects != 50 ||
		cfg.BackboneBandwidthBps != 2e6 || cfg.BackboneLatency != 0.01 {
		t.Fatalf("fleet flags not applied: %+v", cfg)
	}
	if cfg.Granularity != core.ObjectCaching ||
		cfg.Coherence != coherence.FixedLeaseStrategy || cfg.FixedLease != 30 {
		t.Fatalf("sim flags not applied: %+v", cfg)
	}
}

func TestSimOptsBadCoherence(t *testing.T) {
	o := parseSimOpts(t, "-coherence", "psychic")
	if _, err := o.config(); err == nil || !strings.Contains(err.Error(), "coherence") {
		t.Fatalf("bad coherence accepted: %v", err)
	}
}

func TestExplicitSimFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var o simOpts
	o.register(fs)
	fs.String("config", "", "")
	fs.String("report", "", "")
	fs.Int("parallel", 0, "")
	if err := fs.Parse([]string{"-config", "x", "-report", "y", "-parallel", "2",
		"-cells", "4", "-loss", "0.1"}); err != nil {
		t.Fatal(err)
	}
	set := explicitSimFlags(fs)
	if len(set) != 2 || set[0] != "-cells" && set[1] != "-cells" {
		t.Fatalf("explicit flags %v, want [-cells -loss]", set)
	}
}

// TestReadManifestDirAndFile: a report directory and its manifest.json
// resolve to the same manifest and artifact directory.
func TestReadManifestDirAndFile(t *testing.T) {
	dir := t.TempDir()
	cfg := experiment.Config{Seed: 5, Days: 0.02, NumClients: 2, NumObjects: 200}
	if _, err := instrumentedReport(dir, "run", runCommand(cfg), nil, cfg, false); err != nil {
		t.Fatal(err)
	}
	fromDir, d1, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, d2, err := readManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != dir || d2 != dir {
		t.Fatalf("resolved dirs %q, %q, want %q", d1, d2, dir)
	}
	if fromDir.Experiment != "run" || fromFile.Seed != 5 {
		t.Fatalf("manifests incomplete: %+v / %+v", fromDir, fromFile)
	}
	if _, _, err := readManifest(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing path accepted")
	}
}

// TestVerifyRunManifest pins the replay loop for run reports: the archived
// report.md reproduces byte-for-byte, and a tampered archive is caught.
func TestVerifyRunManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := experiment.Config{Seed: 5, Days: 0.02, NumClients: 2, NumObjects: 200}
	if _, err := instrumentedReport(dir, "run", runCommand(cfg), nil, cfg, false); err != nil {
		t.Fatal(err)
	}
	man, _, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyManifest(dir, man); err != nil {
		t.Fatalf("pristine archive failed verification: %v", err)
	}

	md := filepath.Join(dir, "report.md")
	if err := os.WriteFile(md, []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyManifest(dir, man); err == nil ||
		!strings.Contains(err.Error(), "does not reproduce") {
		t.Fatalf("tampered archive passed verification: %v", err)
	}
}

// TestReplayExpManifest is the acceptance path: an archived experiment
// report replays from its manifest alone and reproduces the recorded table
// hashes; a doctored hash is rejected.
func TestReplayExpManifest(t *testing.T) {
	base := experiment.Config{Seed: 3, Days: 0.02, NumClients: 2, NumObjects: 200}
	dir := t.TempDir()
	if err := runExperiments("1", base, false, dir); err != nil {
		t.Fatal(err)
	}
	man, _, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := replayManifest(man, ""); err != nil {
		t.Fatalf("replay from manifest failed: %v", err)
	}

	man.Tables[0].SHA256 = strings.Repeat("0", 64)
	if err := replayManifest(man, ""); err == nil ||
		!strings.Contains(err.Error(), "does not reproduce") {
		t.Fatalf("doctored table hash passed replay: %v", err)
	}
}

// TestManifestBase: replay reconstructs exactly the flag-settable base.
func TestManifestBase(t *testing.T) {
	base := experiment.Config{Seed: 3, Days: 0.02, NumClients: 2, NumObjects: 200,
		LossRate: 0.05, RetryMax: 2}
	rep := experiment.Exp1(base)
	man := reportManifestFor(t, rep)
	got := manifestBase(man)
	want := base
	want.Days = rep.Results[0].Config.Days // defaulted value round-trips
	if got != want {
		t.Fatalf("manifest base %+v, want %+v", got, want)
	}
	if quickFromManifest(man) {
		t.Fatal("full sweep flagged quick")
	}
	man.Command = "mcsim exp 1 -seed 3 -quick -report <dir>"
	if !quickFromManifest(man) {
		t.Fatal("pre-Quick-field manifest command not recognized")
	}
}

// reportManifestFor builds the manifest an instrumented rerun of rep's
// first configuration would write, without touching disk.
func reportManifestFor(t *testing.T, rep *experiment.Report) report.Manifest {
	t.Helper()
	cfg := rep.Results[0].Config
	return report.NewManifest("exp1", "mcsim exp 1 -seed 3 -report <dir>", cfg, rep, nil)
}
