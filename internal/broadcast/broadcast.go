// Package broadcast implements the push-based dissemination substrate the
// paper's introduction frames as the complement of its point-to-point
// design (§1): "items of interest to most mobile clients should be
// broadcast from a database server to multiple clients while items of
// interest to single client should be disseminated over dedicated
// channels on demand."
//
// A Program is a flat broadcast disk: a fixed list of database items
// cycled periodically over a dedicated broadcast channel. The schedule is
// strictly periodic, so a client needing item x does not tune in
// continuously — it computes x's next slot and wakes exactly then,
// spending receive energy only on the slots it consumes. A copy picked up
// from the air is valid for one cycle (the next revolution would refresh
// it), which gives broadcast items a natural lease.
package broadcast

import (
	"fmt"
	"math"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
)

// Program is a periodic flat broadcast schedule.
type Program struct {
	items   []oodb.Item
	slotOf  map[oodb.Item]int
	slotDur float64 // airtime per item, seconds
	cycle   float64 // full revolution, seconds
	start   float64 // first revolution begins here
}

// New builds a program broadcasting the given items in order over a
// channel of the given bandwidth, starting at virtual time start. Each
// slot carries one item framed like a downlink reply entry.
func New(items []oodb.Item, bandwidthBps, start float64) *Program {
	if len(items) == 0 {
		panic("broadcast: a program needs at least one item")
	}
	if bandwidthBps <= 0 {
		panic("broadcast: bandwidth must be positive")
	}
	if start < 0 {
		panic("broadcast: start must be non-negative")
	}
	p := &Program{
		items:  append([]oodb.Item(nil), items...),
		slotOf: make(map[oodb.Item]int, len(items)),
		start:  start,
	}
	// Slots are fixed-width at the size of the largest item so the
	// schedule stays strictly periodic (simple flat disk).
	maxBytes := 0
	for i, it := range p.items {
		if _, dup := p.slotOf[it]; dup {
			panic(fmt.Sprintf("broadcast: duplicate item %v in program", it))
		}
		p.slotOf[it] = i
		if b := network.ReplyEntrySize(it); b > maxBytes {
			maxBytes = b
		}
	}
	p.slotDur = float64(maxBytes+network.HeaderSize) * 8 / bandwidthBps
	p.cycle = p.slotDur * float64(len(p.items))
	return p
}

// Covers reports whether the program carries item.
func (p *Program) Covers(it oodb.Item) bool {
	_, ok := p.slotOf[it]
	return ok
}

// Len returns the number of items in one revolution.
func (p *Program) Len() int { return len(p.items) }

// Cycle returns the revolution period in seconds — also the validity lease
// of a copy picked off the air.
func (p *Program) Cycle() float64 { return p.cycle }

// SlotBytes returns the wire size of one slot.
func (p *Program) SlotBytes() int {
	return int(p.slotDur * network.WirelessBandwidthBps / 8)
}

// NextDelivery returns the absolute time at which the next complete
// transmission of item finishes, for a client that starts listening at
// `now`: the end of the earliest slot whose *start* is at or after now
// (a partially missed slot cannot be decoded). It panics if the program
// does not cover item.
func (p *Program) NextDelivery(it oodb.Item, now float64) float64 {
	slot, ok := p.slotOf[it]
	if !ok {
		panic(fmt.Sprintf("broadcast: item %v not in program", it))
	}
	// Slot ends in revolution k: e_k = start + (slot+1)*slotDur + k*cycle;
	// catchable iff its start e_k - slotDur >= now. The epsilon absorbs
	// floating-point drift when a client tunes in exactly at a slot
	// boundary (e.g. right after consuming the previous slot).
	const eps = 1e-9
	e0 := p.start + float64(slot+1)*p.slotDur
	k := math.Ceil((now - (e0 - p.slotDur) - eps) / p.cycle)
	if k < 0 {
		k = 0
	}
	return e0 + k*p.cycle
}

// MeanWait returns the expected waiting time for a uniformly random item
// request (half a revolution plus one slot) — used for capacity planning
// and sanity tests.
func (p *Program) MeanWait() float64 { return p.cycle/2 + p.slotDur }

// Register wires the air channel's program shape into an observability
// registry under the given series prefix: items per revolution, cycle
// period (the natural lease), slot size, and expected tune-in wait. The
// values are static for a flat disk, so the series double as manifest
// facts; consumption counters (reads answered from the air) live with the
// clients that tune in. No-op when reg is disabled.
func (p *Program) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".items", func() float64 { return float64(p.Len()) })
	reg.Gauge(prefix+".cycle_s", p.Cycle)
	reg.Gauge(prefix+".slot_bytes", func() float64 { return float64(p.SlotBytes()) })
	reg.Gauge(prefix+".mean_wait_s", p.MeanWait)
}

// HotAttrItems is a helper for assembling programs: the cross product of
// the given objects with the first nAttrs primitive attributes (the
// hottest ranks under the workload's skewed attribute distribution).
func HotAttrItems(objects []oodb.OID, nAttrs int) []oodb.Item {
	if nAttrs < 1 || nAttrs > oodb.NumPrimAttrs {
		panic("broadcast: nAttrs out of range")
	}
	items := make([]oodb.Item, 0, len(objects)*nAttrs)
	for _, oid := range objects {
		for a := 0; a < nAttrs; a++ {
			items = append(items, oodb.AttrItem(oid, oodb.AttrID(a)))
		}
	}
	return items
}
