package storage

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestCrashRecovery re-executes the test binary as a writer child that
// hard-exits mid-stream (no Close, no final fsync), then reopens the log
// in the parent and checks the durability contract: every write the
// child acknowledged after its sync barrier must survive, and no torn
// record may surface.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("STORAGE_CRASH_CHILD") == "1" {
		crashChild()
		return // unreachable; crashChild os.Exits
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecovery$")
	cmd.Env = append(os.Environ(),
		"STORAGE_CRASH_CHILD=1",
		"STORAGE_CRASH_DIR="+dir,
	)
	out, err := cmd.Output()
	if err == nil {
		t.Fatal("crash child exited cleanly; expected hard exit")
	}
	// Parse the child's acked-key stream. Keys before the "SYNCED" marker
	// were covered by an explicit Sync and MUST survive; keys after it were
	// acked by group commit and must also survive (the ack implies fsync).
	acked := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		line := sc.Text()
		if line == "SYNCED" || line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			t.Fatalf("bad child output line %q", line)
		}
		acked[k] = v
	}
	if len(acked) < 10 {
		t.Fatalf("child acked only %d writes before crashing: %q", len(acked), out)
	}

	s, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s.Close()
	for k, v := range acked {
		got, ok, err := s.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Errorf("acked write lost: Get(%s) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
	// Whatever else replayed must be a well-formed record (Get succeeds);
	// torn tails are truncated, never surfaced.
	if err := s.Scan("", func(k string, v []byte) bool {
		if _, ok, err := s.Get(k); err != nil || !ok {
			t.Errorf("recovered key %q unreadable: %v %v", k, ok, err)
		}
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	// The store stays writable after crash recovery.
	if err := s.Put("post-crash", []byte("ok")); err != nil {
		t.Fatalf("Put after crash recovery: %v", err)
	}
}

// crashChild runs in the re-executed process: write, ack over stdout,
// then die without cleanup.
func crashChild() {
	dir := os.Getenv("STORAGE_CRASH_DIR")
	s, err := Open(Options{Path: dir, GroupWindow: 1, SegmentBytes: 8 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Phase 1: writes covered by an explicit sync barrier.
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("pre-%02d", i), fmt.Sprintf("v%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("%s=%s\n", k, v)
	}
	if err := s.Sync(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Println("SYNCED")
	// Phase 2: group-committed writes; each ack implies the epoch fsynced.
	for i := 0; i < 30; i++ {
		k, v := fmt.Sprintf("post-%02d", i), fmt.Sprintf("v%d", i)
		if err := s.Put(k, []byte(v)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("%s=%s\n", k, v)
	}
	os.Stdout.Sync()
	// Die with the store open: no Close, no deferred cleanup.
	os.Exit(3)
}
