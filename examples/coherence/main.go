// Coherence: the three strategies side by side — the paper's adaptive
// per-item leases (§3.2), the original fixed-duration Leases scheme [7],
// and the broadcast invalidation reports [2] that §2 argues cannot survive
// disconnection.
//
// The run sweeps the fixed lease length to show §2's point that no single
// duration works ("it is difficult to determine an appropriate refresh
// duration"), then disconnects some clients to show the invalidation
// reports' failure mode (cache drops after missed reports).
//
// Scenarios are composed from a shared option slice plus per-case extras
// (see docs/API.md for the full option catalog).
//
//	go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	base := []experiment.Option{
		experiment.WithSeed(21),
		experiment.WithHorizonDays(1),
		experiment.WithGranularity(core.HybridCaching),
		experiment.WithPolicy("ewma-0.5"),
		experiment.WithQueryKind(workload.Associative),
		experiment.WithHeat(experiment.SkewedHeat),
		experiment.WithUpdateProb(0.3), // write-heavy enough for coherence to matter
	}
	run := func(extra ...experiment.Option) experiment.Result {
		sc, err := experiment.New(append(append([]experiment.Option{}, base...), extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		return sc.Run()
	}

	fmt.Println("== picking a lease duration (all clients connected, U=0.3) ==")
	fmt.Printf("%-16s  %8s  %8s\n", "strategy", "hit %", "err %")
	show := func(name string, res experiment.Result) {
		fmt.Printf("%-16s  %8.1f  %8.2f\n", name, 100*res.HitRatio, 100*res.ErrorRate)
	}
	show("adaptive RT", run())
	for _, lease := range []float64{60, 600, 6000} {
		show(fmt.Sprintf("fixed %gs", lease), run(
			experiment.WithCoherence(coherence.FixedLeaseStrategy),
			experiment.WithFixedLease(lease),
		))
	}
	fmt.Println("\nshort fixed leases kill the hit ratio; long ones leak errors.")
	fmt.Println("the adaptive estimate tracks each item's own write rate.")

	fmt.Println("\n== disconnection (4 of 10 clients offline 6h/day) ==")
	fmt.Printf("%-20s  %8s  %8s  %12s\n", "strategy", "hit %", "err %", "cache drops")
	for _, c := range []struct {
		name  string
		strat coherence.Strategy
	}{
		{"adaptive leases", coherence.LeaseStrategy},
		{"invalidation rpts", coherence.InvalidationReportStrategy},
	} {
		res := run(
			experiment.WithCoherence(c.strat),
			experiment.WithDisconnection(4, 6),
		)
		fmt.Printf("%-20s  %8.1f  %8.2f  %12d\n",
			c.name, 100*res.HitRatio, 100*res.ErrorRate, res.CacheDrops)
	}
	fmt.Println("\na client that misses reports cannot trust anything it cached —")
	fmt.Println("leases need no channel at all, which is why the paper pulls.")
}
