package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig("hc", "ewma-0.5", "AQ", "sh", "poisson",
		500, 0.1, 0, 0, 0, 0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Granularity != core.HybridCaching {
		t.Fatalf("granularity %v", cfg.Granularity)
	}
	if cfg.QueryKind != workload.Associative {
		t.Fatalf("kind %v", cfg.QueryKind)
	}
	if cfg.Heat != experiment.SkewedHeat || cfg.Arrival != experiment.PoissonArrival {
		t.Fatal("heat/arrival defaults wrong")
	}
}

func TestBuildConfigVariants(t *testing.T) {
	cfg, err := buildConfig("oc", "lru-3", "nq", "cyclic", "bursty",
		300, 0.3, 1, 4, 5, 2, 9, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Granularity != core.ObjectCaching ||
		cfg.QueryKind != workload.Navigational ||
		cfg.Heat != experiment.CyclicHeat ||
		cfg.Arrival != experiment.BurstyArrival {
		t.Fatalf("config variants wrong: %+v", cfg)
	}
	if cfg.DisconnectedClients != 4 || cfg.DisconnectHours != 5 {
		t.Fatal("disconnection params lost")
	}
	if cfg.Days != 2 || cfg.Seed != 9 || cfg.NumClients != 5 || cfg.NumObjects != 500 {
		t.Fatal("scale params lost")
	}
	csh, err := buildConfig("ac", "mean", "AQ", "csh", "poisson",
		700, 0, 0, 0, 0, 0, 1, 0, 0)
	if err != nil || csh.Heat != experiment.ChangingSkewedHeat || csh.CSHChangeEvery != 700 {
		t.Fatalf("csh parse: %+v, %v", csh, err)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct{ gran, kind, heat, arrival string }{
		{"xx", "AQ", "sh", "poisson"},
		{"hc", "ZZ", "sh", "poisson"},
		{"hc", "AQ", "warm", "poisson"},
		{"hc", "AQ", "sh", "uniform"},
	}
	for i, c := range cases {
		_, err := buildConfig(c.gran, "lru", c.kind, c.heat, c.arrival,
			500, 0, 0, 0, 0, 0, 1, 0, 0)
		if err == nil {
			t.Fatalf("case %d accepted invalid input", i)
		}
	}
}

func TestRunExperimentsUnknown(t *testing.T) {
	err := runExperiments("banana", experiment.Config{}, false)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunExperimentsTable1(t *testing.T) {
	if err := runExperiments("table1", experiment.Config{}, false); err != nil {
		t.Fatal(err)
	}
}
