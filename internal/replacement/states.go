package replacement

// This file holds the per-item state records and badness formulas shared by
// the optimized policies (conventional.go, duration.go) and the retained
// scanCore reference implementations (reference.go). Every scoring formula
// exists exactly once: both implementations evaluate the same
// floating-point expressions in the same order, which is what lets the
// differential tests demand bit-identical victim sequences.

import "repro/internal/stats"

// ---------------------------------------------------------- LRU / MRU ----

type lruState struct {
	last float64
}

func lruBadness(s *lruState, now float64) float64 { return now - s.last }
func mruBadness(s *lruState, now float64) float64 { return s.last - now }

// -------------------------------------------------------------- LRU-k ----

// DefaultCorrelatedPeriod is the default Correlated Reference Period for
// LRU-k, in simulated seconds: references closer together than this are
// treated as one reference (a single query burst), and items referenced
// within the period are not eviction candidates. Two mean query
// inter-arrival times (2 × 1/0.01 s) covers intra-burst re-references.
const DefaultCorrelatedPeriod = 200.0

// lruKInf separates LRU-k's eviction classes (infinite backward distance >
// any finite distance > correlated-protected). It must dominate any finite
// backward distance while leaving float64 precision for the staleness
// tie-breaks added to it (ulp(1e12) ~ 1e-4 s; 1e18 would swallow them).
const lruKInf = 1e12

// ringInline is the largest k whose access ring lives entirely inside the
// item state (no per-item heap allocation). The experiments use k <= 3.
const ringInline = 8

// accessRing keeps the last k access times. It is a value type with an
// index-addressed inline backing array for k <= ringInline, so item states
// stay copy-safe under the slot table's swap-moves (a self-referential
// slice would alias the old location).
type accessRing struct {
	head   int32
	n      int32
	k      int32
	inline [ringInline]float64
	big    []float64
}

func makeAccessRing(k int) accessRing {
	r := accessRing{k: int32(k)}
	if k > ringInline {
		r.big = make([]float64, k)
	}
	return r
}

func (r *accessRing) buf() []float64 {
	if r.big != nil {
		return r.big
	}
	return r.inline[:r.k]
}

func (r *accessRing) push(t float64) {
	r.buf()[r.head] = t
	r.head = (r.head + 1) % r.k
	if r.n < r.k {
		r.n++
	}
}

// kth returns the k-th most recent access time and whether k accesses exist.
func (r *accessRing) kth() (float64, bool) {
	if r.n < r.k {
		return 0, false
	}
	return r.buf()[r.head], true // head points at the oldest retained time
}

// last returns the most recent access time.
func (r *accessRing) last() float64 {
	return r.buf()[(r.head-1+r.k)%r.k]
}

// lruKState is an item's reference history: the ring holds uncorrelated
// reference times; last tracks the most recent (possibly correlated)
// access for CRP decisions.
type lruKState struct {
	ring accessRing
	last float64
}

// record applies one access with reference collapsing.
func (s *lruKState) record(crp, now float64) {
	if s.ring.n == 0 || now-s.last >= crp {
		s.ring.push(now)
	}
	s.last = now
}

func lruKBadness(s *lruKState, crp, now float64) float64 {
	if crp > 0 && now-s.last < crp {
		// Correlated period: protected. Orders behind every candidate;
		// among protected items the stalest goes first if eviction is
		// unavoidable.
		return -lruKInf + (now - s.last)
	}
	if kth, ok := s.ring.kth(); ok {
		return now - kth
	}
	// Infinite backward k-distance: dominates any finite distance;
	// ordered among themselves by last access.
	return lruKInf + (now - s.last)
}

// ---------------------------------------------------------------- LRD ----

// DefaultLRDInterval is the reference-count aging period used in
// Experiment #2: "the reference count of each database item is divided by 2
// every 1000 seconds".
const DefaultLRDInterval = 1000.0

type lrdState struct {
	refs     float64
	enter    float64 // first-access time
	lastAged float64
}

func (s *lrdState) age(now, interval float64) {
	for now-s.lastAged >= interval {
		s.refs /= 2
		s.lastAged += interval
	}
}

func lrdBadness(s *lrdState, interval, now float64) float64 {
	s.age(now, interval)
	return -s.refs // min decayed density == max badness
}

// --------------------------------------------------------------- FIFO ----

type fifoState struct {
	seq uint64
}

func fifoBadness(s *fifoState) float64 { return -float64(s.seq) }

// ---------------------------------------------------------------- Mean ----

type meanState struct {
	n    uint64  // number of recorded durations
	mean float64 // running mean duration
	last float64 // last access time
}

func (s *meanState) record(now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.mean = (float64(s.n)*s.mean + d) / float64(s.n+1)
	s.n++
	s.last = now
}

func meanBadness(s *meanState, now float64) float64 {
	if s.n == 0 {
		return now - s.last
	}
	return s.mean
}

// -------------------------------------------------------------- Window ----

// DefaultWindowSize is the window size used in the paper's experiments
// (Win-10).
const DefaultWindowSize = 10

type winState struct {
	win  stats.Window
	last float64
}

func (s *winState) record(now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.win.Add(d)
	s.last = now
}

func windowBadness(s *winState, w int, now float64) float64 {
	open := now - s.last
	sum := s.win.Mean()*float64(s.win.Count()) + open
	if s.win.Count() == s.win.Size() {
		sum -= s.win.Oldest() // open interval displaces the oldest duration
	}
	return sum / float64(w)
}

// ---------------------------------------------------------------- EWMA ----

// DefaultEWMAAlpha is the paper's recommended weight (EWMA-0.5): history
// halves on every access, mirroring LRD's "divide the reference count by 2".
const DefaultEWMAAlpha = 0.5

type ewmaState struct {
	value float64 // current EWMA of durations
	n     uint64
	last  float64
}

func (s *ewmaState) record(alpha, now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	if s.n == 0 {
		s.value = d
	} else {
		s.value = alpha*s.value + (1-alpha)*d
	}
	s.n++
	s.last = now
}

func ewmaBadness(s *ewmaState, alpha, now float64) float64 {
	open := now - s.last
	if s.n == 0 {
		return open
	}
	return alpha*s.value + (1-alpha)*open
}
