// Package rng provides small, fast, deterministic pseudo-random number
// streams for the simulation.
//
// The simulator needs reproducibility guarantees that are stronger than
// "same seed, same Go version": experiment tables in EXPERIMENTS.md must be
// regenerable byte-for-byte. We therefore implement our own generator
// (splitmix64 for stream derivation feeding an xoshiro256** core) instead of
// depending on math/rand internals.
//
// Every simulated entity (client, workload generator, update process, ...)
// draws from its own Stream, derived from a root seed and a stream
// identifier. Adding a new consumer of randomness therefore never perturbs
// the draws seen by existing consumers, which keeps experiments comparable
// across code revisions.
package rng

import "math"

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used both for seeding xoshiro and for deriving substreams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// It is not safe for concurrent use; in the simulator only one process
// runs at a time, so each entity owns its Stream exclusively.
type Stream struct {
	s [4]uint64
}

// New returns a Stream derived from seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Derive returns a new Stream keyed by (seed, id). It is the canonical way
// to hand every simulated entity its own independent substream.
func Derive(seed, id uint64) *Stream {
	mix := seed
	_ = splitmix64(&mix)
	mix ^= id * 0xd1342543de82ef95
	return New(splitmix64(&mix))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // bias < 2^-40 for n < 2^24; fine for simulation
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so Log never sees zero.
	return -math.Log(1-u) / rate
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher–Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in selection
// order. It panics if k > n or k < 0.
func (r *Stream) Sample(n, k int) []int {
	return r.SampleInto(n, k, nil, nil)
}

// SampleInto is Sample with caller-provided scratch: idx and out are reused
// when they have sufficient capacity (idx: n, out: k) and allocated
// otherwise. The random draws are identical to Sample's. The returned slice
// aliases out when it was reused.
func (r *Stream) SampleInto(n, k int, idx, out []int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Partial Fisher–Yates over an index table; O(n) space, O(k) swaps.
	if cap(idx) < n {
		idx = make([]int, n)
	} else {
		idx = idx[:n]
	}
	for i := range idx {
		idx[i] = i
	}
	if cap(out) < k {
		out = make([]int, k)
	} else {
		out = out[:k]
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// Discrete draws an index from the categorical distribution defined by
// weights (need not be normalized). It panics if weights is empty or the
// total weight is not positive.
type Discrete struct {
	cum []float64
}

// NewDiscrete precomputes the cumulative distribution for weights.
func NewDiscrete(weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("rng: NewDiscrete with no weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: NewDiscrete with negative weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: NewDiscrete with zero total weight")
	}
	return &Discrete{cum: cum}
}

// Draw samples an index according to the precomputed weights.
func (d *Discrete) Draw(r *Stream) int {
	u := r.Float64() * d.cum[len(d.cum)-1]
	// Binary search for the first cumulative weight exceeding u.
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ZipfWeights returns weights[i] proportional to 1/(i+1)^theta for n ranks.
// It is used for the paper's "uniform skewed" attribute distribution: every
// attribute keeps a non-zero access probability while lower ranks dominate.
func ZipfWeights(n int, theta float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), theta)
	}
	return w
}
