package replacement

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/oodb"
)

// These tests are the correctness gate for the indexed victim-selection
// engine: every optimized policy is driven in lockstep with its retained
// scanCore reference twin (reference.go) through randomized traces —
// insert/access churn, invalidation Removes, eviction (Victim + Remove),
// bulk Victims, re-insertion after eviction, and exact timestamp ties from
// zero-gap clusters — and must produce bit-identical victim sequences.

// differentialSpecs lists every Parse spec with a reference twin, covering
// all heap-key classes: exact single-class (lru, mru, fifo), two-class
// (mean, ewma, lru-k incl. k=1 and k>ringInline), padded bounds (win,
// ewma), log-domain keys (lrd), and the non-scan clock.
var differentialSpecs = []string{
	"lru", "mru", "fifo", "clock",
	"lru-1", "lru-2", "lru-3", "lru-12",
	"lrd",
	"mean",
	"win-1", "win-3", "win-10",
	"ewma-0", "ewma-0.5", "ewma-0.9",
}

func comparePolicies(t *testing.T, opt, ref Policy, seed int64, steps, universe int) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	var resident []oodb.Item
	isResident := make(map[oodb.Item]bool)
	addResident := func(it oodb.Item) {
		if !isResident[it] {
			isResident[it] = true
			resident = append(resident, it)
		}
	}
	dropResident := func(it oodb.Item) {
		if !isResident[it] {
			return
		}
		delete(isResident, it)
		for i, r := range resident {
			if r == it {
				resident[i] = resident[len(resident)-1]
				resident = resident[:len(resident)-1]
				break
			}
		}
	}
	now := 0.0
	for step := 0; step < steps; step++ {
		// ~30% zero-gap steps create exact timestamp ties (batch inserts),
		// exercising the slot-order tie-breaking.
		if rnd.Intn(100) < 70 {
			now += rnd.Float64() * 40
		}
		switch op := rnd.Intn(10); {
		case op < 4: // insert or re-insert
			it := obj(rnd.Intn(universe))
			opt.OnInsert(it, now)
			ref.OnInsert(it, now)
			addResident(it)
		case op < 7: // access a resident item
			if len(resident) == 0 {
				continue
			}
			it := resident[rnd.Intn(len(resident))]
			opt.OnAccess(it, now)
			ref.OnAccess(it, now)
		case op < 8: // invalidation-style Remove
			if len(resident) == 0 {
				continue
			}
			it := resident[rnd.Intn(len(resident))]
			opt.Remove(it)
			ref.Remove(it)
			dropResident(it)
		case op < 9: // eviction: Victim then Remove
			vo, oko := opt.Victim(now)
			vr, okr := ref.Victim(now)
			if oko != okr || vo != vr {
				t.Fatalf("step %d (now=%v): Victim diverged: optimized (%v, %v), reference (%v, %v)",
					step, now, vo, oko, vr, okr)
			}
			if oko {
				opt.Remove(vo)
				ref.Remove(vo)
				dropResident(vo)
			}
		default: // bulk Victims (non-destructive, ordered worst-first)
			n := rnd.Intn(len(resident) + 3)
			a := opt.Victims(now, n)
			b := ref.Victims(now, n)
			if len(a) != len(b) {
				t.Fatalf("step %d: Victims(%d) lengths diverged: %d vs %d", step, n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d (now=%v): Victims(%d)[%d] diverged: %v vs %v\noptimized %v\nreference %v",
						step, now, n, i, a[i], b[i], a, b)
				}
			}
		}
		if opt.Len() != ref.Len() {
			t.Fatalf("step %d: Len diverged: %d vs %d", step, opt.Len(), ref.Len())
		}
	}
	// Drain: the full eviction order must match.
	for opt.Len() > 0 {
		now += rnd.Float64() * 40
		vo, _ := opt.Victim(now)
		vr, _ := ref.Victim(now)
		if vo != vr {
			t.Fatalf("drain (now=%v, %d left): Victim diverged: %v vs %v", now, opt.Len(), vo, vr)
		}
		opt.Remove(vo)
		ref.Remove(vr)
	}
}

func TestDifferentialVictimSequences(t *testing.T) {
	for _, spec := range differentialSpecs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				factory, err := Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := newReferencePolicy(spec)
				if err != nil {
					t.Fatal(err)
				}
				comparePolicies(t, factory(), ref, seed, 2500, 48)
			}
		})
	}
}

// TestDifferentialLargeUniverse pushes deeper heaps and more pruning: a
// larger item universe under heavier eviction pressure.
func TestDifferentialLargeUniverse(t *testing.T) {
	for _, spec := range []string{"lru", "lru-2", "lrd", "mean", "win-10", "ewma-0.5", "clock"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			factory, _ := Parse(spec)
			ref, _ := newReferencePolicy(spec)
			comparePolicies(t, factory(), ref, 99, 4000, 600)
		})
	}
}

// TestDifferentialLRUKCRPVariants covers correlated-reference periods the
// Parse specs cannot reach: disabled (crp=0) and much larger than the
// trace's time gaps (every item protected most of the time).
func TestDifferentialLRUKCRPVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
		crp  float64
	}{
		{"k2-crp0", 2, 0},
		{"k1-crp0", 1, 0},
		{"k3-crp2000", 3, 2000},
		{"k2-crp5", 2, 5},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				comparePolicies(t, NewLRUKCRP(tc.k, tc.crp), newRefLRUK(tc.k, tc.crp), seed, 2500, 48)
			}
		})
	}
}

// TestDifferentialBatchTies inserts many items at identical timestamps —
// the way InsertBatch populates a cache mid-query — so victim selection is
// decided purely by tie-breaks on scan position, then drains both
// implementations and requires the same order.
func TestDifferentialBatchTies(t *testing.T) {
	for _, spec := range differentialSpecs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			factory, _ := Parse(spec)
			ref, _ := newReferencePolicy(spec)
			opt := factory()
			for wave := 0; wave < 4; wave++ {
				now := float64(wave * 500)
				for i := 0; i < 50; i++ {
					it := obj(wave*40 + i) // overlapping waves re-access some items
					opt.OnInsert(it, now)
					ref.OnInsert(it, now)
				}
				a := opt.Victims(now+1, 25)
				b := ref.Victims(now+1, 25)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("wave %d: Victims[%d] = %v vs %v", wave, i, a[i], b[i])
					}
				}
			}
			now := 3000.0
			for opt.Len() > 0 {
				vo, _ := opt.Victim(now)
				vr, _ := ref.Victim(now)
				if vo != vr {
					t.Fatalf("drain (%d left): %v vs %v", opt.Len(), vo, vr)
				}
				opt.Remove(vo)
				ref.Remove(vr)
			}
		})
	}
}

// TestBoundSoundness checks the engine's pruning contract directly: for
// every class heap, bound(key, now) must upper-bound the exact reference
// badness of each slot in that class, for every query time — including the
// padded inexact bounds (window, ewma, lrd) whose keys algebraically
// rearrange the score formula.
func TestBoundSoundness(t *testing.T) {
	churn := func(p Policy, seed int64, steps int) float64 {
		rnd := rand.New(rand.NewSource(seed))
		isResident := make(map[oodb.Item]bool)
		var resident []oodb.Item
		now := 0.0
		for i := 0; i < steps; i++ {
			if rnd.Intn(4) > 0 {
				now += rnd.Float64() * 30
			}
			it := obj(rnd.Intn(64))
			switch rnd.Intn(5) {
			case 0, 1:
				p.OnInsert(it, now)
				if !isResident[it] {
					isResident[it] = true
					resident = append(resident, it)
				}
			case 2, 3:
				if len(resident) > 0 {
					p.OnAccess(resident[rnd.Intn(len(resident))], now)
				}
			default:
				if v, ok := p.Victim(now); ok {
					p.Remove(v)
					delete(isResident, v)
					for j, r := range resident {
						if r == v {
							resident[j] = resident[len(resident)-1]
							resident = resident[:len(resident)-1]
							break
						}
					}
				}
			}
		}
		return now
	}
	type boundCase struct {
		name  string
		p     Policy
		check func(t *testing.T, now float64)
	}
	var cases []boundCase
	add := func(name string, p Policy, check func(t *testing.T, now float64)) {
		cases = append(cases, boundCase{name, p, check})
	}
	{
		p := NewLRU().(*lru)
		add("lru", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewMRU().(*mru)
		add("mru", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewFIFO().(*fifo)
		add("fifo", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewLRUK(2).(*lruK)
		add("lru-2", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewLRD(DefaultLRDInterval).(*lrd)
		add("lrd", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewMean().(*meanPolicy)
		add("mean", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewWindow(10).(*windowPolicy)
		add("win-10", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	{
		p := NewEWMA(0.5).(*ewmaPolicy)
		add("ewma-0.5", p, func(t *testing.T, now float64) { checkBounds(t, &p.victimCore, now) })
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			end := churn(tc.p, 7, 3000)
			// Increasing nows only: eval lazily ages state (LRD), and time
			// never flows backwards in the simulator either.
			for _, dt := range []float64{0, 1e-3, 1, 250, 5e4, 3e5} {
				tc.check(t, end+dt)
			}
		})
	}
}

func checkBounds[S any](t *testing.T, c *victimCore[S], now float64) {
	t.Helper()
	for ci := range c.classes {
		ch := &c.classes[ci]
		maxEval := math.Inf(-1)
		for _, slot := range ch.heap.order {
			key := ch.heap.key[slot]
			b := ch.sc.bound(key, now)
			e := ch.sc.eval(slot, now)
			if e > b {
				t.Errorf("class %d slot %d at now=%v: eval %v exceeds bound %v (key %v)",
					ci, slot, now, e, b, ch.heap.key[slot])
			}
			if e > maxEval {
				maxEval = e
			}
		}
		if math.IsInf(maxEval, -1) {
			continue
		}
		for _, slot := range ch.heap.order {
			key := ch.heap.key[slot]
			b := ch.sc.bound(key, now)
			e := ch.sc.eval(slot, now)
			// Cutoff consistency: a slot whose bound reaches best must not
			// be pruned by the key cutoff (bound >= best ⟹ key <= cutoff).
			// The engine only ever passes eval scores as best, so probe at
			// achievable values: the slot's own eval (the self-tie case),
			// the strongest score any slot in the class can set (the
			// cross-slot tie case), and weaker bests below them.
			for _, best := range []float64{e, e - 1e-9, e - 1.0, maxEval, maxEval - 1e-9} {
				if b < best {
					continue
				}
				if cut := ch.sc.cutoff(now, best); key > cut {
					t.Errorf("class %d slot %d at now=%v: key %v exceeds cutoff %v for best %v (bound %v)",
						ci, slot, now, key, cut, best, b)
				}
			}
		}
	}
}

// TestSlotHeapInvariants stresses the heap's update/remove/rename plumbing
// directly against a brute-force model.
func TestSlotHeapInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var h slotHeap
	model := make(map[int32]float64) // slot -> key
	const slots = 64
	h.grow(slots)
	for step := 0; step < 20000; step++ {
		slot := int32(rnd.Intn(slots))
		switch rnd.Intn(4) {
		case 0, 1:
			key := float64(rnd.Intn(16)) // small key space forces ties
			h.update(slot, key)
			model[slot] = key
		case 2:
			h.remove(slot)
			delete(model, slot)
		default:
			// rename a random present slot onto a random absent slot
			to := int32(rnd.Intn(slots))
			if _, present := model[to]; present {
				continue
			}
			if _, present := model[slot]; !present {
				continue
			}
			h.rename(slot, to)
			model[to] = model[slot]
			delete(model, slot)
		}
		if h.len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, h.len(), len(model))
		}
	}
	// Verify heap order by draining: root must always be the (key, slot)
	// minimum of the model.
	for len(model) > 0 {
		root := h.order[0]
		for slot, key := range model {
			if key < h.key[root] || (key == h.key[root] && slot < root) {
				t.Fatalf("root %d (key %v) is not the minimum: slot %d key %v", root, h.key[root], slot, key)
			}
		}
		h.remove(root)
		delete(model, root)
	}
}
