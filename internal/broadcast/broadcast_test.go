package broadcast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/oodb"
)

func attrs(n int) []oodb.Item {
	items := make([]oodb.Item, n)
	for i := range items {
		items[i] = oodb.AttrItem(oodb.OID(i), 0)
	}
	return items
}

func TestProgramGeometry(t *testing.T) {
	p := New(attrs(10), network.WirelessBandwidthBps, 0)
	if p.Len() != 10 {
		t.Fatalf("Len = %d", p.Len())
	}
	slotBytes := network.ReplyEntrySize(oodb.AttrItem(0, 0)) + network.HeaderSize
	wantSlot := float64(slotBytes) * 8 / network.WirelessBandwidthBps
	if math.Abs(p.slotDur-wantSlot) > 1e-12 {
		t.Fatalf("slotDur = %v, want %v", p.slotDur, wantSlot)
	}
	if math.Abs(p.Cycle()-10*wantSlot) > 1e-12 {
		t.Fatalf("Cycle = %v", p.Cycle())
	}
	if math.Abs(p.MeanWait()-(p.Cycle()/2+p.slotDur)) > 1e-12 {
		t.Fatalf("MeanWait = %v", p.MeanWait())
	}
}

func TestCovers(t *testing.T) {
	p := New(attrs(3), 19200, 0)
	if !p.Covers(oodb.AttrItem(2, 0)) {
		t.Fatal("program should cover item 2")
	}
	if p.Covers(oodb.AttrItem(9, 0)) || p.Covers(oodb.ObjectItem(0)) {
		t.Fatal("program covers foreign items")
	}
}

func TestNextDeliveryFirstRevolution(t *testing.T) {
	p := New(attrs(4), 19200, 100)
	d := p.slotDur
	// Listening from before the program starts: item 0 completes at
	// start + 1 slot, item 3 at start + 4 slots.
	if got := p.NextDelivery(oodb.AttrItem(0, 0), 0); math.Abs(got-(100+d)) > 1e-9 {
		t.Fatalf("item0 = %v, want %v", got, 100+d)
	}
	if got := p.NextDelivery(oodb.AttrItem(3, 0), 0); math.Abs(got-(100+4*d)) > 1e-9 {
		t.Fatalf("item3 = %v, want %v", got, 100+4*d)
	}
}

func TestNextDeliveryMissedSlot(t *testing.T) {
	p := New(attrs(4), 19200, 0)
	d := p.slotDur
	it := oodb.AttrItem(1, 0) // slot 1: airs [d, 2d), [d+cycle, 2d+cycle)...
	// Tuning in exactly at the slot start catches it.
	if got := p.NextDelivery(it, d); math.Abs(got-2*d) > 1e-9 {
		t.Fatalf("at slot start: %v, want %v", got, 2*d)
	}
	// Tuning in just after the start misses it: next revolution.
	if got := p.NextDelivery(it, d+1e-6); math.Abs(got-(2*d+p.Cycle())) > 1e-9 {
		t.Fatalf("after slot start: %v, want %v", got, 2*d+p.Cycle())
	}
}

func TestNextDeliveryLateRevolutions(t *testing.T) {
	p := New(attrs(5), 19200, 0)
	it := oodb.AttrItem(2, 0)
	now := 1e6
	got := p.NextDelivery(it, now)
	if got < now {
		t.Fatalf("delivery %v before now %v", got, now)
	}
	if got-now > p.Cycle()+p.slotDur {
		t.Fatalf("wait %v exceeds one cycle", got-now)
	}
}

func TestHotAttrItems(t *testing.T) {
	items := HotAttrItems([]oodb.OID{5, 9}, 3)
	if len(items) != 6 {
		t.Fatalf("len = %d", len(items))
	}
	if items[0] != oodb.AttrItem(5, 0) || items[5] != oodb.AttrItem(9, 2) {
		t.Fatalf("items = %v", items)
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { New(nil, 19200, 0) },
		func() { New(attrs(2), 0, 0) },
		func() { New(attrs(2), 19200, -1) },
		func() { New([]oodb.Item{oodb.AttrItem(1, 0), oodb.AttrItem(1, 0)}, 19200, 0) },
		func() { New(attrs(2), 19200, 0).NextDelivery(oodb.AttrItem(7, 3), 0) },
		func() { HotAttrItems([]oodb.OID{1}, 0) },
		func() { HotAttrItems([]oodb.OID{1}, 100) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: NextDelivery is never in the past, waits at most one cycle
// plus one slot, and always lands exactly at a slot boundary for the item.
func TestQuickNextDelivery(t *testing.T) {
	f := func(nRaw uint8, slotRaw uint8, nowRaw uint32) bool {
		n := int(nRaw)%20 + 1
		p := New(attrs(n), 19200, 50)
		it := oodb.AttrItem(oodb.OID(int(slotRaw)%n), 0)
		now := float64(nowRaw) / 16
		got := p.NextDelivery(it, now)
		if got < now {
			return false
		}
		if got-now > p.Cycle()+p.slotDur+1e-9 {
			return false
		}
		// Boundary check in the time domain: got sits k whole cycles past
		// the slot's first airing. The tolerance scales with the magnitude
		// of got — at now ~ 2^28 seconds a float64 slot boundary is only
		// accurate to a few hundred ulps, far coarser than 1e-9 absolute.
		slot := float64(int(slotRaw) % n)
		k := math.Round((got - 50 - (slot+1)*p.slotDur) / p.Cycle())
		boundary := 50 + (slot+1)*p.slotDur + k*p.Cycle()
		tol := 1e-9 * math.Max(1, got)
		return math.Abs(got-boundary) < tol
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
