package experiment

import (
	"fmt"

	"repro/internal/stats"
)

// Replicated aggregates a configuration's metrics across independent
// replications (distinct seeds). The paper reports 4-day averages and
// notes "the standard deviation of our measurements is found to be very
// small, thus yielding very tight confidence intervals"; Replicate makes
// that claim checkable for any configuration.
type Replicated struct {
	Config   Config
	Replicas int

	HitRatio     stats.Summary
	MeanResponse stats.Summary
	ErrorRate    stats.Summary

	Results []Result
}

// Replicate runs cfg under n different seeds (cfg.Seed, cfg.Seed+1, ...)
// and aggregates the three headline metrics. The replicas execute on the
// default worker pool (see Runner); results and summary statistics are
// accumulated in seed order, so the output matches a serial loop exactly.
// It panics if n < 1.
func Replicate(cfg Config, n int) *Replicated {
	if n < 1 {
		panic("experiment: Replicate requires n >= 1")
	}
	rep := &Replicated{Config: Defaults(cfg), Replicas: n}
	cfgs := make([]Config, n)
	for i := 0; i < n; i++ {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + uint64(i)
	}
	for _, res := range (Runner{Workers: defaultWorkers}).RunBatch(cfgs) {
		rep.Results = append(rep.Results, res)
		rep.HitRatio.Add(res.HitRatio)
		rep.MeanResponse.Add(res.MeanResponse)
		rep.ErrorRate.Add(res.ErrorRate)
	}
	return rep
}

// String renders mean ± 95% CI for the three metrics.
func (r *Replicated) String() string {
	return fmt.Sprintf(
		"%s x%d: hit %.1f%%±%.1f  resp %.3fs±%.3f  err %.2f%%±%.2f",
		r.Config, r.Replicas,
		100*r.HitRatio.Mean(), 100*r.HitRatio.CI95(),
		r.MeanResponse.Mean(), r.MeanResponse.CI95(),
		100*r.ErrorRate.Mean(), 100*r.ErrorRate.CI95())
}

// TightCIs reports whether every metric's 95% CI half-width is within the
// given relative fraction of its mean (the paper's "very tight confidence
// intervals" check).
func (r *Replicated) TightCIs(relative float64) bool {
	check := func(s *stats.Summary) bool {
		m := s.Mean()
		if m == 0 {
			return s.CI95() == 0
		}
		return s.CI95() <= relative*m
	}
	return check(&r.HitRatio) && check(&r.MeanResponse) && check(&r.ErrorRate)
}
