// Package client implements the mobile client of §3–§4: an open-loop query
// stream processed against a two-level local hierarchy (a 30-object LRU
// memory buffer over a 400-object storage cache with pluggable
// replacement), with the lease-based coherence check on every access,
// remote round trips over the shared wireless channels for misses, and
// disconnected operation on the local cache.
//
// Queries arrive on the workload's schedule whether or not the previous
// query has completed (the client queues them FIFO); response time is
// measured from scheduled arrival to completion, which is what lets the
// Bursty pattern produce the downlink-backlog response times of
// Experiment #3.
package client

import (
	"sort"

	"repro/internal/broadcast"
	"repro/internal/buffer"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Defaults from §4 / Table 1.
const (
	// DefaultStorageObjects is the storage cache size: 20% of the
	// database, i.e. 400 objects' worth of bytes.
	DefaultStorageObjects = 400
	// DefaultMemBufferObjects is the client memory buffer: 30 objects.
	DefaultMemBufferObjects = 30
)

// Backend is the client's view of whatever answers its requests: a single
// database server (*server.Server) or a federation contact server that
// relays to remote cells (federation.ContactServer).
type Backend interface {
	// Process evaluates one request inside process p.
	Process(p *sim.Proc, req server.Request) server.Reply
	// Oracle exposes the perfect-knowledge error oracle.
	Oracle() *coherence.Oracle
}

// Config parameterizes one mobile client.
type Config struct {
	ID     int
	Kernel *sim.Kernel
	Server Backend
	// Up and Down are the shared wireless channels (queries upstream,
	// results downstream).
	Up, Down *network.Channel
	// Granularity selects NC/AC/OC/HC.
	Granularity core.Granularity
	// Policy is the storage-cache replacement policy; ignored (may be
	// nil) under NC.
	Policy replacement.Policy
	// StorageBytes overrides the storage cache budget when non-zero.
	StorageBytes int
	// MemBufferObjects overrides the memory buffer size when non-zero.
	MemBufferObjects int
	// Gen produces the client's queries; Arrival schedules them.
	Gen     *workload.QueryGen
	Arrival workload.Arrival
	// Schedule holds the client's disconnection windows (nil = always
	// connected).
	Schedule *network.Schedule
	// Metrics receives the measurements (required).
	Metrics *metrics.Client
	// Seed drives the client's random draws.
	Seed uint64
	// Horizon stops query issuing at this virtual time.
	Horizon float64
	// ShedThreshold enables the paper's timeout heuristic (§5.3) when
	// positive: if a reply has queued at the downlink for longer than this
	// many seconds, its prefetched items are shed before delivery.
	ShedThreshold float64
	// Coherence selects the coherence strategy: the paper's adaptive
	// leases (default), the original fixed-duration Leases scheme, or the
	// broadcast invalidation-report baseline. Under the report strategy
	// cached entries never expire on their own; validity is maintained by
	// ApplyInvalidationReport.
	Coherence coherence.Strategy
	// FixedLease is the refresh duration for FixedLeaseStrategy
	// (coherence.DefaultFixedLease if zero).
	FixedLease float64
	// IRWindow is the trailing update window, in seconds, covered by each
	// IR-over-broadcast report (coherence.DefaultIRWindow if zero; used
	// only under IRBroadcastStrategy). A client whose last received report
	// is older than the window cannot bound its staleness and
	// force-revalidates its cache.
	IRWindow float64
	// Tracer receives one record per completed query (nil = no tracing).
	Tracer trace.Tracer
	// UpFaults / DownFaults attach unreliable-channel fault models to the
	// two wireless directions (nil = perfect channel). Attaching either
	// enables the reliability layer: timeout, bounded retransmission with
	// exponential backoff, and graceful degradation to stale cache copies
	// (see retry.go and DESIGN.md §9). With both nil the §4 round-trip
	// flow is untouched.
	UpFaults, DownFaults *network.FaultModel
	// Retry tunes the reliability layer; zero fields select the defaults.
	// Ignored when no fault model is attached.
	Retry RetryConfig
	// Broadcast is an optional push-based dissemination program (§1 of
	// the paper): reads covered by the program are answered from the air
	// instead of the point-to-point channels.
	Broadcast *broadcast.Program
	// DiskBandwidthBps / MemoryBandwidthBps override local storage and
	// memory speeds when non-zero.
	DiskBandwidthBps   float64
	MemoryBandwidthBps float64
}

// Client is one simulated mobile host.
type Client struct {
	id          int
	kernel      *sim.Kernel
	srv         Backend
	oracle      *coherence.Oracle
	up, down    *network.Channel
	granularity core.Granularity

	store  *core.Cache // nil under NC
	membuf *buffer.LRU[oodb.Item, core.Entry]

	gen     *workload.QueryGen
	arrival workload.Arrival
	sched   *network.Schedule
	rnd     *rng.Stream
	m       *metrics.Client
	horizon float64

	shedThreshold float64
	shedItems     uint64
	energyJoules  float64

	coherenceMode coherence.Strategy
	fixedLease    float64
	tracer        trace.Tracer
	bcast         *broadcast.Program
	bcastReads    uint64
	irLastSeq     uint64
	irSynced      bool // whether the client saw the previous report
	irDrops       uint64

	// IR-over-broadcast state (IRBroadcastStrategy): the window each report
	// covers, the time of the last successfully received report, and the
	// scheme's health counters.
	irWindow    float64
	irLastGood  float64
	irbReports  uint64
	irbMissed   uint64
	forcedReval uint64

	// Cooperative lookup state: the client's cell-local peer group (set by
	// SetPeers; nil = cooperation off), its own index in it, how many peers
	// a miss scans, the staged exchange plan, and the hit/miss counters.
	peers          []*Client
	peerSelf       int
	peerScan       int
	peerGot        []peerCopy
	peerProbeBytes int
	peerReplyBytes int
	peerHits       uint64
	peerMisses     uint64

	// Reliability layer (retry.go); active only when a fault model is
	// attached to at least one channel direction.
	upFaults, downFaults *network.FaultModel
	retry                RetryConfig
	retryRnd             *rng.Stream
	replyEstimate        int // running reply-size estimate for the timeout
	retries              uint64
	timeouts             uint64
	degradedReads        uint64

	diskSecPerByte float64
	memSecPerByte  float64

	// Per-query scratch buffers. A client processes one query at a time,
	// so these are reused round after round instead of allocating on every
	// query; each is consumed before the next query starts.
	scratchQuery workload.Query
	scratchNeed  []workload.ReadOp
	scratchAir   []oodb.Item
	scratchBatch []core.BatchEntry
	scratchKept  []server.ReplyItem
	scratchStale []oodb.Item
}

// New builds a client.
func New(cfg Config) *Client {
	if cfg.Kernel == nil || cfg.Server == nil || cfg.Up == nil || cfg.Down == nil {
		panic("client: Config requires Kernel, Server, Up, Down")
	}
	if cfg.Gen == nil || cfg.Arrival == nil || cfg.Metrics == nil {
		panic("client: Config requires Gen, Arrival, Metrics")
	}
	if !cfg.Granularity.Valid() {
		panic("client: invalid granularity")
	}
	if cfg.Horizon <= 0 {
		panic("client: Horizon must be positive")
	}

	storageBytes := cfg.StorageBytes
	if storageBytes == 0 {
		storageBytes = DefaultStorageObjects * core.ItemCost(oodb.ObjectItem(0))
	}
	memObjs := cfg.MemBufferObjects
	if memObjs == 0 {
		memObjs = DefaultMemBufferObjects
	}
	diskBps := cfg.DiskBandwidthBps
	if diskBps == 0 {
		diskBps = network.DiskBandwidthBps
	}
	memBps := cfg.MemoryBandwidthBps
	if memBps == 0 {
		memBps = network.MemoryBandwidthBps
	}

	var store *core.Cache
	if cfg.Granularity != core.NoCache {
		if cfg.Policy == nil {
			panic("client: storage caching requires a replacement policy")
		}
		store = core.NewCache(storageBytes, cfg.Policy)
	}

	// The memory buffer holds `memObjs` objects' worth of items; under
	// attribute granularity the same byte budget fits proportionally more
	// attribute entries.
	memEntries := memObjs
	if cfg.Granularity.UsesAttributeItems() {
		memEntries = memObjs * oodb.ObjectSize / oodb.AttrSize
	}

	sched := cfg.Schedule
	if sched == nil {
		sched = &network.Schedule{}
	}
	fixedLease := cfg.FixedLease
	if fixedLease == 0 {
		fixedLease = coherence.DefaultFixedLease
	}
	if fixedLease < 0 {
		panic("client: FixedLease must be positive")
	}
	irWindow := cfg.IRWindow
	if irWindow == 0 {
		irWindow = coherence.DefaultIRWindow
	}
	if irWindow < 0 {
		panic("client: IRWindow must be positive")
	}

	return &Client{
		id:             cfg.ID,
		kernel:         cfg.Kernel,
		srv:            cfg.Server,
		oracle:         cfg.Server.Oracle(),
		up:             cfg.Up,
		down:           cfg.Down,
		granularity:    cfg.Granularity,
		store:          store,
		membuf:         buffer.NewLRU[oodb.Item, core.Entry](memEntries),
		gen:            cfg.Gen,
		arrival:        cfg.Arrival,
		sched:          sched,
		rnd:            rng.Derive(cfg.Seed, 0xc11e47+uint64(cfg.ID)),
		m:              cfg.Metrics,
		horizon:        cfg.Horizon,
		shedThreshold:  cfg.ShedThreshold,
		coherenceMode:  cfg.Coherence,
		fixedLease:     fixedLease,
		irWindow:       irWindow,
		tracer:         cfg.Tracer,
		bcast:          cfg.Broadcast,
		upFaults:       cfg.UpFaults,
		downFaults:     cfg.DownFaults,
		retry:          cfg.Retry.withDefaults(),
		retryRnd:       rng.Derive(cfg.Seed, 0x4e7247+uint64(cfg.ID)),
		replyEstimate:  DefaultReplyEstimateBytes,
		diskSecPerByte: 8 / diskBps,
		memSecPerByte:  8 / memBps,
	}
}

// Start spawns the client's simulation process.
func (c *Client) Start() *sim.Proc {
	return c.kernel.Spawn(c.name(), c.run)
}

func (c *Client) name() string { return "client" }

// run is the client's open-loop query pump.
func (c *Client) run(p *sim.Proc) {
	scheduled := 0.0
	for {
		scheduled = c.arrival.Next(c.rnd, scheduled)
		if scheduled >= c.horizon {
			return
		}
		if p.Now() < scheduled {
			p.HoldUntil(scheduled)
		}
		c.gen.NextInto(c.rnd, &c.scratchQuery)
		c.processQuery(p, &c.scratchQuery, scheduled)
	}
}

// Store exposes the storage cache (nil under NC) for diagnostics.
func (c *Client) Store() *core.Cache { return c.store }

// Register wires the client's cache health and radio cost into an
// observability registry under the given series prefix: storage-cache
// occupancy (bytes and fraction of capacity), cumulative evictions and
// insertions under the client's replacement policy, the fraction of cached
// items still inside their lease, and radio energy. Under NC (no storage
// cache) only the energy gauge is registered. No-op on a disabled registry.
func (c *Client) Register(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge(prefix+".energy_j", func() float64 { return c.energyJoules })
	if c.coherenceMode == coherence.IRBroadcastStrategy {
		reg.Gauge(prefix+".ir_reports", func() float64 { return float64(c.irbReports) })
		reg.Gauge(prefix+".ir_missed", func() float64 { return float64(c.irbMissed) })
		reg.Gauge(prefix+".forced_reval", func() float64 { return float64(c.forcedReval) })
	}
	if c.peerScan > 0 {
		reg.Gauge(prefix+".peer_hits", func() float64 { return float64(c.peerHits) })
		reg.Gauge(prefix+".peer_misses", func() float64 { return float64(c.peerMisses) })
	}
	if c.store == nil {
		return
	}
	reg.Gauge(prefix+".cache_bytes", func() float64 { return float64(c.store.UsedBytes()) })
	reg.Gauge(prefix+".cache_occupancy", func() float64 {
		return float64(c.store.UsedBytes()) / float64(c.store.CapacityBytes())
	})
	reg.Gauge(prefix+".cache_items", func() float64 { return float64(c.store.Len()) })
	reg.Gauge(prefix+".evictions", func() float64 { return float64(c.store.Evictions()) })
	reg.Gauge(prefix+".insertions", func() float64 { return float64(c.store.Insertions()) })
	reg.Gauge(prefix+".valid_fraction", func() float64 {
		return c.store.ValidFraction(c.kernel.Now())
	})
}

// ShedItems reports how many prefetched items were shed by the timeout
// heuristic.
func (c *Client) ShedItems() uint64 { return c.shedItems }

// RadioEnergy reports the Joules this client's radio spent transmitting
// requests and receiving replies — the battery cost §2 of the paper
// motivates caching with.
func (c *Client) RadioEnergy() float64 { return c.energyJoules }

// CacheDrops reports how many times the client discarded its whole cache
// after missing invalidation reports.
func (c *Client) CacheDrops() uint64 { return c.irDrops }

// ApplyInvalidationReport delivers broadcast report number seq to the
// client (invalidation-report coherence only). A client that saw the
// previous report invalidates exactly the items whose base versions
// changed; a client that missed one or more reports cannot tell which of
// its items are stale and drops its entire cache — the failure mode that
// motivates the paper's pull-based leases (§2).
//
// The harness must call this only while the client is connected.
func (c *Client) ApplyInvalidationReport(now float64, seq uint64) {
	if c.coherenceMode != coherence.InvalidationReportStrategy {
		panic("client: invalidation report delivered to a lease-coherence client")
	}
	contiguous := c.irSynced && seq == c.irLastSeq+1
	first := !c.irSynced
	c.irLastSeq = seq
	c.irSynced = true
	if first {
		contiguous = true // an empty cache has nothing to miss
	}
	if !contiguous {
		if c.store != nil {
			c.store.Clear()
		}
		c.membuf.Clear()
		c.irDrops++
		return
	}
	// Incremental invalidation: drop exactly the changed items. ForEach
	// walks a map in random order, and removal order shapes the replacement
	// policy's internal scan positions (hence future tie-breaks), so the
	// stale set is sorted into a canonical order before removal to keep
	// whole runs reproducible.
	if c.store != nil {
		stale := c.scratchStale[:0]
		c.store.ForEach(func(it oodb.Item, e *core.Entry) bool {
			if c.oracle.IsError(it, e.Version) {
				stale = append(stale, it)
			}
			return true
		})
		sort.Slice(stale, func(i, j int) bool {
			if stale[i].OID != stale[j].OID {
				return stale[i].OID < stale[j].OID
			}
			return stale[i].Attr < stale[j].Attr
		})
		for _, it := range stale {
			c.store.Remove(it)
		}
		c.scratchStale = stale[:0]
	}
	for _, it := range c.membuf.Keys() {
		if e, ok := c.membuf.Peek(it); ok && c.oracle.IsError(it, e.Version) {
			c.membuf.Remove(it)
		}
	}
}

// MemBuffer exposes the memory buffer for diagnostics.
func (c *Client) MemBuffer() *buffer.LRU[oodb.Item, core.Entry] { return c.membuf }

// processQuery runs one query end to end. q aliases the client's query
// scratch and is only valid for the duration of the call.
func (c *Client) processQuery(p *sim.Proc, q *workload.Query, issuedAt float64) {
	connected := c.sched.Connected(p.Now())
	need := c.scratchNeed[:0]
	existent := 0

	rec := trace.QueryRecord{
		ClientID:     c.id,
		Index:        q.Index,
		IssuedAt:     issuedAt,
		Reads:        len(q.Reads),
		Disconnected: !connected,
	}

	localDelay := 0.0
	for _, rd := range q.Reads {
		item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
		entry, state, delay := c.probeLocal(p.Now(), item)
		localDelay += delay
		now := p.Now()
		switch {
		case state == core.Hit:
			// Served by a locally unexpired item: a cache hit. The read
			// may still be erroneous if a write landed inside the lease.
			isErr := c.oracle.IsError(item, entry.Version)
			c.m.RecordAccess(now, true)
			c.m.RecordError(now, isErr)
			existent++
			rec.Hits++
			if isErr {
				rec.Errors++
			}
		case state == core.Stale && !connected:
			// Disconnected operation (§5.6): continue on the expired
			// copy. Not a hit (the item is expired), frequently an error.
			isErr := c.oracle.IsError(item, entry.Version)
			c.m.RecordAccess(now, false)
			c.m.RecordError(now, isErr)
			rec.Stale++
			if isErr {
				rec.Errors++
			}
		case !connected:
			// Disconnected miss: the read is unsatisfiable.
			c.m.RecordAccess(now, false)
			c.m.RecordUnavailable(now)
			rec.Unavailable++
		default:
			// Connected miss or expired copy: fetch from the server.
			need = append(need, rd)
		}
	}

	// Local accesses are microseconds each; charge them in one hold so the
	// kernel dispatches one event per query instead of one per read.
	if localDelay > 0 {
		p.Hold(localDelay)
	}

	// Reads covered by the broadcast program are answered from the air;
	// only the rest go point-to-point.
	fromAir := c.scratchAir[:0]
	if c.bcast != nil && connected {
		pull := need[:0] // in-place filter: pull lags the read cursor
		for _, rd := range need {
			item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
			if c.bcast.Covers(item) {
				if !containsItem(fromAir, item) {
					fromAir = append(fromAir, item)
				}
				c.bcastReads++
				c.m.RecordAccess(p.Now(), false)
				c.m.RecordError(p.Now(), false)
				continue
			}
			pull = append(pull, rd)
		}
		need = pull
	}

	// Cooperative lookup: ask cell peers for valid copies before paying
	// the server round trip.
	peerRadio := false
	if c.peerScan > 0 && connected && len(need) > 0 {
		need, peerRadio = c.fetchFromPeers(p, need, &rec)
	}

	remote := connected && len(need) > 0
	if remote {
		if c.faulted() {
			var retries int
			var delivered bool
			rec.RequestBytes, rec.ReplyBytes, retries, delivered =
				c.fetchRemoteFaulty(p, q, need, existent)
			rec.Retries = retries
			if !delivered {
				rec.TimedOut = true
				c.serveDegraded(p.Now(), need, &rec)
			}
		} else {
			rec.RequestBytes, rec.ReplyBytes = c.fetchRemote(p, q, need, existent)
		}
	}
	if len(fromAir) > 0 {
		c.receiveBroadcast(p, fromAir)
	}
	// Hand the (possibly grown) scratch backing arrays back for reuse.
	c.scratchNeed = need[:0]
	c.scratchAir = fromAir[:0]

	rec.Remote = remote || len(fromAir) > 0 || peerRadio
	rec.CompletedAt = p.Now()
	c.m.RecordQuery(issuedAt, p.Now(), remote, !connected)
	if c.tracer != nil {
		c.tracer.Query(rec)
	}
}

// receiveBroadcast waits for each item's next slot on the broadcast
// channel (in delivery order, so the total wait is at most one revolution)
// and caches the copies. A broadcast copy is valid for one cycle: the next
// revolution would refresh it.
func (c *Client) receiveBroadcast(p *sim.Proc, items []oodb.Item) {
	sort.Slice(items, func(i, j int) bool {
		return c.bcast.NextDelivery(items[i], p.Now()) < c.bcast.NextDelivery(items[j], p.Now())
	})
	for _, item := range items {
		p.HoldUntil(c.bcast.NextDelivery(item, p.Now()))
		c.energyJoules += network.RxEnergy(c.bcast.SlotBytes())
		entry := core.Entry{
			Version:   c.oracle.CurrentVersion(item),
			ExpiresAt: p.Now() + c.bcast.Cycle(),
			FetchedAt: p.Now(),
		}
		if reportCoherence(c.coherenceMode) {
			entry.ExpiresAt = coherence.NoExpiry
		}
		if c.store != nil {
			c.store.Insert(item, entry, p.Now())
		}
		c.membuf.Put(item, entry)
	}
}

// reportCoherence reports whether the strategy maintains validity through
// invalidation reports (cached entries carry no lease of their own).
func reportCoherence(s coherence.Strategy) bool {
	return s == coherence.InvalidationReportStrategy || s == coherence.IRBroadcastStrategy
}

// BroadcastReads reports how many reads were answered from the broadcast
// channel.
func (c *Client) BroadcastReads() uint64 { return c.bcastReads }

// probeLocal checks the memory buffer and storage cache for item, returning
// the local access delay to charge and promoting storage hits into the
// memory buffer.
func (c *Client) probeLocal(now float64, item oodb.Item) (core.Entry, core.LookupState, float64) {
	if c.store != nil {
		if e, st := c.store.Lookup(item, now); st != core.Miss {
			if _, inMem := c.membuf.Get(item); inMem {
				return *e, st, c.memSecPerByte * float64(item.Size())
			}
			c.membuf.Put(item, *e)
			return *e, st, c.diskSecPerByte * float64(item.Size())
		}
	}
	// Memory-only copy: NC, or an item evicted from storage whose memory
	// copy survives.
	if e, ok := c.membuf.Get(item); ok {
		st := core.Stale
		if e.ValidAt(now) {
			st = core.Hit
		}
		return e, st, c.memSecPerByte * float64(item.Size())
	}
	return core.Entry{}, core.Miss, 0
}

// containsItem reports whether items holds it; the slices involved are a
// handful of entries, where a linear scan beats allocating a set.
func containsItem(items []oodb.Item, it oodb.Item) bool {
	for _, x := range items {
		if x == it {
			return true
		}
	}
	return false
}

// fetchRemote performs the round trip: existent list upstream, server
// processing, reply downstream, then caches the returned items. It returns
// the request and reply wire sizes for tracing.
func (c *Client) fetchRemote(p *sim.Proc, q *workload.Query, need []workload.ReadOp, existent int) (reqBytes, replyBytes int) {
	req := server.Request{
		ClientID:        c.id,
		Granularity:     c.granularity,
		Accesses:        q.Reads,
		Need:            need,
		ExistentEntries: existent,
	}
	reqBytes = req.WireSize()
	c.up.Send(p, reqBytes)
	c.energyJoules += network.TxEnergy(reqBytes)
	reply := c.srv.Process(p, req)

	// Deliver the reply over the shared downlink. With the timeout
	// heuristic enabled, a reply that queued beyond the threshold sheds
	// its prefetched items at delivery time, shortening the transfer the
	// whole cell is waiting behind.
	items := reply.Items
	c.down.SendDeferred(p, func(waited float64) int {
		if c.shedThreshold > 0 && waited > c.shedThreshold {
			kept := c.scratchKept[:0]
			for _, it := range items {
				if !it.Prefetched {
					kept = append(kept, it)
				}
			}
			c.shedItems += uint64(len(items) - len(kept))
			c.scratchKept = kept
			items = kept
		}
		replyBytes = server.WireSizeItems(items)
		c.energyJoules += network.RxEnergy(replyBytes)
		return replyBytes
	})

	c.installReply(p.Now(), need, items)
	return reqBytes, replyBytes
}

// installReply caches a delivered reply's items and records the served
// reads. Shared by the perfect-channel and reliability-layer round trips on
// both execution engines (hence the plain timestamp instead of a process).
func (c *Client) installReply(now float64, need []workload.ReadOp, items []server.ReplyItem) {
	batch := c.scratchBatch[:0]
	for _, item := range items {
		entry := core.Entry{
			Version:   item.Version,
			ExpiresAt: now + item.Refresh,
			FetchedAt: now,
		}
		switch c.coherenceMode {
		case coherence.InvalidationReportStrategy, coherence.IRBroadcastStrategy:
			// Validity is maintained by broadcast reports, not leases.
			entry.ExpiresAt = coherence.NoExpiry
		case coherence.FixedLeaseStrategy:
			// The original Leases scheme: one duration for every item.
			entry.ExpiresAt = now + c.fixedLease
		}
		batch = append(batch, core.BatchEntry{Item: item.Item, Entry: entry})
		// Requested items land in the memory buffer (they were just
		// consumed); prefetched extras only occupy storage so they do not
		// flush the small buffer.
		if !item.Prefetched {
			c.membuf.Put(item.Item, entry)
		}
	}
	if c.store != nil {
		c.store.InsertBatch(batch, now)
	}
	c.scratchBatch = batch[:0]

	// Remote reads are served fresh: accesses that are neither hits nor
	// errors.
	for range need {
		c.m.RecordAccess(now, false)
		c.m.RecordError(now, false)
	}
}
