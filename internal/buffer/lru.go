// Package buffer provides the LRU memory buffers used at the server and at
// each mobile client.
//
// §4 of the paper: "LRU is employed for buffer management at the server and
// the clients since memory buffer replacement is implemented by the
// operating system." The server buffer holds 500 objects (25% of the
// database); each client memory buffer holds 30 objects. Storage caching at
// clients uses the pluggable policies in internal/replacement instead.
package buffer

// LRU is a fixed-capacity least-recently-used cache over comparable keys.
// Values travel with the keys so callers can attach metadata (versions,
// expiry). The zero value is not usable; construct with NewLRU.
type LRU[K comparable, V any] struct {
	capacity int
	entries  map[K]*node[K, V]
	head     *node[K, V] // most recently used
	tail     *node[K, V] // least recently used
	spare    *node[K, V] // last evicted/removed node, recycled by Put

	hits   uint64
	misses uint64
}

type node[K comparable, V any] struct {
	key        K
	value      V
	prev, next *node[K, V]
}

// NewLRU returns an empty cache holding at most capacity entries.
// It panics if capacity <= 0.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("buffer: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*node[K, V], capacity),
	}
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return len(l.entries) }

// Capacity returns the maximum number of entries.
func (l *LRU[K, V]) Capacity() int { return l.capacity }

// Get looks up key, promoting it to most-recently-used on a hit.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	if n, ok := l.entries[key]; ok {
		l.hits++
		l.moveToFront(n)
		return n.value, true
	}
	l.misses++
	var zero V
	return zero, false
}

// Peek looks up key without promoting it and without touching hit counters.
func (l *LRU[K, V]) Peek(key K) (V, bool) {
	if n, ok := l.entries[key]; ok {
		return n.value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without promotion.
func (l *LRU[K, V]) Contains(key K) bool {
	_, ok := l.entries[key]
	return ok
}

// Put inserts or updates key, promoting it to most-recently-used. If the
// cache overflows, the least-recently-used entry is evicted and returned
// with evicted=true.
func (l *LRU[K, V]) Put(key K, value V) (evictedKey K, evictedValue V, evicted bool) {
	if n, ok := l.entries[key]; ok {
		n.value = value
		l.moveToFront(n)
		return evictedKey, evictedValue, false
	}
	n := l.spare
	if n != nil {
		l.spare = nil
		n.key, n.value = key, value
	} else {
		n = &node[K, V]{key: key, value: value}
	}
	l.entries[key] = n
	l.pushFront(n)
	if len(l.entries) > l.capacity {
		victim := l.tail
		l.unlink(victim)
		delete(l.entries, victim.key)
		evictedKey, evictedValue = victim.key, victim.value
		l.recycle(victim)
		return evictedKey, evictedValue, true
	}
	return evictedKey, evictedValue, false
}

// Remove deletes key if present, reporting whether it was cached.
func (l *LRU[K, V]) Remove(key K) bool {
	n, ok := l.entries[key]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.entries, key)
	l.recycle(n)
	return true
}

// recycle stashes n for reuse by the next insert, dropping any references
// held through its key/value so they do not outlive the entry.
func (l *LRU[K, V]) recycle(n *node[K, V]) {
	var zeroK K
	var zeroV V
	n.key, n.value = zeroK, zeroV
	l.spare = n
}

// Oldest returns the least-recently-used key without removing it.
func (l *LRU[K, V]) Oldest() (K, bool) {
	if l.tail == nil {
		var zero K
		return zero, false
	}
	return l.tail.key, true
}

// Newest returns the most-recently-used key without removing it.
func (l *LRU[K, V]) Newest() (K, bool) {
	if l.head == nil {
		var zero K
		return zero, false
	}
	return l.head.key, true
}

// Keys returns all keys ordered from most to least recently used.
func (l *LRU[K, V]) Keys() []K {
	keys := make([]K, 0, len(l.entries))
	for n := l.head; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

// Clear removes all entries, preserving hit/miss counters.
func (l *LRU[K, V]) Clear() {
	l.entries = make(map[K]*node[K, V], l.capacity)
	l.head, l.tail, l.spare = nil, nil, nil
}

// HitRatio returns hits/(hits+misses) over all Get calls (0 when none).
func (l *LRU[K, V]) HitRatio() float64 {
	total := l.hits + l.misses
	if total == 0 {
		return 0
	}
	return float64(l.hits) / float64(total)
}

// Hits returns the number of Get hits.
func (l *LRU[K, V]) Hits() uint64 { return l.hits }

// Misses returns the number of Get misses.
func (l *LRU[K, V]) Misses() uint64 { return l.misses }

func (l *LRU[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU[K, V]) moveToFront(n *node[K, V]) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
