package replacement

// This file is the shared victim-selection engine behind the optimized
// replacement policies: a slot table holding item state in flat value
// slices, plus slot-keyed binary min-heaps walked by a bound-pruned search
// that reproduces the reference scan's victim choice — including its
// tie-breaking by scan position — without visiting every resident item.
//
// Correctness contract (differentially tested against the retained
// scanCore reference in differential_test.go):
//
//   - Each policy partitions its slots into one or more classes and stores,
//     per slot, a float64 heap key whose ascending order weakly refines the
//     class's descending badness: key(a) < key(b) must imply
//     badness(a, now) >= badness(b, now) for every query time now, under
//     the exact floating-point evaluation the reference uses. Keys never
//     have to *determine* the badness order — equal keys are always
//     tie-visited — so lossy but monotone algebraic rearrangements are
//     safe key choices.
//   - classScorer.bound(key, now) upper-bounds the badness of every slot in
//     the class whose key is >= the argument, and is monotone non-increasing
//     in key; inexact bounds must build their own safety padding in (they
//     are compared against the running best with no extra slack). The
//     search walks the heap from the root and prunes a subtree exactly when
//     its root's bound falls strictly below the current best, so bound ties
//     are always visited.
//   - Visited slots are scored with classScorer.eval, which evaluates the
//     *exact* reference badness formula (states.go), so candidates are
//     compared by reference semantics even where keys or bounds are
//     approximate.
//   - Badness ties resolve exactly like the reference scan: the smallest
//     slot index wins a Victim search, and bulk Victims selection uses the
//     reference's (score desc, slot asc) total order. Slot indices evolve
//     exactly like scanCore's scan positions — removal swap-moves the last
//     slot into the hole — so tie-breaks stay aligned between the two
//     implementations.

import (
	"math"

	"repro/internal/oodb"
)

// slotTable tracks items and their per-item state in flat parallel slices
// ([]S values, not []*S pointers), indexed by a map for O(1) lookup.
type slotTable[S any] struct {
	items  []oodb.Item
	states []S
	index  map[oodb.Item]int32
}

func newSlotTable[S any]() slotTable[S] {
	return slotTable[S]{index: make(map[oodb.Item]int32)}
}

func (t *slotTable[S]) len() int { return len(t.items) }

func (t *slotTable[S]) lookup(it oodb.Item) (int32, bool) {
	slot, ok := t.index[it]
	return slot, ok
}

// add tracks a new item, returning its slot; ok is false (and the table
// unchanged) when the item is already tracked.
func (t *slotTable[S]) add(it oodb.Item, s S) (int32, bool) {
	if _, ok := t.index[it]; ok {
		return 0, false
	}
	slot := int32(len(t.items))
	t.index[it] = slot
	t.items = append(t.items, it)
	t.states = append(t.states, s)
	return slot, true
}

// remove untracks the item in slot by moving the last slot into the hole
// (scanCore's swap-remove, so slot order keeps matching the reference
// scan's positions). It returns the old slot id of the moved item, or -1.
func (t *slotTable[S]) remove(slot int32) (moved int32) {
	it := t.items[slot]
	last := int32(len(t.items) - 1)
	moved = -1
	if slot != last {
		t.items[slot] = t.items[last]
		t.states[slot] = t.states[last]
		t.index[t.items[slot]] = slot
		moved = last
	}
	var zero S
	t.items = t.items[:last]
	t.states[last] = zero
	t.states = t.states[:last]
	delete(t.index, it)
	return moved
}

// slotHeap is a binary min-heap over slot ids with cached float64 keys,
// tie-broken by ascending slot id. pos and key are dense arrays indexed by
// slot id (grown via grow); a slot may be absent (pos < 0), which lets a
// policy spread its slots across several class heaps sharing one id space.
type slotHeap struct {
	order []int32   // heap array of slot ids
	pos   []int32   // slot id -> position in order, or -1
	key   []float64 // slot id -> cached key
}

func (h *slotHeap) len() int { return len(h.order) }

// grow makes room for slot ids < n.
func (h *slotHeap) grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
		h.key = append(h.key, 0)
	}
}

func (h *slotHeap) contains(slot int32) bool { return h.pos[slot] >= 0 }

func (h *slotHeap) less(a, b int32) bool {
	ka, kb := h.key[a], h.key[b]
	return ka < kb || (ka == kb && a < b)
}

func (h *slotHeap) push(slot int32, key float64) {
	h.key[slot] = key
	h.pos[slot] = int32(len(h.order))
	h.order = append(h.order, slot)
	h.siftUp(h.pos[slot])
}

// update rewrites slot's key, pushing the slot if absent.
func (h *slotHeap) update(slot int32, key float64) {
	i := h.pos[slot]
	if i < 0 {
		h.push(slot, key)
		return
	}
	old := h.key[slot]
	h.key[slot] = key
	if key < old {
		h.siftUp(i)
	} else if key > old {
		h.siftDown(i)
	}
}

// remove drops slot from the heap; absent slots are a no-op so policies can
// blindly clear a slot from every class heap.
func (h *slotHeap) remove(slot int32) {
	i := h.pos[slot]
	if i < 0 {
		return
	}
	h.pos[slot] = -1
	last := int32(len(h.order) - 1)
	if i == last {
		h.order = h.order[:last]
		return
	}
	movedSlot := h.order[last]
	h.order[i] = movedSlot
	h.pos[movedSlot] = i
	h.order = h.order[:last]
	h.siftDown(i)
	h.siftUp(h.pos[movedSlot])
}

// rename re-labels slot id from as to (the slot table swap-moved an item
// into a freed slot). The key is unchanged but the slot tie-break changes,
// so the entry is re-sifted in both directions. Absent slots are a no-op.
func (h *slotHeap) rename(from, to int32) {
	i := h.pos[from]
	if i < 0 {
		return
	}
	h.pos[from] = -1
	h.key[to] = h.key[from]
	h.pos[to] = i
	h.order[i] = to
	h.siftUp(i)
	h.siftDown(h.pos[to])
}

func (h *slotHeap) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.order[i], h.order[parent]) {
			return
		}
		h.order[i], h.order[parent] = h.order[parent], h.order[i]
		h.pos[h.order[i]] = i
		h.pos[h.order[parent]] = parent
		i = parent
	}
}

func (h *slotHeap) siftDown(i int32) {
	n := int32(len(h.order))
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.order[l], h.order[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.order[r], h.order[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.order[i], h.order[smallest] = h.order[smallest], h.order[i]
		h.pos[h.order[i]] = i
		h.pos[h.order[smallest]] = smallest
		i = smallest
	}
}

// classScorer evaluates one class heap during a victim search. Implemented
// by small per-class wrapper structs holding the policy pointer, built once
// at construction so searches allocate nothing.
type classScorer interface {
	// bound returns an upper bound on the reference badness of every slot
	// in this class whose heap key is at least key; it must be monotone
	// non-increasing in key. Inexact bounds must include their own padding
	// for float rearrangement error.
	bound(key, now float64) float64
	// cutoff inverts bound into key space: it returns a key threshold such
	// that bound(key, now) >= best implies key <= cutoff(now, best). The
	// search prunes subtrees by comparing cached keys against the cutoff —
	// one float compare per node instead of re-deriving the bound — and
	// recomputes the cutoff only when the running best improves. A cutoff
	// may be loose upward (visiting extra slots is just slower), never
	// tight downward; inexact inversions pad with padCutoff.
	cutoff(now, best float64) float64
	// eval returns the exact reference badness of slot at time now (it may
	// lazily age the slot's state, like the reference scan does).
	eval(slot int32, now float64) float64
}

// padCutoff nudges a bound-inversion result upward by a relative margin
// (~4000 ulps over the magnitudes involved) so float rounding can only
// widen the visited set, never narrow it past a slot whose bound still
// reaches best.
func padCutoff(c, now, best float64) float64 {
	return c + 1e-12*(math.Abs(now)+math.Abs(best)+math.Abs(c)) + 1e-300
}

// victimSearch accumulates the best candidate across class heaps,
// replicating the reference scan's "strictly greater badness wins, ties
// keep the earliest scan position" rule.
type victimSearch struct {
	slot  int32
	score float64
	found bool
}

func (vs *victimSearch) offer(slot int32, score float64) {
	if !vs.found || score > vs.score || (score == vs.score && slot < vs.slot) {
		vs.slot, vs.score, vs.found = slot, score, true
	}
}

// searchOne finds the class's contribution to the victim search. It walks
// the heap from the root, pruning a subtree when its root's key exceeds the
// cutoff derived from the running best (keys at the cutoff are always
// visited, preserving reference tie-breaks). The cutoff is recomputed only
// when the best improves, so the per-node prune test is a single float
// compare. stack is caller-owned scratch, returned for reuse.
//
// When a DFS ends up visiting most of the class anyway (heavy score ties —
// e.g. LRD before any item has aged past an interval — leave nothing to
// prune), the per-node stack and key-compare overhead makes the walk
// strictly worse than a flat sweep over the same slots. searchOne detects
// that and switches the next few searches to sweepOne, re-probing with a
// DFS afterwards in case the regime changed. Both paths score every
// candidate with the same exact eval under the same total order
// (score desc, slot asc), so the adaptive switch can never change which
// victim is selected — it only changes how many slots are visited.
func (ch *classHeap) searchOne(now float64, vs *victimSearch, stack []int32) []int32 {
	h := &ch.heap
	n := int32(len(h.order))
	if n == 0 {
		return stack
	}
	if ch.sweepBias > 0 {
		ch.sweepBias--
		ch.sweepOne(now, vs)
		return stack
	}
	sc := ch.sc
	cut := math.Inf(1)
	if vs.found {
		cut = sc.cutoff(now, vs.score)
	}
	visited := int32(0)
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		slot := h.order[i]
		if h.key[slot] > cut {
			continue // no slot in this subtree can beat the current best
		}
		visited++
		prevFound, prevScore := vs.found, vs.score
		vs.offer(slot, sc.eval(slot, now))
		if !prevFound || vs.score > prevScore {
			cut = sc.cutoff(now, vs.score)
		}
		if l := 2*i + 1; l < n {
			stack = append(stack, l)
			if r := l + 1; r < n {
				stack = append(stack, r)
			}
		}
	}
	if visited*2 >= n {
		ch.sweepBias = sweepRun
	}
	return stack
}

// sweepRun is how many searches run as flat sweeps after a DFS failed to
// prune half the class, before the next DFS probe. High enough to amortize
// the probe's overhead, low enough to notice quickly when pruning starts
// working again.
const sweepRun = 15

// sweepOne is the tie-heavy fallback: a flat pass over the class's dense
// slot array, scoring every slot with the same exact eval as the DFS.
func (ch *classHeap) sweepOne(now float64, vs *victimSearch) {
	sc := ch.sc
	for _, slot := range ch.heap.order {
		vs.offer(slot, sc.eval(slot, now))
	}
}

// victimCand is one entry of the bulk-selection heap.
type victimCand struct {
	slot  int32
	score float64
}

// candWeaker reports whether a is strictly weaker than b (evicted later)
// under the reference's total order: score descending, slot ascending.
func candWeaker(a, b victimCand) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.slot > b.slot
}

// selectWorst accumulates the n worst slots under the reference total
// order; the root of cands is the weakest retained candidate. Because the
// order is total (slot ids are unique), the selected set — and hence the
// extraction order — is independent of visit order, so a heap DFS selects
// exactly what the reference's slot-order scan selects.
type selectWorst struct {
	cands []victimCand
	n     int
}

func (sw *selectWorst) offer(c victimCand) {
	if len(sw.cands) < sw.n {
		sw.cands = append(sw.cands, c)
		i := len(sw.cands) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !candWeaker(sw.cands[i], sw.cands[p]) {
				break
			}
			sw.cands[i], sw.cands[p] = sw.cands[p], sw.cands[i]
			i = p
		}
		return
	}
	if !candWeaker(sw.cands[0], c) {
		return
	}
	sw.cands[0] = c
	sw.siftDown(0)
}

func (sw *selectWorst) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(sw.cands) && candWeaker(sw.cands[l], sw.cands[smallest]) {
			smallest = l
		}
		if r < len(sw.cands) && candWeaker(sw.cands[r], sw.cands[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		sw.cands[i], sw.cands[smallest] = sw.cands[smallest], sw.cands[i]
		i = smallest
	}
}

// searchN is searchOne's bulk variant: it prunes a subtree only when the
// selection heap is full and the subtree's keys are past the cutoff of the
// weakest retained candidate.
func searchN(h *slotHeap, sc classScorer, now float64, sw *selectWorst, stack []int32) []int32 {
	n := int32(len(h.order))
	if n == 0 {
		return stack
	}
	cut := math.Inf(1)
	weakest := math.Inf(1)
	if len(sw.cands) == sw.n {
		weakest = sw.cands[0].score
		cut = sc.cutoff(now, weakest)
	}
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		slot := h.order[i]
		if h.key[slot] > cut {
			continue
		}
		sw.offer(victimCand{slot: slot, score: sc.eval(slot, now)})
		if len(sw.cands) == sw.n && sw.cands[0].score != weakest {
			weakest = sw.cands[0].score
			cut = sc.cutoff(now, weakest)
		}
		if l := 2*i + 1; l < n {
			stack = append(stack, l)
			if r := l + 1; r < n {
				stack = append(stack, r)
			}
		}
	}
	return stack
}

// extractInto pops the selection heap weakest-first into out back-to-front,
// yielding the reference's worst-first ordering. len(out) == len(sw.cands).
func (sw *selectWorst) extractInto(items []oodb.Item, out []oodb.Item) {
	for i := len(sw.cands) - 1; i >= 0; i-- {
		out[i] = items[sw.cands[0].slot]
		last := len(sw.cands) - 1
		sw.cands[0] = sw.cands[last]
		sw.cands = sw.cands[:last]
		sw.siftDown(0)
	}
}

// classHeap pairs one class's heap with its scorer, plus the adaptive
// search state: sweepBias counts how many upcoming searches should use the
// flat sweep instead of the DFS (see searchOne).
type classHeap struct {
	heap      slotHeap
	sc        classScorer
	sweepBias int32
}

// victimCore bundles the slot table, class heaps and search scratch shared
// by the optimized policies. Policies embed it and wire classes at
// construction time.
type victimCore[S any] struct {
	t       slotTable[S]
	classes []classHeap
	stack   []int32
	cands   []victimCand
}

// grow sizes every class heap's dense arrays to the table.
func (c *victimCore[S]) grow() {
	n := len(c.t.items)
	for i := range c.classes {
		c.classes[i].heap.grow(n)
	}
}

// victim returns the single worst item across all classes.
func (c *victimCore[S]) victim(now float64) (oodb.Item, bool) {
	if len(c.t.items) == 0 {
		return oodb.Item{}, false
	}
	var vs victimSearch
	for i := range c.classes {
		c.stack = c.classes[i].searchOne(now, &vs, c.stack)
	}
	return c.t.items[vs.slot], true
}

// victims returns up to n items ordered worst-first.
func (c *victimCore[S]) victims(now float64, n int) []oodb.Item {
	if n <= 0 || len(c.t.items) == 0 {
		return nil
	}
	if n == 1 {
		it, _ := c.victim(now)
		return []oodb.Item{it}
	}
	if n > len(c.t.items) {
		n = len(c.t.items)
	}
	sw := selectWorst{cands: c.cands[:0], n: n}
	for i := range c.classes {
		ch := &c.classes[i]
		c.stack = searchN(&ch.heap, ch.sc, now, &sw, c.stack)
	}
	out := make([]oodb.Item, len(sw.cands))
	sw.extractInto(c.t.items, out)
	c.cands = sw.cands[:0]
	return out
}

// removeSlot untracks a slot from every class heap and the table, keeping
// heap slot labels aligned with the table's swap-move.
func (c *victimCore[S]) removeSlot(slot int32) {
	for i := range c.classes {
		c.classes[i].heap.remove(slot)
	}
	if moved := c.t.remove(slot); moved >= 0 {
		for i := range c.classes {
			c.classes[i].heap.rename(moved, slot)
		}
	}
}
