package experiment

import (
	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/workload"
)

// OptimalBound replays each client's exact reference stream (the same
// seeded arrival and query draws Run would produce) against Belady's MIN
// and returns the clairvoyant upper bound on the storage-cache hit ratio.
//
// The bound ignores coherence (no lease expiry forces a refetch), the
// memory buffer, and network feedback, so it bounds from above what any
// replacement policy in internal/replacement can achieve for the
// configuration — the headroom metric for Experiments #2–#4.
func OptimalBound(cfg Config) float64 {
	cfg = Defaults(cfg)
	if cfg.Granularity == core.NoCache {
		panic("experiment: OptimalBound needs a storage-caching granularity")
	}
	db := oodb.New(oodb.Config{
		NumObjects: cfg.NumObjects,
		RelSeed:    rng.Derive(cfg.Seed, 0xdb).Uint64(),
	})
	horizon := cfg.Horizon()
	itemCost := core.ItemCost(core.CoverItem(cfg.Granularity, 0, 0))
	capacity := cfg.StorageObjects * core.ItemCost(oodb.ObjectItem(0)) / itemCost
	if capacity < 1 {
		capacity = 1
	}

	totalHits, totalRefs := 0, 0
	for i := 0; i < cfg.NumClients; i++ {
		heat := buildHeat(cfg, i)
		gen := workload.NewQueryGen(workload.QueryGenConfig{
			Kind:          cfg.QueryKind,
			Heat:          heat,
			DB:            db,
			Selectivity:   cfg.Selectivity,
			AttrsPerObj:   cfg.AttrsPerObj,
			AttrSkewTheta: cfg.AttrSkewTheta,
		})
		var arrival workload.Arrival
		switch cfg.Arrival {
		case BurstyArrival:
			arrival = workload.NewDefaultBursty()
		default:
			arrival = workload.NewPoisson(cfg.PoissonRate)
		}
		// The client's reference stream, drawn exactly as client.run does:
		// alternate arrival and query draws from the same derived stream.
		rnd := rng.Derive(rng.Derive(cfg.Seed, 0xc0+uint64(i)).Uint64(), 0xc11e47+uint64(i))
		var seq []oodb.Item
		scheduled := 0.0
		for {
			scheduled = arrival.Next(rnd, scheduled)
			if scheduled >= horizon {
				break
			}
			q := gen.Next(rnd)
			for _, rd := range q.Reads {
				seq = append(seq, core.CoverItem(cfg.Granularity, rd.OID, rd.Attr))
			}
		}
		hits, _ := replacement.OptimalHits(seq, capacity)
		totalHits += hits
		totalRefs += len(seq)
	}
	if totalRefs == 0 {
		return 0
	}
	return float64(totalHits) / float64(totalRefs)
}
