// Quickstart: run one simulated day of the mobile caching system with the
// paper's defaults (hybrid caching, EWMA-0.5 replacement, lease-based
// coherence) and print the three §5 metrics. Scenarios are built with
// experiment.New and validating functional options — invalid combinations
// are rejected with named errors before anything runs (see docs/API.md).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	sc, err := experiment.New(
		experiment.WithLabel("quickstart"),
		experiment.WithSeed(42),
		experiment.WithHorizonDays(1),
		experiment.WithGranularity(core.HybridCaching),
		experiment.WithPolicy("ewma-0.5"),
		experiment.WithQueryKind(workload.Associative),
		experiment.WithHeat(experiment.SkewedHeat),
		experiment.WithUpdateProb(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulating 1 day: 10 mobile clients, 2000-object OODB,")
	fmt.Println("two 19.2 Kbps wireless channels, hybrid caching, EWMA-0.5...")
	res := sc.Run()

	fmt.Printf("\n  cache hit ratio  %6.1f%%\n", 100*res.HitRatio)
	fmt.Printf("  response time    %6.3f s\n", res.MeanResponse)
	fmt.Printf("  error rate       %6.2f%%\n", 100*res.ErrorRate)
	fmt.Printf("  queries          %d\n", res.QueriesIssued)
	fmt.Printf("  downlink load    %5.1f%%\n", 100*res.DownlinkUtilization)

	// The headline of the paper: storage caching versus no caching.
	nc, err := experiment.New(
		experiment.WithLabel("quickstart-nc"),
		experiment.WithSeed(42),
		experiment.WithHorizonDays(1),
		experiment.WithGranularity(core.NoCache),
		experiment.WithPolicy("ewma-0.5"),
		experiment.WithQueryKind(workload.Associative),
		experiment.WithHeat(experiment.SkewedHeat),
		experiment.WithUpdateProb(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	base := nc.Run()
	fmt.Printf("\nwithout storage caching (NC): hit %.1f%%, response %.3fs —\n",
		100*base.HitRatio, base.MeanResponse)
	fmt.Printf("mobile caching cuts response time by %.1fx.\n",
		base.MeanResponse/res.MeanResponse)
}
