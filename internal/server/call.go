package server

import "repro/internal/sim"

// This file is the state-machine face of the server: Call is Process
// re-expressed as a resumable invocation for clients running on the
// sim.Machine engine. Every wait point of Process — the per-object memory
// hold and the disk acquire/hold/release of stageObject — performs the
// same schedule calls in the same order, and every counter and scratch
// mutation happens at the same point in the event order, so a simulation
// is byte-identical whichever face serves the request.

// RequestCall is a resumable request invocation for state-machine
// clients. Begin arms the call with a request; Step advances it from the
// machine's Step callback until it reports completion. A call is owned by
// one client and reused across its requests (no per-query allocation
// beyond what the Proc path itself performs). Both *Server (via NewCall)
// and the federation contact server implement it.
type RequestCall interface {
	// Begin arms the call for one request. The previous request's reply
	// must have been consumed.
	Begin(req Request)
	// Step advances the call inside machine m. It returns the reply and
	// true when processing is complete; (zero, false) means the machine is
	// waiting (memory hold, disk queue, backbone transfer) and must call
	// Step again from its next wake.
	Step(m *sim.Machine) (Reply, bool)
}

// Call is the resumable form of (*Server).Process. The zero value is not
// usable; obtain one from NewCall (fixed server) or drive it with Reset
// (per-partition reuse, as the federation does).
type Call struct {
	srv *Server
	req Request
	pc  uint8
	idx int // cursor into sc.order during staging
	sc  *reqScratch
}

// Call phases. The staging loop re-enters at the phase recorded before
// each wait.
const (
	callStart    uint8 = iota // validate, count, collect distinct OIDs
	callStage                 // stage sc.order[idx]
	callMemDone               // memory hold finished → next object
	callDiskHold              // disk granted → hold the read time
	callDiskDone              // disk read finished → release, buffer, next
)

// NewCall returns a reusable resumable call bound to this server.
func (s *Server) NewCall() RequestCall { return &Call{srv: s} }

// Begin arms the call for one request against the bound server.
func (c *Call) Begin(req Request) {
	c.req = req
	c.pc = callStart
}

// Reset re-binds the call to a (possibly different) server and arms it —
// the federation's contact path serves home and remote partitions through
// one Call, switching the target node between sub-requests.
func (c *Call) Reset(s *Server, req Request) {
	c.srv = s
	c.req = req
	c.pc = callStart
}

// Step advances request processing; see RequestCall.Step. The body mirrors
// Process statement for statement: queriesServed/recordHeat/collectDistinct
// up front, then stageObject per distinct OID (buffer hit → memory hold;
// miss → disk acquire, hold, release, buffer insert), then applyUpdates
// and assembleReply, which never wait.
func (c *Call) Step(m *sim.Machine) (Reply, bool) {
	s := c.srv
	for {
		switch c.pc {
		case callStart:
			if !c.req.Granularity.Valid() {
				panic("server: request with invalid granularity")
			}
			s.queriesServed++
			s.recordHeat(c.req)
			sc := s.scratch[c.req.ClientID]
			if sc == nil {
				sc = &reqScratch{}
				s.scratch[c.req.ClientID] = sc
			}
			sc.order = s.collectDistinct(c.req.Accesses, sc.order[:0])
			c.sc = sc
			c.idx = 0
			c.pc = callStage

		case callStage:
			if c.idx >= len(c.sc.order) {
				s.applyUpdates(m.Now(), c.req, c.sc.order)
				rep := s.assembleReply(c.req, c.sc)
				c.pc = callStart
				return rep, true
			}
			oid := c.sc.order[c.idx]
			if _, hit := s.buf.Get(oid); hit {
				s.bufferHits++
				c.pc = callMemDone
				m.Hold(s.memSecPerObject)
				return Reply{}, false
			}
			s.diskReads++
			c.pc = callDiskHold
			if !s.disk.AcquireCall(m) {
				return Reply{}, false
			}

		case callDiskHold:
			c.pc = callDiskDone
			m.Hold(s.diskSecPerObject)
			return Reply{}, false

		case callDiskDone:
			s.disk.Release()
			s.buf.Put(c.sc.order[c.idx], struct{}{})
			c.idx++
			c.pc = callStage

		case callMemDone:
			c.idx++
			c.pc = callStage
		}
	}
}
