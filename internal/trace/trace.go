// Package trace provides structured per-query tracing for simulations:
// every completed query can be emitted as one record, giving an auditable,
// machine-readable account of a run (for debugging the simulator, plotting
// distributions, or validating against the aggregate metrics).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// QueryRecord describes one completed client query.
type QueryRecord struct {
	ClientID     int
	Index        uint64  // client-local query sequence number
	IssuedAt     float64 // scheduled arrival (virtual seconds)
	CompletedAt  float64
	Reads        int // attribute reads performed
	Hits         int // reads served by locally valid items
	Stale        int // reads served from expired items (disconnected)
	Unavailable  int // reads not servable at all
	Errors       int // reads that violated coherence
	Remote       bool
	Disconnected bool
	RequestBytes int
	ReplyBytes   int
	// Reliability-layer fields (unreliable channels, DESIGN.md §9); all
	// zero when no fault model is attached.
	Retries  int  // retransmissions the round trip needed
	Degraded int  // reads served from stale copies after retry exhaustion
	TimedOut bool // the round trip exhausted its retries entirely
}

// ResponseTime returns the query's response time.
func (r QueryRecord) ResponseTime() float64 { return r.CompletedAt - r.IssuedAt }

// Tracer consumes query records. Implementations must tolerate being
// called from the (single-threaded) simulation loop.
type Tracer interface {
	Query(r QueryRecord)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Query implements Tracer.
func (Nop) Query(QueryRecord) {}

// Collector keeps every record in memory — for tests and small analyses.
type Collector struct {
	mu      sync.Mutex
	Records []QueryRecord
}

// Query implements Tracer.
func (c *Collector) Query(r QueryRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Records = append(c.Records, r)
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Records)
}

// CSVHeader is the column layout of CSVTracer.
var CSVHeader = []string{
	"client", "index", "issued_at", "completed_at", "response_s",
	"reads", "hits", "stale", "unavailable", "errors",
	"remote", "disconnected", "request_bytes", "reply_bytes",
	"retries", "degraded", "timed_out",
}

// CSVTracer streams records as CSV rows.
type CSVTracer struct {
	w      *csv.Writer
	wroteH bool
	err    error
}

// NewCSV returns a tracer writing CSV (with header) to w.
func NewCSV(w io.Writer) *CSVTracer {
	return &CSVTracer{w: csv.NewWriter(w)}
}

// Query implements Tracer.
func (t *CSVTracer) Query(r QueryRecord) {
	if t.err != nil {
		return
	}
	if !t.wroteH {
		t.wroteH = true
		if err := t.w.Write(CSVHeader); err != nil {
			t.err = err
			return
		}
	}
	row := []string{
		strconv.Itoa(r.ClientID),
		strconv.FormatUint(r.Index, 10),
		fmt.Sprintf("%.3f", r.IssuedAt),
		fmt.Sprintf("%.3f", r.CompletedAt),
		fmt.Sprintf("%.4f", r.ResponseTime()),
		strconv.Itoa(r.Reads),
		strconv.Itoa(r.Hits),
		strconv.Itoa(r.Stale),
		strconv.Itoa(r.Unavailable),
		strconv.Itoa(r.Errors),
		strconv.FormatBool(r.Remote),
		strconv.FormatBool(r.Disconnected),
		strconv.Itoa(r.RequestBytes),
		strconv.Itoa(r.ReplyBytes),
		strconv.Itoa(r.Retries),
		strconv.Itoa(r.Degraded),
		strconv.FormatBool(r.TimedOut),
	}
	t.err = t.w.Write(row)
}

// Flush drains buffered rows and returns the first error encountered.
func (t *CSVTracer) Flush() error {
	t.w.Flush()
	if t.err != nil {
		return t.err
	}
	return t.w.Error()
}
