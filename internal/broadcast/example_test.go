package broadcast_test

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/oodb"
)

// A flat broadcast disk: the shared pool's hottest attributes cycle on the
// air; a client computes the next slot of the item it needs and wakes
// exactly then.
func Example() {
	items := broadcast.HotAttrItems([]oodb.OID{10, 11, 12}, 2) // 6 slots
	prog := broadcast.New(items, network.WirelessBandwidthBps, 0)

	fmt.Printf("slots per revolution: %d\n", prog.Len())
	fmt.Printf("cycle: %.3fs\n", prog.Cycle())

	it := oodb.AttrItem(11, 1) // slot 3
	first := prog.NextDelivery(it, 0)
	// Tuning in right after a delivery waits one full revolution.
	second := prog.NextDelivery(it, first+0.001)
	fmt.Printf("wait after just missing it: %.3fs\n", second-(first+0.001))
	// Output:
	// slots per revolution: 6
	// cycle: 0.262s
	// wait after just missing it: 0.261s
}

// MeanWait is the sizing knob for the shared pool: every object added to
// the program lengthens the revolution, so the expected tune-in wait
// (half a cycle plus one slot) grows linearly with pool size. The trade
// is air latency against how much of the hot set rides for free.
func Example_meanWait() {
	for _, n := range []int{10, 25, 50} {
		oids := make([]oodb.OID, n)
		for i := range oids {
			oids[i] = oodb.OID(i)
		}
		prog := broadcast.New(broadcast.HotAttrItems(oids, 2),
			network.WirelessBandwidthBps, 0)
		fmt.Printf("%2d objects on air: mean wait %.2fs\n", n, prog.MeanWait())
	}
	// Output:
	// 10 objects on air: mean wait 0.48s
	// 25 objects on air: mean wait 1.14s
	// 50 objects on air: mean wait 2.23s
}
