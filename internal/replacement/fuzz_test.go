package replacement

import "testing"

// FuzzParse checks Parse never panics and that accepted specs produce
// policies whose Name round-trips through Parse again.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"lru", "lru-3", "lru-0", "lrd", "mean", "win-10", "win-x",
		"ewma-0.5", "ewma-1.5", "fifo", "clock", "random:7", "", "lfu",
		"ewma--1", "win-99999", "lru-999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		factory, err := Parse(spec)
		if err != nil {
			return
		}
		p := factory()
		if p == nil {
			t.Fatalf("Parse(%q) returned nil policy", spec)
		}
		name := p.Name()
		if name == "random" {
			return // random's spec embeds a seed the name drops
		}
		if _, err := Parse(name); err != nil {
			t.Fatalf("Name %q of accepted spec %q does not re-parse: %v", name, spec, err)
		}
	})
}
