package main

import (
	"flag"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/serve"
)

func parseOpts(t *testing.T, args ...string) serveOpts {
	t.Helper()
	var o serveOpts
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return o
}

func TestStoreConfigFromFlags(t *testing.T) {
	o := parseOpts(t, "-seed", "9", "-objects", "500", "-granularity", "oc",
		"-policy", "lru", "-storage", "80", "-membuf", "10", "-beta", "1", "-lease", "30")
	cfg, err := o.storeConfig()
	if err != nil {
		t.Fatalf("storeConfig: %v", err)
	}
	if cfg.Granularity != core.ObjectCaching || cfg.Policy != "lru" ||
		cfg.NumObjects != 500 || cfg.StorageObjects != 80 ||
		cfg.MemBufferObjects != 10 || cfg.Beta != 1 || cfg.FixedLease != 30 {
		t.Fatalf("storeConfig mismatch: %+v", cfg)
	}
	if cfg.RelSeed != experiment.RelSeed(9) {
		t.Fatal("RelSeed must use the simulator's derivation so topologies agree")
	}
	if _, err := serve.Open("memory", cfg); err != nil {
		t.Fatalf("config does not open a store: %v", err)
	}
}

func TestStoreConfigRejectsBadGranularity(t *testing.T) {
	o := parseOpts(t, "-granularity", "zz")
	if _, err := o.storeConfig(); err == nil {
		t.Fatal("bad granularity accepted")
	}
	// nc parses as a granularity but the store must refuse it at Open.
	o = parseOpts(t, "-granularity", "nc")
	cfg, err := o.storeConfig()
	if err != nil {
		t.Fatalf("storeConfig: %v", err)
	}
	if _, err := serve.Open("memory", cfg); err == nil {
		t.Fatal("nc store opened; want ErrUnsupported")
	}
}
