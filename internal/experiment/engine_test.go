package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/trace"
)

// These tests are the correctness gate for the state-machine execution
// engine: the same seeded scenario is driven through both engines and must
// produce deep-equal Results — metrics, per-client snapshots, server stats
// (which embed every oracle-checked error count), channel utilizations,
// and the kernel's event count — plus a byte-identical query trace CSV.
// The pattern mirrors the replacement package's reference-twin
// differential tests: the Proc engine is the retained reference, the
// machine engine the optimized implementation under test.

// runEngines executes cfg once per engine with a CSV tracer attached and
// returns the two results (Config scrubbed for comparison) and traces.
func runEngines(cfg Config) (procRes, smRes Result, procCSV, smCSV string) {
	run := func(engine Engine) (Result, string) {
		var buf bytes.Buffer
		tr := trace.NewCSV(&buf)
		c := cfg
		c.Engine = engine
		c.Tracer = tr
		res := RunFleet(c)
		tr.Flush()
		res.Config = Config{}
		return res, buf.String()
	}
	procRes, procCSV = run(EngineProcs)
	smRes, smCSV = run(EngineSM)
	return
}

func assertEngineTwin(t *testing.T, cfg Config) {
	t.Helper()
	procRes, smRes, procCSV, smCSV := runEngines(cfg)
	if procCSV != smCSV {
		t.Errorf("trace CSV differs between engines (proc %d bytes, sm %d bytes)",
			len(procCSV), len(smCSV))
		pl, sl := bytes.Split([]byte(procCSV), []byte("\n")), bytes.Split([]byte(smCSV), []byte("\n"))
		for i := 0; i < len(pl) && i < len(sl); i++ {
			if !bytes.Equal(pl[i], sl[i]) {
				t.Fatalf("first divergence at trace line %d:\nproc: %s\nsm:   %s", i, pl[i], sl[i])
			}
		}
		t.FailNow()
	}
	if !reflect.DeepEqual(procRes, smRes) {
		t.Fatalf("results differ between engines:\nproc: %+v\nsm:   %+v", procRes, smRes)
	}
	if procRes.QueriesIssued == 0 {
		t.Fatal("differential run issued no queries — the scenario is vacuous")
	}
}

// TestEngineLockstep sweeps the feature matrix: every wait point the client
// owns (local holds, uplink, server staging, downlink with shedding, retry
// timeouts and backoff, broadcast slots, fleet backbone relays) appears in
// at least one case.
func TestEngineLockstep(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"defaults-oc", Config{
			Seed: 1, Days: 0.05, NumClients: 8,
			Granularity: core.ObjectCaching, UpdateProb: 0.2,
		}},
		{"nc-no-store", Config{
			Seed: 2, Days: 0.05, NumClients: 6,
			Granularity: core.NoCache, UpdateProb: 0.5,
		}},
		{"hc-prefetch-shed", Config{
			Seed: 3, Days: 0.05, NumClients: 8,
			Granularity: core.HybridCaching, UpdateProb: 0.2,
			ShedThreshold: 0.5, Arrival: BurstyArrival,
		}},
		{"faults-retry", Config{
			Seed: 4, Days: 0.05, NumClients: 8,
			Granularity: core.AttributeCaching, UpdateProb: 0.2,
			LossRate: 0.15, CorruptRate: 0.05,
			BurstFraction: 0.1, MeanBadSeconds: 30,
		}},
		{"invalidation-reports", Config{
			Seed: 5, Days: 0.05, NumClients: 6,
			Granularity: core.ObjectCaching, UpdateProb: 0.5,
			Coherence:           coherence.InvalidationReportStrategy,
			DisconnectedClients: 2, DisconnectHours: 6,
		}},
		{"broadcast-air", Config{
			Seed: 6, Days: 0.05, NumClients: 8,
			Granularity: core.AttributeCaching, UpdateProb: 0.2,
			SharedHotObjects: 100, SharedHotProb: 0.7, BroadcastAttrs: 4,
		}},
		{"fixed-lease-disconnect", Config{
			Seed: 7, Days: 0.05, NumClients: 8,
			Granularity: core.ObjectCaching, UpdateProb: 0.2,
			Coherence:           coherence.FixedLeaseStrategy,
			FixedLease:          120,
			DisconnectedClients: 3, DisconnectHours: 8,
		}},
		{"fleet-relay", Config{
			Seed: 8, Days: 0.05, NumClients: 12, Cells: 4,
			Granularity: core.HybridCaching, UpdateProb: 0.2,
			RelayObjects: 50,
		}},
		{"fleet-faults", Config{
			Seed: 9, Days: 0.05, NumClients: 8, Cells: 2,
			Granularity: core.ObjectCaching, UpdateProb: 0.2,
			LossRate: 0.1,
		}},
		{"irb-coherence", Config{
			Seed: 10, Days: 0.05, NumClients: 8,
			Granularity: core.HybridCaching, UpdateProb: 0.5,
			Coherence: coherence.IRBroadcastStrategy,
			LossRate:  0.2, CorruptRate: 0.05,
		}},
		{"irb-fleet-disconnect", Config{
			Seed: 11, Days: 0.05, NumClients: 12, Cells: 3,
			Granularity: core.ObjectCaching, UpdateProb: 0.5,
			Coherence:           coherence.IRBroadcastStrategy,
			DisconnectedClients: 4, DisconnectHours: 8,
		}},
		{"cooperative", Config{
			Seed: 12, Days: 0.05, NumClients: 8,
			Granularity: core.HybridCaching, UpdateProb: 0.2,
			CoopPeers: 3,
		}},
		{"cooperative-faults", Config{
			Seed: 13, Days: 0.05, NumClients: 10, Cells: 2,
			Granularity: core.AttributeCaching, UpdateProb: 0.2,
			CoopPeers: 4, LossRate: 0.15, CorruptRate: 0.05,
		}},
		{"irb-coop-combined", Config{
			Seed: 14, Days: 0.05, NumClients: 8,
			Granularity: core.HybridCaching, UpdateProb: 0.3,
			Coherence: coherence.IRBroadcastStrategy, CoopPeers: 3,
			LossRate: 0.1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			assertEngineTwin(t, tc.cfg)
		})
	}
}

// FuzzEngineLockstep lets the fuzzer pick the seed and scenario shape; any
// divergence between the engines is a crash worth keeping.
func FuzzEngineLockstep(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), false, false)
	f.Add(uint64(42), uint8(3), uint8(1), true, false)
	f.Add(uint64(7), uint8(1), uint8(2), false, true)
	f.Fuzz(func(t *testing.T, seed uint64, gran, disrupt uint8, shed, fleet bool) {
		cfg := Config{
			Seed: seed, Days: 0.02, NumClients: 4,
			Granularity: core.Granularity(gran % 4),
			UpdateProb:  0.2,
		}
		if shed {
			cfg.ShedThreshold = 0.5
		}
		switch disrupt % 3 {
		case 1:
			cfg.LossRate = 0.2
			cfg.CorruptRate = 0.05
		case 2:
			cfg.DisconnectedClients = 2
			cfg.DisconnectHours = 6
		}
		if fleet {
			cfg.Cells = 2
		}
		assertEngineTwin(t, cfg)
	})
}
