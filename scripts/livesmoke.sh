#!/usr/bin/env bash
# livesmoke.sh — loopback live-replay smoke: build mccached and mcload, boot
# the service on an ephemeral loopback port, replay the quick scenario
# against it, and verify the report artifacts landed. CI runs this after
# the unit suites; run it locally as `scripts/livesmoke.sh [outdir]`.
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-liveout}"
seed=7
workdir="$(mktemp -d)"
server_pid=""

cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/mccached" ./cmd/mccached
go build -o "$workdir/mcload" ./cmd/mcload

# Boot on port 0 and learn the kernel-assigned address from -addr-file.
# The service flags must mirror the replay's config: same seed, objects,
# granularity (mcload -quick replays 400 objects under AC).
"$workdir/mccached" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -seed "$seed" -objects 400 -granularity ac &
server_pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "livesmoke: mccached died" >&2; exit 1; }
    sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "livesmoke: no bound address after 5s" >&2; exit 1; }
addr="$(cat "$workdir/addr")"

"$workdir/mcload" -url "http://$addr" -quick -seed "$seed" -speedup 1500 \
    -compare -report "$outdir"

for f in manifest.json report.md; do
    [ -s "$outdir/$f" ] || { echo "livesmoke: missing $outdir/$f" >&2; exit 1; }
done
grep -q '"live": true' "$outdir/manifest.json" \
    || { echo "livesmoke: manifest not flagged live" >&2; exit 1; }

echo "livesmoke: OK (report in $outdir)"
