// Command mccached serves the paper's client-cache machinery as a live
// HTTP/JSON cache service: per-client cache sessions (storage cache +
// memory buffer, pluggable replacement) over an in-process origin database
// with adaptive-lease coherence judged on the wall clock.
//
// Boot a service and exercise it by hand:
//
//	mccached -addr 127.0.0.1:7070 -granularity ac -policy ewma-0.5 &
//	curl -s -X POST localhost:7070/v1/read \
//	     -d '{"client":0,"oid":5,"attr":2}' | jq
//	curl -s localhost:7070/v1/stats | jq
//
// Or let the kernel pick a port and learn it from a file (scripts do
// this; see scripts/livesmoke.sh):
//
//	mccached -addr 127.0.0.1:0 -addr-file /tmp/mccached.addr &
//
// The endpoint catalog — read/fetch/write/invalidate/renew/lease/stats —
// is documented in docs/SERVING.md, together with the load-generator twin
// (cmd/mcload) that replays simulator workloads against a running service.
// SIGINT/SIGTERM drain in-flight requests before exit and dump a final
// stats snapshot to stderr.
//
// An optional leading "serve" subcommand is accepted (mccached serve
// -addr ...), mirroring mcsim's subcommand surface.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveOpts binds the service flags.
type serveOpts struct {
	addr     string
	addrFile string
	backend  string

	seed        uint64
	objects     int
	granularity string
	policy      string
	storage     int
	membuf      int
	beta        float64
	lease       float64

	sample       float64
	opTimeout    time.Duration
	adminTimeout time.Duration
	drain        time.Duration
}

// register declares the flags on fs.
func (o *serveOpts) register(fs *flag.FlagSet) {
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7070", "listen address (port 0 picks a free one)")
	fs.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file once listening")
	fs.StringVar(&o.backend, "backend", "memory",
		"store backend DSN: memory, or file:/path/cache.db?sync=group|always|none (persistent, recovers on restart)")

	fs.Uint64Var(&o.seed, "seed", 1, "root seed; derives the origin's relationship topology like mcsim")
	fs.IntVar(&o.objects, "objects", 0, "database objects (0 = default 2000)")
	fs.StringVar(&o.granularity, "granularity", "ac", "caching granularity: ac|oc")
	fs.StringVar(&o.policy, "policy", "ewma-0.5", "replacement policy spec per session")
	fs.IntVar(&o.storage, "storage", 0, "per-session storage cache in objects (0 = 20% of database)")
	fs.IntVar(&o.membuf, "membuf", 0, "per-session memory buffer in objects (0 = default 30)")
	fs.Float64Var(&o.beta, "beta", 0, "lease slack beta in RT = mean + beta*stddev")
	fs.Float64Var(&o.lease, "lease", 0, "fixed lease duration in seconds (0 = adaptive leases)")

	fs.Float64Var(&o.sample, "sample", 0, "sample serve.* gauges every this many seconds (0 = off)")
	fs.DurationVar(&o.opTimeout, "op-timeout", serve.DefaultOpTimeout, "per-request timeout for cache operations")
	fs.DurationVar(&o.adminTimeout, "admin-timeout", serve.DefaultAdminTimeout, "per-request timeout for stats/lease inspection")
	fs.DurationVar(&o.drain, "drain", serve.DefaultDrainTimeout, "graceful-shutdown drain window")
}

// storeConfig assembles the serve.Config the flags describe. The origin is
// seeded through the same derivation mcsim uses, so a service booted with
// -seed N agrees with `mcload -seed N` on the database topology.
func (o *serveOpts) storeConfig() (serve.Config, error) {
	g, err := core.ParseGranularity(o.granularity)
	if err != nil {
		return serve.Config{}, err
	}
	return serve.Config{
		Granularity:      g,
		Policy:           o.policy,
		NumObjects:       o.objects,
		StorageObjects:   o.storage,
		MemBufferObjects: o.membuf,
		Beta:             o.beta,
		FixedLease:       o.lease,
		RelSeed:          experiment.RelSeed(o.seed),
	}, nil
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	os.Exit(run(args))
}

// flagSet builds the flag set for o.
func flagSet(o *serveOpts) *flag.FlagSet {
	fs := flag.NewFlagSet("mccached", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mccached [serve] [flags]")
		fs.PrintDefaults()
	}
	o.register(fs)
	return fs
}

// run is main minus os.Exit, so tests can drive the full boot path.
func run(args []string) int {
	var o serveOpts
	fs := flagSet(&o)
	fs.Parse(args)

	cfg, err := o.storeConfig()
	if err != nil {
		return fail(err)
	}
	st, err := serve.Open(o.backend, cfg)
	if err != nil {
		return fail(err)
	}

	var reg *obs.Registry
	if o.sample > 0 {
		reg = obs.New(o.sample)
		st.Register(reg)
	}
	svc := serve.NewService(o.addr, serve.NewHandler(st, serve.HTTPConfig{
		OpTimeout:    o.opTimeout,
		AdminTimeout: o.adminTimeout,
		Reg:          reg,
	}))
	addr, err := svc.Listen()
	if err != nil {
		return fail(err)
	}
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(addr+"\n"), 0o644); err != nil {
			return fail(err)
		}
	}
	ticker := serve.AttachWallClock(reg, 1, serve.InfiniteHorizon)
	fmt.Fprintf(os.Stderr, "mccached: serving %s granularity=%s policy=%s on http://%s\n",
		st.Stats().Backend, cfg.Granularity, o.policy, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- svc.Serve() }()

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mccached: %v, draining for up to %s\n", s, o.drain)
		if err := svc.Shutdown(o.drain); err != nil {
			fmt.Fprintln(os.Stderr, "mccached: shutdown:", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			return fail(err)
		}
	}
	ticker.Stop()

	snapshot, _ := json.MarshalIndent(st.Stats(), "", "  ")
	fmt.Fprintf(os.Stderr, "mccached: final stats\n%s\n", snapshot)
	// Persistent backends flush their log on close so a clean shutdown
	// leaves no torn tail to truncate at the next boot.
	if c, ok := st.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return fail(err)
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "mccached:", err)
	return 1
}
