// Package obs is the simulator's observability layer: a lock-cheap
// registry of named instruments — counters, gauges, windowed time-series
// samplers, and distribution histograms — that the sim kernel, the network
// channels, the fault models, the client caches, and the server register
// into when a run is instrumented.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//   - Zero cost when disabled. A nil *Registry is the "off" state: every
//     constructor returns nil instruments and every instrument method is
//     nil-receiver safe, so call sites need no branches and the disabled
//     path adds no allocations to the simulation hot paths (the benchmark
//     guard in the root package pins this).
//   - Virtual time only. Sampling is driven by the simulation clock via
//     Attach — a periodic kernel event that snapshots every gauge and
//     counter into its series. Two runs of the same seed therefore produce
//     byte-identical series, which is what makes reports reproducible.
//   - Deterministic iteration. Instruments are stored in registration
//     order (slices, never map iteration), so report output is stable.
//
// The simulation is single-threaded under the kernel's one-runnable
// discipline, so instruments are deliberately unsynchronized; a Registry
// must not be shared by concurrently executing runs (the experiment Runner
// forces instrumented batches serial, exactly as it does for tracers).
package obs

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSamplePoints is how many sampling ticks Attach aims for across a
// run when the caller does not choose an interval: enough resolution to
// see warm-up convergence and burst structure without bloating reports.
const DefaultSamplePoints = 240

// Ticker is the slice of the simulation kernel the sampler needs: the
// virtual clock and deferred callbacks. *sim.Kernel satisfies it; keeping
// the dependency an interface leaves obs import-free of the kernel.
type Ticker interface {
	// Now returns the current virtual time in seconds.
	Now() float64
	// After schedules fn to run d seconds of virtual time from now.
	After(d float64, fn func())
}

// Registry owns one instrumented run's metrics. The zero value is not
// used; construct with New. A nil Registry is the disabled state: all
// methods are nil-safe and free.
type Registry struct {
	interval float64
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	series   []*Series
	samples  int
}

// New returns an enabled registry whose sampler fires every interval
// seconds of virtual time (interval <= 0 lets Attach derive one from the
// horizon, aiming for DefaultSamplePoints ticks).
func New(interval float64) *Registry {
	return &Registry{interval: interval}
}

// Enabled reports whether the registry collects anything; it is the
// idiomatic guard for registration blocks (r == nil is the "off" state).
func (r *Registry) Enabled() bool { return r != nil }

// Counter is a monotonically increasing count (evictions, retries, frames
// lost). The sampler snapshots its cumulative value into a series so
// reports can plot rates; reads and writes are virtual-time cheap.
type Counter struct {
	name   string
	v      float64
	series *Series
}

// Counter registers (or returns, by name) a counter. On a nil registry it
// returns nil, and nil counters accept Add/Inc as no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name, series: r.newSeries(name)}
	r.counters = append(r.counters, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d (d < 0 panics: counters are monotone).
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic(fmt.Sprintf("obs: counter %s decremented by %g", c.name, d))
	}
	c.v += d
}

// Value returns the cumulative count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a sampled callback: each sampler tick evaluates fn and records
// (now, fn()) into the gauge's series. Callbacks must be cheap, must not
// block, and must not perturb simulation state that feeds random draws.
type Gauge struct {
	name   string
	fn     func() float64
	series *Series
}

// Gauge registers a sampled callback under name. No-op on a nil registry.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.gauges = append(r.gauges, &Gauge{name: name, fn: fn, series: r.newSeries(name)})
}

// Histogram is a log-bucketed distribution of positive observations — the
// refresh-time (RT) distribution is the canonical user. Quantiles are
// estimated from bucket edges, so per-tick snapshots stay O(buckets).
type Histogram struct {
	name    string
	lo, hi  float64
	buckets []uint64
	under   uint64 // observations below lo (incl. zero and negative)
	over    uint64
	count   uint64
	sum     float64
}

// histogramBuckets is the fixed resolution of registry histograms: 64 log
// buckets span lo..hi with ~20% edge-to-edge growth at the default range.
const histogramBuckets = 64

// Histogram registers (or returns, by name) a log-bucketed histogram over
// [lo, hi). On a nil registry it returns nil; nil histograms accept
// Observe as a no-op.
func (r *Registry) Histogram(name string, lo, hi float64) *Histogram {
	if r == nil {
		return nil
	}
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	if !(lo > 0) || hi <= lo {
		panic(fmt.Sprintf("obs: histogram %s needs hi > lo > 0", name))
	}
	h := &Histogram{name: name, lo: lo, hi: hi, buckets: make([]uint64, histogramBuckets)}
	r.hists = append(r.hists, h)
	return h
}

// Observe counts one value. Values below lo (including zero) land in the
// underflow bucket, values at or above hi in the overflow bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int(math.Log(v/h.lo) / math.Log(h.hi/h.lo) * histogramBuckets)
		if i < 0 {
			i = 0
		} else if i >= histogramBuckets {
			i = histogramBuckets - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket edges:
// the upper edge of the bucket holding the q-th observation. Underflow
// reports lo, overflow hi. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	if rank < h.under {
		return h.lo
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if rank < seen {
			// Upper edge of bucket i.
			return h.lo * math.Pow(h.hi/h.lo, float64(i+1)/histogramBuckets)
		}
	}
	return h.hi
}

// Series is one named time series of (virtual time, value) samples, in
// sampling order.
type Series struct {
	// Name identifies the series (the instrument that feeds it).
	Name string
	// T and V are parallel: V[i] was sampled at virtual time T[i].
	T, V []float64
}

// Last returns the most recent sample (0,0 when empty).
func (s *Series) Last() (t, v float64) {
	if s == nil || len(s.T) == 0 {
		return 0, 0
	}
	return s.T[len(s.T)-1], s.V[len(s.V)-1]
}

// newSeries creates and tracks a series (registry must be non-nil).
func (r *Registry) newSeries(name string) *Series {
	s := &Series{Name: name}
	r.series = append(r.series, s)
	return s
}

// Series returns the series registered under name, or nil.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	for _, s := range r.series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SeriesNames returns every series name in sorted order (deterministic
// listing for manifests and debugging).
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.series))
	for i, s := range r.series {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// AllSeries returns every series in registration order.
func (r *Registry) AllSeries() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// Histograms returns every histogram in registration order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return r.hists
}

// HistogramName returns h's registered name ("" on nil).
func (h *Histogram) HistogramName() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Samples reports how many sampler ticks have fired.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return r.samples
}

// Interval returns the effective sampling interval (0 before Attach when
// none was configured).
func (r *Registry) Interval() float64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// sample snapshots every gauge and counter into its series at time now.
func (r *Registry) sample(now float64) {
	r.samples++
	for _, g := range r.gauges {
		g.series.T = append(g.series.T, now)
		g.series.V = append(g.series.V, g.fn())
	}
	for _, c := range r.counters {
		c.series.T = append(c.series.T, now)
		c.series.V = append(c.series.V, c.v)
	}
}

// Attach wires the registry's periodic sampler into a kernel: one sample
// at the current time, then one every interval, with the last tick at or
// before horizon. Sampler events only read state and never schedule past
// the horizon, so attaching a registry never perturbs the simulation's
// random draws, event outcomes, or (for runs whose traffic reaches the
// horizon, i.e. all of the paper's) final clock — an instrumented run
// returns exactly the Result an uninstrumented one does.
//
// No-op on a nil registry.
func (r *Registry) Attach(k Ticker, horizon float64) {
	if r == nil {
		return
	}
	if r.interval <= 0 {
		r.interval = horizon / DefaultSamplePoints
		if r.interval <= 0 {
			r.interval = 1
		}
	}
	var tick func()
	tick = func() {
		now := k.Now()
		r.sample(now)
		if now+r.interval <= horizon {
			k.After(r.interval, tick)
		}
	}
	k.After(0, tick)
}
