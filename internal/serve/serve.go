// Package serve promotes the simulator's client-cache machinery —
// granularity-aware caching (internal/core), adaptive lease coherence
// (internal/coherence), and pluggable replacement (internal/replacement) —
// behind a transport-agnostic Store interface driven by the wall clock
// instead of the simulation clock. cmd/mccached exposes a Store over
// HTTP/JSON; cmd/mcload replays experiment.Scenario workloads against it
// over real sockets, making the simulator the deterministic twin of a live
// service (docs/SERVING.md).
//
// A Store hosts one cache session per client ID (the paper's per-client
// cache) in front of a shared origin database with a write-history lease
// estimator (RT = d̄ + β·s, §3.2 of the paper). Lease expiry is judged
// against the store's real clock, so live hit/stale dynamics arise from
// actual elapsed time between writes and reads — the property the
// sim-vs-live validation in docs/SERVING.md leans on.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// Errors returned by Store operations and constructors.
var (
	// ErrBadRequest marks a request that names an unknown object,
	// attribute, or client, or uses an unsupported mode.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrUnsupported marks a configuration the live layer does not carry:
	// granularities without a durable cache (NC) or with server-side
	// prefetch profiles (HC), and coherence schemes that need a broadcast
	// channel.
	ErrUnsupported = errors.New("serve: unsupported configuration")
)

// ReadMode selects how Read treats a miss or an expired copy.
type ReadMode int

const (
	// ModeServe fetches misses and stale copies from the origin and
	// installs the fresh item before returning — the one-round-trip flow a
	// conventional cache client wants.
	ModeServe ReadMode = iota
	// ModeProbe only classifies the access (hit / stale / miss) without
	// installing anything. The load generator uses it to mirror the
	// simulator's flow exactly: probe every read, apply the query's
	// updates, then Fetch the needed items — the same order the simulated
	// client and server interleave in.
	ModeProbe
)

// ParseReadMode maps the wire spelling to a ReadMode.
func ParseReadMode(s string) (ReadMode, error) {
	switch s {
	case "", "serve":
		return ModeServe, nil
	case "probe":
		return ModeProbe, nil
	default:
		return 0, fmt.Errorf("%w: read mode %q (want serve|probe)", ErrBadRequest, s)
	}
}

// ReadResult reports one read: the probed state, the served entry, and the
// perfect-knowledge error verdict (the origin lives in the same process, so
// the service plays the paper's oracle).
type ReadResult struct {
	// Item is the cache unit the read resolved to under the store's
	// granularity (the whole object under OC, one attribute under AC).
	Item oodb.Item
	// State classifies the probe: Hit (resident, lease running), Stale
	// (resident, lease expired), Miss.
	State core.LookupState
	// Version is the served copy's origin version (zero on a probe miss).
	Version uint64
	// ExpiresAt is the served copy's lease expiry on the store clock.
	ExpiresAt float64
	// Error reports a coherence violation: the read was served from a copy
	// the origin has since overwritten. Meaningful on hits (and on
	// ModeServe, where misses are served fresh and never erroneous).
	Error bool
	// FromOrigin reports that ModeServe fetched the item from the origin
	// (the probe did not hit).
	FromOrigin bool
	// Now is the store-clock timestamp the read was judged at.
	Now float64
}

// FetchedItem is one item installed by Fetch, echoing its lease.
type FetchedItem struct {
	// Item is the installed cache unit.
	Item oodb.Item
	// Version is the origin version shipped.
	Version uint64
	// ExpiresAt is the granted lease expiry on the store clock.
	ExpiresAt float64
}

// LeaseInfo is a point-in-time view of one cached item's lease.
type LeaseInfo struct {
	// Cached reports residency in the client's session.
	Cached bool
	// Valid reports a running lease (false when expired or absent).
	Valid bool
	// Version is the cached copy's origin version.
	Version uint64
	// ExpiresAt is the absolute lease expiry on the store clock.
	ExpiresAt float64
	// Remaining is seconds of lease left (negative = expired).
	Remaining float64
	// Now is the store-clock timestamp of the observation.
	Now float64
}

// Stats is a snapshot of a store's cumulative counters and cache state.
type Stats struct {
	// Backend names the implementation ("memory", "file").
	Backend string `json:"backend"`
	// DSN echoes the backend string the store was opened with, with
	// filesystem paths redacted to their final element (clients should not
	// learn the server's directory layout from a stats endpoint).
	DSN string `json:"dsn"`
	// DiskBytes is the on-disk footprint of a persistent backend (0 for
	// memory).
	DiskBytes int64 `json:"disk_bytes"`
	// Granularity and Policy echo the store configuration.
	Granularity string `json:"granularity"`
	Policy      string `json:"policy"`
	// Uptime is seconds since the store started, on the store clock.
	Uptime float64 `json:"uptime_s"`
	// Sessions is the number of per-client cache sessions materialized.
	Sessions int `json:"sessions"`
	// Reads counts Read calls; Hits/Stales/Misses classify their probes.
	Reads  uint64 `json:"reads"`
	Hits   uint64 `json:"hits"`
	Stales uint64 `json:"stales"`
	Misses uint64 `json:"misses"`
	// Errors counts hits served with an overwritten version.
	Errors uint64 `json:"errors"`
	// Fetches counts items installed from the origin (Fetch and ModeServe).
	Fetches uint64 `json:"fetches"`
	// Writes counts origin write operations (attribute writes).
	Writes uint64 `json:"writes"`
	// Invalidations counts cache entries dropped by Invalidate.
	Invalidations uint64 `json:"invalidations"`
	// Renewals counts leases refreshed by Renew.
	Renewals uint64 `json:"renewals"`
	// CacheItems / CacheBytes aggregate residency across sessions.
	CacheItems int `json:"cache_items"`
	CacheBytes int `json:"cache_bytes"`
	// Evictions / Insertions aggregate storage-cache churn across sessions.
	Evictions  uint64 `json:"evictions"`
	Insertions uint64 `json:"insertions"`
}

// Store is the transport-agnostic live cache engine: per-client cache
// sessions over a shared origin with lease coherence on the wall clock.
// Implementations are safe for concurrent use.
type Store interface {
	// Read resolves one read for clientID under the store's granularity.
	Read(clientID int, oid oodb.OID, attr oodb.AttrID, mode ReadMode) (ReadResult, error)
	// Fetch installs the cache units covering reads from the origin into
	// clientID's session and returns their leases. It dedups reads that
	// cover the same unit, mirroring the simulator's reply assembly.
	Fetch(clientID int, reads []workload.ReadOp) ([]FetchedItem, error)
	// Write applies one update event at the origin: every named attribute
	// is written and observed by the attribute-grain lease estimator, and
	// the object-grain estimator observes the event once — exactly the
	// simulator's per-object update application. Returns the object's new
	// version.
	Write(oid oodb.OID, attrs []oodb.AttrID) (uint64, error)
	// Invalidate drops the cache unit covering (oid, attr) from clientID's
	// session, or from every session when clientID is negative. Passing
	// attr = oodb.WholeObject drops every unit of the object regardless of
	// granularity. Returns the number of entries removed.
	Invalidate(clientID int, oid oodb.OID, attr oodb.AttrID) (int, error)
	// Renew revalidates a cached unit in place: version and lease are
	// refreshed from the origin without shipping the payload. A unit that
	// is not resident is left absent (Cached = false).
	Renew(clientID int, oid oodb.OID, attr oodb.AttrID) (LeaseInfo, error)
	// Lease inspects a cached unit's lease without perturbing replacement
	// state.
	Lease(clientID int, oid oodb.OID, attr oodb.AttrID) (LeaseInfo, error)
	// Stats snapshots the store's counters.
	Stats() Stats
	// Now returns the store-clock time in seconds since start.
	Now() float64
	// Register wires the store's gauges into an observability registry
	// (serve.* series); no-op when the registry is disabled.
	Register(reg *obs.Registry)
}

// Config parameterizes a Store. The zero value is completed by defaults
// matching the paper's Table 1 client (400-object storage cache, 30-object
// memory buffer, β = 0).
type Config struct {
	// Granularity selects the cache unit: core.AttributeCaching or
	// core.ObjectCaching. NC (nothing to serve from) and HC (needs the
	// server-side per-client heat profile) are rejected by Open.
	Granularity core.Granularity
	// Policy is the replacement spec (replacement.Parse), e.g. "ewma-0.5".
	Policy string
	// NumObjects sizes the origin database (default oodb.DefaultNumObjects).
	NumObjects int
	// StorageObjects is each session's storage-cache budget in objects'
	// worth of bytes (default NumObjects/5, the paper's 20%).
	StorageObjects int
	// MemBufferObjects is each session's memory buffer (default 30).
	MemBufferObjects int
	// Beta is the lease slack in RT = d̄ + β·s (default 0).
	Beta float64
	// FixedLease > 0 switches from adaptive leases to the original Leases
	// scheme: every installed copy gets this duration.
	FixedLease float64
	// RelSeed derives the origin's relationship topology. Boot the service
	// with the run's root seed through experiment.NewDatabase-compatible
	// derivation (StoreConfig does this) so navigational replays agree.
	RelSeed uint64
	// DB overrides the origin database (tests, embedding). When nil a
	// fresh database is built from NumObjects and RelSeed.
	DB *oodb.Database
	// Clock overrides the store clock: a monotonically nondecreasing
	// seconds-since-start reading. Nil selects the wall clock. Tests
	// inject a fake clock to pin lease-expiry edge cases.
	Clock func() float64
}

// BackendFactory constructs a Store from a DSN. The DSN is the full
// backend string as given to Open — "memory", or "file:/path?sync=group" —
// so a factory can parse scheme-specific operands after its name.
type BackendFactory func(dsn string, cfg Config) (Store, error)

var (
	backendsMu sync.RWMutex
	backends   = make(map[string]BackendFactory)
)

// RegisterBackend installs a backend factory under name (the DSN scheme:
// everything before the first ':'). Registering a duplicate name panics —
// backends register from init functions, and a collision is a programming
// error. The built-in backends are "memory" (alias "mem") and "file".
func RegisterBackend(name string, factory BackendFactory) {
	if name == "" || factory == nil {
		panic("serve: RegisterBackend requires a name and a factory")
	}
	if strings.ContainsAny(name, ":?/") {
		panic(fmt.Sprintf("serve: backend name %q may not contain ':', '?' or '/'", name))
	}
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("serve: backend %q registered twice", name))
	}
	backends[name] = factory
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Open constructs a store backend from a DSN: the backend name, optionally
// followed by ':' and backend-specific operands. "" and "memory" select
// the in-memory backend; "file:/path/cache.db?sync=group" opens (or
// recovers) a persistent store at the path. Unknown names return
// ErrBadRequest listing what is registered.
func Open(dsn string, cfg Config) (Store, error) {
	name := dsn
	if i := strings.IndexByte(dsn, ':'); i >= 0 {
		name = dsn[:i]
	}
	if name == "" {
		name = "memory"
	}
	backendsMu.RLock()
	factory := backends[name]
	backendsMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("%w: unknown backend %q (registered: %s)",
			ErrBadRequest, name, strings.Join(Backends(), ", "))
	}
	return factory(dsn, cfg)
}

func init() {
	memory := func(dsn string, cfg Config) (Store, error) {
		if rest, ok := cutScheme(dsn); ok && rest != "" {
			return nil, fmt.Errorf("%w: memory backend takes no operands (got %q)", ErrBadRequest, dsn)
		}
		return NewMemory(cfg)
	}
	RegisterBackend("memory", memory)
	RegisterBackend("mem", memory)
	RegisterBackend("file", openFileDSN)
}

// cutScheme splits "name:rest" and reports whether a ':' was present.
func cutScheme(dsn string) (rest string, ok bool) {
	_, rest, ok = strings.Cut(dsn, ":")
	return rest, ok
}

// leaseFor computes the lease duration granted for item at now: the
// adaptive refresh-time estimate, or the fixed duration when configured.
func leaseFor(est *coherence.RefreshEstimator, fixed float64, it oodb.Item, now float64) float64 {
	if fixed > 0 {
		return fixed
	}
	return est.RefreshTime(it, now)
}
