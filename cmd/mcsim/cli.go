package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/trace"
)

// simOpts binds the single-configuration simulation flags shared by
// `mcsim run` and the legacy flag surface onto a FlagSet, one definition
// for both. Defaults mirror the paper's Table 1 settings.
type simOpts struct {
	days     float64
	seed     uint64
	clients  int
	objects  int
	dbsize   int
	bufratio float64
	storage  string
	engine   string

	granularity string
	policy      string
	kind        string
	heat        string
	arrival     string
	change      int
	update      float64
	beta        float64
	coherenceS  string
	fixedLease  float64
	irWindow    float64
	coopPeers   int
	shed        float64
	disconnect  int
	hours       float64
	sharedHot   int
	shareProb   float64
	bcastAttrs  int

	cells       int
	relay       int
	backboneBps float64
	backboneLat float64

	loss     float64
	corrupt  float64
	burst    float64
	burstLen float64
	retryMax int
	backoff  float64
}

// register declares every simulation flag on fs.
func (o *simOpts) register(fs *flag.FlagSet) {
	fs.Float64Var(&o.days, "days", 0, "simulated days (0 = experiment default)")
	fs.Uint64Var(&o.seed, "seed", 1, "root random seed")
	fs.IntVar(&o.clients, "clients", 0, "number of mobile clients (0 = default)")
	fs.IntVar(&o.objects, "objects", 0, "database objects (0 = default 2000)")
	fs.IntVar(&o.dbsize, "dbsize", 0, "database size in objects (alias of -objects; Experiment #11's knob)")
	fs.Float64Var(&o.bufratio, "bufratio", 0, "server buffer as a fraction of the database, 0 < r <= 1 (0 = default 25%)")
	fs.StringVar(&o.storage, "storage", "", "persistent server tier DSN: file:<dir>[?sync=group|always|none] (empty = modeled disk only)")
	fs.StringVar(&o.engine, "engine", "", "execution engine: procs|sm (default procs; identical results)")

	fs.StringVar(&o.granularity, "granularity", "hc", "caching granularity: nc|ac|oc|hc")
	fs.StringVar(&o.policy, "policy", "ewma-0.5", "replacement policy spec")
	fs.StringVar(&o.kind, "kind", "AQ", "query kind: AQ|NQ")
	fs.StringVar(&o.heat, "heat", "sh", "heat pattern: sh|csh|cyclic")
	fs.IntVar(&o.change, "change", 500, "CSH hot-set change rate in queries")
	fs.StringVar(&o.arrival, "arrival", "poisson", "arrival pattern: poisson|bursty")
	fs.Float64Var(&o.update, "update", 0.1, "update probability U")
	fs.Float64Var(&o.beta, "beta", 0, "coherence staleness tolerance beta")
	fs.StringVar(&o.coherenceS, "coherence", "lease", "coherence strategy: lease|fixed|ir|irb")
	fs.Float64Var(&o.fixedLease, "lease", 0, "fixed-lease duration in seconds (with -coherence fixed)")
	fs.Float64Var(&o.irWindow, "irwindow", 0, "broadcast-IR history window in seconds (with -coherence irb; 0 = 5 report intervals)")
	fs.IntVar(&o.coopPeers, "coop", 0, "cooperative caching: peers scanned per local miss (0 = off)")
	fs.Float64Var(&o.shed, "shed", 0, "timeout-heuristic threshold in seconds (0 = off)")
	fs.IntVar(&o.disconnect, "disconnected", 0, "number of disconnected clients V")
	fs.Float64Var(&o.hours, "hours", 0, "disconnection duration D in hours")
	fs.IntVar(&o.sharedHot, "shared", 0, "shared interest pool size in objects (0 = none)")
	fs.Float64Var(&o.shareProb, "shareprob", 0, "probability a pick comes from the shared pool")
	fs.IntVar(&o.bcastAttrs, "broadcast", 0, "broadcast the shared pool's top-N attrs (requires -shared)")

	fs.IntVar(&o.cells, "cells", 0, "fleet cells; >1 shards clients and the database across cell partitions")
	fs.IntVar(&o.relay, "relay", 0, "per-cell relay cache for remote partitions, in objects (0 = off)")
	fs.Float64Var(&o.backboneBps, "backbone-bps", 0, "inter-cell backbone bandwidth in bits/s (0 = default 10 Mbps)")
	fs.Float64Var(&o.backboneLat, "backbone-lat", 0, "inter-cell backbone one-way latency in seconds (0 = default 5 ms)")

	fs.Float64Var(&o.loss, "loss", 0, "per-frame loss probability on each channel (0 = perfect)")
	fs.Float64Var(&o.corrupt, "corrupt", 0, "per-frame corruption probability (CRC-detected at receiver)")
	fs.Float64Var(&o.burst, "burst", 0, "fraction of time in burst outage (Gilbert-Elliott bad state)")
	fs.Float64Var(&o.burstLen, "burstlen", 0, "mean burst-outage length in seconds (0 = default 10)")
	fs.IntVar(&o.retryMax, "retry", 0, "max retransmissions per request (0 = default 3, negative = none)")
	fs.Float64Var(&o.backoff, "backoff", 0, "base retry backoff in seconds (0 = default 1)")
}

// resolveObjects folds -dbsize into -objects; the two are one knob and
// may not disagree.
func (o *simOpts) resolveObjects() (int, error) {
	if o.dbsize != 0 && o.objects != 0 && o.dbsize != o.objects {
		return 0, fmt.Errorf("-dbsize %d and -objects %d name different database sizes: %w",
			o.dbsize, o.objects, experiment.ErrConflict)
	}
	if o.dbsize != 0 {
		return o.dbsize, nil
	}
	return o.objects, nil
}

// config assembles the experiment.Config the parsed flags describe.
func (o *simOpts) config() (experiment.Config, error) {
	objects, err := o.resolveObjects()
	if err != nil {
		return experiment.Config{}, err
	}
	cfg, err := buildConfig(o.granularity, o.policy, o.kind, o.heat, o.arrival,
		o.change, o.update, o.beta, o.disconnect, o.hours, o.days, o.seed, o.clients, objects)
	if err != nil {
		return cfg, err
	}
	cfg.ServerBufferRatio = o.bufratio
	cfg.StorageDSN = o.storage
	if o.engine != "" {
		switch experiment.Engine(o.engine) {
		case experiment.EngineProcs, experiment.EngineSM:
			cfg.Engine = experiment.Engine(o.engine)
		default:
			return cfg, fmt.Errorf("unknown engine %q (want procs|sm)", o.engine)
		}
	}
	cfg.ShedThreshold = o.shed
	cfg.FixedLease = o.fixedLease
	cfg.SharedHotObjects = o.sharedHot
	cfg.SharedHotProb = o.shareProb
	cfg.BroadcastAttrs = o.bcastAttrs
	cfg.Cells = o.cells
	cfg.RelayObjects = o.relay
	cfg.BackboneBandwidthBps = o.backboneBps
	cfg.BackboneLatency = o.backboneLat
	applyFaultFlags(&cfg, o.loss, o.corrupt, o.burst, o.burstLen, o.retryMax, o.backoff)
	strat, ok := coherence.Parse(o.coherenceS)
	if !ok {
		return cfg, fmt.Errorf("unknown coherence strategy %q (want lease|fixed|ir|irb)", o.coherenceS)
	}
	cfg.Coherence = strat
	cfg.IRWindow = o.irWindow
	cfg.CoopPeers = o.coopPeers
	return cfg, nil
}

// expBase reduces the flags to the sweep base config the experiments
// inherit: scale, seed, storage, and the channel fault environment.
func (o *simOpts) expBase() (experiment.Config, error) {
	objects, err := o.resolveObjects()
	if err != nil {
		return experiment.Config{}, err
	}
	base := experiment.Config{
		Seed: o.seed, Days: o.days, NumClients: o.clients, NumObjects: objects,
		ServerBufferRatio: o.bufratio, StorageDSN: o.storage,
	}
	applyFaultFlags(&base, o.loss, o.corrupt, o.burst, o.burstLen, o.retryMax, o.backoff)
	return base, nil
}

// profileFlags declares the profiling sinks shared by every subcommand.
func profileFlags(fs *flag.FlagSet) (cpu, mem, addr *string) {
	return fs.String("cpuprofile", "", "write a CPU profile to this file"),
		fs.String("memprofile", "", "write a heap profile to this file on exit"),
		fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// runOpts carries the execution wrappers around one configured run.
type runOpts struct {
	traceFile string
	replicas  int
	reportDir string
}

// executeRun validates cfg through the Scenario front door and runs it —
// the fleet engine when cells were requested, with optional replication,
// tracing, and report generation.
func executeRun(cfg experiment.Config, o runOpts) error {
	if _, err := experiment.New(experiment.WithConfig(cfg)); err != nil {
		return err
	}
	var tracer *trace.CSVTracer
	var traceOut *os.File
	if o.traceFile != "" {
		if o.reportDir != "" {
			return fmt.Errorf("-report writes its own trace.csv; drop -trace")
		}
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		traceOut, tracer = f, trace.NewCSV(f)
		cfg.Tracer = tracer
	}
	finishTrace := func() error {
		if tracer == nil {
			return nil
		}
		if err := tracer.Flush(); err != nil {
			traceOut.Close()
			return err
		}
		return traceOut.Close()
	}

	if o.replicas > 1 {
		rep := experiment.Replicate(cfg, o.replicas)
		fmt.Println(rep)
		if o.reportDir != "" {
			// Instrument the base seed's run; the replication summary
			// stays on stdout (it spans seeds, so it has no single
			// manifest).
			if _, err := instrumentedReport(o.reportDir, "run",
				runCommand(cfg), nil, cfg, false); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", o.reportDir)
		}
		return finishTrace()
	}

	start := time.Now()
	var res experiment.Result
	if o.reportDir != "" {
		r, err := instrumentedReport(o.reportDir, "run", runCommand(cfg), nil, cfg, false)
		if err != nil {
			return err
		}
		res = r
	} else {
		res = experiment.RunFleet(cfg)
	}
	printResult(res)
	printThroughput(res.Events, time.Since(start))
	if o.reportDir != "" {
		fmt.Printf("report written to %s\n", o.reportDir)
	}
	return finishTrace()
}

// cmdRun implements `mcsim run`: one configuration from flags, or an
// archived configuration replayed from a report manifest via -config.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("mcsim run", flag.ExitOnError)
	var o simOpts
	o.register(fs)
	configPath := fs.String("config", "", "replay an archived run: a report directory or its manifest.json")
	traceFile := fs.String("trace", "", "write a per-query CSV trace to this file")
	replicas := fs.Int("replicas", 1, "independent replications with consecutive seeds")
	reportDir := fs.String("report", "", "write manifest.json, report.md and trace.csv into this directory")
	parallel := fs.Int("parallel", 0, "concurrent simulations for fleet cells and -replicas (0 = one per CPU)")
	cpuProfile, memProfile, pprofAddr := profileFlags(fs)
	fs.Parse(args)
	experiment.SetDefaultWorkers(*parallel)

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()

	if *configPath != "" {
		if set := explicitSimFlags(fs); len(set) > 0 {
			fatal(fmt.Errorf("-config replays the manifest's configuration; drop %s",
				strings.Join(set, ", ")))
		}
		man, _, err := readManifest(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := replayManifest(man, *reportDir); err != nil {
			fatal(err)
		}
		return
	}
	cfg, err := o.config()
	if err != nil {
		fatal(err)
	}
	if err := executeRun(cfg, runOpts{
		traceFile: *traceFile,
		replicas:  *replicas,
		reportDir: *reportDir,
	}); err != nil {
		fatal(err)
	}
}

// explicitSimFlags lists simulation flags the user set alongside -config,
// which would silently lose to the manifest — rejected instead.
func explicitSimFlags(fs *flag.FlagSet) []string {
	harness := map[string]bool{
		"config": true, "report": true, "parallel": true,
		"cpuprofile": true, "memprofile": true, "pprof": true,
	}
	var set []string
	fs.Visit(func(f *flag.Flag) {
		if !harness[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

// cmdExp implements `mcsim exp <id>`: regenerate experiment tables.
func cmdExp(args []string) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fatal(fmt.Errorf("usage: mcsim exp <id> [flags] — id is 1..11, table1, or all; experiments:\n%s",
			strings.TrimRight(expCatalogList(), "\n")))
	}
	which := args[0]
	fs := flag.NewFlagSet("mcsim exp", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced-scale pass (shorter horizon, sparser grids)")
	days := fs.Float64("days", 0, "simulated days (0 = experiment default)")
	seed := fs.Uint64("seed", 1, "root random seed")
	clients := fs.Int("clients", 0, "number of mobile clients (0 = default)")
	objects := fs.Int("objects", 0, "database objects (0 = default 2000)")
	dbsize := fs.Int("dbsize", 0, "database size in objects (alias of -objects; Experiment #11's knob)")
	bufratio := fs.Float64("bufratio", 0, "server buffer as a fraction of the database, 0 < r <= 1, inherited by every run")
	storageDSN := fs.String("storage", "", "persistent server tier DSN every run inherits: file:<dir>[?sync=...]")
	loss := fs.Float64("loss", 0, "per-frame loss probability every run inherits")
	corrupt := fs.Float64("corrupt", 0, "per-frame corruption probability every run inherits")
	burst := fs.Float64("burst", 0, "fraction of time in burst outage every run inherits")
	burstLen := fs.Float64("burstlen", 0, "mean burst-outage length in seconds (0 = default 10)")
	retryMax := fs.Int("retry", 0, "max retransmissions per request (0 = default 3, negative = none)")
	backoff := fs.Float64("backoff", 0, "base retry backoff in seconds (0 = default 1)")
	reportDir := fs.String("report", "", "write manifest.json, report.md and trace.csv into this directory")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs (0 = one per CPU)")
	cpuProfile, memProfile, pprofAddr := profileFlags(fs)
	fs.Parse(args[1:])
	experiment.SetDefaultWorkers(*parallel)

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()

	if err := checkQuickStorage(*quick, *storageDSN); err != nil {
		fatal(err)
	}
	o := simOpts{objects: *objects, dbsize: *dbsize}
	resolvedObjects, err := o.resolveObjects()
	if err != nil {
		fatal(err)
	}
	base := experiment.Config{
		Seed: *seed, Days: *days, NumClients: *clients, NumObjects: resolvedObjects,
		ServerBufferRatio: *bufratio, StorageDSN: *storageDSN,
	}
	applyFaultFlags(&base, *loss, *corrupt, *burst, *burstLen, *retryMax, *backoff)
	if err := runExperiments(which, base, *quick, *reportDir); err != nil {
		fatal(err)
	}
}

// checkQuickStorage rejects -quick together with a file storage tier: the
// quick grids exist to be fast and hermetic, and a real on-disk tier is
// neither, so the combination is a named conflict rather than a slow
// surprise.
func checkQuickStorage(quick bool, dsn string) error {
	if quick && dsn != "" {
		return fmt.Errorf("-quick and -storage %q: quick grids run without a persistent tier: %w",
			dsn, experiment.ErrConflict)
	}
	return nil
}

// cmdReport implements `mcsim report <dir>`: summarize an archived report
// directory from its manifest; -verify re-executes the recorded simulation
// and checks the reproduction against the archived hashes.
func cmdReport(args []string) {
	var dir string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		dir, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("mcsim report", flag.ExitOnError)
	verify := fs.Bool("verify", false, "re-run the archived simulation and check it reproduces")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs during -verify (0 = one per CPU)")
	fs.Parse(args)
	if dir == "" {
		dir = fs.Arg(0)
	}
	if dir == "" {
		fatal(fmt.Errorf("usage: mcsim report <dir> [-verify]"))
	}
	experiment.SetDefaultWorkers(*parallel)

	man, resolved, err := readManifest(dir)
	if err != nil {
		fatal(err)
	}
	printManifestSummary(resolved, man)
	if *verify {
		if err := verifyManifest(resolved, man); err != nil {
			fatal(err)
		}
	}
}

// printManifestSummary renders the manifest facts a reader checks first.
func printManifestSummary(dir string, man report.Manifest) {
	fmt.Printf("report %s\n", dir)
	fmt.Printf("  experiment   %s\n", man.Experiment)
	fmt.Printf("  command      %s\n", man.Command)
	fmt.Printf("  config       %s\n", man.Config)
	fmt.Printf("  seed         %d\n", man.Seed)
	fmt.Printf("  environment  %s, git %s\n", man.GoVersion, man.GitRevision)
	fmt.Printf("  wall time    %.1fs\n", man.WallSeconds)
	fmt.Printf("  samples      %d every %gs across %d series\n",
		man.Samples, man.IntervalS, len(man.Series))
	if man.TraceRows > 0 {
		fmt.Printf("  trace        %d rows (trace.csv)\n", man.TraceRows)
	}
	for _, t := range man.Tables {
		fmt.Printf("  table        %s  sha256 %s\n", t.Title, shortHash(t.SHA256))
	}
}

// shortHash abbreviates a hex digest for display.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
