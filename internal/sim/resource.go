package sim

// Resource is a FCFS facility with fixed capacity — the analogue of a CSIM
// facility. The simulation uses capacity-1 resources for the two wireless
// channels and the server disk; contention at these resources is what
// produces the paper's queueing effects (e.g. downlink backlog under the
// Bursty arrival pattern).
//
// A Resource also accumulates utilization and queueing statistics so
// experiments can report channel utilization alongside the paper's metrics.
// waiter is one queued actor — a process (Acquire) or a state machine
// (AcquireCall) — and the time it joined the queue (for wait statistics).
// Keeping the timestamp inline avoids a map operation per contended
// acquire on the hot path.
type waiter struct {
	proc  *Proc
	mach  *Machine
	since float64
}

type Resource struct {
	name     string
	kernel   *Kernel
	capacity int
	inUse    int
	waiters  []waiter

	// statistics
	acquires      uint64
	busyArea      float64 // integral of inUse over time
	queueArea     float64 // integral of queue length over time
	lastStatTime  float64
	totalWaitTime float64
}

// NewResource creates a facility with the given capacity (servers).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource with non-positive capacity")
	}
	return &Resource{
		name:     name,
		kernel:   k,
		capacity: capacity,
	}
}

// accrue integrates the busy/queue areas up to the current time.
func (r *Resource) accrue() {
	now := r.kernel.now
	dt := now - r.lastStatTime
	if dt > 0 {
		r.busyArea += dt * float64(r.inUse)
		r.queueArea += dt * float64(len(r.waiters))
	}
	r.lastStatTime = now
}

// Acquire takes one unit of the resource, queueing FCFS if none is free.
func (r *Resource) Acquire(p *Proc) {
	r.accrue()
	r.acquires++
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	since := r.kernel.now
	r.waiters = append(r.waiters, waiter{proc: p, since: since})
	p.yield() // resumed by Release
	r.totalWaitTime += r.kernel.now - since
}

// AcquireCall is Acquire for state machines: acquire-with-continuation.
// It reports whether the unit was granted immediately; false means the
// machine was queued FCFS and its Step will fire (via the event list, at
// the grant time) when Release hands it the slot. The caller's Step must
// then resume past its acquire point.
//
// The statistics mutations mirror Acquire's exactly; wait time is accrued
// at grant time, which happens at the same virtual instant the resumed
// proc accrues it, so both engines integrate identical sequences.
func (r *Resource) AcquireCall(m *Machine) bool {
	r.accrue()
	r.acquires++
	if r.inUse < r.capacity {
		r.inUse++
		return true
	}
	r.waiters = append(r.waiters, waiter{mach: m, since: r.kernel.now})
	return false
}

// Release frees one unit. If processes are queued the unit is handed to the
// head of the queue (the slot never becomes observably free, preserving
// FCFS).
func (r *Resource) Release() {
	r.accrue()
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = waiter{}
		r.waiters = r.waiters[:len(r.waiters)-1]
		// Hand the slot over; wake the waiter through the event list so
		// same-time wakeups keep deterministic FIFO order. A proc accrues
		// its wait when it resumes inside Acquire; a machine accrues here
		// at grant — the same virtual instant either way.
		if w.mach != nil {
			r.totalWaitTime += r.kernel.now - w.since
			w.mach.wake(r.kernel.now)
			return
		}
		r.kernel.schedule(r.kernel.now, w.proc, nil)
		return
	}
	r.inUse--
}

// Use is the common acquire–hold–release pattern: occupy the resource for
// d seconds of service.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Hold(d)
	r.Release()
}

// Name returns the facility name.
func (r *Resource) Name() string { return r.name }

// InUse reports the number of busy units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of queued processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquires reports the total number of Acquire calls.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Utilization reports time-average busy fraction since the start of the
// simulation (per unit of capacity).
func (r *Resource) Utilization() float64 {
	r.accrue()
	if r.kernel.now == 0 {
		return 0
	}
	return r.busyArea / (r.kernel.now * float64(r.capacity))
}

// MeanQueueLen reports the time-average queue length.
func (r *Resource) MeanQueueLen() float64 {
	r.accrue()
	if r.kernel.now == 0 {
		return 0
	}
	return r.queueArea / r.kernel.now
}

// MeanWait reports the average time spent queued per acquire.
func (r *Resource) MeanWait() float64 {
	if r.acquires == 0 {
		return 0
	}
	return r.totalWaitTime / float64(r.acquires)
}
