GO ?= go

.PHONY: build vet test race lintdocs verify bench benchguard clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runner, the kernel handoff discipline, the client's two
# execution engines, the federation backbone (exercised concurrently by
# fleet cells), the live serving layer (concurrent HTTP handlers over
# shared sessions), and the storage engine (group-commit flushers and the
# background compactor against concurrent readers) are the places
# concurrency lives; keep them race-clean.
race:
	$(GO) test -race ./internal/experiment ./internal/sim ./internal/client ./internal/federation ./internal/serve ./internal/storage

# Docs gate: every package must carry a package comment.
lintdocs:
	scripts/lintdocs.sh

# Tier-1 verify: what every PR must keep green.
verify: build vet test race lintdocs

# Kernel micro-benchmarks + the parallel sweep benchmark + the replacement
# model suite + the fleet engine + the storage engine, with allocation
# counts; machine-readable results land in BENCH_kernel.json,
# BENCH_model.json, BENCH_fleet.json and BENCH_storage.json. Tune with
# BENCH_TIME / BENCH_MODEL_TIME / BENCH_FLEET_TIME / BENCH_STORAGE_TIME
# (go -benchtime) and BENCH_COUNT.
bench:
	scripts/bench.sh

# Regression gate: re-run the KernelHoldLoop-class per-event benchmarks
# and the storage-engine benchmarks, failing if any runs >2x slower than
# its entry in the committed BENCH_kernel.json / BENCH_storage.json
# (REGRESSION_FACTOR overrides the threshold).
benchguard:
	scripts/benchguard.sh

clean:
	rm -f BENCH_kernel.json BENCH_model.json BENCH_fleet.json BENCH_storage.json
