// Package oodb models the object-oriented database the paper's server
// hosts: a single class Root with 2000 objects, each carrying 9 primitive
// attributes and 3 one-to-one relationships to other Root objects, 1024
// bytes per object (§4 of the paper).
//
// Only metadata matters to the simulation — per-item versions (for the
// perfect-knowledge error oracle), write timestamps (for refresh-time
// estimation), and sizes (for message and transfer-time computation) — so
// attribute "values" are represented by their version counters rather than
// by payload bytes.
package oodb

import "fmt"

// Schema constants from §4 of the paper.
const (
	// DefaultNumObjects is the database population: 2000 Root objects.
	DefaultNumObjects = 2000
	// NumPrimAttrs is the number of primitive-valued attributes per object.
	NumPrimAttrs = 9
	// NumRelAttrs is the number of one-to-one relationships per object.
	NumRelAttrs = 3
	// NumAttrs is the total attribute count (primitive + relationship).
	NumAttrs = NumPrimAttrs + NumRelAttrs
	// ObjectSize is the size of one object in bytes.
	ObjectSize = 1024
	// AttrSize is the size of a single attribute value in bytes. The paper
	// gives only the 1024-byte object size; we divide it evenly across the
	// 12 attributes (9 primitive + 3 relationship slots).
	AttrSize = ObjectSize / NumAttrs
)

// OID identifies an object in the database.
type OID uint32

// AttrID identifies an attribute of class Root: 0..8 are primitive,
// 9..11 are relationships.
type AttrID uint8

// IsRelationship reports whether a refers to one of the relationship slots.
func (a AttrID) IsRelationship() bool { return a >= NumPrimAttrs }

// Valid reports whether a is a legal attribute index.
func (a AttrID) Valid() bool { return a < NumAttrs }

// object holds per-object simulation metadata.
type object struct {
	attrVersion [NumAttrs]uint64 // writes seen per attribute
	version     uint64           // writes seen on the object (any attribute)
	rels        [NumRelAttrs]OID // one-to-one relationship targets
}

// Database is the server-resident object store.
type Database struct {
	objects []object
	writes  uint64 // total attribute writes applied
}

// Config parameterizes database construction.
type Config struct {
	// NumObjects is the object population (DefaultNumObjects if zero).
	NumObjects int
	// RelSeed seeds the pseudo-random relationship topology. Relationships
	// form a deterministic "shifted" pattern so navigational queries touch
	// distinct related objects without needing an RNG here.
	RelSeed uint64
}

// New builds a database with the given configuration.
func New(cfg Config) *Database {
	n := cfg.NumObjects
	if n <= 0 {
		n = DefaultNumObjects
	}
	db := &Database{objects: make([]object, n)}
	// Deterministic relationship topology: object i's j-th relationship
	// points to (i + stride_j) mod n, with strides derived from the seed.
	// Strides lie in [1, n-1] so no relationship is a self-loop (except in
	// the degenerate single-object database).
	for j := 0; j < NumRelAttrs; j++ {
		stride := 0
		if n > 1 {
			stride = int((cfg.RelSeed>>(8*uint(j)))%uint64(n-1)) + 1
		}
		for i := range db.objects {
			db.objects[i].rels[j] = OID((i + stride) % n)
		}
	}
	return db
}

// NumObjects returns the object population.
func (db *Database) NumObjects() int { return len(db.objects) }

// ValidOID reports whether the oid addresses an existing object.
func (db *Database) ValidOID(oid OID) bool { return int(oid) < len(db.objects) }

func (db *Database) mustObject(oid OID) *object {
	if !db.ValidOID(oid) {
		panic(fmt.Sprintf("oodb: invalid oid %d (population %d)", oid, len(db.objects)))
	}
	return &db.objects[oid]
}

// Relationship returns the target of oid's rel-th relationship (rel in
// [0, NumRelAttrs)).
func (db *Database) Relationship(oid OID, rel int) OID {
	if rel < 0 || rel >= NumRelAttrs {
		panic(fmt.Sprintf("oodb: invalid relationship index %d", rel))
	}
	return db.mustObject(oid).rels[rel]
}

// Write applies a write to attribute attr of object oid, bumping both the
// attribute version and the object version. Returns the new object version.
func (db *Database) Write(oid OID, attr AttrID) uint64 {
	if !attr.Valid() {
		panic(fmt.Sprintf("oodb: invalid attr %d", attr))
	}
	o := db.mustObject(oid)
	o.attrVersion[attr]++
	o.version++
	db.writes++
	return o.version
}

// ObjectVersion returns the number of writes applied to any attribute of
// oid. The error oracle compares this against a client's cached version
// under object-granularity caching.
func (db *Database) ObjectVersion(oid OID) uint64 {
	return db.mustObject(oid).version
}

// AttrVersion returns the number of writes applied to (oid, attr). The
// error oracle compares this against a client's cached version under
// attribute- and hybrid-granularity caching.
func (db *Database) AttrVersion(oid OID, attr AttrID) uint64 {
	if !attr.Valid() {
		panic(fmt.Sprintf("oodb: invalid attr %d", attr))
	}
	return db.mustObject(oid).attrVersion[attr]
}

// TotalWrites returns the number of attribute writes applied database-wide.
func (db *Database) TotalWrites() uint64 { return db.writes }

// RestoreVersions overwrites oid's version counters with a previously
// snapshotted state — the recovery path of a persistent tier replaying its
// log. The database-wide write total is adjusted by the object-version
// delta, preserving the invariant that TotalWrites equals the sum of
// object versions.
func (db *Database) RestoreVersions(oid OID, version uint64, attrVersions [NumAttrs]uint64) {
	o := db.mustObject(oid)
	db.writes += version - o.version
	o.version = version
	o.attrVersion = attrVersions
}

// AttrVersions returns a copy of oid's per-attribute version counters, the
// companion snapshot call to RestoreVersions.
func (db *Database) AttrVersions(oid OID) [NumAttrs]uint64 {
	return db.mustObject(oid).attrVersion
}
