package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestResolveTraceFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "run.csv")
	if err := os.WriteFile(f, []byte("header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolveTrace(f)
	if err != nil || got != f {
		t.Fatalf("resolveTrace(%q) = %q, %v", f, got, err)
	}
}

func TestResolveTraceDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := resolveTrace(dir); err == nil ||
		!strings.Contains(err.Error(), "trace.csv") {
		t.Fatalf("directory without trace.csv accepted: %v", err)
	}
	want := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(want, []byte("header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolveTrace(dir)
	if err != nil || got != want {
		t.Fatalf("resolveTrace(%q) = %q, %v", dir, got, err)
	}
	if _, err := resolveTrace(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestManifestHeader(t *testing.T) {
	dir := t.TempDir()
	if h := manifestHeader(dir); h != "" {
		t.Fatalf("header without manifest: %q", h)
	}
	man := `{"experiment":"run","seed":7,"command":"mcsim run -seed 7 -report <dir>"}`
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	h := manifestHeader(dir)
	if !strings.Contains(h, "seed 7") || !strings.Contains(h, "mcsim run") {
		t.Fatalf("header incomplete: %q", h)
	}
}
