package federation

import (
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the state-machine face of the contact server: contactCall
// is Process/processRemote re-expressed as a resumable invocation for
// clients running on the sim.Machine engine. Every wait point — the home
// and remote servers' staging (via server.Call), the backbone latency
// holds, and the two backbone link transfers — performs the same schedule
// calls in the same order as the Proc path, so a fleet simulation is
// byte-identical whichever face serves the cell.

// contactCall phases. The remote-partition loop (fcNext → fcLink →
// fcRemote → fcBack → fcNext) visits owners in node order, exactly like
// processRemote's caller.
const (
	fcStart  uint8 = iota // split the request; arm the home sub-call
	fcSingle              // single-node cluster: stepping the home call
	fcHome                // stepping the home-partition call
	fcNext                // advance to the next remote partition
	fcLink                // forward-link transfer to the owner
	fcRemote              // stepping the remote owner's call
	fcBack                // return-link transfer; fill relay; collect
)

// remotePart is one node's share of a split request (Process's local
// `part`), kept as a field so its backing arrays persist across queries.
type remotePart struct {
	accesses []workload.ReadOp
	need     []workload.ReadOp
}

// contactCall is the resumable form of (*ContactServer).Process. One call
// is owned by one client and reused across its queries; the part/forward/
// item buffers are recycled, which is safe because a client consumes each
// reply before issuing its next request.
type contactCall struct {
	cs  *ContactServer
	req server.Request
	pc  uint8

	call server.Call       // one server sub-call, re-bound per partition
	send network.SendState // one backbone transfer at a time

	parts   []remotePart
	items   []server.ReplyItem // backing for the collected reply
	out     server.Reply
	o       int // current remote node in the fcNext loop
	served  []server.ReplyItem
	fwdBuf  []workload.ReadOp // relay-filtered forwards (never aliases parts)
	forward []workload.ReadOp // what actually goes to the owner
	rep     server.Reply      // remote owner's reply, pending the back link
}

// NewCall returns a reusable resumable call bound to this cell's contact
// server; see server.RequestCall.
func (cs *ContactServer) NewCall() server.RequestCall {
	return &contactCall{cs: cs}
}

// Begin arms the call for one request; see server.RequestCall.
func (cc *contactCall) Begin(req server.Request) {
	cc.req = req
	cc.pc = fcStart
}

// Step advances request processing; see server.RequestCall.Step.
func (cc *contactCall) Step(m *sim.Machine) (server.Reply, bool) {
	cs := cc.cs
	c := cs.cluster
	for {
		switch cc.pc {
		case fcStart:
			if len(c.nodes) == 1 {
				cc.call.Reset(cs.home.srv, cc.req)
				cc.pc = fcSingle
				continue
			}
			// Split the request by owning node.
			if cap(cc.parts) < len(c.nodes) {
				cc.parts = make([]remotePart, len(c.nodes))
			}
			cc.parts = cc.parts[:len(c.nodes)]
			for i := range cc.parts {
				cc.parts[i].accesses = cc.parts[i].accesses[:0]
				cc.parts[i].need = cc.parts[i].need[:0]
			}
			for _, rd := range cc.req.Accesses {
				o := c.Owner(rd.OID)
				cc.parts[o].accesses = append(cc.parts[o].accesses, rd)
			}
			for _, rd := range cc.req.Need {
				o := c.Owner(rd.OID)
				cc.parts[o].need = append(cc.parts[o].need, rd)
			}
			cc.out = server.Reply{Items: cc.items[:0]}
			cc.o = 0
			// Home partition: evaluated exactly as the single-server system.
			homeReq := cc.req
			homeReq.Accesses = cc.parts[cs.home.id].accesses
			homeReq.Need = cc.parts[cs.home.id].need
			if len(homeReq.Accesses) > 0 || len(homeReq.Need) > 0 {
				cc.call.Reset(cs.home.srv, homeReq)
				cc.pc = fcHome
				continue
			}
			cc.pc = fcNext

		case fcSingle:
			rep, done := cc.call.Step(m)
			if !done {
				return server.Reply{}, false
			}
			cc.pc = fcStart
			return rep, true

		case fcHome:
			rep, done := cc.call.Step(m)
			if !done {
				return server.Reply{}, false
			}
			cc.out.Items = append(cc.out.Items, rep.Items...)
			cc.pc = fcNext

		case fcNext:
			for cc.o < len(c.nodes) {
				if cc.o == cs.home.id {
					cc.o++
					continue
				}
				pt := &cc.parts[cc.o]
				if len(pt.accesses) == 0 && len(pt.need) == 0 {
					cc.o++
					continue
				}
				break
			}
			if cc.o >= len(c.nodes) {
				cc.items = cc.out.Items
				cc.pc = fcStart
				return cc.out, true
			}
			// Relay cache scan for node cc.o — synchronous, before the
			// backbone latency, mirroring processRemote's prologue.
			home := cs.home
			need := cc.parts[cc.o].need
			now := m.Now()
			cc.served = cc.served[:0]
			forward := need
			if home.relay != nil {
				cc.fwdBuf = cc.fwdBuf[:0]
				for _, rd := range need {
					it := core.CoverItem(cc.req.Granularity, rd.OID, rd.Attr)
					if e, st := home.relay.Lookup(it, now); st == core.Hit {
						home.relayHits++
						cc.served = append(cc.served, server.ReplyItem{
							Item:    it,
							Version: e.Version,
							Refresh: e.ExpiresAt - now,
						})
						continue
					}
					home.relayMisses++
					cc.fwdBuf = append(cc.fwdBuf, rd)
				}
				forward = cc.fwdBuf
			}
			cc.forward = forward
			home.relayed += uint64(len(forward))
			cc.pc = fcLink
			m.Hold(c.latency)
			return server.Reply{}, false

		case fcLink:
			link := cs.home.links[cc.o]
			bytes := network.RequestSize(len(cc.parts[cc.o].accesses) - len(cc.forward))
			if !link.SendStep(m, &cc.send, bytes) {
				return server.Reply{}, false
			}
			remoteReq := cc.req
			remoteReq.Accesses = cc.parts[cc.o].accesses
			remoteReq.Need = cc.forward
			cc.call.Reset(c.nodes[cc.o].srv, remoteReq)
			cc.pc = fcRemote

		case fcRemote:
			rep, done := cc.call.Step(m)
			if !done {
				return server.Reply{}, false
			}
			cc.rep = rep
			cc.pc = fcBack
			m.Hold(c.latency)
			return server.Reply{}, false

		case fcBack:
			back := c.nodes[cc.o].links[cs.home.id]
			if !back.SendStep(m, &cc.send, cc.rep.WireSize()) {
				return server.Reply{}, false
			}
			// Fill the relay cache with what came back (leases included).
			home := cs.home
			if home.relay != nil && len(cc.rep.Items) > 0 {
				now := m.Now()
				batch := make([]core.BatchEntry, 0, len(cc.rep.Items))
				for _, item := range cc.rep.Items {
					batch = append(batch, core.BatchEntry{
						Item: item.Item,
						Entry: core.Entry{
							Version:   item.Version,
							ExpiresAt: now + item.Refresh,
							FetchedAt: now,
						},
					})
				}
				home.relay.InsertBatch(batch, now)
			}
			cc.out.Items = append(cc.out.Items, cc.served...)
			cc.out.Items = append(cc.out.Items, cc.rep.Items...)
			cc.o++
			cc.pc = fcNext
		}
	}
}
