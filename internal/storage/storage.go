// Package storage is a log-structured, file-backed key-value engine in the
// bitcask tradition: an append-only segment log on disk plus an in-memory
// hash index mapping every live key to its latest record's location. It is
// the persistence layer beneath the live serving store's "file:" backend
// and the simulator's disk tier (docs/STORAGE.md).
//
// Design points:
//
//   - Append-only segments. Writes never overwrite; a Put appends a
//     CRC-framed record to the active segment and repoints the index.
//     Sequential appends are what makes the <20 ms insert and <4 ms get
//     targets of ROADMAP.md reachable on commodity disks.
//   - Group commit. Under SyncGroup (the default) concurrent writers share
//     one fsync: each Put waits on the current commit epoch and a single
//     flusher syncs the batch. SyncAlways fsyncs per record; SyncNone
//     leaves durability to the OS.
//   - Crash recovery by log replay. Open scans every segment in order,
//     rebuilding the index; a torn tail (partial append cut off by a crash)
//     fails its CRC and is truncated away. Corruption anywhere but the log
//     tail is reported as ErrCorrupt, never silently skipped.
//   - Background compaction. When sealed segments accumulate enough
//     superseded records, a compactor rewrites the live ones and deletes
//     the garbage, bounding disk growth under update-heavy workloads.
//
// A Store is safe for concurrent use. Get runs under a read lock against
// concurrent appends; records in sealed segments are immutable.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors returned by the engine.
var (
	// ErrClosed marks operations on a closed store.
	ErrClosed = errors.New("storage: store is closed")
	// ErrCorrupt marks a CRC or framing failure outside the log tail —
	// data damage recovery must not paper over.
	ErrCorrupt = errors.New("storage: corrupt record")
	// ErrBadOptions marks an unusable Options value.
	ErrBadOptions = errors.New("storage: bad options")
)

// SyncMode selects the durability discipline for Put and Delete.
type SyncMode int

const (
	// SyncGroup batches concurrent writers into shared fsyncs (group
	// commit): every Put returns only after its record is durable, but
	// writers arriving within the same commit window share one fsync.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs after every record — maximum durability, one
	// fsync per write.
	SyncAlways
	// SyncNone never fsyncs; the OS flushes on its own schedule. A crash
	// may lose recent writes but never corrupts recovered state (the CRC
	// frame guards torn tails either way).
	SyncNone
)

// String renders the mode as its DSN spelling.
func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("sync(%d)", int(m))
	}
}

// ParseSyncMode maps a DSN spelling to a SyncMode ("" selects SyncGroup).
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("%w: sync mode %q (want group|always|none)", ErrBadOptions, s)
	}
}

// Default engine parameters.
const (
	// DefaultSegmentBytes is the active-segment rotation threshold.
	DefaultSegmentBytes = 64 << 20
	// DefaultGroupWindow is how long the group-commit flusher waits for
	// co-batching writers before fsyncing.
	DefaultGroupWindow = 2 * time.Millisecond
	// DefaultCompactGarbage is the superseded-bytes fraction of sealed
	// segments that triggers background compaction.
	DefaultCompactGarbage = 0.5
	// DefaultCompactMinBytes is the minimum sealed garbage before
	// compaction is worth the rewrite.
	DefaultCompactMinBytes = 1 << 20
)

// Options parameterizes Open.
type Options struct {
	// Path is the storage directory; it is created if absent. Segments
	// are files named seg-NNNNNNNN.log inside it.
	Path string
	// Sync selects the durability discipline (default SyncGroup).
	Sync SyncMode
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default DefaultSegmentBytes).
	SegmentBytes int64
	// GroupWindow is the group-commit batching window (default
	// DefaultGroupWindow; meaningful only under SyncGroup).
	GroupWindow time.Duration
	// CompactGarbage is the sealed-garbage fraction that triggers
	// background compaction (default DefaultCompactGarbage; <0 disables
	// automatic compaction).
	CompactGarbage float64
	// CompactMinBytes is the minimum sealed garbage in bytes before
	// automatic compaction fires (default DefaultCompactMinBytes).
	CompactMinBytes int64
	// Fsync overrides the file-sync primitive — the crash-test hook for
	// injected fsync faults. Nil uses (*os.File).Sync.
	Fsync func(*os.File) error
}

// indexEntry locates a key's latest record.
type indexEntry struct {
	seg    int   // segment ID
	off    int64 // record start offset
	size   int64 // full framed record size
	keyLen int
	valLen int
}

// segment is one on-disk log file. The active segment appends through w;
// every segment keeps a read handle for Get's positional reads.
type segment struct {
	id   int
	path string
	r    *os.File
	size int64
}

// Store is the engine instance. See the package comment for the
// concurrency model.
type Store struct {
	opts Options

	mu     sync.RWMutex // index + segment set + active-segment append state
	index  map[string]indexEntry
	segs   map[int]*segment
	active *segment
	w      *os.File // append handle of the active segment
	closed bool

	liveBytes   int64 // bytes of records the index still points at
	sealedBytes int64 // total bytes in sealed segments
	sealedLive  int64 // live bytes residing in sealed segments

	// Group commit: writers wait on the current epoch; one flusher per
	// epoch fsyncs and releases the batch.
	commitMu sync.Mutex
	epoch    *commitEpoch

	compacting bool // single-flight guard for background compaction
	compactWG  sync.WaitGroup

	// Counters. gets is atomic (bumped on the read path, under RLock);
	// the rest are written under mu.
	gets               uint64 // atomic
	puts, dels         uint64
	syncs, compactions uint64
	recovered          uint64 // records replayed by Open
	truncatedBytes     int64  // torn-tail bytes discarded by Open

	// Latency histograms (nil when not registered). obsMu serializes
	// Observe calls: obs instruments are unsynchronized by design.
	obsMu  sync.Mutex
	obsGet *obs.Histogram
	obsPut *obs.Histogram
}

// commitEpoch is one group-commit generation: everything appended before
// the flusher runs becomes durable together.
type commitEpoch struct {
	done chan struct{}
	err  error
}

// Stats is a point-in-time snapshot of the engine.
type Stats struct {
	// Path is the storage directory.
	Path string `json:"path"`
	// Sync is the durability mode's DSN spelling.
	Sync string `json:"sync"`
	// Keys is the number of live keys.
	Keys int `json:"keys"`
	// Segments is the number of on-disk segment files.
	Segments int `json:"segments"`
	// DiskBytes is the total on-disk log size.
	DiskBytes int64 `json:"disk_bytes"`
	// LiveBytes is the portion of DiskBytes the index still references.
	LiveBytes int64 `json:"live_bytes"`
	// Puts/Gets/Deletes/Syncs/Compactions are cumulative operation counts.
	Puts        uint64 `json:"puts"`
	Gets        uint64 `json:"gets"`
	Deletes     uint64 `json:"deletes"`
	Syncs       uint64 `json:"syncs"`
	Compactions uint64 `json:"compactions"`
	// RecoveredRecords is how many records Open replayed; TruncatedBytes
	// is how much torn tail it discarded.
	RecoveredRecords uint64 `json:"recovered_records"`
	TruncatedBytes   int64  `json:"truncated_bytes"`
}

// Open opens (or creates) the store at opts.Path, replaying every segment
// to rebuild the index. A torn record at the log tail is truncated away;
// corruption elsewhere returns ErrCorrupt.
func Open(opts Options) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("%w: empty path", ErrBadOptions)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = DefaultGroupWindow
	}
	if opts.CompactGarbage == 0 {
		opts.CompactGarbage = DefaultCompactGarbage
	}
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = DefaultCompactMinBytes
	}
	if opts.Fsync == nil {
		opts.Fsync = (*os.File).Sync
	}
	if err := os.MkdirAll(opts.Path, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{
		opts:  opts,
		index: make(map[string]indexEntry),
		segs:  make(map[int]*segment),
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segPath names segment id's file.
func (s *Store) segPath(id int) string {
	return filepath.Join(s.opts.Path, fmt.Sprintf("seg-%08d.log", id))
}

// recover scans the directory, replays every segment in ID order, and
// opens the highest segment for append (creating seg 0 on a fresh store).
func (s *Store) recover() error {
	names, err := filepath.Glob(filepath.Join(s.opts.Path, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, n := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(n), "seg-%08d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)

	for i, id := range ids {
		last := i == len(ids)-1
		if err := s.replaySegment(id, last); err != nil {
			return err
		}
	}
	activeID := 0
	if len(ids) > 0 {
		activeID = ids[len(ids)-1]
	}
	if err := s.openActive(activeID, len(ids) == 0); err != nil {
		return err
	}
	s.recomputeSealed()
	return nil
}

// openActive opens segment id for append (creating it when create is set)
// and installs it as the active segment.
func (s *Store) openActive(id int, create bool) error {
	path := s.segPath(id)
	flags := os.O_WRONLY | os.O_APPEND
	if create {
		flags |= os.O_CREATE
	}
	w, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	seg := s.segs[id]
	if seg == nil {
		r, err := os.Open(path)
		if err != nil {
			w.Close()
			return fmt.Errorf("storage: %w", err)
		}
		seg = &segment{id: id, path: path, r: r}
		s.segs[id] = seg
	}
	s.active = seg
	s.w = w
	return nil
}

// rotate seals the active segment and starts a fresh one. Caller holds mu.
// The outgoing handle is fsynced before it closes, establishing the
// invariant that sealed segments are always durable — group-commit
// flushers therefore only ever need to fsync the current active handle.
func (s *Store) rotate() error {
	if s.opts.Sync != SyncNone {
		if err := s.opts.Fsync(s.w); err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
	}
	if err := s.w.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.sealedBytes += s.active.size
	s.sealedLive += s.liveInSeg(s.active.id)
	next := s.active.id + 1
	if err := s.openActive(next, true); err != nil {
		return err
	}
	return s.syncDirLocked()
}

// liveInSeg sums live record bytes residing in segment id. Caller holds mu.
// O(keys); called only at rotation and compaction setup.
func (s *Store) liveInSeg(id int) int64 {
	var n int64
	for _, e := range s.index {
		if e.seg == id {
			n += e.size
		}
	}
	return n
}

// recomputeSealed rebuilds the sealed-bytes accounting after recovery or
// compaction in one pass over the index. Caller holds mu (or has
// exclusive access).
func (s *Store) recomputeSealed() {
	s.sealedBytes, s.sealedLive = 0, 0
	activeID := -1
	if s.active != nil {
		activeID = s.active.id
	}
	for id, seg := range s.segs {
		if id != activeID {
			s.sealedBytes += seg.size
		}
	}
	for _, e := range s.index {
		if e.seg != activeID {
			s.sealedLive += e.size
		}
	}
}

// Put stores value under key, durably per the sync mode.
func (s *Store) Put(key string, value []byte) error {
	return s.append(key, value, false)
}

// Delete removes key by appending a tombstone; reading it afterwards
// misses. Deleting an absent key is a no-op (no tombstone written).
func (s *Store) Delete(key string) error {
	s.mu.RLock()
	_, present := s.index[key]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !present {
		return nil
	}
	return s.append(key, nil, true)
}

// append frames and writes one record, updates the index, and waits for
// durability per the sync mode.
func (s *Store) append(key string, value []byte, tombstone bool) error {
	start := time.Now()
	rec := encodeRecord(key, value, tombstone)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.active.size >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if _, err := s.w.Write(rec); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("storage: %w", err)
	}
	off := s.active.size
	s.active.size += int64(len(rec))
	s.accountReplace(key)
	if tombstone {
		delete(s.index, key)
		s.dels++
	} else {
		s.index[key] = indexEntry{
			seg: s.active.id, off: off, size: int64(len(rec)),
			keyLen: len(key), valLen: len(value),
		}
		s.liveBytes += int64(len(rec))
		s.puts++
	}
	s.mu.Unlock()

	err := s.waitDurable()
	s.observePut(time.Since(start))
	s.maybeCompact()
	return err
}

// accountReplace moves a superseded record's bytes from live to garbage.
// Caller holds mu.
func (s *Store) accountReplace(key string) {
	if old, ok := s.index[key]; ok {
		s.liveBytes -= old.size
		if s.active == nil || old.seg != s.active.id {
			s.sealedLive -= old.size
		}
	}
}

// waitDurable blocks until the just-appended record is durable per the
// sync mode. Only the current active handle is ever fsynced: if the record
// landed in a segment that has since been sealed, rotate already made it
// durable. mu is read-held across the fsync so rotation cannot close the
// handle mid-call.
func (s *Store) waitDurable() error {
	switch s.opts.Sync {
	case SyncNone:
		return nil
	case SyncAlways:
		s.commitMu.Lock()
		s.mu.RLock()
		err := s.opts.Fsync(s.w)
		s.mu.RUnlock()
		s.commitMu.Unlock()
		if err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
		s.mu.Lock()
		s.syncs++
		s.mu.Unlock()
		return nil
	}

	// Group commit: join (or open) the current epoch, then wait for its
	// flusher. The flusher waits out the batching window so writers
	// arriving meanwhile share the fsync.
	s.commitMu.Lock()
	ep := s.epoch
	if ep == nil {
		ep = &commitEpoch{done: make(chan struct{})}
		s.epoch = ep
		go s.flushEpoch(ep)
	}
	s.commitMu.Unlock()
	<-ep.done
	if ep.err != nil {
		return fmt.Errorf("storage: fsync: %w", ep.err)
	}
	return nil
}

// flushEpoch is the group-commit flusher: wait the batching window, close
// the epoch to new writers, fsync once, release the batch. Records that
// rotated into a sealed segment meanwhile are already durable (see
// rotate), so fsyncing the current handle covers the whole batch.
func (s *Store) flushEpoch(ep *commitEpoch) {
	time.Sleep(s.opts.GroupWindow)
	s.commitMu.Lock()
	s.epoch = nil
	s.mu.RLock()
	if s.closed {
		ep.err = ErrClosed
	} else {
		ep.err = s.opts.Fsync(s.w)
	}
	s.mu.RUnlock()
	s.commitMu.Unlock()
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	close(ep.done)
}

// Get returns the latest value stored under key. The second result
// reports presence; absent keys return (nil, false, nil).
func (s *Store) Get(key string) ([]byte, bool, error) {
	start := time.Now()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	atomic.AddUint64(&s.gets, 1)
	e, ok := s.index[key]
	if !ok {
		s.mu.RUnlock()
		s.observeGet(time.Since(start))
		return nil, false, nil
	}
	seg := s.segs[e.seg]
	buf := make([]byte, e.size)
	_, err := seg.r.ReadAt(buf, e.off)
	s.mu.RUnlock()
	if err != nil {
		return nil, false, fmt.Errorf("storage: %w", err)
	}
	_, value, tombstone, err := decodeRecord(buf)
	if err != nil {
		return nil, false, err
	}
	if tombstone {
		return nil, false, nil
	}
	s.observeGet(time.Since(start))
	return value, true, nil
}

// Has reports whether key is live, without reading its value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// DiskBytes returns the total on-disk log size.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskBytesLocked()
}

// diskBytesLocked sums segment sizes. Caller holds mu.
func (s *Store) diskBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// Scan visits every live key with the given prefix, in unspecified order;
// fn returning false stops the scan. The value slice is private to fn's
// invocation. Scan holds the read lock for its whole duration; it is a
// recovery/admin path, not a hot path.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for key, e := range s.index {
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		seg := s.segs[e.seg]
		buf := make([]byte, e.size)
		if _, err := seg.r.ReadAt(buf, e.off); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		_, value, tombstone, err := decodeRecord(buf)
		if err != nil {
			return err
		}
		if tombstone {
			continue
		}
		if !fn(key, value) {
			return nil
		}
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of mode.
func (s *Store) Sync() error {
	s.commitMu.Lock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.commitMu.Unlock()
		return ErrClosed
	}
	err := s.opts.Fsync(s.w)
	s.mu.RUnlock()
	s.commitMu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return nil
}

// Stats snapshots the engine's counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Path:             s.opts.Path,
		Sync:             s.opts.Sync.String(),
		Keys:             len(s.index),
		Segments:         len(s.segs),
		DiskBytes:        s.diskBytesLocked(),
		LiveBytes:        s.liveBytes,
		Puts:             s.puts,
		Gets:             atomic.LoadUint64(&s.gets),
		Deletes:          s.dels,
		Syncs:            s.syncs,
		Compactions:      s.compactions,
		RecoveredRecords: s.recovered,
		TruncatedBytes:   s.truncatedBytes,
	}
}

// Register wires the engine's instruments into an observability registry:
// wall-clock get/put latency histograms (milliseconds) and disk-size
// gauges. Latencies are measured facts — they belong in manifests, never
// in deterministic report tables. No-op when the registry is disabled.
func (s *Store) Register(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	s.obsMu.Lock()
	s.obsGet = reg.Histogram("storage.get_ms", 1e-4, 1e5)
	s.obsPut = reg.Histogram("storage.put_ms", 1e-4, 1e5)
	s.obsMu.Unlock()
	reg.Gauge("storage.disk_bytes", func() float64 { return float64(s.DiskBytes()) })
	reg.Gauge("storage.keys", func() float64 { return float64(s.Len()) })
}

// LatencySummary reports the measured wall-clock latency quantiles in
// milliseconds (zeros when the store was never registered or saw no
// traffic). Manifest material: measured, not simulated.
func (s *Store) LatencySummary() (getP50, getP99, putP50, putP99 float64) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return s.obsGet.Quantile(0.5), s.obsGet.Quantile(0.99),
		s.obsPut.Quantile(0.5), s.obsPut.Quantile(0.99)
}

func (s *Store) observeGet(d time.Duration) {
	s.obsMu.Lock()
	s.obsGet.Observe(float64(d) / float64(time.Millisecond))
	s.obsMu.Unlock()
}

func (s *Store) observePut(d time.Duration) {
	s.obsMu.Lock()
	s.obsPut.Observe(float64(d) / float64(time.Millisecond))
	s.obsMu.Unlock()
}

// Close flushes and closes the store. Pending group commits are released;
// further operations return ErrClosed.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	w := s.w
	s.mu.Unlock()

	var err error
	if s.opts.Sync != SyncNone {
		s.commitMu.Lock()
		err = s.opts.Fsync(w)
		s.commitMu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	s.closeFiles()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// closeFiles closes every read handle. Caller holds mu or has exclusive
// access.
func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.r != nil {
			seg.r.Close()
			seg.r = nil
		}
	}
}

// crcTable is the Castagnoli table shared by framing and recovery.
var crcTable = crc32.MakeTable(crc32.Castagnoli)
