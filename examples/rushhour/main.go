// Rushhour: vehicle-traffic arrivals and commuter disconnections (§4's
// Bursty pattern and Experiment #6). Queries cluster in a morning commute
// burst (07:00–10:00) and an evening rush (16:00–19:00); some commuters
// also lose connectivity for hours at a time (parking garages, tunnels,
// office partitions) and keep working from their cache.
//
// The example shows two things the paper highlights:
//
//   - the shared 19.2 Kbps downlink backlogs during bursts, inflating
//     response times exactly when demand peaks (Experiment #3);
//
//   - disconnected clients keep answering queries from expired cache
//     entries, trading availability for coherence errors (Experiment #6).
//
//     go run ./examples/rushhour
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	base := []experiment.Option{
		experiment.WithSeed(99),
		experiment.WithHorizonDays(2),
		experiment.WithGranularity(core.HybridCaching),
		experiment.WithPolicy("ewma-0.5"),
		experiment.WithQueryKind(workload.Associative),
		experiment.WithHeat(experiment.SkewedHeat),
		experiment.WithUpdateProb(0.1),
	}
	run := func(extra ...experiment.Option) experiment.Result {
		sc, err := experiment.New(append(append([]experiment.Option{}, base...), extra...)...)
		if err != nil {
			log.Fatal(err)
		}
		return sc.Run()
	}

	fmt.Println("== arrival patterns: steady Poisson vs commuter bursts ==")
	fmt.Printf("%-8s  %8s  %10s  %14s  %10s\n",
		"arrival", "hit %", "resp (s)", "down util %", "down wait")
	for _, a := range []experiment.ArrivalKind{
		experiment.PoissonArrival, experiment.BurstyArrival,
	} {
		res := run(experiment.WithArrival(a))
		fmt.Printf("%-8s  %8.1f  %10.3f  %14.1f  %9.3fs\n",
			res.Config.ArrivalName(), 100*res.HitRatio, res.MeanResponse,
			100*res.DownlinkUtilization, res.DownlinkMeanWait)
	}
	fmt.Println("\nsame average load — but the bursts queue up behind the downlink.")

	fmt.Println("\n== response time by hour of day (Bursty) ==")
	res := run(experiment.WithArrival(experiment.BurstyArrival))
	for h := 0; h < 24; h += 3 {
		for hh := h; hh < h+3; hh++ {
			marker := "  "
			if (hh >= 7 && hh < 10) || (hh >= 16 && hh < 19) {
				marker = "* " // burst period
			}
			fmt.Printf("%s%02d:00 %7.2fs (%4d queries)   ", marker, hh,
				res.HourlyResponse[hh], res.HourlyQueries[hh])
		}
		fmt.Println()
	}
	fmt.Println("(* = commute burst)")

	fmt.Println("\n== commuter disconnections (Bursty arrivals, 4 of 10 offline) ==")
	fmt.Printf("%-10s  %8s  %8s  %12s\n", "outage (h)", "hit %", "err %", "unavailable")
	for _, hours := range []float64{0, 2, 5, 8} {
		res := run(
			experiment.WithArrival(experiment.BurstyArrival),
			experiment.WithDisconnection(4, hours),
		)
		fmt.Printf("%-10g  %8.1f  %8.2f  %12d\n",
			hours, 100*res.HitRatio, 100*res.ErrorRate, res.Unavailable)
	}
	fmt.Println("\nlonger outages mean more reads served from expired cache entries:")
	fmt.Println("availability stays high, coherence errors grow — the paper's")
	fmt.Println("Figure 8 trade-off.")
}
