package experiment

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table for experiment output; the rows
// mirror the series of the paper's figures so EXPERIMENTS.md can be
// regenerated mechanically.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; cell count should match the header.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted cells: each argument is rendered with
// %v except float64, which gets %.4g.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Report bundles an experiment's raw results and formatted tables. Notes
// carry measured, machine-dependent facts (wall-clock storage latencies,
// disk bytes) that belong next to the tables but must stay out of the
// deterministic table hashes — report.Write hashes only Tables.
type Report struct {
	Name    string
	Results []Result
	Tables  []*Table
	Notes   []string
}

// String renders all tables, then any notes.
func (r *Report) String() string {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(t.String())
	}
	for i, n := range r.Notes {
		if i == 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a ratio as a percentage with one decimal.
func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }

// secs formats a duration in seconds with three decimals.
func secs(x float64) string { return fmt.Sprintf("%.3f", x) }
