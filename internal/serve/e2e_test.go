package serve

import (
	"context"
	"math"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
)

// hitRatioTolerance bounds the sim-vs-live hit-ratio gap the end-to-end
// test accepts. The replay reuses the simulator's exact workload draws, so
// the residual gap comes only from the update-coin stream (private per
// client instead of the simulated server's shared stream) and wall-clock
// jitter in lease expiry — both small against the ~0.5-0.8 hit ratios the
// configs below produce.
const hitRatioTolerance = 0.08

// e2eConfig is a short AC scenario: ~52 queries per client over 0.06
// virtual days, 4 clients, 10% update probability.
func e2eConfig() experiment.Config {
	return experiment.Config{
		Seed:        7,
		NumClients:  4,
		NumObjects:  400,
		Days:        0.06,
		WarmupDays:  0.01,
		Granularity: core.AttributeCaching,
		UpdateProb:  0.1,
	}
}

// TestLiveReplayMatchesSimulator is the tentpole's acceptance test: boot
// the HTTP service on a loopback port, replay the same scenario the
// simulator runs, and require the live hit ratio to land within
// hitRatioTolerance of the simulated one.
func TestLiveReplayMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock replay")
	}
	cfg := e2eConfig()

	sc, err := StoreConfig(cfg)
	if err != nil {
		t.Fatalf("StoreConfig: %v", err)
	}
	st, err := Open("memory", sc)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	svc := NewService("127.0.0.1:0", NewHandler(st, HTTPConfig{}))
	addr, err := svc.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go svc.Serve()
	defer svc.Shutdown(0)

	live, err := Replay(context.Background(), ReplayConfig{
		BaseURL: "http://" + addr,
		Config:  cfg,
		Speedup: 1500, // 0.06 days ~ 3.5s of wall time
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sim := experiment.Run(cfg)

	t.Logf("sim: hit=%.4f err=%.4f queries=%d", sim.HitRatio, sim.ErrorRate, sim.QueriesIssued)
	t.Logf("live: hit=%.4f stale=%.4f err=%.4f queries=%d lag=%.1fvs wall=%.2fs",
		live.HitRatio, live.StaleRate, live.ErrorRate, live.Queries, live.MaxLagVirtual, live.WallSeconds)

	if live.Queries == 0 || live.Reads == 0 {
		t.Fatalf("replay issued no measured work: %+v", live)
	}
	if diff := math.Abs(live.HitRatio - sim.HitRatio); diff > hitRatioTolerance {
		t.Fatalf("live hit ratio %.4f vs simulated %.4f: |diff| %.4f exceeds tolerance %.2f",
			live.HitRatio, sim.HitRatio, diff, hitRatioTolerance)
	}
	// Coarser sanity on the error side: both should be small and of the
	// same magnitude; an always-stale or never-expiring live store fails
	// the hit-ratio gate long before this.
	if live.ErrorRate > sim.ErrorRate+hitRatioTolerance {
		t.Fatalf("live error rate %.4f vs simulated %.4f", live.ErrorRate, sim.ErrorRate)
	}
}

func TestValidateLiveRejections(t *testing.T) {
	base := e2eConfig()
	cases := []struct {
		name string
		mod  func(*experiment.Config)
	}{
		{"nc granularity", func(c *experiment.Config) { c.Granularity = core.NoCache }},
		{"invalidation coherence", func(c *experiment.Config) { c.Coherence = coherence.InvalidationReportStrategy }},
		{"multi-cell", func(c *experiment.Config) { c.Cells = 4 }},
		{"disconnection", func(c *experiment.Config) { c.DisconnectedClients = 1 }},
		{"lossy channel", func(c *experiment.Config) { c.LossRate = 0.1 }},
		{"cooperative", func(c *experiment.Config) { c.CoopPeers = 2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if err := ValidateLive(cfg); err == nil {
			t.Errorf("%s: accepted; want ErrUnsupported", tc.name)
		}
	}
	if err := ValidateLive(base); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}

func TestReplayRejectsBadTarget(t *testing.T) {
	if _, err := Replay(context.Background(), ReplayConfig{Config: e2eConfig()}); err == nil {
		t.Fatal("replay without a base URL accepted")
	}
	cfg := e2eConfig()
	cfg.Cells = 2
	if _, err := Replay(context.Background(), ReplayConfig{BaseURL: "http://x", Config: cfg}); err == nil {
		t.Fatal("unsupported config accepted")
	}
}
