package replacement

// This file implements the paper's proposed duration-score policies (§3.3):
// Mean, Window(W) and EWMA(α), on the indexed victim-selection engine in
// indexed.go. Each scores an item by a statistic over its access
// inter-arrival durations; the victim is the item with the highest
// *effective* mean duration, where the effective value folds in the open
// interval since the last access (see the package comment).
//
// The open interval makes the scores time-varying, so unlike LRU these
// heaps cannot rank items outright. Instead each class keys on the
// time-invariant part of the score — the `now` term is common to the whole
// class and moves every item's score in lockstep — and the bound-pruned
// search folds `now` back in at eviction time, visiting only the heap
// prefix whose bound can still beat the current best. Scoring formulas
// live in states.go, shared with the scanCore references in reference.go.

import (
	"fmt"
	"math"

	"repro/internal/oodb"
	"repro/internal/stats"
)

// ---------------------------------------------------------------- Mean ----

// meanPolicy implements the paper's mean scheme: the score is the cumulative
// mean inter-arrival duration, updated incrementally as
// M_{n+1} = (n·M_n + d_{n+1})/(n+1), and — crucially — only on accesses.
// An item whose accesses stop keeps its historical score ("every single
// trace from the beginning of the access history remains in effect", §3.3),
// which is exactly why the scheme collapses when the hot spot changes
// (Experiment #2). Items with no recorded duration yet are scored by the
// open interval since their only access so they remain evictable.
//
// Indexing: settled items (n > 0) score exactly their mean — a constant —
// so they sit in a class keyed by −mean with an exact bound; fresh items
// (single access) score by the open interval and are keyed by last access.
type meanPolicy struct {
	victimCore[meanState]
}

// NewMean returns the mean replacement scheme.
func NewMean() Policy {
	p := &meanPolicy{}
	p.t = newSlotTable[meanState]()
	p.classes = []classHeap{
		{sc: meanSettledScorer{p}},
		{sc: meanFreshScorer{p}},
	}
	return p
}

// NewMeanFactory returns a Factory for NewMean.
func NewMeanFactory() Factory { return func() Policy { return NewMean() } }

type meanSettledScorer struct{ p *meanPolicy }

func (sc meanSettledScorer) bound(key, now float64) float64 { return -key }
func (sc meanSettledScorer) cutoff(now, best float64) float64 {
	return padCutoff(-best, now, best)
}
func (sc meanSettledScorer) eval(slot int32, now float64) float64 {
	return meanBadness(&sc.p.t.states[slot], now)
}

type meanFreshScorer struct{ p *meanPolicy }

func (sc meanFreshScorer) bound(key, now float64) float64 { return now - key }
func (sc meanFreshScorer) cutoff(now, best float64) float64 {
	return padCutoff(now-best, now, best)
}
func (sc meanFreshScorer) eval(slot int32, now float64) float64 {
	return meanBadness(&sc.p.t.states[slot], now)
}

func (p *meanPolicy) Name() string { return "mean" }

func (p *meanPolicy) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.bump(slot, now)
		return
	}
	slot, _ := p.t.add(it, meanState{last: now})
	p.grow()
	p.classes[1].heap.push(slot, now) // fresh
}

func (p *meanPolicy) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.bump(slot, now)
}

func (p *meanPolicy) bump(slot int32, now float64) {
	s := &p.t.states[slot]
	s.record(now)
	p.classes[1].heap.remove(slot) // no-op once settled
	p.classes[0].heap.update(slot, -s.mean)
}

func (p *meanPolicy) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *meanPolicy) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *meanPolicy) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *meanPolicy) Len() int { return p.t.len() }

// -------------------------------------------------------------- Window ----

// windowPolicy implements the paper's window scheme: the score is the mean
// inter-arrival duration over the W most recent durations, computed with
// the paper's own recurrence M' = M + (d_new − d_oldest)/W — note the fixed
// divisor W: a partially filled window is scored as if the missing
// durations were zero, which makes young items look hot until W accesses
// accumulate. The open interval since the last access joins the window at
// eviction time so abandoned items eventually age out. Storage per item is
// O(W) — the cost §3.3 points out; evicted items donate their window
// buffer to a free list so steady-state churn allocates nothing.
//
// Indexing: the fixed divisor makes the whole score affine in now:
// score = (now − key)/W with key = last − ΣW + oldest-if-full, so a single
// class with a padded bound covers every item.
type windowPolicy struct {
	victimCore[winState]
	w    int
	free []stats.Window // recycled buffers of removed items
}

// NewWindow returns the window scheme with the given window size.
func NewWindow(w int) Policy {
	if w < 1 {
		panic("replacement: window size must be >= 1")
	}
	p := &windowPolicy{w: w}
	p.t = newSlotTable[winState]()
	p.classes = []classHeap{{sc: windowScorer{p}}}
	return p
}

// NewWindowFactory returns a Factory for NewWindow(w).
func NewWindowFactory(w int) Factory { return func() Policy { return NewWindow(w) } }

type windowScorer struct{ p *windowPolicy }

func (sc windowScorer) bound(key, now float64) float64 {
	// Padding: the key's algebraic rearrangement of the reference formula
	// carries rounding from intermediates of magnitude up to ~W·now, a few
	// parts in 10^15 of that; pad proportionally with a large margin.
	pad := 1e-9 + 1e-13*float64(sc.p.w+2)*(math.Abs(now)+math.Abs(key))
	return (now-key)/float64(sc.p.w) + pad
}
func (sc windowScorer) cutoff(now, best float64) float64 {
	// Invert (now-key)/w + pad(key) >= best, doubling the bound's own pad
	// to absorb evaluating it at the cutoff instead of the true key.
	w := float64(sc.p.w)
	k := now - w*best
	k += w * (2e-9 + 2e-13*float64(sc.p.w+2)*(math.Abs(now)+math.Abs(k)))
	return padCutoff(k, now, best)
}
func (sc windowScorer) eval(slot int32, now float64) float64 {
	return windowBadness(&sc.p.t.states[slot], sc.p.w, now)
}

func (p *windowPolicy) keyOf(s *winState) float64 {
	k := s.last - s.win.Mean()*float64(s.win.Count())
	if s.win.Count() == s.win.Size() {
		k += s.win.Oldest()
	}
	return k
}

func (p *windowPolicy) Name() string { return fmt.Sprintf("win-%d", p.w) }

func (p *windowPolicy) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.bump(slot, now)
		return
	}
	var win stats.Window
	if n := len(p.free); n > 0 {
		win = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		win = stats.MakeWindow(p.w)
	}
	slot, _ := p.t.add(it, winState{win: win, last: now})
	p.grow()
	p.classes[0].heap.push(slot, p.keyOf(&p.t.states[slot]))
}

func (p *windowPolicy) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.bump(slot, now)
}

func (p *windowPolicy) bump(slot int32, now float64) {
	s := &p.t.states[slot]
	s.record(now)
	p.classes[0].heap.update(slot, p.keyOf(s))
}

func (p *windowPolicy) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *windowPolicy) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *windowPolicy) Remove(it oodb.Item) {
	slot, ok := p.t.lookup(it)
	if !ok {
		return
	}
	win := p.t.states[slot].win // value copy owns the buffer after removal
	p.removeSlot(slot)
	win.Reset()
	p.free = append(p.free, win)
}
func (p *windowPolicy) Len() int { return p.t.len() }

// ---------------------------------------------------------------- EWMA ----

// ewmaPolicy implements the paper's EWMA scheme: the score is the
// exponentially weighted moving average of inter-arrival durations,
// S ← α·S + (1−α)·d. O(1) state per item, fast adaptation — the policy the
// paper recommends.
//
// Indexing: score = α·S + (1−α)(now − last) = (1−α)·now − key with
// key = (1−α)·last − α·S, so settled items form one class with a padded
// bound; fresh items (score = open interval) are keyed by last access.
type ewmaPolicy struct {
	victimCore[ewmaState]
	alpha float64
}

// NewEWMA returns the EWMA scheme with retention weight alpha in [0, 1).
func NewEWMA(alpha float64) Policy {
	if alpha < 0 || alpha >= 1 {
		panic("replacement: EWMA alpha must be in [0,1)")
	}
	p := &ewmaPolicy{alpha: alpha}
	p.t = newSlotTable[ewmaState]()
	p.classes = []classHeap{
		{sc: ewmaSettledScorer{p}},
		{sc: ewmaFreshScorer{p}},
	}
	return p
}

// NewEWMAFactory returns a Factory for NewEWMA(alpha).
func NewEWMAFactory(alpha float64) Factory { return func() Policy { return NewEWMA(alpha) } }

type ewmaSettledScorer struct{ p *ewmaPolicy }

func (sc ewmaSettledScorer) bound(key, now float64) float64 {
	// Padding: the affine rearrangement's rounding is a few ulps of
	// magnitude ~now; pad with a large margin.
	return (1-sc.p.alpha)*now - key + (1e-9 + 1e-12*(math.Abs(now)+math.Abs(key)))
}
func (sc ewmaSettledScorer) cutoff(now, best float64) float64 {
	// Invert (1-α)·now - key + pad(key) >= best, doubling the bound's pad
	// to absorb evaluating it at the cutoff instead of the true key.
	k := (1-sc.p.alpha)*now - best
	k += 2e-9 + 2e-12*(math.Abs(now)+math.Abs(k))
	return padCutoff(k, now, best)
}
func (sc ewmaSettledScorer) eval(slot int32, now float64) float64 {
	return ewmaBadness(&sc.p.t.states[slot], sc.p.alpha, now)
}

type ewmaFreshScorer struct{ p *ewmaPolicy }

func (sc ewmaFreshScorer) bound(key, now float64) float64 { return now - key }
func (sc ewmaFreshScorer) cutoff(now, best float64) float64 {
	return padCutoff(now-best, now, best)
}
func (sc ewmaFreshScorer) eval(slot int32, now float64) float64 {
	return ewmaBadness(&sc.p.t.states[slot], sc.p.alpha, now)
}

func (p *ewmaPolicy) Name() string { return fmt.Sprintf("ewma-%g", p.alpha) }

func (p *ewmaPolicy) OnInsert(it oodb.Item, now float64) {
	if slot, ok := p.t.lookup(it); ok {
		p.bump(slot, now)
		return
	}
	slot, _ := p.t.add(it, ewmaState{last: now})
	p.grow()
	p.classes[1].heap.push(slot, now) // fresh
}

func (p *ewmaPolicy) OnAccess(it oodb.Item, now float64) {
	slot, ok := p.t.lookup(it)
	mustTracked(p.Name(), ok, it)
	p.bump(slot, now)
}

func (p *ewmaPolicy) bump(slot int32, now float64) {
	s := &p.t.states[slot]
	s.record(p.alpha, now)
	p.classes[1].heap.remove(slot) // no-op once settled
	p.classes[0].heap.update(slot, (1-p.alpha)*s.last-p.alpha*s.value)
}

func (p *ewmaPolicy) Victim(now float64) (oodb.Item, bool)   { return p.victim(now) }
func (p *ewmaPolicy) Victims(now float64, n int) []oodb.Item { return p.victims(now, n) }
func (p *ewmaPolicy) Remove(it oodb.Item) {
	if slot, ok := p.t.lookup(it); ok {
		p.removeSlot(slot)
	}
}
func (p *ewmaPolicy) Len() int { return p.t.len() }
