package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// Analysis summarizes a set of query records (typically parsed back from a
// CSV trace): the run-level metrics plus per-client and per-hour
// breakdowns.
type Analysis struct {
	Queries     int
	Reads       int
	Hits        int
	Stale       int
	Unavailable int
	Errors      int
	Remote      int

	Response stats.Summary
	// ResponseHist buckets response times logarithmically from 10 ms to
	// 1000 s — cache hits through downlink backlog on one chart.
	ResponseHist *stats.Histogram

	PerClient map[int]*stats.Summary // response time per client
	PerHour   [24]stats.Summary      // response time by hour of day

	RequestBytes uint64
	ReplyBytes   uint64
}

// Analyze folds records into an Analysis.
func Analyze(records []QueryRecord) *Analysis {
	a := &Analysis{
		PerClient:    make(map[int]*stats.Summary),
		ResponseHist: stats.NewLogHistogram(0.01, 1000, 25),
	}
	for _, r := range records {
		a.Queries++
		a.Reads += r.Reads
		a.Hits += r.Hits
		a.Stale += r.Stale
		a.Unavailable += r.Unavailable
		a.Errors += r.Errors
		if r.Remote {
			a.Remote++
		}
		rt := r.ResponseTime()
		a.Response.Add(rt)
		a.ResponseHist.Add(rt)
		cs := a.PerClient[r.ClientID]
		if cs == nil {
			cs = &stats.Summary{}
			a.PerClient[r.ClientID] = cs
		}
		cs.Add(rt)
		hour := int(r.IssuedAt/3600) % 24
		if hour >= 0 && hour < 24 {
			a.PerHour[hour].Add(rt)
		}
		a.RequestBytes += uint64(r.RequestBytes)
		a.ReplyBytes += uint64(r.ReplyBytes)
	}
	return a
}

// HitRatio returns hits/reads.
func (a *Analysis) HitRatio() float64 {
	if a.Reads == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Reads)
}

// ErrorRate returns errors/reads.
func (a *Analysis) ErrorRate() float64 {
	if a.Reads == 0 {
		return 0
	}
	return float64(a.Errors) / float64(a.Reads)
}

// WriteReport renders a human-readable summary.
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "queries        %d (%d remote)\n", a.Queries, a.Remote)
	fmt.Fprintf(w, "reads          %d  hit %.1f%%  stale %d  unavailable %d  err %.2f%%\n",
		a.Reads, 100*a.HitRatio(), a.Stale, a.Unavailable, 100*a.ErrorRate())
	fmt.Fprintf(w, "response       mean %.3fs  p50 %.3fs  p95 %.3fs  p99 %.3fs  max %.3fs\n",
		a.Response.Mean(), a.Response.Percentile(50), a.Response.Percentile(95),
		a.Response.Percentile(99), a.Response.Max())
	fmt.Fprintf(w, "wire           %d request bytes, %d reply bytes\n",
		a.RequestBytes, a.ReplyBytes)

	fmt.Fprintf(w, "\nresponse-time distribution (s):\n")
	a.ResponseHist.Render(w, 40)

	ids := make([]int, 0, len(a.PerClient))
	for id := range a.PerClient {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "\nper client:\n")
	for _, id := range ids {
		s := a.PerClient[id]
		fmt.Fprintf(w, "  client %-3d  %5d queries  mean %.3fs  p95 %.3fs\n",
			id, s.Count(), s.Mean(), s.Percentile(95))
	}
	fmt.Fprintf(w, "\nby hour of day:\n")
	for h := 0; h < 24; h++ {
		s := &a.PerHour[h]
		if s.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %02d:00  %5d queries  mean %.3fs\n", h, s.Count(), s.Mean())
	}
}

// ReadCSV parses records from a CSV trace written by CSVTracer.
func ReadCSV(r io.Reader) ([]QueryRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parsing CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(CSVHeader) || rows[0][0] != CSVHeader[0] {
		return nil, fmt.Errorf("trace: unrecognized header %v", rows[0])
	}
	out := make([]QueryRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (QueryRecord, error) {
	var rec QueryRecord
	if len(row) != len(CSVHeader) {
		return rec, fmt.Errorf("%d columns, want %d", len(row), len(CSVHeader))
	}
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	getb := func(s string) bool {
		if err != nil {
			return false
		}
		var v bool
		v, err = strconv.ParseBool(s)
		return v
	}
	rec.ClientID = geti(row[0])
	idx := geti(row[1])
	rec.IssuedAt = getf(row[2])
	rec.CompletedAt = getf(row[3])
	_ = getf(row[4]) // response_s is derived; ignored on read
	rec.Reads = geti(row[5])
	rec.Hits = geti(row[6])
	rec.Stale = geti(row[7])
	rec.Unavailable = geti(row[8])
	rec.Errors = geti(row[9])
	rec.Remote = getb(row[10])
	rec.Disconnected = getb(row[11])
	rec.RequestBytes = geti(row[12])
	rec.ReplyBytes = geti(row[13])
	if err != nil {
		return rec, err
	}
	rec.Index = uint64(idx)
	return rec, nil
}
