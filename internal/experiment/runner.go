package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes batches of independent simulation runs on a worker pool.
// Each run owns its kernel, RNG streams, and metric sinks (see Run), so
// concurrent execution cannot perturb results: RunBatch returns exactly the
// Result slice a serial loop over the configs would produce, in submission
// order, for any worker count. The paper's evaluation is ~200 such runs;
// the sweep is embarrassingly parallel and scales with cores.
type Runner struct {
	// Workers is the number of concurrent simulations; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
}

// effectiveWorkers resolves the worker count.
func (r Runner) effectiveWorkers() int {
	if r.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// RunBatch executes every config and returns the results in submission
// order. A panic inside any run (e.g. an invalid policy spec) is re-raised
// on the caller's goroutine, annotated with the config that caused it;
// remaining in-flight runs finish first.
func (r Runner) RunBatch(cfgs []Config) []Result {
	results := make([]Result, len(cfgs))
	workers := r.effectiveWorkers()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	// A Tracer or an obs.Registry is shared mutable state across runs:
	// concurrent execution would interleave (and race on) its records.
	// Keep instrumented batches serial so traces and sampled series stay
	// byte-identical to the sequential order.
	for _, cfg := range cfgs {
		if cfg.Tracer != nil || cfg.Obs != nil {
			workers = 1
			break
		}
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			results[i] = Run(cfg)
		}
		return results
	}

	type failure struct {
		idx int
		cfg Config
		err interface{}
	}
	jobs := make(chan int)
	failures := make(chan failure, len(cfgs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							failures <- failure{idx: i, cfg: cfgs[i], err: rec}
						}
					}()
					results[i] = Run(cfgs[i])
				}()
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(failures)

	var first *failure
	for f := range failures {
		f := f
		if first == nil || f.idx < first.idx {
			first = &f
		}
	}
	if first != nil {
		panic(fmt.Sprintf("experiment: run %d (%s) panicked: %v",
			first.idx, first.cfg, first.err))
	}
	return results
}

// defaultWorkers is the pool size the Exp* sweeps and Replicate use; it is
// what `mcsim -parallel N` sets. Zero selects runtime.GOMAXPROCS(0).
var defaultWorkers int

// SetDefaultWorkers sets the worker count used by the experiment sweeps
// (Exp1..Exp6, Replicate). n < 1 restores the default, one worker per
// available CPU. It returns the previous setting so tests can restore it.
func SetDefaultWorkers(n int) int {
	prev := defaultWorkers
	if n < 1 {
		n = 0
	}
	defaultWorkers = n
	return prev
}

// DefaultWorkers reports the effective sweep worker count.
func DefaultWorkers() int {
	return Runner{Workers: defaultWorkers}.effectiveWorkers()
}

// batch accumulates configs during an experiment's enqueue pass and the
// per-result continuations that build its tables. collect runs the whole
// batch on the default worker pool and then applies the continuations in
// submission order, so the emitted tables are byte-identical to what the
// old serial loops produced no matter how many workers raced underneath.
type batch struct {
	cfgs []Config
	then []func(Result)
}

// add enqueues one run; then (optional) consumes its Result during collect.
func (b *batch) add(cfg Config, then func(Result)) {
	b.cfgs = append(b.cfgs, cfg)
	b.then = append(b.then, then)
}

// collect executes the batch, appends every Result to rep in submission
// order, and invokes the continuations.
func (b *batch) collect(rep *Report) {
	results := Runner{Workers: defaultWorkers}.RunBatch(b.cfgs)
	for i, res := range results {
		if rep != nil {
			rep.Results = append(rep.Results, res)
		}
		if b.then[i] != nil {
			b.then[i](res)
		}
	}
}
