// log.go holds the on-disk record framing and the recovery scan. The
// format (docs/STORAGE.md) is a flat stream of CRC-framed records:
//
//	[ crc32c uint32 | keyLen uint32 | valLen uint32 | flags byte | key | value ]
//
// all integers little-endian, the CRC covering everything after itself.
// flags bit 0 marks a tombstone (valLen is then 0). There is no segment
// header or footer: a crash can only damage the final record of the final
// segment, which the CRC detects and recovery truncates away.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// recordHeaderSize is the fixed framing prefix: CRC + keyLen + valLen +
// flags.
const recordHeaderSize = 4 + 4 + 4 + 1

// maxKeyLen / maxValueLen bound record fields so a corrupt length cannot
// drive a giant allocation during recovery.
const (
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 26
)

const flagTombstone = 1

// encodeRecord frames one record.
func encodeRecord(key string, value []byte, tombstone bool) []byte {
	rec := make([]byte, recordHeaderSize+len(key)+len(value))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(value)))
	if tombstone {
		rec[12] = flagTombstone
	}
	copy(rec[recordHeaderSize:], key)
	copy(rec[recordHeaderSize+len(key):], value)
	binary.LittleEndian.PutUint32(rec, crc32.Checksum(rec[4:], crcTable))
	return rec
}

// decodeRecord parses and CRC-checks one framed record.
func decodeRecord(rec []byte) (key string, value []byte, tombstone bool, err error) {
	if len(rec) < recordHeaderSize {
		return "", nil, false, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(rec))
	}
	if binary.LittleEndian.Uint32(rec) != crc32.Checksum(rec[4:], crcTable) {
		return "", nil, false, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	keyLen := int(binary.LittleEndian.Uint32(rec[4:]))
	valLen := int(binary.LittleEndian.Uint32(rec[8:]))
	if recordHeaderSize+keyLen+valLen != len(rec) {
		return "", nil, false, fmt.Errorf("%w: length mismatch", ErrCorrupt)
	}
	key = string(rec[recordHeaderSize : recordHeaderSize+keyLen])
	value = rec[recordHeaderSize+keyLen:]
	return key, value, rec[12]&flagTombstone != 0, nil
}

// replaySegment scans segment id sequentially, applying every valid record
// to the index. On a framing or CRC failure in the final segment the file
// is truncated at the last valid record (the torn tail of a crashed
// append); anywhere else the damage is surfaced as ErrCorrupt.
func (s *Store) replaySegment(id int, last bool) error {
	path := s.segPath(id)
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	seg := &segment{id: id, path: path, r: r}
	s.segs[id] = seg

	br := bufio.NewReaderSize(r, 1<<20)
	var off int64
	header := make([]byte, recordHeaderSize)
	var body []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end of segment
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return s.truncateTail(seg, off, last, "torn header")
			}
			return fmt.Errorf("storage: %w", err)
		}
		keyLen := int(binary.LittleEndian.Uint32(header[4:]))
		valLen := int(binary.LittleEndian.Uint32(header[8:]))
		if keyLen < 0 || keyLen > maxKeyLen || valLen < 0 || valLen > maxValueLen {
			return s.truncateTail(seg, off, last, "implausible lengths")
		}
		if cap(body) < keyLen+valLen {
			body = make([]byte, keyLen+valLen)
		}
		body = body[:keyLen+valLen]
		if _, err := io.ReadFull(br, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return s.truncateTail(seg, off, last, "torn body")
			}
			return fmt.Errorf("storage: %w", err)
		}
		crc := crc32.Checksum(header[4:], crcTable)
		crc = crc32.Update(crc, crcTable, body)
		if binary.LittleEndian.Uint32(header) != crc {
			return s.truncateTail(seg, off, last, "CRC mismatch")
		}

		size := int64(recordHeaderSize + keyLen + valLen)
		key := string(body[:keyLen])
		if old, ok := s.index[key]; ok {
			s.liveBytes -= old.size
		}
		if header[12]&flagTombstone != 0 {
			delete(s.index, key)
		} else {
			s.index[key] = indexEntry{seg: id, off: off, size: size, keyLen: keyLen, valLen: valLen}
			s.liveBytes += size
		}
		s.recovered++
		off += size
		seg.size = off
	}
	seg.size = off
	return nil
}

// truncateTail handles a framing failure at offset off of seg: in the
// final segment it is a torn append — cut it off and continue; elsewhere
// it is corruption the caller must hear about.
func (s *Store) truncateTail(seg *segment, off int64, last bool, reason string) error {
	if !last {
		return fmt.Errorf("%w: segment %d at offset %d: %s", ErrCorrupt, seg.id, off, reason)
	}
	fi, err := os.Stat(seg.path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.truncatedBytes += fi.Size() - off
	if err := os.Truncate(seg.path, off); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	seg.size = off
	return nil
}
