package client

import (
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file implements cooperative client caching (Joy & Jacob's
// ad-hoc-network scheme adapted to the paper's cellular model): on a
// connected local miss, a client first asks the peers in its cell for
// valid cached copies before paying the server round trip. The scan
// itself is simulation-level knowledge (the harness can see every peer's
// cache), but the exchange is paid for on the wire: one probe frame on
// the cell uplink and one batched reply on the downlink, judged by the
// same fault models as any other frame — a lost probe or reply simply
// falls the reads back to the normal server path, with no retries.
//
// Peer-served reads are charged against the error oracle exactly like
// server-served ones, using the *peer's* cached version: a peer can hand
// out a copy that is already stale, which is the coherence cost the
// cooperative scheme trades for offloading the server. Copies are
// installed with the peer's remaining lease, never a fresh one.

// peerCopy is one staged peer-served read in the current exchange plan.
type peerCopy struct {
	readIdx int32      // index into the query's need slice
	src     int32      // index of the serving peer in c.peers
	item    oodb.Item  // the cached unit covering the read
	entry   core.Entry // the peer's copy at plan time
	newItem bool       // first occurrence of item in this plan
}

// SetPeers installs the client's cell-local peer group and the maximum
// number of peers a miss scans. peers must contain the client itself;
// scanning starts at the next peer and wraps, so load spreads round-robin
// across the cell. Call before the simulation starts.
func (c *Client) SetPeers(peers []*Client, scan int) {
	if scan <= 0 {
		panic("client: SetPeers scan must be positive")
	}
	self := -1
	for i, p := range peers {
		if p == c {
			self = i
			break
		}
	}
	if self < 0 {
		panic("client: SetPeers group must include the client")
	}
	c.peers = peers
	c.peerSelf = self
	c.peerScan = scan
}

// peekValid looks item up without touching replacement state and reports
// it only if its lease is still valid at now — what a peer is willing to
// serve.
func (c *Client) peekValid(item oodb.Item, now float64) (core.Entry, bool) {
	e, ok := c.peekLocal(item)
	if !ok || !e.ValidAt(now) {
		return core.Entry{}, false
	}
	return e, true
}

// planPeerFetch scans up to peerScan peers for valid copies covering the
// needed reads and stages the exchange plan (served reads, wire sizes).
// It mutates no counters and touches no channels, so both execution
// engines can call it at their peer-stage entry; it reports whether any
// read is peer-servable.
func (c *Client) planPeerFetch(now float64, need []workload.ReadOp) bool {
	got := c.peerGot[:0]
	probeItems := 0
	replyBytes := network.HeaderSize
	scan := c.peerScan
	if scan > len(c.peers)-1 {
		scan = len(c.peers) - 1
	}
	for i, rd := range need {
		item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
		// A query repeating an item is served by the one staged copy.
		dup := false
		for g := range got {
			if got[g].item == item {
				got = append(got, peerCopy{
					readIdx: int32(i), src: got[g].src,
					item: item, entry: got[g].entry,
				})
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for k := 1; k <= scan; k++ {
			pi := (c.peerSelf + k) % len(c.peers)
			if e, ok := c.peers[pi].peekValid(item, now); ok {
				got = append(got, peerCopy{
					readIdx: int32(i), src: int32(pi),
					item: item, entry: e, newItem: true,
				})
				probeItems++
				replyBytes += network.ReplyEntrySize(item)
				break
			}
		}
	}
	c.peerGot = got
	if len(got) == 0 {
		return false
	}
	c.peerProbeBytes = network.HeaderSize + probeItems*(network.OIDSize+network.AttrRefSize)
	c.peerReplyBytes = replyBytes
	return true
}

// commitPeerFetch lands a successful exchange: records each staged read
// against the metrics and the error oracle, installs the copies, charges
// the serving peers' transmit energy, and returns need with the served
// reads removed. Reads still left over are peer misses bound for the
// server.
func (c *Client) commitPeerFetch(now float64, need []workload.ReadOp, rec *trace.QueryRecord) []workload.ReadOp {
	batch := c.scratchBatch[:0]
	for _, g := range c.peerGot {
		isErr := c.oracle.IsError(g.item, g.entry.Version)
		c.m.RecordAccess(now, false)
		c.m.RecordError(now, isErr)
		c.peerHits++
		if isErr {
			rec.Errors++
		}
		if g.newItem {
			batch = append(batch, core.BatchEntry{Item: g.item, Entry: g.entry})
			c.membuf.Put(g.item, g.entry)
			c.peers[g.src].energyJoules += network.TxEnergy(network.ReplyEntrySize(g.item))
		}
	}
	if c.store != nil {
		c.store.InsertBatch(batch, now)
	}
	c.scratchBatch = batch[:0]
	// Compact need in place: peerGot holds readIdx in ascending order.
	out := need[:0]
	gi := 0
	for i := range need {
		if gi < len(c.peerGot) && int(c.peerGot[gi].readIdx) == i {
			gi++
			continue
		}
		out = append(out, need[i])
	}
	c.peerGot = c.peerGot[:0]
	c.peerMisses += uint64(len(out))
	return out
}

// abortPeerFetch discards the staged plan after a lost or corrupted
// exchange frame; every read falls back to the server path.
func (c *Client) abortPeerFetch(need []workload.ReadOp) {
	c.peerGot = c.peerGot[:0]
	c.peerMisses += uint64(len(need))
}

// fetchFromPeers is the Proc-engine peer stage: plan, then pay for the
// probe/reply exchange on the shared channels under the attached fault
// models (single attempt — a failed exchange falls back to the server,
// the reliability layer's retries apply only to the server round trip).
// It returns the remaining need and whether the radio was used.
func (c *Client) fetchFromPeers(p *sim.Proc, need []workload.ReadOp, rec *trace.QueryRecord) ([]workload.ReadOp, bool) {
	if !c.planPeerFetch(p.Now(), need) {
		c.peerMisses += uint64(len(need))
		return need, false
	}
	c.up.Send(p, c.peerProbeBytes)
	c.energyJoules += network.TxEnergy(c.peerProbeBytes)
	if transmit(c.upFaults, p.Now()) != network.FrameDelivered {
		c.abortPeerFetch(need)
		return need, true
	}
	c.down.Send(p, c.peerReplyBytes)
	outcome := transmit(c.downFaults, p.Now())
	if outcome != network.FrameLost {
		// The frame was received (and, if corrupted, rejected after the
		// fact): the radio energy is spent either way.
		c.energyJoules += network.RxEnergy(c.peerReplyBytes)
	}
	if outcome != network.FrameDelivered {
		c.abortPeerFetch(need)
		return need, true
	}
	return c.commitPeerFetch(p.Now(), need, rec), true
}

// PeerHits reports reads served from a peer's cache.
func (c *Client) PeerHits() uint64 { return c.peerHits }

// PeerMisses reports connected local-miss reads that went to the server
// despite cooperation (no peer copy, or a failed exchange).
func (c *Client) PeerMisses() uint64 { return c.peerMisses }
