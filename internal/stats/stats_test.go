package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEq(w.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", w.Variance())
	}
	if !almostEq(w.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
	if !almostEq(w.SampleVariance(), 32.0/7, 1e-12) {
		t.Fatalf("SampleVariance = %v, want 32/7", w.SampleVariance())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Std() != 0 {
		t.Fatalf("single-sample stats: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: Welford matches the two-pass computation.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs))
		return almostEq(w.Mean(), mean, 1e-9) && almostEq(w.Variance(), variance, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two Welford estimators equals one pass over both inputs.
func TestQuickWelfordMerge(t *testing.T) {
	f := func(a, b []int16) bool {
		var wa, wb, all Welford
		for _, v := range a {
			wa.Add(float64(v))
			all.Add(float64(v))
		}
		for _, v := range b {
			wb.Add(float64(v))
			all.Add(float64(v))
		}
		wa.Merge(&wb)
		return wa.Count() == all.Count() &&
			almostEq(wa.Mean(), all.Mean(), 1e-9) &&
			almostEq(wa.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMARecurrence(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 { // 0.5*10 + 0.5*20
		t.Fatalf("value %v, want 15", e.Value())
	}
	e.Add(0)
	if e.Value() != 7.5 {
		t.Fatalf("value %v, want 7.5", e.Value())
	}
	if e.Count() != 3 {
		t.Fatalf("Count %d", e.Count())
	}
	if e.Alpha() != 0.5 {
		t.Fatalf("Alpha %v", e.Alpha())
	}
}

func TestEWMAAlphaZeroTracksLast(t *testing.T) {
	e := NewEWMA(0)
	for _, x := range []float64{3, 9, 1} {
		e.Add(x)
		if e.Value() != x {
			t.Fatalf("alpha=0 value %v, want %v", e.Value(), x)
		}
	}
}

func TestEWMABlendDoesNotMutate(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(10)
	got := e.Blend(30)
	if got != 20 {
		t.Fatalf("Blend = %v, want 20", got)
	}
	if e.Value() != 10 {
		t.Fatal("Blend mutated the estimator")
	}
	empty := NewEWMA(0.5)
	if empty.Blend(7) != 7 {
		t.Fatal("Blend on empty estimator should return x")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: EWMA value is always bounded by the min and max of its inputs.
func TestQuickEWMABounded(t *testing.T) {
	f := func(raw []uint16, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := float64(alphaRaw) / 256
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(3)
	if w.Mean() != 0 || w.Count() != 0 || w.Size() != 3 {
		t.Fatal("empty window state wrong")
	}
	w.Add(1)
	w.Add(2)
	if !almostEq(w.Mean(), 1.5, 1e-12) {
		t.Fatalf("Mean %v", w.Mean())
	}
	w.Add(3)
	w.Add(10) // evicts 1
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean after eviction %v, want 5", w.Mean())
	}
	if w.Count() != 3 {
		t.Fatalf("Count %d", w.Count())
	}
}

func TestWindowBlendMean(t *testing.T) {
	w := NewWindow(2)
	if w.BlendMean(4) != 4 {
		t.Fatal("BlendMean on empty window")
	}
	w.Add(2)
	if !almostEq(w.BlendMean(4), 3, 1e-12) {
		t.Fatalf("BlendMean = %v, want 3", w.BlendMean(4))
	}
	w.Add(6) // window now [2 6], full
	// Adding 10 would evict 2: mean of [6 10] = 8.
	if !almostEq(w.BlendMean(10), 8, 1e-12) {
		t.Fatalf("BlendMean full = %v, want 8", w.BlendMean(10))
	}
	if !almostEq(w.Mean(), 4, 1e-12) {
		t.Fatal("BlendMean mutated the window")
	}
}

// Property: window mean equals the mean of the last W observations.
func TestQuickWindowMatchesNaive(t *testing.T) {
	f := func(raw []uint16, sizeRaw uint8) bool {
		size := int(sizeRaw)%10 + 1
		w := NewWindow(size)
		var hist []float64
		for _, v := range raw {
			x := float64(v)
			w.Add(x)
			hist = append(hist, x)
			start := len(hist) - size
			if start < 0 {
				start = 0
			}
			sum := 0.0
			for _, h := range hist[start:] {
				sum += h
			}
			want := sum / float64(len(hist[start:]))
			if !almostEq(w.Mean(), want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestInterArrival(t *testing.T) {
	var ia InterArrival
	if _, ok := ia.Last(); ok {
		t.Fatal("empty InterArrival claims a last event")
	}
	ia.Observe(10)
	if ia.Count() != 0 {
		t.Fatal("first event should record no duration")
	}
	ia.Observe(15)
	ia.Observe(25)
	if ia.Count() != 2 {
		t.Fatalf("Count %d, want 2", ia.Count())
	}
	if !almostEq(ia.Mean(), 7.5, 1e-12) {
		t.Fatalf("Mean %v, want 7.5", ia.Mean())
	}
	if !almostEq(ia.Std(), 2.5, 1e-12) {
		t.Fatalf("Std %v, want 2.5", ia.Std())
	}
	last, ok := ia.Last()
	if !ok || last != 25 {
		t.Fatalf("Last = %v,%v", last, ok)
	}
}

func TestInterArrivalClampsNegative(t *testing.T) {
	var ia InterArrival
	ia.Observe(10)
	ia.Observe(5) // out-of-order: clamped to 0 rather than negative
	if ia.Mean() != 0 {
		t.Fatalf("Mean %v, want 0", ia.Mean())
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("Count %d", s.Count())
	}
	if !almostEq(s.Mean(), 50.5, 1e-12) {
		t.Fatalf("Mean %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("Min/Max %v/%v", s.Min(), s.Max())
	}
	if p := s.Percentile(50); !almostEq(p, 50.5, 1e-12) {
		t.Fatalf("p50 %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 %v", p)
	}
	if p := s.Percentile(95); p < 94 || p > 97 {
		t.Fatalf("p95 %v", p)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Percentile(50) != 0 || s.CI95() != 0 {
		t.Fatal("empty summary not all zero")
	}
}

func TestSummaryCI95Shrinks(t *testing.T) {
	r := rng.New(1)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestSummaryAddAfterSortedQuery(t *testing.T) {
	var s Summary
	s.Add(5)
	_ = s.Percentile(50) // forces a sort
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("Add after Percentile broke ordering")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio not 0")
	}
	r.AddHit()
	r.AddMiss()
	r.Add(true)
	r.Add(false)
	if r.Num != 2 || r.Denom != 4 {
		t.Fatalf("counts %d/%d", r.Num, r.Denom)
	}
	if r.Value() != 0.5 || r.Percent() != 50 {
		t.Fatalf("Value %v Percent %v", r.Value(), r.Percent())
	}
	var o Ratio
	o.AddHit()
	r.Merge(o)
	if r.Num != 3 || r.Denom != 5 {
		t.Fatalf("after merge %d/%d", r.Num, r.Denom)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
