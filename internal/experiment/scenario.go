package experiment

import (
	"errors"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replacement"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Named validation errors. Every option failure wraps one of these, so
// callers branch with errors.Is instead of string matching.
var (
	// ErrOutOfRange marks an option whose value lies outside its domain
	// (negative counts, probabilities beyond [0,1], unknown enum values).
	ErrOutOfRange = errors.New("experiment: option value out of range")
	// ErrConflict marks two options (or one option against a default) that
	// cannot hold at once — e.g. broadcast without a shared pool, more
	// cells than clients, invalidation reports on a partitioned fleet.
	ErrConflict = errors.New("experiment: conflicting options")
	// ErrBadSpec marks an unparseable specification string, such as an
	// unknown replacement-policy spec.
	ErrBadSpec = errors.New("experiment: unparseable specification")
)

// Scenario is the validated front door to the simulator: construct one
// with New and a list of options, then call Run. Unlike the bare
// Config/Defaults path — which patches zero values silently and panics on
// impossible combinations mid-run — New rejects bad input up front with
// errors that identify the offending option.
//
//	sc, err := experiment.New(
//	    experiment.WithFleet(1000, 8),
//	    experiment.WithGranularity(core.HybridCaching),
//	    experiment.WithCoherence(coherence.LeaseStrategy),
//	)
//	if err != nil { ... }
//	res := sc.Run()
//
// Defaults + Run(Config) remain as the thin compatibility shim beneath it;
// Scenario adds no behavior of its own beyond validation and dispatch.
type Scenario struct {
	cfg Config

	setClients      bool
	setCells        bool
	setObjects      bool
	setServerBuffer bool
	setBufferRatio  bool
}

// Option mutates a Scenario under construction; it returns an error
// wrapping ErrOutOfRange, ErrConflict, or ErrBadSpec when the value is
// unusable.
type Option func(*Scenario) error

// New builds a Scenario from the paper's Table 1 defaults plus the given
// options, validating each option and then the combination. It is the
// redesigned entry point: every error a bare Run would surface as a panic
// deep in construction comes back here, named.
func New(opts ...Option) (*Scenario, error) {
	s := &Scenario{}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate cross-checks the assembled configuration against the defaults
// that will fill its unset fields.
func (s *Scenario) validate() error {
	cfg := s.cfg
	if cfg.Policy != "" {
		if _, err := replacement.Parse(cfg.Policy); err != nil {
			return fmt.Errorf("WithPolicy(%q): %w: %v", cfg.Policy, ErrBadSpec, err)
		}
	}
	if cfg.BroadcastAttrs > 0 && cfg.SharedHotObjects == 0 {
		return fmt.Errorf("WithBroadcastAttrs(%d) requires WithSharedPool: %w",
			cfg.BroadcastAttrs, ErrConflict)
	}
	if cfg.Cells > 1 && cfg.Coherence == coherence.InvalidationReportStrategy {
		return fmt.Errorf("invalidation reports are cell-wide broadcast, undefined for %d cells: %w",
			cfg.Cells, ErrConflict)
	}
	if cfg.IRWindow > 0 {
		interval := cfg.ReportInterval
		if interval == 0 {
			interval = coherence.DefaultReportInterval
		}
		if cfg.IRWindow < interval {
			return fmt.Errorf("WithIRWindow(%g) shorter than the %g s report interval would drop updates from every report: %w",
				cfg.IRWindow, interval, ErrConflict)
		}
	}
	if cfg.CoopPeers > 0 && cfg.Granularity == core.NoCache {
		return fmt.Errorf("WithCooperative(%d) needs caching clients, not NC: %w",
			cfg.CoopPeers, ErrConflict)
	}
	clients := cfg.NumClients
	if clients == 0 {
		clients = Defaults(Config{}).NumClients
	}
	if cfg.Cells > clients {
		return fmt.Errorf("WithCells(%d) exceeds the %d-client fleet: %w",
			cfg.Cells, clients, ErrConflict)
	}
	if cfg.DisconnectedClients > clients {
		return fmt.Errorf("WithDisconnection: %d disconnected of %d clients: %w",
			cfg.DisconnectedClients, clients, ErrConflict)
	}
	if cfg.ServerBufferRatio < 0 || cfg.ServerBufferRatio > 1 {
		return fmt.Errorf("WithBufferRatio(%g): %w", cfg.ServerBufferRatio, ErrOutOfRange)
	}
	if cfg.ServerBufferRatio > 0 && cfg.ServerBufferObjects > 0 {
		// A replayed manifest records the resolved config — the ratio
		// next to the exact buffer size it derived. That round trip is
		// consistent; any other pairing is two answers to one question.
		objects := cfg.NumObjects
		if objects == 0 {
			objects = Defaults(Config{}).NumObjects
		}
		if cfg.ServerBufferObjects != ratioBuffer(cfg.ServerBufferRatio, objects) {
			return fmt.Errorf("WithBufferRatio(%g) and WithServerBuffer(%d) both size the buffer: %w",
				cfg.ServerBufferRatio, cfg.ServerBufferObjects, ErrConflict)
		}
	}
	if cfg.StorageDSN != "" {
		if _, err := storage.ParseDSN(cfg.StorageDSN); err != nil {
			return fmt.Errorf("WithStorage(%q): %w: %v", cfg.StorageDSN, ErrBadSpec, err)
		}
		if cfg.Cells > 1 {
			return fmt.Errorf("WithStorage(%q) models one origin server, undefined for %d cells: %w",
				cfg.StorageDSN, cfg.Cells, ErrConflict)
		}
	}
	return nil
}

// Config returns the fully defaulted Config the scenario will run — the
// exact value Run would echo back in Result.Config.
func (s *Scenario) Config() Config { return Defaults(s.cfg) }

// Run executes the scenario: the fleet engine when more than one cell was
// requested, the paper's single-cell system otherwise.
func (s *Scenario) Run() Result { return RunFleet(s.cfg) }

// Replicate runs the scenario n times with consecutive seeds on the worker
// pool and returns the replication summary (see Replicate).
func (s *Scenario) Replicate(n int) *Replicated { return Replicate(s.cfg, n) }

// --- Identity, population, horizon -----------------------------------

// WithLabel names the run in tables and panic annotations.
func WithLabel(label string) Option {
	return func(s *Scenario) error {
		s.cfg.Label = label
		return nil
	}
}

// WithSeed sets the root seed every substream derives from.
func WithSeed(seed uint64) Option {
	return func(s *Scenario) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithEngine selects the client execution engine: "procs" (goroutine
// processes, the default) or "sm" (inline state machines on the event
// heap). The two are byte-identical in results; "sm" is what makes
// million-client fleets feasible.
func WithEngine(engine string) Option {
	return func(s *Scenario) error {
		switch Engine(engine) {
		case EngineProcs, EngineSM:
			s.cfg.Engine = Engine(engine)
			return nil
		}
		return fmt.Errorf("WithEngine(%q): %w", engine, ErrOutOfRange)
	}
}

// WithHorizonDays sets the simulated duration in days (default 4, §5).
func WithHorizonDays(days float64) Option {
	return func(s *Scenario) error {
		if days <= 0 {
			return fmt.Errorf("WithHorizonDays(%g): %w", days, ErrOutOfRange)
		}
		s.cfg.Days = days
		return nil
	}
}

// WithWarmupDays discards measurements before the given day mark.
func WithWarmupDays(days float64) Option {
	return func(s *Scenario) error {
		if days < 0 {
			return fmt.Errorf("WithWarmupDays(%g): %w", days, ErrOutOfRange)
		}
		s.cfg.WarmupDays = days
		return nil
	}
}

// WithObjects sets the database size in objects (default 2000). It
// conflicts with a WithDatabaseSize that named a different size.
func WithObjects(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithObjects(%d): %w", n, ErrOutOfRange)
		}
		if s.setObjects && s.cfg.NumObjects != n {
			return fmt.Errorf("WithObjects(%d) after objects=%d was set: %w",
				n, s.cfg.NumObjects, ErrConflict)
		}
		s.cfg.NumObjects = n
		s.setObjects = true
		return nil
	}
}

// WithClients sets the fleet size (default 10, the paper's population).
// It conflicts with a WithFleet that named a different size.
func WithClients(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithClients(%d): %w", n, ErrOutOfRange)
		}
		if s.setClients && s.cfg.NumClients != n {
			return fmt.Errorf("WithClients(%d) after clients=%d was set: %w",
				n, s.cfg.NumClients, ErrConflict)
		}
		s.cfg.NumClients = n
		s.setClients = true
		return nil
	}
}

// WithCells shards the run across that many cells on the fleet engine
// (1 = the paper's single-cell system). It conflicts with a WithFleet that
// named a different cell count.
func WithCells(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithCells(%d): %w", n, ErrOutOfRange)
		}
		if s.setCells && s.cfg.Cells != n {
			return fmt.Errorf("WithCells(%d) after cells=%d was set: %w",
				n, s.cfg.Cells, ErrConflict)
		}
		s.cfg.Cells = n
		s.setCells = true
		return nil
	}
}

// WithFleet sets fleet size and cell count together — the fleet-scale
// shorthand: WithFleet(1000, 8) is WithClients(1000) plus WithCells(8).
func WithFleet(clients, cells int) Option {
	return func(s *Scenario) error {
		if cells > clients {
			return fmt.Errorf("WithFleet(%d, %d): more cells than clients: %w",
				clients, cells, ErrConflict)
		}
		if err := WithClients(clients)(s); err != nil {
			return err
		}
		return WithCells(cells)(s)
	}
}

// WithRelayCache gives every contact server a lease-respecting relay cache
// of that many remote objects (fleet runs only; 0 disables).
func WithRelayCache(objects int) Option {
	return func(s *Scenario) error {
		if objects < 0 {
			return fmt.Errorf("WithRelayCache(%d): %w", objects, ErrOutOfRange)
		}
		s.cfg.RelayObjects = objects
		return nil
	}
}

// WithBackbone overrides the inter-cell backbone link: bandwidth in
// bits/second and per-message latency in seconds (0, 0 keeps the
// federation defaults of 10 Mbps and 5 ms).
func WithBackbone(bandwidthBps, latencySeconds float64) Option {
	return func(s *Scenario) error {
		if bandwidthBps < 0 || latencySeconds < 0 {
			return fmt.Errorf("WithBackbone(%g, %g): %w", bandwidthBps, latencySeconds, ErrOutOfRange)
		}
		s.cfg.BackboneBandwidthBps = bandwidthBps
		s.cfg.BackboneLatency = latencySeconds
		return nil
	}
}

// --- Caching ----------------------------------------------------------

// WithGranularity selects the caching granularity (NC/AC/OC/HC).
func WithGranularity(g core.Granularity) Option {
	return func(s *Scenario) error {
		for _, known := range core.Granularities() {
			if g == known {
				s.cfg.Granularity = g
				return nil
			}
		}
		return fmt.Errorf("WithGranularity(%d): %w", g, ErrOutOfRange)
	}
}

// WithPolicy selects the replacement policy by spec (e.g. "ewma-0.5",
// "lru-3", "win-10"); the spec is parsed immediately.
func WithPolicy(spec string) Option {
	return func(s *Scenario) error {
		if _, err := replacement.Parse(spec); err != nil {
			return fmt.Errorf("WithPolicy(%q): %w: %v", spec, ErrBadSpec, err)
		}
		s.cfg.Policy = spec
		return nil
	}
}

// WithClientCache sets the client cache sizes: storage in objects' worth
// of bytes and the in-memory buffer in objects (0 keeps either default).
// (Formerly WithStorage, which now names the server's persistent tier.)
func WithClientCache(storageObjects, memBufferObjects int) Option {
	return func(s *Scenario) error {
		if storageObjects < 0 || memBufferObjects < 0 {
			return fmt.Errorf("WithClientCache(%d, %d): %w",
				storageObjects, memBufferObjects, ErrOutOfRange)
		}
		s.cfg.StorageObjects = storageObjects
		s.cfg.MemBufferObjects = memBufferObjects
		return nil
	}
}

// WithServerBuffer sets the server memory buffer in objects (split across
// partitions on a fleet; default 25% of the database). It conflicts with
// a WithBufferRatio that already sized the buffer.
func WithServerBuffer(objects int) Option {
	return func(s *Scenario) error {
		if objects < 0 {
			return fmt.Errorf("WithServerBuffer(%d): %w", objects, ErrOutOfRange)
		}
		if s.setBufferRatio {
			return fmt.Errorf("WithServerBuffer(%d) after WithBufferRatio(%g): %w",
				objects, s.cfg.ServerBufferRatio, ErrConflict)
		}
		s.cfg.ServerBufferObjects = objects
		s.setServerBuffer = objects != 0
		return nil
	}
}

// WithDatabaseSize sets the database size in objects — the same knob as
// WithObjects under the name Experiment #11's size sweep uses. The two
// conflict when they name different sizes.
func WithDatabaseSize(n int) Option {
	return func(s *Scenario) error {
		if n < 1 {
			return fmt.Errorf("WithDatabaseSize(%d): %w", n, ErrOutOfRange)
		}
		if s.setObjects && s.cfg.NumObjects != n {
			return fmt.Errorf("WithDatabaseSize(%d) after objects=%d was set: %w",
				n, s.cfg.NumObjects, ErrConflict)
		}
		s.cfg.NumObjects = n
		s.setObjects = true
		return nil
	}
}

// WithBufferRatio sizes the server buffer as a fraction of the database
// (0 < r <= 1), so a size sweep keeps buffer pressure constant. It
// conflicts with a WithServerBuffer that already fixed an object count.
func WithBufferRatio(r float64) Option {
	return func(s *Scenario) error {
		if r <= 0 || r > 1 {
			return fmt.Errorf("WithBufferRatio(%g): %w", r, ErrOutOfRange)
		}
		if s.setServerBuffer {
			return fmt.Errorf("WithBufferRatio(%g) after WithServerBuffer(%d): %w",
				r, s.cfg.ServerBufferObjects, ErrConflict)
		}
		s.cfg.ServerBufferRatio = r
		s.setBufferRatio = true
		return nil
	}
}

// WithStorage puts a real persistent tier behind the simulated server's
// buffer pool, named by DSN ("file:<dir>[?sync=group|always|none]"). The
// DSN is parsed immediately; each run gets a cold per-run subdirectory
// under the path. Simulated timing is unchanged — the tier is a measured
// side effect reported in Result.StorageTier.
func WithStorage(dsn string) Option {
	return func(s *Scenario) error {
		if dsn != "" {
			if _, err := storage.ParseDSN(dsn); err != nil {
				return fmt.Errorf("WithStorage(%q): %w: %v", dsn, ErrBadSpec, err)
			}
		}
		s.cfg.StorageDSN = dsn
		return nil
	}
}

// WithPrefetchKappa positions the hybrid-caching prefetch threshold at
// mu + kappa*sigma of the attribute-heat distribution.
func WithPrefetchKappa(kappa float64) Option {
	return func(s *Scenario) error {
		s.cfg.PrefetchKappa = kappa
		return nil
	}
}

// WithShedThreshold enables the §5.3 timeout heuristic: replies queued at
// the downlink longer than this many seconds shed their prefetched items.
func WithShedThreshold(seconds float64) Option {
	return func(s *Scenario) error {
		if seconds < 0 {
			return fmt.Errorf("WithShedThreshold(%g): %w", seconds, ErrOutOfRange)
		}
		s.cfg.ShedThreshold = seconds
		return nil
	}
}

// --- Workload ---------------------------------------------------------

// WithQueryKind selects associative (AQ) or navigational (NQ) queries.
func WithQueryKind(k workload.Kind) Option {
	return func(s *Scenario) error {
		if k != workload.Associative && k != workload.Navigational {
			return fmt.Errorf("WithQueryKind(%d): %w", k, ErrOutOfRange)
		}
		s.cfg.QueryKind = k
		return nil
	}
}

// WithHeat selects the heat model family (SH, CSH, cyclic).
func WithHeat(h HeatKind) Option {
	return func(s *Scenario) error {
		switch h {
		case SkewedHeat, ChangingSkewedHeat, CyclicHeat:
			s.cfg.Heat = h
			return nil
		}
		return fmt.Errorf("WithHeat(%d): %w", h, ErrOutOfRange)
	}
}

// WithCSHChangeEvery sets the CSH hot-set change rate in queries.
func WithCSHChangeEvery(queries int) Option {
	return func(s *Scenario) error {
		if queries < 1 {
			return fmt.Errorf("WithCSHChangeEvery(%d): %w", queries, ErrOutOfRange)
		}
		s.cfg.CSHChangeEvery = queries
		return nil
	}
}

// WithArrival selects the arrival process (Poisson or the Bursty daily
// profile).
func WithArrival(a ArrivalKind) Option {
	return func(s *Scenario) error {
		if a != PoissonArrival && a != BurstyArrival {
			return fmt.Errorf("WithArrival(%d): %w", a, ErrOutOfRange)
		}
		s.cfg.Arrival = a
		return nil
	}
}

// WithPoissonRate sets the per-client query rate in queries/second.
func WithPoissonRate(rate float64) Option {
	return func(s *Scenario) error {
		if rate <= 0 {
			return fmt.Errorf("WithPoissonRate(%g): %w", rate, ErrOutOfRange)
		}
		s.cfg.PoissonRate = rate
		return nil
	}
}

// WithUpdateProb sets the server-side update probability U in [0, 1].
func WithUpdateProb(u float64) Option {
	return func(s *Scenario) error {
		if u < 0 || u > 1 {
			return fmt.Errorf("WithUpdateProb(%g): %w", u, ErrOutOfRange)
		}
		s.cfg.UpdateProb = u
		return nil
	}
}

// WithSharedPool gives every client a common interest pool: objects is the
// pool size, prob the probability a pick comes from it.
func WithSharedPool(objects int, prob float64) Option {
	return func(s *Scenario) error {
		if objects < 0 || prob < 0 || prob > 1 {
			return fmt.Errorf("WithSharedPool(%d, %g): %w", objects, prob, ErrOutOfRange)
		}
		s.cfg.SharedHotObjects = objects
		s.cfg.SharedHotProb = prob
		return nil
	}
}

// WithBroadcastAttrs airs the shared pool's top-N attribute items on a
// dedicated broadcast channel (requires WithSharedPool).
func WithBroadcastAttrs(n int) Option {
	return func(s *Scenario) error {
		if n < 0 {
			return fmt.Errorf("WithBroadcastAttrs(%d): %w", n, ErrOutOfRange)
		}
		s.cfg.BroadcastAttrs = n
		return nil
	}
}

// --- Coherence --------------------------------------------------------

// WithCoherence selects the coherence strategy, either by enum value or
// by name — WithCoherence(coherence.IRBroadcastStrategy) and
// WithCoherence("irb") are the same option (names as in coherence.Parse).
func WithCoherence[T coherence.Strategy | string](strategy T) Option {
	return func(s *Scenario) error {
		switch v := any(strategy).(type) {
		case coherence.Strategy:
			switch v {
			case coherence.LeaseStrategy, coherence.FixedLeaseStrategy,
				coherence.InvalidationReportStrategy, coherence.IRBroadcastStrategy:
				s.cfg.Coherence = v
				return nil
			}
			return fmt.Errorf("WithCoherence(%d): %w", v, ErrOutOfRange)
		case string:
			strat, ok := coherence.Parse(v)
			if !ok {
				return fmt.Errorf("WithCoherence(%q): %w", v, ErrOutOfRange)
			}
			s.cfg.Coherence = strat
			return nil
		}
		panic("unreachable")
	}
}

// WithBeta sets the staleness tolerance beta of the paper's lease scheme.
func WithBeta(beta float64) Option {
	return func(s *Scenario) error {
		if beta < 0 {
			return fmt.Errorf("WithBeta(%g): %w", beta, ErrOutOfRange)
		}
		s.cfg.Beta = beta
		return nil
	}
}

// WithFixedLease sets the fixed-lease duration in seconds (used with
// coherence.FixedLeaseStrategy).
func WithFixedLease(seconds float64) Option {
	return func(s *Scenario) error {
		if seconds < 0 {
			return fmt.Errorf("WithFixedLease(%g): %w", seconds, ErrOutOfRange)
		}
		s.cfg.FixedLease = seconds
		return nil
	}
}

// WithReportInterval sets the invalidation-report broadcast period,
// shared by the legacy reliable-IR scheme and the broadcast-IR scheme.
func WithReportInterval(seconds float64) Option {
	return func(s *Scenario) error {
		if seconds <= 0 {
			return fmt.Errorf("WithReportInterval(%g): %w", seconds, ErrOutOfRange)
		}
		s.cfg.ReportInterval = seconds
		return nil
	}
}

// WithIRWindow sets the broadcast-IR history window W in seconds: each
// report names the items updated in the last W seconds, so a client
// silent longer than W must revalidate its whole cache. Used with
// coherence.IRBroadcastStrategy; must be at least one report interval.
func WithIRWindow(seconds float64) Option {
	return func(s *Scenario) error {
		if seconds <= 0 {
			return fmt.Errorf("WithIRWindow(%g): %w", seconds, ErrOutOfRange)
		}
		s.cfg.IRWindow = seconds
		return nil
	}
}

// WithCooperative enables cooperative client caching: on a connected
// local miss the client scans up to maxPeers cell peers for a valid
// cached copy before paying the server round trip (0 disables).
func WithCooperative(maxPeers int) Option {
	return func(s *Scenario) error {
		if maxPeers < 0 {
			return fmt.Errorf("WithCooperative(%d): %w", maxPeers, ErrOutOfRange)
		}
		s.cfg.CoopPeers = maxPeers
		return nil
	}
}

// --- Disruption: disconnection and unreliable channels ----------------

// WithDisconnection disconnects `clients` of the fleet for `hours` each
// simulated day (Experiment #6's D × V grid).
func WithDisconnection(clients int, hours float64) Option {
	return func(s *Scenario) error {
		if clients < 0 || hours < 0 || hours > 24 {
			return fmt.Errorf("WithDisconnection(%d, %g): %w", clients, hours, ErrOutOfRange)
		}
		s.cfg.DisconnectedClients = clients
		s.cfg.DisconnectHours = hours
		return nil
	}
}

// WithLoss sets the per-frame Bernoulli loss probability on each channel.
func WithLoss(rate float64) Option {
	return func(s *Scenario) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("WithLoss(%g): %w", rate, ErrOutOfRange)
		}
		s.cfg.LossRate = rate
		return nil
	}
}

// WithCorruption sets the per-frame corruption probability (CRC-detected).
func WithCorruption(rate float64) Option {
	return func(s *Scenario) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("WithCorruption(%g): %w", rate, ErrOutOfRange)
		}
		s.cfg.CorruptRate = rate
		return nil
	}
}

// WithBursts puts the channels in a Gilbert–Elliott burst-outage regime:
// fraction is the stationary Bad-state share, meanBadSeconds the mean
// outage length (0 keeps the default).
func WithBursts(fraction, meanBadSeconds float64) Option {
	return func(s *Scenario) error {
		if fraction < 0 || fraction > 1 || meanBadSeconds < 0 {
			return fmt.Errorf("WithBursts(%g, %g): %w", fraction, meanBadSeconds, ErrOutOfRange)
		}
		s.cfg.BurstFraction = fraction
		s.cfg.MeanBadSeconds = meanBadSeconds
		return nil
	}
}

// WithRetry configures the client reliability layer: maximum
// retransmissions per request (negative disables) and the base backoff in
// seconds (0 keeps the default).
func WithRetry(maxRetries int, backoffSeconds float64) Option {
	return func(s *Scenario) error {
		if backoffSeconds < 0 {
			return fmt.Errorf("WithRetry(%d, %g): %w", maxRetries, backoffSeconds, ErrOutOfRange)
		}
		s.cfg.RetryMax = maxRetries
		s.cfg.RetryBackoff = backoffSeconds
		return nil
	}
}

// --- Instrumentation --------------------------------------------------

// WithTracer streams one record per completed query into t.
func WithTracer(t trace.Tracer) Option {
	return func(s *Scenario) error {
		s.cfg.Tracer = t
		return nil
	}
}

// WithObs instruments the run against the given registry (see Config.Obs).
func WithObs(reg *obs.Registry) Option {
	return func(s *Scenario) error {
		s.cfg.Obs = reg
		return nil
	}
}

// WithConfig seeds the scenario from an existing Config — the bridge for
// callers holding a manifest-restored or flag-built Config who still want
// Scenario validation: experiment.New(experiment.WithConfig(cfg)).
// Later options apply on top.
func WithConfig(cfg Config) Option {
	return func(s *Scenario) error {
		s.cfg = cfg
		s.setClients = cfg.NumClients != 0
		s.setCells = cfg.Cells != 0
		s.setObjects = cfg.NumObjects != 0
		s.setServerBuffer = cfg.ServerBufferObjects != 0
		s.setBufferRatio = cfg.ServerBufferRatio != 0
		return nil
	}
}
