// Command mctrace summarizes a per-query CSV trace: run-level metrics,
// response-time percentiles, and per-client / per-hour breakdowns.
//
//	mcsim run -granularity hc -arrival bursty -days 1 -trace run.csv
//	mctrace run.csv
//
// A report directory works too: mctrace resolves its trace.csv and, when a
// manifest.json is present, prints the archived reproduce command first.
//
//	mcsim run -loss 0.1 -report out/
//	mctrace out/
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: mctrace <trace.csv | report-dir>")
		os.Exit(2)
	}
	path, err := resolveTrace(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
	if header := manifestHeader(filepath.Dir(path)); header != "" {
		fmt.Println(header)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
	trace.Analyze(records).WriteReport(os.Stdout)
}

// resolveTrace maps a report directory to its trace.csv; files pass
// through unchanged.
func resolveTrace(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return path, nil
	}
	p := filepath.Join(path, "trace.csv")
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("%s holds no trace.csv (was the run traced? see mcsim run -report)", path)
	}
	return p, nil
}

// manifestHeader describes the run a report directory's trace came from,
// or "" when no readable manifest sits next to it.
func manifestHeader(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return ""
	}
	var man report.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return ""
	}
	return fmt.Sprintf("trace from %s (seed %d): %s", man.Experiment, man.Seed, man.Command)
}
