// Package sim is a process-oriented discrete-event simulation kernel.
//
// It is the substitute for CSIM, the proprietary simulation library the
// paper's evaluation is built on. The modelling primitives mirror CSIM's:
//
//   - a Kernel owns the virtual clock and the future event list;
//   - a Proc is a simulated process (one goroutine) that advances virtual
//     time with Hold and contends for facilities with Resource;
//   - a Resource is a FCFS facility (wireless channel, disk arm, ...) with
//     fixed capacity, utilization accounting, and queue statistics.
//
// Determinism: although each process is a goroutine, exactly one goroutine
// runs at any instant — the kernel resumes a process and then blocks until
// that process yields (by holding, queueing on a resource, or terminating).
// Events at equal timestamps are dispatched in schedule order. Simulations
// are therefore exactly reproducible for a given seed, which the tests and
// EXPERIMENTS.md rely on.
//
// Performance: the future event list is a concrete binary heap over
// []event values — no per-event heap allocation and no interface boxing on
// the push/pop path (container/heap costs one *event allocation plus an
// interface conversion per event). The heap's backing array doubles as the
// event free-list: pops only shrink the length, so the storage of retired
// events is reused by subsequent pushes, and Drain keeps the capacity for
// kernels that are reused across Run calls. Process handoffs use cap-1
// channels; the strict alternation discipline means at most one token is
// ever in flight per channel, so sends never block and each kernel<->proc
// switch costs a single blocking rendezvous (the receive) instead of two.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// event is a future-event-list entry: "resume proc", "step machine", or
// "call fn".
type event struct {
	at   float64
	seq  uint64 // schedule order; ties broken FIFO
	proc *Proc
	mach *Machine
	gen  uint64 // machine wake generation; stale wakes are skipped
	fn   func()
}

// before reports whether e sorts ahead of f on the future event list:
// min (at, seq). seq is unique, so the order is total.
func (e *event) before(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// Kernel drives a single simulation run. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	events  []event // binary min-heap on (at, seq)
	yield   chan struct{}
	live    map[*Proc]struct{}
	liveM   map[*Machine]struct{}
	nsteps  uint64
	procSeq uint64 // spawn sequence (procs and machines); orders Drain
}

// NewKernel returns a kernel with the clock at zero and an empty event list.
func NewKernel() *Kernel {
	return &Kernel{
		// cap 1: the kernel<->proc alternation keeps at most one token in
		// flight, so yields never block the sender.
		yield: make(chan struct{}, 1),
		live:  make(map[*Proc]struct{}),
		liveM: make(map[*Machine]struct{}),
	}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Steps returns the number of events dispatched so far. It is exposed for
// kernel benchmarks and runaway-simulation guards in tests.
func (k *Kernel) Steps() uint64 { return k.nsteps }

// push appends ev to the heap and restores the heap invariant (sift-up).
func (k *Kernel) push(ev event) {
	h := append(k.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.events = h
}

// pop removes and returns the minimum event (sift-down). The vacated tail
// slot is zeroed so retired closures and procs are collectable; the backing
// array itself is retained as the free-list for future pushes.
func (k *Kernel) pop() event {
	h := k.events
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h[right].before(&h[left]) {
			least = right
		}
		if !h[least].before(&h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	k.events = h
	return min
}

// schedule appends an event to the future event list.
func (k *Kernel) schedule(at float64, p *Proc, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (at=%g, now=%g)", at, k.now))
	}
	k.seq++
	k.push(event{at: at, seq: k.seq, proc: p, fn: fn})
}

// scheduleMachine appends a machine wake to the future event list. It
// shares the sequence counter with schedule, so proc resumes, machine
// steps, and fn timers interleave in one global FIFO order at equal
// times — the property the two execution engines' byte-identity rests on.
func (k *Kernel) scheduleMachine(at float64, m *Machine) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (at=%g, now=%g)", at, k.now))
	}
	k.seq++
	k.push(event{at: at, seq: k.seq, mach: m, gen: m.wakeGen})
}

// After schedules fn to run at now+d in kernel context. fn must not block;
// it is intended for lightweight timers (statistics sampling, LRD aging).
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, nil, fn)
}

// At schedules fn to run at absolute time t (clamped to now) in kernel
// context. fn must not block.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.schedule(t, nil, fn)
}

// Spawn creates a process that starts at the current virtual time.
// The body runs in its own goroutine but under the kernel's one-runnable
// discipline; it may call Hold, Acquire, and friends.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnAt(k.now, name, body)
}

// SpawnAt creates a process that starts at virtual time t (clamped to now).
func (k *Kernel) SpawnAt(t float64, name string, body func(*Proc)) *Proc {
	if body == nil {
		panic("sim: SpawnAt with nil body")
	}
	if t < k.now {
		t = k.now
	}
	k.procSeq++
	p := &Proc{
		kernel: k,
		name:   name,
		body:   body,
		seq:    k.procSeq,
		resume: make(chan struct{}, 1),
	}
	k.live[p] = struct{}{}
	k.schedule(t, p, nil)
	return p
}

// Run dispatches events until the event list is empty or the clock would
// pass `until`. It returns the final clock value. Processes still blocked
// when Run returns remain suspended; call Drain to terminate them.
func (k *Kernel) Run(until float64) float64 {
	for len(k.events) > 0 {
		if k.events[0].at > until {
			k.now = until
			return k.now
		}
		ev := k.pop()
		k.now = ev.at
		k.nsteps++
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.mach != nil:
			// Machine step: runs inline on this stack. Stale wakes
			// (superseded by a newer Hold or revoked by CancelWake) and
			// wakes of finished/killed machines are skipped.
			m := ev.mach
			if m.done || m.killed || ev.gen != m.wakeGen {
				continue
			}
			m.body.Step(m)
		case ev.proc != nil:
			p := ev.proc
			if p.done || p.killed {
				continue
			}
			if !p.started {
				p.started = true
				go p.run()
			} else {
				p.resume <- struct{}{}
			}
			<-k.yield
		}
	}
	return k.now
}

// RunAll dispatches events until the event list is empty.
func (k *Kernel) RunAll() float64 { return k.Run(math.Inf(1)) }

// Drain terminates every live process and state machine. Suspended
// processes are woken with a kill flag and unwind via a recovered panic;
// processes that have not yet started are simply discarded. Machines are
// killed in place — no unwind is needed because a suspended machine holds
// no stack. Procs and machines are killed in one interleaved spawn order
// (they share the spawn-sequence counter), so the side effects of
// kill-unwind (deferred cleanup, resource releases) are reproducible run
// to run regardless of engine mix. Call it once per simulation after Run
// so no goroutines outlive the run.
func (k *Kernel) Drain() {
	type victim struct {
		seq  uint64
		proc *Proc
		mach *Machine
	}
	victims := make([]victim, 0, len(k.live)+len(k.liveM))
	for p := range k.live {
		victims = append(victims, victim{seq: p.seq, proc: p})
	}
	for m := range k.liveM {
		victims = append(victims, victim{seq: m.seq, mach: m})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, v := range victims {
		if m := v.mach; m != nil {
			if !m.done {
				m.killed = true
			}
			delete(k.liveM, m)
			continue
		}
		p := v.proc
		if p.done {
			delete(k.live, p)
			continue
		}
		p.killed = true
		if p.started {
			p.resume <- struct{}{}
			<-k.yield
		}
		delete(k.live, p)
	}
	// Discard the remaining future events; the simulation is over. The
	// backing array is kept (length 0) so a reused kernel starts with a
	// warm free-list.
	for i := range k.events {
		k.events[i] = event{}
	}
	k.events = k.events[:0]
}

// LiveProcs reports the number of processes that have been spawned and have
// not yet terminated.
func (k *Kernel) LiveProcs() int { return len(k.live) }

// LiveMachines reports the number of state machines that have been spawned
// and have not yet finished.
func (k *Kernel) LiveMachines() int { return len(k.liveM) }
