package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestResourceExclusive(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	want := []float64{10, 20, 30}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("completion times %v, want %v (serialized service)", done, want)
	}
}

func TestResourceFCFS(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.SpawnAt(float64(i), "p", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Hold(100)
			r.Release()
		})
	}
	k.RunAll()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("service order %v, want FIFO", order)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "pool", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	// Two run in parallel: pairs complete at 10 and 20.
	want := []float64{10, 10, 20, 20}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("completion times %v, want %v", done, want)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "x", 1)
	panicked := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
				panic(errKilled) // unwind cleanly through the kernel
			}
		}()
		r.Release()
	})
	k.RunAll()
	if !panicked {
		t.Fatal("Release of idle resource did not panic")
	}
}

func TestNewResourceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource with capacity 0 did not panic")
		}
	}()
	NewResource(NewKernel(), "bad", 0)
}

func TestUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk", 1)
	k.Spawn("p", func(p *Proc) {
		r.Use(p, 25)
		p.Hold(75)
	})
	k.RunAll()
	if u := r.Utilization(); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

func TestMeanWait(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Proc) { r.Use(p, 10) })
	}
	k.RunAll()
	// First waits 0, second waits 10 -> mean 5.
	if w := r.MeanWait(); math.Abs(w-5) > 1e-9 {
		t.Fatalf("MeanWait = %v, want 5", w)
	}
	if r.Acquires() != 2 {
		t.Fatalf("Acquires = %d, want 2", r.Acquires())
	}
}

func TestQueueLenDuringContention(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	var maxQ int
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) { r.Use(p, 10) })
	}
	k.After(5, func() {
		if q := r.QueueLen(); q > maxQ {
			maxQ = q
		}
	})
	k.RunAll()
	if maxQ != 3 {
		t.Fatalf("queue length at t=5 was %d, want 3", maxQ)
	}
}

func TestMeanQueueLen(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Proc) { r.Use(p, 10) })
	}
	k.RunAll()
	// One proc queued during [0,10), none during [10,20): mean = 0.5.
	if q := r.MeanQueueLen(); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("MeanQueueLen = %v, want 0.5", q)
	}
}

func TestDrainWithQueuedWaiters(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(p *Proc) { r.Use(p, 1e9) })
	}
	k.Run(10)
	k.Drain()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Drain", k.LiveProcs())
	}
}

// Property: with a capacity-1 resource and identical service demands, total
// makespan equals n*d and service strictly serializes, for any d and n.
func TestQuickSerialMakespan(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw)%8 + 1
		d := float64(dRaw%50) + 1
		k := NewKernel()
		r := NewResource(k, "x", 1)
		var last float64
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) {
				r.Use(p, d)
				last = p.Now()
			})
		}
		k.RunAll()
		return math.Abs(last-float64(n)*d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelHoldLoop(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	k.Run(float64(b.N))
	b.StopTimer()
	k.Drain()
}

func BenchmarkKernelResourceContention(b *testing.B) {
	k := NewKernel()
	r := NewResource(k, "chan", 1)
	for i := 0; i < 10; i++ {
		k.Spawn("p", func(p *Proc) {
			for {
				r.Use(p, 1)
				p.Hold(1)
			}
		})
	}
	b.ResetTimer()
	k.Run(float64(b.N))
	b.StopTimer()
	k.Drain()
}
