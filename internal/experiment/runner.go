package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes batches of independent simulation runs on a worker pool.
// Each run owns its kernel, RNG streams, and metric sinks (see Run), so
// concurrent execution cannot perturb results: RunBatch returns exactly the
// Result slice a serial loop over the configs would produce, in submission
// order, for any worker count. The paper's evaluation is ~200 such runs;
// the sweep is embarrassingly parallel and scales with cores.
type Runner struct {
	// Workers is the number of concurrent simulations; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
}

// effectiveWorkers resolves the worker count. An explicit request is capped
// at GOMAXPROCS: simulation runs are pure CPU with no blocking I/O, so
// running more of them than there are schedulable CPUs only adds scheduler
// churn and cache pressure — on a single-CPU host, -parallel 8 measured
// ~20% slower than serial for identical output (docs/BENCH.md). Results do
// not depend on the worker count either way.
func (r Runner) effectiveWorkers() int {
	maxProcs := runtime.GOMAXPROCS(0)
	if r.Workers < 1 || r.Workers > maxProcs {
		return maxProcs
	}
	return r.Workers
}

// RunBatch executes every config and returns the results in submission
// order. Fleet configs (Cells > 1) dispatch through RunFleet, so batches
// and replications scale out the same way single runs do. A panic inside
// any run (e.g. an invalid policy spec) is re-raised on the caller's
// goroutine, annotated with the config that caused it; remaining in-flight
// runs finish first.
func (r Runner) RunBatch(cfgs []Config) []Result {
	results := make([]Result, len(cfgs))
	workers := r.effectiveWorkers()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	// A Tracer or an obs.Registry is shared mutable state across runs:
	// concurrent execution would interleave (and race on) its records.
	// Keep instrumented batches serial so traces and sampled series stay
	// byte-identical to the sequential order.
	for _, cfg := range cfgs {
		if cfg.Tracer != nil || cfg.Obs != nil {
			workers = 1
			break
		}
	}
	r2 := Runner{Workers: workers}
	r2.forEach(len(cfgs), func(i int) {
		results[i] = RunFleet(cfgs[i])
	}, func(i int) string {
		return fmt.Sprintf("run %d (%s)", i, cfgs[i])
	})
	return results
}

// ForEach runs fn(0) .. fn(n-1) on the worker pool, returning once all
// calls complete. It is the generic scatter primitive under RunBatch and
// the fleet engine's per-cell kernels (RunFleet): fn must write its result
// into a caller-owned slot so outputs can be merged in index order
// regardless of execution order. A panic inside any fn is re-raised on the
// caller's goroutine (lowest index first); remaining tasks finish first.
func (r Runner) ForEach(n int, fn func(int)) {
	r.forEach(n, fn, func(i int) string { return fmt.Sprintf("task %d", i) })
}

// forEach is ForEach with a caller-supplied panic annotation.
func (r Runner) forEach(n int, fn func(int), describe func(int) string) {
	workers := r.effectiveWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						panic(fmt.Sprintf("experiment: %s panicked: %v", describe(i), rec))
					}
				}()
				fn(i)
			}()
		}
		return
	}

	type failure struct {
		idx int
		err interface{}
	}
	jobs := make(chan int)
	failures := make(chan failure, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							failures <- failure{idx: i, err: rec}
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(failures)

	var first *failure
	for f := range failures {
		f := f
		if first == nil || f.idx < first.idx {
			first = &f
		}
	}
	if first != nil {
		panic(fmt.Sprintf("experiment: %s panicked: %v", describe(first.idx), first.err))
	}
}

// defaultWorkers is the pool size the Exp* sweeps and Replicate use; it is
// what `mcsim -parallel N` sets. Zero selects runtime.GOMAXPROCS(0).
var defaultWorkers int

// SetDefaultWorkers sets the worker count used by the experiment sweeps
// (Exp1..Exp6, Replicate). n < 1 restores the default, one worker per
// available CPU. It returns the previous setting so tests can restore it.
func SetDefaultWorkers(n int) int {
	prev := defaultWorkers
	if n < 1 {
		n = 0
	}
	defaultWorkers = n
	return prev
}

// DefaultWorkers reports the effective sweep worker count.
func DefaultWorkers() int {
	return Runner{Workers: defaultWorkers}.effectiveWorkers()
}

// batch accumulates configs during an experiment's enqueue pass and the
// per-result continuations that build its tables. collect runs the whole
// batch on the default worker pool and then applies the continuations in
// submission order, so the emitted tables are byte-identical to what the
// old serial loops produced no matter how many workers raced underneath.
type batch struct {
	cfgs []Config
	then []func(Result)
}

// add enqueues one run; then (optional) consumes its Result during collect.
func (b *batch) add(cfg Config, then func(Result)) {
	b.cfgs = append(b.cfgs, cfg)
	b.then = append(b.then, then)
}

// collect executes the batch, appends every Result to rep in submission
// order, and invokes the continuations.
func (b *batch) collect(rep *Report) {
	results := Runner{Workers: defaultWorkers}.RunBatch(b.cfgs)
	for i, res := range results {
		if rep != nil {
			rep.Results = append(rep.Results, res)
		}
		if b.then[i] != nil {
			b.then[i](res)
		}
	}
}
