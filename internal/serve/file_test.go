package serve

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fileConfig is the shared scenario for persistence tests: object
// granularity, fixed 10s leases, injectable clock.
func fileConfig(clk *fakeClock) Config {
	return Config{
		Granularity: core.ObjectCaching,
		NumObjects:  200,
		FixedLease:  10,
		Clock:       clk.Now,
	}
}

func openFileStore(t *testing.T, path string, clk *fakeClock) *File {
	t.Helper()
	f, err := NewFile(path, storage.SyncGroup, fileConfig(clk))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	for _, want := range []string{"memory", "mem", "file"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
	_, err := Open("redis:localhost", Config{Granularity: core.ObjectCaching})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown backend = %v, want ErrBadRequest", err)
	}
	if !strings.Contains(err.Error(), "file") || !strings.Contains(err.Error(), "memory") {
		t.Fatalf("registry error does not list registered backends: %v", err)
	}
	if _, err := Open("memory:stuff", Config{Granularity: core.ObjectCaching}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("memory backend with operands = %v, want ErrBadRequest", err)
	}
	if _, err := Open("file:", Config{Granularity: core.ObjectCaching}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("file backend without path = %v, want ErrBadRequest", err)
	}
	if _, err := Open("file:/tmp/x?sync=bogus", Config{Granularity: core.ObjectCaching}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad sync mode = %v, want ErrBadRequest", err)
	}
	if _, err := Open("file:/tmp/x?nope=1", Config{Granularity: core.ObjectCaching}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown DSN param = %v, want ErrBadRequest", err)
	}
}

func TestFileDSNOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	st, err := Open("file:"+dir+"?sync=none", Config{
		Granularity: core.ObjectCaching, NumObjects: 50, FixedLease: 10,
	})
	if err != nil {
		t.Fatalf("Open(file:...): %v", err)
	}
	f := st.(*File)
	defer f.Close()
	stats := f.Stats()
	if stats.Backend != "file" {
		t.Fatalf("Backend = %q, want file", stats.Backend)
	}
	if !strings.HasPrefix(stats.DSN, "file:…/cache.db") {
		t.Fatalf("DSN = %q, want redacted path", stats.DSN)
	}
	if strings.Contains(stats.DSN, dir) {
		t.Fatalf("DSN %q leaks the full path", stats.DSN)
	}
	if stats.DiskBytes <= 0 {
		t.Fatalf("DiskBytes = %d, want > 0 (meta record)", stats.DiskBytes)
	}
}

// TestFileRestartPreservesState is the tentpole's live-layer acceptance
// check: cached leases, origin versions, and estimator write history all
// survive a close + reopen.
func TestFileRestartPreservesState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	clk := &fakeClock{}
	f := openFileStore(t, dir, clk)

	// Install a lease for client 1 on object 5 and write object 7 twice.
	res, err := f.Read(1, 5, 0, ModeServe)
	if err != nil || !res.FromOrigin {
		t.Fatalf("Read: %+v, %v", res, err)
	}
	if _, err := f.Write(7, []oodb.AttrID{0, 3}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	clk.Advance(2)
	v2, err := f.Write(7, []oodb.AttrID{0})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	clk.Advance(3) // downtime: 5s total since the read at t=0
	g := openFileStore(t, dir, clk)
	defer g.Close()

	// The lease survives and is still running (granted at 0, expires 10).
	info, err := g.Lease(1, 5, 0)
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if !info.Cached || !info.Valid {
		t.Fatalf("lease after restart = %+v, want cached+valid", info)
	}
	if info.Version != res.Version || info.ExpiresAt != res.ExpiresAt {
		t.Fatalf("lease after restart = %+v, want version %d expires %g",
			info, res.Version, res.ExpiresAt)
	}
	// A probe read classifies it as a hit, same as before the restart.
	r2, err := g.Read(1, 5, 0, ModeProbe)
	if err != nil || r2.State != core.Hit {
		t.Fatalf("probe after restart = %+v, %v; want hit", r2, err)
	}

	// Origin versions survive: object 7 saw 3 attribute writes.
	if got := g.org.db.ObjectVersion(7); got != v2 {
		t.Fatalf("object 7 version after restart = %d, want %d", got, v2)
	}
	if got := g.org.db.AttrVersion(7, 0); got != 2 {
		t.Fatalf("attr (7,0) version after restart = %d, want 2", got)
	}
	if got := g.org.db.TotalWrites(); got != 3 {
		t.Fatalf("TotalWrites after restart = %d, want 3", got)
	}

	// Estimator write history survives: object 7's stream saw events at
	// t=0 and t=2, so one 2s inter-arrival duration.
	st, ok := g.org.objEst.StreamState(oodb.ObjectItem(7))
	if !ok {
		t.Fatal("object 7 write stream lost across restart")
	}
	if st.N != 1 || st.Mean != 2 {
		t.Fatalf("stream state after restart = %+v, want n=1 mean=2", st)
	}
}

// TestFileLeaseExpiresThroughDowntime pins the documented wall-clock
// semantics: the store clock continues from the first boot's epoch, so a
// lease that would have expired during downtime is stale after restart.
func TestFileLeaseExpiresThroughDowntime(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	clk := &fakeClock{}
	f := openFileStore(t, dir, clk)
	if _, err := f.Read(0, 9, 0, ModeServe); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	clk.Advance(11) // lease was 10s; downtime overruns it
	g := openFileStore(t, dir, clk)
	defer g.Close()
	info, err := g.Lease(0, 9, 0)
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if !info.Cached || info.Valid {
		t.Fatalf("lease after overlong downtime = %+v, want cached but expired", info)
	}
	res, err := g.Read(0, 9, 0, ModeProbe)
	if err != nil || res.State != core.Stale {
		t.Fatalf("probe after overlong downtime = %+v, %v; want stale", res, err)
	}
}

func TestFileInvalidateDropsPersistedLease(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	clk := &fakeClock{}
	f := openFileStore(t, dir, clk)
	if _, err := f.Read(2, 4, 0, ModeServe); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n, err := f.Invalidate(2, 4, oodb.WholeObject); err != nil || n != 1 {
		t.Fatalf("Invalidate = %d, %v; want 1", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g := openFileStore(t, dir, clk)
	defer g.Close()
	info, err := g.Lease(2, 4, 0)
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if info.Cached {
		t.Fatalf("invalidated lease resurrected after restart: %+v", info)
	}
}

func TestFileFetchAndRenewPersist(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	clk := &fakeClock{}
	f := openFileStore(t, dir, clk)
	out, err := f.Fetch(3, []workload.ReadOp{{OID: 11}, {OID: 12}})
	if err != nil || len(out) != 2 {
		t.Fatalf("Fetch = %v, %v", out, err)
	}
	clk.Advance(5)
	info, err := f.Renew(3, 11, 0)
	if err != nil || !info.Cached {
		t.Fatalf("Renew = %+v, %v", info, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g := openFileStore(t, dir, clk)
	defer g.Close()
	// Object 11's lease was renewed at t=5 (expires 15); object 12's
	// original lease from t=0 (expires 10) also survives.
	i11, _ := g.Lease(3, 11, 0)
	if !i11.Cached || i11.ExpiresAt != info.ExpiresAt {
		t.Fatalf("renewed lease after restart = %+v, want expires %g", i11, info.ExpiresAt)
	}
	i12, _ := g.Lease(3, 12, 0)
	if !i12.Cached || i12.ExpiresAt != out[1].ExpiresAt {
		t.Fatalf("fetched lease after restart = %+v, want expires %g", i12, out[1].ExpiresAt)
	}
}

func TestFileReopenRejectsMismatchedConfig(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache.db")
	clk := &fakeClock{}
	f := openFileStore(t, dir, clk)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cfg := fileConfig(clk)
	cfg.Granularity = core.AttributeCaching
	if _, err := NewFile(dir, storage.SyncGroup, cfg); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("reopen with different granularity = %v, want ErrBadRequest", err)
	}
	cfg = fileConfig(clk)
	cfg.NumObjects = 999
	if _, err := NewFile(dir, storage.SyncGroup, cfg); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("reopen with different population = %v, want ErrBadRequest", err)
	}
}
