#!/usr/bin/env bash
# lintdocs.sh — documentation gate: every package in the module must carry a
# package comment (a doc comment immediately preceding its package clause in
# at least one non-test file), and the observability packages additionally
# require a doc comment on every exported top-level identifier. CI runs this
# alongside `make verify`; run it locally via `make lintdocs`.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r dir; do
    rel="${dir#"$PWD"/}"
    ok=0
    nontest=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        nontest=1
        # A package comment ends on the line directly above the package
        # clause: either a // line or the closing */ of a block comment.
        if awk '
            /^package[ \t]/ { if (prev ~ /^\/\// || prev ~ /\*\/[ \t]*$/) found = 1; exit }
            { prev = $0 }
            END { exit found ? 0 : 1 }
        ' "$f"; then
            ok=1
            break
        fi
    done
    # Test-only packages (e.g. the root benchmark harness) document
    # themselves in their _test.go files; skip them.
    if [ "$nontest" -eq 1 ] && [ "$ok" -eq 0 ]; then
        echo "lintdocs: package in $rel has no package comment" >&2
        fail=1
    fi
done < <(go list -f '{{.Dir}}' ./...)

# Exported-identifier gate for the public API surfaces: internal/obs and
# internal/report (the registry/report API other tools build on),
# internal/experiment (the Scenario/option constructor and the fleet
# engine, the repo's front door), internal/broadcast plus
# internal/coherence (the scheme catalog docs/COHERENCE.md documents), and
# the live serving layer — internal/serve and the mccached/mcload binaries
# (the endpoint catalog docs/SERVING.md documents) — and internal/storage,
# the persistence engine docs/STORAGE.md documents. Every exported
# top-level declaration must carry a doc comment directly above it (same
# rule go doc applies).
for dir in internal/obs internal/report internal/experiment internal/broadcast internal/coherence internal/serve internal/storage cmd/mccached cmd/mcload; do
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if ! awk -v file="$f" '
            /^(func|type|const|var) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
                if (prev !~ /^\/\// && prev !~ /\*\/[ \t]*$/) {
                    printf "lintdocs: %s:%d: exported %s lacks a doc comment\n", file, NR, $0 > "/dev/stderr"
                    bad = 1
                }
            }
            { prev = $0 }
            END { exit bad ? 1 : 0 }
        ' "$f"; then
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "lintdocs: FAIL" >&2
    exit 1
fi
echo "lintdocs: OK (all packages documented)"
