// ticker.go adapts the wall clock to the obs.Ticker interface, so the
// existing instrument registry — built for the simulation clock — samples a
// live service on real elapsed time without any registry changes.
package serve

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// WallTicker implements obs.Ticker on the wall clock. Now returns scaled
// seconds since construction; After schedules callbacks on real timers.
// Callbacks run serialized under an internal mutex and never after Stop
// returns, which is the happens-before edge that makes reading the sampled
// series safe once the ticker is stopped.
//
// Scale maps real seconds to ticker seconds: a live service uses scale 1
// (registry timestamps are real seconds of uptime); the load generator uses
// its time-compression factor so its registry timestamps land on the
// virtual timeline and its report charts align with the simulator's.
type WallTicker struct {
	scale float64
	start time.Time

	// mu guards stopped and timers; cbMu serializes callbacks. They are
	// separate because a callback may itself call After (the registry's
	// sampler reschedules its next tick from inside the current one).
	mu      sync.Mutex
	cbMu    sync.Mutex
	stopped bool
	timers  map[*time.Timer]struct{}
}

// NewWallTicker starts a ticker at scale ticker-seconds per real second
// (0 selects 1).
func NewWallTicker(scale float64) *WallTicker {
	if scale <= 0 {
		scale = 1
	}
	return &WallTicker{
		scale:  scale,
		start:  time.Now(),
		timers: make(map[*time.Timer]struct{}),
	}
}

// Now implements obs.Ticker: scaled seconds since construction.
func (t *WallTicker) Now() float64 {
	return time.Since(t.start).Seconds() * t.scale
}

// After implements obs.Ticker: fn runs after d ticker-seconds of real time
// (d / scale real seconds), serialized with every other callback, unless
// the ticker is stopped first.
func (t *WallTicker) After(d float64, fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	var timer *time.Timer
	timer = time.AfterFunc(time.Duration(d/t.scale*float64(time.Second)), func() {
		t.cbMu.Lock()
		defer t.cbMu.Unlock()
		t.mu.Lock()
		delete(t.timers, timer)
		stopped := t.stopped
		t.mu.Unlock()
		if stopped {
			return
		}
		fn()
	})
	t.timers[timer] = struct{}{}
}

// Stop cancels pending callbacks. After Stop returns no callback is running
// or will run, so the caller may read sampled series without racing the
// sampler.
func (t *WallTicker) Stop() {
	t.mu.Lock()
	t.stopped = true
	for timer := range t.timers {
		timer.Stop()
	}
	t.timers = nil
	t.mu.Unlock()
	// Drain any callback already past its timer: once we hold cbMu, no
	// callback body is running and none will start.
	t.cbMu.Lock()
	defer t.cbMu.Unlock()
}

// AttachWallClock attaches reg's sampler to a new WallTicker covering
// horizon ticker-seconds (math.Inf(1) samples until Stop) and returns the
// ticker. The registry must have been built with an explicit interval when
// the horizon is infinite.
func AttachWallClock(reg *obs.Registry, scale, horizon float64) *WallTicker {
	t := NewWallTicker(scale)
	if reg.Enabled() {
		reg.Attach(t, horizon)
	}
	return t
}

// InfiniteHorizon is a convenience alias for an unbounded sampling horizon.
var InfiniteHorizon = math.Inf(1)
