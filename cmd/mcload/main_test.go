package main

import (
	"flag"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/serve"
	"repro/internal/workload"
)

func parseOpts(t *testing.T, args ...string) loadOpts {
	t.Helper()
	var o loadOpts
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return o
}

func TestConfigMirrorsMcsimSurface(t *testing.T) {
	o := parseOpts(t, "-seed", "3", "-days", "0.5", "-clients", "6",
		"-granularity", "oc", "-kind", "NQ", "-heat", "csh", "-arrival", "bursty",
		"-update", "0.2", "-beta", "1.5", "-lease", "120")
	cfg, err := o.config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	if cfg.Seed != 3 || cfg.Days != 0.5 || cfg.NumClients != 6 ||
		cfg.Granularity != core.ObjectCaching || cfg.QueryKind != workload.Navigational ||
		cfg.Heat != experiment.ChangingSkewedHeat || cfg.Arrival != experiment.BurstyArrival ||
		cfg.UpdateProb != 0.2 || cfg.Beta != 1.5 {
		t.Fatalf("config mismatch: %+v", cfg)
	}
	if cfg.Coherence != coherence.FixedLeaseStrategy || cfg.FixedLease != 120 {
		t.Fatal("-lease must select fixed-lease coherence")
	}
	if err := serve.ValidateLive(experiment.Defaults(cfg)); err != nil {
		t.Fatalf("flag surface built an unreplayable config: %v", err)
	}
}

func TestQuickDefaults(t *testing.T) {
	o := parseOpts(t, "-quick")
	cfg, err := o.config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	if cfg.Days != 0.06 || cfg.NumClients != 4 || cfg.NumObjects != 400 {
		t.Fatalf("quick defaults %+v; want the smoke scale", cfg)
	}
	// Explicit flags beat the quick defaults.
	o = parseOpts(t, "-quick", "-days", "0.1", "-clients", "2")
	cfg, _ = o.config()
	if cfg.Days != 0.1 || cfg.NumClients != 2 {
		t.Fatalf("explicit flags overridden by -quick: %+v", cfg)
	}
}

func TestConfigRejectsBadEnums(t *testing.T) {
	for _, args := range [][]string{
		{"-granularity", "zz"},
		{"-kind", "XX"},
		{"-heat", "flat"},
		{"-arrival", "never"},
	} {
		o := parseOpts(t, args...)
		if _, err := o.config(); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestRunRejectsUnreachableService(t *testing.T) {
	// No service on this port: run must fail fast with exit code 1, not
	// hang — the first probe's connection error aborts the replay.
	if code := run([]string{"-url", "http://127.0.0.1:1", "-quick", "-days", "0.001"}); code != 1 {
		t.Fatalf("run against a dead port returned %d; want 1", code)
	}
}
