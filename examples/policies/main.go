// Policies: a replacement-policy bake-off on a mobile client whose
// interests drift (§3.3, Experiments #2 and #4). A field engineer's hot set
// changes as they move between sites (the CSH pattern); the example runs
// every policy in the library — the paper's Mean/Window/EWMA schemes, the
// conventional LRU/LRU-k/LRD, and the classical FIFO/CLOCK/Random
// baselines — on both a stable and a changing hot set.
//
// Each run is an experiment.New scenario; WithPolicy validates the spec
// string up front, so a typo fails with ErrBadSpec before anything runs.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	policies := []string{
		"ewma-0.5", "mean", "win-10", "lru", "lru-3", "lrd",
		"fifo", "clock", "random:1",
	}

	type row struct {
		policy   string
		stable   float64
		drifting float64
	}
	rows := make([]row, 0, len(policies))

	for _, pol := range policies {
		rows = append(rows, row{
			policy:   pol,
			stable:   hitRatio(pol, experiment.SkewedHeat),
			drifting: hitRatio(pol, experiment.ChangingSkewedHeat),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].drifting > rows[j].drifting })

	fmt.Println("single client, read-only, hybrid caching, 2 simulated days")
	fmt.Printf("\n%-10s  %12s  %14s  %8s\n", "policy", "stable hit %", "drifting hit %", "drop")
	for _, r := range rows {
		fmt.Printf("%-10s  %12.1f  %14.1f  %7.1f%%\n",
			r.policy, 100*r.stable, 100*r.drifting, 100*(r.stable-r.drifting))
	}
	fmt.Println("\nthe paper's recommendation: EWMA adapts to drift with O(1) state")
	fmt.Println("per item; Mean drags its whole history and collapses when the hot")
	fmt.Println("set moves (Experiment #2).")
}

func hitRatio(policy string, heat experiment.HeatKind) float64 {
	sc, err := experiment.New(
		experiment.WithSeed(5),
		experiment.WithHorizonDays(2),
		experiment.WithClients(1),
		experiment.WithGranularity(core.HybridCaching),
		experiment.WithPolicy(policy),
		experiment.WithQueryKind(workload.Associative),
		experiment.WithHeat(heat),
		experiment.WithCSHChangeEvery(300),
		experiment.WithUpdateProb(0), // read-only: the policies' best case (Figure 3)
	)
	if err != nil {
		log.Fatal(err)
	}
	return sc.Run().HitRatio
}
