// twin.go exports the deterministic pieces of a run that live replay needs:
// the database construction and the per-client workload substreams. The live
// serving twin (internal/serve, cmd/mccached, cmd/mcload) replays the exact
// query stream a simulated client would issue, over real sockets, and diffs
// the measured ratios against the simulator's — which only works if both
// sides derive every draw from the same substream. buildClients and Run use
// these same helpers, so the two can never drift apart.
package experiment

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/rng"
	"repro/internal/workload"
)

// NewDatabase constructs the run's object database exactly as Run and
// RunFleet do: relationship topology derived from the root seed's 0xdb
// substream. A live service booted with the same seed and object count
// therefore agrees with every replayed client on which objects exist and
// where navigational queries lead. cfg should already be defaulted.
func NewDatabase(cfg Config) *oodb.Database {
	return oodb.New(oodb.Config{
		NumObjects: cfg.NumObjects,
		RelSeed:    RelSeed(cfg.Seed),
	})
}

// RelSeed derives the database relationship-topology seed from the run's
// root seed — the one derivation both the simulator and the live service
// must share for navigational queries to agree.
func RelSeed(seed uint64) uint64 {
	return rng.Derive(seed, 0xdb).Uint64()
}

// ClientWorkload bundles the deterministic workload substreams of fleet
// client i — the same heat model, query generator, arrival process, and RNG
// stream buildClients wires into the simulated client. Draw order matters:
// the client alternates Arrival.Next then Gen.NextInto on Stream, so a
// replayer must interleave identically to stay in sync.
type ClientWorkload struct {
	// Heat is the client's private heat model (hot sets differ per client,
	// §4 of the paper).
	Heat workload.HeatModel
	// Gen produces the client's queries over Heat and the database topology.
	Gen *workload.QueryGen
	// Arrival schedules the open-loop query stream.
	Arrival workload.Arrival
	// Stream drives both arrival and query draws — identical to the
	// simulated client's private stream.
	Stream *rng.Stream
	// UpdateStream drives the live replayer's per-object update coin. The
	// simulator flips this coin server-side from one shared stream, so the
	// exact write sequence differs between sim and live; the per-object
	// update probability — what the measured ratios depend on — is the same.
	UpdateStream *rng.Stream
}

// NewClientWorkload builds the workload substreams of fleet client i against
// db (which must come from NewDatabase with the same config). cfg must be
// defaulted (Defaults or Scenario.Config); it panics on unknown heat or
// arrival kinds, like buildClients.
func NewClientWorkload(cfg Config, db *oodb.Database, i int) ClientWorkload {
	heat := buildHeat(cfg, i)
	gen := workload.NewQueryGen(workload.QueryGenConfig{
		Kind:          cfg.QueryKind,
		Heat:          heat,
		DB:            db,
		Selectivity:   cfg.Selectivity,
		AttrsPerObj:   cfg.AttrsPerObj,
		AttrSkewTheta: cfg.AttrSkewTheta,
	})
	var arrival workload.Arrival
	switch cfg.Arrival {
	case PoissonArrival:
		arrival = workload.NewPoisson(cfg.PoissonRate)
	case BurstyArrival:
		arrival = workload.NewDefaultBursty()
	default:
		panic(fmt.Sprintf("experiment: unknown arrival kind %d", cfg.Arrival))
	}
	seed := rng.Derive(cfg.Seed, 0xc0+uint64(i)).Uint64()
	return ClientWorkload{
		Heat:         heat,
		Gen:          gen,
		Arrival:      arrival,
		Stream:       rng.Derive(seed, 0xc11e47+uint64(i)),
		UpdateStream: rng.Derive(seed, 0x11f0ad+uint64(i)),
	}
}
