package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Two processes contending for a capacity-1 facility: the second queues
// behind the first, CSIM style.
func Example() {
	k := sim.NewKernel()
	disk := sim.NewResource(k, "disk", 1)
	for i := 1; i <= 2; i++ {
		i := i
		k.Spawn("reader", func(p *sim.Proc) {
			disk.Use(p, 10) // acquire, hold 10s of service, release
			fmt.Printf("reader %d done at t=%v\n", i, p.Now())
		})
	}
	k.RunAll()
	// Output:
	// reader 1 done at t=10
	// reader 2 done at t=20
}

// Processes advance virtual time with Hold; the kernel interleaves them
// deterministically.
func ExampleKernel_Spawn() {
	k := sim.NewKernel()
	k.Spawn("slow", func(p *sim.Proc) {
		p.Hold(5)
		fmt.Println("slow fires at", p.Now())
	})
	k.Spawn("fast", func(p *sim.Proc) {
		p.Hold(2)
		fmt.Println("fast fires at", p.Now())
	})
	k.RunAll()
	// Output:
	// fast fires at 2
	// slow fires at 5
}
