#!/usr/bin/env bash
# bench.sh — run the performance-engine benchmarks and record the results.
#
# Runs the kernel micro-benchmarks (ns/event and allocs/event of the
# discrete-event core) and the parallel sweep benchmark (wall-clock of a
# 16-config evaluation slice at pool sizes 1/2/4/8) with -benchmem, prints
# the usual go test output, and writes a machine-readable summary to
# BENCH_kernel.json at the repo root.
#
# Environment knobs:
#   BENCH_TIME   go -benchtime for the kernel benches (default 200x)
#   BENCH_COUNT  go -count repetitions               (default 1)
#   SKIP_SWEEP   non-empty skips the (slow) full-sweep benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-200x}"
BENCH_COUNT="${BENCH_COUNT:-1}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Kernel' -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/sim | tee "$raw"

if [ -z "${SKIP_SWEEP:-}" ]; then
    go test -run '^$' -bench 'FullSweep' -benchtime 1x . | tee -a "$raw"
fi

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $(i - 1))
        if ($i == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $(i - 1))
    }
    entry = entry "}"
    entries[++n] = entry
}
END {
    printf("{\n  \"date\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n", date, goos, goarch, cpu)
    for (i = 1; i <= n; i++)
        printf("%s%s\n", entries[i], i < n ? "," : "")
    printf("  ]\n}\n")
}' "$raw" > BENCH_kernel.json

echo "wrote BENCH_kernel.json ($(grep -c '"name"' BENCH_kernel.json) benchmarks)"
