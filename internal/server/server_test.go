package server

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*sim.Kernel, *Server) {
	t.Helper()
	k := sim.NewKernel()
	if cfg.Kernel == nil {
		cfg.Kernel = k
	}
	if cfg.DB == nil {
		cfg.DB = oodb.New(oodb.Config{NumObjects: 100, RelSeed: 1})
	}
	if math.IsNaN(cfg.PrefetchKappa) {
		// keep caller's NaN
	} else if cfg.PrefetchKappa == 0 {
		cfg.PrefetchKappa = math.NaN() // default
	}
	return cfg.Kernel, New(cfg)
}

// run executes fn inside a simulation process and returns after RunAll.
func run(k *sim.Kernel, fn func(p *sim.Proc)) {
	k.Spawn("test", fn)
	k.RunAll()
}

func reads(oids ...int) []workload.ReadOp {
	var out []workload.ReadOp
	for _, oid := range oids {
		out = append(out, workload.ReadOp{OID: oodb.OID(oid), Attr: 0})
	}
	return out
}

func TestACReplyOnlyNeededAttrs(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			ClientID:    1,
			Granularity: core.AttributeCaching,
			Accesses: []workload.ReadOp{
				{OID: 1, Attr: 0}, {OID: 1, Attr: 1}, {OID: 2, Attr: 3},
			},
			Need: []workload.ReadOp{{OID: 2, Attr: 3}},
		})
	})
	if len(reply.Items) != 1 {
		t.Fatalf("reply has %d items, want 1", len(reply.Items))
	}
	it := reply.Items[0]
	if it.Item != oodb.AttrItem(2, 3) || it.Prefetched {
		t.Fatalf("reply item %+v", it)
	}
}

func TestOCReplyWholeObjects(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			ClientID:    1,
			Granularity: core.ObjectCaching,
			Accesses: []workload.ReadOp{
				{OID: 1, Attr: 0}, {OID: 1, Attr: 5}, {OID: 2, Attr: 1},
			},
			Need: []workload.ReadOp{
				{OID: 1, Attr: 0}, {OID: 1, Attr: 5}, {OID: 2, Attr: 1},
			},
		})
	})
	if len(reply.Items) != 2 {
		t.Fatalf("reply has %d items, want 2 distinct objects", len(reply.Items))
	}
	for _, it := range reply.Items {
		if !it.Item.IsObject() {
			t.Fatalf("OC reply shipped non-object %v", it.Item)
		}
	}
}

func TestOCReplyBiggerThanAC(t *testing.T) {
	need := []workload.ReadOp{{OID: 1, Attr: 0}, {OID: 1, Attr: 1}}
	var acSize, ocSize int
	{
		k, s := newTestServer(t, Config{})
		run(k, func(p *sim.Proc) {
			acSize = s.Process(p, Request{Granularity: core.AttributeCaching,
				Accesses: need, Need: need}).WireSize()
		})
	}
	{
		k, s := newTestServer(t, Config{})
		run(k, func(p *sim.Proc) {
			ocSize = s.Process(p, Request{Granularity: core.ObjectCaching,
				Accesses: need, Need: need}).WireSize()
		})
	}
	if ocSize <= acSize {
		t.Fatalf("OC reply %dB <= AC reply %dB", ocSize, acSize)
	}
}

func TestEmptyNeedEmptyReply(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			Granularity: core.AttributeCaching,
			Accesses:    reads(1, 2),
		})
	})
	if len(reply.Items) != 0 {
		t.Fatalf("reply items %v, want none", reply.Items)
	}
}

func TestUpdatesApplied(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 50})
	k, s := newTestServer(t, Config{DB: db, UpdateProb: 1, Seed: 3})
	run(k, func(p *sim.Proc) {
		s.Process(p, Request{
			Granularity: core.AttributeCaching,
			Accesses: []workload.ReadOp{
				{OID: 7, Attr: 2}, {OID: 7, Attr: 4}, {OID: 9, Attr: 1},
			},
			Need: []workload.ReadOp{{OID: 7, Attr: 2}},
		})
	})
	if db.AttrVersion(7, 2) != 1 || db.AttrVersion(7, 4) != 1 {
		t.Fatal("accessed attributes not updated with U=1")
	}
	if db.AttrVersion(7, 0) != 0 {
		t.Fatal("unaccessed attribute was updated")
	}
	if db.AttrVersion(9, 1) != 1 {
		t.Fatal("second object not updated")
	}
	if s.Stats().UpdatesApplied != 2 {
		t.Fatalf("UpdatesApplied = %d, want 2", s.Stats().UpdatesApplied)
	}
}

func TestNoUpdatesWhenProbZero(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 50})
	k, s := newTestServer(t, Config{DB: db, UpdateProb: 0})
	run(k, func(p *sim.Proc) {
		s.Process(p, Request{
			Granularity: core.AttributeCaching,
			Accesses:    reads(1, 2, 3),
			Need:        reads(1),
		})
	})
	if db.TotalWrites() != 0 {
		t.Fatalf("writes applied with U=0: %d", db.TotalWrites())
	}
}

func TestRefreshTimesShippedWithWrites(t *testing.T) {
	db := oodb.New(oodb.Config{NumObjects: 50})
	k, s := newTestServer(t, Config{DB: db, UpdateProb: 1, Seed: 1, Beta: 0})
	var last Reply
	run(k, func(p *sim.Proc) {
		// Repeated queries on the same attr create a write stream; later
		// replies must carry finite expiry.
		for i := 0; i < 5; i++ {
			last = s.Process(p, Request{
				Granularity: core.AttributeCaching,
				Accesses:    []workload.ReadOp{{OID: 3, Attr: 1}},
				Need:        []workload.ReadOp{{OID: 3, Attr: 1}},
			})
			p.Hold(100)
		}
	})
	if len(last.Items) != 1 {
		t.Fatalf("items %v", last.Items)
	}
	// Inter-write gap is ~100s; the shipped refresh estimate must be in
	// that neighbourhood once history exists.
	if rt := last.Items[0].Refresh; rt < 50 || rt > 500 {
		t.Fatalf("shipped refresh time %v, want ~100s", rt)
	}
	if last.Items[0].Version != db.AttrVersion(3, 1) {
		t.Fatal("reply version stale")
	}
}

func TestBufferAndDiskAccounting(t *testing.T) {
	k, s := newTestServer(t, Config{})
	run(k, func(p *sim.Proc) {
		req := Request{
			Granularity: core.AttributeCaching,
			Accesses:    reads(1, 2),
			Need:        reads(1, 2),
		}
		s.Process(p, req)
		s.Process(p, req) // same objects: buffer hits
	})
	st := s.Stats()
	if st.DiskReads != 2 {
		t.Fatalf("DiskReads = %d, want 2", st.DiskReads)
	}
	if st.BufferHits != 2 {
		t.Fatalf("BufferHits = %d, want 2", st.BufferHits)
	}
	if st.QueriesServed != 2 {
		t.Fatalf("QueriesServed = %d", st.QueriesServed)
	}
}

func TestDiskTimeCharged(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var elapsed float64
	run(k, func(p *sim.Proc) {
		start := p.Now()
		s.Process(p, Request{
			Granularity: core.AttributeCaching,
			Accesses:    reads(1),
			Need:        reads(1),
		})
		elapsed = p.Now() - start
	})
	want := float64(oodb.ObjectSize) * 8 / 40e6
	if math.Abs(elapsed-want) > 1e-12 {
		t.Fatalf("elapsed %v, want %v (one disk read)", elapsed, want)
	}
}

func TestHCPrefetchColdStart(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			ClientID:    1,
			Granularity: core.HybridCaching,
			Accesses:    []workload.ReadOp{{OID: 1, Attr: 0}},
			Need:        []workload.ReadOp{{OID: 1, Attr: 0}},
		})
	})
	// Below prefetchMinSamples the prefetch set is empty: HC behaves as AC.
	if len(reply.Items) != 1 || reply.Items[0].Prefetched {
		t.Fatalf("cold-start HC reply %+v", reply.Items)
	}
}

func TestHCPrefetchAfterWarmup(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		// Warm the heat profile: client 1 hammers attributes 0 and 1.
		warm := Request{
			ClientID:    1,
			Granularity: core.HybridCaching,
			Accesses: []workload.ReadOp{
				{OID: 1, Attr: 0}, {OID: 2, Attr: 0}, {OID: 3, Attr: 1},
			},
		}
		for i := 0; i < 60; i++ {
			s.Process(p, warm)
		}
		reply = s.Process(p, Request{
			ClientID:    1,
			Granularity: core.HybridCaching,
			Accesses:    []workload.ReadOp{{OID: 9, Attr: 0}},
			Need:        []workload.ReadOp{{OID: 9, Attr: 0}},
		})
	})
	set := s.PrefetchSet(1)
	if len(set) == 0 {
		t.Fatal("prefetch set empty after warmup")
	}
	for _, a := range set {
		if a != 0 && a != 1 {
			t.Fatalf("prefetch set contains cold attribute %d", a)
		}
	}
	// The reply must include prefetched hot attributes of object 9 beyond
	// the requested one, flagged as prefetched, with no duplicates.
	seen := map[oodb.Item]bool{}
	prefetched := 0
	for _, it := range reply.Items {
		if seen[it.Item] {
			t.Fatalf("duplicate reply item %v", it.Item)
		}
		seen[it.Item] = true
		if it.Prefetched {
			prefetched++
		}
	}
	if got := len(reply.Items) - prefetched; got != 1 {
		t.Fatalf("requested items in reply = %d, want 1", got)
	}
	if prefetched != len(set)-1 && prefetched != len(set) {
		t.Fatalf("prefetched %d items, prefetch set %d", prefetched, len(set))
	}
}

func TestHCKappaControlsPrefetchBreadth(t *testing.T) {
	warm := func(s *Server, k *sim.Kernel) {
		run(k, func(p *sim.Proc) {
			// Skewed profile: attr0 80%, attr1 20%.
			var acc []workload.ReadOp
			for i := 0; i < 80; i++ {
				acc = append(acc, workload.ReadOp{OID: oodb.OID(i % 20), Attr: 0})
			}
			for i := 0; i < 20; i++ {
				acc = append(acc, workload.ReadOp{OID: oodb.OID(i % 20), Attr: 1})
			}
			s.Process(p, Request{ClientID: 1, Granularity: core.HybridCaching, Accesses: acc})
		})
	}
	kLow, sLow := newTestServer(t, Config{PrefetchKappa: -2})
	warm(sLow, kLow)
	kHigh, sHigh := newTestServer(t, Config{PrefetchKappa: 2})
	warm(sHigh, kHigh)
	low := len(sLow.PrefetchSet(1))
	high := len(sHigh.PrefetchSet(1))
	if low <= high {
		t.Fatalf("kappa=-2 prefetches %d attrs, kappa=+2 prefetches %d; want low > high", low, high)
	}
	if low != oodb.NumPrimAttrs {
		t.Fatalf("kappa=-2 (the paper's setting) should prefetch all attrs, got %d", low)
	}
}

func TestHeatIsolatedPerClient(t *testing.T) {
	k, s := newTestServer(t, Config{})
	run(k, func(p *sim.Proc) {
		var acc []workload.ReadOp
		for i := 0; i < 200; i++ {
			acc = append(acc, workload.ReadOp{OID: 1, Attr: 0})
		}
		s.Process(p, Request{ClientID: 1, Granularity: core.HybridCaching, Accesses: acc})
	})
	if set := s.PrefetchSet(2); set != nil {
		t.Fatalf("client 2 inherited client 1's heat: %v", set)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { New(Config{}) },
		func() { New(Config{Kernel: sim.NewKernel()}) },
		func() {
			New(Config{Kernel: sim.NewKernel(),
				DB: oodb.New(oodb.Config{NumObjects: 10}), UpdateProb: 2})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	k := sim.NewKernel()
	s := New(Config{Kernel: k, DB: oodb.New(oodb.Config{NumObjects: 10})})
	k.Spawn("bad", func(p *sim.Proc) {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			s.Process(p, Request{Granularity: core.Granularity(42)})
		}()
		if !panicked {
			t.Error("invalid granularity did not panic")
		}
	})
	k.RunAll()
}

func TestRequestWireSize(t *testing.T) {
	req := Request{ExistentEntries: 3}
	if req.WireSize() != 11+16+3*5 {
		t.Fatalf("WireSize = %d", req.WireSize())
	}
}

func TestNCReplyShipsWholeObjects(t *testing.T) {
	k, s := newTestServer(t, Config{})
	var reply Reply
	run(k, func(p *sim.Proc) {
		reply = s.Process(p, Request{
			Granularity: core.NoCache,
			Accesses:    reads(1, 2),
			Need:        reads(1, 2),
		})
	})
	if len(reply.Items) != 2 {
		t.Fatalf("%d items", len(reply.Items))
	}
	for _, it := range reply.Items {
		if !it.Item.IsObject() {
			t.Fatalf("NC reply shipped %v", it.Item)
		}
	}
}

func TestHeatIgnoresRelationshipAttrs(t *testing.T) {
	k, s := newTestServer(t, Config{})
	run(k, func(p *sim.Proc) {
		var acc []workload.ReadOp
		for i := 0; i < 200; i++ {
			// Relationship slots (>= NumPrimAttrs) must not pollute the
			// prefetch profile.
			acc = append(acc, workload.ReadOp{OID: 1, Attr: oodb.NumPrimAttrs})
			acc = append(acc, workload.ReadOp{OID: 1, Attr: 0})
		}
		s.Process(p, Request{ClientID: 1, Granularity: core.HybridCaching, Accesses: acc})
	})
	for _, a := range s.PrefetchSet(1) {
		if a >= oodb.NumPrimAttrs {
			t.Fatalf("prefetch set contains relationship attr %d", a)
		}
	}
	if len(s.PrefetchSet(1)) == 0 {
		t.Fatal("prefetch set empty despite 200 primitive accesses")
	}
}

func TestPrefetchMinSamplesBoundary(t *testing.T) {
	k, s := newTestServer(t, Config{})
	run(k, func(p *sim.Proc) {
		acc := make([]workload.ReadOp, prefetchMinSamples-1)
		for i := range acc {
			acc[i] = workload.ReadOp{OID: oodb.OID(i % 50), Attr: 0}
		}
		s.Process(p, Request{ClientID: 1, Granularity: core.HybridCaching, Accesses: acc})
	})
	if set := s.PrefetchSet(1); set != nil {
		t.Fatalf("prefetch active below min samples: %v", set)
	}
	run(k, func(p *sim.Proc) {
		s.Process(p, Request{ClientID: 1, Granularity: core.HybridCaching,
			Accesses: []workload.ReadOp{{OID: 1, Attr: 0}}})
	})
	if set := s.PrefetchSet(1); len(set) == 0 {
		t.Fatal("prefetch still inactive at min samples")
	}
}

func TestUpdateDeterminism(t *testing.T) {
	// Same seed, same request stream: identical updates.
	runOnce := func() uint64 {
		db := oodb.New(oodb.Config{NumObjects: 50})
		k, s := newTestServer(t, Config{DB: db, UpdateProb: 0.5, Seed: 42})
		run(k, func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				s.Process(p, Request{
					Granularity: core.AttributeCaching,
					Accesses:    reads(i%7, (i+1)%7),
				})
			}
		})
		return db.TotalWrites()
	}
	if a, b := runOnce(), runOnce(); a != b || a == 0 {
		t.Fatalf("updates not deterministic: %d vs %d", a, b)
	}
}
