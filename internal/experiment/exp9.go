package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// exp9DefaultDays is the million-client sweep's horizon when the base
// config leaves Days unset: ~14 simulated minutes gives every client a
// handful of Poisson arrivals (0.01/s) without making the 1M-client point
// take hours of wall clock.
const exp9DefaultDays = 0.01

// Thin-client sizing for the fleet sweep. Per-client live state is
// dominated by the storage cache (objects x ~12 attribute entries of LRU +
// policy-slot + coherence bookkeeping, ~1.4 KB per cached object measured)
// plus the per-object workload heat vector. At the paper's ratios a
// million clients would need ~145 GB; capping the database at 500 objects
// and the client caches at 10 storage + 4 memory-buffer objects keeps the
// fleet within one box (~60 GB at 10^6 clients) while preserving the
// structure under study — per-cell channel contention, backbone relaying,
// and cache coherence. The price is a storage cache covering 2% of the
// database instead of the paper's 20%, so hit ratios sit well below the
// single-cell experiments; EXPERIMENTS.md #9 records the deviation.
const (
	exp9ThinObjects        = 500
	exp9ThinStorageObjects = 10
	exp9ThinMemBufObjects  = 4
)

// Exp9 — beyond the paper: million-client fleets on the state-machine
// engine (ISSUE #7 tentpole payoff). Two panels:
//
//  1. engine parity at the smallest fleet — the same config run on the
//     Proc engine and the SM engine, printed as adjacent rows. The rows
//     must be identical; this is the differential guarantee
//     (TestEngineLockstep) made visible in the report itself;
//  2. fleet size sweep {10k, 100k, 1M} on the SM engine, which holds one
//     inline state machine per client instead of one goroutine + resume
//     channel per client. The Proc engine cannot reach the 1M point on
//     one box (≈ millions of goroutine stacks plus channel rendezvous on
//     every hold); the SM engine makes it a batch job.
//
// Wall-clock throughput is intentionally not a table column (same policy
// as Exp8): tables carry only deterministic quantities, and mcsim reports
// events/sec separately from the measured wall time.
func Exp9(base Config) *Report {
	return exp9(base, []int{10_000, 100_000, 1_000_000}, 64)
}

// Exp9Quick runs a sparser sweep (10k clients, 16 cells at most) for
// time-constrained sweeps and the CI smoke.
func Exp9Quick(base Config) *Report {
	return exp9(base, []int{1_000, 10_000}, 16)
}

func exp9(base Config, fleets []int, cells int) *Report {
	rep := &Report{Name: "exp9"}
	if base.Days == 0 {
		base.Days = exp9DefaultDays
	}
	prep := func(c *Config) {
		c.Granularity = core.HybridCaching
		c.QueryKind = workload.Associative
		if c.UpdateProb == 0 {
			c.UpdateProb = 0.1
		}
		if c.NumObjects == 0 {
			c.NumObjects = exp9ThinObjects
		}
		if c.StorageObjects == 0 {
			c.StorageObjects = exp9ThinStorageObjects
		}
		if c.MemBufferObjects == 0 {
			c.MemBufferObjects = exp9ThinMemBufObjects
		}
		c.Cells = cells
	}
	run := func(cfg Config) Result {
		res := RunFleet(cfg)
		rep.Results = append(rep.Results, res)
		return res
	}
	mb := func(bytes uint64) string { return fmt.Sprintf("%.4g", float64(bytes)/1e6) }
	millions := func(n uint64) string { return fmt.Sprintf("%.4g", float64(n)/1e6) }

	// Panel 1: engine parity at the smallest fleet. Identical rows are the
	// acceptance criterion, not a hope: both engines schedule through the
	// same kernel heap with the same sequence numbers.
	parityFleet := fleets[0]
	tblP := NewTable(
		fmt.Sprintf("Experiment #9 — engine parity (%d clients, %d cells, HC)",
			parityFleet, cells),
		"engine", "hit %", "resp (s)", "err %", "backbone MB", "events (M)")
	rep.Tables = append(rep.Tables, tblP)
	for _, engine := range []Engine{EngineProcs, EngineSM} {
		engine := engine
		cfg := merge(base, func(c *Config) {
			prep(c)
			c.Label = fmt.Sprintf("exp9/engine=%s/fleet=%d", engine, parityFleet)
			c.NumClients = parityFleet
			c.Engine = engine
		})
		res := run(cfg)
		tblP.Add(string(engine), pct(res.HitRatio), secs(res.MeanResponse),
			pct(res.ErrorRate), mb(res.BackboneBytes), millions(res.Events))
	}

	// Panel 2: fleet size on the SM engine.
	tbl := NewTable(
		fmt.Sprintf("Experiment #9 — fleet size on the SM engine (%d cells, HC)", cells),
		"clients", "hit %", "resp (s)", "err %", "backbone MB", "events (M)")
	rep.Tables = append(rep.Tables, tbl)
	for _, fleet := range fleets {
		fleet := fleet
		cfg := merge(base, func(c *Config) {
			prep(c)
			c.Label = fmt.Sprintf("exp9/fleet=%d", fleet)
			c.NumClients = fleet
			c.Engine = EngineSM
		})
		res := run(cfg)
		tbl.Add(fmt.Sprint(fleet), pct(res.HitRatio), secs(res.MeanResponse),
			pct(res.ErrorRate), mb(res.BackboneBytes), millions(res.Events))
	}
	return rep
}
