// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (§5) at benchmark scale and reports the paper's
// metrics alongside wall-clock cost:
//
//	go test -bench=. -benchmem
//
// Each Benchmark* corresponds to one experiment (see DESIGN.md's
// per-experiment index); sub-benchmarks are the series of the figure. The
// reported custom metrics are hit% (average cache hit ratio), resp_s
// (average response time in seconds), and err% (error rate). Benchmark
// runs use a reduced horizon (same population and ratios as Table 1);
// `go run ./cmd/mcsim -exp N` regenerates the full-scale numbers recorded
// in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// benchDays is the simulated horizon per benchmark iteration. A quarter
// day keeps one iteration around a hundred milliseconds while still
// reaching cache steady state.
const benchDays = 0.25

// benchBase returns the common benchmark configuration: the paper's
// population at a reduced horizon.
func benchBase() experiment.Config {
	return experiment.Config{
		Seed:        1,
		Days:        benchDays,
		QueryKind:   workload.Associative,
		Heat:        experiment.SkewedHeat,
		Granularity: core.HybridCaching,
		UpdateProb:  0.1,
	}
}

// reportRun executes cfg once per iteration and attaches the paper's
// metrics to the benchmark result.
func reportRun(b *testing.B, cfg experiment.Config) {
	b.Helper()
	var res experiment.Result
	for i := 0; i < b.N; i++ {
		res = experiment.Run(cfg)
	}
	b.ReportMetric(100*res.HitRatio, "hit%")
	b.ReportMetric(res.MeanResponse, "resp_s")
	b.ReportMetric(100*res.ErrorRate, "err%")
}

// BenchmarkTable1_Defaults runs the paper's default configuration
// (Table 1) once per iteration.
func BenchmarkTable1_Defaults(b *testing.B) {
	reportRun(b, benchBase())
}

// BenchmarkFullSweep executes a 16-config slice of the evaluation (the
// Exp3 policy lineup under both arrival patterns, plus the Exp1
// granularity row) on the parallel Runner at increasing pool sizes.
// serial is the workers=1 baseline; on an N-core machine the sweep's
// wall-clock should shrink roughly N-fold (each run is an independent
// simulation), while the reported tables stay byte-identical — see
// TestParallelSerialEquivalenceExp1.
func BenchmarkFullSweep(b *testing.B) {
	var cfgs []experiment.Config
	for _, arrival := range []experiment.ArrivalKind{experiment.PoissonArrival, experiment.BurstyArrival} {
		for _, pol := range []string{"lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5"} {
			cfg := benchBase()
			cfg.Arrival = arrival
			cfg.Policy = pol
			cfgs = append(cfgs, cfg)
		}
	}
	for _, g := range core.Granularities() {
		cfg := benchBase()
		cfg.Granularity = g
		cfgs = append(cfgs, cfg)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.Runner{Workers: workers}.RunBatch(cfgs)
			}
			b.ReportMetric(float64(len(cfgs)), "runs")
		})
	}
}

// BenchmarkExp1_Fig2 — Figure 2: caching granularity (NC/AC/OC/HC) under
// both query kinds; U = 0.1, EWMA-0.5, Poisson arrivals.
func BenchmarkExp1_Fig2(b *testing.B) {
	for _, kind := range []workload.Kind{workload.Associative, workload.Navigational} {
		for _, g := range core.Granularities() {
			b.Run(fmt.Sprintf("%s/%s", kind, g), func(b *testing.B) {
				cfg := benchBase()
				cfg.QueryKind = kind
				cfg.Granularity = g
				reportRun(b, cfg)
			})
		}
	}
}

// BenchmarkExp2_Fig3 — Figure 3: replacement policies at their best case
// (read-only, one client, HC) on stable and changing hot sets.
func BenchmarkExp2_Fig3(b *testing.B) {
	for _, heat := range []experiment.HeatKind{experiment.SkewedHeat, experiment.ChangingSkewedHeat} {
		for _, pol := range []string{"lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5"} {
			tag := "SH"
			if heat == experiment.ChangingSkewedHeat {
				tag = "CSH"
			}
			b.Run(fmt.Sprintf("%s/%s", tag, pol), func(b *testing.B) {
				cfg := benchBase()
				cfg.Heat = heat
				cfg.UpdateProb = 0
				cfg.NumClients = 1
				cfg.Policy = pol
				cfg.Days = 1 // one client is cheap; use a longer horizon
				reportRun(b, cfg)
			})
		}
	}
}

// BenchmarkExp3_Fig4 — Figure 4: the same policies in the realistic
// environment (U = 0.1, 10 clients) under Poisson and Bursty arrivals.
func BenchmarkExp3_Fig4(b *testing.B) {
	for _, arrival := range []experiment.ArrivalKind{experiment.PoissonArrival, experiment.BurstyArrival} {
		for _, pol := range []string{"lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5"} {
			tag := "Poisson"
			if arrival == experiment.BurstyArrival {
				tag = "Bursty"
			}
			b.Run(fmt.Sprintf("%s/%s", tag, pol), func(b *testing.B) {
				cfg := benchBase()
				cfg.Arrival = arrival
				cfg.Policy = pol
				reportRun(b, cfg)
			})
		}
	}
}

// BenchmarkExp4_Fig5 — Figure 5: adaptive policies across CSH change
// rates 300/500/700 queries.
func BenchmarkExp4_Fig5(b *testing.B) {
	for _, change := range []int{300, 500, 700} {
		for _, pol := range []string{"lru", "lru-3", "lrd", "ewma-0.5"} {
			b.Run(fmt.Sprintf("csh-%d/%s", change, pol), func(b *testing.B) {
				cfg := benchBase()
				cfg.Heat = experiment.ChangingSkewedHeat
				cfg.CSHChangeEvery = change
				cfg.Policy = pol
				reportRun(b, cfg)
			})
		}
	}
}

// BenchmarkExp4_Fig6 — Figure 6: the cyclic access pattern. The full
// LRU-3 > EWMA > LRD > LRU separation needs a longer horizon (see
// TestShapeCyclicOrdering); the benchmark uses one simulated day.
func BenchmarkExp4_Fig6(b *testing.B) {
	for _, pol := range []string{"lru", "lru-3", "lrd", "ewma-0.5"} {
		b.Run(pol, func(b *testing.B) {
			cfg := benchBase()
			cfg.Heat = experiment.CyclicHeat
			cfg.Policy = pol
			cfg.Days = 1
			reportRun(b, cfg)
		})
	}
}

// BenchmarkExp5_Fig7 — Figure 7: coherence sensitivity (β × U) per
// granularity.
func BenchmarkExp5_Fig7(b *testing.B) {
	for _, beta := range []float64{-1, 0, 1} {
		for _, u := range []float64{0.1, 0.5} {
			for _, g := range []core.Granularity{core.AttributeCaching, core.ObjectCaching, core.HybridCaching} {
				b.Run(fmt.Sprintf("beta=%g/U=%g/%s", beta, u, g), func(b *testing.B) {
					cfg := benchBase()
					cfg.Beta = beta
					cfg.UpdateProb = u
					cfg.Granularity = g
					reportRun(b, cfg)
				})
			}
		}
	}
}

// BenchmarkExp6_Fig8 — Figure 8: error rates under disconnection (sparse
// D × V grid).
func BenchmarkExp6_Fig8(b *testing.B) {
	for _, v := range []int{1, 5, 9} {
		for _, d := range []float64{1, 5, 10} {
			b.Run(fmt.Sprintf("V=%d/D=%gh", v, d), func(b *testing.B) {
				cfg := benchBase()
				cfg.DisconnectedClients = v
				cfg.DisconnectHours = d
				reportRun(b, cfg)
			})
		}
	}
}

// BenchmarkAblationPrefetchKappa sweeps the hybrid-caching prefetch
// threshold position c = μ + κσ, including the paper's κ = −2 (which
// degrades HC into OC — see DESIGN.md) and κ large (which degrades HC into
// AC).
func BenchmarkAblationPrefetchKappa(b *testing.B) {
	for _, kappa := range []float64{-2, -1, 0, 1, 2} {
		b.Run(fmt.Sprintf("kappa=%g", kappa), func(b *testing.B) {
			cfg := benchBase()
			cfg.PrefetchKappa = kappa
			reportRun(b, cfg)
		})
	}
}

// BenchmarkAblationEWMAAlpha sweeps the EWMA retention weight around the
// paper's 0.5 on the changing hot set.
func BenchmarkAblationEWMAAlpha(b *testing.B) {
	for _, alpha := range []string{"ewma-0.1", "ewma-0.3", "ewma-0.5", "ewma-0.7", "ewma-0.9"} {
		b.Run(alpha, func(b *testing.B) {
			cfg := benchBase()
			cfg.Heat = experiment.ChangingSkewedHeat
			cfg.Policy = alpha
			reportRun(b, cfg)
		})
	}
}

// BenchmarkAblationBeta sweeps the coherence staleness tolerance beyond
// Figure 7's −1..1 to expose the full hit/error trade-off curve.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{-2, -1, 0, 1, 2, 4} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			cfg := benchBase()
			cfg.Beta = beta
			cfg.UpdateProb = 0.3
			reportRun(b, cfg)
		})
	}
}

// BenchmarkAblationTimeoutHeuristic measures the §5.3 timeout heuristic:
// shedding prefetched items from replies that queued too long at the
// downlink, under the load that motivates it (Bursty NQ).
func BenchmarkAblationTimeoutHeuristic(b *testing.B) {
	for _, threshold := range []float64{0, 2, 5, 10} {
		name := fmt.Sprintf("threshold=%gs", threshold)
		if threshold == 0 {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchBase()
			cfg.QueryKind = workload.Navigational
			cfg.Arrival = experiment.BurstyArrival
			cfg.ShedThreshold = threshold
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(cfg)
			}
			b.ReportMetric(100*res.HitRatio, "hit%")
			b.ReportMetric(res.MeanResponse, "resp_s")
			b.ReportMetric(float64(res.ItemsShed), "shed")
		})
	}
}

// BenchmarkAblationCoherenceStrategy compares the paper's pull-based
// leases against the broadcast invalidation-report baseline of [2], with
// and without disconnection (the scenario that motivates leases).
func BenchmarkAblationCoherenceStrategy(b *testing.B) {
	for _, strat := range []coherence.Strategy{
		coherence.LeaseStrategy, coherence.InvalidationReportStrategy,
	} {
		for _, disc := range []int{0, 5} {
			b.Run(fmt.Sprintf("%s/V=%d", strat, disc), func(b *testing.B) {
				cfg := benchBase()
				cfg.UpdateProb = 0.3
				cfg.Coherence = strat
				cfg.DisconnectedClients = disc
				cfg.DisconnectHours = 5
				var res experiment.Result
				for i := 0; i < b.N; i++ {
					res = experiment.Run(cfg)
				}
				b.ReportMetric(100*res.HitRatio, "hit%")
				b.ReportMetric(100*res.ErrorRate, "err%")
				b.ReportMetric(float64(res.CacheDrops), "drops")
			})
		}
	}
}

// BenchmarkAblationFixedLease compares the original Leases scheme (one
// fixed refresh duration for all items) against the paper's adaptive
// per-item estimate at the same update probability. No single fixed
// duration matches the adaptive scheme on both hit ratio and error rate —
// the difficulty §2 cites.
func BenchmarkAblationFixedLease(b *testing.B) {
	configs := []struct {
		name  string
		strat coherence.Strategy
		lease float64
	}{
		{"adaptive", coherence.LeaseStrategy, 0},
		{"fixed-60s", coherence.FixedLeaseStrategy, 60},
		{"fixed-600s", coherence.FixedLeaseStrategy, 600},
		{"fixed-6000s", coherence.FixedLeaseStrategy, 6000},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			cfg := benchBase()
			cfg.UpdateProb = 0.3
			cfg.Coherence = c.strat
			cfg.FixedLease = c.lease
			reportRun(b, cfg)
		})
	}
}

// BenchmarkExtensionBroadcast measures the hybrid dissemination mode: a
// shared interest pool aired on a broadcast channel, versus pure
// point-to-point pull for the same workload. The broadcast's fixed-latency
// delivery pays off under Bursty contention, where the shared downlink
// backlogs; under light load pull is faster (the §1 trade-off).
func BenchmarkExtensionBroadcast(b *testing.B) {
	for _, attrs := range []int{0, 2} {
		name := "pull-only"
		if attrs > 0 {
			name = fmt.Sprintf("broadcast-top%d", attrs)
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchBase()
			cfg.Days = 0.5 // must cover the 07:00-10:00 commute burst
			cfg.Arrival = experiment.BurstyArrival
			cfg.SharedHotObjects = 50
			cfg.SharedHotProb = 0.6
			cfg.BroadcastAttrs = attrs
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(cfg)
			}
			b.ReportMetric(100*res.HitRatio, "hit%")
			b.ReportMetric(res.MeanResponse, "resp_s")
			b.ReportMetric(100*res.DownlinkUtilization, "down%")
			b.ReportMetric(float64(res.BroadcastReads), "air_reads")
		})
	}
}

// BenchmarkHeadroomOptimal reports each policy's measured hit ratio next
// to the clairvoyant Belady bound for the same reference streams — how
// much room is left on the replacement axis.
func BenchmarkHeadroomOptimal(b *testing.B) {
	cfg := benchBase()
	cfg.UpdateProb = 0
	var bound float64
	b.Run("belady-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bound = experiment.OptimalBound(cfg)
		}
		b.ReportMetric(100*bound, "hit%")
	})
	for _, pol := range []string{"ewma-0.5", "lru", "mean"} {
		b.Run(pol, func(b *testing.B) {
			run := cfg
			run.Policy = pol
			var res experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(run)
			}
			b.ReportMetric(100*res.HitRatio, "hit%")
		})
	}
}

// BenchmarkAblationBaselinePolicies runs the classical baselines (FIFO,
// CLOCK, Random) that §2 surveys, for comparison against the paper's
// schemes on the default workload.
func BenchmarkAblationBaselinePolicies(b *testing.B) {
	for _, pol := range []string{"fifo", "clock", "random:3", "ewma-0.5"} {
		b.Run(pol, func(b *testing.B) {
			cfg := benchBase()
			cfg.Policy = pol
			reportRun(b, cfg)
		})
	}
}

// BenchmarkFleet — the fleet engine behind Experiment #8: one hundred
// clients sharded across 1/2/4/8 cells, plus the relay cache on the widest
// fleet. Cells execute on the worker pool, so Mevents/s should climb with
// the cell count until cores saturate, while hit% and resp_s stay
// byte-identical at any -parallel (TestFleetParallelInvariance).
func BenchmarkFleet(b *testing.B) {
	fleetRun := func(b *testing.B, cfg experiment.Config) {
		b.Helper()
		var res experiment.Result
		var events uint64
		for i := 0; i < b.N; i++ {
			res = experiment.RunFleet(cfg)
			events += res.Events
		}
		b.ReportMetric(100*res.HitRatio, "hit%")
		b.ReportMetric(res.MeanResponse, "resp_s")
		b.ReportMetric(float64(res.BackboneBytes)/1e6, "backbone_MB")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(events)/s/1e6, "Mevents/s")
		}
	}
	for _, cells := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=100/cells=%d", cells), func(b *testing.B) {
			cfg := benchBase()
			cfg.NumClients = 100
			cfg.Cells = cells
			fleetRun(b, cfg)
		})
	}
	b.Run("clients=100/cells=8/relay=200", func(b *testing.B) {
		cfg := benchBase()
		cfg.NumClients = 100
		cfg.Cells = 8
		cfg.RelayObjects = 200
		fleetRun(b, cfg)
	})
}

// BenchmarkFleetEngines races the two execution engines on the same fleet:
// the Proc engine holds one goroutine + resume channel per client, the SM
// engine one inline state machine dispatched straight off the event heap.
// Results are byte-identical (TestEngineLockstep); only ns/event and
// allocations may differ. The 1000-client points are the scaling story —
// the gap widens with fleet size as goroutine stacks and channel
// rendezvous start to dominate the Proc engine's cost.
func BenchmarkFleetEngines(b *testing.B) {
	for _, engine := range []experiment.Engine{experiment.EngineProcs, experiment.EngineSM} {
		for _, clients := range []int{100, 1000} {
			engine, clients := engine, clients
			b.Run(fmt.Sprintf("engine=%s/clients=%d/cells=4", engine, clients), func(b *testing.B) {
				cfg := benchBase()
				cfg.NumClients = clients
				cfg.Cells = 4
				cfg.Engine = engine
				var res experiment.Result
				var events uint64
				for i := 0; i < b.N; i++ {
					res = experiment.RunFleet(cfg)
					events += res.Events
				}
				b.ReportMetric(100*res.HitRatio, "hit%")
				if events > 0 {
					b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(events), "ns/event")
				}
			})
		}
	}
}
