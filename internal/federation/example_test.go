package federation_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/oodb"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// A two-cell federation over a range-partitioned database: the contact
// server in cell 0 owns OIDs 0..49, so a read of OID 90 is relayed over
// the backbone to node 1 and the reply is kept (with its lease) in the
// contact server's relay cache. The repeat of the same read is then served
// inside the cell — no backbone forward, one relay hit.
func Example() {
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: 100, RelSeed: 1})
	cluster := federation.New(federation.Config{
		Kernel:            k,
		DB:                db,
		NumServers:        2,
		Seed:              3,
		RelayCacheObjects: 10,
	})
	contact := cluster.Contact(0)

	req := server.Request{
		Granularity: core.AttributeCaching,
		Accesses:    []workload.ReadOp{{OID: 90, Attr: 0}},
		Need:        []workload.ReadOp{{OID: 90, Attr: 0}},
	}
	k.Spawn("client", func(p *sim.Proc) {
		contact.Process(p, req) // cold: forwarded to the owner
		contact.Process(p, req) // warm: answered by the relay cache
	})
	k.RunAll()

	hits, misses, relayed := cluster.RelayStats(0)
	fmt.Printf("owner of OID 90: node %d\n", cluster.Owner(90))
	fmt.Printf("relay cache hits/misses: %d/%d\n", hits, misses)
	fmt.Printf("reads forwarded over the backbone: %d\n", relayed)
	// Output:
	// owner of OID 90: node 1
	// relay cache hits/misses: 1/1
	// reads forwarded over the backbone: 1
}

// A roaming client crosses from cell 0 into cell 1 mid-session: the
// mobility schedule decides which contact server each request reaches,
// and the handoff changes which reads are cell-local.
func Example_roaming() {
	schedule := federation.NewMobilitySchedule(0, []float64{3600}, []int{1})
	for _, t := range []float64{0, 3599, 3600, 7200} {
		fmt.Printf("t=%5.0fs -> cell %d\n", t, schedule.CellAt(t))
	}
	// Output:
	// t=    0s -> cell 0
	// t= 3599s -> cell 0
	// t= 3600s -> cell 1
	// t= 7200s -> cell 1
}
