package replacement

// Reference policy implementations on the retained scanCore skeleton
// (policy.go): a full O(n) badness scan per victim selection. These are the
// pre-indexing implementations, kept verbatim as the correctness oracle —
// the differential tests drive each optimized policy and its reference
// twin through identical traces and require bit-identical victim
// sequences. They share the state records and badness formulas in
// states.go with the optimized implementations, so the floating-point
// expressions cannot drift apart.

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/stats"
)

// newReferencePolicy builds the scanCore reference twin for a policy spec
// accepted by Parse ("lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5",
// "fifo", "clock", "mru"). The random baseline has no reference twin (it
// was never scan-based).
func newReferencePolicy(spec string) (Policy, error) {
	var (
		k int
		w int
		a float64
	)
	switch {
	case spec == "lru":
		return newRefLRU(), nil
	case spec == "lrd":
		return newRefLRD(DefaultLRDInterval), nil
	case spec == "mean":
		return newRefMean(), nil
	case spec == "fifo":
		return newRefFIFO(), nil
	case spec == "clock":
		return newRefClock(), nil
	case spec == "mru":
		return newRefMRU(), nil
	case scan1(spec, "lru-%d", &k) && k >= 1:
		return newRefLRUK(k, DefaultCorrelatedPeriod), nil
	case scan1(spec, "win-%d", &w) && w >= 1:
		return newRefWindow(w), nil
	case scan1(spec, "ewma-%g", &a) && a >= 0 && a < 1:
		return newRefEWMA(a), nil
	}
	return nil, fmt.Errorf("replacement: no reference twin for policy spec %q", spec)
}

// ---------------------------------------------------------------- LRU ----

type refLRU struct {
	core scanCore[lruState]
}

func newRefLRU() Policy {
	p := &refLRU{}
	p.core = newScanCore(lruBadness)
	return p
}

func (p *refLRU) Name() string { return "lru" }

func (p *refLRU) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.last = now
		return
	}
	p.core.add(it, &lruState{last: now})
}

func (p *refLRU) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.last = now
}

func (p *refLRU) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refLRU) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refLRU) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refLRU) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- LRU-k ----

type refLRUK struct {
	k       int
	crp     float64
	core    scanCore[lruKState]
	history map[oodb.Item]*lruKState
}

func newRefLRUK(k int, crp float64) Policy {
	if k < 1 {
		panic("replacement: LRU-k requires k >= 1")
	}
	if crp < 0 {
		panic("replacement: LRU-k correlated period must be >= 0")
	}
	p := &refLRUK{k: k, crp: crp, history: make(map[oodb.Item]*lruKState)}
	p.core = newScanCore(func(s *lruKState, now float64) float64 {
		return lruKBadness(s, p.crp, now)
	})
	return p
}

func (p *refLRUK) Name() string { return fmt.Sprintf("lru-%d", p.k) }

func (p *refLRUK) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.record(p.crp, now)
		return
	}
	s, ok := p.history[it]
	if !ok {
		s = &lruKState{ring: makeAccessRing(p.k)}
		p.history[it] = s
	}
	s.record(p.crp, now)
	p.core.add(it, s)
}

func (p *refLRUK) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.record(p.crp, now)
}

func (p *refLRUK) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refLRUK) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refLRUK) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refLRUK) Len() int                               { return p.core.len() }

// ---------------------------------------------------------------- LRD ----

type refLRD struct {
	interval float64
	core     scanCore[lrdState]
}

func newRefLRD(interval float64) Policy {
	if interval <= 0 {
		panic("replacement: LRD interval must be positive")
	}
	p := &refLRD{interval: interval}
	p.core = newScanCore(func(s *lrdState, now float64) float64 {
		return lrdBadness(s, p.interval, now)
	})
	return p
}

func (p *refLRD) Name() string { return "lrd" }

func (p *refLRD) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.age(now, p.interval)
		s.refs++
		return
	}
	p.core.add(it, &lrdState{refs: 1, enter: now, lastAged: now})
}

func (p *refLRD) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.age(now, p.interval)
	s.refs++
}

func (p *refLRD) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refLRD) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refLRD) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refLRD) Len() int                               { return p.core.len() }

// --------------------------------------------------------------- FIFO ----

type refFIFO struct {
	core scanCore[fifoState]
	n    uint64
}

func newRefFIFO() Policy {
	p := &refFIFO{}
	p.core = newScanCore(func(s *fifoState, _ float64) float64 {
		return fifoBadness(s)
	})
	return p
}

func (p *refFIFO) Name() string { return "fifo" }

func (p *refFIFO) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.core.get(it); ok {
		return
	}
	p.n++
	p.core.add(it, &fifoState{seq: p.n})
}

func (p *refFIFO) OnAccess(it oodb.Item, now float64) {
	_, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
}

func (p *refFIFO) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refFIFO) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refFIFO) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refFIFO) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- CLOCK ----

// refClock is the pre-rotation CLOCK implementation: Victims restarts a
// bounded Victim-style sweep per candidate and tracks duplicates with a
// seen-set.
type refClock struct {
	items []oodb.Item
	index map[oodb.Item]int
	ref   map[oodb.Item]bool
	hand  int
}

func newRefClock() Policy {
	return &refClock{index: make(map[oodb.Item]int), ref: make(map[oodb.Item]bool)}
}

func (p *refClock) Name() string { return "clock" }

func (p *refClock) OnInsert(it oodb.Item, now float64) {
	if _, ok := p.index[it]; ok {
		p.ref[it] = true
		return
	}
	p.index[it] = len(p.items)
	p.items = append(p.items, it)
	p.ref[it] = true
}

func (p *refClock) OnAccess(it oodb.Item, now float64) {
	_, ok := p.index[it]
	mustTracked(p.Name(), ok, it)
	p.ref[it] = true
}

func (p *refClock) Victim(now float64) (oodb.Item, bool) {
	if len(p.items) == 0 {
		return oodb.Item{}, false
	}
	for sweep := 0; sweep < 2*len(p.items)+1; sweep++ {
		if p.hand >= len(p.items) {
			p.hand = 0
		}
		it := p.items[p.hand]
		if p.ref[it] {
			p.ref[it] = false
			p.hand++
			continue
		}
		return it, true
	}
	// All bits were set and cleared twice: fall back to the hand position.
	if p.hand >= len(p.items) {
		p.hand = 0
	}
	return p.items[p.hand], true
}

func (p *refClock) Victims(now float64, n int) []oodb.Item {
	if n > len(p.items) {
		n = len(p.items)
	}
	var out []oodb.Item
	seen := make(map[oodb.Item]bool, n)
	for len(out) < n {
		it, ok := p.Victim(now)
		if !ok || seen[it] {
			break
		}
		seen[it] = true
		out = append(out, it)
		// Mark it referenced so the next sweep passes over it; callers
		// evict (Remove) the returned items anyway, which clears state.
		p.ref[it] = true
		p.hand++
	}
	return out
}

func (p *refClock) Remove(it oodb.Item) {
	i, ok := p.index[it]
	if !ok {
		return
	}
	last := len(p.items) - 1
	p.items[i] = p.items[last]
	p.index[p.items[i]] = i
	p.items = p.items[:last]
	delete(p.index, it)
	delete(p.ref, it)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *refClock) Len() int { return len(p.items) }

// ---------------------------------------------------------------- MRU ----

type refMRU struct {
	core scanCore[lruState]
}

func newRefMRU() Policy {
	p := &refMRU{}
	p.core = newScanCore(mruBadness)
	return p
}

func (p *refMRU) Name() string { return "mru" }

func (p *refMRU) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.last = now
		return
	}
	p.core.add(it, &lruState{last: now})
}

func (p *refMRU) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.last = now
}

func (p *refMRU) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refMRU) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refMRU) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refMRU) Len() int                               { return p.core.len() }

// ---------------------------------------------------------------- Mean ----

type refMean struct {
	core scanCore[meanState]
}

func newRefMean() Policy {
	p := &refMean{}
	p.core = newScanCore(meanBadness)
	return p
}

func (p *refMean) Name() string { return "mean" }

func (p *refMean) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.record(now)
		return
	}
	p.core.add(it, &meanState{last: now})
}

func (p *refMean) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.record(now)
}

func (p *refMean) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refMean) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refMean) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refMean) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- Window ----

type refWindow struct {
	w    int
	core scanCore[winState]
}

func newRefWindow(w int) Policy {
	if w < 1 {
		panic("replacement: window size must be >= 1")
	}
	p := &refWindow{w: w}
	p.core = newScanCore(func(s *winState, now float64) float64 {
		return windowBadness(s, p.w, now)
	})
	return p
}

func (p *refWindow) Name() string { return fmt.Sprintf("win-%d", p.w) }

func (p *refWindow) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.record(now)
		return
	}
	p.core.add(it, &winState{win: stats.MakeWindow(p.w), last: now})
}

func (p *refWindow) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.record(now)
}

func (p *refWindow) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refWindow) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refWindow) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refWindow) Len() int                               { return p.core.len() }

// ---------------------------------------------------------------- EWMA ----

type refEWMA struct {
	alpha float64
	core  scanCore[ewmaState]
}

func newRefEWMA(alpha float64) Policy {
	if alpha < 0 || alpha >= 1 {
		panic("replacement: EWMA alpha must be in [0,1)")
	}
	p := &refEWMA{alpha: alpha}
	p.core = newScanCore(func(s *ewmaState, now float64) float64 {
		return ewmaBadness(s, p.alpha, now)
	})
	return p
}

func (p *refEWMA) Name() string { return fmt.Sprintf("ewma-%g", p.alpha) }

func (p *refEWMA) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		s.record(p.alpha, now)
		return
	}
	p.core.add(it, &ewmaState{last: now})
}

func (p *refEWMA) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	s.record(p.alpha, now)
}

func (p *refEWMA) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *refEWMA) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *refEWMA) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *refEWMA) Len() int                               { return p.core.len() }
