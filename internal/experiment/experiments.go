package experiment

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/workload"
)

// This file defines the paper's six experiments (§5). Each Exp* function
// takes a base Config whose set fields override the paper's defaults —
// benchmarks pass shorter horizons and smaller populations; the CLI passes
// an empty base for the full-scale tables.

// merge applies the experiment-specific settings on top of the base.
func merge(base Config, mut func(*Config)) Config {
	cfg := base
	mut(&cfg)
	return Defaults(cfg)
}

// standardPolicies is the replacement-policy lineup of Experiments #2/#3.
func standardPolicies() []string {
	return []string{"lru", "lru-3", "lrd", "mean", "win-10", "ewma-0.5"}
}

// adaptivePolicies is the shortlist carried into Experiment #4.
func adaptivePolicies() []string {
	return []string{"lru", "lru-3", "lrd", "ewma-0.5"}
}

// Exp1 — Figure 2: caching granularity (NC/AC/OC/HC) across query type,
// arrival pattern, and heat distribution; U = 0.1, 10 clients, EWMA-0.5.
//
// Like every Exp* sweep, the runs are enqueued first and executed on the
// default worker pool (see Runner); the table-building continuations fire
// in submission order, so the output is identical to a serial loop.
func Exp1(base Config) *Report {
	rep := &Report{Name: "exp1"}
	var b batch
	for _, kind := range []workload.Kind{workload.Associative, workload.Navigational} {
		for _, arrival := range []ArrivalKind{PoissonArrival, BurstyArrival} {
			for _, heat := range []HeatKind{SkewedHeat, ChangingSkewedHeat} {
				tbl := NewTable(
					fmt.Sprintf("Figure 2 — %s, %s arrivals, %s heat",
						kind, arrivalName(arrival), heatTag(heat, 500)),
					"granularity", "hit%", "resp(s)", "err%", "queries")
				rep.Tables = append(rep.Tables, tbl)
				for _, g := range core.Granularities() {
					cfg := merge(base, func(c *Config) {
						c.Label = fmt.Sprintf("exp1/%s/%s/%s/%s",
							g, kind, arrivalName(arrival), heatTag(heat, 500))
						c.Granularity = g
						c.QueryKind = kind
						c.Arrival = arrival
						c.Heat = heat
						c.UpdateProb = 0.1
						c.Policy = "ewma-0.5"
					})
					b.add(cfg, func(res Result) {
						tbl.Add(g.String(), pct(res.HitRatio), secs(res.MeanResponse),
							pct(res.ErrorRate), fmt.Sprint(res.QueriesIssued))
					})
				}
			}
		}
	}
	b.collect(rep)
	return rep
}

// Exp2 — Figure 3: replacement policies at their best case — read-only
// (U = 0), a single client, hybrid caching.
func Exp2(base Config) *Report {
	rep := &Report{Name: "exp2"}
	var b batch
	for _, kind := range []workload.Kind{workload.Associative, workload.Navigational} {
		for _, heat := range []HeatKind{SkewedHeat, ChangingSkewedHeat} {
			tbl := NewTable(
				fmt.Sprintf("Figure 3 — %s, %s heat (U=0, 1 client, HC)",
					kind, heatTag(heat, 500)),
				"policy", "hit%", "resp(s)", "queries")
			rep.Tables = append(rep.Tables, tbl)
			for _, pol := range standardPolicies() {
				cfg := merge(base, func(c *Config) {
					c.Label = fmt.Sprintf("exp2/%s/%s/%s", pol, kind, heatTag(heat, 500))
					c.Granularity = core.HybridCaching
					c.QueryKind = kind
					c.Heat = heat
					c.UpdateProb = 0
					c.Policy = pol
					c.NumClients = 1
				})
				b.add(cfg, func(res Result) {
					tbl.Add(pol, pct(res.HitRatio), secs(res.MeanResponse),
						fmt.Sprint(res.QueriesIssued))
				})
			}
		}
	}
	b.collect(rep)
	return rep
}

// Exp3 — Figure 4: the same policy lineup under a realistic environment —
// U = 0.1, 10 clients, both arrival patterns.
func Exp3(base Config) *Report {
	rep := &Report{Name: "exp3"}
	var b batch
	for _, kind := range []workload.Kind{workload.Associative, workload.Navigational} {
		for _, arrival := range []ArrivalKind{PoissonArrival, BurstyArrival} {
			for _, heat := range []HeatKind{SkewedHeat, ChangingSkewedHeat} {
				tbl := NewTable(
					fmt.Sprintf("Figure 4 — %s, %s arrivals, %s heat (U=0.1, 10 clients, HC)",
						kind, arrivalName(arrival), heatTag(heat, 500)),
					"policy", "hit%", "resp(s)", "err%")
				rep.Tables = append(rep.Tables, tbl)
				for _, pol := range standardPolicies() {
					cfg := merge(base, func(c *Config) {
						c.Label = fmt.Sprintf("exp3/%s/%s/%s/%s",
							pol, kind, arrivalName(arrival), heatTag(heat, 500))
						c.Granularity = core.HybridCaching
						c.QueryKind = kind
						c.Arrival = arrival
						c.Heat = heat
						c.UpdateProb = 0.1
						c.Policy = pol
					})
					b.add(cfg, func(res Result) {
						tbl.Add(pol, pct(res.HitRatio), secs(res.MeanResponse), pct(res.ErrorRate))
					})
				}
			}
		}
	}
	b.collect(rep)
	return rep
}

// Exp4 — Figure 5: LRU/LRU-3/LRD/EWMA-0.5 on CSH with change rates 300,
// 500, 700 queries (AQ, Poisson, U=0.1, HC).
func Exp4(base Config) *Report {
	rep := &Report{Name: "exp4"}
	var b batch
	for _, changeEvery := range []int{300, 500, 700} {
		tbl := NewTable(
			fmt.Sprintf("Figure 5 — CSH change rate %d queries (AQ, Poisson, U=0.1, HC)",
				changeEvery),
			"policy", "hit%", "resp(s)")
		rep.Tables = append(rep.Tables, tbl)
		for _, pol := range adaptivePolicies() {
			cfg := merge(base, func(c *Config) {
				c.Label = fmt.Sprintf("exp4/%s/csh-%d", pol, changeEvery)
				c.Granularity = core.HybridCaching
				c.QueryKind = workload.Associative
				c.Heat = ChangingSkewedHeat
				c.CSHChangeEvery = changeEvery
				c.UpdateProb = 0.1
				c.Policy = pol
			})
			b.add(cfg, func(res Result) {
				tbl.Add(pol, pct(res.HitRatio), secs(res.MeanResponse))
			})
		}
	}
	b.collect(rep)
	return rep
}

// Exp4Cyclic — Figure 6: the same four policies on the cyclic access
// pattern of the LRU-k evaluation.
func Exp4Cyclic(base Config) *Report {
	rep := &Report{Name: "exp4-cyclic"}
	var b batch
	tbl := NewTable("Figure 6 — cyclic access pattern (AQ, Poisson, U=0.1, HC)",
		"policy", "hit%", "resp(s)")
	rep.Tables = append(rep.Tables, tbl)
	for _, pol := range adaptivePolicies() {
		cfg := merge(base, func(c *Config) {
			c.Label = "exp4-cyclic/" + pol
			c.Granularity = core.HybridCaching
			c.QueryKind = workload.Associative
			c.Heat = CyclicHeat
			c.UpdateProb = 0.1
			c.Policy = pol
		})
		b.add(cfg, func(res Result) {
			tbl.Add(pol, pct(res.HitRatio), secs(res.MeanResponse))
		})
	}
	b.collect(rep)
	return rep
}

// Exp5 — Figure 7: coherence sensitivity — error rate, hit ratio, and
// response time for AC/OC/HC across update probability U ∈ {0.1,0.3,0.5}
// and staleness tolerance β ∈ {−1,0,1} (AQ, Poisson, SH, EWMA-0.5).
func Exp5(base Config) *Report {
	rep := &Report{Name: "exp5"}
	var b batch
	for _, beta := range []float64{-1, 0, 1} {
		tbl := NewTable(fmt.Sprintf("Figure 7 — beta = %g (AQ, Poisson, SH, EWMA-0.5)", beta),
			"granularity", "U", "err%", "hit%", "resp(s)")
		rep.Tables = append(rep.Tables, tbl)
		for _, g := range []core.Granularity{core.AttributeCaching, core.ObjectCaching, core.HybridCaching} {
			for _, u := range []float64{0.1, 0.3, 0.5} {
				cfg := merge(base, func(c *Config) {
					c.Label = fmt.Sprintf("exp5/%s/beta=%g/U=%g", g, beta, u)
					c.Granularity = g
					c.QueryKind = workload.Associative
					c.Heat = SkewedHeat
					c.UpdateProb = u
					c.Beta = beta
					c.Policy = "ewma-0.5"
				})
				b.add(cfg, func(res Result) {
					tbl.Addf(g.String(), u, 100*res.ErrorRate, 100*res.HitRatio, res.MeanResponse)
				})
			}
		}
	}
	b.collect(rep)
	return rep
}

// Exp6 — Figure 8: error rates under disconnection — duration D ∈ 1..10
// hours and V ∈ {1,3,5,7,9} disconnected clients, per granularity; panel
// (d) is the D = 5h slice against V.
func Exp6(base Config) *Report {
	return exp6(base, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []int{1, 3, 5, 7, 9})
}

// Exp6Quick runs a sparser D×V grid for time-constrained sweeps.
func Exp6Quick(base Config) *Report {
	return exp6(base, []float64{1, 5, 10}, []int{1, 5, 9})
}

func exp6(base Config, durations []float64, disconnected []int) *Report {
	rep := &Report{Name: "exp6"}
	type key struct {
		g core.Granularity
		v int
		d float64
	}
	errRates := make(map[key]float64)
	var b batch
	grans := []core.Granularity{core.AttributeCaching, core.ObjectCaching, core.HybridCaching}
	for _, g := range grans {
		tbl := NewTable(
			fmt.Sprintf("Figure 8 — error rate %% under disconnection, %s (rows: V, cols: D hours)", g),
			append([]string{"V\\D"}, floatHeaders(durations)...)...)
		rep.Tables = append(rep.Tables, tbl)
		for _, v := range disconnected {
			// The row is appended to the table now and its cells are filled
			// in place by the continuations during collect.
			row := make([]string, 1+len(durations))
			row[0] = fmt.Sprint(v)
			tbl.Rows = append(tbl.Rows, row)
			for di, d := range durations {
				cfg := merge(base, func(c *Config) {
					c.Label = fmt.Sprintf("exp6/%s/V=%d/D=%g", g, v, d)
					c.Granularity = g
					c.QueryKind = workload.Associative
					c.Heat = SkewedHeat
					c.UpdateProb = 0.1
					c.Policy = "ewma-0.5"
					c.DisconnectedClients = v
					c.DisconnectHours = d
				})
				b.add(cfg, func(res Result) {
					errRates[key{g, v, d}] = res.ErrorRate
					row[1+di] = pct(res.ErrorRate)
				})
			}
		}
	}
	b.collect(rep)
	// Panel (d): error rate against V at fixed D (5h when present, else the
	// middle of the grid).
	dFix := durations[len(durations)/2]
	for _, d := range durations {
		if d == 5 {
			dFix = 5
		}
	}
	tbl := NewTable(fmt.Sprintf("Figure 8d — error rate %% vs disconnected clients (D = %gh)", dFix),
		"V", "ac", "oc", "hc")
	for _, v := range disconnected {
		tbl.Add(fmt.Sprint(v),
			pct(errRates[key{core.AttributeCaching, v, dFix}]),
			pct(errRates[key{core.ObjectCaching, v, dFix}]),
			pct(errRates[key{core.HybridCaching, v, dFix}]))
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep
}

// Exp7 — beyond the paper: unreliable channels. Sweeps the per-frame loss
// rate across caching granularity and coherence scheme (AQ, Poisson, SH,
// U = 0.1, EWMA-0.5) with the client reliability layer at its defaults,
// reporting the access-error rate (coherence violations + unavailable
// reads) and the query response time; a second panel sweeps burst-outage
// length at fixed loss via the Gilbert–Elliott chain. See DESIGN.md §9.
func Exp7(base Config) *Report {
	return exp7(base,
		[]float64{0, 0.05, 0.1, 0.2, 0.3},
		[]coherence.Strategy{coherence.LeaseStrategy, coherence.FixedLeaseStrategy},
		[]float64{5, 10, 30})
}

// Exp7Quick runs a sparser loss grid (lease coherence only, no burst
// panel) for time-constrained sweeps.
func Exp7Quick(base Config) *Report {
	return exp7(base,
		[]float64{0, 0.1, 0.3},
		[]coherence.Strategy{coherence.LeaseStrategy},
		nil)
}

func exp7(base Config, losses []float64, strategies []coherence.Strategy,
	badSojourns []float64) *Report {

	rep := &Report{Name: "exp7"}
	var b batch
	grans := core.Granularities()

	// Panel 1: frame-loss sweep, one error table and one response-time
	// table per coherence scheme. Rows are appended up front and filled in
	// place by the continuations (same pattern as Exp6).
	for _, strat := range strategies {
		tblErr := NewTable(
			fmt.Sprintf("Experiment #7 — access-error %% vs frame-loss rate (%s coherence)", strat),
			append([]string{"g\\loss"}, floatHeaders(losses)...)...)
		tblResp := NewTable(
			fmt.Sprintf("Experiment #7 — response time (s) vs frame-loss rate (%s coherence)", strat),
			append([]string{"g\\loss"}, floatHeaders(losses)...)...)
		rep.Tables = append(rep.Tables, tblErr, tblResp)
		for _, g := range grans {
			rowE := make([]string, 1+len(losses))
			rowR := make([]string, 1+len(losses))
			rowE[0], rowR[0] = g.String(), g.String()
			tblErr.Rows = append(tblErr.Rows, rowE)
			tblResp.Rows = append(tblResp.Rows, rowR)
			for li, loss := range losses {
				strat, g := strat, g
				cfg := merge(base, func(c *Config) {
					c.Label = fmt.Sprintf("exp7/%s/%s/loss=%g", strat, g, loss)
					c.Granularity = g
					c.QueryKind = workload.Associative
					c.Heat = SkewedHeat
					c.UpdateProb = 0.1
					c.Policy = "ewma-0.5"
					c.Coherence = strat
					c.LossRate = loss
				})
				li := li
				b.add(cfg, func(res Result) {
					rowE[1+li] = fmt.Sprintf("%.2f", 100*res.AccessErrorRate)
					rowR[1+li] = secs(res.MeanResponse)
				})
			}
		}
	}

	// Panel 2: burst outages — 20% of the time in the Bad state, sweeping
	// the mean outage length at a fixed 5% Good-state loss (lease
	// coherence). Longer sojourns at the same stationary Bad fraction mean
	// rarer but longer outages — the regime where retries exhaust and
	// degraded serving takes over.
	if len(badSojourns) > 0 {
		hdr := []string{"g\\outage"}
		for _, s := range badSojourns {
			hdr = append(hdr, fmt.Sprintf("err%%@%gs", s), fmt.Sprintf("resp@%gs", s))
		}
		tbl := NewTable(
			"Experiment #7 — burst outages (GE chain, 20% bad, loss 0.05; lease coherence)",
			hdr...)
		rep.Tables = append(rep.Tables, tbl)
		for _, g := range grans {
			row := make([]string, 1+2*len(badSojourns))
			row[0] = g.String()
			tbl.Rows = append(tbl.Rows, row)
			for si, sojourn := range badSojourns {
				g := g
				cfg := merge(base, func(c *Config) {
					c.Label = fmt.Sprintf("exp7/burst/%s/sojourn=%g", g, sojourn)
					c.Granularity = g
					c.QueryKind = workload.Associative
					c.Heat = SkewedHeat
					c.UpdateProb = 0.1
					c.Policy = "ewma-0.5"
					c.LossRate = 0.05
					c.BurstFraction = 0.2
					c.MeanBadSeconds = sojourn
				})
				si := si
				b.add(cfg, func(res Result) {
					row[1+2*si] = fmt.Sprintf("%.2f", 100*res.AccessErrorRate)
					row[2+2*si] = secs(res.MeanResponse)
				})
			}
		}
	}
	b.collect(rep)
	return rep
}

// Table1 renders the paper's parameter-settings table from the defaults.
func Table1() *Table {
	cfg := Defaults(Config{})
	tbl := NewTable("Table 1 — simulation parameter settings",
		"parameter", "value")
	tbl.Add("database objects", fmt.Sprint(cfg.NumObjects))
	tbl.Add("object size", "1024 B (9 primitive attrs + 3 relationships)")
	tbl.Add("mobile clients", fmt.Sprint(cfg.NumClients))
	tbl.Add("wireless channels", "2 x 19.2 Kbps (up/down, shared FCFS)")
	tbl.Add("server memory buffer", fmt.Sprintf("%d objects (LRU)", cfg.ServerBufferObjects))
	tbl.Add("client memory buffer", fmt.Sprintf("%d objects (LRU)", cfg.MemBufferObjects))
	tbl.Add("client storage cache", fmt.Sprintf("%d objects (%s)", cfg.StorageObjects, cfg.Policy))
	tbl.Add("disk / memory bandwidth", "40 Mbps / 100 Mbps")
	tbl.Add("message header", "11 B (IP + CRC)")
	tbl.Add("query selectivity", fmt.Sprintf("%d objects (1%%)", cfg.Selectivity))
	tbl.Add("attrs accessed per object (Q_a)", fmt.Sprint(cfg.AttrsPerObj))
	tbl.Add("arrival", fmt.Sprintf("Poisson %.3g/s or Bursty day profile", cfg.PoissonRate))
	tbl.Add("simulated duration", fmt.Sprintf("%g days", cfg.Days))
	return tbl
}

func arrivalName(a ArrivalKind) string {
	if a == BurstyArrival {
		return "Bursty"
	}
	return "Poisson"
}

func heatTag(h HeatKind, changeEvery int) string {
	switch h {
	case SkewedHeat:
		return "SH"
	case ChangingSkewedHeat:
		return fmt.Sprintf("CSH-%d", changeEvery)
	case CyclicHeat:
		return "cyclic"
	default:
		return "?"
	}
}

func floatHeaders(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}
