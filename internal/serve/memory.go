// memory.go is the in-memory Store backend: the paper's per-client cache
// (storage cache + memory buffer, pluggable replacement) promoted behind a
// concurrency-safe API, over an in-process origin database with the
// adaptive-lease write-history estimators.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// origin is the shared authoritative side: the versioned database, the
// perfect-knowledge oracle over it, and the two lease estimators (attribute
// grain and object grain, like the simulator's server). One mutex guards it
// all — every field reads or writes the same version counters.
type origin struct {
	mu      sync.Mutex
	db      *oodb.Database
	oracle  *coherence.Oracle
	attrEst *coherence.RefreshEstimator
	objEst  *coherence.RefreshEstimator
}

// session is one client's cache hierarchy: the byte-budgeted storage cache
// under its private replacement policy and the small memory buffer in front
// of it — exactly the simulated client's two levels. The mutex makes the
// pair safe under concurrent requests for the same client ID; replacement
// policies are not concurrency-safe on their own.
type session struct {
	mu     sync.Mutex
	cache  *core.Cache
	membuf *buffer.LRU[oodb.Item, core.Entry]
}

// Memory is the in-memory Store. Per-client state is sharded into sessions
// (created lazily on first touch), so concurrent clients contend only on
// the origin and the sessions map, not on each other's caches. Counters are
// atomics, readable without locks by the stats endpoint and obs gauges.
type Memory struct {
	gran       core.Granularity
	policy     string
	factory    replacement.Factory
	storeBytes int
	memEntries int
	fixed      float64
	clock      func() float64

	org origin

	mu       sync.RWMutex
	sessions map[int]*session

	reads, hits, stales, misses uint64
	errs, fetches, writes       uint64
	invalidations, renewals     uint64
}

// NewMemory builds the in-memory backend. It rejects granularities the live
// layer cannot carry (NC has nothing to serve from a cache; HC needs the
// simulator's server-side per-client heat profile) and bad policy specs.
func NewMemory(cfg Config) (*Memory, error) {
	switch cfg.Granularity {
	case core.AttributeCaching, core.ObjectCaching:
	case core.NoCache, core.HybridCaching:
		return nil, fmt.Errorf("%w: granularity %s (want ac|oc)", ErrUnsupported, cfg.Granularity)
	default:
		return nil, fmt.Errorf("%w: unknown granularity", ErrBadRequest)
	}
	if cfg.Policy == "" {
		cfg.Policy = "ewma-0.5"
	}
	factory, err := replacement.Parse(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if cfg.NumObjects == 0 {
		cfg.NumObjects = oodb.DefaultNumObjects
	}
	if cfg.StorageObjects == 0 {
		cfg.StorageObjects = cfg.NumObjects / 5
	}
	if cfg.MemBufferObjects == 0 {
		cfg.MemBufferObjects = 30
	}
	db := cfg.DB
	if db == nil {
		db = oodb.New(oodb.Config{NumObjects: cfg.NumObjects, RelSeed: cfg.RelSeed})
	}
	clock := cfg.Clock
	if clock == nil {
		start := time.Now()
		clock = func() float64 { return time.Since(start).Seconds() }
	}
	memEntries := cfg.MemBufferObjects
	if cfg.Granularity.UsesAttributeItems() {
		memEntries = cfg.MemBufferObjects * oodb.ObjectSize / oodb.AttrSize
	}
	m := &Memory{
		gran:       cfg.Granularity,
		policy:     cfg.Policy,
		factory:    factory,
		storeBytes: cfg.StorageObjects * core.ItemCost(oodb.ObjectItem(0)),
		memEntries: memEntries,
		fixed:      cfg.FixedLease,
		clock:      clock,
		sessions:   make(map[int]*session),
	}
	m.org.db = db
	m.org.oracle = coherence.NewOracle(db)
	m.org.attrEst = coherence.NewRefreshEstimator(cfg.Beta)
	m.org.objEst = coherence.NewRefreshEstimator(cfg.Beta)
	return m, nil
}

// Now implements Store.
func (m *Memory) Now() float64 { return m.clock() }

// session returns clientID's session, creating it on first touch.
func (m *Memory) session(clientID int) *session {
	m.mu.RLock()
	s := m.sessions[clientID]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.sessions[clientID]; s == nil {
		s = &session{
			cache:  core.NewCache(m.storeBytes, m.factory()),
			membuf: buffer.NewLRU[oodb.Item, core.Entry](m.memEntries),
		}
		m.sessions[clientID] = s
	}
	return s
}

// probe mirrors the simulated client's probeLocal: storage cache first
// (promoting resident items into the memory buffer), then the memory
// buffer alone for copies that outlived their storage slot. Caller holds
// s.mu.
func (s *session) probe(it oodb.Item, now float64) (core.Entry, core.LookupState) {
	if e, st := s.cache.Lookup(it, now); st != core.Miss {
		if _, inMem := s.membuf.Get(it); !inMem {
			s.membuf.Put(it, *e)
		}
		return *e, st
	}
	if e, ok := s.membuf.Get(it); ok {
		if e.ValidAt(now) {
			return e, core.Hit
		}
		return e, core.Stale
	}
	return core.Entry{}, core.Miss
}

// originEntry reads the authoritative version and grants a lease for one
// cache unit at now.
func (m *Memory) originEntry(it oodb.Item, now float64) core.Entry {
	m.org.mu.Lock()
	defer m.org.mu.Unlock()
	var version uint64
	var lease float64
	if it.IsObject() {
		version = m.org.db.ObjectVersion(it.OID)
		lease = leaseFor(m.org.objEst, m.fixed, it, now)
	} else {
		version = m.org.db.AttrVersion(it.OID, it.Attr)
		lease = leaseFor(m.org.attrEst, m.fixed, it, now)
	}
	return core.Entry{Version: version, ExpiresAt: now + lease, FetchedAt: now}
}

// isError consults the oracle under the origin lock.
func (m *Memory) isError(it oodb.Item, version uint64) bool {
	m.org.mu.Lock()
	defer m.org.mu.Unlock()
	return m.org.oracle.IsError(it, version)
}

// checkRead validates read coordinates against the origin's schema.
func (m *Memory) checkRead(oid oodb.OID, attr oodb.AttrID) error {
	if !m.org.db.ValidOID(oid) {
		return fmt.Errorf("%w: oid %d out of range", ErrBadRequest, oid)
	}
	if !attr.Valid() {
		return fmt.Errorf("%w: attr %d out of range", ErrBadRequest, attr)
	}
	return nil
}

// Read implements Store. The probe classification and its metrics exactly
// mirror the simulated client: a Hit may still be an error (a write landed
// inside the lease — judged by the oracle); misses and expired copies are
// either reported as-is (ModeProbe) or served fresh from the origin
// (ModeServe).
func (m *Memory) Read(clientID int, oid oodb.OID, attr oodb.AttrID, mode ReadMode) (ReadResult, error) {
	if err := m.checkRead(oid, attr); err != nil {
		return ReadResult{}, err
	}
	it := core.CoverItem(m.gran, oid, attr)
	s := m.session(clientID)
	now := m.clock()
	atomic.AddUint64(&m.reads, 1)

	s.mu.Lock()
	entry, state := s.probe(it, now)
	s.mu.Unlock()

	res := ReadResult{Item: it, State: state, Now: now}
	switch state {
	case core.Hit:
		atomic.AddUint64(&m.hits, 1)
		res.Version = entry.Version
		res.ExpiresAt = entry.ExpiresAt
		res.Error = m.isError(it, entry.Version)
		if res.Error {
			atomic.AddUint64(&m.errs, 1)
		}
		return res, nil
	case core.Stale:
		atomic.AddUint64(&m.stales, 1)
		res.Version = entry.Version
		res.ExpiresAt = entry.ExpiresAt
	default:
		atomic.AddUint64(&m.misses, 1)
	}
	if mode == ModeProbe {
		return res, nil
	}

	// ModeServe: refresh from the origin and install.
	fresh := m.originEntry(it, now)
	s.mu.Lock()
	s.cache.Insert(it, fresh, now)
	s.membuf.Put(it, fresh)
	s.mu.Unlock()
	atomic.AddUint64(&m.fetches, 1)
	res.Version = fresh.Version
	res.ExpiresAt = fresh.ExpiresAt
	res.Error = false
	res.FromOrigin = true
	return res, nil
}

// Fetch implements Store, mirroring the simulator's reply assembly +
// installReply pair: reads dedup to distinct cache units in first-seen
// order, each unit ships the origin version with a lease, and every
// installed unit lands in both cache levels (nothing here is a prefetch).
func (m *Memory) Fetch(clientID int, reads []workload.ReadOp) ([]FetchedItem, error) {
	for _, rd := range reads {
		if err := m.checkRead(rd.OID, rd.Attr); err != nil {
			return nil, err
		}
	}
	s := m.session(clientID)
	now := m.clock()

	units := make([]oodb.Item, 0, len(reads))
	seen := make(map[oodb.Item]struct{}, len(reads))
	for _, rd := range reads {
		it := core.CoverItem(m.gran, rd.OID, rd.Attr)
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		units = append(units, it)
	}

	out := make([]FetchedItem, 0, len(units))
	batch := make([]core.BatchEntry, 0, len(units))
	for _, it := range units {
		e := m.originEntry(it, now)
		out = append(out, FetchedItem{Item: it, Version: e.Version, ExpiresAt: e.ExpiresAt})
		batch = append(batch, core.BatchEntry{Item: it, Entry: e})
	}

	s.mu.Lock()
	s.cache.InsertBatch(batch, now)
	for _, be := range batch {
		s.membuf.Put(be.Item, be.Entry)
	}
	s.mu.Unlock()
	atomic.AddUint64(&m.fetches, uint64(len(units)))
	return out, nil
}

// Write implements Store: one update event at the origin. Attribute writes
// observe the attribute-grain estimator per attribute; the object-grain
// estimator observes the event once — the simulator's applyUpdates shape,
// which keeps inter-write durations (and therefore leases) comparable
// between sim and live.
func (m *Memory) Write(oid oodb.OID, attrs []oodb.AttrID) (uint64, error) {
	if !m.org.db.ValidOID(oid) {
		return 0, fmt.Errorf("%w: oid %d out of range", ErrBadRequest, oid)
	}
	if len(attrs) == 0 {
		return 0, fmt.Errorf("%w: write names no attributes", ErrBadRequest)
	}
	for _, a := range attrs {
		if !a.Valid() {
			return 0, fmt.Errorf("%w: attr %d out of range", ErrBadRequest, a)
		}
	}
	now := m.clock()
	m.org.mu.Lock()
	defer m.org.mu.Unlock()
	var seen uint16
	for _, a := range attrs {
		bit := uint16(1) << a
		if seen&bit != 0 {
			continue
		}
		seen |= bit
		m.org.db.Write(oid, a)
		m.org.attrEst.ObserveWrite(oodb.AttrItem(oid, a), now)
		atomic.AddUint64(&m.writes, 1)
	}
	m.org.objEst.ObserveWrite(oodb.ObjectItem(oid), now)
	return m.org.db.ObjectVersion(oid), nil
}

// units expands an invalidation coordinate into the cache units it covers.
func (m *Memory) units(oid oodb.OID, attr oodb.AttrID) ([]oodb.Item, error) {
	if !m.org.db.ValidOID(oid) {
		return nil, fmt.Errorf("%w: oid %d out of range", ErrBadRequest, oid)
	}
	if attr == oodb.WholeObject {
		if !m.gran.UsesAttributeItems() {
			return []oodb.Item{oodb.ObjectItem(oid)}, nil
		}
		units := make([]oodb.Item, oodb.NumAttrs)
		for a := range units {
			units[a] = oodb.AttrItem(oid, oodb.AttrID(a))
		}
		return units, nil
	}
	if !attr.Valid() {
		return nil, fmt.Errorf("%w: attr %d out of range", ErrBadRequest, attr)
	}
	return []oodb.Item{core.CoverItem(m.gran, oid, attr)}, nil
}

// Invalidate implements Store.
func (m *Memory) Invalidate(clientID int, oid oodb.OID, attr oodb.AttrID) (int, error) {
	units, err := m.units(oid, attr)
	if err != nil {
		return 0, err
	}
	var targets []*session
	if clientID < 0 {
		m.mu.RLock()
		targets = make([]*session, 0, len(m.sessions))
		for _, s := range m.sessions {
			targets = append(targets, s)
		}
		m.mu.RUnlock()
	} else {
		targets = []*session{m.session(clientID)}
	}
	removed := 0
	for _, s := range targets {
		s.mu.Lock()
		for _, it := range units {
			inCache := s.cache.Remove(it)
			inMem := s.membuf.Remove(it)
			if inCache || inMem {
				removed++
			}
		}
		s.mu.Unlock()
	}
	atomic.AddUint64(&m.invalidations, uint64(removed))
	return removed, nil
}

// leaseInfo snapshots a cached entry without touching replacement state.
// Caller holds s.mu.
func leaseInfo(s *session, it oodb.Item, now float64) LeaseInfo {
	info := LeaseInfo{Now: now}
	e, ok := s.cache.Peek(it)
	if !ok {
		if me, inMem := s.membuf.Peek(it); inMem {
			e, ok = &me, true
		}
	}
	if !ok {
		return info
	}
	info.Cached = true
	info.Valid = e.ValidAt(now)
	info.Version = e.Version
	info.ExpiresAt = e.ExpiresAt
	info.Remaining = e.ExpiresAt - now
	return info
}

// Lease implements Store.
func (m *Memory) Lease(clientID int, oid oodb.OID, attr oodb.AttrID) (LeaseInfo, error) {
	if err := m.checkRead(oid, attr); err != nil {
		return LeaseInfo{}, err
	}
	it := core.CoverItem(m.gran, oid, attr)
	s := m.session(clientID)
	now := m.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return leaseInfo(s, it, now), nil
}

// Renew implements Store: revalidate a resident unit in place — fresh
// version and lease from the origin, no payload shipped. Absent units stay
// absent (a renewal is not a fetch).
func (m *Memory) Renew(clientID int, oid oodb.OID, attr oodb.AttrID) (LeaseInfo, error) {
	if err := m.checkRead(oid, attr); err != nil {
		return LeaseInfo{}, err
	}
	it := core.CoverItem(m.gran, oid, attr)
	s := m.session(clientID)
	now := m.clock()

	s.mu.Lock()
	_, cached := s.cache.Peek(it)
	if !cached {
		_, cached = s.membuf.Peek(it)
	}
	s.mu.Unlock()
	if !cached {
		return LeaseInfo{Now: now}, nil
	}

	fresh := m.originEntry(it, now)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: a concurrent Invalidate may have won.
	if _, still := s.cache.Peek(it); still {
		s.cache.Insert(it, fresh, now)
	} else if _, still := s.membuf.Peek(it); still {
		s.membuf.Put(it, fresh)
	} else {
		return LeaseInfo{Now: now}, nil
	}
	if _, inMem := s.membuf.Peek(it); inMem {
		s.membuf.Put(it, fresh)
	}
	atomic.AddUint64(&m.renewals, 1)
	return LeaseInfo{
		Cached:    true,
		Valid:     fresh.ValidAt(now),
		Version:   fresh.Version,
		ExpiresAt: fresh.ExpiresAt,
		Remaining: fresh.ExpiresAt - now,
		Now:       now,
	}, nil
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	st := Stats{
		Backend:       "memory",
		DSN:           "memory",
		Granularity:   m.gran.String(),
		Policy:        m.policy,
		Uptime:        m.clock(),
		Reads:         atomic.LoadUint64(&m.reads),
		Hits:          atomic.LoadUint64(&m.hits),
		Stales:        atomic.LoadUint64(&m.stales),
		Misses:        atomic.LoadUint64(&m.misses),
		Errors:        atomic.LoadUint64(&m.errs),
		Fetches:       atomic.LoadUint64(&m.fetches),
		Writes:        atomic.LoadUint64(&m.writes),
		Invalidations: atomic.LoadUint64(&m.invalidations),
		Renewals:      atomic.LoadUint64(&m.renewals),
	}
	m.mu.RLock()
	sessions := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.RUnlock()
	st.Sessions = len(sessions)
	for _, s := range sessions {
		s.mu.Lock()
		st.CacheItems += s.cache.Len()
		st.CacheBytes += s.cache.UsedBytes()
		st.Evictions += s.cache.Evictions()
		st.Insertions += s.cache.Insertions()
		s.mu.Unlock()
	}
	return st
}

// Register implements Store: cumulative counters as gauges plus pooled
// cache occupancy, sampled by whatever Ticker the registry is attached to
// (a WallTicker for live services). Gauges read atomics and take the
// session locks only for the occupancy aggregates, so sampling never
// blocks the request path for long.
func (m *Memory) Register(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	counter := func(name string, p *uint64) {
		reg.Gauge(name, func() float64 { return float64(atomic.LoadUint64(p)) })
	}
	counter("serve.reads", &m.reads)
	counter("serve.hits", &m.hits)
	counter("serve.stales", &m.stales)
	counter("serve.misses", &m.misses)
	counter("serve.errors", &m.errs)
	counter("serve.fetches", &m.fetches)
	counter("serve.writes", &m.writes)
	counter("serve.invalidations", &m.invalidations)
	reg.Gauge("serve.hit_ratio", func() float64 {
		reads := atomic.LoadUint64(&m.reads)
		if reads == 0 {
			return 0
		}
		return float64(atomic.LoadUint64(&m.hits)) / float64(reads)
	})
	reg.Gauge("serve.cache_bytes", func() float64 {
		return float64(m.Stats().CacheBytes)
	})
	reg.Gauge("serve.sessions", func() float64 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		return float64(len(m.sessions))
	})
}
