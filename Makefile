GO ?= go

.PHONY: build vet test race lintdocs verify bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runner and the kernel handoff discipline are the two places
# concurrency lives; keep them race-clean.
race:
	$(GO) test -race ./internal/experiment ./internal/sim

# Docs gate: every package must carry a package comment.
lintdocs:
	scripts/lintdocs.sh

# Tier-1 verify: what every PR must keep green.
verify: build vet test race lintdocs

# Kernel micro-benchmarks + the parallel sweep benchmark + the replacement
# model suite, with allocation counts; machine-readable results land in
# BENCH_kernel.json and BENCH_model.json.
# Tune with BENCH_TIME / BENCH_MODEL_TIME (go -benchtime) and BENCH_COUNT.
bench:
	scripts/bench.sh

clean:
	rm -f BENCH_kernel.json BENCH_model.json
