package replacement

import (
	"fmt"

	"repro/internal/oodb"
	"repro/internal/stats"
)

// This file implements the paper's proposed duration-score policies (§3.3):
// Mean, Window(W) and EWMA(α). Each scores an item by a statistic over its
// access inter-arrival durations; the victim is the item with the highest
// *effective* mean duration, where the effective value folds in the open
// interval since the last access (see the package comment).

// ---------------------------------------------------------------- Mean ----

type meanState struct {
	n    uint64  // number of recorded durations
	mean float64 // running mean duration
	last float64 // last access time
}

// meanPolicy implements the paper's mean scheme: the score is the cumulative
// mean inter-arrival duration, updated incrementally as
// M_{n+1} = (n·M_n + d_{n+1})/(n+1), and — crucially — only on accesses.
// An item whose accesses stop keeps its historical score ("every single
// trace from the beginning of the access history remains in effect", §3.3),
// which is exactly why the scheme collapses when the hot spot changes
// (Experiment #2). Items with no recorded duration yet are scored by the
// open interval since their only access so they remain evictable.
type meanPolicy struct {
	core scanCore[meanState]
}

// NewMean returns the mean replacement scheme.
func NewMean() Policy {
	p := &meanPolicy{}
	p.core = newScanCore(func(s *meanState, now float64) float64 {
		if s.n == 0 {
			return now - s.last
		}
		return s.mean
	})
	return p
}

// NewMeanFactory returns a Factory for NewMean.
func NewMeanFactory() Factory { return func() Policy { return NewMean() } }

func (p *meanPolicy) Name() string { return "mean" }

func (p *meanPolicy) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		p.record(s, now)
		return
	}
	p.core.add(it, &meanState{last: now})
}

func (p *meanPolicy) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	p.record(s, now)
}

func (p *meanPolicy) record(s *meanState, now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.mean = (float64(s.n)*s.mean + d) / float64(s.n+1)
	s.n++
	s.last = now
}

func (p *meanPolicy) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *meanPolicy) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *meanPolicy) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *meanPolicy) Len() int                               { return p.core.len() }

// -------------------------------------------------------------- Window ----

// DefaultWindowSize is the window size used in the paper's experiments
// (Win-10).
const DefaultWindowSize = 10

type windowState struct {
	win  *stats.Window
	last float64
}

// windowPolicy implements the paper's window scheme: the score is the mean
// inter-arrival duration over the W most recent durations, computed with
// the paper's own recurrence M' = M + (d_new − d_oldest)/W — note the fixed
// divisor W: a partially filled window is scored as if the missing
// durations were zero, which makes young items look hot until W accesses
// accumulate. The open interval since the last access joins the window at
// eviction time so abandoned items eventually age out. Storage per item is
// O(W) — the cost §3.3 points out.
type windowPolicy struct {
	w    int
	core scanCore[windowState]
}

// NewWindow returns the window scheme with the given window size.
func NewWindow(w int) Policy {
	if w < 1 {
		panic("replacement: window size must be >= 1")
	}
	p := &windowPolicy{w: w}
	p.core = newScanCore(func(s *windowState, now float64) float64 {
		open := now - s.last
		sum := s.win.Mean()*float64(s.win.Count()) + open
		if s.win.Count() == s.win.Size() {
			sum -= s.win.Oldest() // open interval displaces the oldest duration
		}
		return sum / float64(p.w)
	})
	return p
}

// NewWindowFactory returns a Factory for NewWindow(w).
func NewWindowFactory(w int) Factory { return func() Policy { return NewWindow(w) } }

func (p *windowPolicy) Name() string { return fmt.Sprintf("win-%d", p.w) }

func (p *windowPolicy) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		p.record(s, now)
		return
	}
	p.core.add(it, &windowState{win: stats.NewWindow(p.w), last: now})
}

func (p *windowPolicy) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	p.record(s, now)
}

func (p *windowPolicy) record(s *windowState, now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	s.win.Add(d)
	s.last = now
}

func (p *windowPolicy) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *windowPolicy) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *windowPolicy) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *windowPolicy) Len() int                               { return p.core.len() }

// ---------------------------------------------------------------- EWMA ----

// DefaultEWMAAlpha is the paper's recommended weight (EWMA-0.5): history
// halves on every access, mirroring LRD's "divide the reference count by 2".
const DefaultEWMAAlpha = 0.5

type ewmaState struct {
	value float64 // current EWMA of durations
	n     uint64
	last  float64
}

// ewmaPolicy implements the paper's EWMA scheme: the score is the
// exponentially weighted moving average of inter-arrival durations,
// S ← α·S + (1−α)·d. O(1) state per item, fast adaptation — the policy the
// paper recommends.
type ewmaPolicy struct {
	alpha float64
	core  scanCore[ewmaState]
}

// NewEWMA returns the EWMA scheme with retention weight alpha in [0, 1).
func NewEWMA(alpha float64) Policy {
	if alpha < 0 || alpha >= 1 {
		panic("replacement: EWMA alpha must be in [0,1)")
	}
	p := &ewmaPolicy{alpha: alpha}
	p.core = newScanCore(func(s *ewmaState, now float64) float64 {
		open := now - s.last
		if s.n == 0 {
			return open
		}
		return p.alpha*s.value + (1-p.alpha)*open
	})
	return p
}

// NewEWMAFactory returns a Factory for NewEWMA(alpha).
func NewEWMAFactory(alpha float64) Factory { return func() Policy { return NewEWMA(alpha) } }

func (p *ewmaPolicy) Name() string { return fmt.Sprintf("ewma-%g", p.alpha) }

func (p *ewmaPolicy) OnInsert(it oodb.Item, now float64) {
	if s, ok := p.core.get(it); ok {
		p.record(s, now)
		return
	}
	p.core.add(it, &ewmaState{last: now})
}

func (p *ewmaPolicy) OnAccess(it oodb.Item, now float64) {
	s, ok := p.core.get(it)
	mustTracked(p.Name(), ok, it)
	p.record(s, now)
}

func (p *ewmaPolicy) record(s *ewmaState, now float64) {
	d := now - s.last
	if d < 0 {
		d = 0
	}
	if s.n == 0 {
		s.value = d
	} else {
		s.value = p.alpha*s.value + (1-p.alpha)*d
	}
	s.n++
	s.last = now
}

func (p *ewmaPolicy) Victim(now float64) (oodb.Item, bool)   { return p.core.victim(now) }
func (p *ewmaPolicy) Victims(now float64, n int) []oodb.Item { return p.core.victims(now, n) }
func (p *ewmaPolicy) Remove(it oodb.Item)                    { p.core.remove(it) }
func (p *ewmaPolicy) Len() int                               { return p.core.len() }
