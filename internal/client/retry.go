package client

import (
	"math"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the client half of the unreliable-channel model (DESIGN.md
// §9): when fault models are attached to the wireless channels, every
// remote round trip runs through a timeout/retransmission loop with
// exponential backoff, and a query whose retries are exhausted degrades to
// serving whatever cached copies the client holds — stale or not — exactly
// as disconnected operation (§5.6) would. With no fault models attached,
// none of this code runs and the round trip is the untouched §4 flow.

// Reliability-layer defaults. The timeout is derived from message sizes and
// the channel bandwidth rather than fixed, so it adapts to reply size; the
// slack absorbs server processing and queueing behind other clients.
const (
	// DefaultMaxRetries is how many times a request is retransmitted after
	// the initial attempt before the client gives up.
	DefaultMaxRetries = 3
	// DefaultBackoffBase is the first retransmission delay in seconds;
	// attempt k waits base·2^(k−1), jittered.
	DefaultBackoffBase = 1.0
	// DefaultBackoffMax caps the exponential backoff delay.
	DefaultBackoffMax = 30.0
	// DefaultTimeoutSlack multiplies the estimated request+reply transfer
	// time to produce the per-request timeout.
	DefaultTimeoutSlack = 3.0
	// DefaultReplyEstimateBytes seeds the reply-size estimate used by the
	// timeout before the first reply has been observed.
	DefaultReplyEstimateBytes = 2048
)

// RetryConfig tunes the reliability layer. The zero value selects the
// defaults above; MaxRetries < 0 disables retransmission entirely (one
// attempt, then degrade).
type RetryConfig struct {
	MaxRetries   int
	BackoffBase  float64
	BackoffMax   float64
	TimeoutSlack float64
}

// withDefaults resolves zero fields.
func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	}
	if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	if r.BackoffBase == 0 {
		r.BackoffBase = DefaultBackoffBase
	}
	if r.BackoffMax == 0 {
		r.BackoffMax = DefaultBackoffMax
	}
	if r.TimeoutSlack == 0 {
		r.TimeoutSlack = DefaultTimeoutSlack
	}
	return r
}

// faulted reports whether the reliability layer is active.
func (c *Client) faulted() bool { return c.upFaults != nil || c.downFaults != nil }

// transmit judges one frame on a possibly-perfect channel direction.
func transmit(m *network.FaultModel, now float64) network.FaultOutcome {
	if m == nil {
		return network.FrameDelivered
	}
	return m.Transmit(now)
}

// requestTimeout derives the per-request timeout from the request size, the
// running reply-size estimate, and the channel bandwidths.
func (c *Client) requestTimeout(reqBytes int) float64 {
	return c.retry.TimeoutSlack *
		(c.up.TransferTime(reqBytes) + c.down.TransferTime(c.replyEstimate))
}

// fetchRemoteFaulty is fetchRemote under the reliability layer: the round
// trip is attempted up to 1+MaxRetries times; frames lost or corrupted on
// either channel cost the attempt, the client waits out the remainder of
// its timeout, backs off exponentially with jitter, and retransmits. The
// whole request is retried, so a reply lost downstream makes the server
// process (and possibly update) the same query again — retransmission is
// not idempotent, just like a real stateless datagram exchange.
//
// Returns ok = false when every attempt failed; the caller then serves the
// query from stale cache copies via serveDegraded.
func (c *Client) fetchRemoteFaulty(p *sim.Proc, q *workload.Query, need []workload.ReadOp,
	existent int) (reqBytes, replyBytes, retries int, ok bool) {

	req := server.Request{
		ClientID:        c.id,
		Granularity:     c.granularity,
		Accesses:        q.Reads,
		Need:            need,
		ExistentEntries: existent,
	}
	reqBytes = req.WireSize()

	for attempt := 0; ; attempt++ {
		deadline := p.Now() + c.requestTimeout(reqBytes)

		c.up.Send(p, reqBytes)
		c.energyJoules += network.TxEnergy(reqBytes)
		if transmit(c.upFaults, p.Now()) == network.FrameDelivered {
			reply := c.srv.Process(p, req)
			items := reply.Items
			delivered := 0
			c.down.SendDeferred(p, func(waited float64) int {
				if c.shedThreshold > 0 && waited > c.shedThreshold {
					kept := c.scratchKept[:0]
					for _, it := range items {
						if !it.Prefetched {
							kept = append(kept, it)
						}
					}
					c.shedItems += uint64(len(items) - len(kept))
					c.scratchKept = kept
					items = kept
				}
				delivered = server.WireSizeItems(items)
				return delivered
			})
			switch transmit(c.downFaults, p.Now()) {
			case network.FrameDelivered:
				c.energyJoules += network.RxEnergy(delivered)
				c.replyEstimate = delivered
				c.installReply(p.Now(), need, items)
				return reqBytes, delivered, retries, true
			case network.FrameCorrupted:
				// The frame arrived and was received in full before the CRC
				// check rejected it: the radio energy is spent.
				c.energyJoules += network.RxEnergy(delivered)
			}
			// FrameLost: nothing arrived, nothing received.
		}

		// The attempt failed somewhere; the client detects it when its
		// timeout expires (or immediately, if the exchange already overran
		// the timeout while queueing).
		if p.Now() < deadline {
			p.HoldUntil(deadline)
		}
		c.timeouts++
		c.m.RecordTimeout(p.Now())
		if attempt >= c.retry.MaxRetries {
			return reqBytes, 0, retries, false
		}
		retries++
		c.m.RecordRetry(p.Now())
		backoff := c.retry.BackoffBase * math.Pow(2, float64(attempt))
		if backoff > c.retry.BackoffMax {
			backoff = c.retry.BackoffMax
		}
		// Jitter in [0.5, 1.5)× the nominal delay decorrelates the
		// retransmissions of clients that lost frames in the same burst.
		p.Hold(backoff * (0.5 + c.retryRnd.Float64()))
	}
}

// serveDegraded answers the reads of a failed round trip from whatever the
// client still holds: a cached copy — typically expired, or it would have
// been a hit — is served and checked against the oracle like any stale
// read; a read with no copy at all is unavailable. This is the graceful-
// degradation half of the reliability layer: the lease β already encodes
// how much staleness the client tolerates, and these copies carry exactly
// the leases that policy produced (see DESIGN.md §9.3).
func (c *Client) serveDegraded(now float64, need []workload.ReadOp, rec *trace.QueryRecord) {
	for _, rd := range need {
		item := core.CoverItem(c.granularity, rd.OID, rd.Attr)
		entry, found := c.peekLocal(item)
		if !found {
			c.m.RecordAccess(now, false)
			c.m.RecordUnavailable(now)
			rec.Unavailable++
			continue
		}
		isErr := c.oracle.IsError(item, entry.Version)
		c.m.RecordAccess(now, false)
		c.m.RecordError(now, isErr)
		c.m.RecordDegraded(now)
		c.degradedReads++
		rec.Stale++
		rec.Degraded++
		if isErr {
			rec.Errors++
		}
	}
}

// peekLocal looks item up in the storage cache or memory buffer without
// promoting it or touching replacement state.
func (c *Client) peekLocal(item oodb.Item) (core.Entry, bool) {
	if c.store != nil {
		if e, ok := c.store.Peek(item); ok {
			return *e, true
		}
	}
	return c.membuf.Peek(item)
}

// Retries reports the total retransmissions the reliability layer issued.
func (c *Client) Retries() uint64 { return c.retries }

// Timeouts reports how many request attempts ended in a timeout.
func (c *Client) Timeouts() uint64 { return c.timeouts }

// DegradedReads reports reads served from stale copies after retry
// exhaustion.
func (c *Client) DegradedReads() uint64 { return c.degradedReads }
