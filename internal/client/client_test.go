package client

import (
	"math"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// rig bundles a one-client simulation fixture.
type rig struct {
	k      *sim.Kernel
	db     *oodb.Database
	srv    *server.Server
	up     *network.Channel
	down   *network.Channel
	m      *metrics.Client
	client *Client
}

func newRig(t *testing.T, g core.Granularity, updateProb float64) *rig {
	t.Helper()
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{NumObjects: 100, RelSeed: 1})
	srv := server.New(server.Config{Kernel: k, DB: db, UpdateProb: updateProb, Seed: 5})
	up := network.NewChannel(k, "up", network.WirelessBandwidthBps)
	down := network.NewChannel(k, "down", network.WirelessBandwidthBps)
	m := &metrics.Client{}
	var pol replacement.Policy
	if g != core.NoCache {
		pol = replacement.NewLRU()
	}
	heat := workload.NewSkewedHeat(100, 1)
	gen := workload.NewQueryGen(workload.QueryGenConfig{
		Kind: workload.Associative, Heat: heat, DB: db, Selectivity: 5,
	})
	c := New(Config{
		ID: 0, Kernel: k, Server: srv, Up: up, Down: down,
		Granularity: g, Policy: pol,
		Gen: gen, Arrival: workload.NewPoisson(0.01),
		Metrics: m, Seed: 1, Horizon: 1e6,
	})
	return &rig{k: k, db: db, srv: srv, up: up, down: down, m: m, client: c}
}

// query builds a deterministic query over the given oids reading attr 0.
func query(idx uint64, oids ...int) *workload.Query {
	q := &workload.Query{Index: idx, Kind: workload.Associative}
	for _, oid := range oids {
		q.Objects = append(q.Objects, oodb.OID(oid))
		q.Reads = append(q.Reads, workload.ReadOp{OID: oodb.OID(oid), Attr: 0})
	}
	return q
}

// exec runs fn as a simulation process to completion.
func (r *rig) exec(fn func(p *sim.Proc)) {
	r.k.Spawn("test", fn)
	r.k.RunAll()
}

func TestMissThenHit(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
		r.client.processQuery(p, query(1, 1, 2, 3), p.Now())
	})
	if r.m.Accesses() != 6 {
		t.Fatalf("accesses = %d, want 6", r.m.Accesses())
	}
	// First query: 3 misses; second: 3 hits.
	if hr := r.m.HitRatio(); hr != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", hr)
	}
	issued, local, remote, _ := r.m.Queries()
	if issued != 2 || remote != 1 || local != 1 {
		t.Fatalf("queries = %d/%d/%d", issued, local, remote)
	}
	if r.up.Messages() != 1 || r.down.Messages() != 1 {
		t.Fatalf("channel messages = %d/%d, want 1/1", r.up.Messages(), r.down.Messages())
	}
}

func TestStorePopulatedPerGranularity(t *testing.T) {
	for _, g := range []core.Granularity{core.AttributeCaching, core.ObjectCaching, core.HybridCaching} {
		r := newRig(t, g, 0)
		r.exec(func(p *sim.Proc) {
			r.client.processQuery(p, query(0, 7), p.Now())
		})
		want := core.CoverItem(g, 7, 0)
		if !r.client.Store().Contains(want) {
			t.Errorf("%v: store missing %v", g, want)
		}
	}
}

func TestNCHasNoStore(t *testing.T) {
	r := newRig(t, core.NoCache, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1), p.Now())
		r.client.processQuery(p, query(1, 1), p.Now())
	})
	if r.client.Store() != nil {
		t.Fatal("NC client has a storage cache")
	}
	// Second access is a memory-buffer hit.
	if hr := r.m.HitRatio(); hr != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", hr)
	}
}

func TestNCMemoryBufferEvicts(t *testing.T) {
	r := newRig(t, core.NoCache, 0)
	r.exec(func(p *sim.Proc) {
		// Touch 40 distinct objects: the 30-object buffer must evict.
		for i := 0; i < 40; i++ {
			r.client.processQuery(p, query(uint64(i), i+1), p.Now())
		}
		// Object 1 was evicted (LRU): this is a miss.
		r.client.processQuery(p, query(40, 1), p.Now())
	})
	if r.m.Errors() != 0 {
		t.Fatal("errors in read-only run")
	}
	if r.client.MemBuffer().Len() > 30 {
		t.Fatalf("membuf len %d > 30", r.client.MemBuffer().Len())
	}
	if hits := r.m.HitRatio(); hits != 0 {
		t.Fatalf("hit ratio = %v, want 0 (all distinct + evicted)", hits)
	}
}

func TestResponseTimeDominatedByWireless(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
	})
	// 3 attr entries + headers at 19.2kbps is ~0.1s; local would be µs.
	if rt := r.m.MeanResponse(); rt < 0.05 {
		t.Fatalf("remote response %v suspiciously fast", rt)
	}
	r2 := newRig(t, core.AttributeCaching, 0)
	r2.exec(func(p *sim.Proc) {
		r2.client.processQuery(p, query(0, 1), p.Now())
		r2.client.processQuery(p, query(1, 1), p.Now())
	})
	sum := r2.m.ResponseSummary()
	if sum.Max() == sum.Min() {
		t.Fatal("local hit should be much faster than remote miss")
	}
}

func TestOCResponseSlowerThanAC(t *testing.T) {
	times := map[core.Granularity]float64{}
	for _, g := range []core.Granularity{core.AttributeCaching, core.ObjectCaching} {
		r := newRig(t, g, 0)
		r.exec(func(p *sim.Proc) {
			r.client.processQuery(p, query(0, 1, 2, 3, 4, 5), p.Now())
		})
		times[g] = r.m.MeanResponse()
	}
	if times[core.ObjectCaching] <= times[core.AttributeCaching] {
		t.Fatalf("OC %v should be slower than AC %v on a cold fetch",
			times[core.ObjectCaching], times[core.AttributeCaching])
	}
}

func TestOCHitsAcrossAttributes(t *testing.T) {
	// OC caches the whole object: a later read of a *different* attribute
	// of the same object hits. Under AC it misses.
	probe := func(g core.Granularity) float64 {
		r := newRig(t, g, 0)
		r.exec(func(p *sim.Proc) {
			r.client.processQuery(p, query(0, 1), p.Now()) // reads attr 0
			q2 := workload.Query{
				Index:   1,
				Objects: []oodb.OID{1},
				Reads:   []workload.ReadOp{{OID: 1, Attr: 5}},
			}
			r.client.processQuery(p, &q2, p.Now())
		})
		return r.m.HitRatio()
	}
	if hrOC := probe(core.ObjectCaching); hrOC != 0.5 {
		t.Fatalf("OC cross-attribute hit ratio = %v, want 0.5", hrOC)
	}
	if hrAC := probe(core.AttributeCaching); hrAC != 0 {
		t.Fatalf("AC cross-attribute hit ratio = %v, want 0", hrAC)
	}
}

func TestDisconnectedMissUnavailable(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	sched := &network.Schedule{}
	sched.AddOutage(network.Outage{Start: 0, End: 1000})
	r.client.sched = sched
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2), p.Now())
	})
	if r.m.Unavailable() != 2 {
		t.Fatalf("unavailable = %d, want 2", r.m.Unavailable())
	}
	_, _, remote, disc := r.m.Queries()
	if remote != 0 || disc != 1 {
		t.Fatalf("remote=%d disc=%d", remote, disc)
	}
	if r.up.Messages() != 0 {
		t.Fatal("disconnected client sent a message")
	}
}

func TestDisconnectedServesStale(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 1 /* every access updates */)
	r.exec(func(p *sim.Proc) {
		// Build a write history so leases become finite, and cache attr 0
		// of object 1.
		for i := 0; i < 6; i++ {
			r.client.processQuery(p, query(uint64(i), 1), p.Now())
			p.Hold(50)
		}
	})
	// Now disconnect far in the future so the lease has expired, and read.
	sched := &network.Schedule{}
	sched.AddOutage(network.Outage{Start: r.k.Now(), End: r.k.Now() + 1e6})
	r.client.sched = sched
	// A foreign write makes the stale copy erroneous.
	r.db.Write(1, 0)
	errsBefore := r.m.Errors()
	r.exec(func(p *sim.Proc) {
		p.Hold(1e5) // let the lease lapse
		r.client.processQuery(p, query(99, 1), p.Now())
	})
	if r.m.Unavailable() != 0 {
		t.Fatalf("cached stale read counted unavailable")
	}
	if r.m.Errors() != errsBefore+1 {
		t.Fatalf("stale disconnected read not flagged as error (errors=%d)", r.m.Errors())
	}
}

func TestErrorsRequireForeignWrite(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1), p.Now())
		r.client.processQuery(p, query(1, 1), p.Now())
	})
	if r.m.Errors() != 0 {
		t.Fatalf("read-only run produced %d errors", r.m.Errors())
	}
	// Foreign write; lease is infinite (no write history at fetch time) so
	// the next read is a hit AND an error.
	r.db.Write(1, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(2, 1), p.Now())
	})
	if r.m.Errors() != 1 {
		t.Fatalf("errors = %d, want 1", r.m.Errors())
	}
}

func TestExistentListSizesRequest(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	var sizes []uint64
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2), p.Now())
		sizes = append(sizes, r.up.BytesSent())
		// Second query: 2 hits + 1 new miss -> existent list of 2 entries.
		r.client.processQuery(p, query(1, 1, 2, 3), p.Now())
		sizes = append(sizes, r.up.BytesSent())
	})
	first := sizes[0]
	second := sizes[1] - sizes[0]
	if second != first+2*(network.OIDSize+network.AttrRefSize) {
		t.Fatalf("request sizes %d then %d: existent list not carried", first, second)
	}
}

func TestLeaseExpiryForcesRefresh(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 1)
	var hitsAfterExpiry bool
	r.exec(func(p *sim.Proc) {
		// Build write history: every query updates, inter-write ~100s.
		for i := 0; i < 8; i++ {
			r.client.processQuery(p, query(uint64(i), 1), p.Now())
			p.Hold(100)
		}
		// Far beyond the ~100s lease: the cached copy must be stale, so
		// the read goes remote (not a hit).
		p.Hold(10000)
		accBefore := r.m.Accesses()
		hitsB := uint64(float64(accBefore)*r.m.HitRatio() + 0.5)
		r.client.processQuery(p, query(99, 1), p.Now())
		hitsA := uint64(float64(r.m.Accesses())*r.m.HitRatio() + 0.5)
		hitsAfterExpiry = hitsA > hitsB
	})
	if hitsAfterExpiry {
		t.Fatal("expired item served as a hit instead of refreshing")
	}
}

func TestRunLoopIssuesQueries(t *testing.T) {
	r := newRig(t, core.HybridCaching, 0.1)
	r.client.horizon = 20000
	r.client.Start()
	r.k.RunAll()
	issued, _, _, _ := r.m.Queries()
	if issued == 0 {
		t.Fatal("no queries issued by run loop")
	}
	if r.m.Accesses() == 0 {
		t.Fatal("no accesses recorded")
	}
	if r.k.LiveProcs() != 0 {
		t.Fatalf("client proc still live: %d", r.k.LiveProcs())
	}
}

func TestValidation(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	gen := r.client.gen
	base := Config{
		Kernel: r.k, Server: r.srv, Up: r.up, Down: r.down,
		Granularity: core.AttributeCaching, Policy: replacement.NewLRU(),
		Gen: gen, Arrival: workload.NewPoisson(1),
		Metrics: &metrics.Client{}, Horizon: 10,
	}
	mutations := []func(c *Config){
		func(c *Config) { c.Kernel = nil },
		func(c *Config) { c.Server = nil },
		func(c *Config) { c.Up = nil },
		func(c *Config) { c.Gen = nil },
		func(c *Config) { c.Arrival = nil },
		func(c *Config) { c.Metrics = nil },
		func(c *Config) { c.Granularity = core.Granularity(9) },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Policy = nil },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mutation %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMemBufferSizedByGranularity(t *testing.T) {
	rAC := newRig(t, core.AttributeCaching, 0)
	rOC := newRig(t, core.ObjectCaching, 0)
	if rAC.client.membuf.Capacity() <= rOC.client.membuf.Capacity() {
		t.Fatalf("AC membuf %d entries should exceed OC's %d",
			rAC.client.membuf.Capacity(), rOC.client.membuf.Capacity())
	}
	if rOC.client.membuf.Capacity() != DefaultMemBufferObjects {
		t.Fatalf("OC membuf capacity = %d", rOC.client.membuf.Capacity())
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (float64, float64, uint64) {
		r := newRig(t, core.HybridCaching, 0.1)
		r.client.horizon = 50000
		r.client.Start()
		r.k.RunAll()
		return r.m.HitRatio(), r.m.MeanResponse(), r.m.Accesses()
	}
	h1, rt1, a1 := runOnce()
	h2, rt2, a2 := runOnce()
	if h1 != h2 || rt1 != rt2 || a1 != a2 {
		t.Fatalf("replay diverged: (%v,%v,%d) vs (%v,%v,%d)", h1, rt1, a1, h2, rt2, a2)
	}
	if math.IsNaN(h1) {
		t.Fatal("NaN hit ratio")
	}
}

// --- invalidation-report coherence -----------------------------------

func newIRRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, core.AttributeCaching, 0)
	// Rebuild the client in invalidation-report mode.
	r.client = New(Config{
		ID: 0, Kernel: r.k, Server: r.srv, Up: r.up, Down: r.down,
		Granularity: core.AttributeCaching, Policy: replacement.NewLRU(),
		Gen: r.client.gen, Arrival: workload.NewPoisson(0.01),
		Metrics: r.m, Seed: 1, Horizon: 1e6,
		Coherence: coherence.InvalidationReportStrategy,
	})
	return r
}

func TestIREntriesNeverExpire(t *testing.T) {
	r := newIRRig(t)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1), p.Now())
	})
	e, ok := r.client.Store().Peek(oodb.AttrItem(1, 0))
	if !ok {
		t.Fatal("item not cached")
	}
	if !e.ValidAt(1e12) {
		t.Fatalf("IR entry expires at %v; should never expire", e.ExpiresAt)
	}
}

func TestIRIncrementalInvalidation(t *testing.T) {
	r := newIRRig(t)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2), p.Now())
	})
	// A foreign write lands on (1, 0); report 1 then report 2 arrive.
	r.db.Write(1, 0)
	r.client.ApplyInvalidationReport(100, 1)
	if r.client.Store().Contains(oodb.AttrItem(1, 0)) {
		t.Fatal("stale item survived the invalidation report")
	}
	if !r.client.Store().Contains(oodb.AttrItem(2, 0)) {
		t.Fatal("clean item was invalidated")
	}
	r.client.ApplyInvalidationReport(160, 2)
	if !r.client.Store().Contains(oodb.AttrItem(2, 0)) {
		t.Fatal("contiguous report dropped the cache")
	}
	if r.client.CacheDrops() != 0 {
		t.Fatalf("CacheDrops = %d", r.client.CacheDrops())
	}
}

func TestIRMissedReportDropsCache(t *testing.T) {
	r := newIRRig(t)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
	})
	r.client.ApplyInvalidationReport(60, 1)
	if r.client.Store().Len() == 0 {
		t.Fatal("first report should not drop anything")
	}
	// Report 2 missed (disconnected); report 3 arrives.
	r.client.ApplyInvalidationReport(180, 3)
	if r.client.Store().Len() != 0 {
		t.Fatalf("cache not dropped after missed report: %d items", r.client.Store().Len())
	}
	if r.client.MemBuffer().Len() != 0 {
		t.Fatal("memory buffer not dropped after missed report")
	}
	if r.client.CacheDrops() != 1 {
		t.Fatalf("CacheDrops = %d, want 1", r.client.CacheDrops())
	}
}

func TestIRReportToLeaseClientPanics(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("report to lease client did not panic")
		}
	}()
	r.client.ApplyInvalidationReport(10, 1)
}

func TestShedThresholdDisabledByDefault(t *testing.T) {
	r := newRig(t, core.HybridCaching, 0)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
	})
	if r.client.ShedItems() != 0 {
		t.Fatalf("ShedItems = %d with heuristic disabled", r.client.ShedItems())
	}
}

func TestFixedLeaseStrategy(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	r.client = New(Config{
		ID: 0, Kernel: r.k, Server: r.srv, Up: r.up, Down: r.down,
		Granularity: core.AttributeCaching, Policy: replacement.NewLRU(),
		Gen: r.client.gen, Arrival: workload.NewPoisson(0.01),
		Metrics: r.m, Seed: 1, Horizon: 1e6,
		Coherence: coherence.FixedLeaseStrategy, FixedLease: 50,
	})
	var fetchedAt float64
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1), p.Now())
		fetchedAt = p.Now()
	})
	e, ok := r.client.Store().Peek(oodb.AttrItem(1, 0))
	if !ok {
		t.Fatal("item not cached")
	}
	if math.Abs(e.ExpiresAt-(fetchedAt+50)) > 1e-9 {
		t.Fatalf("ExpiresAt = %v, want fetch+50 = %v", e.ExpiresAt, fetchedAt+50)
	}
}

func TestFixedLeaseValidation(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative FixedLease did not panic")
		}
	}()
	New(Config{
		ID: 0, Kernel: r.k, Server: r.srv, Up: r.up, Down: r.down,
		Granularity: core.AttributeCaching, Policy: replacement.NewLRU(),
		Gen: r.client.gen, Arrival: workload.NewPoisson(0.01),
		Metrics: &metrics.Client{}, Seed: 1, Horizon: 1e6,
		Coherence: coherence.FixedLeaseStrategy, FixedLease: -5,
	})
}

func TestTracerReceivesConsistentRecords(t *testing.T) {
	r := newRig(t, core.AttributeCaching, 0)
	collector := &trace.Collector{}
	r.client.tracer = collector
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
		r.client.processQuery(p, query(1, 1, 2, 3), p.Now())
	})
	if collector.Len() != 2 {
		t.Fatalf("records = %d, want 2", collector.Len())
	}
	first, second := collector.Records[0], collector.Records[1]
	if first.Reads != 3 || first.Hits != 0 || !first.Remote {
		t.Fatalf("first record: %+v", first)
	}
	if second.Reads != 3 || second.Hits != 3 || second.Remote {
		t.Fatalf("second record: %+v", second)
	}
	if first.RequestBytes == 0 || first.ReplyBytes == 0 {
		t.Fatal("remote record missing wire sizes")
	}
	if second.RequestBytes != 0 || second.ReplyBytes != 0 {
		t.Fatal("local record has wire sizes")
	}
	if first.ResponseTime() <= second.ResponseTime() {
		t.Fatal("remote query not slower than local")
	}
	// The trace must reconcile with the aggregate metrics.
	totalHits := first.Hits + second.Hits
	if float64(totalHits)/6 != r.m.HitRatio() {
		t.Fatalf("trace hits %d inconsistent with hit ratio %v", totalHits, r.m.HitRatio())
	}
}

// --- broadcast dissemination -------------------------------------------

func newBroadcastRig(t *testing.T) (*rig, *broadcast.Program) {
	t.Helper()
	r := newRig(t, core.AttributeCaching, 0)
	// Broadcast attribute 0 of objects 1..5.
	prog := broadcast.New(broadcast.HotAttrItems([]oodb.OID{1, 2, 3, 4, 5}, 1),
		network.WirelessBandwidthBps, 0)
	r.client = New(Config{
		ID: 0, Kernel: r.k, Server: r.srv, Up: r.up, Down: r.down,
		Granularity: core.AttributeCaching, Policy: replacement.NewLRU(),
		Gen: r.client.gen, Arrival: workload.NewPoisson(0.01),
		Metrics: r.m, Seed: 1, Horizon: 1e6,
		Broadcast: prog,
	})
	return r, prog
}

func TestBroadcastServesCoveredReads(t *testing.T) {
	r, prog := newBroadcastRig(t)
	r.exec(func(p *sim.Proc) {
		// Object 1 attr 0 is on the air; object 50 is not.
		r.client.processQuery(p, query(0, 1, 50), p.Now())
	})
	if r.client.BroadcastReads() != 1 {
		t.Fatalf("BroadcastReads = %d, want 1", r.client.BroadcastReads())
	}
	if !r.client.Store().Contains(oodb.AttrItem(1, 0)) {
		t.Fatal("broadcast item not cached")
	}
	e, _ := r.client.Store().Peek(oodb.AttrItem(1, 0))
	if e.ExpiresAt > prog.Cycle()*2+1 {
		t.Fatalf("broadcast lease %v exceeds ~one cycle", e.ExpiresAt)
	}
	// The point-to-point reply carried only the uncovered item.
	if r.up.Messages() != 1 {
		t.Fatalf("uplink messages = %d", r.up.Messages())
	}
}

func TestBroadcastOnlyQuerySendsNothing(t *testing.T) {
	r, _ := newBroadcastRig(t)
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1, 2, 3), p.Now())
	})
	if r.up.Messages() != 0 || r.down.Messages() != 0 {
		t.Fatalf("broadcast-covered query used point-to-point channels (%d/%d)",
			r.up.Messages(), r.down.Messages())
	}
	if r.client.BroadcastReads() != 3 {
		t.Fatalf("BroadcastReads = %d", r.client.BroadcastReads())
	}
	// Subsequent identical reads hit the cache within the lease.
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(1, 1, 2, 3), p.Now())
	})
	if r.client.BroadcastReads() != 3 {
		t.Fatal("cached broadcast items re-fetched from the air")
	}
}

func TestBroadcastWaitBoundedByCycle(t *testing.T) {
	r, prog := newBroadcastRig(t)
	r.exec(func(p *sim.Proc) {
		start := p.Now()
		r.client.processQuery(p, query(0, 1, 2, 3, 4, 5), p.Now())
		if wait := p.Now() - start; wait > prog.Cycle()+5*prog.MeanWait() {
			t.Errorf("broadcast wait %v too long for cycle %v", wait, prog.Cycle())
		}
	})
}

func TestBroadcastIgnoredWhileDisconnected(t *testing.T) {
	r, _ := newBroadcastRig(t)
	sched := &network.Schedule{}
	sched.AddOutage(network.Outage{Start: 0, End: 1e6})
	r.client.sched = sched
	r.exec(func(p *sim.Proc) {
		r.client.processQuery(p, query(0, 1), p.Now())
	})
	if r.client.BroadcastReads() != 0 {
		t.Fatal("disconnected client read from the air")
	}
	if r.m.Unavailable() != 1 {
		t.Fatalf("unavailable = %d", r.m.Unavailable())
	}
}
