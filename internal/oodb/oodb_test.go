package oodb

import (
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	db := New(Config{})
	if db.NumObjects() != DefaultNumObjects {
		t.Fatalf("NumObjects = %d, want %d", db.NumObjects(), DefaultNumObjects)
	}
	if AttrSize != 85 {
		t.Fatalf("AttrSize = %d, want 1024/12 = 85", AttrSize)
	}
	if NumAttrs != 12 {
		t.Fatalf("NumAttrs = %d", NumAttrs)
	}
}

func TestCustomPopulation(t *testing.T) {
	db := New(Config{NumObjects: 50})
	if db.NumObjects() != 50 {
		t.Fatalf("NumObjects = %d", db.NumObjects())
	}
	if !db.ValidOID(49) || db.ValidOID(50) {
		t.Fatal("ValidOID boundary wrong")
	}
}

func TestWriteBumpsVersions(t *testing.T) {
	db := New(Config{NumObjects: 10})
	if db.ObjectVersion(3) != 0 || db.AttrVersion(3, 2) != 0 {
		t.Fatal("fresh object has non-zero version")
	}
	v := db.Write(3, 2)
	if v != 1 {
		t.Fatalf("Write returned %d, want 1", v)
	}
	if db.ObjectVersion(3) != 1 || db.AttrVersion(3, 2) != 1 {
		t.Fatal("versions not bumped")
	}
	if db.AttrVersion(3, 1) != 0 {
		t.Fatal("write leaked to another attribute")
	}
	db.Write(3, 1)
	if db.ObjectVersion(3) != 2 {
		t.Fatal("object version should count writes on any attribute")
	}
	if db.TotalWrites() != 2 {
		t.Fatalf("TotalWrites = %d", db.TotalWrites())
	}
}

func TestWriteIsolatedAcrossObjects(t *testing.T) {
	db := New(Config{NumObjects: 10})
	db.Write(1, 0)
	if db.ObjectVersion(2) != 0 {
		t.Fatal("write leaked to another object")
	}
}

func TestRelationshipsInRange(t *testing.T) {
	db := New(Config{NumObjects: 97, RelSeed: 0xdeadbeef})
	for i := 0; i < db.NumObjects(); i++ {
		for j := 0; j < NumRelAttrs; j++ {
			tgt := db.Relationship(OID(i), j)
			if !db.ValidOID(tgt) {
				t.Fatalf("relationship (%d,%d) -> invalid %d", i, j, tgt)
			}
			if tgt == OID(i) {
				t.Fatalf("relationship (%d,%d) is a self-loop", i, j)
			}
		}
	}
}

func TestRelationshipsDeterministic(t *testing.T) {
	a := New(Config{NumObjects: 100, RelSeed: 7})
	b := New(Config{NumObjects: 100, RelSeed: 7})
	for i := 0; i < 100; i++ {
		for j := 0; j < NumRelAttrs; j++ {
			if a.Relationship(OID(i), j) != b.Relationship(OID(i), j) {
				t.Fatalf("topology differs at (%d,%d) for same seed", i, j)
			}
		}
	}
}

func TestInvalidAccessPanics(t *testing.T) {
	db := New(Config{NumObjects: 5})
	cases := []func(){
		func() { db.Write(5, 0) },
		func() { db.Write(0, NumAttrs) },
		func() { db.ObjectVersion(100) },
		func() { db.AttrVersion(0, 200) },
		func() { db.Relationship(0, -1) },
		func() { db.Relationship(0, NumRelAttrs) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAttrIDHelpers(t *testing.T) {
	if AttrID(0).IsRelationship() || AttrID(8).IsRelationship() {
		t.Fatal("primitive attr flagged as relationship")
	}
	if !AttrID(9).IsRelationship() || !AttrID(11).IsRelationship() {
		t.Fatal("relationship attr not flagged")
	}
	if !AttrID(11).Valid() || AttrID(12).Valid() {
		t.Fatal("Valid boundary wrong")
	}
}

func TestItemSizes(t *testing.T) {
	if ObjectItem(3).Size() != ObjectSize {
		t.Fatal("object item size")
	}
	if AttrItem(3, 1).Size() != AttrSize {
		t.Fatal("attr item size")
	}
}

func TestItemPredicates(t *testing.T) {
	o := ObjectItem(7)
	if !o.IsObject() || o.OID != 7 {
		t.Fatalf("ObjectItem: %v", o)
	}
	a := AttrItem(7, 4)
	if a.IsObject() || a.Attr != 4 {
		t.Fatalf("AttrItem: %v", a)
	}
	if o.String() == "" || a.String() == "" || o.String() == a.String() {
		t.Fatal("String() representations not distinct")
	}
}

func TestItemAsMapKey(t *testing.T) {
	m := map[Item]int{}
	m[ObjectItem(1)] = 1
	m[AttrItem(1, 0)] = 2
	m[AttrItem(1, 1)] = 3
	if len(m) != 3 {
		t.Fatalf("map collapsed distinct items: %v", m)
	}
}

// Property: object version always equals the sum of its attribute versions.
func TestQuickVersionConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		db := New(Config{NumObjects: 16})
		for _, op := range ops {
			oid := OID(op % 16)
			attr := AttrID((op / 16) % NumAttrs)
			db.Write(oid, attr)
		}
		var total uint64
		for i := 0; i < 16; i++ {
			var sum uint64
			for a := 0; a < NumAttrs; a++ {
				sum += db.AttrVersion(OID(i), AttrID(a))
			}
			if sum != db.ObjectVersion(OID(i)) {
				return false
			}
			total += sum
		}
		return total == db.TotalWrites()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
