package experiment

import (
	"fmt"
	"math"

	"repro/internal/broadcast"
	"repro/internal/client"
	"repro/internal/coherence"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/oodb"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunFleet executes one fleet-scale simulation: cfg.Cells cells, each
// owning a range partition of the database (via internal/federation), its
// own 19.2 Kbps uplink/downlink pair, and a contiguous slice of the client
// fleet. Cells <= 1 is exactly the paper's single-cell system and
// delegates to Run, byte for byte.
//
// Sharding model: every cell runs its own discrete-event kernel containing
// a full federation.Cluster over an identically-derived database (same
// RelSeed), with the cell's clients attached to their cell's contact
// server. Reads that land on another cell's partition pay backbone latency
// and bandwidth against that cell's local mirror of the remote node — the
// mirrors share seeds, so partition contents, refresh estimators, and
// update streams evolve identically everywhere while each cell's kernel
// stays self-contained. That keeps cells embarrassingly parallel: they run
// on the Runner worker pool and their outcomes merge in cell order, so
// fleet results are byte-identical at any worker count.
//
// Determinism: clients keep their fleet-global IDs in every rng.Derive
// call and disconnection schedules are built once for the whole fleet,
// so a client's private streams do not depend on the cell layout; only
// channel contention and partition placement do.
//
// The invalidation-report strategy broadcasts over a single cell-wide
// downlink and is not defined for a partitioned fleet; RunFleet panics on
// that combination (Scenario validation reports it as an error first).
func RunFleet(cfg Config) Result {
	if cfg.Cells <= 1 {
		return Run(cfg)
	}
	cfg = Defaults(cfg)
	if cfg.Coherence == coherence.InvalidationReportStrategy {
		panic("experiment: invalidation reports are cell-wide broadcast; not supported with Cells > 1")
	}
	if cfg.StorageDSN != "" {
		panic("experiment: persistent storage tier models one origin server; not supported with Cells > 1")
	}
	if cfg.NumClients < cfg.Cells {
		panic(fmt.Sprintf("experiment: fleet of %d clients cannot populate %d cells",
			cfg.NumClients, cfg.Cells))
	}
	if _, err := replacement.Parse(cfg.Policy); err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}

	// Disconnection schedules span the whole fleet so a client's outage
	// windows are independent of the cell layout.
	schedules := workload.BuildSchedules(workload.DisconnectConfig{
		NumClients:          cfg.NumClients,
		DisconnectedClients: cfg.DisconnectedClients,
		DurationHours:       cfg.DisconnectHours,
		Days:                int(math.Ceil(cfg.Days)),
		Seed:                cfg.Seed,
	})

	// A Tracer or an obs.Registry is shared mutable state; keep those runs
	// serial (cell order) so records and samples stay deterministic.
	workers := defaultWorkers
	if cfg.Tracer != nil || cfg.Obs != nil {
		workers = 1
	}
	outs := make([]cellOutcome, cfg.Cells)
	Runner{Workers: workers}.ForEach(cfg.Cells, func(c int) {
		outs[c] = runFleetCell(cfg, c, schedules)
	})
	return mergeFleet(cfg, outs)
}

// cellOutcome is the raw measurement state one cell hands back for the
// deterministic cell-order merge.
type cellOutcome struct {
	clients []*client.Client
	metrics []*metrics.Client

	upUtil, downUtil float64
	downWait         float64
	downMsgs         uint64
	upStats          network.FaultStats
	downStats        network.FaultStats

	server    server.Stats
	diskSum   float64 // per-node disk utilizations, for the merged mean
	diskN     int
	events    uint64
	bbBytes   uint64
	bbMsgs    uint64
	relayHit  uint64
	relayMis  uint64
	relayed   uint64
	irReports uint64
	irBytes   uint64
}

// runFleetCell builds and runs one cell's kernel: a full cluster mirror, the
// cell's channel pair and fault models, and clients [lo, hi) of the fleet.
func runFleetCell(cfg Config, cell int, schedules []*network.Schedule) cellOutcome {
	lo, hi := cellBounds(cfg.NumClients, cfg.Cells, cell)
	k := sim.NewKernel()
	db := oodb.New(oodb.Config{
		NumObjects: cfg.NumObjects,
		RelSeed:    rng.Derive(cfg.Seed, 0xdb).Uint64(),
	})
	cluster := federation.New(federation.Config{
		Kernel:     k,
		DB:         db,
		NumServers: cfg.Cells,
		// The paper's 25%-of-database server buffer is split across the
		// partitions, mirroring how ServerBufferObjects covers one server
		// in Run.
		BufferObjects:        max(1, cfg.ServerBufferObjects/cfg.Cells),
		Beta:                 cfg.Beta,
		UpdateProb:           cfg.UpdateProb,
		PrefetchKappa:        cfg.PrefetchKappa,
		Seed:                 cfg.Seed,
		RelayCacheObjects:    cfg.RelayObjects,
		BackboneBandwidthBps: cfg.BackboneBandwidthBps,
		BackboneLatency:      cfg.BackboneLatency,
	})
	backend := cluster.Contact(cell)
	up := network.NewChannel(k, "uplink", network.WirelessBandwidthBps)
	down := network.NewChannel(k, "downlink", network.WirelessBandwidthBps)

	// Each cell's radio environment draws from its own substream: bursts in
	// one cell must not synchronize outages everywhere.
	faultCfg := cfg.FaultConfig()
	faultCfg.Seed = rng.Derive(cfg.Seed, 0xfa170000+uint64(cell)).Uint64()
	upFaults := network.NewFaultModel(faultCfg, 1)
	downFaults := network.NewFaultModel(faultCfg, 2)

	policyFactory, err := replacement.Parse(cfg.Policy)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	var program *broadcast.Program
	if cfg.BroadcastAttrs > 0 {
		pool := workload.SharedPool(cfg.NumObjects, cfg.Seed, cfg.SharedHotObjects)
		program = broadcast.New(
			broadcast.HotAttrItems(pool, cfg.BroadcastAttrs),
			network.WirelessBandwidthBps, 0)
	}

	clients, ms := buildClients(clientEnv{
		kernel:     k,
		cfg:        cfg,
		db:         db,
		backend:    backend,
		up:         up,
		down:       down,
		upFaults:   upFaults,
		downFaults: downFaults,
		schedules:  schedules,
		program:    program,
		policy:     policyFactory,
	}, lo, hi)

	// IR-over-broadcast scales to fleets by running one broadcaster per
	// cell: it watches writes applied across the cell's whole cluster
	// mirror (which is exactly what the cell's oracle sees) and reports to
	// the cell's clients over a dedicated per-cell broadcast channel.
	var irb *irbState
	if cfg.Coherence == coherence.IRBroadcastStrategy {
		window := broadcast.NewUpdateWindow(cfg.IRWindow)
		for i := 0; i < cluster.NumServers(); i++ {
			cluster.Node(i).SetWriteObserver(window.Observe)
		}
		irCh := network.NewChannel(k, "ir-broadcast", network.WirelessBandwidthBps)
		irFaults := network.NewFaultModel(faultCfg, 3)
		irb = startIRBBroadcaster(k, cfg, window, irCh, irFaults, clients, schedules[lo:hi])
	}

	// Instrumented fleets sample cell 0 only: one registry cannot span
	// kernels whose virtual clocks advance independently, so the report
	// shows one representative cell plus its cluster-wide backbone view.
	if cfg.Obs.Enabled() && cell == 0 {
		cluster.Register(cfg.Obs, "backbone")
		registerObservables(cfg, cluster.Node(cell), up, down,
			upFaults, downFaults, program, clients, ms)
		cfg.Obs.Attach(k, cfg.Horizon())
	}

	k.RunAll()
	k.Drain()

	out := cellOutcome{
		clients:  clients,
		metrics:  ms,
		upUtil:   up.Utilization(),
		downUtil: down.Utilization(),
		downWait: down.MeanWait(),
		downMsgs: down.Messages(),
		events:   k.Steps(),
	}
	if irb != nil {
		out.irReports, out.irBytes = irb.reports, irb.reportBytes
	}
	out.upStats, out.downStats = upFaults.Stats(), downFaults.Stats()
	for i := 0; i < cluster.NumServers(); i++ {
		st := cluster.Node(i).Stats()
		out.server.QueriesServed += st.QueriesServed
		out.server.DiskReads += st.DiskReads
		out.server.BufferHits += st.BufferHits
		out.server.UpdatesApplied += st.UpdatesApplied
		out.diskSum += st.DiskUtilization
		out.diskN++
	}
	out.bbBytes, out.bbMsgs = cluster.BackboneTraffic()
	out.relayHit, out.relayMis, out.relayed = cluster.RelayTotals()
	return out
}

// mergeFleet folds the per-cell outcomes, in cell order, into one Result
// with exactly the aggregation semantics of Run: pooled client metrics,
// message-weighted downlink wait, and counter sums with ratios recomputed
// from the merged numerators and denominators.
func mergeFleet(cfg Config, outs []cellOutcome) Result {
	var agg metrics.Aggregate
	var shed, drops, bcastReads uint64
	var energy float64
	perClient := make([]PerClient, 0, cfg.NumClients)
	var upUtil, downUtil, waitSum float64
	var downMsgs uint64
	var srvStats server.Stats
	var diskSum float64
	var diskN int
	res := Result{Config: cfg}
	for _, out := range outs {
		for i, m := range out.metrics {
			agg.Merge(m)
			cl := out.clients[i]
			shed += cl.ShedItems()
			drops += cl.CacheDrops()
			bcastReads += cl.BroadcastReads()
			res.IRMissed += cl.IRBMissed()
			res.ForcedRevals += cl.ForcedRevalidations()
			res.PeerHits += cl.PeerHits()
			res.PeerMisses += cl.PeerMisses()
			energy += cl.RadioEnergy()
			issued, _, _, _ := m.Queries()
			perClient = append(perClient, PerClient{
				HitRatio:     m.HitRatio(),
				ErrorRate:    m.ErrorRate(),
				MeanResponse: m.MeanResponse(),
				Queries:      issued,
			})
		}
		upUtil += out.upUtil
		downUtil += out.downUtil
		waitSum += out.downWait * float64(out.downMsgs)
		downMsgs += out.downMsgs
		srvStats.QueriesServed += out.server.QueriesServed
		srvStats.DiskReads += out.server.DiskReads
		srvStats.BufferHits += out.server.BufferHits
		srvStats.UpdatesApplied += out.server.UpdatesApplied
		diskSum += out.diskSum
		diskN += out.diskN
		res.Events += out.events
		res.BackboneBytes += out.bbBytes
		res.BackboneMessages += out.bbMsgs
		res.RelayHits += out.relayHit
		res.RelayMisses += out.relayMis
		res.RelayedReads += out.relayed
		res.FramesLost += out.upStats.Lost + out.downStats.Lost
		res.FramesCorrupted += out.upStats.Corrupted + out.downStats.Corrupted
		res.IRReports += out.irReports
		res.IRReportBytes += out.irBytes
	}
	if probes := srvStats.BufferHits + srvStats.DiskReads; probes > 0 {
		srvStats.BufferHitRatio = float64(srvStats.BufferHits) / float64(probes)
	}
	if diskN > 0 {
		srvStats.DiskUtilization = diskSum / float64(diskN)
	}

	hourlyMean, hourlyCount := agg.HourlyResponse()
	energyPerQuery := 0.0
	if agg.Issued > 0 {
		energyPerQuery = energy / float64(agg.Issued)
	}
	accessErr := 0.0
	if agg.Hits.Denom > 0 {
		accessErr = float64(agg.Errs.Num+agg.Unavail) / float64(agg.Hits.Denom)
	}
	cells := float64(len(outs))
	res.HitRatio = agg.HitRatio()
	res.MeanResponse = agg.MeanResponse()
	res.ErrorRate = agg.ErrorRate()
	res.QueriesIssued = agg.Issued
	res.QueriesLocal = agg.Local
	res.QueriesRemote = agg.Remote
	res.Unavailable = agg.Unavail
	res.UplinkUtilization = upUtil / cells
	res.DownlinkUtilization = downUtil / cells
	if downMsgs > 0 {
		res.DownlinkMeanWait = waitSum / float64(downMsgs)
	}
	res.ItemsShed = shed
	res.CacheDrops = drops
	res.BroadcastReads = bcastReads
	res.AccessErrorRate = accessErr
	res.Retries = agg.Retries
	res.Timeouts = agg.Timeouts
	res.DegradedReads = agg.Degraded
	res.HourlyResponse = hourlyMean
	res.HourlyQueries = hourlyCount
	res.RadioEnergyPerQuery = energyPerQuery
	res.Server = srvStats
	res.PerClient = perClient
	return res
}

// cellBounds returns the half-open global-client-ID range [lo, hi) of one
// cell: a balanced split, earlier cells taking the remainder.
func cellBounds(clients, cells, cell int) (lo, hi int) {
	return cell * clients / cells, (cell + 1) * clients / cells
}
