package serve

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// fakeClock is an injectable store clock for pinning lease-expiry edges.
type fakeClock struct {
	mu  sync.Mutex
	now float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestStore(t *testing.T, gran core.Granularity, clk *fakeClock) Store {
	t.Helper()
	st, err := Open("memory", Config{
		Granularity: gran,
		NumObjects:  200,
		FixedLease:  10, // deterministic leases: every install expires +10s
		Clock:       clk.Now,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func TestOpenRejectsUnsupported(t *testing.T) {
	if _, err := Open("memory", Config{Granularity: core.NoCache}); err == nil {
		t.Fatal("NC accepted; want ErrUnsupported")
	}
	if _, err := Open("memory", Config{Granularity: core.HybridCaching}); err == nil {
		t.Fatal("HC accepted; want ErrUnsupported")
	}
	if _, err := Open("redis", Config{Granularity: core.ObjectCaching}); err == nil {
		t.Fatal("unknown backend accepted; want ErrBadRequest")
	}
	if _, err := Open("memory", Config{Granularity: core.ObjectCaching, Policy: "bogus"}); err == nil {
		t.Fatal("bad policy accepted; want ErrBadRequest")
	}
}

func TestReadServeThenHit(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.ObjectCaching, clk)

	res, err := st.Read(0, 5, 0, ModeServe)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.State != core.Miss || !res.FromOrigin {
		t.Fatalf("first read: state=%v fromOrigin=%v; want miss served from origin", res.State, res.FromOrigin)
	}
	res, err = st.Read(0, 5, 0, ModeServe)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.State != core.Hit || res.FromOrigin || res.Error {
		t.Fatalf("second read: %+v; want clean hit", res)
	}
}

func TestProbeInstallsNothing(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.ObjectCaching, clk)
	if res, _ := st.Read(0, 7, 0, ModeProbe); res.State != core.Miss {
		t.Fatalf("probe state %v; want miss", res.State)
	}
	if res, _ := st.Read(0, 7, 0, ModeProbe); res.State != core.Miss {
		t.Fatal("probe installed the item; second probe should still miss")
	}
}

// TestLeaseExpiryBoundary pins the paper's valid-at-access relation on the
// real-clock path: a copy is valid strictly before its expiry instant and
// stale from the instant on.
func TestLeaseExpiryBoundary(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	if _, err := st.Read(0, 3, 2, ModeServe); err != nil { // install at t=0, expires t=10
		t.Fatalf("install: %v", err)
	}
	clk.Advance(10 - 1e-9)
	if res, _ := st.Read(0, 3, 2, ModeProbe); res.State != core.Hit {
		t.Fatalf("just before expiry: %v; want hit", res.State)
	}
	clk.Advance(1e-9) // exactly ExpiresAt: ValidAt is t < ExpiresAt
	if res, _ := st.Read(0, 3, 2, ModeProbe); res.State != core.Stale {
		t.Fatalf("at expiry instant: %v; want stale", res.State)
	}
	// ModeServe refreshes the expired copy in place.
	if res, _ := st.Read(0, 3, 2, ModeServe); !res.FromOrigin {
		t.Fatal("serve-mode read of a stale copy should refetch from origin")
	}
	if res, _ := st.Read(0, 3, 2, ModeProbe); res.State != core.Hit {
		t.Fatal("refreshed copy should be a hit again")
	}
}

// TestLeaseGrantedJustBeforeExpiryOfWrite exercises the error window: a hit
// inside the lease after an origin write is served — and flagged as an
// error by the oracle — until the lease runs out.
func TestHitInsideLeaseAfterWriteIsError(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	if _, err := st.Read(0, 4, 1, ModeServe); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := st.Write(4, []oodb.AttrID{1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	clk.Advance(5) // still inside the 10s lease
	res, err := st.Read(0, 4, 1, ModeProbe)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.State != core.Hit || !res.Error {
		t.Fatalf("hit after overwrite: state=%v error=%v; want erroneous hit", res.State, res.Error)
	}
	st2 := st.Stats()
	if st2.Errors != 1 {
		t.Fatalf("Stats.Errors = %d; want 1", st2.Errors)
	}
}

func TestWriteBumpsVersionOncePerAttr(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	v1, err := st.Write(9, []oodb.AttrID{0, 1, 1, 0}) // dup attrs collapse
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	v2, err := st.Write(9, []oodb.AttrID{2})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v2 != v1+1 {
		t.Fatalf("object versions %d then %d; want one bump per attribute write", v1, v2)
	}
	if got := st.Stats().Writes; got != 3 {
		t.Fatalf("Stats.Writes = %d; want 3 distinct attribute writes", got)
	}
	if _, err := st.Write(9, nil); err == nil {
		t.Fatal("empty write accepted; want ErrBadRequest")
	}
}

func TestFetchDedupsCoverUnits(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.ObjectCaching, clk)
	items, err := st.Fetch(1, []workload.ReadOp{
		{OID: 2, Attr: 0}, {OID: 2, Attr: 5}, {OID: 3, Attr: 1},
	})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(items) != 2 { // two attrs of object 2 cover the same object item
		t.Fatalf("fetched %d units; want 2 after dedup under OC", len(items))
	}
	if res, _ := st.Read(1, 2, 5, ModeProbe); res.State != core.Hit {
		t.Fatalf("fetched unit not resident: %v", res.State)
	}
}

func TestInvalidateWholeObjectAcrossSessions(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	for client := 0; client < 2; client++ {
		for attr := oodb.AttrID(0); attr < 3; attr++ {
			if _, err := st.Read(client, 11, attr, ModeServe); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
	}
	removed, err := st.Invalidate(-1, 11, oodb.WholeObject)
	if err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if removed != 6 {
		t.Fatalf("removed %d entries; want 6 (3 attrs x 2 sessions)", removed)
	}
	if res, _ := st.Read(1, 11, 2, ModeProbe); res.State != core.Miss {
		t.Fatalf("post-invalidate probe: %v; want miss", res.State)
	}
}

func TestRenewRefreshesResidentOnly(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	if info, err := st.Renew(0, 6, 0); err != nil || info.Cached {
		t.Fatalf("renew of absent unit: info=%+v err=%v; want absent, no error", info, err)
	}
	if _, err := st.Read(0, 6, 0, ModeServe); err != nil {
		t.Fatalf("install: %v", err)
	}
	clk.Advance(12) // lease expired
	if info, _ := st.Lease(0, 6, 0); info.Valid {
		t.Fatal("lease should have expired")
	}
	info, err := st.Renew(0, 6, 0)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if !info.Cached || !info.Valid || info.Remaining <= 0 {
		t.Fatalf("renewed lease %+v; want valid with time remaining", info)
	}
}

// TestConcurrentReadInvalidateSameOID hammers one object from readers and
// invalidators at once; under -race this pins the session-lock discipline.
func TestConcurrentReadInvalidateSameOID(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.AttributeCaching, clk)

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0, 1:
					if _, err := st.Read(0, 42, oodb.AttrID(i%12), ModeServe); err != nil {
						t.Errorf("Read: %v", err)
						return
					}
				case 2:
					if _, err := st.Invalidate(0, 42, oodb.WholeObject); err != nil {
						t.Errorf("Invalidate: %v", err)
						return
					}
				default:
					if _, err := st.Write(42, []oodb.AttrID{oodb.AttrID(i % 12)}); err != nil {
						t.Errorf("Write: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stats := st.Stats()
	if stats.Reads != workers/4*2*iters {
		t.Fatalf("Stats.Reads = %d; want %d", stats.Reads, workers/4*2*iters)
	}
}

func TestReadRejectsBadCoordinates(t *testing.T) {
	clk := &fakeClock{}
	st := newTestStore(t, core.ObjectCaching, clk)
	if _, err := st.Read(0, 100000, 0, ModeServe); err == nil {
		t.Fatal("out-of-range OID accepted")
	}
	if _, err := st.Read(0, 1, 13, ModeServe); err == nil {
		t.Fatal("out-of-range attr accepted")
	}
}
